(* Tests for the heat-driven live rebalancing planner (Balancer): the
   hysteresis band keeps a balanced cluster at zero moves (and bit-identical
   counters vs the rebalance-off arm), a sustained hot spot actually drains
   through the OCC migrate path, the move log is a pure function of the
   seed, and a scripted shard crash mid-run makes the planner route around
   the dead server without ever double-migrating a vertex. *)

open Weaver_core
module Heat = Weaver_obs.Heat
module Fault = Weaver_sim.Fault

let ok = function Ok v -> v | Error e -> Alcotest.failf "commit failed: %s" e

let reb_cfg seed =
  {
    Config.default with
    Config.seed;
    enable_heat = true;
    enable_rebalance = true;
    rebalance_period = 4_000.0;
    rebalance_max_moves = 4;
  }

(* Create vertices until every shard is home to [per_shard] of them,
   returning the chosen vids grouped by home shard (extras stay cold). *)
let seed_spread c client ~per_shard =
  let n = (Cluster.config c).Config.n_shards in
  let by_shard = Array.make n [] in
  let remaining = ref (n * per_shard) in
  let i = ref 0 in
  while !remaining > 0 do
    let vid = Printf.sprintf "rb%d" !i in
    incr i;
    let tx = Client.Tx.begin_ client in
    ignore (Client.Tx.create_vertex tx ~id:vid ());
    ok (Client.commit client tx);
    let s = Cluster.shard_of_vertex c vid in
    if List.length by_shard.(s) < per_shard then begin
      by_shard.(s) <- vid :: by_shard.(s);
      decr remaining
    end
  done;
  Array.map (fun l -> Array.of_list (List.rev l)) by_shard

(* Closed-loop single-vertex writes; commits racing a migration may abort
   under OCC, which is part of the contract being tested. *)
let hammer client vids ~rounds =
  for i = 1 to rounds do
    Array.iter
      (fun vid ->
        let tx = Client.Tx.begin_ client in
        Client.Tx.set_vertex_prop tx ~vid ~key:"w" ~value:(string_of_int i);
        ignore (Client.commit client tx))
      vids
  done

let fingerprint c =
  let ctr = Cluster.counters c in
  let rt = Cluster.runtime c in
  ( ( ctr.Runtime.tx_committed,
      ctr.Runtime.tx_aborted,
      ctr.Runtime.tx_invalid,
      ctr.Runtime.progs_completed ),
    ( Weaver_sim.Net.messages_sent rt.Runtime.net,
      Weaver_sim.Net.messages_delivered rt.Runtime.net,
      ctr.Runtime.oracle_consults,
      ctr.Runtime.nop_msgs ) )

(* ------------------------------------------------------------------ *)

(* Hysteresis: an evenly loaded cluster sits inside the band, so the
   planner runs rounds but never issues a move — and, because rounds that
   plan nothing only read state, the whole run is counter-for-counter
   identical to the same workload with rebalancing off. *)
let balanced_run cfg =
  let c = Cluster.create cfg in
  let client = Cluster.client c in
  let groups = seed_spread c client ~per_shard:2 in
  hammer client (Array.concat (Array.to_list groups)) ~rounds:8;
  Cluster.run_for c 30_000.0;
  c

let test_balanced_cluster_zero_moves () =
  let c = balanced_run (reb_cfg 7) in
  let b = Option.get (Cluster.balancer c) in
  let ctr = Cluster.counters c in
  Alcotest.(check bool) "planner ran rounds" true (ctr.Runtime.rebal_rounds > 3);
  Alcotest.(check int) "no moves issued" 0 (List.length (Balancer.move_log b));
  Alcotest.(check int) "no moves counted" 0 ctr.Runtime.rebal_moves;
  Alcotest.(check int) "nothing skipped" 0 ctr.Runtime.rebal_skipped;
  Alcotest.(check int) "nothing in flight" 0 (Balancer.pending_moves b);
  let off = balanced_run { (reb_cfg 7) with Config.enable_rebalance = false } in
  Alcotest.(check bool) "no-plan rounds are invisible: counters bit-identical"
    true
    (fingerprint off = fingerprint c)

(* ------------------------------------------------------------------ *)

(* A sustained hot spot on one shard: the planner must notice, migrate hot
   vertices off through the OCC path, and the post-move directory must
   show them living elsewhere. *)
let hot_run cfg =
  let c = Cluster.create cfg in
  let client = Cluster.client c in
  let groups = seed_spread c client ~per_shard:2 in
  (* background trickle everywhere keeps the mean meaningful *)
  hammer client (Array.concat (Array.to_list groups)) ~rounds:2;
  (* then all the heat lands on shard 0's residents *)
  hammer client groups.(0) ~rounds:40;
  Cluster.run_for c 40_000.0;
  (c, groups)

let test_hot_shard_drains () =
  let c, groups = hot_run (reb_cfg 11) in
  let b = Option.get (Cluster.balancer c) in
  let ctr = Cluster.counters c in
  let log = Balancer.move_log b in
  Alcotest.(check bool) "moves were issued" true (log <> []);
  Alcotest.(check bool) "at least one move committed" true (ctr.Runtime.rebal_moves > 0);
  (* the first move comes off the hot shard; later rounds may re-spread
     heat that followed the migrants, so only self-moves are forbidden *)
  Alcotest.(check int) "first move originates at the hot shard" 0
    (List.hd log).Balancer.mv_from;
  List.iter
    (fun m ->
      Alcotest.(check bool) "destination is a different shard" true
        (m.Balancer.mv_to <> m.Balancer.mv_from))
    log;
  (* the directory reflects the drain: some hot vertex left shard 0 *)
  let moved =
    Array.exists (fun vid -> Cluster.shard_of_vertex c vid <> 0) groups.(0)
  in
  Alcotest.(check bool) "a hot vertex now lives elsewhere" true moved;
  Alcotest.(check int) "nothing left in flight" 0 (Balancer.pending_moves b)

let test_move_log_deterministic () =
  let run () =
    let c, _ = hot_run (reb_cfg 11) in
    let b = Option.get (Cluster.balancer c) in
    (Balancer.move_log b, fingerprint c)
  in
  let log1, fp1 = run () in
  let log2, fp2 = run () in
  Alcotest.(check bool) "move log nonempty" true (log1 <> []);
  Alcotest.(check bool) "move logs bit-identical across reruns" true (log1 = log2);
  Alcotest.(check bool) "counters bit-identical across reruns" true (fp1 = fp2)

(* ------------------------------------------------------------------ *)

(* Scripted shard crash while the planner is active: moves must never
   target the dead shard, each vertex has at most one migration in flight
   (the pending gate), and the run still terminates cleanly. *)
let test_crash_mid_round_skips_dead_targets () =
  let cfg = reb_cfg 23 in
  let c = Cluster.create cfg in
  let client = Cluster.client c in
  let groups = seed_spread c client ~per_shard:2 in
  hammer client (Array.concat (Array.to_list groups)) ~rounds:2;
  (* kill shard 1 just after the heat starts piling onto shard 0; no
     restart, so every planning round from then on must route around it *)
  let dead = 1 in
  let crash_at = Cluster.now c +. 2_000.0 in
  ignore
    (Cluster.install_fault_plan c
       (Fault.scripted [ (crash_at, Fault.Crash (Fault.Shard dead)) ]));
  hammer client groups.(0) ~rounds:40;
  Cluster.run_for c 40_000.0;
  let b = Option.get (Cluster.balancer c) in
  let log = Balancer.move_log b in
  Alcotest.(check bool) "planner still migrated despite the crash" true (log <> []);
  List.iter
    (fun m ->
      if m.Balancer.mv_time >= crash_at then
        Alcotest.(check bool) "no move targets the dead shard" true
          (m.Balancer.mv_to <> dead))
    log;
  (* the pending gate means a vid never has two overlapping migrations:
     consecutive moves of the same vid must be strictly ordered in time *)
  let by_vid = Hashtbl.create 8 in
  List.iter
    (fun m ->
      (match Hashtbl.find_opt by_vid m.Balancer.mv_vid with
      | Some prev ->
          Alcotest.(check bool) "re-moves strictly later than the last" true
            (m.Balancer.mv_time > prev)
      | None -> ());
      Hashtbl.replace by_vid m.Balancer.mv_vid m.Balancer.mv_time)
    log;
  Alcotest.(check int) "nothing left in flight" 0 (Balancer.pending_moves b)

let suites =
  [
    ( "rebalance",
      [
        Alcotest.test_case "balanced cluster: zero moves, invisible" `Quick
          test_balanced_cluster_zero_moves;
        Alcotest.test_case "hot shard drains through OCC migrates" `Quick
          test_hot_shard_drains;
        Alcotest.test_case "move log deterministic across reruns" `Quick
          test_move_log_deterministic;
        Alcotest.test_case "shard crash: planner routes around, no double-migrate"
          `Quick test_crash_mid_round_skips_dead_targets;
      ] );
  ]
