(* Observability: metrics registry, causal request tracing, and the
   regression tests for the bugs the tracing work surfaced (memoization
   key, migrate/epoch race, dead-source send accounting, LRU eviction). *)

open Weaver_core
module Engine = Weaver_sim.Engine
module Net = Weaver_sim.Net
module Metrics = Weaver_obs.Metrics
module Trace = Weaver_obs.Trace
module Stats = Weaver_util.Stats
module Programs = Weaver_programs.Std_programs

let mk_cluster cfg =
  let c = Cluster.create cfg in
  Programs.Std.register_all (Cluster.registry c);
  c

let ok = function Ok v -> v | Error e -> Alcotest.failf "%s" e

(* ------------------------------------------------------------------ *)
(* Metrics registry units. *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c.a" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  let cell = ref 17 in
  Metrics.gauge m "g.b" (fun () -> !cell);
  Metrics.observe m "r.lat" 10.0;
  Metrics.observe m "r.lat" 30.0;
  cell := 18;
  Alcotest.(check (list (pair string int)))
    "int values read through" [ ("c.a", 5); ("g.b", 18) ] (Metrics.int_values m);
  (match Metrics.reservoirs m with
  | [ ("r.lat", s) ] ->
      Alcotest.(check int) "samples" 2 (Stats.count s);
      Alcotest.(check (float 0.01)) "mean" 20.0 (Stats.mean s)
  | l -> Alcotest.failf "unexpected reservoirs (%d)" (List.length l));
  let json = Metrics.to_json m in
  Alcotest.(check bool) "json counters" true (String.length json > 0);
  let has needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json has counter" true (has "\"c.a\":5");
  Alcotest.(check bool) "json has reservoir" true (has "\"r.lat\"")

(* ------------------------------------------------------------------ *)
(* Trace collector units: span-tree assembly, message ledger, eviction. *)

let test_trace_assembly () =
  let tr = Trace.create ~capacity:8 in
  (* untraced traffic is discarded *)
  Trace.span tr ~trace:0 ~name:"noise" ~actor:"x" ~start:0.0 ~stop:1.0 ();
  Trace.span tr ~trace:7 ~name:"outer" ~actor:"gk0" ~start:0.0 ~stop:100.0 ();
  Trace.span tr ~trace:7 ~name:"inner1" ~actor:"store" ~start:10.0 ~stop:20.0 ();
  Trace.span tr ~trace:7 ~name:"inner2" ~actor:"store" ~start:30.0 ~stop:40.0 ();
  Trace.span tr ~trace:7 ~name:"overlap" ~actor:"shard1" ~start:50.0 ~stop:150.0 ();
  Trace.message tr ~trace:7 ~time:5.0 ~src:9 ~dst:0 ~kind:"Tx_req";
  Trace.message tr ~trace:7 ~time:99.0 ~src:0 ~dst:9 ~kind:"Tx_reply";
  Alcotest.(check (list int)) "ids" [ 7 ] (Trace.trace_ids tr);
  Alcotest.(check int) "messages" 2 (Trace.message_count tr 7);
  Alcotest.(check int) "spans recorded" 4 (List.length (Trace.spans tr 7));
  (match Trace.assemble tr 7 with
  | [ { Trace.node = o; children = [ c1; c2 ] }; { Trace.node = ov; children = [] } ] ->
      Alcotest.(check string) "root" "outer" o.Trace.sp_name;
      Alcotest.(check string) "child 1" "inner1" c1.Trace.node.Trace.sp_name;
      Alcotest.(check string) "child 2" "inner2" c2.Trace.node.Trace.sp_name;
      Alcotest.(check string) "overlapping root" "overlap" ov.Trace.sp_name
  | forest -> Alcotest.failf "unexpected forest shape (%d roots)" (List.length forest));
  let rendered = Trace.render tr 7 in
  Alcotest.(check bool) "render mentions ledger" true
    (String.length rendered > 0 && String.index_opt rendered '\n' <> None)

let test_trace_eviction () =
  let tr = Trace.create ~capacity:2 in
  List.iter
    (fun id -> Trace.span tr ~trace:id ~name:"s" ~actor:"a" ~start:0.0 ~stop:1.0 ())
    [ 1; 2; 3 ];
  Alcotest.(check (list int)) "oldest evicted whole" [ 2; 3 ] (Trace.trace_ids tr);
  Alcotest.(check int) "evicted trace empty" 0 (List.length (Trace.spans tr 1))

(* ------------------------------------------------------------------ *)
(* Acceptance: a traced transaction's span tree contains the
   gatekeeper -> store -> shard chain, in non-decreasing virtual time. *)

let test_traced_tx_chain () =
  let cfg = { Config.default with Config.enable_tracing = true } in
  let c = mk_cluster cfg in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"t1" ());
  ignore (Client.Tx.create_vertex tx ~id:"t2" ());
  ok (Client.commit client tx);
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_edge tx ~src:"t1" ~dst:"t2");
  ok (Client.commit client tx);
  let id = Client.last_request_id client in
  Cluster.run_for c 10_000.0;
  let tr =
    match Cluster.request_tracer c with
    | Some tr -> tr
    | None -> Alcotest.fail "tracer missing with enable_tracing"
  in
  let spans = Trace.spans tr id in
  let find name =
    match List.find_opt (fun s -> s.Trace.sp_name = name) spans with
    | Some s -> s
    | None -> Alcotest.failf "span %s missing" name
  in
  let admission = find "gk.admission" in
  let gtx = find "gk.tx" in
  let store = find "store.round_trip" in
  let squeue = find "shard.queue" in
  (* the chain: admission, then the gatekeeper's tx handling containing the
     store round trips, then queueing at the shard *)
  Alcotest.(check bool) "admission before tx" true
    (admission.Trace.sp_start <= gtx.Trace.sp_start);
  Alcotest.(check bool) "store inside tx" true
    (gtx.Trace.sp_start <= store.Trace.sp_start
    && store.Trace.sp_stop <= gtx.Trace.sp_stop +. 1e-9);
  Alcotest.(check bool) "shard queue after commit" true
    (squeue.Trace.sp_start >= store.Trace.sp_start);
  (* every span is a well-formed, non-decreasing interval *)
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "span %s non-decreasing" s.Trace.sp_name)
        true
        (s.Trace.sp_stop >= s.Trace.sp_start))
    spans;
  (* assembled tree nests the store round trips under the tx span *)
  let forest = Trace.assemble tr id in
  let rec tree_has name { Trace.node; children } =
    node.Trace.sp_name = name || List.exists (tree_has name) children
  in
  let tx_tree =
    match
      List.find_opt (fun t -> t.Trace.node.Trace.sp_name = "gk.tx") forest
    with
    | Some t -> t
    | None -> Alcotest.fail "gk.tx not a root"
  in
  Alcotest.(check bool) "store nested under gk.tx" true
    (List.exists (tree_has "store.round_trip") tx_tree.Trace.children);
  Alcotest.(check bool) "messages attributed" true (Trace.message_count tr id >= 3)

(* node programs leave their own chain: admission, gk.prog, shard spans *)
let test_traced_prog_chain () =
  let cfg = { Config.default with Config.enable_tracing = true } in
  let c = mk_cluster cfg in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"p1" ());
  ok (Client.commit client tx);
  (match
     Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ "p1" ] ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "program: %s" e);
  let id = Client.last_request_id client in
  Cluster.run_for c 5_000.0;
  let tr = Option.get (Cluster.request_tracer c) in
  let names = List.map (fun s -> s.Trace.sp_name) (Trace.spans tr id) in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (List.mem n names))
    [ "gk.admission"; "gk.prog"; "shard.prog_hop"; "shard.prog_gate"; "shard.prog_exec" ]

(* ------------------------------------------------------------------ *)
(* Regression: the memo key must cover the snapshot and consistency mode.
   Before the fix, a historical run could be served a memoized current-time
   result (and vice versa), and weak/strong runs shared entries. *)

let test_memo_ignores_historical () =
  let cfg =
    { Config.default with Config.enable_memoization = true; Config.n_gatekeepers = 1 }
  in
  let c = mk_cluster cfg in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"h" ());
  Client.Tx.set_vertex_prop tx ~vid:"h" ~key:"k" ~value:"old";
  ok (Client.commit client tx);
  Cluster.run_for c 20_000.0;
  let snapshot = Cluster.gk_clock c 0 in
  let tx = Client.Tx.begin_ client in
  Client.Tx.set_vertex_prop tx ~vid:"h" ~key:"k" ~value:"new";
  ok (Client.commit client tx);
  Cluster.run_for c 20_000.0;
  let prop_of ?at () =
    match
      Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ "h" ]
        ?at ()
    with
    | Ok (Progval.List [ s ]) -> Progval.assoc_opt "k" (Progval.assoc "props" s)
    | Ok v -> Alcotest.failf "unexpected result %s" (Progval.to_string v)
    | Error e -> Alcotest.failf "program: %s" e
  in
  (* memoize the current-time result *)
  Alcotest.(check bool) "current sees new" true
    (prop_of () = Some (Progval.Str "new"));
  Alcotest.(check bool) "repeat still new" true
    (prop_of () = Some (Progval.Str "new"));
  Alcotest.(check int) "second run memo-hit" 1
    (Cluster.counters c).Runtime.memo_hits;
  (* the historical run must not be served from (or stored into) the memo *)
  Alcotest.(check bool) "snapshot sees old value" true
    (prop_of ~at:snapshot () = Some (Progval.Str "old"));
  Alcotest.(check int) "historical bypasses memo" 1
    (Cluster.counters c).Runtime.memo_hits;
  (* ... and a later current-time run is again a hit, not poisoned *)
  Alcotest.(check bool) "current still new" true
    (prop_of () = Some (Progval.Str "new"));
  Alcotest.(check int) "current memo intact" 2
    (Cluster.counters c).Runtime.memo_hits

let test_memo_key_covers_consistency () =
  let cfg =
    {
      Config.default with
      Config.enable_memoization = true;
      Config.n_gatekeepers = 1;
      Config.read_replicas = 1;
    }
  in
  let c = mk_cluster cfg in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"w" ());
  ok (Client.commit client tx);
  Cluster.run_for c 20_000.0;
  let run consistency =
    match
      Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ "w" ]
        ~consistency ()
    with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "program: %s" e
  in
  run `Strong;
  (* a weak run must not hit the strong run's entry *)
  run `Weak;
  Alcotest.(check int) "weak does not reuse strong memo" 0
    (Cluster.counters c).Runtime.memo_hits;
  run `Strong;
  Alcotest.(check int) "strong reuses strong" 1
    (Cluster.counters c).Runtime.memo_hits

(* ------------------------------------------------------------------ *)
(* Regression: an epoch change while a migration's store round trip is in
   flight must abort the migration (stale FIFO sequence numbers would
   desynchronize both shards' channels). *)

let test_migrate_epoch_race () =
  let cfg =
    { Config.default with Config.n_gatekeepers = 1; Config.net_jitter = 0.0 }
  in
  let c = mk_cluster cfg in
  let rt = Cluster.runtime c in
  let client = Cluster.client c in
  (* the default policy would transparently resubmit on "epoch-change" and
     the second attempt would succeed; this test asserts on the raw
     abort-on-barrier behaviour, so disable retries *)
  Client.set_retry_policy client Client.no_retry_policy;
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"race" ());
  ok (Client.commit client tx);
  Cluster.run_for c 5_000.0;
  let to_shard =
    (Cluster.shard_of_vertex c "race" + 1) mod (Cluster.config c).Config.n_shards
  in
  let result = ref None in
  Client.migrate_async client ~vid:"race" ~to_shard ~on_result:(fun r ->
      result := Some r);
  (* Migrate_req arrives at +50 (zero jitter), admission completes at +70,
     the store round trip lands at +160. An epoch change delivered in
     between (sent at +70, arriving +120) zeroes the gatekeeper's FIFO
     sequence numbers while the migration is mid-flight. *)
  Engine.schedule rt.Runtime.engine ~delay:70.0 (fun () ->
      Net.send rt.Runtime.net ~src:(Runtime.manager_addr rt)
        ~dst:(Runtime.gk_addr rt 0)
        (Msg.Epoch_change { epoch = 1 }));
  Cluster.run_for c 10_000.0;
  (match !result with
  | Some (Error "epoch-change") -> ()
  | Some (Ok ()) -> Alcotest.fail "migration completed across an epoch change"
  | Some (Error e) -> Alcotest.failf "unexpected error: %s" e
  | None -> Alcotest.fail "migration still pending");
  Alcotest.(check int) "no migration recorded" 0
    (Cluster.counters c).Runtime.migrations;
  Alcotest.(check int) "directory unchanged" (Cluster.shard_of_vertex c "race")
    ((to_shard + (Cluster.config c).Config.n_shards - 1)
    mod (Cluster.config c).Config.n_shards)

(* ------------------------------------------------------------------ *)
(* Regression: sends from a dead source are suppressed, not counted (and
   not shown to the tracer) as real traffic. *)

let test_dead_source_not_counted () =
  let engine = Engine.create ~seed:1 () in
  let net : int Net.t = Net.create engine ~latency:Net.local_latency in
  let got = ref [] in
  Net.register net 0 (fun ~src:_ _ -> ());
  Net.register net 1 (fun ~src:_ m -> got := m :: !got);
  let traced = ref 0 in
  Net.set_tracer net (Some (fun ~time:_ ~src:_ ~dst:_ _ -> incr traced));
  Net.send net ~src:0 ~dst:1 10;
  Net.set_alive net 0 false;
  Net.send net ~src:0 ~dst:1 11;
  Net.send net ~src:0 ~dst:1 12;
  Engine.run ~until:1_000.0 engine;
  Alcotest.(check int) "only live send counted" 1 (Net.messages_sent net);
  Alcotest.(check int) "suppressed counted separately" 2 (Net.messages_suppressed net);
  Alcotest.(check int) "only live send delivered" 1 (Net.messages_delivered net);
  Alcotest.(check int) "tracer saw only the live send" 1 !traced;
  Alcotest.(check (list int)) "payload" [ 10 ] !got

(* ------------------------------------------------------------------ *)
(* Regression: LRU eviction under duplicate recency entries. The
   count-based eviction must keep residency at capacity and still serve
   every vertex correctly through demand paging. *)

let test_paging_eviction_capacity () =
  let cfg =
    {
      Config.default with
      Config.n_gatekeepers = 1;
      Config.n_shards = 1;
      Config.shard_capacity = Some 8;
    }
  in
  let c = mk_cluster cfg in
  let client = Cluster.client c in
  let n = 30 in
  for i = 0 to n - 1 do
    let tx = Client.Tx.begin_ client in
    ignore (Client.Tx.create_vertex tx ~id:(Printf.sprintf "pv%d" i) ());
    Client.Tx.set_vertex_prop tx
      ~vid:(Printf.sprintf "pv%d" i)
      ~key:"i" ~value:(string_of_int i);
    ok (Client.commit client tx)
  done;
  Cluster.run_for c 50_000.0;
  Alcotest.(check bool) "resident at most capacity" true
    (Cluster.shard_resident c 0 <= 8);
  (* every vertex pages back in on demand, with many stale duplicate
     recency entries in between (each read re-touches) *)
  for round = 0 to 2 do
    for i = 0 to n - 1 do
      let vid = Printf.sprintf "pv%d" i in
      match
        Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ vid ] ()
      with
      | Ok (Progval.List [ s ]) ->
          Alcotest.(check bool)
            (Printf.sprintf "round %d: %s intact" round vid)
            true
            (Progval.assoc_opt "i" (Progval.assoc "props" s)
            = Some (Progval.Str (string_of_int i)))
      | Ok v -> Alcotest.failf "unexpected %s" (Progval.to_string v)
      | Error e -> Alcotest.failf "%s: %s" vid e
    done;
    Alcotest.(check bool)
      (Printf.sprintf "round %d: still capped" round)
      true
      (Cluster.shard_resident c 0 <= 8)
  done;
  let ctr = Cluster.counters c in
  Alcotest.(check bool) "paged in" true (ctr.Runtime.page_ins > 0);
  Alcotest.(check bool) "evicted" true (ctr.Runtime.evictions > 0)

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
        Alcotest.test_case "trace assembly" `Quick test_trace_assembly;
        Alcotest.test_case "trace eviction" `Quick test_trace_eviction;
        Alcotest.test_case "traced tx chain" `Quick test_traced_tx_chain;
        Alcotest.test_case "traced prog chain" `Quick test_traced_prog_chain;
        Alcotest.test_case "memo skips historical" `Quick test_memo_ignores_historical;
        Alcotest.test_case "memo key covers consistency" `Quick
          test_memo_key_covers_consistency;
        Alcotest.test_case "migrate epoch race" `Quick test_migrate_epoch_race;
        Alcotest.test_case "dead source suppressed" `Quick test_dead_source_not_counted;
        Alcotest.test_case "paging eviction capacity" `Quick
          test_paging_eviction_capacity;
      ] );
  ]
