(* Fault-injection harness and client reliability: declarative fault
   plans, retry policy + failure-aware routing, gatekeeper duplicate
   suppression, cross-gatekeeper memo invalidation, shard in-place
   resync, late-reply accounting, and the chaos benchmark's determinism
   and JSON schema. *)

open Weaver_core
open Weaver_workloads
module Fault = Weaver_sim.Fault
module Engine = Weaver_sim.Engine
module Json = Weaver_util.Json
module Xrand = Weaver_util.Xrand
module Programs = Weaver_programs.Std_programs

let mk_cluster ?(cfg = Config.default) () =
  let c = Cluster.create cfg in
  Programs.Std.register_all (Cluster.registry c);
  c

let ok = function Ok v -> v | Error e -> Alcotest.failf "%s" e

(* ------------------------------------------------------------------ *)
(* Fault plans are pure data and install as plain engine events. *)

let test_fault_plan_install () =
  let plan =
    Fault.rolling_crashes
      ~targets:[ Fault.Gatekeeper 1; Fault.Shard 0 ]
      ~start:1_000.0 ~gap:500.0 ~downtime:200.0
  in
  Alcotest.(check int) "two crash/restart pairs" 4 (List.length plan);
  let engine = Engine.create ~seed:1 () in
  let seen = ref [] in
  let n =
    Fault.install engine plan ~exec:(fun a ->
        seen := (Engine.now engine, Fault.action_name a) :: !seen)
  in
  Alcotest.(check int) "all events installed" 4 n;
  Engine.run ~until:10_000.0 engine;
  let seen = List.rev !seen in
  Alcotest.(check (list (pair (float 0.0) string)))
    "events fire in order at their times"
    [
      (1_000.0, "crash"); (1_200.0, "restart"); (1_500.0, "crash"); (1_700.0, "restart");
    ]
    seen

let test_random_plan_deterministic () =
  let mk () =
    let rng = Xrand.create ~seed:9 () in
    Fault.random_plan ~rng
      ~targets:[ Fault.Gatekeeper 0; Fault.Shard 1 ]
      ~start:0.0 ~until:500_000.0 ~mean_gap:50_000.0 ~downtime:10_000.0
  in
  let p1 = mk () and p2 = mk () in
  Alcotest.(check bool) "same seed, same plan" true (p1 = p2);
  Alcotest.(check bool) "plan is non-trivial" true (List.length p1 > 2);
  List.iter
    (fun (e : Fault.event) ->
      Alcotest.(check bool) "within horizon (plus downtime)" true
        (e.Fault.at <= 500_000.0 +. 10_000.0))
    p1

(* ------------------------------------------------------------------ *)
(* Regression (stale memo): a write through one gatekeeper must
   invalidate memoized node-program results held by its peers. Before
   commit-note propagation, gatekeeper 1 kept serving the old value. *)

let test_memo_staleness_across_gatekeepers () =
  let cfg =
    {
      Config.default with
      Config.n_gatekeepers = 2;
      Config.enable_memoization = true;
      Config.net_jitter = 0.0;
    }
  in
  let c = mk_cluster ~cfg () in
  let writer = Cluster.client c in
  let reader = Cluster.client c in
  Client.set_gatekeeper writer (Some 0);
  Client.set_gatekeeper reader (Some 1);
  let tx = Client.Tx.begin_ writer in
  ignore (Client.Tx.create_vertex tx ~id:"memo0" ());
  Client.Tx.set_vertex_prop tx ~vid:"memo0" ~key:"x" ~value:"1";
  ok (Client.commit writer tx);
  Cluster.run_for c 5_000.0;
  let prop_x () =
    match
      ok
        (Client.run_program reader ~prog:"get_node" ~params:Progval.Null
           ~starts:[ "memo0" ] ())
    with
    | Progval.List [ Progval.Assoc fields ] -> (
        match List.assoc_opt "props" fields with
        | Some (Progval.Assoc props) -> (
            match List.assoc_opt "x" props with Some (Progval.Str s) -> s | _ -> "?")
        | _ -> "?")
    | v -> Alcotest.failf "unexpected get_node result %s" (Progval.to_string v)
  in
  Alcotest.(check string) "initial read" "1" (prop_x ());
  (* prime gatekeeper 1's memo with a second, identical read *)
  Alcotest.(check string) "memoized read" "1" (prop_x ());
  let tx = Client.Tx.begin_ writer in
  Client.Tx.set_vertex_prop tx ~vid:"memo0" ~key:"x" ~value:"2";
  ok (Client.commit writer tx);
  Cluster.run_for c 5_000.0;
  Alcotest.(check string) "peer read sees the write" "2" (prop_x ());
  Alcotest.(check bool) "remote invalidations counted" true
    ((Cluster.counters c).Runtime.memo_remote_invalidations >= 1)

(* ------------------------------------------------------------------ *)
(* Regression (double apply): a commit whose reply misses the client
   timeout must answer the retry from the duplicate-suppression window
   with Ok — not re-execute and fail with "invalid: vertex exists". *)

let test_timed_out_commit_not_double_applied () =
  let cfg =
    {
      Config.default with
      Config.n_gatekeepers = 1;
      Config.net_jitter = 0.0;
      (* store round trips dominate: the commit lands long after the
         client-side timeout *)
      Config.store_op_cost = 20_000.0;
    }
  in
  let c = mk_cluster ~cfg () in
  let client = Cluster.client c in
  Client.set_timeout client 30_000.0;
  (* huge deterministic backoff: the retry reaches the gatekeeper only
     after the original commit has completed and recorded its dedup entry *)
  Client.set_retry_policy client
    {
      Client.default_policy with
      Client.rp_backoff = 500_000.0;
      Client.rp_backoff_cap = 500_000.0;
    };
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"dup0" ());
  (match Client.commit client tx with
  | Ok () -> ()
  | Error e -> Alcotest.failf "retried commit failed: %s" e);
  let cnt = Cluster.counters c in
  Alcotest.(check int) "applied exactly once" 1 cnt.Runtime.tx_committed;
  Alcotest.(check bool) "retry answered from the dedup window" true
    (cnt.Runtime.dedup_hits >= 1);
  Alcotest.(check bool) "original reply accounted as late" true
    (cnt.Runtime.late_replies >= 1);
  (* the late original shows up in the slow-request log *)
  let late_logged =
    List.exists
      (fun (e : Weaver_obs.Slowlog.entry) ->
        String.length e.Weaver_obs.Slowlog.e_result >= 5
        && String.sub e.Weaver_obs.Slowlog.e_result 0 5 = "late:")
      (Weaver_obs.Slowlog.entries (Cluster.slow_log c))
  in
  Alcotest.(check bool) "late reply in slowlog" true late_logged

(* ------------------------------------------------------------------ *)
(* Failure-aware routing: with one of two gatekeepers crash-stopped (and
   the failure detector disabled), the default policy routes around the
   dead one after the first timeout; a single-attempt client dies on it. *)

let test_routes_around_dead_gatekeeper () =
  let cfg =
    {
      Config.default with
      Config.n_gatekeepers = 2;
      Config.failure_timeout = 1e12;
      Config.net_jitter = 0.0;
    }
  in
  let c = mk_cluster ~cfg () in
  Cluster.kill_gatekeeper c 0;
  let client = Cluster.client c in
  Client.set_timeout client 50_000.0;
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"route0" ());
  (match Client.commit client tx with
  | Ok () -> ()
  | Error e -> Alcotest.failf "default policy should fail over: %s" e);
  Alcotest.(check bool) "a retry was needed" true
    ((Cluster.counters c).Runtime.client_retries >= 1);
  (* fresh client, no retries, round-robin starts at the dead gatekeeper *)
  let naive = Cluster.client c in
  Client.set_timeout naive 50_000.0;
  Client.set_retry_policy naive Client.no_retry_policy;
  let tx = Client.Tx.begin_ naive in
  ignore (Client.Tx.create_vertex tx ~id:"route1" ());
  match Client.commit naive tx with
  | Error "timeout" -> ()
  | Error e -> Alcotest.failf "expected timeout, got %s" e
  | Ok () -> Alcotest.fail "single-attempt commit to a dead gatekeeper succeeded"

(* ------------------------------------------------------------------ *)
(* In-place shard restart: resync re-baselines the FIFO channels, so a
   revived shard keeps working in the same epoch (no recovery barrier). *)

let test_shard_crash_restart_in_place () =
  let cfg =
    {
      Config.default with
      Config.n_gatekeepers = 1;
      Config.n_shards = 2;
      Config.failure_timeout = 1e12;
      Config.net_jitter = 0.0;
    }
  in
  let c = mk_cluster ~cfg () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"rs0" ());
  ok (Client.commit client tx);
  Cluster.run_for c 5_000.0;
  let s = Cluster.shard_of_vertex c "rs0" in
  Cluster.apply_fault c (Fault.Crash (Fault.Shard s));
  Cluster.run_for c 50_000.0;
  Cluster.apply_fault c (Fault.Restart (Fault.Shard s));
  Cluster.run_for c 50_000.0;
  Alcotest.(check int) "no epoch barrier ran" 0 (Cluster.epoch c);
  (* the revived shard accepts new FIFO traffic and serves programs *)
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"rs1" ());
  ok (Client.commit client tx);
  match
    Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ "rs0" ] ()
  with
  | Ok (Progval.List [ _ ]) -> ()
  | Ok v -> Alcotest.failf "unexpected result %s" (Progval.to_string v)
  | Error e -> Alcotest.failf "query after restart failed: %s" e

(* ------------------------------------------------------------------ *)
(* Crash recovery is bit-identical: the store reload behind [Shard.resync]
   iterates [Store.scan_prefix], whose order is part of the contract
   (sorted by key). With a capacity-limited shard the subset of vertices
   resident after recovery depends on that order, so two identical
   fault-plan runs must leave identical residency. Before scan_prefix was
   sorted this depended on Hashtbl internals. *)

let recovery_residency () =
  let cfg =
    {
      Config.default with
      Config.n_gatekeepers = 1;
      Config.n_shards = 2;
      Config.shard_capacity = Some 4;
      Config.failure_timeout = 1e12;
      Config.net_jitter = 0.0;
    }
  in
  let c = mk_cluster ~cfg () in
  let client = Cluster.client c in
  for i = 0 to 11 do
    let tx = Client.Tx.begin_ client in
    ignore (Client.Tx.create_vertex tx ~id:(Printf.sprintf "bi%02d" i) ());
    ok (Client.commit client tx)
  done;
  Cluster.run_for c 20_000.0;
  let plan =
    Fault.scripted
      [
        (Cluster.now c +. 1_000.0, Fault.Crash (Fault.Shard 0));
        (Cluster.now c +. 1_500.0, Fault.Crash (Fault.Shard 1));
        (Cluster.now c +. 30_000.0, Fault.Restart (Fault.Shard 0));
        (Cluster.now c +. 31_000.0, Fault.Restart (Fault.Shard 1));
      ]
  in
  ignore (Cluster.install_fault_plan c plan);
  Cluster.run_for c 60_000.0;
  List.map (fun sid -> Cluster.shard_resident_ids c sid) [ 0; 1 ]

let test_recovery_bit_identical () =
  let r1 = recovery_residency () in
  let r2 = recovery_residency () in
  List.iteri
    (fun sid ids ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d respects capacity" sid)
        4 (List.length ids);
      Alcotest.(check (list string))
        (Printf.sprintf "shard %d residency identical across runs" sid)
        ids
        (List.nth r2 sid))
    r1

(* ------------------------------------------------------------------ *)
(* Chaos benchmark: bit-identical across runs with equal options, higher
   availability with the reliability layer on, and valid JSON. *)

let chaos_opts reliable =
  {
    Chaosbench.default_opts with
    Chaosbench.co_seed = 7;
    co_clients = 6;
    co_duration = 400_000.0;
    co_window = 40_000.0;
    co_reliable = reliable;
  }

let test_chaosbench_deterministic_and_better () =
  let off1 = Chaosbench.run (chaos_opts false) in
  let off2 = Chaosbench.run (chaos_opts false) in
  Alcotest.(check string) "same opts, identical JSON" (Chaosbench.to_json off1)
    (Chaosbench.to_json off2);
  let on_ = Chaosbench.run (chaos_opts true) in
  Alcotest.(check bool) "faults actually injected" true
    (off1.Chaosbench.r_fault_events > 0);
  Alcotest.(check bool) "baseline suffers" true (off1.Chaosbench.r_total_err > 0);
  Alcotest.(check bool) "reliability raises availability" true
    (on_.Chaosbench.r_availability > off1.Chaosbench.r_availability)

let test_chaosbench_json_schema () =
  let r = Chaosbench.run (chaos_opts true) in
  (* same composite document the chaos experiment writes to BENCH_chaos.json *)
  let doc =
    Printf.sprintf "{\"experiment\": \"chaos\", \"seed\": %d, \"off\": %s, \"on\": %s}"
      7 (Chaosbench.to_json r) (Chaosbench.to_json r)
  in
  match Json.parse doc with
  | Error e -> Alcotest.failf "BENCH_chaos document does not parse: %s" e
  | Ok j ->
      Alcotest.(check (option string))
        "experiment tag" (Some "chaos") (Json.string_member "experiment" j);
      let run = Option.get (Json.member "on" j) in
      List.iter
        (fun field ->
          Alcotest.(check bool)
            (field ^ " is numeric") true
            (Option.is_some (Json.number_member field run)))
        [ "total_ok"; "total_err"; "availability"; "p50_us"; "p99_us"; "retries" ];
      let windows = Option.get (Json.to_list (Option.get (Json.member "windows" run))) in
      Alcotest.(check bool) "windows present" true (List.length windows > 0);
      List.iter
        (fun w ->
          List.iter
            (fun field ->
              Alcotest.(check bool)
                ("window " ^ field) true
                (Option.is_some (Json.number_member field w)))
            [ "start_us"; "ok"; "err" ])
        windows

let suites =
  [
    ( "reliability",
      [
        Alcotest.test_case "fault plan install" `Quick test_fault_plan_install;
        Alcotest.test_case "random plan deterministic" `Quick
          test_random_plan_deterministic;
        Alcotest.test_case "memo staleness across gatekeepers" `Quick
          test_memo_staleness_across_gatekeepers;
        Alcotest.test_case "timed-out commit not double-applied" `Quick
          test_timed_out_commit_not_double_applied;
        Alcotest.test_case "routes around dead gatekeeper" `Quick
          test_routes_around_dead_gatekeeper;
        Alcotest.test_case "recovery bit-identical" `Quick
          test_recovery_bit_identical;
        Alcotest.test_case "shard crash/restart in place" `Quick
          test_shard_crash_restart_in_place;
        Alcotest.test_case "chaosbench deterministic and better" `Slow
          test_chaosbench_deterministic_and_better;
        Alcotest.test_case "chaosbench json schema" `Quick test_chaosbench_json_schema;
      ] );
  ]
