let () =
  Alcotest.run "weaver"
    (Test_util.suites @ Test_sim.suites @ Test_vclock.suites @ Test_oracle.suites @ Test_store.suites @ Test_graph.suites @ Test_partition.suites @ Test_cluster.suites @ Test_core.suites @ Test_workloads.suites @ Test_apps.suites @ Test_baselines.suites @ Test_serializability.suites @ Test_progval.suites @ Test_chain.suites @ Test_programs2.suites @ Test_extra.suites @ Test_backup.suites @ Test_replica.suites @ Test_adaptive.suites @ Test_model.suites @ Test_migration.suites @ Test_chaos.suites @ Test_analytics.suites @ Test_units2.suites @ Test_obs.suites)
