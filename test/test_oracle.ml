(* Tests for the timeline oracle: acyclicity, irrevocability, transitivity,
   vclock inference, serialization of concurrent sets, and GC. *)

open Weaver_oracle
module Vclock = Weaver_vclock.Vclock

let vc ?(epoch = 0) origin clocks = Vclock.make ~epoch ~origin clocks

let decision_testable =
  Alcotest.testable
    (fun fmt -> function
      | Oracle.First_first -> Format.pp_print_string fmt "First_first"
      | Oracle.Second_first -> Format.pp_print_string fmt "Second_first")
    ( = )

let test_vclock_ordered_pair () =
  let t = Oracle.create () in
  let a = vc 0 [| 1; 0 |] and b = vc 1 [| 1; 1 |] in
  Alcotest.(check (option decision_testable))
    "vclock decides" (Some Oracle.First_first) (Oracle.query t a b);
  Alcotest.(check (option decision_testable))
    "reverse" (Some Oracle.Second_first) (Oracle.query t b a)

let test_concurrent_initially_unordered () =
  let t = Oracle.create () in
  let a = vc 0 [| 1; 0 |] and b = vc 1 [| 0; 1 |] in
  Alcotest.(check (option decision_testable)) "unordered" None (Oracle.query t a b)

let test_order_prefers_arrival_then_sticks () =
  let t = Oracle.create () in
  let a = vc 0 [| 1; 0 |] and b = vc 1 [| 0; 1 |] in
  Alcotest.check decision_testable "arrival order" Oracle.First_first
    (Oracle.order t ~first:a ~second:b);
  (* irrevocable: asking in the opposite orientation returns the same order *)
  Alcotest.check decision_testable "sticky" Oracle.Second_first
    (Oracle.order t ~first:b ~second:a);
  Alcotest.(check (option decision_testable))
    "query agrees" (Some Oracle.First_first) (Oracle.query t a b)

let test_assign_refuses_cycle () =
  let t = Oracle.create () in
  let a = vc 0 [| 1; 0 |] and b = vc 1 [| 0; 1 |] in
  Alcotest.(check bool) "assign ok" true (Oracle.assign t ~before:a ~after:b = Ok ());
  Alcotest.(check bool) "reverse refused" true
    (Oracle.assign t ~before:b ~after:a = Error `Cycle);
  (* idempotent re-assign *)
  Alcotest.(check bool) "re-assign ok" true (Oracle.assign t ~before:a ~after:b = Ok ())

let test_assign_refuses_vclock_contradiction () =
  let t = Oracle.create () in
  let a = vc 0 [| 1; 0 |] and b = vc 0 [| 2; 0 |] in
  (* a < b by vclock; committing b ≺ a must be refused *)
  Alcotest.(check bool) "contradiction refused" true
    (Oracle.assign t ~before:b ~after:a = Error `Cycle)

let test_transitivity_explicit () =
  let t = Oracle.create () in
  let a = vc 0 [| 2; 0; 0 |]
  and b = vc 1 [| 0; 2; 0 |]
  and c = vc 2 [| 0; 0; 2 |] in
  Alcotest.(check bool) "a<b" true (Oracle.assign t ~before:a ~after:b = Ok ());
  Alcotest.(check bool) "b<c" true (Oracle.assign t ~before:b ~after:c = Ok ());
  Alcotest.(check (option decision_testable))
    "a<c by transitivity" (Some Oracle.First_first) (Oracle.query t a c);
  Alcotest.(check bool) "c<a refused" true
    (Oracle.assign t ~before:c ~after:a = Error `Cycle)

let test_paper_vclock_inference () =
  (* §4.1: oracle orders ⟨0,1⟩ ≺ ⟨1,0⟩; then ⟨0,1⟩ vs ⟨2,0⟩ must answer
     ⟨0,1⟩ ≺ ⟨2,0⟩ because ⟨1,0⟩ ≼ ⟨2,0⟩ by vector clocks. *)
  let t = Oracle.create () in
  let e01 = vc 1 [| 0; 1 |] and e10 = vc 0 [| 1; 0 |] and e20 = vc 0 [| 2; 0 |] in
  Oracle.add_event t e20;
  Alcotest.(check bool) "01<10" true (Oracle.assign t ~before:e01 ~after:e10 = Ok ());
  Alcotest.(check (option decision_testable))
    "01<20 inferred" (Some Oracle.First_first) (Oracle.query t e01 e20);
  (* and the contradiction is refused *)
  Alcotest.(check bool) "20<01 refused" true
    (Oracle.assign t ~before:e20 ~after:e01 = Error `Cycle)

let test_mixed_chain_inference () =
  (* explicit a≺x, vclock x≺y, explicit y≺b  ⟹  a≺b *)
  let t = Oracle.create () in
  let a = vc 2 [| 0; 0; 1 |] in
  let x = vc 0 [| 1; 0; 0 |] in
  let y = vc 0 [| 3; 0; 0 |] in
  let b = vc 1 [| 0; 5; 0 |] in
  Alcotest.(check bool) "a<x" true (Oracle.assign t ~before:a ~after:x = Ok ());
  Alcotest.(check bool) "y<b" true (Oracle.assign t ~before:y ~after:b = Ok ());
  Alcotest.(check (option decision_testable))
    "a<b via mixed chain" (Some Oracle.First_first) (Oracle.query t a b)

let test_serialize_respects_existing () =
  let t = Oracle.create () in
  let a = vc 0 [| 1; 0; 0 |]
  and b = vc 1 [| 0; 1; 0 |]
  and c = vc 2 [| 0; 0; 1 |] in
  (* pre-commit c ≺ a, then serialize in arrival order [a; b; c] *)
  Alcotest.(check bool) "c<a" true (Oracle.assign t ~before:c ~after:a = Ok ());
  let sorted = Oracle.serialize t [ a; b; c ] in
  let pos x = Option.get (List.find_index (fun y -> Vclock.key x = Vclock.key y) sorted) in
  Alcotest.(check bool) "c before a" true (pos c < pos a);
  Alcotest.(check int) "all present" 3 (List.length sorted);
  (* serializing again yields the same order: decisions are sticky *)
  let again = Oracle.serialize t [ c; b; a ] in
  Alcotest.(check (list string)) "stable"
    (List.map Vclock.key sorted)
    (List.map Vclock.key again)

let test_serialize_total_order_consistency () =
  let t = Oracle.create () in
  let events = List.init 6 (fun i ->
      let clocks = Array.make 6 0 in
      clocks.(i) <- 1;
      vc i clocks)
  in
  let sorted = Oracle.serialize t events in
  (* every adjacent pair must now be ordered consistently *)
  let rec check = function
    | x :: (y :: _ as rest) ->
        Alcotest.(check (option decision_testable))
          "adjacent ordered" (Some Oracle.First_first) (Oracle.query t x y);
        check rest
    | _ -> ()
  in
  check sorted

let test_same_clocks_distinct_origin () =
  (* two distinct events can carry identical clock arrays (different
     origin). No causal chain can ever separate them, so the oracle must
     not wait for (or commit) an explicit edge: it breaks the tie by origin
     — the same tie-break [Vclock.total_compare] uses — identically on
     every server and in both argument orders *)
  let t = Oracle.create () in
  let a = vc 0 [| 1; 1 |] and b = vc 1 [| 1; 1 |] in
  let edges0 = Oracle.edge_count t in
  Alcotest.(check (option decision_testable))
    "lower origin first" (Some Oracle.First_first) (Oracle.query t a b);
  Alcotest.(check (option decision_testable))
    "antisymmetric" (Some Oracle.Second_first) (Oracle.query t b a);
  Alcotest.check decision_testable "order agrees" Oracle.First_first
    (Oracle.order t ~first:a ~second:b);
  Alcotest.check decision_testable "order agrees reversed" Oracle.Second_first
    (Oracle.order t ~first:b ~second:a);
  Alcotest.(check int) "no explicit edge committed" edges0 (Oracle.edge_count t)

let test_gc_drops_old_keeps_new () =
  let t = Oracle.create () in
  let old1 = vc 0 [| 1; 0 |] and old2 = vc 1 [| 0; 1 |] in
  let new1 = vc 0 [| 5; 5 |] and new2 = vc 1 [| 4; 6 |] in
  ignore (Oracle.order t ~first:old1 ~second:old2);
  ignore (Oracle.order t ~first:new1 ~second:new2);
  let watermark = vc 0 [| 3; 3 |] in
  let removed = Oracle.gc t ~watermark in
  Alcotest.(check int) "two removed" 2 removed;
  Alcotest.(check int) "two remain" 2 (Oracle.event_count t);
  (* surviving decision preserved *)
  Alcotest.(check (option decision_testable))
    "survivor order kept" (Some Oracle.First_first) (Oracle.query t new1 new2)

let test_assign_all_atomic () =
  let t = Oracle.create () in
  let e i =
    let clocks = Array.make 4 0 in
    clocks.(i) <- 1;
    vc i clocks
  in
  (* a batch that closes a cycle on its own third pair must leave nothing *)
  let edges0 = Oracle.edge_count t in
  (match Oracle.assign_all t [ (e 0, e 1); (e 1, e 2); (e 2, e 0) ] with
  | Error `Cycle -> ()
  | Ok () -> Alcotest.fail "cyclic batch accepted");
  Alcotest.(check int) "rolled back" edges0 (Oracle.edge_count t);
  Alcotest.(check (option decision_testable)) "no residual order" None (Oracle.query t (e 0) (e 1));
  (* a clean batch commits everything *)
  (match Oracle.assign_all t [ (e 0, e 1); (e 1, e 2) ] with
  | Ok () -> ()
  | Error `Cycle -> Alcotest.fail "acyclic batch refused");
  Alcotest.(check (option decision_testable))
    "transitive from batch" (Some Oracle.First_first) (Oracle.query t (e 0) (e 2))

let test_assign_all_respects_existing () =
  let t = Oracle.create () in
  let e i =
    let clocks = Array.make 4 0 in
    clocks.(i) <- 1;
    vc i clocks
  in
  ignore (Oracle.assign t ~before:(e 2) ~after:(e 0));
  (* batch conflicts with pre-existing e2 < e0 via transitivity *)
  (match Oracle.assign_all t [ (e 0, e 1); (e 1, e 2) ] with
  | Error `Cycle -> ()
  | Ok () -> Alcotest.fail "conflicting batch accepted");
  (* pre-existing commitment untouched *)
  Alcotest.(check (option decision_testable))
    "prior edge intact" (Some Oracle.First_first) (Oracle.query t (e 2) (e 0));
  Alcotest.(check (option decision_testable)) "batch rolled back" None (Oracle.query t (e 0) (e 1))

let test_negative_memo_invalidation () =
  (* a cached "unreachable" answer must stop being trusted as soon as new
     edges exist: reachability can only grow. This fails if the negative
     memo is not generation-stamped. *)
  let t = Oracle.create () in
  let e i =
    let clocks = Array.make 4 0 in
    clocks.(i) <- 1;
    vc i clocks
  in
  Alcotest.(check (option decision_testable))
    "initially unordered (negative cached)" None (Oracle.query t (e 0) (e 3));
  (match Oracle.assign_all t [ (e 0, e 1); (e 1, e 2); (e 2, e 3) ] with
  | Ok () -> ()
  | Error `Cycle -> Alcotest.fail "chain refused");
  Alcotest.(check (option decision_testable))
    "chain visible despite cached negative" (Some Oracle.First_first)
    (Oracle.query t (e 0) (e 3));
  Alcotest.(check (option decision_testable))
    "reverse too" (Some Oracle.Second_first) (Oracle.query t (e 3) (e 0));
  (* repeated queries (memo-hit path) stay consistent *)
  Alcotest.(check (option decision_testable))
    "stable on re-query" (Some Oracle.First_first) (Oracle.query t (e 0) (e 3))

let test_gc_stress () =
  (* 10k events, half below the watermark: a collection round must both
     come back quickly (doomed-set membership is O(1), not a list rescan
     per surviving node) and leave exactly the hand-computed survivors *)
  let t = Oracle.create () in
  let n = 10_000 in
  (* pairwise concurrent: first component rises, second falls *)
  let ev = Array.init n (fun i -> vc (i mod 2) [| i + 1; n - i |]) in
  Array.iter (Oracle.add_event t) ev;
  (* explicit chain edges every 100th pair, on both sides of the cut *)
  let assigned = ref 0 in
  let i = ref 0 in
  while !i < n - 1 do
    (match Oracle.assign t ~before:ev.(!i) ~after:ev.(!i + 1) with
    | Ok () -> incr assigned
    | Error `Cycle -> Alcotest.fail "unexpected cycle");
    i := !i + 100
  done;
  Alcotest.(check int) "100 edges assigned" 100 !assigned;
  (* dooms exactly e_0..e_4999: e_4999 = [|5000; 5001|] ≺ w, while
     e_5000 = [|5001; 5000|] has a component above it *)
  let w = vc 0 [| 5_000; n + 1 |] in
  let removed = Oracle.gc t ~watermark:w in
  Alcotest.(check int) "half removed" (n / 2) removed;
  Alcotest.(check int) "half remain" (n / 2) (Oracle.event_count t);
  (* surviving edges: sources 5000, 5100, …, 9900 — the 50 whose endpoints
     both survive; same count the list-based collector produced *)
  Alcotest.(check int) "surviving edges" 50 (Oracle.edge_count t);
  Alcotest.(check (option decision_testable))
    "surviving decision intact" (Some Oracle.First_first)
    (Oracle.query t ev.(5_000) ev.(5_001));
  Alcotest.(check (option decision_testable))
    "collected pair forgotten" None (Oracle.query t ev.(100) ev.(101))

let test_query_counter () =
  let t = Oracle.create () in
  let a = vc 0 [| 1; 0 |] and b = vc 1 [| 0; 1 |] in
  let before = Oracle.queries_served t in
  ignore (Oracle.query t a b);
  ignore (Oracle.order t ~first:a ~second:b);
  Alcotest.(check bool) "counter grows" true (Oracle.queries_served t > before)

(* Property: random assignment workloads never produce a cycle, i.e. the
   oracle's answers always form a strict partial order. *)
let prop_no_cycles =
  QCheck.Test.make ~name:"random orders never cycle" ~count:100
    QCheck.(pair small_nat (list_of_size Gen.(0 -- 40) (pair (int_bound 7) (int_bound 7))))
    (fun (_seed, pairs) ->
      let t = Oracle.create () in
      let mk i =
        let clocks = Array.make 8 0 in
        clocks.(i) <- 1;
        vc i clocks
      in
      let events = Array.init 8 mk in
      (* apply arbitrary order requests *)
      List.iter
        (fun (i, j) ->
          if i <> j then ignore (Oracle.order t ~first:events.(i) ~second:events.(j)))
        pairs;
      (* verify: for all pairs, query is antisymmetric *)
      let ok = ref true in
      for i = 0 to 7 do
        for j = i + 1 to 7 do
          match (Oracle.query t events.(i) events.(j), Oracle.query t events.(j) events.(i)) with
          | Some Oracle.First_first, Some Oracle.Second_first
          | Some Oracle.Second_first, Some Oracle.First_first
          | None, None -> ()
          | _ -> ok := false
        done
      done;
      !ok)

let prop_serialize_is_permutation =
  QCheck.Test.make ~name:"serialize returns a permutation" ~count:100
    QCheck.(int_range 1 8)
    (fun n ->
      let t = Oracle.create () in
      let events =
        List.init n (fun i ->
            let clocks = Array.make 8 0 in
            clocks.(i) <- 1;
            vc i clocks)
      in
      let sorted = Oracle.serialize t events in
      List.sort compare (List.map Vclock.key sorted)
      = List.sort compare (List.map Vclock.key events))

let prop_transitivity_closure =
  (* after ordering a random chain e0≺e1≺…≺ek, every (ei, ej) with i<j
     must be answered First_first *)
  QCheck.Test.make ~name:"chains imply full transitive closure" ~count:100
    QCheck.(int_range 2 8)
    (fun n ->
      let t = Oracle.create () in
      let events =
        Array.init n (fun i ->
            let clocks = Array.make 8 0 in
            clocks.(i) <- 1;
            vc i clocks)
      in
      for i = 0 to n - 2 do
        match Oracle.assign t ~before:events.(i) ~after:events.(i + 1) with
        | Ok () -> ()
        | Error `Cycle -> failwith "unexpected cycle"
      done;
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Oracle.query t events.(i) events.(j) <> Some Oracle.First_first then ok := false
        done
      done;
      !ok)

let suites =
  [
    ( "oracle",
      [
        Alcotest.test_case "vclock-ordered pair" `Quick test_vclock_ordered_pair;
        Alcotest.test_case "concurrent unordered" `Quick test_concurrent_initially_unordered;
        Alcotest.test_case "arrival preference sticks" `Quick test_order_prefers_arrival_then_sticks;
        Alcotest.test_case "cycle refusal" `Quick test_assign_refuses_cycle;
        Alcotest.test_case "vclock contradiction refused" `Quick
          test_assign_refuses_vclock_contradiction;
        Alcotest.test_case "explicit transitivity" `Quick test_transitivity_explicit;
        Alcotest.test_case "paper vclock inference" `Quick test_paper_vclock_inference;
        Alcotest.test_case "mixed chain inference" `Quick test_mixed_chain_inference;
        Alcotest.test_case "serialize respects existing" `Quick test_serialize_respects_existing;
        Alcotest.test_case "serialize consistency" `Quick test_serialize_total_order_consistency;
        Alcotest.test_case "same clocks distinct origin" `Quick test_same_clocks_distinct_origin;
        Alcotest.test_case "assign_all atomic" `Quick test_assign_all_atomic;
        Alcotest.test_case "assign_all respects existing" `Quick test_assign_all_respects_existing;
        Alcotest.test_case "gc" `Quick test_gc_drops_old_keeps_new;
        Alcotest.test_case "negative memo invalidation" `Quick
          test_negative_memo_invalidation;
        Alcotest.test_case "gc stress 10k events" `Quick test_gc_stress;
        Alcotest.test_case "query counter" `Quick test_query_counter;
        QCheck_alcotest.to_alcotest prop_no_cycles;
        QCheck_alcotest.to_alcotest prop_serialize_is_permutation;
        QCheck_alcotest.to_alcotest prop_transitivity_closure;
      ] );
  ]
