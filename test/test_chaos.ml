(* Chaos testing: a random interleaving of transactions, traversals,
   migrations, weak reads, and server crashes, run to completion under
   several seeds. Invariants checked at the end:
     - the simulation never wedges (all issued requests get answers);
     - durable state and shard state agree for every surviving vertex;
     - the journal replays to exactly the live store;
     - the cluster still serves fresh traffic. *)

open Weaver_core
module Xrand = Weaver_util.Xrand
module Store = Weaver_store.Store
module Programs = Weaver_programs.Std_programs

let run_chaos seed =
  let cfg =
    {
      Config.default with
      Config.seed;
      Config.n_shards = 3;
      Config.read_replicas = 1;
      Config.failure_timeout = 120_000.0;
    }
  in
  let c = Cluster.create cfg in
  Programs.Std.register_all (Cluster.registry c);
  let client = Cluster.client c in
  let rng = Xrand.create ~seed () in
  let vids = Array.init 10 (fun i -> Printf.sprintf "cv%d_%d" seed i) in
  (* seed the graph *)
  let tx = Client.Tx.begin_ client in
  Array.iter (fun v -> ignore (Client.Tx.create_vertex tx ~id:v ())) vids;
  (match Client.commit client tx with Ok () -> () | Error e -> Alcotest.failf "seed: %s" e);
  let outstanding = ref 0 in
  let answered = ref 0 in
  let issue_async f =
    incr outstanding;
    f (fun _ ->
        decr outstanding;
        incr answered)
  in
  let killed_shard = ref false in
  for _ = 1 to 60 do
    (match Xrand.int rng 10 with
    | 0 | 1 | 2 ->
        issue_async (fun k ->
            let tx = Client.Tx.begin_ client in
            ignore
              (Client.Tx.create_edge tx ~src:(Xrand.pick rng vids) ~dst:(Xrand.pick rng vids));
            Client.commit_async client tx ~on_result:k)
    | 3 | 4 ->
        issue_async (fun k ->
            Client.run_program_async client ~prog:"get_node" ~params:Progval.Null
              ~starts:[ Xrand.pick rng vids ] ~on_result:(fun r -> k (Result.map ignore r)) ())
    | 5 ->
        issue_async (fun k ->
            Client.run_program_async client ~prog:"nhop_count"
              ~params:(Progval.Assoc [ ("depth", Progval.Int 2) ])
              ~starts:[ Xrand.pick rng vids ]
              ~consistency:(if Xrand.bool rng then `Weak else `Strong)
              ~on_result:(fun r -> k (Result.map ignore r))
              ())
    | 6 ->
        issue_async (fun k ->
            Client.migrate_async client ~vid:(Xrand.pick rng vids)
              ~to_shard:(Xrand.int rng 3) ~on_result:k)
    | 7 when not !killed_shard ->
        killed_shard := true;
        Cluster.kill_shard c (Xrand.int rng 3)
    | _ ->
        issue_async (fun k ->
            let tx = Client.Tx.begin_ client in
            Client.Tx.set_vertex_prop tx ~vid:(Xrand.pick rng vids) ~key:"p"
              ~value:(string_of_int (Xrand.int rng 100));
            Client.commit_async client tx ~on_result:k));
    Cluster.run_for c (Xrand.float rng 2_000.0)
  done;
  (* drain: requests either answer or hit their client timeout *)
  let budget = ref 8_000 in
  while !outstanding > 0 && !budget > 0 do
    decr budget;
    Cluster.run_for c 2_000.0
  done;
  Alcotest.(check int) "no wedged requests" 0 !outstanding;
  Alcotest.(check bool) "work happened" true (!answered > 30);
  (* settle recovery, then verify invariants *)
  Cluster.run_for c 500_000.0;
  let rt = Cluster.runtime c in
  (* 1. journal replay equals live store *)
  let replayed = Store.replay rt.Runtime.store in
  Alcotest.(check int) "replay live-key count" (Store.length rt.Runtime.store)
    (Store.length replayed);
  List.iter
    (fun (key, value) ->
      match Store.get_now replayed key with
      | Some v' -> if not (v' == value || v' = value) then Alcotest.failf "replay diverges at %s" key
      | None -> Alcotest.failf "replay missing %s" key)
    (Store.scan_prefix rt.Runtime.store ~prefix:"");
  (* 2. durable vs shard state per vertex *)
  Array.iter
    (fun vid ->
      match Cluster.stored_vertex c vid with
      | None -> ()
      | Some durable -> (
          let shard = Cluster.shard_of_vertex c vid in
          match Cluster.shard_vertex c ~shard vid with
          | Some resident ->
              let live (v : Weaver_graph.Mgraph.vertex) =
                Array.fold_left
                  (fun n (e : Weaver_graph.Mgraph.edge) ->
                    if e.Weaver_graph.Mgraph.e_life.Weaver_graph.Mgraph.deleted = None
                    then n + 1
                    else n)
                  0 v.Weaver_graph.Mgraph.out
              in
              Alcotest.(check int)
                (vid ^ " durable/resident degree agree")
                (live durable) (live resident)
          | None -> Alcotest.failf "%s not resident anywhere" vid))
    vids;
  (* 3. still serves traffic *)
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:(Printf.sprintf "post%d" seed) ());
  match Client.commit client tx with
  | Ok () -> ()
  | Error e -> Alcotest.failf "post-chaos commit: %s" e

let suites =
  [
    ( "chaos",
      [
        Alcotest.test_case "seed 7" `Quick (fun () -> run_chaos 7);
        Alcotest.test_case "seed 77" `Quick (fun () -> run_chaos 77);
        Alcotest.test_case "seed 777" `Quick (fun () -> run_chaos 777);
      ] );
  ]
