(* Tests for the load-heat layer: the Space-Saving sketch (bounds,
   eviction, deterministic ordering), the decayed range accumulators, the
   cluster wiring (writes from apply, reads from program visits, cross
   from multi-shard commits), the counter-invisibility guarantee, the
   health watchdog (unit-level signal checks plus a scripted-fault
   watermark stall), and the Metrics re-registration regression. *)

open Weaver_core
module Heat = Weaver_obs.Heat
module Health = Weaver_obs.Health
module Metrics = Weaver_obs.Metrics
module Export = Weaver_obs.Export
module Json = Weaver_util.Json
module Xrand = Weaver_util.Xrand

(* ------------------------------------------------------------------ *)
(* Space-Saving sketch *)

let test_sketch_exact_under_capacity () =
  let s = Heat.Sketch.create ~k:4 in
  for _ = 1 to 3 do
    Heat.Sketch.touch s "a"
  done;
  Heat.Sketch.touch s "b";
  Alcotest.(check int) "size" 2 (Heat.Sketch.size s);
  Alcotest.(check int) "capacity" 4 (Heat.Sketch.capacity s);
  Alcotest.(check (option (pair int int))) "a exact" (Some (3, 0)) (Heat.Sketch.estimate s "a");
  Alcotest.(check (option (pair int int))) "b exact" (Some (1, 0)) (Heat.Sketch.estimate s "b");
  Alcotest.(check (option (pair int int))) "untracked" None (Heat.Sketch.estimate s "z");
  Alcotest.(check (list (triple string int int)))
    "top" [ ("a", 3, 0); ("b", 1, 0) ] (Heat.Sketch.top s)

let test_sketch_eviction_inherits_min () =
  let s = Heat.Sketch.create ~k:2 in
  Heat.Sketch.touch ~by:5 s "a";
  Heat.Sketch.touch ~by:3 s "b";
  Heat.Sketch.touch s "c";
  (* c replaced the minimum (b, 3) and inherited its count as error *)
  Alcotest.(check int) "still k entries" 2 (Heat.Sketch.size s);
  Alcotest.(check (option (pair int int))) "evicted" None (Heat.Sketch.estimate s "b");
  Alcotest.(check (option (pair int int))) "inherited" (Some (4, 3)) (Heat.Sketch.estimate s "c");
  Alcotest.(check (option (pair int int))) "survivor" (Some (5, 0)) (Heat.Sketch.estimate s "a")

let test_sketch_tie_breaks_deterministic () =
  let s = Heat.Sketch.create ~k:2 in
  Heat.Sketch.touch s "a";
  Heat.Sketch.touch s "b";
  Heat.Sketch.touch s "c";
  (* min count ties at 1 between a and b: the lexicographically larger key
     (b) is evicted, so the table is a pure function of the stream *)
  Alcotest.(check (option (pair int int))) "a kept" (Some (1, 0)) (Heat.Sketch.estimate s "a");
  Alcotest.(check (option (pair int int))) "b evicted" None (Heat.Sketch.estimate s "b");
  Alcotest.(check (list (triple string int int)))
    "top orders count desc, key asc"
    [ ("c", 2, 1); ("a", 1, 0) ]
    (Heat.Sketch.top s)

(* the Space-Saving guarantee: estimate never undercounts, and the true
   count lies within [estimate - error, estimate] for every tracked key *)
let test_sketch_error_bounds () =
  let s = Heat.Sketch.create ~k:8 in
  let truth = Hashtbl.create 64 in
  let rng = Xrand.create ~seed:17 () in
  for _ = 1 to 2_000 do
    (* zipf-ish without floats: quadratic rank collapse onto 40 keys *)
    let r = Xrand.int rng 1600 in
    let key = Printf.sprintf "k%02d" (r * r / 64_000) in
    Hashtbl.replace truth key (1 + Option.value ~default:0 (Hashtbl.find_opt truth key));
    Heat.Sketch.touch s key
  done;
  let top = Heat.Sketch.top s in
  Alcotest.(check int) "table full" 8 (List.length top);
  List.iter
    (fun (key, est, err) ->
      let true_count = Option.value ~default:0 (Hashtbl.find_opt truth key) in
      Alcotest.(check bool) "never undercounts" true (est >= true_count);
      Alcotest.(check bool) "lower bound holds" true (est - err <= true_count))
    top;
  (* counts weakly descending *)
  let counts = List.map (fun (_, c, _) -> c) top in
  Alcotest.(check bool) "descending" true
    (List.sort (fun a b -> compare b a) counts = counts)

(* Regression: [Heat.home_shard] is [range mod shards], which only equals
   hashed placement when [ranges] is a multiple of [shards] — with, say,
   3 shards and 64 ranges every range-heat row was attributed to the wrong
   home. Non-nesting configurations are now rejected at both layers, and
   when they nest, home attribution must agree with [Partition.hash_vertex]
   exactly. *)
let test_heat_ranges_must_nest_in_shards () =
  Alcotest.check_raises "Config.validate rejects non-nesting heat_ranges"
    (Invalid_argument "Config: bad heat_ranges (must be a multiple of n_shards)")
    (fun () ->
      Config.validate
        { Config.default with Config.enable_heat = true; n_shards = 3; heat_ranges = 64 });
  Alcotest.check_raises "Heat.create rejects non-nesting ranges"
    (Invalid_argument "Heat.create: ranges must be a multiple of shards")
    (fun () -> ignore (Heat.create ~shards:3 ~k:4 ~ranges:8 ~half_life:1_000.0));
  let h = Heat.create ~shards:3 ~k:4 ~ranges:9 ~half_life:1_000.0 in
  for i = 0 to 99 do
    let vid = "v" ^ string_of_int i in
    Alcotest.(check int) "home agrees with hashed placement"
      (Weaver_partition.Partition.hash_vertex ~shards:3 vid)
      (Heat.home_shard h (Heat.range_of h vid))
  done

(* ------------------------------------------------------------------ *)
(* Decayed accumulators, kinds, skew *)

let test_decay_halves_per_half_life () =
  let h = Heat.create ~shards:2 ~k:4 ~ranges:8 ~half_life:1_000.0 in
  let vid = "v0" in
  let r = Heat.range_of h vid in
  for _ = 1 to 4 do
    Heat.touch h ~shard:0 ~kind:Heat.Write ~now:0.0 vid
  done;
  Alcotest.(check (float 0.001)) "fresh" 4.0 (Heat.range_load h ~range:r ~kind:Heat.Write ~now:0.0);
  Alcotest.(check (float 0.001)) "one half-life" 2.0
    (Heat.range_load h ~range:r ~kind:Heat.Write ~now:1_000.0);
  Alcotest.(check (float 0.001)) "two half-lives" 1.0
    (Heat.range_load h ~range:r ~kind:Heat.Write ~now:2_000.0);
  Alcotest.(check (float 0.001)) "kinds separate" 0.0
    (Heat.range_load h ~range:r ~kind:Heat.Read ~now:0.0)

let test_kinds_and_cross_skips_sketch () =
  let h = Heat.create ~shards:2 ~k:4 ~ranges:8 ~half_life:1_000.0 in
  Heat.touch h ~shard:0 ~kind:Heat.Read ~now:0.0 "a";
  Heat.touch h ~shard:0 ~kind:Heat.Write ~now:0.0 "a";
  Heat.touch h ~shard:0 ~kind:Heat.Write ~now:0.0 "b";
  Heat.touch h ~shard:1 ~kind:Heat.Cross ~now:0.0 "c";
  Heat.touch h ~shard:1 ~kind:Heat.Cross ~now:0.0 "c";
  Alcotest.(check (triple int int int)) "shard0 totals" (1, 2, 0) (Heat.totals h ~shard:0);
  Alcotest.(check (triple int int int)) "shard1 totals" (0, 0, 2) (Heat.totals h ~shard:1);
  (* cross touches re-count writes already sketched at the owner, so they
     feed only the accumulators *)
  Alcotest.(check int) "cross not sketched" 0 (Heat.Sketch.size (Heat.sketch h ~shard:1));
  Alcotest.(check (list (triple string int int)))
    "shard0 top" [ ("a", 2, 0); ("b", 1, 0) ] (Heat.top h ~shard:0)

let test_skew_ratio () =
  let h = Heat.create ~shards:2 ~k:4 ~ranges:8 ~half_life:1_000.0 in
  Alcotest.(check (float 0.001)) "idle" 0.0 (Heat.skew h ~now:0.0);
  for i = 0 to 7 do
    Heat.touch h ~shard:0 ~kind:Heat.Write ~now:0.0 (Printf.sprintf "s%d" i)
  done;
  Alcotest.(check (float 0.001)) "one shard carries all" 2.0 (Heat.skew h ~now:0.0);
  for i = 0 to 7 do
    Heat.touch h ~shard:1 ~kind:Heat.Read ~now:0.0 (Printf.sprintf "t%d" i)
  done;
  Alcotest.(check (float 0.001)) "balanced" 1.0 (Heat.skew h ~now:0.0);
  for r = 0 to Heat.ranges h - 1 do
    Alcotest.(check int) "home shard nests" (r mod 2) (Heat.home_shard h r)
  done

(* ------------------------------------------------------------------ *)
(* Cluster wiring and the invisibility guarantee *)

let mixed cfg =
  let c = Cluster.create cfg in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
  let client = Cluster.client c in
  let rng = Xrand.create ~seed:41 () in
  let vids =
    List.init 24 (fun i ->
        let tx = Client.Tx.begin_ client in
        let v = Client.Tx.create_vertex tx ~id:(Printf.sprintf "hv%d" i) () in
        (match Client.commit client tx with Ok () -> () | Error e -> failwith e);
        v)
  in
  let vertices = Array.of_list vids in
  (* two-vertex property transactions: with the default 4 shards most of
     these fan out to two shards and exercise the cross path *)
  for i = 1 to 12 do
    let tx = Client.Tx.begin_ client in
    Client.Tx.set_vertex_prop tx ~vid:(Xrand.pick rng vertices) ~key:"k"
      ~value:(string_of_int i);
    Client.Tx.set_vertex_prop tx ~vid:(Xrand.pick rng vertices) ~key:"k2"
      ~value:(string_of_int i);
    ignore (Client.commit client tx)
  done;
  for _ = 1 to 6 do
    let tx = Client.Tx.begin_ client in
    ignore
      (Client.Tx.create_edge tx ~src:(Xrand.pick rng vertices)
         ~dst:(Xrand.pick rng vertices));
    ignore (Client.commit client tx)
  done;
  for _ = 1 to 6 do
    ignore
      (Client.run_program client ~prog:"get_edges" ~params:Progval.Null
         ~starts:[ Xrand.pick rng vertices ]
         ())
  done;
  Cluster.run_for c 30_000.0;
  c

let fingerprint c =
  let ctr = Cluster.counters c in
  let rt = Cluster.runtime c in
  ( ( ctr.Runtime.tx_committed,
      ctr.Runtime.tx_aborted,
      ctr.Runtime.tx_invalid,
      ctr.Runtime.progs_completed ),
    ( Weaver_sim.Net.messages_sent rt.Runtime.net,
      Weaver_sim.Net.messages_delivered rt.Runtime.net,
      ctr.Runtime.oracle_consults,
      ctr.Runtime.nop_msgs ) )

let heat_cfg seed =
  { Config.default with Config.enable_heat = true; heat_ranges = 64; seed }

let test_cluster_wiring () =
  let c = mixed (heat_cfg 5) in
  let h = Option.get (Cluster.heat c) in
  let sum kind =
    let acc = ref 0 in
    for s = 0 to Heat.shards h - 1 do
      acc := !acc + Heat.total h ~shard:s ~kind
    done;
    !acc
  in
  Alcotest.(check bool) "writes from apply" true (sum Heat.Write > 0);
  Alcotest.(check bool) "reads from program visits" true (sum Heat.Read > 0);
  Alcotest.(check bool) "cross from multi-shard commits" true (sum Heat.Cross > 0);
  (* the sketch surfaces real vertex handles *)
  let tops = List.concat_map (fun s -> Heat.top h ~shard:s)
      (List.init (Heat.shards h) Fun.id) in
  Alcotest.(check bool) "top nonempty" true (tops <> []);
  List.iter
    (fun (vid, count, _) ->
      Alcotest.(check bool) "counts positive" true (count > 0);
      Alcotest.(check bool) "handle prefix" true (String.length vid >= 2 && String.sub vid 0 2 = "hv"))
    tops;
  (* per-shard gauges surfaced in the registry *)
  let values = Metrics.int_values (Cluster.metrics c) in
  Alcotest.(check (option int)) "reads gauge"
    (Some (Heat.total h ~shard:0 ~kind:Heat.Read))
    (List.assoc_opt "heat.shard0.reads" values);
  Alcotest.(check (option int)) "writes gauge"
    (Some (Heat.total h ~shard:0 ~kind:Heat.Write))
    (List.assoc_opt "heat.shard0.writes" values)

let strip_obs values =
  let prefixed p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  List.filter (fun (name, _) -> not (prefixed "heat." name || prefixed "health." name)) values

(* the tentpole guarantee: heat and health observe, never perturb *)
let test_heat_is_invisible () =
  let base = { Config.default with Config.seed = 29 } in
  let off = mixed base in
  let voff = Metrics.int_values (Cluster.metrics off) in
  Alcotest.(check bool) "committed some" true ((Cluster.counters off).Runtime.tx_committed > 0);
  (* heat alone holds no timer: the ENTIRE registry — engine event counts
     included — matches once heat's own gauges are set aside *)
  let heat_on = mixed { base with Config.enable_heat = true } in
  Alcotest.(check bool) "heat: bit-identical counters" true
    (fingerprint off = fingerprint heat_on);
  Alcotest.(check bool) "heat: registry identical modulo own gauges" true
    (voff = strip_obs (Metrics.int_values (Cluster.metrics heat_on)));
  (* the watchdog runs off one periodic engine event, so the simulator's
     own event-count meta-gauges see that timer; every workload-visible
     instrument still matches bit-for-bit *)
  let both =
    mixed
      {
        base with
        Config.enable_heat = true;
        Config.enable_health = true;
        Config.health_period = 2_500.0;
      }
  in
  Alcotest.(check bool) "health: bit-identical counters" true
    (fingerprint off = fingerprint both);
  let engine_meta = [ "engine.events"; "engine.pending"; "engine.pending_hwm" ] in
  let drop_meta = List.filter (fun (name, _) -> not (List.mem name engine_meta)) in
  Alcotest.(check bool) "health: registry identical modulo own timer" true
    (drop_meta voff = drop_meta (strip_obs (Metrics.int_values (Cluster.metrics both))));
  Alcotest.(check bool) "watchdog actually ran" true
    (Health.checks (Option.get (Cluster.health both)) > 5)

let test_heat_deterministic () =
  let run () =
    let c = mixed (heat_cfg 31) in
    Export.heat_json (Option.get (Cluster.heat c)) ~now:(Cluster.now c)
  in
  Alcotest.(check string) "same seed, same heat map" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* Health watchdog: unit-level signal checks *)

let sig_alerts h name =
  List.filter_map
    (fun a -> if a.Health.a_signal = name then Some a.Health.a_severity else None)
    (Health.alerts h)

let test_health_watermark_signal () =
  let config = { Health.default_config with Health.stall_checks = 3 } in
  let h = Health.create ~config () in
  (* no gossip yet: never a stall *)
  for i = 1 to 6 do
    Health.observe h ~now:(float_of_int i) ~watermark:None ~values:[]
  done;
  Alcotest.(check (list string)) "no data, no alerts" []
    (List.map (fun a -> a.Health.a_signal) (Health.alerts h));
  (* frozen watermark: Warn at 3 stalled checks, Crit at 6, one alert each *)
  for i = 7 to 14 do
    Health.observe h ~now:(float_of_int i) ~watermark:(Some "w1") ~values:[]
  done;
  (* recovery fires a single Info *)
  Health.observe h ~now:15.0 ~watermark:(Some "w2") ~values:[];
  Health.observe h ~now:16.0 ~watermark:(Some "w2") ~values:[];
  Alcotest.(check int) "checks counted" 16 (Health.checks h);
  let sevs = List.map Health.severity_name (sig_alerts h "watermark") in
  Alcotest.(check (list string)) "edge-triggered warn/crit/recovery"
    [ "warn"; "crit"; "info" ] sevs

let test_health_queue_trend () =
  let config =
    { Health.default_config with Health.queue_trend_checks = 3; queue_floor = 4 }
  in
  let h = Health.create ~config () in
  let obs i depth =
    Health.observe h ~now:(float_of_int i) ~watermark:None
      ~values:[ ("shard0.queue_depth", depth) ]
  in
  List.iteri obs [ 1; 2; 3; 5 ];
  Alcotest.(check (list string)) "rising above floor warns" [ "warn" ]
    (List.map Health.severity_name (sig_alerts h "queue"));
  obs 4 20;
  Alcotest.(check (list string)) "4x floor escalates" [ "warn"; "crit" ]
    (List.map Health.severity_name (sig_alerts h "queue"));
  obs 5 20;
  (* plateau: no longer strictly rising *)
  Alcotest.(check (list string)) "plateau recovers" [ "warn"; "crit"; "info" ]
    (List.map Health.severity_name (sig_alerts h "queue"))

let test_health_shed_and_late () =
  let h = Health.create () in
  let obs i ~shed ~committed ~late =
    Health.observe h ~now:(float_of_int i) ~watermark:None
      ~values:
        [
          ("flow.shed_queue_full", shed);
          ("tx.committed", committed);
          ("client.late_replies", late);
        ]
  in
  obs 1 ~shed:0 ~committed:0 ~late:0;
  obs 2 ~shed:1 ~committed:12 ~late:0;
  (* 1 shed / 13 resolved = 7.7% >= 5% *)
  Alcotest.(check (list string)) "shed warns" [ "warn" ]
    (List.map Health.severity_name (sig_alerts h "shed"));
  obs 3 ~shed:10 ~committed:13 ~late:0;
  (* 9 / 10 resolved this window: far past 2x *)
  Alcotest.(check (list string)) "shed escalates" [ "warn"; "crit" ]
    (List.map Health.severity_name (sig_alerts h "shed"));
  obs 4 ~shed:10 ~committed:30 ~late:1;
  (* sheds stopped; 1 late / 17 commits = 5.9% warns *)
  Alcotest.(check (list string)) "shed recovers" [ "warn"; "crit"; "info" ]
    (List.map Health.severity_name (sig_alerts h "shed"));
  Alcotest.(check (list string)) "late warns" [ "warn" ]
    (List.map Health.severity_name (sig_alerts h "late"))

let test_health_skew_signal () =
  let h = Health.create () in
  let obs i busy =
    Health.observe h ~now:(float_of_int i) ~watermark:None
      ~values:(List.mapi (fun s b -> (Printf.sprintf "util.shard%d.busy_us" s, b)) busy)
  in
  obs 1 [ 0; 0; 0; 0 ];
  obs 2 [ 400; 0; 0; 0 ];
  (* max/mean = 4.0 >= 3.0 *)
  Alcotest.(check (list string)) "one hot shard warns" [ "warn" ]
    (List.map Health.severity_name (sig_alerts h "skew"));
  obs 3 [ 500; 100; 100; 100 ];
  Alcotest.(check (list string)) "balanced window recovers" [ "warn"; "info" ]
    (List.map Health.severity_name (sig_alerts h "skew"));
  let json = Json.parse_exn (Health.to_json h) in
  Alcotest.(check (option (float 0.01))) "json checks"
    (Some 3.0)
    (Option.bind (Json.member "checks" json) Json.to_number)

(* ------------------------------------------------------------------ *)
(* Watchdog against a scripted fault: a crashed gatekeeper (with failure
   detection suppressed) freezes the GC watermark, and the stall alert
   fires — then escalates — strictly after the crash *)

let test_watchdog_detects_watermark_stall () =
  let cfg =
    {
      Config.default with
      Config.enable_health = true;
      Config.health_period = 5_000.0;
      Config.gc_period = 20_000.0;
      Config.failure_timeout = 1.0e9;
      Config.seed = 7;
    }
  in
  let c = Cluster.create cfg in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
  Cluster.run_for c 80_000.0;
  let h = Option.get (Cluster.health c) in
  Alcotest.(check (list string)) "healthy: no stall alerts" []
    (List.map Health.severity_name (sig_alerts h "watermark"));
  let crash_at = Cluster.now c +. 10_000.0 in
  let installed =
    Cluster.install_fault_plan c
      [
        {
          Weaver_sim.Fault.at = crash_at;
          action = Weaver_sim.Fault.Crash (Weaver_sim.Fault.Gatekeeper 0);
        };
      ]
  in
  Alcotest.(check int) "plan installed" 1 installed;
  Cluster.run_for c 400_000.0;
  let wm = List.filter (fun a -> a.Health.a_signal = "watermark") (Health.alerts h) in
  Alcotest.(check (list string)) "warn then crit, edge-triggered"
    [ "warn"; "crit" ]
    (List.map (fun a -> Health.severity_name a.Health.a_severity) wm);
  List.iter
    (fun a ->
      Alcotest.(check bool) "fires after the crash" true (a.Health.a_time > crash_at))
    wm;
  (* the summary report carries the watchdog line *)
  let report = Cluster.report c in
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report mentions health" true (contains ~sub:"health:" report)

(* ------------------------------------------------------------------ *)
(* Metrics re-registration regression (satellite): replacing a gauge with
   a gauge is the actor-respawn path and must keep working; shadowing a
   counter or reservoir must raise instead of corrupting fingerprints *)

let test_metrics_reregistration () =
  let m = Metrics.create () in
  Metrics.gauge m "g" (fun () -> 1);
  Metrics.gauge m "g" (fun () -> 2);
  Alcotest.(check (option int)) "gauge over gauge: latest wins" (Some 2)
    (List.assoc_opt "g" (Metrics.int_values m));
  let ctr = Metrics.counter m "c" in
  Metrics.incr ctr;
  Alcotest.check_raises "gauge over counter raises"
    (Invalid_argument "Metrics.gauge: c is already a counter") (fun () ->
      Metrics.gauge m "c" (fun () -> 0));
  ignore (Metrics.reservoir m "r");
  Alcotest.check_raises "gauge over reservoir raises"
    (Invalid_argument "Metrics.gauge: r is already a reservoir") (fun () ->
      Metrics.gauge m "r" (fun () -> 0));
  Alcotest.(check (option int)) "counter untouched" (Some 1)
    (List.assoc_opt "c" (Metrics.int_values m))

let suites =
  [
    ( "heat",
      [
        Alcotest.test_case "sketch exact under capacity" `Quick
          test_sketch_exact_under_capacity;
        Alcotest.test_case "sketch eviction inherits min" `Quick
          test_sketch_eviction_inherits_min;
        Alcotest.test_case "sketch deterministic tie-breaks" `Quick
          test_sketch_tie_breaks_deterministic;
        Alcotest.test_case "sketch error bounds" `Quick test_sketch_error_bounds;
        Alcotest.test_case "heat ranges nest in shards" `Quick
          test_heat_ranges_must_nest_in_shards;
        Alcotest.test_case "decay halves per half-life" `Quick
          test_decay_halves_per_half_life;
        Alcotest.test_case "kinds tracked separately" `Quick
          test_kinds_and_cross_skips_sketch;
        Alcotest.test_case "skew ratio" `Quick test_skew_ratio;
        Alcotest.test_case "cluster wiring" `Quick test_cluster_wiring;
        Alcotest.test_case "heat never perturbs (determinism)" `Quick
          test_heat_is_invisible;
        Alcotest.test_case "heat map is deterministic" `Quick test_heat_deterministic;
      ] );
    ( "health",
      [
        Alcotest.test_case "watermark stall signal" `Quick test_health_watermark_signal;
        Alcotest.test_case "queue growth trend" `Quick test_health_queue_trend;
        Alcotest.test_case "shed and late rates" `Quick test_health_shed_and_late;
        Alcotest.test_case "shard skew signal" `Quick test_health_skew_signal;
        Alcotest.test_case "watchdog catches scripted stall" `Slow
          test_watchdog_detects_watermark_stall;
        Alcotest.test_case "metrics re-registration" `Quick test_metrics_reregistration;
      ] );
  ]
