(* Tests for hash/LDG/restreaming partitioners and their quality metrics. *)

open Weaver_partition
module Xrand = Weaver_util.Xrand

(* a ring of n vertices: perfect partitions have edge-cut ~ shards/n *)
let ring n =
  List.init n (fun i ->
      let v i = "v" ^ string_of_int i in
      (v i, [ v ((i + 1) mod n); v ((i + n - 1) mod n) ]))

(* c dense cliques of size k, no inter-clique edges *)
let cliques c k =
  List.concat
    (List.init c (fun ci ->
         List.init k (fun i ->
             let v j = Printf.sprintf "c%d_%d" ci j in
             (v i, List.filter_map (fun j -> if j = i then None else Some (v j))
                     (List.init k (fun j -> j))))))

let test_hash_deterministic_and_in_range () =
  for i = 0 to 100 do
    let id = "vertex" ^ string_of_int i in
    let s = Partition.hash_vertex ~shards:7 id in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 7);
    Alcotest.(check int) "deterministic" s (Partition.hash_vertex ~shards:7 id)
  done

let test_hash_spreads () =
  let counts = Array.make 4 0 in
  for i = 0 to 999 do
    let s = Partition.hash_vertex ~shards:4 ("v" ^ string_of_int i) in
    counts.(s) <- counts.(s) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly even" true (c > 150 && c < 350))
    counts

let test_ldg_assigns_everyone () =
  let g = ring 100 in
  let a = Partition.ldg ~shards:4 g in
  Alcotest.(check int) "all assigned" 100 (Hashtbl.length a);
  Hashtbl.iter (fun _ s -> Alcotest.(check bool) "range" true (s >= 0 && s < 4)) a

let test_ldg_beats_hash_on_cliques () =
  let g = cliques 4 20 in
  let ldg = Partition.ldg ~shards:4 g in
  let hash : Partition.assignment = Hashtbl.create 64 in
  List.iter (fun (v, _) -> Hashtbl.replace hash v (Partition.hash_vertex ~shards:4 v)) g;
  let cut_ldg = Partition.edge_cut ldg g in
  let cut_hash = Partition.edge_cut hash g in
  Alcotest.(check bool)
    (Printf.sprintf "ldg cut %.3f < hash cut %.3f" cut_ldg cut_hash)
    true (cut_ldg < cut_hash)

let test_ldg_balance_bounded () =
  let g = cliques 3 30 in
  let a = Partition.ldg ~shards:3 ~slack:0.1 g in
  Alcotest.(check bool) "balance within slack+eps" true
    (Partition.balance a ~shards:3 <= 1.25)

let test_restream_no_worse_than_ldg () =
  let g = cliques 5 16 in
  let one = Partition.restream ~shards:5 ~rounds:1 g in
  let five = Partition.restream ~shards:5 ~rounds:5 g in
  let c1 = Partition.edge_cut one g and c5 = Partition.edge_cut five g in
  Alcotest.(check bool)
    (Printf.sprintf "restream %.3f <= single pass %.3f + eps" c5 c1)
    true (c5 <= c1 +. 0.05)

let test_edge_cut_extremes () =
  let g = ring 10 in
  let all_same : Partition.assignment = Hashtbl.create 16 in
  List.iter (fun (v, _) -> Hashtbl.replace all_same v 0) g;
  Alcotest.(check (float 1e-9)) "single shard: no cut" 0.0 (Partition.edge_cut all_same g);
  let alternating : Partition.assignment = Hashtbl.create 16 in
  List.iteri (fun i (v, _) -> Hashtbl.replace alternating v (i mod 2)) g;
  Alcotest.(check (float 1e-9)) "alternating ring: all cut" 1.0
    (Partition.edge_cut alternating g)

let test_balance_perfect_and_skewed () =
  let a : Partition.assignment = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace a ("v" ^ string_of_int i) (i mod 2)) (List.init 10 Fun.id);
  Alcotest.(check (float 1e-9)) "even" 1.0 (Partition.balance a ~shards:2);
  let b : Partition.assignment = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace b ("v" ^ string_of_int i) 0) (List.init 10 Fun.id);
  Alcotest.(check (float 1e-9)) "all on one of two" 2.0 (Partition.balance b ~shards:2)

(* Regression: the LDG capacity penalty [1 - load/capacity] used to go
   negative once a shard exceeded capacity, so a shard holding ALL of a
   vertex's neighbours scored BELOW a neighbourless shard of equal load —
   the preference inverted exactly when capacity pressure was highest.
   Under-provision capacity so every shard runs over it: v3's only
   neighbour lives on shard A, both shards equally loaded, yet the broken
   penalty sends v3 to the stranger shard. *)
let test_ldg_over_capacity_keeps_neighbours () =
  let g = [ ("v1", []); ("v2", []); ("v3", [ "v1" ]) ] in
  let a = Partition.ldg ~shards:2 ~slack:(-0.75) g in
  Alcotest.(check int) "v3 joins its only neighbour"
    (Hashtbl.find a "v1") (Hashtbl.find a "v3")

(* Regression: [balance] silently skipped entries with [s >= shards],
   reporting a corrupt directory as balanced *)
let test_balance_rejects_out_of_range () =
  let a : Partition.assignment = Hashtbl.create 4 in
  Hashtbl.replace a "v0" 0;
  Hashtbl.replace a "v1" 5;
  Alcotest.check_raises "out-of-range shard raises"
    (Invalid_argument "Partition.balance: shard 5 out of range (shards = 2)")
    (fun () -> ignore (Partition.balance a ~shards:2))

let prop_ldg_total_and_balanced =
  QCheck.Test.make ~name:"ldg assigns all vertices within capacity" ~count:50
    QCheck.(pair (int_range 1 8) (int_range 1 200))
    (fun (shards, n) ->
      let rng = Xrand.create ~seed:(shards + n) () in
      let vs =
        List.init n (fun i ->
            let nbrs =
              List.init (Xrand.int rng 5) (fun _ -> "v" ^ string_of_int (Xrand.int rng n))
            in
            ("v" ^ string_of_int i, nbrs))
      in
      let a = Partition.ldg ~shards ~slack:0.1 vs in
      Hashtbl.length a = n
      && Partition.balance a ~shards <= (1.1 +. (2.0 *. float_of_int shards /. float_of_int n)) +. 1e-9)

let suites =
  [
    ( "partition",
      [
        Alcotest.test_case "hash deterministic" `Quick test_hash_deterministic_and_in_range;
        Alcotest.test_case "hash spreads" `Quick test_hash_spreads;
        Alcotest.test_case "ldg total" `Quick test_ldg_assigns_everyone;
        Alcotest.test_case "ldg beats hash on cliques" `Quick test_ldg_beats_hash_on_cliques;
        Alcotest.test_case "ldg balance" `Quick test_ldg_balance_bounded;
        Alcotest.test_case "restream improves" `Quick test_restream_no_worse_than_ldg;
        Alcotest.test_case "edge cut extremes" `Quick test_edge_cut_extremes;
        Alcotest.test_case "balance metric" `Quick test_balance_perfect_and_skewed;
        Alcotest.test_case "ldg over capacity keeps neighbours" `Quick
          test_ldg_over_capacity_keeps_neighbours;
        Alcotest.test_case "balance rejects out-of-range" `Quick
          test_balance_rejects_out_of_range;
        QCheck_alcotest.to_alcotest prop_ldg_total_and_balanced;
      ] );
  ]
