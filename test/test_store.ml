(* Tests for the transactional backing store: OCC validation, atomicity,
   read-your-writes, scans, and a brute-force serializability check. *)

open Weaver_store

let test_put_get_commit () =
  let s = Store.create () in
  let tx = Store.Tx.begin_ s in
  Store.Tx.put tx "a" 1;
  Store.Tx.put tx "b" 2;
  Alcotest.(check bool) "commit ok" true (Store.Tx.commit tx = Ok ());
  Alcotest.(check (option int)) "a" (Some 1) (Store.get_now s "a");
  Alcotest.(check (option int)) "b" (Some 2) (Store.get_now s "b");
  Alcotest.(check int) "live count" 2 (Store.length s)

let test_read_your_writes () =
  let s = Store.create () in
  let tx = Store.Tx.begin_ s in
  Store.Tx.put tx "k" 7;
  Alcotest.(check (option int)) "sees own write" (Some 7) (Store.Tx.get tx "k");
  Store.Tx.delete tx "k";
  Alcotest.(check (option int)) "sees own delete" None (Store.Tx.get tx "k");
  Alcotest.(check bool) "commit" true (Store.Tx.commit tx = Ok ());
  Alcotest.(check (option int)) "deleted" None (Store.get_now s "k")

let test_isolation_before_commit () =
  let s = Store.create () in
  let tx = Store.Tx.begin_ s in
  Store.Tx.put tx "k" 1;
  Alcotest.(check (option int)) "not visible before commit" None (Store.get_now s "k");
  Store.Tx.abort tx;
  Alcotest.(check (option int)) "aborted invisible" None (Store.get_now s "k");
  Alcotest.(check int) "abort counted" 1 (Store.aborts s)

let test_occ_conflict_on_read () =
  let s = Store.create () in
  let init = Store.Tx.begin_ s in
  Store.Tx.put init "k" 0;
  Alcotest.(check bool) "init" true (Store.Tx.commit init = Ok ());
  (* t1 reads k, t2 updates k, then t1 commits: conflict *)
  let t1 = Store.Tx.begin_ s in
  ignore (Store.Tx.get t1 "k");
  Store.Tx.put t1 "out" 1;
  let t2 = Store.Tx.begin_ s in
  Store.Tx.put t2 "k" 99;
  Alcotest.(check bool) "t2 commits" true (Store.Tx.commit t2 = Ok ());
  (match Store.Tx.commit t1 with
  | Error (`Conflict k) -> Alcotest.(check string) "conflicting key" "k" k
  | Ok () -> Alcotest.fail "t1 must abort");
  Alcotest.(check (option int)) "t1 writes discarded" None (Store.get_now s "out")

let test_blind_writes_do_not_conflict () =
  let s = Store.create () in
  let t1 = Store.Tx.begin_ s in
  let t2 = Store.Tx.begin_ s in
  Store.Tx.put t1 "k" 1;
  Store.Tx.put t2 "k" 2;
  Alcotest.(check bool) "t1" true (Store.Tx.commit t1 = Ok ());
  Alcotest.(check bool) "t2 blind write ok" true (Store.Tx.commit t2 = Ok ());
  Alcotest.(check (option int)) "last writer wins" (Some 2) (Store.get_now s "k")

let test_conflict_on_deleted_vertex () =
  (* the paper's example: deleting an already-deleted vertex aborts at the
     backing store (§4.2) — modelled as read-validate-delete *)
  let s = Store.create () in
  let init = Store.Tx.begin_ s in
  Store.Tx.put init "v" "vertex";
  Alcotest.(check bool) "init" true (Store.Tx.commit init = Ok ());
  let t1 = Store.Tx.begin_ s in
  let t2 = Store.Tx.begin_ s in
  ignore (Store.Tx.get t1 "v");
  Store.Tx.delete t1 "v";
  ignore (Store.Tx.get t2 "v");
  Store.Tx.delete t2 "v";
  Alcotest.(check bool) "first delete ok" true (Store.Tx.commit t1 = Ok ());
  Alcotest.(check bool) "second delete aborts" true
    (match Store.Tx.commit t2 with Error (`Conflict _) -> true | Ok () -> false)

let test_version_bumps () =
  let s = Store.create () in
  Alcotest.(check int) "unwritten version" 0 (Store.version s "k");
  let t1 = Store.Tx.begin_ s in
  Store.Tx.put t1 "k" 1;
  ignore (Store.Tx.commit t1);
  Alcotest.(check int) "after put" 1 (Store.version s "k");
  let t2 = Store.Tx.begin_ s in
  Store.Tx.delete t2 "k";
  ignore (Store.Tx.commit t2);
  Alcotest.(check int) "delete bumps too" 2 (Store.version s "k")

let test_scan_prefix () =
  let s = Store.create () in
  let tx = Store.Tx.begin_ s in
  Store.Tx.put tx "shard0/v1" 1;
  Store.Tx.put tx "shard0/v2" 2;
  Store.Tx.put tx "shard1/v3" 3;
  ignore (Store.Tx.commit tx);
  let shard0 = Store.scan_prefix s ~prefix:"shard0/" in
  Alcotest.(check int) "two keys" 2 (List.length shard0);
  Alcotest.(check bool) "right keys" true
    (List.mem_assoc "shard0/v1" shard0 && List.mem_assoc "shard0/v2" shard0);
  (* order is part of the contract: shard crash-recovery reloads iterate a
     scan, so an unspecified (hash) order would make recovery depend on
     Hashtbl internals. Insert scrambled, expect keys sorted. *)
  let tx = Store.Tx.begin_ s in
  List.iter
    (fun i -> Store.Tx.put tx (Printf.sprintf "sorted/%02d" i) i)
    [ 7; 2; 19; 0; 13; 5; 11; 3; 17; 8 ];
  ignore (Store.Tx.commit tx);
  let keys = List.map fst (Store.scan_prefix s ~prefix:"sorted/") in
  Alcotest.(check (list string)) "scan is key-sorted"
    (List.sort String.compare keys) keys;
  Alcotest.(check int) "all present" 10 (List.length keys)

let test_finished_handle_rejected () =
  let s = Store.create () in
  let tx = Store.Tx.begin_ s in
  ignore (Store.Tx.commit tx);
  Alcotest.check_raises "reuse rejected"
    (Invalid_argument "Store.Tx: finished handle") (fun () ->
      Store.Tx.put tx "k" 1)

let test_atomicity_multi_key () =
  let s = Store.create () in
  let seed = Store.Tx.begin_ s in
  Store.Tx.put seed "x" 0;
  Store.Tx.put seed "y" 0;
  ignore (Store.Tx.commit seed);
  (* t reads x and y, writes both; concurrent u bumps y → t aborts wholesale *)
  let t = Store.Tx.begin_ s in
  ignore (Store.Tx.get t "x");
  ignore (Store.Tx.get t "y");
  Store.Tx.put t "x" 10;
  Store.Tx.put t "y" 10;
  let u = Store.Tx.begin_ s in
  Store.Tx.put u "y" 5;
  ignore (Store.Tx.commit u);
  Alcotest.(check bool) "t aborts" true
    (match Store.Tx.commit t with Error _ -> true | Ok () -> false);
  Alcotest.(check (option int)) "x untouched" (Some 0) (Store.get_now s "x");
  Alcotest.(check (option int)) "y from u" (Some 5) (Store.get_now s "y")

(* Serializability property: run n transactions with interleaved reads, then
   commit them in some order; the committed subset must be equivalent to a
   serial execution in *some* permutation. We brute-force over permutations
   of the committed transactions on a reference in-memory map. *)

type optrace = { reads : string list; writes : (string * int) list }

let run_serial txs order =
  let map = Hashtbl.create 8 in
  List.iter
    (fun idx ->
      let tx = List.nth txs idx in
      ignore (List.map (fun k -> Hashtbl.find_opt map k) tx.reads);
      List.iter (fun (k, v) -> Hashtbl.replace map k v) tx.writes)
    order;
  map

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let prop_occ_serializable =
  QCheck.Test.make ~name:"committed OCC transactions are serializable" ~count:200
    (* each tx: (read keys ⊆ {0..3}, writes (key, val)) *)
    QCheck.(
      list_of_size (Gen.int_range 1 4)
        (pair (list_of_size (Gen.int_range 0 3) (int_bound 3))
           (list_of_size (Gen.int_range 0 3) (pair (int_bound 3) (int_bound 100)))))
    (fun specs ->
      let key i = "k" ^ string_of_int i in
      let s = Store.create () in
      (* begin all, interleave reads, then commit in sequence *)
      let txs =
        List.map
          (fun (rks, wks) ->
            let tx = Store.Tx.begin_ s in
            (tx, rks, wks))
          specs
      in
      List.iter (fun (tx, rks, _) -> List.iter (fun k -> ignore (Store.Tx.get tx (key k))) rks) txs;
      let committed =
        List.filter_map
          (fun (tx, rks, wks) ->
            List.iter (fun (k, v) -> Store.Tx.put tx (key k) v) wks;
            match Store.Tx.commit tx with
            | Ok () ->
                Some
                  {
                    reads = List.map key rks;
                    writes = List.map (fun (k, v) -> (key k, v)) wks;
                  }
            | Error _ -> None)
          txs
      in
      (* final store state must match some serial order of committed txs *)
      let indices = List.init (List.length committed) (fun i -> i) in
      let matches order =
        let m = run_serial committed order in
        let keys = List.init 4 (fun i -> key i) in
        List.for_all (fun k -> Hashtbl.find_opt m k = Store.get_now s k) keys
      in
      List.exists matches (permutations indices))

let suites =
  [
    ( "store",
      [
        Alcotest.test_case "put/get/commit" `Quick test_put_get_commit;
        Alcotest.test_case "read-your-writes" `Quick test_read_your_writes;
        Alcotest.test_case "isolation before commit" `Quick test_isolation_before_commit;
        Alcotest.test_case "occ conflict on read" `Quick test_occ_conflict_on_read;
        Alcotest.test_case "blind writes" `Quick test_blind_writes_do_not_conflict;
        Alcotest.test_case "double delete aborts" `Quick test_conflict_on_deleted_vertex;
        Alcotest.test_case "version bumps" `Quick test_version_bumps;
        Alcotest.test_case "scan prefix" `Quick test_scan_prefix;
        Alcotest.test_case "finished handle" `Quick test_finished_handle_rejected;
        Alcotest.test_case "multi-key atomicity" `Quick test_atomicity_multi_key;
        QCheck_alcotest.to_alcotest prop_occ_serializable;
      ] );
  ]
