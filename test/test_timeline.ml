(* Tests for the time-dimension observability layer: timeline sampling
   (including the determinism guarantee), utilization/queue-depth gauges,
   the Chrome trace export parsed back with the minimal JSON reader, and
   the slow-request log. *)

open Weaver_core
module Timeline = Weaver_obs.Timeline
module Export = Weaver_obs.Export
module Slowlog = Weaver_obs.Slowlog
module Trace = Weaver_obs.Trace
module Metrics = Weaver_obs.Metrics
module Json = Weaver_util.Json
module Engine = Weaver_sim.Engine
module Net = Weaver_sim.Net

(* ------------------------------------------------------------------ *)
(* Timeline ring buffer *)

let test_timeline_basic () =
  let tl = Timeline.create ~capacity:8 in
  for i = 1 to 5 do
    Timeline.record tl ~now:(float_of_int (i * 100)) [ ("a", i); ("b", i * 10) ]
  done;
  Alcotest.(check int) "length" 5 (Timeline.length tl);
  Alcotest.(check (list string)) "names" [ "a"; "b" ] (Timeline.names tl);
  Alcotest.(check (list (pair (float 0.0) int)))
    "series a"
    [ (100.0, 1); (200.0, 2); (300.0, 3); (400.0, 4); (500.0, 5) ]
    (Timeline.series tl "a");
  Alcotest.(check (list (pair (float 0.0) int))) "missing" [] (Timeline.series tl "zz")

let test_timeline_wraps () =
  let tl = Timeline.create ~capacity:3 in
  for i = 1 to 10 do
    Timeline.record tl ~now:(float_of_int i) [ ("x", i) ]
  done;
  Alcotest.(check int) "capped" 3 (Timeline.length tl);
  Alcotest.(check (list (pair (float 0.0) int)))
    "keeps newest, oldest first"
    [ (8.0, 8); (9.0, 9); (10.0, 10) ]
    (Timeline.series tl "x")

let test_timeline_rates () =
  let tl = Timeline.create ~capacity:8 in
  (* 1000 µs apart; counter climbs 5 per sample -> 5000/s *)
  List.iter
    (fun (t, v) -> Timeline.record tl ~now:t [ ("c", v) ])
    [ (1_000.0, 0); (2_000.0, 5); (3_000.0, 10) ];
  Alcotest.(check (list (pair (float 0.01) (float 0.01))))
    "per-second rates"
    [ (2_000.0, 5_000.0); (3_000.0, 5_000.0) ]
    (Timeline.rates tl "c")

let test_timeline_rates_edges () =
  let tl = Timeline.create ~capacity:4 in
  let rates_of t = Timeline.rates t "c" in
  Alcotest.(check (list (pair (float 0.01) (float 0.01)))) "empty" [] (rates_of tl);
  Timeline.record tl ~now:1_000.0 [ ("c", 5) ];
  Alcotest.(check (list (pair (float 0.01) (float 0.01))))
    "single sample has no window" [] (rates_of tl);
  (* a coincident sample makes a zero-width window: skipped, not divided *)
  Timeline.record tl ~now:1_000.0 [ ("c", 7) ];
  Alcotest.(check (list (pair (float 0.01) (float 0.01))))
    "zero-width window skipped" [] (rates_of tl);
  (* a gauge can fall: signed delta, not clamped *)
  Timeline.record tl ~now:2_000.0 [ ("c", 2) ];
  Alcotest.(check (list (pair (float 0.01) (float 0.01))))
    "falling gauge is signed"
    [ (2_000.0, -5_000.0) ]
    (rates_of tl);
  (* history longer than the ring: only the surviving windows remain *)
  let tl2 = Timeline.create ~capacity:2 in
  for i = 1 to 6 do
    Timeline.record tl2 ~now:(float_of_int i *. 1_000.0) [ ("c", i * 10) ]
  done;
  Alcotest.(check (list (pair (float 0.01) (float 0.01))))
    "window wider than ring"
    [ (6_000.0, 10_000.0) ]
    (rates_of tl2)

(* ------------------------------------------------------------------ *)
(* Sampling in a live cluster, and the determinism guarantee *)

let mixed_workload cfg =
  let c = Cluster.create cfg in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
  let client = Cluster.client c in
  let rng = Weaver_util.Xrand.create ~seed:99 () in
  let vids =
    List.init 20 (fun i ->
        let tx = Client.Tx.begin_ client in
        let v = Client.Tx.create_vertex tx ~id:(Printf.sprintf "d%d" i) () in
        (match Client.commit client tx with Ok () -> () | Error e -> failwith e);
        v)
  in
  let vertices = Array.of_list vids in
  for _ = 1 to 10 do
    let tx = Client.Tx.begin_ client in
    let src = Weaver_util.Xrand.pick rng vertices in
    ignore (Client.Tx.create_edge tx ~src ~dst:(Weaver_util.Xrand.pick rng vertices));
    ignore (Client.commit client tx)
  done;
  for _ = 1 to 5 do
    ignore
      (Client.run_program client ~prog:"get_edges" ~params:Progval.Null
         ~starts:[ Weaver_util.Xrand.pick rng vertices ]
         ())
  done;
  Cluster.run_for c 20_000.0;
  c

let fingerprint c =
  let ctr = Cluster.counters c in
  let rt = Cluster.runtime c in
  ( ( ctr.Runtime.tx_committed,
      ctr.Runtime.tx_aborted,
      ctr.Runtime.tx_invalid,
      ctr.Runtime.progs_completed ),
    ( Net.messages_sent rt.Runtime.net,
      Net.messages_delivered rt.Runtime.net,
      ctr.Runtime.oracle_consults,
      ctr.Runtime.nop_msgs ) )

(* the tentpole guarantee: sampling observes, never perturbs — identical
   seed with and without the timeline produces bit-identical counters *)
let test_sampling_is_invisible () =
  let base = { Config.default with Config.seed = 21 } in
  let off = mixed_workload base in
  let on =
    mixed_workload
      {
        base with
        Config.enable_timeline = true;
        Config.timeline_period = 500.0;
        Config.timeline_capacity = 64;
      }
  in
  Alcotest.(check bool) "committed some" true ((Cluster.counters off).Runtime.tx_committed > 0);
  Alcotest.(check bool)
    "bit-identical counters" true
    (fingerprint off = fingerprint on);
  let tl = Option.get (Cluster.timeline on) in
  Alcotest.(check bool) "sampler actually ran" true (Timeline.length tl > 10);
  Alcotest.(check bool)
    "tx series is monotone" true
    (let s = List.map snd (Timeline.series tl "tx.committed") in
     List.sort compare s = s)

let test_utilization_gauges () =
  let c =
    mixed_workload
      { Config.default with Config.enable_timeline = true; Config.timeline_period = 1_000.0 }
  in
  let values = Metrics.int_values (Cluster.metrics c) in
  let v name =
    match List.assoc_opt name values with
    | Some v -> v
    | None -> Alcotest.failf "gauge %s missing" name
  in
  Alcotest.(check bool) "gk0 accumulated busy time" true (v "util.gk0.busy_us" > 0);
  Alcotest.(check bool) "shard busy gauge present" true (v "util.shard0.busy_us" >= 0);
  Alcotest.(check bool) "queue depth gauge present" true (v "util.shard0.queue_depth" >= 0);
  Alcotest.(check bool) "engine hwm positive" true (v "engine.pending_hwm" > 0);
  Alcotest.(check bool) "net hwm positive" true (v "net.in_flight_hwm" > 0);
  Alcotest.(check bool) "channel hwm bounded by net hwm" true
    (v "net.channel_hwm" <= v "net.in_flight_hwm");
  Alcotest.(check bool) "in-flight bounded by hwm" true
    (v "net.in_flight" <= v "net.in_flight_hwm")

let test_net_in_flight_drains () =
  let engine = Engine.create ~seed:3 () in
  let net = Net.create engine ~latency:(Net.uniform_latency ~base:50.0 ~jitter:0.0) in
  Net.register net 1 (fun ~src:_ _ -> ());
  for _ = 1 to 5 do
    Net.send net ~src:0 ~dst:1 "m"
  done;
  Alcotest.(check int) "five in flight" 5 (Net.in_flight net);
  Alcotest.(check int) "channel load" 5 (Net.channel_in_flight net ~src:0 ~dst:1);
  Engine.run engine;
  Alcotest.(check int) "drained" 0 (Net.in_flight net);
  Alcotest.(check int) "channel drained" 0 (Net.channel_in_flight net ~src:0 ~dst:1);
  Alcotest.(check int) "hwm kept" 5 (Net.in_flight_high_water net);
  Alcotest.(check int) "channel hwm kept" 5 (Net.channel_high_water net)

(* ------------------------------------------------------------------ *)
(* Chrome trace export, parsed back with the minimal JSON reader *)

let traced_cluster () =
  let cfg = { Config.default with Config.enable_tracing = true } in
  let c = Cluster.create cfg in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
  let client = Cluster.client c in
  let traces = ref [] in
  let tx = Client.Tx.begin_ client in
  let a = Client.Tx.create_vertex tx ~id:"xa" () in
  let b = Client.Tx.create_vertex tx ~id:"xb" () in
  ignore (Client.Tx.create_edge tx ~src:a ~dst:b);
  (match Client.commit client tx with Ok () -> () | Error e -> failwith e);
  traces := Client.last_request_id client :: !traces;
  (match
     Client.run_program client ~prog:"get_edges" ~params:Progval.Null ~starts:[ a ] ()
   with
  | Ok _ -> ()
  | Error e -> failwith e);
  traces := Client.last_request_id client :: !traces;
  Cluster.run_for c 10_000.0;
  (c, List.rev !traces)

let test_chrome_export_parses_back () =
  let c, traces = traced_cluster () in
  let tr = Option.get (Cluster.request_tracer c) in
  let doc =
    Export.chrome_trace tr ~traces ~actor_of_addr:(Cluster.actor_of_addr c) ()
  in
  let json =
    match Json.parse doc with
    | Ok v -> v
    | Error e -> Alcotest.failf "export is not valid JSON: %s" e
  in
  let events = Option.get (Option.bind (Json.member "traceEvents" json) Json.to_list) in
  let ph e = Option.value ~default:"" (Json.string_member "ph" e) in
  let metas = List.filter (fun e -> ph e = "M") events in
  let spans = List.filter (fun e -> ph e = "X") events in
  let flows_s = List.filter (fun e -> ph e = "s") events in
  let flows_f = List.filter (fun e -> ph e = "f") events in
  (* pid -> actor name from the process_name metadata events *)
  let actor_of_pid =
    List.filter_map
      (fun e ->
        match
          ( Json.number_member "pid" e,
            Option.bind (Json.member "args" e) (Json.string_member "name") )
        with
        | Some pid, Some name -> Some (int_of_float pid, name)
        | _ -> None)
      metas
  in
  (* at least one span per instrumented actor kind on the request path *)
  let span_actors =
    List.filter_map
      (fun e ->
        Option.bind (Json.number_member "pid" e) (fun pid ->
            List.assoc_opt (int_of_float pid) actor_of_pid))
      spans
  in
  let has prefix =
    List.exists (fun a -> String.length a >= String.length prefix
                          && String.sub a 0 (String.length prefix) = prefix)
      span_actors
  in
  Alcotest.(check bool) "gatekeeper spans" true (has "gk");
  Alcotest.(check bool) "store spans" true (has "store");
  Alcotest.(check bool) "shard spans" true (has "shard");
  (* every span's pid resolves to a named process *)
  List.iter
    (fun e ->
      let pid = int_of_float (Option.get (Json.number_member "pid" e)) in
      Alcotest.(check bool) "span pid named" true
        (List.mem_assoc pid actor_of_pid))
    spans;
  (* flow events mirror the message ledger: one s/f pair per message *)
  let ledger = List.fold_left (fun acc id -> acc + Trace.message_count tr id) 0 traces in
  Alcotest.(check bool) "ledger nonempty" true (ledger > 0);
  Alcotest.(check int) "one flow start per message" ledger (List.length flows_s);
  Alcotest.(check int) "one flow finish per message" ledger (List.length flows_f);
  let ids l =
    List.sort compare
      (List.filter_map (fun e -> Option.map int_of_float (Json.number_member "id" e)) l)
  in
  Alcotest.(check (list int)) "flow ids pair up" (ids flows_s) (ids flows_f);
  (* spans carry positive-or-zero durations and their trace id as tid *)
  List.iter
    (fun e ->
      let dur = Option.get (Json.number_member "dur" e) in
      Alcotest.(check bool) "dur >= 0" true (dur >= 0.0);
      let tid = int_of_float (Option.get (Json.number_member "tid" e)) in
      Alcotest.(check bool) "tid is a requested trace" true (List.mem tid traces))
    spans

let test_timeline_export_round_trip () =
  let tl = Timeline.create ~capacity:4 in
  Timeline.record tl ~now:100.0 [ ("a", 1); ("b", 2) ];
  Timeline.record tl ~now:200.0 [ ("a", 3) ];
  let json = Json.parse_exn (Export.timeline_json tl) in
  let times = Option.get (Option.bind (Json.member "times_us" json) Json.to_list) in
  Alcotest.(check int) "two samples" 2 (List.length times);
  let series = Option.get (Json.member "series" json) in
  let a = Option.get (Option.bind (Json.member "a" series) Json.to_list) in
  Alcotest.(check (list (float 0.01))) "series a"
    [ 1.0; 3.0 ]
    (List.map (fun v -> Option.get (Json.to_number v)) a);
  (match Option.get (Option.bind (Json.member "b" series) Json.to_list) with
  | [ Json.Num 2.0; Json.Null ] -> ()
  | _ -> Alcotest.fail "series b should be [2, null]");
  let csv = Export.timeline_csv tl in
  Alcotest.(check string) "csv" "time_us,a,b\n100.0,1,2\n200.0,3,\n" csv

(* hostile instrument names — quotes, commas, backslashes (heat gauges can
   embed vertex handles) — must survive every exporter *)
let test_export_escapes_hostile_names () =
  let evil = "evil\"name,with\\stuff" in
  let tl = Timeline.create ~capacity:4 in
  Timeline.record tl ~now:100.0 [ (evil, 7); ("ok", 1) ];
  let json = Json.parse_exn (Export.timeline_json tl) in
  let series = Option.get (Json.member "series" json) in
  (match Option.get (Option.bind (Json.member evil series) Json.to_list) with
  | [ Json.Num 7.0 ] -> ()
  | _ -> Alcotest.fail "hostile series lost in JSON");
  (* CSV: RFC 4180 quoting, embedded quotes doubled *)
  Alcotest.(check string) "benign cell untouched" "a.b_c" (Export.csv_cell "a.b_c");
  Alcotest.(check string) "hostile cell quoted" "\"evil\"\"name,with\\stuff\""
    (Export.csv_cell evil);
  Alcotest.(check string) "csv header + row"
    ("time_us," ^ Export.csv_cell evil ^ ",ok\n100.0,7,1\n")
    (Export.timeline_csv tl);
  (* counter tracks parse back; unknown names are ignored *)
  Timeline.record tl ~now:200.0 [ (evil, 9); ("ok", 2) ];
  let doc = Json.parse_exn (Export.counter_tracks tl ~names:[ evil; "absent" ]) in
  let events = Option.get (Option.bind (Json.member "traceEvents" doc) Json.to_list) in
  let counters =
    List.filter (fun e -> Json.string_member "ph" e = Some "C") events
  in
  Alcotest.(check int) "one C event per sample" 2 (List.length counters);
  List.iter
    (fun e ->
      Alcotest.(check (option string)) "track name" (Some evil) (Json.string_member "name" e))
    counters;
  Alcotest.(check (list (float 0.01))) "track values" [ 7.0; 9.0 ]
    (List.map
       (fun e ->
         Option.get
           (Option.bind (Json.member "args" e) (Json.number_member "value")))
       counters)

let test_heat_export_escapes () =
  let h = Weaver_obs.Heat.create ~shards:1 ~k:4 ~ranges:4 ~half_life:1_000.0 in
  Weaver_obs.Heat.touch h ~shard:0 ~kind:Weaver_obs.Heat.Write ~now:0.0 "v\"1\\x";
  let json = Json.parse_exn (Export.heat_json h ~now:0.0) in
  let per_shard = Option.get (Option.bind (Json.member "per_shard" json) Json.to_list) in
  let top = Option.get (Option.bind (Json.member "top" (List.hd per_shard)) Json.to_list) in
  Alcotest.(check (option string)) "hostile vid round-trips"
    (Some "v\"1\\x")
    (Json.string_member "vid" (List.hd top));
  let csv = Export.heat_csv h ~now:0.0 in
  Alcotest.(check bool) "heat csv has header+ranges" true
    (List.length (String.split_on_char '\n' (String.trim csv)) = 5)

(* ------------------------------------------------------------------ *)
(* Slow-request log *)

let entry ?(phases = []) trace kind start stop =
  {
    Slowlog.e_trace = trace;
    e_kind = kind;
    e_start = start;
    e_stop = stop;
    e_result = "ok";
    e_phases = phases;
  }

let test_slowlog_ranks_and_caps () =
  let log = Slowlog.create ~capacity:3 in
  List.iter
    (fun (id, d) -> Slowlog.record log (entry id "tx" 0.0 d))
    [ (1, 50.0); (2, 200.0); (3, 10.0); (4, 120.0); (5, 80.0) ];
  Alcotest.(check int) "recorded all" 5 (Slowlog.recorded log);
  Alcotest.(check (list int)) "keeps the 3 slowest, slowest first"
    [ 2; 4; 5 ]
    (List.map (fun e -> e.Slowlog.e_trace) (Slowlog.entries log));
  Alcotest.(check (float 0.01)) "entry threshold" 80.0 (Slowlog.threshold log);
  let json = Json.parse_exn (Slowlog.to_json log) in
  let entries = Option.get (Option.bind (Json.member "entries" json) Json.to_list) in
  Alcotest.(check int) "json entries" 3 (List.length entries);
  Alcotest.(check (option (float 0.01))) "json duration"
    (Some 200.0)
    (Json.number_member "duration_us" (List.hd entries))

let test_slowlog_integration () =
  let c, traces = traced_cluster () in
  let log = Cluster.slow_log c in
  Alcotest.(check bool) "requests recorded" true (Slowlog.recorded log >= 2);
  let es = Slowlog.entries log in
  List.iter
    (fun e ->
      Alcotest.(check bool) "positive duration" true (Slowlog.duration e > 0.0);
      Alcotest.(check bool) "result ok" true (e.Slowlog.e_result = "ok"))
    es;
  (* with tracing on, entries carry per-phase breakdowns *)
  let traced_entries =
    List.filter (fun e -> List.mem e.Slowlog.e_trace traces) es
  in
  Alcotest.(check bool) "traced entries present" true (traced_entries <> []);
  List.iter
    (fun e ->
      Alcotest.(check bool) "phases present" true (e.Slowlog.e_phases <> []);
      (* phases are sorted by total duration, descending *)
      let ds = List.map snd e.Slowlog.e_phases in
      Alcotest.(check bool) "phases descending" true
        (List.sort (fun a b -> Float.compare b a) ds = ds))
    traced_entries

(* ------------------------------------------------------------------ *)
(* Crash-induced dip and recovery, in miniature (the bench experiment's
   acceptance shape, cheap enough for the suite) *)

let test_crash_dip_and_recovery () =
  let cfg =
    {
      Config.default with
      Config.enable_timeline = true;
      Config.timeline_period = 20_000.0;
      Config.n_shards = 2;
      Config.seed = 13;
    }
  in
  let c = Cluster.create cfg in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
  let rng = Weaver_util.Xrand.create ~seed:13 () in
  let g =
    Weaver_workloads.Graphgen.uniform ~rng ~prefix:"cd" ~vertices:300 ~edges:1_200 ()
  in
  Weaver_workloads.Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  let vertices = Array.of_list (Weaver_workloads.Graphgen.vertex_ids g) in
  let crash_at = 250_000.0 in
  let rt = Cluster.runtime c in
  Weaver_sim.Engine.schedule rt.Runtime.engine
    ~delay:(crash_at -. Cluster.now c)
    (fun () -> Cluster.kill_shard c 0);
  ignore
    (Weaver_workloads.Tao.Driver.run c ~vertices ~clients:10 ~duration:800_000.0 ());
  let tl = Option.get (Cluster.timeline c) in
  let ops =
    let progs = Timeline.rates tl "prog.completed" in
    List.map
      (fun (t, v) ->
        (t, v +. Option.value ~default:0.0 (List.assoc_opt t progs)))
      (Timeline.rates tl "tx.committed")
  in
  let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (max 1 (List.length l)) in
  let pre =
    mean (List.filter_map (fun (t, v) -> if t < crash_at then Some v else None) ops)
  in
  let dip =
    List.fold_left Float.min Float.infinity
      (List.filter_map
         (fun (t, v) ->
           if t >= crash_at && t <= crash_at +. 250_000.0 then Some v else None)
         ops)
  in
  let post =
    mean
      (List.filter_map
         (fun (t, v) -> if t > crash_at +. 400_000.0 then Some v else None)
         ops)
  in
  Alcotest.(check bool) "recovered" true ((Cluster.counters c).Runtime.recoveries >= 1);
  Alcotest.(check bool) "throughput dips after the crash" true (dip < pre /. 2.0);
  Alcotest.(check bool) "throughput recovers" true (post > dip +. (pre /. 4.0))

let suites =
  [
    ( "timeline",
      [
        Alcotest.test_case "ring basics" `Quick test_timeline_basic;
        Alcotest.test_case "ring wraps" `Quick test_timeline_wraps;
        Alcotest.test_case "windowed rates" `Quick test_timeline_rates;
        Alcotest.test_case "rate edge cases" `Quick test_timeline_rates_edges;
        Alcotest.test_case "sampling never perturbs (determinism)" `Quick
          test_sampling_is_invisible;
        Alcotest.test_case "utilization gauges" `Quick test_utilization_gauges;
        Alcotest.test_case "net in-flight accounting" `Quick test_net_in_flight_drains;
        Alcotest.test_case "crash dip and recovery" `Slow test_crash_dip_and_recovery;
      ] );
    ( "export",
      [
        Alcotest.test_case "chrome trace parses back" `Quick
          test_chrome_export_parses_back;
        Alcotest.test_case "timeline json/csv round trip" `Quick
          test_timeline_export_round_trip;
        Alcotest.test_case "hostile names escape everywhere" `Quick
          test_export_escapes_hostile_names;
        Alcotest.test_case "heat export escapes" `Quick test_heat_export_escapes;
      ] );
    ( "slowlog",
      [
        Alcotest.test_case "ranks and caps" `Quick test_slowlog_ranks_and_caps;
        Alcotest.test_case "cluster integration" `Quick test_slowlog_integration;
      ] );
  ]
