(* Tests for dynamic vertex migration and rebalancing (§4.6). *)

open Weaver_core
open Weaver_workloads
module Programs = Weaver_programs.Std_programs

let mk_cluster ?(cfg = Config.default) () =
  let c = Cluster.create cfg in
  Programs.Std.register_all (Cluster.registry c);
  c

let ok = function Ok v -> v | Error e -> Alcotest.failf "%s" e

let test_basic_migration () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"mg" ());
  ignore (Client.Tx.create_vertex tx ~id:"nbr" ());
  ignore (Client.Tx.create_edge tx ~src:"mg" ~dst:"nbr");
  ok (Client.commit client tx);
  let from_shard = Cluster.shard_of_vertex c "mg" in
  let to_shard = (from_shard + 1) mod (Cluster.config c).Config.n_shards in
  ok (Client.migrate client ~vid:"mg" ~to_shard);
  Cluster.run_for c 20_000.0;
  Alcotest.(check int) "directory moved" to_shard (Cluster.shard_of_vertex c "mg");
  Alcotest.(check bool) "old shard dropped it" true
    (Cluster.shard_vertex c ~shard:from_shard "mg" = None);
  (match Cluster.shard_vertex c ~shard:to_shard "mg" with
  | Some v -> Alcotest.(check int) "edges came along" 1 (Array.length v.Weaver_graph.Mgraph.out)
  | None -> Alcotest.fail "new shard missing the vertex");
  Alcotest.(check int) "counted" 1 (Cluster.counters c).Runtime.migrations;
  (* reads and writes keep working after the move *)
  (match
     Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ "mg" ] ()
   with
  | Ok (Progval.List [ _ ]) -> ()
  | Ok v -> Alcotest.failf "unexpected %s" (Progval.to_string v)
  | Error e -> Alcotest.failf "post-move read: %s" e);
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_edge tx ~src:"mg" ~dst:"nbr");
  ok (Client.commit client tx);
  match
    Client.run_program client ~prog:"count_edges" ~params:Progval.Null ~starts:[ "mg" ] ()
  with
  | Ok (Progval.Int 2) -> ()
  | Ok v -> Alcotest.failf "post-move write lost: %s" (Progval.to_string v)
  | Error e -> Alcotest.failf "%s" e

let test_migrate_missing_vertex_fails () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  match Client.migrate client ~vid:"ghost" ~to_shard:0 with
  | Error e -> Alcotest.(check bool) "invalid" true (String.length e > 0)
  | Ok () -> Alcotest.fail "migrating a ghost must fail"

let test_migrate_same_shard_noop () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"same" ());
  ok (Client.commit client tx);
  let shard = Cluster.shard_of_vertex c "same" in
  ok (Client.migrate client ~vid:"same" ~to_shard:shard);
  Alcotest.(check int) "unchanged" shard (Cluster.shard_of_vertex c "same")

(* Regression: the same-shard no-op branch of [handle_migrate_req] used to
   reply [Ok] WITHOUT recording dedup, so a retry whose first reply was
   lost re-executed from scratch — and could observe a different
   [from_shard] after a racing move. Replay the wire-level retry: the
   second submission of the same (client, tx_id) must be answered from the
   dedup window, like every other committed request. *)
let test_migrate_noop_records_dedup () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"same" ());
  ok (Client.commit client tx);
  let rt = Cluster.runtime c in
  let shard = Cluster.shard_of_vertex c "same" in
  let addr = Runtime.fresh_client_addr rt in
  let replies = ref [] in
  Weaver_sim.Net.register rt.Runtime.net addr (fun ~src:_ msg ->
      match (msg : Msg.t) with
      | Msg.Tx_reply { result; _ } -> replies := result :: !replies
      | _ -> ());
  let send () =
    Weaver_sim.Net.send rt.Runtime.net ~src:addr ~dst:(Runtime.gk_addr rt 0)
      (Msg.Migrate_req { client = addr; tx_id = 987_654; vid = "same"; to_shard = shard })
  in
  send ();
  Cluster.run_for c 20_000.0;
  (* the reply was lost: the client retries the identical request *)
  send ();
  Cluster.run_for c 20_000.0;
  Alcotest.(check int) "both submissions answered" 2 (List.length !replies);
  List.iter
    (function Ok _ -> () | Error e -> Alcotest.failf "noop migrate: %s" e)
    !replies;
  Alcotest.(check int) "retry served from the dedup window" 1
    (Cluster.counters c).Runtime.dedup_hits

let test_traversal_across_migration () =
  (* traversals issued right after a migration chase the vertex correctly *)
  let c = mk_cluster () in
  let client = Cluster.client c in
  let g = Graphgen.chain ~prefix:"mc" ~vertices:10 () in
  Loader.fast_install c g;
  Cluster.run_for c 10_000.0;
  let mid = "mc5" in
  let to_shard = (Cluster.shard_of_vertex c mid + 1) mod (Cluster.config c).Config.n_shards in
  ok (Client.migrate client ~vid:mid ~to_shard);
  (* no settling time: the read races the migration fan-out *)
  match
    Client.run_program client ~prog:"reachable"
      ~params:(Progval.Assoc [ ("target", Progval.Str "mc9") ])
      ~starts:[ "mc0" ] ()
  with
  | Ok (Progval.Bool b) -> Alcotest.(check bool) "still reachable through mc5" true b
  | Ok v -> Alcotest.failf "unexpected %s" (Progval.to_string v)
  | Error e -> Alcotest.failf "%s" e

let test_rebalance_improves_cut () =
  let cfg = { Config.default with Config.n_shards = 4 } in
  let c = mk_cluster ~cfg () in
  let client = Cluster.client c in
  (* four dense cliques: hashing scatters them, rebalance should gather *)
  let vids = ref [] in
  let edges = ref [] in
  for ci = 0 to 3 do
    for i = 0 to 9 do
      vids := Printf.sprintf "c%d_%d" ci i :: !vids
    done;
    for i = 0 to 9 do
      for j = 0 to 9 do
        if i <> j then
          edges := (Printf.sprintf "c%d_%d" ci i, Printf.sprintf "c%d_%d" ci j) :: !edges
      done
    done
  done;
  let nbrs = Hashtbl.create 64 in
  List.iter
    (fun (s, d) ->
      Hashtbl.replace nbrs s (d :: (try Hashtbl.find nbrs s with Not_found -> [])))
    !edges;
  List.iter
    (fun vid ->
      Loader.install_vertex c ~vid
        ~edges:(List.map (fun d -> (d, [])) (try Hashtbl.find nbrs vid with Not_found -> []))
        ())
    !vids;
  Cluster.reload_shards c;
  Cluster.run_for c 10_000.0;
  let r = Rebalance.run c client ~max_moves:64 ~rounds:3 () in
  Alcotest.(check bool)
    (Printf.sprintf "cut improved (%.3f -> %.3f, %d moves)" r.Rebalance.edge_cut_before
       r.Rebalance.edge_cut_after r.Rebalance.moved)
    true
    (r.Rebalance.edge_cut_after < r.Rebalance.edge_cut_before);
  Alcotest.(check bool) "some moves happened" true (r.Rebalance.moved > 0);
  (* graph content intact after the mass migration *)
  match
    Client.run_program client ~prog:"count_edges" ~params:Progval.Null ~starts:!vids ()
  with
  | Ok (Progval.Int n) -> Alcotest.(check int) "all edges intact" (List.length !edges) n
  | Ok v -> Alcotest.failf "unexpected %s" (Progval.to_string v)
  | Error e -> Alcotest.failf "%s" e

let suites =
  [
    ( "migration",
      [
        Alcotest.test_case "basic migration" `Quick test_basic_migration;
        Alcotest.test_case "missing vertex" `Quick test_migrate_missing_vertex_fails;
        Alcotest.test_case "same shard noop" `Quick test_migrate_same_shard_noop;
        Alcotest.test_case "noop migrate records dedup" `Quick
          test_migrate_noop_records_dedup;
        Alcotest.test_case "traversal across migration" `Quick test_traversal_across_migration;
        Alcotest.test_case "rebalance improves cut" `Quick test_rebalance_improves_cut;
      ] );
  ]
