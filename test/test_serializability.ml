(* End-to-end strict serializability checks over the full stack (paper
   §4.4): concurrent writers and readers race on shared vertices through
   different gatekeepers, and the observable history must admit a serial
   order consistent with real time.

   The key observable: with only edge creations on a hub vertex, the degree
   is monotonically non-decreasing in any serializable order. Strict
   serializability additionally forces real-time consistency: if read R1's
   response precedes read R2's invocation, then R1's value <= R2's value;
   and every read lies between the number of writes whose responses
   preceded its invocation (lower bound) and the number of writes invoked
   before its response (upper bound). *)

open Weaver_core
module Programs = Weaver_programs.Std_programs

type read_obs = { r_invoked : float; r_responded : float; r_degree : int }
type write_obs = { w_invoked : float; w_responded : float }

let run_race ?cfg ?(side_writers = 0) ?(pin_hub_writers = false) ~seed ~writers
    ~readers ~writes_per_writer () =
  let cfg =
    match cfg with
    | Some c -> { c with Config.seed }
    | None -> { Config.default with Config.seed; Config.n_shards = 4 }
  in
  let c = Cluster.create cfg in
  Programs.Std.register_all (Cluster.registry c);
  let setup = Cluster.client c in
  let tx = Client.Tx.begin_ setup in
  ignore (Client.Tx.create_vertex tx ~id:"hub" ());
  ignore (Client.Tx.create_vertex tx ~id:"leaf" ());
  for i = 0 to side_writers - 1 do
    ignore (Client.Tx.create_vertex tx ~id:(Printf.sprintf "side%d" i) ())
  done;
  (match Client.commit setup tx with Ok () -> () | Error e -> Alcotest.failf "setup: %s" e);
  let reads : read_obs list ref = ref [] in
  let writes : write_obs list ref = ref [] in
  (* writers: sequential edge creations on the hub, retrying on conflicts.
     When pinned, all hub traffic (writers and readers alike) goes through
     gatekeeper 0: the hub's last-update stamp checks then order it by
     vector clock alone, so the timeline oracle accumulates no hub-driven
     edges — cross-gatekeeper conflicts between the side writers must be
     refined reactively at the shard instead *)
  for _ = 1 to writers do
    let client = Cluster.client c in
    if pin_hub_writers then Client.set_gatekeeper client (Some 0);
    let remaining = ref writes_per_writer in
    let rec next () =
      if !remaining > 0 then begin
        let invoked = Cluster.now c in
        let tx = Client.Tx.begin_ client in
        ignore (Client.Tx.create_edge tx ~src:"hub" ~dst:"leaf");
        Client.commit_async client tx ~on_result:(fun r ->
            (match r with
            | Ok () ->
                decr remaining;
                writes := { w_invoked = invoked; w_responded = Cluster.now c } :: !writes
            | Error _ -> () (* OCC conflict: retry *));
            next ())
      end
    in
    next ()
  done;
  (* readers: repeated degree reads on the hub *)
  let stop = ref false in
  for _ = 1 to readers do
    let client = Cluster.client c in
    if pin_hub_writers then Client.set_gatekeeper client (Some 0);
    let rec next () =
      if not !stop then begin
        let invoked = Cluster.now c in
        Client.run_program_async client ~prog:"count_edges" ~params:Progval.Null
          ~starts:[ "hub" ]
          ~on_result:(fun r ->
            (match r with
            | Ok (Progval.Int d) ->
                reads :=
                  { r_invoked = invoked; r_responded = Cluster.now c; r_degree = d }
                  :: !reads
            | _ -> ());
            next ())
          ()
      end
    in
    next ()
  done;
  (* side writers: single-vertex property writes on distinct vertices
     through pinned, distinct gatekeepers. Same-vertex write-write races
     are ordered proactively at the gatekeepers via the last-update stamp
     check, so they never reach a shard undecided; cross-vertex races on
     one shard have no such gate — concurrent queue heads from different
     gatekeepers are exactly the pairs the shard must refine reactively. *)
  for i = 0 to side_writers - 1 do
    let client = Cluster.client c in
    Client.set_gatekeeper client (Some (i mod cfg.Config.n_gatekeepers));
    let vid = Printf.sprintf "side%d" i in
    let k = ref 0 in
    let rec next () =
      if not !stop then begin
        incr k;
        let tx = Client.Tx.begin_ client in
        Client.Tx.set_vertex_prop tx ~vid ~key:"n" ~value:(string_of_int !k);
        Client.commit_async client tx ~on_result:(fun _ -> next ())
      end
    in
    next ()
  done;
  (* run until all writes are done, then a little longer for final reads *)
  let budget = ref 4_000 in
  let all_done () = List.length !writes >= writers * writes_per_writer in
  while (not (all_done ())) && !budget > 0 do
    decr budget;
    Cluster.run_for c 1_000.0
  done;
  Alcotest.(check bool) "all writes committed" true (all_done ());
  Cluster.run_for c 20_000.0;
  stop := true;
  Cluster.run_for c 20_000.0;
  (c, List.rev !reads, List.rev !writes)

let check_strict_serializability reads writes =
  (* 1. reads are monotone across non-overlapping pairs *)
  List.iter
    (fun r1 ->
      List.iter
        (fun r2 ->
          if r1.r_responded < r2.r_invoked then
            Alcotest.(check bool)
              (Printf.sprintf "monotone reads (%d then %d)" r1.r_degree r2.r_degree)
              true
              (r1.r_degree <= r2.r_degree))
        reads)
    reads;
  (* 2. each read bounded by completed-before and invoked-before writes *)
  List.iter
    (fun r ->
      let completed_before =
        List.length (List.filter (fun w -> w.w_responded < r.r_invoked) writes)
      in
      let invoked_before =
        List.length (List.filter (fun w -> w.w_invoked < r.r_responded) writes)
      in
      Alcotest.(check bool)
        (Printf.sprintf "read %d >= %d completed writes" r.r_degree completed_before)
        true
        (r.r_degree >= completed_before);
      Alcotest.(check bool)
        (Printf.sprintf "read %d <= %d invoked writes" r.r_degree invoked_before)
        true
        (r.r_degree <= invoked_before))
    reads

let test_race seed () =
  let c, reads, writes =
    run_race ~seed ~writers:3 ~readers:2 ~writes_per_writer:5 ()
  in
  Alcotest.(check bool) "some reads observed" true (List.length reads > 3);
  check_strict_serializability reads writes;
  (* final state: hub degree equals total committed creates, on the shard
     AND in the durable store *)
  let client = Cluster.client c in
  (match
     Client.run_program client ~prog:"count_edges" ~params:Progval.Null ~starts:[ "hub" ] ()
   with
  | Ok (Progval.Int d) -> Alcotest.(check int) "final degree" 15 d
  | Ok v -> Alcotest.failf "unexpected %s" (Progval.to_string v)
  | Error e -> Alcotest.failf "final read: %s" e);
  match Cluster.stored_vertex c "hub" with
  | Some v -> Alcotest.(check int) "durable degree" 15 (Array.length v.Weaver_graph.Mgraph.out)
  | None -> Alcotest.fail "hub missing from store"

(* Forced-coalescing configuration: three gatekeepers hammer the same hub
   vertex while announcements are rare (large τ), so gatekeeper clocks stay
   mutually concurrent and the proactive stage decides almost nothing —
   shard event loops repeatedly hit undecided head pairs, including while a
   consult is already in flight, which exercises the batch-join path under
   real traffic. Frequent NOPs keep every queue fed so the loop keeps
   confronting those heads instead of idling. *)
let coalesce_cfg =
  {
    Config.default with
    Config.n_gatekeepers = 3;
    Config.n_shards = 1;
    Config.tau = 50_000.0;
    Config.nop_period = 400.0;
  }

let coalesce_fingerprint c =
  let ctr = Cluster.counters c in
  let rt = Cluster.runtime c in
  ( ( ctr.Runtime.tx_committed,
      ctr.Runtime.tx_aborted,
      ctr.Runtime.oracle_consults,
      ctr.Runtime.shard_oracle_consults,
      ctr.Runtime.shard_oracle_batched ),
    ( Weaver_sim.Net.messages_sent rt.Runtime.net,
      Weaver_sim.Net.messages_delivered rt.Runtime.net,
      Runtime.oracle_queries_served rt,
      ctr.Runtime.nop_msgs ) )

let test_coalesced_race seed () =
  let writers = 3 and readers = 2 and writes_per_writer = 5 in
  let c, reads, writes =
    run_race ~cfg:coalesce_cfg ~side_writers:6 ~pin_hub_writers:true ~seed
      ~writers ~readers ~writes_per_writer ()
  in
  (* the configuration must actually exercise the refinement path *)
  Alcotest.(check bool) "oracle consulted" true
    ((Cluster.counters c).Runtime.shard_oracle_consults > 0);
  (* capture before the extra final-degree read below advances c's engine:
     both fingerprints must describe the same logical point (end of race) *)
  let fp = coalesce_fingerprint c in
  Alcotest.(check bool) "some reads observed" true (List.length reads > 3);
  check_strict_serializability reads writes;
  (let client = Cluster.client c in
   match
     Client.run_program client ~prog:"count_edges" ~params:Progval.Null
       ~starts:[ "hub" ] ()
   with
   | Ok (Progval.Int d) ->
       Alcotest.(check int) "final degree" (writers * writes_per_writer) d
   | Ok v -> Alcotest.failf "unexpected %s" (Progval.to_string v)
   | Error e -> Alcotest.failf "final read: %s" e);
  (* coalesced refinement must stay bit-for-bit deterministic: the same
     seed reruns to the identical counter fingerprint *)
  let c2, _, _ =
    run_race ~cfg:coalesce_cfg ~side_writers:6 ~pin_hub_writers:true ~seed
      ~writers ~readers ~writes_per_writer ()
  in
  Alcotest.(check bool) "bit-identical rerun" true
    (fp = coalesce_fingerprint c2)

(* [Config.net_batching] coalesces control traffic (NOPs, credits,
   announces, commit notes, heartbeats) into per-channel [Msg.Batch]
   envelopes, unpacked at delivery. The client-observable history must
   stay strictly serializable, the final state must be exact, and the
   coalescing must genuinely shrink the wire-message count versus the
   identical run with batching off. *)
let test_batched_race seed () =
  let writers = 3 and readers = 2 and writes_per_writer = 5 in
  (* coalescing needs several batchable messages on one (src, dst) channel
     at one engine instant. The forced-coalescing topology produces exactly
     that: hub writers pinned to gatekeeper 0 queue up behind a stalled
     shard head during an oracle consult, and when the consult lands the
     shard burst-drains the queue — one flow-control [Credit] per applied
     transaction, all to gatekeeper 0, folded into one [Msg.Batch]. *)
  let cfg =
    { coalesce_cfg with Config.shard_credits = 64; Config.net_batching = true }
  in
  let c, reads, writes =
    run_race ~cfg ~side_writers:6 ~pin_hub_writers:true ~seed ~writers ~readers
      ~writes_per_writer ()
  in
  Alcotest.(check bool) "some reads observed" true (List.length reads > 3);
  check_strict_serializability reads writes;
  (let client = Cluster.client c in
   match
     Client.run_program client ~prog:"count_edges" ~params:Progval.Null
       ~starts:[ "hub" ] ()
   with
   | Ok (Progval.Int d) ->
       Alcotest.(check int) "final degree" (writers * writes_per_writer) d
   | Ok v -> Alcotest.failf "unexpected %s" (Progval.to_string v)
   | Error e -> Alcotest.failf "final read: %s" e);
  let c_off, reads_off, writes_off =
    run_race
      ~cfg:{ cfg with Config.net_batching = false }
      ~side_writers:6 ~pin_hub_writers:true ~seed ~writers ~readers
      ~writes_per_writer ()
  in
  check_strict_serializability reads_off writes_off;
  let sent cl =
    Weaver_sim.Net.messages_sent (Cluster.runtime cl).Runtime.net
  in
  Alcotest.(check bool) "batch envelopes shipped" true
    ((Cluster.counters c).Runtime.batch_msgs > 0);
  Alcotest.(check int) "no envelopes without batching" 0
    (Cluster.counters c_off).Runtime.batch_msgs;
  Alcotest.(check bool)
    (Printf.sprintf "batching shrinks wire messages (%d < %d)" (sent c)
       (sent c_off))
    true
    (sent c < sent c_off)

let test_coalescing_observed () =
  (* across the seed sweep, at least one run must have folded a mid-flight
     conflict into an outstanding consult — otherwise the suite is not
     testing coalescing at all *)
  let total = ref 0 in
  List.iter
    (fun seed ->
      let c, _, _ =
        run_race ~cfg:coalesce_cfg ~side_writers:6 ~pin_hub_writers:true ~seed
          ~writers:3 ~readers:2 ~writes_per_writer:5 ()
      in
      total := !total + (Cluster.counters c).Runtime.shard_oracle_batched)
    [ 404; 505; 606 ];
  Alcotest.(check bool) "batch joins happened" true (!total > 0)

(* Pinned-snapshot analytics against live hub-write traffic: the program
   runs at a captured past stamp while writers keep growing the hub, and
   its answer must equal the store's state at exactly that cut — not a
   blend of versions. One gatekeeper keeps every stamp vclock-ordered, so
   the expected value is computable with vector-clock comparison alone. *)
let test_snapshot_analytics_consistent_cut () =
  let cfg =
    {
      Config.default with
      Config.n_gatekeepers = 1;
      Config.n_shards = 2;
      Config.snapshot_reads = true;
      Config.gc_period = 10_000.0;
      Config.net_jitter = 0.0;
    }
  in
  let c = Cluster.create cfg in
  Programs.Std.register_all (Cluster.registry c);
  let setup = Cluster.client c in
  let tx = Client.Tx.begin_ setup in
  ignore (Client.Tx.create_vertex tx ~id:"hub" ());
  ignore (Client.Tx.create_vertex tx ~id:"leaf" ());
  (match Client.commit setup tx with Ok () -> () | Error e -> Alcotest.failf "setup: %s" e);
  for _ = 1 to 4 do
    let tx = Client.Tx.begin_ setup in
    ignore (Client.Tx.create_edge tx ~src:"hub" ~dst:"leaf");
    match Client.commit setup tx with
    | Ok () -> ()
    | Error e -> Alcotest.failf "pre-cut write: %s" e
  done;
  Cluster.run_for c 30_000.0;
  let at0 = Cluster.gk_clock c 0 in
  (* writers race ahead of the cut; let a few watermark rounds pass so the
     shards publish snapshots covering [at0] before the analytics arrives *)
  let stop = ref false in
  for _ = 1 to 2 do
    let w = Cluster.client c in
    let rec next () =
      if not !stop then begin
        let tx = Client.Tx.begin_ w in
        ignore (Client.Tx.create_edge tx ~src:"hub" ~dst:"leaf");
        Client.commit_async w tx ~on_result:(fun _ -> next ())
      end
    in
    next ()
  done;
  Cluster.run_for c 25_000.0;
  let result = ref None in
  let analyst = Cluster.client c in
  Client.run_program_async analyst ~prog:"count_edges" ~params:Progval.Null
    ~starts:[ "hub" ] ~at:at0
    ~on_result:(fun r -> result := Some r)
    ();
  let budget = ref 200 in
  while !result = None && !budget > 0 do
    decr budget;
    Cluster.run_for c 1_000.0
  done;
  stop := true;
  Cluster.run_for c 20_000.0;
  let expected =
    match Cluster.stored_vertex c "hub" with
    | Some v ->
        List.length
          (Weaver_graph.Mgraph.out_edges
             (fun a b -> Weaver_vclock.Vclock.precedes a b)
             v ~at:at0)
    | None -> Alcotest.fail "hub missing from store"
  in
  Alcotest.(check int) "cut captured before the writers" 4 expected;
  (match !result with
  | Some (Ok (Progval.Int d)) ->
      Alcotest.(check int) "pinned read equals store at the cut" expected d
  | Some (Ok v) -> Alcotest.failf "unexpected %s" (Progval.to_string v)
  | Some (Error e) -> Alcotest.failf "analytics: %s" e
  | None -> Alcotest.fail "analytics never completed");
  Alcotest.(check bool) "served from a pinned snapshot" true
    ((Cluster.counters c).Runtime.snap_pinned_reads > 0);
  (* hub keeps growing past the cut: the writers actually raced *)
  match Cluster.stored_vertex c "hub" with
  | Some v -> Alcotest.(check bool) "writers advanced the hub" true
      (Array.length v.Weaver_graph.Mgraph.out > expected)
  | None -> Alcotest.fail "hub missing from store"

(* The [snapshot_reads] gate must be invisible to non-historical traffic:
   the forced-coalescing race replays to the identical counter fingerprint
   with the knob on and off (no historical queries → nothing may change). *)
let test_snapshot_gate_neutral () =
  let run cfg =
    let c, _, _ =
      run_race ~cfg ~side_writers:6 ~pin_hub_writers:true ~seed:404 ~writers:3
        ~readers:2 ~writes_per_writer:5 ()
    in
    coalesce_fingerprint c
  in
  Alcotest.(check bool) "fingerprint identical with snapshot_reads on" true
    (run coalesce_cfg = run { coalesce_cfg with Config.snapshot_reads = true })

(* The partial-replication gate must likewise be invisible while idle: with
   the subsystem enabled but the factor at 0 the controller plans nothing,
   owners stream nothing, gatekeepers route nothing — the forced-coalescing
   race must replay to the identical counter fingerprint. *)
let test_replication_gate_neutral () =
  let base = { coalesce_cfg with Config.enable_heat = true } in
  let run cfg =
    let c, _, _ =
      run_race ~cfg ~side_writers:6 ~pin_hub_writers:true ~seed:404 ~writers:3
        ~readers:2 ~writes_per_writer:5 ()
    in
    coalesce_fingerprint c
  in
  Alcotest.(check bool) "fingerprint identical with idle replication on" true
    (run base
    = run
        { base with Config.enable_replication = true; Config.replication_factor = 0 })

(* The full race under live partial replication: hot-range installs, owner
   streaming, and covered-read routing must not weaken the client-observable
   history — strong reads stay strictly serializable and the final state is
   exact. *)
let test_race_with_replication seed () =
  let cfg =
    {
      Config.default with
      Config.n_shards = 4;
      Config.enable_heat = true;
      Config.enable_replication = true;
      Config.replication_factor = 2;
      Config.gc_period = 2_000.0;
    }
  in
  let c, reads, writes =
    run_race ~cfg ~seed ~writers:3 ~readers:2 ~writes_per_writer:5 ()
  in
  Alcotest.(check bool) "some reads observed" true (List.length reads > 3);
  check_strict_serializability reads writes;
  let client = Cluster.client c in
  match
    Client.run_program client ~prog:"count_edges" ~params:Progval.Null
      ~starts:[ "hub" ] ()
  with
  | Ok (Progval.Int d) -> Alcotest.(check int) "final degree" 15 d
  | Ok v -> Alcotest.failf "unexpected %s" (Progval.to_string v)
  | Error e -> Alcotest.failf "final read: %s" e

(* A pinned-stamp read against a replicated hot range: once follower
   coverage passes the cut (and the owner's own compaction floor moves
   beyond it), the read is served by a follower copy — and its answer must
   equal the durable store's state at exactly that cut, every time. *)
let test_replicated_pinned_cut () =
  let cfg =
    {
      Config.default with
      Config.seed = 31;
      Config.n_gatekeepers = 1;
      Config.n_shards = 4;
      Config.enable_heat = true;
      Config.enable_replication = true;
      Config.replication_factor = 2;
      Config.gc_period = 2_000.0;
      Config.net_jitter = 0.0;
    }
  in
  let c = Cluster.create cfg in
  Programs.Std.register_all (Cluster.registry c);
  let setup = Cluster.client c in
  let tx = Client.Tx.begin_ setup in
  ignore (Client.Tx.create_vertex tx ~id:"hub" ());
  ignore (Client.Tx.create_vertex tx ~id:"leaf" ());
  (match Client.commit setup tx with Ok () -> () | Error e -> Alcotest.failf "setup: %s" e);
  for _ = 1 to 4 do
    let tx = Client.Tx.begin_ setup in
    ignore (Client.Tx.create_edge tx ~src:"hub" ~dst:"leaf");
    match Client.commit setup tx with
    | Ok () -> ()
    | Error e -> Alcotest.failf "pre-cut write: %s" e
  done;
  (* make the hub hot; wait until its range is replicated and covered *)
  let ctr = Cluster.counters c in
  let budget = ref 300 in
  while ctr.Runtime.repl_routed = 0 && !budget > 0 do
    decr budget;
    ignore
      (Client.run_program setup ~prog:"count_edges" ~params:Progval.Null
         ~starts:[ "hub" ] ~consistency:`Weak ());
    Cluster.run_for c 200.0
  done;
  Alcotest.(check bool) "hub range replicated and covered" true
    (ctr.Runtime.repl_routed > 0);
  Cluster.run_for c 6_000.0;
  let at0 = Cluster.gk_clock c 0 in
  (* writers race past the cut *)
  let stop = ref false in
  for _ = 1 to 2 do
    let w = Cluster.client c in
    let rec next () =
      if not !stop then begin
        let tx = Client.Tx.begin_ w in
        ignore (Client.Tx.create_edge tx ~src:"hub" ~dst:"leaf");
        Client.commit_async w tx ~on_result:(fun _ -> next ())
      end
    in
    next ()
  done;
  (* a few watermark rounds: follower coverage passes [at0] *)
  Cluster.run_for c 8_000.0;
  let routed0 = ctr.Runtime.repl_routed in
  let expected =
    match Cluster.stored_vertex c "hub" with
    | Some v ->
        List.length
          (Weaver_graph.Mgraph.out_edges
             (fun a b -> Weaver_vclock.Vclock.precedes a b)
             v ~at:at0)
    | None -> Alcotest.fail "hub missing from store"
  in
  Alcotest.(check int) "cut captured before the writers" 4 expected;
  for i = 1 to 4 do
    match
      Client.run_program setup ~prog:"count_edges" ~params:Progval.Null
        ~starts:[ "hub" ] ~at:at0 ()
    with
    | Ok (Progval.Int d) ->
        Alcotest.(check int)
          (Printf.sprintf "pinned read %d equals the store at the cut" i)
          expected d
    | Ok v -> Alcotest.failf "unexpected %s" (Progval.to_string v)
    | Error e -> Alcotest.failf "pinned read %d: %s" i e
  done;
  stop := true;
  Cluster.run_for c 20_000.0;
  Alcotest.(check bool) "pinned reads served by followers" true
    (ctr.Runtime.repl_routed > routed0);
  match Cluster.stored_vertex c "hub" with
  | Some v ->
      Alcotest.(check bool) "writers advanced past the cut" true
        (Array.length v.Weaver_graph.Mgraph.out > expected)
  | None -> Alcotest.fail "hub missing from store"

let test_write_skew_prevented () =
  (* two transactions each read both flags and flip one; under strict
     serializability at most... actually exactly one must abort because
     both declare read dependencies on both vertices *)
  let c = Cluster.create Config.default in
  Programs.Std.register_all (Cluster.registry c);
  let c1 = Cluster.client c and c2 = Cluster.client c in
  let setup = Cluster.client c in
  let tx = Client.Tx.begin_ setup in
  ignore (Client.Tx.create_vertex tx ~id:"f1" ());
  ignore (Client.Tx.create_vertex tx ~id:"f2" ());
  (match Client.commit setup tx with Ok () -> () | Error e -> Alcotest.failf "%s" e);
  let r1 = ref None and r2 = ref None in
  let tx1 = Client.Tx.begin_ c1 in
  Client.Tx.read_vertex tx1 "f1";
  Client.Tx.read_vertex tx1 "f2";
  Client.Tx.set_vertex_prop tx1 ~vid:"f1" ~key:"on" ~value:"true";
  let tx2 = Client.Tx.begin_ c2 in
  Client.Tx.read_vertex tx2 "f1";
  Client.Tx.read_vertex tx2 "f2";
  Client.Tx.set_vertex_prop tx2 ~vid:"f2" ~key:"on" ~value:"true";
  Client.commit_async c1 tx1 ~on_result:(fun r -> r1 := Some r);
  Client.commit_async c2 tx2 ~on_result:(fun r -> r2 := Some r);
  Cluster.run_for c 100_000.0;
  let ok r = r = Some (Ok ()) in
  Alcotest.(check int) "exactly one flag-flip commits" 1
    (List.length (List.filter ok [ !r1; !r2 ]))

let suites =
  [
    ( "serializability",
      [
        Alcotest.test_case "race seed 1" `Quick (test_race 101);
        Alcotest.test_case "race seed 2" `Quick (test_race 202);
        Alcotest.test_case "race seed 3" `Quick (test_race 303);
        Alcotest.test_case "coalesced race seed 1" `Quick (test_coalesced_race 404);
        Alcotest.test_case "coalesced race seed 2" `Quick (test_coalesced_race 505);
        Alcotest.test_case "coalesced race seed 3" `Quick (test_coalesced_race 606);
        Alcotest.test_case "coalescing observed" `Quick test_coalescing_observed;
        Alcotest.test_case "batched race seed 1" `Quick (test_batched_race 707);
        Alcotest.test_case "batched race seed 2" `Quick (test_batched_race 808);
        Alcotest.test_case "snapshot analytics consistent cut" `Quick
          test_snapshot_analytics_consistent_cut;
        Alcotest.test_case "snapshot gate neutral" `Quick
          test_snapshot_gate_neutral;
        Alcotest.test_case "replication gate neutral" `Quick
          test_replication_gate_neutral;
        Alcotest.test_case "race with replication on" `Quick
          (test_race_with_replication 909);
        Alcotest.test_case "replicated pinned cut" `Quick
          test_replicated_pinned_cut;
        Alcotest.test_case "write skew prevented" `Quick test_write_skew_prevented;
      ] );
  ]
