(* End-to-end tests of the Weaver core: transactions through the backing
   store, shard application in refinable-timestamp order, node programs on
   consistent snapshots, fault tolerance, GC, paging, and memoization. *)

open Weaver_core
module Programs = Weaver_programs.Std_programs

let mk_cluster ?(cfg = Config.default) () =
  let c = Cluster.create cfg in
  Programs.Std.register_all (Cluster.registry c);
  c

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s failed: %s" what e

(* build the small social graph used by several tests:
   alice -> bob -> carol, alice -> carol, dave isolated *)
let build_social client =
  let tx = Client.Tx.begin_ client in
  List.iter
    (fun v -> ignore (Client.Tx.create_vertex tx ~id:v ()))
    [ "alice"; "bob"; "carol"; "dave" ];
  let e_ab = Client.Tx.create_edge tx ~src:"alice" ~dst:"bob" in
  let _ = Client.Tx.create_edge tx ~src:"bob" ~dst:"carol" in
  let _ = Client.Tx.create_edge tx ~src:"alice" ~dst:"carol" in
  Client.Tx.set_vertex_prop tx ~vid:"alice" ~key:"name" ~value:"Alice";
  Client.Tx.set_edge_prop tx ~src:"alice" ~eid:e_ab ~key:"kind" ~value:"friend";
  ok_exn "build_social" (Client.commit client tx)

let get_node client vid =
  ok_exn "get_node"
    (Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ vid ] ())

let test_commit_and_get_node () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  build_social client;
  (match get_node client "alice" with
  | Progval.List [ summary ] ->
      Alcotest.(check string) "vid" "alice" (Progval.to_str (Progval.assoc "vid" summary));
      Alcotest.(check int) "degree" 2 (Progval.to_int (Progval.assoc "degree" summary));
      Alcotest.(check string) "prop" "Alice"
        (Progval.to_str (Progval.assoc "name" (Progval.assoc "props" summary)))
  | v -> Alcotest.failf "unexpected result %s" (Progval.to_string v));
  Alcotest.(check int) "one commit" 1 (Cluster.counters c).Runtime.tx_committed

let test_get_edges_and_count () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  build_social client;
  (match
     ok_exn "get_edges"
       (Client.run_program client ~prog:"get_edges" ~params:Progval.Null
          ~starts:[ "alice" ] ())
   with
  | Progval.List edges ->
      Alcotest.(check int) "two edges" 2 (List.length edges);
      let dsts =
        List.sort compare
          (List.map (fun e -> Progval.to_str (Progval.assoc "dst" e)) edges)
      in
      Alcotest.(check (list string)) "dsts" [ "bob"; "carol" ] dsts
  | v -> Alcotest.failf "unexpected %s" (Progval.to_string v));
  let count =
    ok_exn "count_edges"
      (Client.run_program client ~prog:"count_edges" ~params:Progval.Null
         ~starts:[ "alice"; "bob"; "dave" ] ())
  in
  Alcotest.(check int) "total degree" 3 (Progval.to_int count)

let test_invalid_tx_rejected () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  Client.Tx.delete_vertex tx "ghost";
  (match Client.commit client tx with
  | Error e -> Alcotest.(check bool) "invalid" true (String.length e > 0)
  | Ok () -> Alcotest.fail "deleting a missing vertex must fail");
  Alcotest.(check int) "counted invalid" 1 (Cluster.counters c).Runtime.tx_invalid

let test_double_create_rejected () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"x" ());
  ok_exn "create" (Client.commit client tx);
  let tx2 = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx2 ~id:"x" ());
  match Client.commit client tx2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double create must fail"

let test_multi_vertex_atomic_tx () =
  (* paper Fig. 2: post a photo and set ACLs in one atomic transaction *)
  let c = mk_cluster () in
  let client = Cluster.client c in
  build_social client;
  let tx = Client.Tx.begin_ client in
  let photo = Client.Tx.create_vertex tx () in
  let own = Client.Tx.create_edge tx ~src:"alice" ~dst:photo in
  Client.Tx.set_edge_prop tx ~src:"alice" ~eid:own ~key:"rel" ~value:"OWNS";
  List.iter
    (fun nbr ->
      let e = Client.Tx.create_edge tx ~src:photo ~dst:nbr in
      Client.Tx.set_edge_prop tx ~src:photo ~eid:e ~key:"rel" ~value:"VISIBLE")
    [ "bob"; "carol" ];
  ok_exn "photo tx" (Client.commit client tx);
  match get_node client photo with
  | Progval.List [ s ] ->
      Alcotest.(check int) "photo degree" 2 (Progval.to_int (Progval.assoc "degree" s))
  | v -> Alcotest.failf "unexpected %s" (Progval.to_string v)

let test_reachability_across_shards () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  (* a chain long enough to span several shards *)
  let n = 40 in
  let tx = Client.Tx.begin_ client in
  for i = 0 to n - 1 do
    ignore (Client.Tx.create_vertex tx ~id:("chain" ^ string_of_int i) ())
  done;
  ok_exn "vertices" (Client.commit client tx);
  let tx = Client.Tx.begin_ client in
  for i = 0 to n - 2 do
    ignore
      (Client.Tx.create_edge tx
         ~src:("chain" ^ string_of_int i)
         ~dst:("chain" ^ string_of_int (i + 1)))
  done;
  ok_exn "edges" (Client.commit client tx);
  let reach target =
    Progval.to_bool
      (ok_exn "reachable"
         (Client.run_program client ~prog:"reachable"
            ~params:(Progval.Assoc [ ("target", Progval.Str target) ])
            ~starts:[ "chain0" ] ()))
  in
  Alcotest.(check bool) "end reachable" true (reach ("chain" ^ string_of_int (n - 1)));
  Alcotest.(check bool) "vertices span multiple shards" true
    (List.length
       (List.sort_uniq compare
          (List.init n (fun i -> Cluster.shard_of_vertex c ("chain" ^ string_of_int i))))
    > 1);
  (* unreachable target: chain is directed *)
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"island" ());
  ok_exn "island" (Client.commit client tx);
  Alcotest.(check bool) "island not reachable" false (reach "island")

let test_reachability_with_edge_filter () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  List.iter (fun v -> ignore (Client.Tx.create_vertex tx ~id:v ())) [ "a"; "b"; "c" ];
  let e1 = Client.Tx.create_edge tx ~src:"a" ~dst:"b" in
  Client.Tx.set_edge_prop tx ~src:"a" ~eid:e1 ~key:"follows" ~value:"";
  ignore (Client.Tx.create_edge tx ~src:"a" ~dst:"c");
  ok_exn "setup" (Client.commit client tx);
  let reach target =
    Progval.to_bool
      (ok_exn "reachable"
         (Client.run_program client ~prog:"reachable"
            ~params:
              (Progval.Assoc
                 [ ("target", Progval.Str target); ("prop", Progval.Str "follows") ])
            ~starts:[ "a" ] ()))
  in
  Alcotest.(check bool) "filtered edge traversed" true (reach "b");
  Alcotest.(check bool) "unlabelled edge skipped" false (reach "c")

let test_hop_distance () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  build_social client;
  let dist target =
    ok_exn "hop_distance"
      (Client.run_program client ~prog:"hop_distance"
         ~params:(Progval.Assoc [ ("target", Progval.Str target) ])
         ~starts:[ "alice" ] ())
  in
  Alcotest.(check int) "self" 0 (Progval.to_int (dist "alice"));
  Alcotest.(check int) "direct" 1 (Progval.to_int (dist "bob"));
  Alcotest.(check int) "shortcut wins" 1 (Progval.to_int (dist "carol"));
  Alcotest.(check bool) "unreachable is Null" true (dist "dave" = Progval.Null)

let test_clustering_triangle () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  List.iter (fun v -> ignore (Client.Tx.create_vertex tx ~id:v ())) [ "t1"; "t2"; "t3" ];
  (* directed triangle plus the reverse edge t3->t2 *)
  ignore (Client.Tx.create_edge tx ~src:"t1" ~dst:"t2");
  ignore (Client.Tx.create_edge tx ~src:"t1" ~dst:"t3");
  ignore (Client.Tx.create_edge tx ~src:"t2" ~dst:"t3");
  ignore (Client.Tx.create_edge tx ~src:"t3" ~dst:"t2");
  ok_exn "triangle" (Client.commit client tx);
  match
    ok_exn "clustering"
      (Client.run_program client ~prog:"clustering" ~params:Progval.Null ~starts:[ "t1" ] ())
  with
  | r ->
      Alcotest.(check int) "k" 2 (Progval.to_int (Progval.assoc "k" r));
      (* among {t2,t3}: t2->t3 and t3->t2 both inside the neighbourhood *)
      Alcotest.(check int) "links" 2 (Progval.to_int (Progval.assoc "links" r))

let test_nhop_count () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  build_social client;
  let count depth =
    Progval.to_int
      (ok_exn "nhop"
         (Client.run_program client ~prog:"nhop_count"
            ~params:(Progval.Assoc [ ("depth", Progval.Int depth) ])
            ~starts:[ "alice" ] ()))
  in
  Alcotest.(check int) "0 hops" 1 (count 0);
  Alcotest.(check int) "1 hop" 3 (count 1);
  Alcotest.(check int) "2 hops" 3 (count 2)

let test_snapshot_vs_delete () =
  (* a node program started at an old timestamp still sees deleted data *)
  let c = mk_cluster () in
  let client = Cluster.client c in
  build_social client;
  Cluster.run_for c 10_000.0;
  let snap = Cluster.gk_clock c 0 in
  (* now delete the alice->bob edge region: delete bob entirely *)
  let tx = Client.Tx.begin_ client in
  Client.Tx.delete_vertex tx "bob";
  ok_exn "delete bob" (Client.commit client tx);
  Cluster.run_for c 10_000.0;
  (* current read: bob is gone *)
  (match
     ok_exn "get_node now"
       (Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ "bob" ] ())
   with
  | Progval.List [] -> ()
  | v -> Alcotest.failf "bob should be dead, got %s" (Progval.to_string v));
  (* historical read at the old snapshot: bob is visible *)
  match
    ok_exn "get_node past"
      (Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ "bob" ]
         ~at:snap ())
  with
  | Progval.List [ s ] ->
      Alcotest.(check string) "vid" "bob" (Progval.to_str (Progval.assoc "vid" s))
  | v -> Alcotest.failf "expected historical bob, got %s" (Progval.to_string v)

let test_concurrent_writes_same_vertex () =
  (* two clients race edge creations on one vertex through different
     gatekeepers: both must commit (in some order) and the final degree
     must reflect both *)
  let c = mk_cluster () in
  let c1 = Cluster.client c and c2 = Cluster.client c in
  let setup = Client.Tx.begin_ c1 in
  List.iter (fun v -> ignore (Client.Tx.create_vertex setup ~id:v ())) [ "hub"; "s1"; "s2" ];
  ok_exn "setup" (Client.commit c1 setup);
  let r1 = ref None and r2 = ref None in
  let tx1 = Client.Tx.begin_ c1 in
  ignore (Client.Tx.create_edge tx1 ~src:"hub" ~dst:"s1");
  let tx2 = Client.Tx.begin_ c2 in
  ignore (Client.Tx.create_edge tx2 ~src:"hub" ~dst:"s2");
  Client.commit_async c1 tx1 ~on_result:(fun r -> r1 := Some r);
  Client.commit_async c2 tx2 ~on_result:(fun r -> r2 := Some r);
  Cluster.run_for c 50_000.0;
  let ok r = match r with Some (Ok ()) -> true | _ -> false in
  let retry_if_conflict cl tx r =
    if not (ok !r) then begin
      (* OCC conflict: retry once, as a real client would *)
      Client.commit_async cl tx ~on_result:(fun x -> r := Some x);
      Cluster.run_for c 50_000.0
    end
  in
  let tx1' = Client.Tx.begin_ c1 in
  ignore (Client.Tx.create_edge tx1' ~src:"hub" ~dst:"s1");
  let tx2' = Client.Tx.begin_ c2 in
  ignore (Client.Tx.create_edge tx2' ~src:"hub" ~dst:"s2");
  retry_if_conflict c1 tx1' r1;
  retry_if_conflict c2 tx2' r2;
  Alcotest.(check bool) "tx1 committed" true (ok !r1);
  Alcotest.(check bool) "tx2 committed" true (ok !r2);
  Cluster.run_for c 20_000.0;
  match get_node c1 "hub" with
  | Progval.List [ s ] ->
      Alcotest.(check int) "both edges present" 2
        (Progval.to_int (Progval.assoc "degree" s))
  | v -> Alcotest.failf "unexpected %s" (Progval.to_string v)

let test_concurrent_delete_one_wins () =
  let c = mk_cluster () in
  let c1 = Cluster.client c and c2 = Cluster.client c in
  let setup = Client.Tx.begin_ c1 in
  ignore (Client.Tx.create_vertex setup ~id:"victim" ());
  ok_exn "setup" (Client.commit c1 setup);
  let r1 = ref None and r2 = ref None in
  let tx1 = Client.Tx.begin_ c1 in
  Client.Tx.delete_vertex tx1 "victim";
  let tx2 = Client.Tx.begin_ c2 in
  Client.Tx.delete_vertex tx2 "victim";
  Client.commit_async c1 tx1 ~on_result:(fun r -> r1 := Some r);
  Client.commit_async c2 tx2 ~on_result:(fun r -> r2 := Some r);
  Cluster.run_for c 100_000.0;
  let succ = List.length (List.filter (fun r -> !r = Some (Ok ())) [ r1; r2 ]) in
  Alcotest.(check int) "exactly one delete wins" 1 succ

let test_shard_failure_recovery () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  build_social client;
  Cluster.run_for c 10_000.0;
  let victim = Cluster.shard_of_vertex c "alice" in
  Cluster.kill_shard c victim;
  (* run past the failure timeout so the manager detects and recovers *)
  Cluster.run_for c 400_000.0;
  Alcotest.(check bool) "epoch bumped" true (Cluster.epoch c >= 1);
  Alcotest.(check bool) "recovery counted" true
    ((Cluster.counters c).Runtime.recoveries >= 1);
  (* data recovered from the backing store and queries work again *)
  match get_node client "alice" with
  | Progval.List [ s ] ->
      Alcotest.(check int) "degree survives recovery" 2
        (Progval.to_int (Progval.assoc "degree" s))
  | v -> Alcotest.failf "unexpected %s" (Progval.to_string v)

let test_gatekeeper_failure_recovery () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  build_social client;
  Cluster.run_for c 10_000.0;
  Cluster.kill_gatekeeper c 0;
  Cluster.run_for c 400_000.0;
  Alcotest.(check bool) "epoch bumped" true (Cluster.epoch c >= 1);
  (* the replacement gatekeeper serves requests in the new epoch; writes
     still commit and reads still work *)
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"postcrash" ());
  ok_exn "post-crash tx" (Client.commit client tx);
  match get_node client "postcrash" with
  | Progval.List [ _ ] -> ()
  | v -> Alcotest.failf "unexpected %s" (Progval.to_string v)

let test_timestamps_epoch_monotonic () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  build_social client;
  Cluster.run_for c 10_000.0;
  let before = Cluster.gk_clock c 1 in
  Cluster.kill_gatekeeper c 0;
  Cluster.run_for c 400_000.0;
  let after = Cluster.gk_clock c 1 in
  ignore client;
  Alcotest.(check bool) "post-failure stamps follow pre-failure stamps" true
    (Weaver_vclock.Vclock.precedes before after)

let gc_churn_versions ~gc_period =
  let cfg = { Config.default with Config.gc_period = gc_period } in
  let c = mk_cluster ~cfg () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"gcv" ());
  ok_exn "create" (Client.commit client tx);
  (* churn a property many times to build up versions *)
  for i = 1 to 10 do
    let tx = Client.Tx.begin_ client in
    Client.Tx.set_vertex_prop tx ~vid:"gcv" ~key:"p" ~value:(string_of_int i);
    ok_exn "churn" (Client.commit client tx)
  done;
  Cluster.run_for c 100_000.0;
  let shard = Cluster.shard_of_vertex c "gcv" in
  let versions =
    match Cluster.shard_vertex c ~shard "gcv" with
    | Some v -> Array.length v.Weaver_graph.Mgraph.v_props
    | None -> Alcotest.fail "vertex missing"
  in
  (c, client, versions)

let test_gc_compacts_versions () =
  (* identical churn; GC off keeps all 10 property versions, GC on drops
     the superseded ones once the watermark passes *)
  let _, _, kept_without_gc = gc_churn_versions ~gc_period:0.0 in
  let c, client, kept_with_gc = gc_churn_versions ~gc_period:5_000.0 in
  Alcotest.(check int) "no GC keeps all versions" 10 kept_without_gc;
  Alcotest.(check bool)
    (Printf.sprintf "GC compacts (%d < %d)" kept_with_gc kept_without_gc)
    true
    (kept_with_gc < kept_without_gc);
  ignore c;
  (* current value still readable *)
  match get_node client "gcv" with
  | Progval.List [ s ] ->
      Alcotest.(check string) "latest survives" "10"
        (Progval.to_str (Progval.assoc "p" (Progval.assoc "props" s)))
  | v -> Alcotest.failf "unexpected %s" (Progval.to_string v)

let test_memoization () =
  (* one gatekeeper so repeated queries hit the same memo table (the cache
     is per-gatekeeper; a round-robin client would alternate) *)
  let cfg =
    { Config.default with Config.enable_memoization = true; Config.n_gatekeepers = 1 }
  in
  let c = mk_cluster ~cfg () in
  let client = Cluster.client c in
  build_social client;
  let q () = ignore (get_node client "alice") in
  q ();
  q ();
  Alcotest.(check bool) "second query memoized" true
    ((Cluster.counters c).Runtime.memo_hits >= 1);
  (* a write to alice invalidates the cached result *)
  let tx = Client.Tx.begin_ client in
  Client.Tx.set_vertex_prop tx ~vid:"alice" ~key:"name" ~value:"Alicia";
  ok_exn "update" (Client.commit client tx);
  Alcotest.(check bool) "invalidated" true
    ((Cluster.counters c).Runtime.memo_invalidations >= 1);
  match get_node client "alice" with
  | Progval.List [ s ] ->
      Alcotest.(check string) "fresh value" "Alicia"
        (Progval.to_str (Progval.assoc "name" (Progval.assoc "props" s)))
  | v -> Alcotest.failf "unexpected %s" (Progval.to_string v)

let test_demand_paging () =
  let cfg = { Config.default with Config.shard_capacity = Some 5; Config.n_shards = 1 } in
  let c = mk_cluster ~cfg () in
  let client = Cluster.client c in
  let n = 25 in
  for i = 0 to n - 1 do
    let tx = Client.Tx.begin_ client in
    ignore (Client.Tx.create_vertex tx ~id:("pv" ^ string_of_int i) ());
    ok_exn "create" (Client.commit client tx)
  done;
  Cluster.run_for c 10_000.0;
  Alcotest.(check bool) "resident bounded" true (Cluster.shard_resident c 0 <= 5);
  Alcotest.(check bool) "evictions happened" true
    ((Cluster.counters c).Runtime.evictions > 0);
  (* all vertices remain readable through paging *)
  for i = 0 to n - 1 do
    match get_node client ("pv" ^ string_of_int i) with
    | Progval.List [ _ ] -> ()
    | v -> Alcotest.failf "pv%d unreadable: %s" i (Progval.to_string v)
  done;
  Alcotest.(check bool) "page-ins happened" true
    ((Cluster.counters c).Runtime.page_ins > 0)

let test_announce_and_nop_flow () =
  let c = mk_cluster () in
  Cluster.run_for c 50_000.0;
  let ctr = Cluster.counters c in
  Alcotest.(check bool) "announces flowed" true (ctr.Runtime.announce_msgs > 0);
  Alcotest.(check bool) "nops flowed" true (ctr.Runtime.nop_msgs > 0)

let test_single_gatekeeper_cluster () =
  (* degenerate configuration: everything vclock-ordered, oracle unused *)
  let cfg = { Config.default with Config.n_gatekeepers = 1; Config.n_shards = 2 } in
  let c = mk_cluster ~cfg () in
  let client = Cluster.client c in
  build_social client;
  (match get_node client "alice" with
  | Progval.List [ _ ] -> ()
  | v -> Alcotest.failf "unexpected %s" (Progval.to_string v));
  Alcotest.(check int) "no oracle consults" 0
    (Cluster.counters c).Runtime.oracle_consults

let suites =
  [
    ( "core.tx",
      [
        Alcotest.test_case "commit and get_node" `Quick test_commit_and_get_node;
        Alcotest.test_case "get_edges/count" `Quick test_get_edges_and_count;
        Alcotest.test_case "invalid rejected" `Quick test_invalid_tx_rejected;
        Alcotest.test_case "double create rejected" `Quick test_double_create_rejected;
        Alcotest.test_case "atomic multi-vertex tx" `Quick test_multi_vertex_atomic_tx;
        Alcotest.test_case "concurrent writes same vertex" `Quick
          test_concurrent_writes_same_vertex;
        Alcotest.test_case "concurrent delete: one wins" `Quick
          test_concurrent_delete_one_wins;
      ] );
    ( "core.progs",
      [
        Alcotest.test_case "reachability across shards" `Quick
          test_reachability_across_shards;
        Alcotest.test_case "edge-filtered reachability" `Quick
          test_reachability_with_edge_filter;
        Alcotest.test_case "hop distance" `Quick test_hop_distance;
        Alcotest.test_case "clustering triangle" `Quick test_clustering_triangle;
        Alcotest.test_case "nhop count" `Quick test_nhop_count;
        Alcotest.test_case "historical snapshot read" `Quick test_snapshot_vs_delete;
      ] );
    ( "core.fault",
      [
        Alcotest.test_case "shard failure recovery" `Quick test_shard_failure_recovery;
        Alcotest.test_case "gatekeeper failure recovery" `Quick
          test_gatekeeper_failure_recovery;
        Alcotest.test_case "epoch monotonicity" `Quick test_timestamps_epoch_monotonic;
      ] );
    ( "core.features",
      [
        Alcotest.test_case "gc compacts versions" `Quick test_gc_compacts_versions;
        Alcotest.test_case "memoization" `Quick test_memoization;
        Alcotest.test_case "demand paging" `Quick test_demand_paging;
        Alcotest.test_case "announce/nop flow" `Quick test_announce_and_nop_flow;
        Alcotest.test_case "single gatekeeper" `Quick test_single_gatekeeper_cluster;
      ] );
  ]
