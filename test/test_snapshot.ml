(* Versioned snapshot store ([Config.snapshot_reads]) and the historical-
   read GC bugfix.

   The regression at the heart of this file: a historical query whose [at]
   timestamp lies at or below the GC watermark used to run against the
   compacted in-memory graph and silently return post-compaction state.
   Post-fix the shard tracks its compaction floor and fails such reads
   with a retryable ["snapshot-gced"] error — unless snapshot serving is
   on, in which case the read pins a published snapshot (rebuilt from the
   durable store, which keeps the full version history) and returns the
   correct historical answer lock-free. *)

open Weaver_core
module Vclock = Weaver_vclock.Vclock
module Snapshot = Weaver_store.Snapshot
module Mgraph = Weaver_graph.Mgraph
module Programs = Weaver_programs.Std_programs

let mk_cluster cfg =
  let c = Cluster.create cfg in
  Programs.Std.register_all (Cluster.registry c);
  c

let ok = function Ok v -> v | Error e -> Alcotest.failf "%s" e

(* ------------------------------------------------------------------ *)
(* Registry units: retention window, pinning, refcount discipline. *)

let test_registry_retention () =
  let t = Snapshot.create ~retain:2 () in
  let _e1 = Snapshot.publish t ~key:"k1" 1 in
  let _e2 = Snapshot.publish t ~key:"k2" 2 in
  let _e3 = Snapshot.publish t ~key:"k3" 3 in
  Alcotest.(check int) "window of 2" 2 (Snapshot.count t);
  Alcotest.(check int) "published total" 3 (Snapshot.published t);
  (match Snapshot.latest t with
  | Some e ->
      Alcotest.(check string) "latest key" "k3" (Snapshot.key e);
      Alcotest.(check int) "latest value" 3 (Snapshot.value e)
  | None -> Alcotest.fail "no latest");
  (* k1 fell out of the window *)
  Alcotest.(check bool) "k1 pruned" true (Snapshot.find t (fun v -> v = 1) = None);
  (* find returns the newest match *)
  match Snapshot.find t (fun v -> v >= 2) with
  | Some e -> Alcotest.(check string) "newest match" "k3" (Snapshot.key e)
  | None -> Alcotest.fail "no match"

let test_registry_pinning () =
  let t = Snapshot.create ~retain:2 () in
  let _ = Snapshot.publish t ~key:"k1" 1 in
  let e2 = Snapshot.publish t ~key:"k2" 2 in
  Snapshot.acquire t e2;
  let _ = Snapshot.publish t ~key:"k3" 3 in
  let _ = Snapshot.publish t ~key:"k4" 4 in
  (* k2 outlived the window because it is pinned *)
  Alcotest.(check int) "window + pin" 3 (Snapshot.count t);
  Alcotest.(check int) "one pinned" 1 (List.length (Snapshot.pinned t));
  Alcotest.(check int) "refs" 1 (Snapshot.refs e2);
  Snapshot.release t e2;
  (* the last release of a retired entry prunes it immediately *)
  Alcotest.(check int) "pruned on release" 2 (Snapshot.count t);
  Alcotest.(check bool) "k2 gone" true (Snapshot.find t (fun v -> v = 2) = None);
  Alcotest.(check int) "acquires" 1 (Snapshot.acquires t);
  Alcotest.(check int) "releases" 1 (Snapshot.releases t);
  (match Snapshot.release t e2 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double release must raise");
  match Snapshot.create ~retain:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "retain 0 must raise"

(* ------------------------------------------------------------------ *)
(* Config validation for the new knobs. *)

let test_config_validation () =
  let expect_invalid name cfg =
    match Config.validate cfg with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  Config.validate Config.default;
  Config.validate { Config.default with Config.snapshot_reads = true };
  expect_invalid "retain 0" { Config.default with Config.snapshot_retain = 0 };
  expect_invalid "snapshots without GC"
    { Config.default with Config.snapshot_reads = true; Config.gc_period = 0.0 }

(* ------------------------------------------------------------------ *)
(* The shared scenario: write k=1, capture a timestamp, overwrite twice,
   let GC compact the closed versions out of shard memory, then read back
   at the captured timestamp. *)

let scenario_cfg =
  {
    Config.default with
    Config.n_gatekeepers = 1;
    Config.n_shards = 1;
    Config.gc_period = 2_000.0;
    Config.net_jitter = 0.0;
  }

let prop_at_capture cfg =
  let c = mk_cluster cfg in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"h" ());
  Client.Tx.set_vertex_prop tx ~vid:"h" ~key:"k" ~value:"1";
  ok (Client.commit client tx);
  Cluster.run_for c 5_000.0;
  let at1 = Cluster.gk_clock c 0 in
  List.iter
    (fun v ->
      let tx = Client.Tx.begin_ client in
      Client.Tx.set_vertex_prop tx ~vid:"h" ~key:"k" ~value:v;
      ok (Client.commit client tx))
    [ "2"; "3" ];
  (* several GC rounds: the closed k=1 and k=2 versions are compacted out
     of the shard's in-memory copy and the floor passes [at1] *)
  Cluster.run_for c 30_000.0;
  (match Cluster.shard_gc_floor c 0 with
  | Some floor ->
      Alcotest.(check bool) "floor passed capture" true (Vclock.precedes at1 floor)
  | None -> Alcotest.fail "no compaction happened");
  let result =
    Client.run_program client ~prog:"get_node" ~params:Progval.Null
      ~starts:[ "h" ] ~at:at1 ()
  in
  (c, result)

(* satellite bugfix: at/below the floor with no snapshot to pin, the read
   must fail retryably instead of silently returning post-compaction
   state (pre-fix this returned [Ok] with the k=1 version missing) *)
let test_gced_read_fails_retryably () =
  let c, result = prop_at_capture scenario_cfg in
  (match result with
  | Error "snapshot-gced" -> ()
  | Error e -> Alcotest.failf "wrong error: %s" e
  | Ok v -> Alcotest.failf "silently read post-GC state: %s" (Progval.to_string v));
  (* the error is a retry signal for every stock policy *)
  Alcotest.(check bool) "retryable (default)" true
    (Client.retryable Client.default_policy "snapshot-gced");
  Alcotest.(check bool) "retryable (reliable)" true
    (Client.retryable Client.reliable_policy "snapshot-gced");
  (* ... and the client layer actually resubmitted before giving up *)
  Alcotest.(check bool) "client retried" true
    ((Cluster.counters c).Runtime.client_retries > 0)

(* tentpole: with snapshot serving on, the same read pins the newest
   published snapshot (whose durable-store build covers every version in
   history) and returns the correct pre-overwrite value *)
let test_pinned_snapshot_serves_gced_read () =
  let cfg = { scenario_cfg with Config.snapshot_reads = true } in
  let c, result = prop_at_capture cfg in
  (match result with
  | Ok (Progval.List [ s ]) ->
      Alcotest.(check bool) "sees the captured version" true
        (Progval.assoc_opt "k" (Progval.assoc "props" s) = Some (Progval.Str "1"))
  | Ok v -> Alcotest.failf "unexpected result %s" (Progval.to_string v)
  | Error e -> Alcotest.failf "snapshot read failed: %s" e);
  let ctr = Cluster.counters c in
  Alcotest.(check bool) "snapshots published" true (ctr.Runtime.snap_published > 0);
  Alcotest.(check bool) "read was pinned" true (ctr.Runtime.snap_pinned_reads > 0);
  Alcotest.(check bool) "snapshots retained" true (Cluster.shard_snapshots c 0 > 0);
  (* the run's Prog_gc released its pin *)
  Cluster.run_for c 5_000.0;
  Alcotest.(check int) "no pins left" 0 (Cluster.shard_snapshots_pinned c 0)

(* a pin held across watermark rounds clamps compaction: the gossiped
   watermark keeps advancing but the effective one stops at the pinned
   snapshot's stamp, counted as [snap.gc_deferred] *)
let test_pin_defers_gc () =
  let cfg =
    {
      scenario_cfg with
      Config.snapshot_reads = true;
      Config.gc_period = 500.0;
      (* slow network: the pin (acquired when the Prog_batch arrives)
         stays held for two round trips — partial out, Prog_gc back —
         spanning several watermark rounds *)
      Config.net_base_latency = 2_000.0;
    }
  in
  let c = mk_cluster cfg in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"h" ());
  Client.Tx.set_vertex_prop tx ~vid:"h" ~key:"k" ~value:"1";
  ok (Client.commit client tx);
  Cluster.run_for c 10_000.0;
  let at1 = Cluster.gk_clock c 0 in
  Cluster.run_for c 5_000.0;
  let got = ref None in
  Client.run_program_async client ~prog:"get_node" ~params:Progval.Null
    ~starts:[ "h" ] ~at:at1
    ~on_result:(fun r -> got := Some r)
    ();
  (* concurrent writer: keeps the gatekeeper clock ticking so the gossiped
     watermark advances past the pinned snapshot's stamp *)
  let stop = ref false in
  let writer = Cluster.client c in
  let rec next k =
    if not !stop then begin
      let tx = Client.Tx.begin_ writer in
      Client.Tx.set_vertex_prop tx ~vid:"h" ~key:"w" ~value:(string_of_int k);
      Client.commit_async writer tx ~on_result:(fun _ -> next (k + 1))
    end
  in
  next 0;
  let max_pinned = ref 0 in
  for _ = 1 to 60 do
    Cluster.run_for c 500.0;
    max_pinned := max !max_pinned (Cluster.shard_snapshots_pinned c 0)
  done;
  stop := true;
  (match !got with
  | Some (Ok _) -> ()
  | Some (Error e) -> Alcotest.failf "program: %s" e
  | None -> Alcotest.fail "program never completed");
  Alcotest.(check bool) "a pin was observed" true (!max_pinned > 0);
  Alcotest.(check bool) "gc deferred while pinned" true
    ((Cluster.counters c).Runtime.snap_gc_deferred > 0);
  Alcotest.(check int) "pin released" 0 (Cluster.shard_snapshots_pinned c 0)

(* ------------------------------------------------------------------ *)
(* satellite bugfix: crash-recovery reload is deterministic. The reload
   keeps the first [shard_capacity] owned records of the store scan, so
   the scan order (now sorted by key) fully determines the resident set:
   it must equal the lexicographically-first capacity-many owned vids —
   under the pre-fix unspecified Hashtbl order it was whatever the table
   layout produced. *)

let test_deterministic_capacity_reload () =
  let cfg =
    {
      Config.default with
      Config.n_gatekeepers = 1;
      Config.n_shards = 2;
      Config.shard_capacity = Some 5;
      Config.gc_period = 0.0;
    }
  in
  let c = mk_cluster cfg in
  let client = Cluster.client c in
  for i = 0 to 19 do
    let tx = Client.Tx.begin_ client in
    ignore (Client.Tx.create_vertex tx ~id:(Printf.sprintf "v%02d" i) ());
    ok (Client.commit client tx)
  done;
  Cluster.run_for c 20_000.0;
  Cluster.reload_shards c;
  for sid = 0 to 1 do
    let owned =
      List.filter
        (fun i -> Cluster.shard_of_vertex c (Printf.sprintf "v%02d" i) = sid)
        (List.init 20 Fun.id)
      |> List.map (Printf.sprintf "v%02d")
      |> List.sort String.compare
    in
    let expected = List.filteri (fun i _ -> i < 5) owned in
    Alcotest.(check (list string))
      (Printf.sprintf "shard %d resident set" sid)
      expected
      (Cluster.shard_resident_ids c sid)
  done

let suites =
  [
    ( "snapshot",
      [
        Alcotest.test_case "registry retention" `Quick test_registry_retention;
        Alcotest.test_case "registry pinning" `Quick test_registry_pinning;
        Alcotest.test_case "config validation" `Quick test_config_validation;
        Alcotest.test_case "gced read fails retryably" `Quick
          test_gced_read_fails_retryably;
        Alcotest.test_case "pinned snapshot serves gced read" `Quick
          test_pinned_snapshot_serves_gced_read;
        Alcotest.test_case "pin defers gc" `Quick test_pin_defers_gc;
        Alcotest.test_case "deterministic capacity reload" `Quick
          test_deterministic_capacity_reload;
      ] );
  ]
