(* Tests for the multi-version property graph: snapshot visibility,
   property versioning, deletion marking, and GC compaction. *)

open Weaver_graph
module Vclock = Weaver_vclock.Vclock

(* timestamps along a single gatekeeper's timeline: t 1, t 2, ... *)
let t i =
  let clocks = [| i; 0 |] in
  Vclock.make ~epoch:0 ~origin:0 clocks

let before a b = Vclock.precedes a b

let test_create_and_visibility () =
  let v = Mgraph.create_vertex ~vid:"a" ~at:(t 5) in
  Alcotest.(check bool) "invisible before creation" false
    (Mgraph.vertex_alive before v ~at:(t 4));
  Alcotest.(check bool) "visible at creation" true
    (Mgraph.vertex_alive before v ~at:(t 5));
  Alcotest.(check bool) "visible after" true (Mgraph.vertex_alive before v ~at:(t 9))

let test_delete_vertex_versions () =
  let v = Mgraph.create_vertex ~vid:"a" ~at:(t 1) in
  let v = Mgraph.delete_vertex v ~at:(t 5) in
  Alcotest.(check bool) "alive before delete" true (Mgraph.vertex_alive before v ~at:(t 4));
  Alcotest.(check bool) "dead at delete" false (Mgraph.vertex_alive before v ~at:(t 5));
  Alcotest.(check bool) "dead after" false (Mgraph.vertex_alive before v ~at:(t 8))

let test_edges_snapshot () =
  let v = Mgraph.create_vertex ~vid:"a" ~at:(t 1) in
  let v = Mgraph.add_edge v ~eid:"e1" ~dst:"b" ~at:(t 2) in
  let v = Mgraph.add_edge v ~eid:"e2" ~dst:"c" ~at:(t 4) in
  let v = Mgraph.delete_edge v ~eid:"e1" ~at:(t 6) in
  let dsts at =
    List.map (fun e -> e.Mgraph.dst) (Mgraph.out_edges before v ~at)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "t1: none" [] (dsts (t 1));
  Alcotest.(check (list string)) "t3: e1" [ "b" ] (dsts (t 3));
  Alcotest.(check (list string)) "t5: both" [ "b"; "c" ] (dsts (t 5));
  Alcotest.(check (list string)) "t7: e2 only" [ "c" ] (dsts (t 7));
  Alcotest.(check int) "degree at t5" 2 (Mgraph.degree before v ~at:(t 5))

let test_historical_read_after_delete () =
  (* the multi-version graph answers queries at old timestamps even after
     deletions — the basis of Weaver's historical queries *)
  let v = Mgraph.create_vertex ~vid:"a" ~at:(t 1) in
  let v = Mgraph.add_edge v ~eid:"e" ~dst:"b" ~at:(t 2) in
  let v = Mgraph.delete_edge v ~eid:"e" ~at:(t 3) in
  let v = Mgraph.delete_vertex v ~at:(t 4) in
  Alcotest.(check int) "past edge visible" 1
    (List.length (Mgraph.out_edges before v ~at:(t 2)));
  Alcotest.(check bool) "past vertex visible" true
    (Mgraph.vertex_alive before v ~at:(t 2))

let test_vertex_prop_versioning () =
  let v = Mgraph.create_vertex ~vid:"a" ~at:(t 1) in
  let v = Mgraph.set_vertex_prop before v ~key:"color" ~value:"red" ~at:(t 2) in
  let v = Mgraph.set_vertex_prop before v ~key:"color" ~value:"blue" ~at:(t 5) in
  Alcotest.(check (list (pair string string)))
    "old version" [ ("color", "red") ]
    (Mgraph.vertex_props before v ~at:(t 3));
  Alcotest.(check (list (pair string string)))
    "new version" [ ("color", "blue") ]
    (Mgraph.vertex_props before v ~at:(t 6));
  let v = Mgraph.del_vertex_prop before v ~key:"color" ~at:(t 7) in
  Alcotest.(check (list (pair string string)))
    "deleted" [] (Mgraph.vertex_props before v ~at:(t 8))

let test_multiple_props () =
  (* paper §2.1: an edge may carry weight=3.0 and color=red simultaneously *)
  let v = Mgraph.create_vertex ~vid:"u" ~at:(t 1) in
  let v = Mgraph.add_edge v ~eid:"e" ~dst:"w" ~at:(t 1) in
  let v = Mgraph.set_edge_prop before v ~eid:"e" ~key:"weight" ~value:"3.0" ~at:(t 2) in
  let v = Mgraph.set_edge_prop before v ~eid:"e" ~key:"color" ~value:"red" ~at:(t 2) in
  let e = List.hd (Mgraph.out_edges before v ~at:(t 3)) in
  let props = List.sort compare (Mgraph.edge_props before e ~at:(t 3)) in
  Alcotest.(check (list (pair string string)))
    "both props" [ ("color", "red"); ("weight", "3.0") ] props

let test_edge_has_prop () =
  let v = Mgraph.create_vertex ~vid:"u" ~at:(t 1) in
  let v = Mgraph.add_edge v ~eid:"e" ~dst:"w" ~at:(t 1) in
  let v = Mgraph.set_edge_prop before v ~eid:"e" ~key:"VISIBLE" ~value:"" ~at:(t 2) in
  let e at = List.hd (Mgraph.out_edges before v ~at) in
  Alcotest.(check bool) "has prop" true
    (Mgraph.edge_has_prop before (e (t 3)) ~key:"VISIBLE" ~at:(t 3) ());
  Alcotest.(check bool) "not yet at t1" false
    (Mgraph.edge_has_prop before (e (t 1)) ~key:"VISIBLE" ~at:(t 1) ());
  Alcotest.(check bool) "value mismatch" false
    (Mgraph.edge_has_prop before (e (t 3)) ~key:"VISIBLE" ~value:"x" ~at:(t 3) ())

let test_deleted_edge_prop_untouched () =
  (* setting a property on a deleted edge's id must not resurrect it *)
  let v = Mgraph.create_vertex ~vid:"u" ~at:(t 1) in
  let v = Mgraph.add_edge v ~eid:"e" ~dst:"w" ~at:(t 1) in
  let v = Mgraph.delete_edge v ~eid:"e" ~at:(t 2) in
  let v = Mgraph.set_edge_prop before v ~eid:"e" ~key:"k" ~value:"v" ~at:(t 3) in
  Alcotest.(check int) "edge still dead" 0
    (List.length (Mgraph.out_edges before v ~at:(t 4)))

let test_compact_drops_dead () =
  let v = Mgraph.create_vertex ~vid:"a" ~at:(t 1) in
  let v = Mgraph.add_edge v ~eid:"e1" ~dst:"b" ~at:(t 2) in
  let v = Mgraph.delete_edge v ~eid:"e1" ~at:(t 3) in
  let v = Mgraph.add_edge v ~eid:"e2" ~dst:"c" ~at:(t 4) in
  let v = Mgraph.set_vertex_prop before v ~key:"p" ~value:"1" ~at:(t 2) in
  let v = Mgraph.set_vertex_prop before v ~key:"p" ~value:"2" ~at:(t 5) in
  (* watermark t6: e1 (deleted t3) and p=1 (closed t5) are unreachable *)
  match Mgraph.compact before v ~watermark:(t 6) with
  | None -> Alcotest.fail "vertex should survive"
  | Some v' ->
      Alcotest.(check int) "one edge version left" 1 (Array.length v'.Mgraph.out);
      Alcotest.(check int) "one prop version left" 1 (Array.length v'.Mgraph.v_props);
      Alcotest.(check (list (pair string string)))
        "current prop intact" [ ("p", "2") ]
        (Mgraph.vertex_props before v' ~at:(t 7))

let test_compact_removes_dead_vertex () =
  let v = Mgraph.create_vertex ~vid:"a" ~at:(t 1) in
  let v = Mgraph.delete_vertex v ~at:(t 2) in
  Alcotest.(check bool) "gone below watermark" true
    (Mgraph.compact before v ~watermark:(t 5) = None);
  (* watermark at the deletion stamp: not strictly before, so kept *)
  Alcotest.(check bool) "kept at watermark" true
    (Mgraph.compact before v ~watermark:(t 2) <> None)

let test_compact_preserves_live () =
  let v = Mgraph.create_vertex ~vid:"a" ~at:(t 1) in
  let v = Mgraph.add_edge v ~eid:"e" ~dst:"b" ~at:(t 2) in
  match Mgraph.compact before v ~watermark:(t 100) with
  | None -> Alcotest.fail "live vertex dropped"
  | Some v' -> Alcotest.(check int) "live edge kept" 1 (Array.length v'.Mgraph.out)

(* property: visibility is monotone in time for undeleted objects, and an
   object is never visible before its creation stamp *)
let prop_visibility_sane =
  QCheck.Test.make ~name:"visibility bounded by creation/deletion" ~count:300
    QCheck.(triple (int_range 1 20) (int_range 1 20) (int_range 1 20))
    (fun (c, d, q) ->
      let life = { Mgraph.created = t c; deleted = Some (t (c + d)) } in
      let visible = Mgraph.alive before life ~at:(t q) in
      let expected = q >= c && q < c + d in
      visible = expected)

let prop_updates_do_not_rewrite_history =
  QCheck.Test.make ~name:"later writes never change earlier snapshots" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 15) (pair (int_range 2 30) bool))
    (fun writes ->
      (* apply a sequence of add/delete-edge writes at increasing times and
         check the t1 snapshot stays empty and intact *)
      let v = ref (Mgraph.create_vertex ~vid:"a" ~at:(t 1)) in
      let eid = ref 0 in
      List.iteri
        (fun i (ti, add) ->
          let at = t (ti + (i * 31)) in
          if add then begin
            incr eid;
            v := Mgraph.add_edge !v ~eid:(string_of_int !eid) ~dst:"z" ~at
          end
          else if !eid > 0 then v := Mgraph.delete_edge !v ~eid:(string_of_int !eid) ~at)
        writes;
      Mgraph.out_edges before !v ~at:(t 1) = []
      && Mgraph.vertex_alive before !v ~at:(t 1))

let suites =
  [
    ( "graph",
      [
        Alcotest.test_case "create/visibility" `Quick test_create_and_visibility;
        Alcotest.test_case "delete versions" `Quick test_delete_vertex_versions;
        Alcotest.test_case "edge snapshots" `Quick test_edges_snapshot;
        Alcotest.test_case "historical reads" `Quick test_historical_read_after_delete;
        Alcotest.test_case "prop versioning" `Quick test_vertex_prop_versioning;
        Alcotest.test_case "multiple props" `Quick test_multiple_props;
        Alcotest.test_case "edge_has_prop" `Quick test_edge_has_prop;
        Alcotest.test_case "dead edge prop" `Quick test_deleted_edge_prop_untouched;
        Alcotest.test_case "compact drops dead" `Quick test_compact_drops_dead;
        Alcotest.test_case "compact removes dead vertex" `Quick test_compact_removes_dead_vertex;
        Alcotest.test_case "compact preserves live" `Quick test_compact_preserves_live;
        QCheck_alcotest.to_alcotest prop_visibility_sane;
        QCheck_alcotest.to_alcotest prop_updates_do_not_rewrite_history;
      ] );
  ]
