(* Tests for the weaver_util substrate: RNG determinism and distributions,
   binary heap ordering, statistics, and id generation. *)

open Weaver_util

let test_rng_determinism () =
  let a = Xrand.create ~seed:42 () and b = Xrand.create ~seed:42 () in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Xrand.bits64 a) (Xrand.bits64 b)
  done

let test_rng_seed_divergence () =
  let a = Xrand.create ~seed:1 () and b = Xrand.create ~seed:2 () in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Xrand.bits64 a = Xrand.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_int_range () =
  let r = Xrand.create ~seed:7 () in
  for _ = 1 to 1000 do
    let v = Xrand.int r 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done

let test_rng_int_in () =
  let r = Xrand.create ~seed:7 () in
  for _ = 1 to 1000 do
    let v = Xrand.int_in r 5 9 in
    Alcotest.(check bool) "in [5,9]" true (v >= 5 && v <= 9)
  done

let test_rng_float_range () =
  let r = Xrand.create ~seed:7 () in
  for _ = 1 to 1000 do
    let v = Xrand.float r 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_uniformity () =
  let r = Xrand.create ~seed:11 () in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Xrand.int r 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "roughly uniform" true (frac > 0.08 && frac < 0.12))
    counts

let test_rng_split_independent () =
  let a = Xrand.create ~seed:3 () in
  let b = Xrand.split a in
  let matches = ref 0 in
  for _ = 1 to 50 do
    if Xrand.bits64 a = Xrand.bits64 b then incr matches
  done;
  Alcotest.(check bool) "split streams independent" true (!matches < 5)

let test_rng_exponential_mean () =
  let r = Xrand.create ~seed:5 () in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Xrand.exponential r ~mean:10.0 in
    Alcotest.(check bool) "positive" true (v > 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 10" true (mean > 9.0 && mean < 11.0)

let test_rng_zipf_skew () =
  let r = Xrand.create ~seed:13 () in
  let n = 1000 and samples = 50_000 in
  let counts = Array.make n 0 in
  for _ = 1 to samples do
    let v = Xrand.zipf r ~n ~theta:0.9 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < n);
    counts.(v) <- counts.(v) + 1
  done;
  (* head of the distribution should dominate the tail *)
  let head = Array.fold_left ( + ) 0 (Array.sub counts 0 (n / 10)) in
  Alcotest.(check bool) "skewed towards head" true
    (float_of_int head /. float_of_int samples > 0.5)

let test_rng_shuffle_permutation () =
  let r = Xrand.create ~seed:17 () in
  let arr = Array.init 100 (fun i -> i) in
  Xrand.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 (fun i -> i)) sorted

let test_heap_sorts () =
  let h = Heap.create ~cmp:compare in
  let r = Xrand.create ~seed:23 () in
  let input = List.init 500 (fun _ -> Xrand.int r 1000) in
  List.iter (Heap.push h) input;
  Alcotest.(check int) "length" 500 (Heap.length h);
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some x ->
        out := x :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  let out = List.rev !out in
  Alcotest.(check (list int)) "heap sort" (List.sort compare input) out

let test_heap_peek_pop () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check (option int)) "empty peek" None (Heap.peek h);
  Alcotest.(check (option int)) "empty pop" None (Heap.pop h);
  Heap.push h 5;
  Heap.push h 3;
  Heap.push h 8;
  Alcotest.(check (option int)) "peek min" (Some 3) (Heap.peek h);
  Alcotest.(check int) "peek does not remove" 3 (Heap.length h);
  Alcotest.(check (option int)) "pop min" (Some 3) (Heap.pop h);
  Alcotest.(check (option int)) "next min" (Some 5) (Heap.pop h)

let test_heap_pop_exn () =
  let h = Heap.create ~cmp:compare in
  Alcotest.check_raises "pop_exn on empty"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_heap_clear () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h)

let test_heap_custom_cmp () =
  (* max-heap via inverted comparison *)
  let h = Heap.create ~cmp:(fun a b -> compare b a) in
  List.iter (Heap.push h) [ 4; 9; 1 ];
  Alcotest.(check (option int)) "max first" (Some 9) (Heap.pop h)

let test_heap_drain_releases_memory () =
  (* regression: popping the last element used to leave it reachable
     through slot 0 of the backing array — in the engine that pinned the
     last executed event closure (and everything it captured) for the life
     of the heap *)
  let h = Heap.create ~cmp:(fun a b -> compare !a !b) in
  let w = Weak.create 3 in
  let fill () =
    List.iteri
      (fun i v ->
        let r = ref v in
        Weak.set w i (Some r);
        Heap.push h r)
      [ 3; 1; 2 ]
  in
  let rec drain () = match Heap.pop h with Some _ -> drain () | None -> () in
  fill ();
  drain ();
  Gc.full_major ();
  for i = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "payload %d collected after drain" i)
      false (Weak.check w i)
  done;
  (* the heap itself stays usable *)
  Heap.push h (ref 9);
  Alcotest.(check bool) "push after drain" true (Heap.pop h <> None)

let test_stats_basic () =
  let s = Stats.create () in
  Alcotest.(check bool) "empty" true (Stats.is_empty s);
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_val s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max_val s);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Stats.total s)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Stats.percentile s 99.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile s 100.0);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile s 0.0)

let test_stats_percentile_after_add () =
  (* adding after a percentile query must re-sort *)
  let s = Stats.create () in
  List.iter (Stats.add s) [ 5.0; 1.0 ];
  ignore (Stats.percentile s 50.0);
  Stats.add s 0.5;
  Alcotest.(check (float 1e-9)) "min after re-add" 0.5 (Stats.percentile s 0.0)

let test_stats_stddev () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  (* sample stddev of this classic set is ~2.138 *)
  let sd = Stats.stddev s in
  Alcotest.(check bool) "stddev" true (Float.abs (sd -. 2.138) < 0.01)

let test_stats_cdf () =
  let s = Stats.create () in
  for i = 1 to 10 do
    Stats.add s (float_of_int i)
  done;
  let cdf = Stats.cdf s ~points:10 in
  Alcotest.(check int) "cdf points" 10 (List.length cdf);
  let vs, fs = List.split cdf in
  Alcotest.(check bool) "values nondecreasing" true
    (List.for_all2 ( <= ) (List.filteri (fun i _ -> i < 9) vs) (List.tl vs));
  Alcotest.(check (float 1e-9)) "last fraction" 1.0 (List.nth fs 9)

let test_histogram () =
  let open Stats.Histogram in
  let h = create ~lo:0.0 ~hi:10.0 ~buckets:10 in
  add h (-5.0);
  add h 0.5;
  add h 9.99;
  add h 50.0;
  Alcotest.(check int) "total" 4 (total h);
  let c = counts h in
  Alcotest.(check int) "underflow into first" 2 c.(0);
  Alcotest.(check int) "overflow into last" 2 c.(9)

let test_stats_percentile_edges () =
  (* empty *)
  let s = Stats.create () in
  Alcotest.(check (float 1e-9)) "empty p50" 0.0 (Stats.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "empty p0" 0.0 (Stats.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "empty p100" 0.0 (Stats.percentile s 100.0);
  (* n = 1: every percentile is the single sample *)
  Stats.add s 7.0;
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "n=1 p%g" p)
        7.0 (Stats.percentile s p))
    [ 0.0; 1.0; 50.0; 99.0; 100.0 ];
  (* n = 2: nearest-rank picks the lower sample up to p50, upper above *)
  Stats.add s 9.0;
  Alcotest.(check (float 1e-9)) "n=2 p0" 7.0 (Stats.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "n=2 p50" 7.0 (Stats.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "n=2 p51" 9.0 (Stats.percentile s 51.0);
  Alcotest.(check (float 1e-9)) "n=2 p100" 9.0 (Stats.percentile s 100.0);
  (* out-of-range p clamps rather than raising *)
  Alcotest.(check (float 1e-9)) "p<0 clamps" 7.0 (Stats.percentile s (-10.0));
  Alcotest.(check (float 1e-9)) "p>100 clamps" 9.0 (Stats.percentile s 250.0)

let test_stats_cdf_edges () =
  let s = Stats.create () in
  Alcotest.(check int) "empty cdf" 0 (List.length (Stats.cdf s ~points:10));
  Alcotest.(check int) "zero points" 0 (List.length (Stats.cdf s ~points:0));
  Stats.add s 3.0;
  let cdf = Stats.cdf s ~points:4 in
  Alcotest.(check int) "n=1 point count" 4 (List.length cdf);
  List.iter
    (fun (v, _) -> Alcotest.(check (float 1e-9)) "n=1 all points" 3.0 v)
    cdf;
  Alcotest.(check (float 1e-9)) "n=1 last frac" 1.0 (snd (List.nth cdf 3));
  Stats.add s 5.0;
  let cdf2 = Stats.cdf s ~points:2 in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "n=2 two points"
    [ (3.0, 0.5); (5.0, 1.0) ]
    cdf2

let test_histogram_bucket_clamp () =
  let open Stats.Histogram in
  (* regression: with a huge range, (x - lo) and (hi - lo) collapse to the
     same float for x just below hi, the ratio rounds to 1.0, and the raw
     bucket index lands out of bounds at n *)
  let h = create ~lo:(-1e16) ~hi:0.5 ~buckets:10 in
  add h 0.49;
  Alcotest.(check int) "clamped into last bucket" 1 (counts h).(9);
  (* any in-range x must land in a valid bucket *)
  let h2 = create ~lo:(-1e12) ~hi:1.0 ~buckets:7 in
  let r = Xrand.create ~seed:31 () in
  for _ = 1 to 10_000 do
    add h2 (Xrand.float r 2.0 -. 1e12 /. Xrand.float r 1e3)
  done;
  add h2 0.999999999;
  add h2 (Float.pred 1.0);
  Alcotest.(check int) "all samples binned" 10_002 (total h2)

let test_idgen () =
  let g = Idgen.create () in
  Alcotest.(check int) "first" 0 (Idgen.next g);
  Alcotest.(check int) "second" 1 (Idgen.next g);
  Alcotest.(check string) "prefixed" "v2" (Idgen.next_str g ~prefix:"v");
  Alcotest.(check int) "current" 2 (Idgen.current g);
  let g2 = Idgen.create ~start:100 () in
  Alcotest.(check int) "start offset" 100 (Idgen.next g2)

(* property tests *)

let prop_heap_pop_sorted =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun l ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) l;
      let rec drain acc =
        match Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare l)

let prop_heap_churn_matches_oracle =
  (* interleaved push/pop churn against a sorted-list oracle — the
     drain-then-refill pattern the drain-release fix touches, not just the
     fill-once/drain-once shape of the sort test above *)
  QCheck.Test.make ~name:"heap matches sorted-list oracle under churn" ~count:200
    QCheck.(list (option small_int))
    (fun ops ->
      let h = Heap.create ~cmp:compare in
      let model = ref [] in
      List.for_all
        (function
          | Some x ->
              Heap.push h x;
              model := List.sort compare (x :: !model);
              Heap.length h = List.length !model
          | None -> (
              match (Heap.pop h, !model) with
              | None, [] -> true
              | Some v, m :: rest ->
                  model := rest;
                  v = m
              | _ -> false))
        ops)

let prop_stats_percentile_bounds =
  QCheck.Test.make ~name:"percentile within [min,max]" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0)) (float_bound_inclusive 100.0))
    (fun (l, p) ->
      let s = Stats.create () in
      List.iter (Stats.add s) l;
      let v = Stats.percentile s p in
      v >= Stats.min_val s && v <= Stats.max_val s)

let prop_rng_zipf_in_range =
  QCheck.Test.make ~name:"zipf stays in range" ~count:500
    QCheck.(pair (int_range 1 1000) (float_bound_inclusive 1.5))
    (fun (n, theta) ->
      let r = Xrand.create ~seed:(n + int_of_float (theta *. 100.)) () in
      let v = Xrand.zipf r ~n ~theta in
      v >= 0 && v < n)

let suites =
  [
    ( "util.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "seed divergence" `Quick test_rng_seed_divergence;
        Alcotest.test_case "int range" `Quick test_rng_int_range;
        Alcotest.test_case "int_in range" `Quick test_rng_int_in;
        Alcotest.test_case "float range" `Quick test_rng_float_range;
        Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
        Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        QCheck_alcotest.to_alcotest prop_rng_zipf_in_range;
      ] );
    ( "util.heap",
      [
        Alcotest.test_case "sorts" `Quick test_heap_sorts;
        Alcotest.test_case "peek/pop" `Quick test_heap_peek_pop;
        Alcotest.test_case "pop_exn" `Quick test_heap_pop_exn;
        Alcotest.test_case "clear" `Quick test_heap_clear;
        Alcotest.test_case "custom cmp" `Quick test_heap_custom_cmp;
        Alcotest.test_case "drain releases memory" `Quick
          test_heap_drain_releases_memory;
        QCheck_alcotest.to_alcotest prop_heap_pop_sorted;
        QCheck_alcotest.to_alcotest prop_heap_churn_matches_oracle;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "basic" `Quick test_stats_basic;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "percentile after add" `Quick test_stats_percentile_after_add;
        Alcotest.test_case "stddev" `Quick test_stats_stddev;
        Alcotest.test_case "percentile edges" `Quick test_stats_percentile_edges;
        Alcotest.test_case "cdf" `Quick test_stats_cdf;
        Alcotest.test_case "cdf edges" `Quick test_stats_cdf_edges;
        Alcotest.test_case "histogram" `Quick test_histogram;
        Alcotest.test_case "histogram bucket clamp" `Quick test_histogram_bucket_clamp;
        QCheck_alcotest.to_alcotest prop_stats_percentile_bounds;
      ] );
    ("util.idgen", [ Alcotest.test_case "sequence" `Quick test_idgen ]);
  ]
