(* Tests for read-only shard replicas (§6.4): replication stream,
   eventual convergence, weak reads, and observable staleness. *)

open Weaver_core
module Programs = Weaver_programs.Std_programs

let mk_cluster ?(replicas = 1) () =
  let cfg = { Config.default with Config.read_replicas = replicas } in
  let c = Cluster.create cfg in
  Programs.Std.register_all (Cluster.registry c);
  c

let ok = function Ok v -> v | Error e -> Alcotest.failf "%s" e

let test_replication_stream_converges () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"r1" ());
  ignore (Client.Tx.create_vertex tx ~id:"r2" ());
  ignore (Client.Tx.create_edge tx ~src:"r1" ~dst:"r2");
  ok (Client.commit client tx);
  let shard = Cluster.shard_of_vertex c "r1" in
  (* at commit time the replica may not have applied yet — that is the
     staleness window; primaries have the write as soon as they apply *)
  Cluster.run_for c 50_000.0;
  (match Cluster.replica_vertex c ~shard ~replica:0 "r1" with
  | Some v -> Alcotest.(check int) "replica has the edge" 1 (Array.length v.Weaver_graph.Mgraph.out)
  | None -> Alcotest.fail "replica missing r1");
  Alcotest.(check bool) "stream counted" true
    (Cluster.replica_applied c ~shard ~replica:0 >= 1)

let test_staleness_window_observable () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"sw" ());
  ok (Client.commit client tx);
  Cluster.run_for c 20_000.0;
  (* second write: the primary applies it one replication hop before the
     replica does — advance the clock in tiny steps to land inside that
     window *)
  let shard = Cluster.shard_of_vertex c "sw" in
  let prop_of vo =
    match vo with
    | Some v ->
        Array.exists
          (fun (p : Weaver_graph.Mgraph.prop) -> p.Weaver_graph.Mgraph.pval = "new")
          v.Weaver_graph.Mgraph.v_props
    | None -> false
  in
  let tx = Client.Tx.begin_ client in
  Client.Tx.set_vertex_prop tx ~vid:"sw" ~key:"v" ~value:"new";
  Client.commit_async client tx ~on_result:(fun _ -> ());
  let budget = ref 100_000 in
  while (not (prop_of (Cluster.shard_vertex c ~shard "sw"))) && !budget > 0 do
    decr budget;
    Cluster.run_for c 10.0
  done;
  Alcotest.(check bool) "primary applied" true
    (prop_of (Cluster.shard_vertex c ~shard "sw"));
  Alcotest.(check bool) "replica still stale" false
    (prop_of (Cluster.replica_vertex c ~shard ~replica:0 "sw"));
  (* ... and converges *)
  Cluster.run_for c 50_000.0;
  Alcotest.(check bool) "replica converged" true
    (prop_of (Cluster.replica_vertex c ~shard ~replica:0 "sw"))

let test_weak_read_serves_from_replica () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"wk" ());
  ok (Client.commit client tx);
  Cluster.run_for c 50_000.0;
  let v0 = (Cluster.counters c).Runtime.vertices_read in
  match
    Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ "wk" ]
      ~consistency:`Weak ()
  with
  | Ok (Progval.List [ s ]) ->
      Alcotest.(check string) "vid" "wk" (Progval.to_str (Progval.assoc "vid" s));
      Alcotest.(check bool) "read happened somewhere" true
        ((Cluster.counters c).Runtime.vertices_read > v0)
  | Ok v -> Alcotest.failf "unexpected %s" (Progval.to_string v)
  | Error e -> Alcotest.failf "weak read: %s" e

let test_weak_traversal_across_replicas () =
  let c = mk_cluster ~replicas:2 () in
  let client = Cluster.client c in
  let g = Weaver_workloads.Graphgen.chain ~prefix:"wt" ~vertices:20 () in
  Weaver_workloads.Loader.fast_install c g;
  Cluster.run_for c 20_000.0;
  match
    Client.run_program client ~prog:"reachable"
      ~params:(Progval.Assoc [ ("target", Progval.Str "wt19") ])
      ~starts:[ "wt0" ] ~consistency:`Weak ()
  with
  | Ok (Progval.Bool b) -> Alcotest.(check bool) "weak traversal works" true b
  | Ok v -> Alcotest.failf "unexpected %s" (Progval.to_string v)
  | Error e -> Alcotest.failf "weak traversal: %s" e

let test_weak_without_replicas_falls_back () =
  (* a deployment without replicas serves weak reads from the primaries *)
  let c = mk_cluster ~replicas:0 () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"fb" ());
  ok (Client.commit client tx);
  match
    Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ "fb" ]
      ~consistency:`Weak ()
  with
  | Ok (Progval.List [ _ ]) -> ()
  | Ok v -> Alcotest.failf "unexpected %s" (Progval.to_string v)
  | Error e -> Alcotest.failf "fallback: %s" e

let test_strong_reads_unaffected_by_replicas () =
  let c = mk_cluster ~replicas:2 () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"st" ());
  ok (Client.commit client tx);
  (* a strong read immediately after commit always sees the write *)
  match
    Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ "st" ] ()
  with
  | Ok (Progval.List [ _ ]) -> ()
  | Ok v -> Alcotest.failf "strong read missed the write: %s" (Progval.to_string v)
  | Error e -> Alcotest.failf "%s" e

let suites =
  [
    ( "replica",
      [
        Alcotest.test_case "stream converges" `Quick test_replication_stream_converges;
        Alcotest.test_case "staleness observable" `Quick test_staleness_window_observable;
        Alcotest.test_case "weak read" `Quick test_weak_read_serves_from_replica;
        Alcotest.test_case "weak traversal" `Quick test_weak_traversal_across_replicas;
        Alcotest.test_case "weak without replicas" `Quick test_weak_without_replicas_falls_back;
        Alcotest.test_case "strong unaffected" `Quick test_strong_reads_unaffected_by_replicas;
      ] );
  ]
