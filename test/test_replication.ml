(* Tests for timestamp-consistent partial replication of hot ranges
   (ROADMAP item 3): the coverage predicate and controller table, the
   end-to-end install → seed → stream → route pipeline, survival of
   covered reads across an owner crash, credit-starved stream resync,
   control-plane invisibility at replication factor 0, and the two fixes
   that ride along — replica-served reads feeding heat attribution, and
   weak-read routing skipping dead replicas. *)

open Weaver_core
module Programs = Weaver_programs.Std_programs
module Heat = Weaver_obs.Heat
module Fault = Weaver_sim.Fault
module Repl = Weaver_repl.Repl
module Vclock = Runtime.Vclock

let ok = function Ok v -> v | Error e -> Alcotest.failf "commit failed: %s" e

let mk_cluster cfg =
  let c = Cluster.create cfg in
  Programs.Std.register_all (Cluster.registry c);
  c

let repl_cfg ?(factor = 2) seed =
  {
    Config.default with
    Config.seed;
    n_gatekeepers = 1;
    enable_heat = true;
    enable_replication = true;
    replication_factor = factor;
    gc_period = 2_000.0;
  }

let create_vertex client vid =
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:vid ());
  ok (Client.commit client tx)

let set_prop client vid key value =
  let tx = Client.Tx.begin_ client in
  Client.Tx.set_vertex_prop tx ~vid ~key ~value;
  ok (Client.commit client tx)

let weak_read client vid =
  Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ vid ]
    ~consistency:`Weak ()

(* the value of vertex prop [key] out of a [get_node] result *)
let prop_of result key =
  match result with
  | Progval.List [ s ] -> Progval.assoc_opt key (Progval.assoc "props" s)
  | _ -> Alcotest.fail "unexpected get_node result shape"

(* ------------------------------------------------------------------ *)
(* Coverage predicate and controller table. *)

let vc clocks = Vclock.make ~epoch:0 ~origin:0 (Array.of_list clocks)

let test_covers_and_table () =
  let wm = vc [ 5; 3 ] in
  Alcotest.(check bool) "equal stamp covered" true (Repl.covers ~wm (vc [ 5; 3 ]));
  Alcotest.(check bool) "below covered" true (Repl.covers ~wm (vc [ 2; 3 ]));
  Alcotest.(check bool) "one dim above" false (Repl.covers ~wm (vc [ 5; 4 ]));
  Alcotest.(check bool) "epoch mismatch" false
    (Repl.covers ~wm (Vclock.make ~epoch:1 ~origin:0 [| 1; 1 |]));
  let t = Repl.Table.create () in
  Alcotest.(check int) "empty" 0 (Repl.Table.size t);
  Repl.Table.install t ~range:7 ~owner:1 ~followers:[ 2; 3 ];
  Alcotest.(check bool) "replicated" true (Repl.Table.is_replicated t ~range:7);
  Alcotest.(check (option int)) "owner" (Some 1) (Repl.Table.owner t ~range:7);
  Alcotest.(check (list int)) "no coverage yet" []
    (Repl.Table.covering t ~range:7 ~at:(vc [ 0; 0 ]));
  Repl.Table.set_wm t ~range:7 ~follower:2 (vc [ 4; 4 ]);
  Repl.Table.set_wm t ~range:7 ~follower:3 (vc [ 9; 9 ]);
  Alcotest.(check (list int)) "both cover low stamp" [ 2; 3 ]
    (Repl.Table.covering t ~range:7 ~at:(vc [ 1; 1 ]));
  Alcotest.(check (list int)) "only the fresher covers" [ 3 ]
    (Repl.Table.covering t ~range:7 ~at:(vc [ 6; 6 ]));
  Repl.Table.clear_wms t;
  Alcotest.(check (list int)) "epoch barrier clears coverage" []
    (Repl.Table.covering t ~range:7 ~at:(vc [ 1; 1 ]));
  Alcotest.(check bool) "install survives the barrier" true
    (Repl.Table.is_replicated t ~range:7)

(* ------------------------------------------------------------------ *)
(* Satellite: replica-served reads must feed heat attribution.

   With one legacy read replica, weak reads alternate between the primary
   and the replica; before the fix only primary-side visits called
   [Runtime.heat_read], so a vertex served half from its replica looked
   half as hot to the balancer and the replication controller. *)

let test_replica_reads_feed_heat () =
  let cfg =
    { Config.default with Config.n_shards = 1; read_replicas = 1; enable_heat = true }
  in
  let c = mk_cluster cfg in
  let client = Cluster.client c in
  create_vertex client "hh";
  (* let the §6.4 replication stream deliver the create to the replica *)
  Cluster.run_for c 5_000.0;
  for _ = 1 to 20 do
    match weak_read client "hh" with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "weak read failed: %s" e
  done;
  let ctr = Cluster.counters c in
  let h = Option.get (Cluster.heat c) in
  Alcotest.(check bool) "reads actually happened" true (ctr.Runtime.vertices_read >= 20);
  Alcotest.(check int) "every visit attributed, replica-served included"
    ctr.Runtime.vertices_read
    (Heat.total h ~shard:0 ~kind:Heat.Read)

(* ------------------------------------------------------------------ *)
(* Satellite: weak-read routing must skip dead replicas.

   Before the fix the gatekeeper's round-robin kept dealing weak reads to
   a crashed replica, burning a timeout + client retry on every other
   request; now the slot rotation checks replica liveness and falls
   through to live slots (ultimately the primary). *)

let test_dead_replica_routed_around () =
  let cfg = { Config.default with Config.n_shards = 2; read_replicas = 1 } in
  let c = mk_cluster cfg in
  let client = Cluster.client c in
  create_vertex client "wk";
  Cluster.run_for c 5_000.0;
  let shard = Cluster.shard_of_vertex c "wk" in
  let crash_at = Cluster.now c +. 1_000.0 in
  ignore
    (Cluster.install_fault_plan c
       (Fault.scripted
          [ (crash_at, Fault.Crash (Fault.Replica { shard; replica = 0 })) ]));
  Cluster.run_for c 2_000.0;
  let ctr = Cluster.counters c in
  let retries0 = ctr.Runtime.client_retries in
  for _ = 1 to 10 do
    match weak_read client "wk" with
    | Ok (Progval.List [ s ]) ->
        Alcotest.(check string) "served" "wk" (Progval.to_str (Progval.assoc "vid" s))
    | Ok _ -> Alcotest.fail "unexpected result shape"
    | Error e -> Alcotest.failf "weak read vs dead replica failed: %s" e
  done;
  Alcotest.(check int) "no timeouts, no retries" retries0 ctr.Runtime.client_retries

(* ------------------------------------------------------------------ *)
(* Tentpole: a hot range gets installed by the controller, seeded and
   streamed by its owner, advertised by its followers, and weak reads get
   routed to follower copies — which stay convergent with the owner. *)

let test_install_stream_route_converge () =
  let c = mk_cluster (repl_cfg 11) in
  let client = Cluster.client c in
  create_vertex client "hot";
  let last = ref 0 in
  for i = 1 to 120 do
    (match weak_read client "hot" with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "weak read %d failed: %s" i e);
    if i mod 10 = 0 then begin
      set_prop client "hot" "v" (string_of_int i);
      last := i
    end;
    Cluster.run_for c 200.0
  done;
  let ctr = Cluster.counters c in
  Alcotest.(check bool) "controller installed a range" true
    (ctr.Runtime.repl_installs >= 1);
  Alcotest.(check bool) "owner streamed updates" true (ctr.Runtime.repl_updates >= 1);
  Alcotest.(check bool) "gatekeeper routed reads to followers" true
    (ctr.Runtime.repl_routed >= 1);
  let r = Option.get (Cluster.replicator c) in
  Alcotest.(check bool) "controller table non-empty" true
    (Repl.Table.size (Replicator.table r) >= 1);
  (* quiesce: the watermark passes the last write, follower copies cover
     it, and a weak read — wherever it lands — sees the final value *)
  Cluster.run_for c 20_000.0;
  match weak_read client "hot" with
  | Ok v ->
      Alcotest.(check (option string)) "converged to the last write"
        (Some (string_of_int !last))
        (Option.map Progval.to_str (prop_of v "v"))
  | Error e -> Alcotest.failf "post-quiesce weak read failed: %s" e

(* ------------------------------------------------------------------ *)
(* Chaos: once a follower covers a stamp, a read pinned at that stamp
   survives the owner crashing — the gatekeeper routes it to a covering
   survivor and the answer matches the pre-crash one. *)

let test_owner_crash_covered_reads_survive () =
  let c = mk_cluster (repl_cfg 13) in
  let client = Cluster.client c in
  create_vertex client "hot";
  let owner = Cluster.shard_of_vertex c "hot" in
  let ctr = Cluster.counters c in
  (* hammer until the range is replicated and reads are being routed *)
  let tries = ref 0 in
  while ctr.Runtime.repl_routed = 0 && !tries < 300 do
    incr tries;
    ignore (weak_read client "hot");
    Cluster.run_for c 200.0
  done;
  Alcotest.(check bool) "replication became active" true (ctr.Runtime.repl_routed > 0);
  set_prop client "hot" "v" "final";
  Cluster.run_for c 6_000.0;
  let ts = Cluster.gk_clock c 0 in
  (* two more watermark rounds: follower coverage passes [ts] *)
  Cluster.run_for c 6_000.0;
  let read_at () =
    Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ "hot" ]
      ~at:ts ()
  in
  let baseline =
    match read_at () with
    | Ok v -> v
    | Error e -> Alcotest.failf "pinned read before crash failed: %s" e
  in
  Alcotest.(check (option string)) "pinned read sees the write" (Some "final")
    (Option.map Progval.to_str (prop_of baseline "v"));
  let crash_at = Cluster.now c +. 500.0 in
  ignore
    (Cluster.install_fault_plan c
       (Fault.scripted [ (crash_at, Fault.Crash (Fault.Shard owner)) ]));
  Cluster.run_for c 1_000.0;
  match read_at () with
  | Ok after ->
      Alcotest.(check (option string)) "covered read survives the owner crash"
        (Option.map Progval.to_str (prop_of baseline "v"))
        (Option.map Progval.to_str (prop_of after "v"))
  | Error e -> Alcotest.failf "pinned read after owner crash failed: %s" e

(* ------------------------------------------------------------------ *)
(* A credit-starved stream degrades to a wholesale reseed, not a stall:
   degrade the owner→follower link so refunds lag the write rate, burst
   writes, and the owner must mark the follower dirty and reseed it at
   the next watermark — after which the copy converges again. *)

let test_credit_exhaustion_forces_resync () =
  let cfg = { (repl_cfg ~factor:1 17) with Config.n_gatekeepers = 2; shard_credits = 1 } in
  let c = mk_cluster cfg in
  let client = Cluster.client c in
  create_vertex client "hot";
  let ctr = Cluster.counters c in
  let tries = ref 0 in
  while ctr.Runtime.repl_installs = 0 && !tries < 300 do
    incr tries;
    ignore (weak_read client "hot");
    Cluster.run_for c 200.0
  done;
  Alcotest.(check bool) "range replicated" true (ctr.Runtime.repl_installs >= 1);
  let owner = Cluster.shard_of_vertex c "hot" in
  let r = Option.get (Cluster.replicator c) in
  let h = Option.get (Cluster.heat c) in
  let range = Heat.range_of h "hot" in
  let followers = List.map fst (Repl.Table.followers (Replicator.table r) ~range) in
  Alcotest.(check bool) "follower chosen" true (followers <> []);
  (* slow the stream's return path: refunds now lag the burst *)
  List.iter
    (fun f ->
      Cluster.apply_fault c
        (Fault.Link_degrade
           { src = Fault.Shard f; dst = Fault.Shard owner; factor = 50.0 }))
    followers;
  let pending = ref 0 in
  let committed = ref [] in
  for i = 0 to 9 do
    let tx = Client.Tx.begin_ client in
    Client.Tx.set_vertex_prop tx ~vid:"hot" ~key:("k" ^ string_of_int i) ~value:"x";
    incr pending;
    (* under 1-credit admission some burst commits may shed out their
       retries — only the ones that committed must converge *)
    Client.commit_async client tx ~on_result:(fun r ->
        decr pending;
        if Result.is_ok r then committed := i :: !committed)
  done;
  Cluster.run_for c 60_000.0;
  Alcotest.(check int) "burst drained" 0 !pending;
  Alcotest.(check bool) "burst made progress" true (List.length !committed >= 2);
  Alcotest.(check bool) "stream interrupted and reseeded" true
    (ctr.Runtime.repl_resyncs >= 1);
  List.iter
    (fun f ->
      Cluster.apply_fault c
        (Fault.Link_degrade
           { src = Fault.Shard f; dst = Fault.Shard owner; factor = 1.0 }))
    followers;
  Cluster.run_for c 20_000.0;
  match weak_read client "hot" with
  | Ok v ->
      List.iter
        (fun i ->
          Alcotest.(check (option string))
            (Printf.sprintf "post-resync copy has k%d" i)
            (Some "x")
            (Option.map Progval.to_str (prop_of v ("k" ^ string_of_int i))))
        !committed
  | Error e -> Alcotest.failf "post-resync weak read failed: %s" e

(* ------------------------------------------------------------------ *)
(* Replication factor 0 keeps the control plane dark: same seed, same
   workload, bit-identical counters with the subsystem enabled-but-idle
   versus absent. *)

let run_fixed_workload cfg =
  let c = mk_cluster cfg in
  let client = Cluster.client c in
  for i = 0 to 7 do
    create_vertex client (Printf.sprintf "fw%d" i)
  done;
  for round = 1 to 5 do
    for i = 0 to 7 do
      let vid = Printf.sprintf "fw%d" i in
      set_prop client vid "r" (string_of_int round);
      ignore (weak_read client vid);
      ignore
        (Client.run_program client ~prog:"count_edges" ~params:Progval.Null
           ~starts:[ vid ] ())
    done;
    Cluster.run_for c 3_000.0
  done;
  Cluster.run_for c 10_000.0;
  let ctr = Cluster.counters c in
  let rt = Cluster.runtime c in
  ( ( ctr.Runtime.tx_committed,
      ctr.Runtime.tx_aborted,
      ctr.Runtime.progs_completed,
      ctr.Runtime.vertices_read ),
    ( Weaver_sim.Net.messages_sent rt.Runtime.net,
      Weaver_sim.Net.messages_delivered rt.Runtime.net,
      ctr.Runtime.oracle_consults,
      ctr.Runtime.nop_msgs ) )

let test_factor_zero_invisible () =
  let base = { Config.default with Config.seed = 23; enable_heat = true } in
  let off = run_fixed_workload base in
  let on_idle =
    run_fixed_workload
      { base with Config.enable_replication = true; replication_factor = 0 }
  in
  Alcotest.(check bool) "factor-0 control plane is bit-invisible" true (off = on_idle)

let suites =
  [
    ( "replication",
      [
        Alcotest.test_case "coverage predicate and table" `Quick test_covers_and_table;
        Alcotest.test_case "replica-served reads feed heat attribution" `Quick
          test_replica_reads_feed_heat;
        Alcotest.test_case "dead replica is routed around without retries" `Quick
          test_dead_replica_routed_around;
        Alcotest.test_case "install, stream, route, converge" `Quick
          test_install_stream_route_converge;
        Alcotest.test_case "owner crash: covered reads served by survivors" `Quick
          test_owner_crash_covered_reads_survive;
        Alcotest.test_case "credit exhaustion forces reseed, then converges" `Quick
          test_credit_exhaustion_forces_resync;
        Alcotest.test_case "replication factor 0 is invisible" `Quick
          test_factor_zero_invisible;
      ] );
  ]
