(* Tests for the discrete-event engine and the FIFO network. *)

open Weaver_sim

let test_engine_time_advances () =
  let e = Engine.create () in
  let fired = ref [] in
  Engine.schedule e ~delay:10.0 (fun () -> fired := (Engine.now e, 'a') :: !fired);
  Engine.schedule e ~delay:5.0 (fun () -> fired := (Engine.now e, 'b') :: !fired);
  Engine.run e;
  Alcotest.(check (list (pair (float 1e-9) char)))
    "order and times"
    [ (10.0, 'a'); (5.0, 'b') ]
    !fired

let test_engine_fifo_ties () =
  (* events at the same instant fire in scheduling order *)
  let e = Engine.create () in
  let fired = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:1.0 (fun () -> fired := i :: !fired)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "tie order" [ 1; 2; 3; 4; 5 ] (List.rev !fired)

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:1.0 (fun () ->
      log := "outer" :: !log;
      Engine.schedule e ~delay:1.0 (fun () -> log := "inner" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "final time" 2.0 (Engine.now e)

let test_engine_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count)
  done;
  Engine.run ~until:5.0 e;
  Alcotest.(check int) "only first five" 5 !count;
  Alcotest.(check (float 1e-9)) "clock at limit" 5.0 (Engine.now e);
  Alcotest.(check int) "rest pending" 5 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "all fired" 10 !count

let test_engine_every () =
  let e = Engine.create () in
  let ticks = ref 0 in
  Engine.every e ~period:10.0 (fun () ->
      incr ticks;
      !ticks < 4);
  Engine.run e;
  Alcotest.(check int) "stopped by predicate" 4 !ticks;
  Alcotest.(check (float 1e-9)) "time of last tick" 40.0 (Engine.now e)

let test_engine_negative_delay_clamped () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e ~delay:(-5.0) (fun () -> fired := true);
  Engine.run e;
  Alcotest.(check bool) "fired at t=0" true !fired;
  Alcotest.(check (float 1e-9)) "clock" 0.0 (Engine.now e)

let test_engine_schedule_at_past () =
  let e = Engine.create () in
  Engine.schedule e ~delay:10.0 (fun () ->
      Engine.schedule_at e ~time:3.0 (fun () ->
          Alcotest.(check (float 1e-9)) "clamped to now" 10.0 (Engine.now e)));
  Engine.run e

let test_engine_every_nonpositive () =
  (* regression: this used to be an [assert], which both compiles away
     under -noassert and reports a source location instead of the actual
     contract — a zero period would spin a zero-delay event loop forever *)
  let e = Engine.create () in
  Alcotest.check_raises "zero period"
    (Invalid_argument "Engine.every: period must be > 0") (fun () ->
      Engine.every e ~period:0.0 (fun () -> true));
  Alcotest.check_raises "negative period"
    (Invalid_argument "Engine.every: period must be > 0") (fun () ->
      Engine.every e ~period:(-3.0) (fun () -> true));
  Alcotest.(check int) "nothing scheduled" 0 (Engine.pending e)

let test_engine_counters () =
  let e = Engine.create () in
  for _ = 1 to 3 do
    Engine.schedule e ~delay:1.0 (fun () -> ())
  done;
  Alcotest.(check int) "pending" 3 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "processed" 3 (Engine.events_processed e);
  Alcotest.(check int) "pending zero" 0 (Engine.pending e)

let test_net_delivery () =
  let e = Engine.create () in
  let net = Net.create e ~latency:(Net.uniform_latency ~base:100.0 ~jitter:0.0) in
  let got = ref [] in
  Net.register net 1 (fun ~src msg -> got := (src, msg, Engine.now e) :: !got);
  Net.send net ~src:0 ~dst:1 "hello";
  Engine.run e;
  Alcotest.(check int) "one message" 1 (List.length !got);
  let src, msg, time = List.hd !got in
  Alcotest.(check int) "src" 0 src;
  Alcotest.(check string) "payload" "hello" msg;
  Alcotest.(check (float 1e-9)) "latency applied" 100.0 time

let test_net_fifo_per_channel () =
  (* with jittered latency, per-channel FIFO must still hold *)
  let e = Engine.create ~seed:99 () in
  let net = Net.create e ~latency:(Net.uniform_latency ~base:10.0 ~jitter:500.0) in
  let got = ref [] in
  Net.register net 1 (fun ~src:_ msg -> got := msg :: !got);
  for i = 1 to 100 do
    Net.send net ~src:0 ~dst:1 i
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO order" (List.init 100 (fun i -> i + 1)) (List.rev !got)

let test_net_fifo_independent_channels () =
  let e = Engine.create ~seed:5 () in
  let net = Net.create e ~latency:(Net.uniform_latency ~base:10.0 ~jitter:300.0) in
  let per_src = Hashtbl.create 4 in
  Net.register net 9 (fun ~src msg ->
      let prev = try Hashtbl.find per_src src with Not_found -> [] in
      Hashtbl.replace per_src src (msg :: prev));
  for i = 1 to 50 do
    Net.send net ~src:0 ~dst:9 i;
    Net.send net ~src:1 ~dst:9 i
  done;
  Engine.run e;
  let expect = List.init 50 (fun i -> i + 1) in
  Alcotest.(check (list int)) "src 0 FIFO" expect (List.rev (Hashtbl.find per_src 0));
  Alcotest.(check (list int)) "src 1 FIFO" expect (List.rev (Hashtbl.find per_src 1))

let test_net_dead_endpoint_drops () =
  let e = Engine.create () in
  let net = Net.create e ~latency:Net.local_latency in
  let got = ref 0 in
  Net.register net 1 (fun ~src:_ _ -> incr got);
  Net.send net ~src:0 ~dst:1 ();
  Engine.run e;
  Net.set_alive net 1 false;
  Net.send net ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check int) "dead endpoint drops" 1 !got;
  Net.set_alive net 1 true;
  Net.send net ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check int) "revived endpoint receives" 2 !got

let test_net_inflight_to_crashed_dropped () =
  let e = Engine.create () in
  let net = Net.create e ~latency:(Net.uniform_latency ~base:100.0 ~jitter:0.0) in
  let got = ref 0 in
  Net.register net 1 (fun ~src:_ _ -> incr got);
  Net.send net ~src:0 ~dst:1 ();
  (* crash before delivery time *)
  Engine.schedule e ~delay:50.0 (fun () -> Net.set_alive net 1 false);
  Engine.run e;
  Alcotest.(check int) "in-flight dropped" 0 !got

let test_net_dead_sender_drops () =
  let e = Engine.create () in
  let net = Net.create e ~latency:Net.local_latency in
  let got = ref 0 in
  Net.register net 1 (fun ~src:_ _ -> incr got);
  Net.register net 0 (fun ~src:_ _ -> ());
  Net.set_alive net 0 false;
  Net.send net ~src:0 ~dst:1 ();
  Engine.run e;
  Alcotest.(check int) "dead sender drops" 0 !got

let test_net_counters () =
  let e = Engine.create () in
  let net = Net.create e ~latency:Net.local_latency in
  Net.register net 1 (fun ~src:_ _ -> ());
  Net.send net ~src:0 ~dst:1 ();
  Net.send net ~src:0 ~dst:2 ();
  (* dst 2 unregistered *)
  Engine.run e;
  Alcotest.(check int) "sent" 2 (Net.messages_sent net);
  Alcotest.(check int) "delivered" 1 (Net.messages_delivered net)

let test_net_channels_released_after_drain () =
  (* regression: channel records (FIFO floor + mailbox) used to accumulate
     forever, one per (src, dst) pair ever used — unbounded growth on
     workloads with many transient clients *)
  let e = Engine.create ~seed:3 () in
  let net = Net.create e ~latency:(Net.uniform_latency ~base:50.0 ~jitter:100.0) in
  Net.register net 1 (fun ~src:_ _ -> ());
  Net.register net 2 (fun ~src:_ _ -> ());
  for i = 1 to 20 do
    Net.send net ~src:0 ~dst:1 i;
    Net.send net ~src:1 ~dst:2 i;
    Net.send net ~src:2 ~dst:1 i
  done;
  Alcotest.(check bool) "channels tracked while in flight" true
    (Net.channels_tracked net > 0);
  Engine.run e;
  Alcotest.(check int) "all delivered" 60 (Net.messages_delivered net);
  Alcotest.(check int) "no channel state after drain" 0 (Net.channels_tracked net);
  (* the drop path at a dead destination must release channel state too *)
  Net.set_alive net 2 false;
  Net.send net ~src:0 ~dst:2 99;
  Engine.run e;
  Alcotest.(check int) "drop path releases channel" 0 (Net.channels_tracked net)

let test_net_send_allocation_budget () =
  (* the mailbox rewrite removed the closure-per-message delivery schedule;
     pin the per-send transient allocation so it cannot silently creep
     back (the old path cost several times this budget) *)
  let e = Engine.create ~seed:1 () in
  let net = Net.create e ~latency:Net.local_latency in
  Net.register net 1 (fun ~src:_ _ -> ());
  let round n =
    for i = 1 to n do
      Net.send net ~src:0 ~dst:1 i
    done;
    Engine.run e
  in
  round 1_000 (* warm-up: grow the engine arrays and the channel table *);
  let before = Gc.minor_words () in
  let n = 10_000 in
  round n;
  let words = (Gc.minor_words () -. before) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f minor words per send+deliver within budget" words)
    true
    (words <= 64.0)

let prop_engine_executes_in_time_order =
  QCheck.Test.make ~name:"events execute in nondecreasing time order" ~count:100
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_inclusive 1000.0))
    (fun delays ->
      let e = Engine.create () in
      let times = ref [] in
      List.iter
        (fun d -> Engine.schedule e ~delay:d (fun () -> times := Engine.now e :: !times))
        delays;
      Engine.run e;
      let ts = List.rev !times in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | _ -> true
      in
      nondecreasing ts && List.length ts = List.length delays)

let prop_net_fifo =
  QCheck.Test.make ~name:"network preserves per-channel FIFO under jitter" ~count:50
    QCheck.(pair small_nat (int_range 1 60))
    (fun (seed, n) ->
      let e = Engine.create ~seed () in
      let net = Net.create e ~latency:(Net.uniform_latency ~base:5.0 ~jitter:200.0) in
      let got = ref [] in
      Net.register net 1 (fun ~src:_ m -> got := m :: !got);
      for i = 1 to n do
        Net.send net ~src:0 ~dst:1 i
      done;
      Engine.run e;
      List.rev !got = List.init n (fun i -> i + 1))

let prop_net_fifo_mixed_factors =
  (* shrinking the link factor mid-stream makes later messages draw shorter
     wire times than ones already in flight — exactly the reordering hazard
     the per-channel delivery floor exists to absorb *)
  QCheck.Test.make ~name:"per-channel FIFO survives latency/link factor churn"
    ~count:50
    QCheck.(triple small_nat (int_range 1 40) (int_range 1 40))
    (fun (seed, n1, n2) ->
      let e = Engine.create ~seed () in
      let net = Net.create e ~latency:(Net.uniform_latency ~base:5.0 ~jitter:200.0) in
      let got = ref [] in
      Net.register net 1 (fun ~src:_ m -> got := m :: !got);
      Net.register net 2 (fun ~src:_ _ -> ());
      for i = 1 to n1 do
        Net.send net ~src:0 ~dst:1 i;
        (* unrelated channel traffic keeps the RNG draws interleaved *)
        Net.send net ~src:0 ~dst:2 (-i)
      done;
      Net.set_link_factor net ~src:0 ~dst:1 0.05;
      Net.set_latency_factor net 0.5;
      for i = n1 + 1 to n1 + n2 do
        Net.send net ~src:0 ~dst:1 i
      done;
      Engine.run e;
      List.rev !got = List.init (n1 + n2) (fun i -> i + 1)
      && Net.channels_tracked net = 0)

let suites =
  [
    ( "sim.engine",
      [
        Alcotest.test_case "time advances" `Quick test_engine_time_advances;
        Alcotest.test_case "tie order" `Quick test_engine_fifo_ties;
        Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
        Alcotest.test_case "run until" `Quick test_engine_run_until;
        Alcotest.test_case "every" `Quick test_engine_every;
        Alcotest.test_case "negative delay" `Quick test_engine_negative_delay_clamped;
        Alcotest.test_case "schedule_at past" `Quick test_engine_schedule_at_past;
        Alcotest.test_case "every rejects nonpositive period" `Quick
          test_engine_every_nonpositive;
        Alcotest.test_case "counters" `Quick test_engine_counters;
        QCheck_alcotest.to_alcotest prop_engine_executes_in_time_order;
      ] );
    ( "sim.net",
      [
        Alcotest.test_case "delivery" `Quick test_net_delivery;
        Alcotest.test_case "fifo per channel" `Quick test_net_fifo_per_channel;
        Alcotest.test_case "fifo independent channels" `Quick test_net_fifo_independent_channels;
        Alcotest.test_case "dead endpoint drops" `Quick test_net_dead_endpoint_drops;
        Alcotest.test_case "inflight to crashed dropped" `Quick test_net_inflight_to_crashed_dropped;
        Alcotest.test_case "dead sender drops" `Quick test_net_dead_sender_drops;
        Alcotest.test_case "counters" `Quick test_net_counters;
        Alcotest.test_case "channels released after drain" `Quick
          test_net_channels_released_after_drain;
        Alcotest.test_case "send allocation budget" `Quick
          test_net_send_allocation_budget;
        QCheck_alcotest.to_alcotest prop_net_fifo;
        QCheck_alcotest.to_alcotest prop_net_fifo_mixed_factors;
      ] );
  ]
