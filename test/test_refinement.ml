(* Regression tests for the non-blocking, coalesced refinement path on the
   shard ordering hot path.

   All of them drive one shard directly over the simulated network with
   hand-built timestamps, arranged into the "stuck configuration": gk0's
   head A and gk1's head B are concurrent, conflicting, and undecided,
   while gk3's head F is already ordered after both — so no queue head is
   globally minimal and the shard must consult the timeline oracle. What
   happens to the *other* queues during that round trip is exactly what
   changed:

   - non-blocking mode must keep draining gatekeeper queues whose heads are
     not in the undecided conflict set (NOPs and decided real transactions
     alike) while the consult is in flight;
   - conflicts discovered mid-flight must join the outstanding batch
     instead of issuing a second round trip (coalescing);
   - the simulated consult round trip must honour the network's active
     latency-degrade factor, like any real message would. *)

open Weaver_core
module Vclock = Weaver_vclock.Vclock
module Engine = Weaver_sim.Engine
module Net = Weaver_sim.Net
module Fault = Weaver_sim.Fault
module Oracle = Weaver_oracle.Oracle

let base_cfg =
  {
    Config.default with
    Config.n_gatekeepers = 4;
    Config.n_shards = 1;
    Config.net_base_latency = 50.0;
    Config.net_jitter = 0.0;
    Config.gc_period = 0.0;
  }

let stamp ~origin clocks = Vclock.make ~epoch:0 ~origin clocks

let send_tx rt ~at ~gk ~seq ~ts ~ops =
  Engine.schedule_at rt.Runtime.engine ~time:at (fun () ->
      Net.send rt.Runtime.net ~src:(Runtime.gk_addr rt gk)
        ~dst:(Runtime.shard_addr rt 0)
        (Msg.Shard_tx { gk; seq; ts; ops; trace = 0 }))

(* Build the scenario. Timeline (base latency 50 µs, no jitter):
     t=0   gk0 sends A = ⟨1,0,0,0⟩ creating "a"      (arrives t=50)
           gk1 sends B = ⟨0,1,0,0⟩ creating "b"      (arrives t=50)
           gk2 sends N = ⟨0,0,1,0⟩, a NOP            (arrives t=50)
           gk3 sends F = ⟨0,0,0,1⟩ creating "f"      (arrives t=50)
     t=20  gk2 sends N2 = ⟨0,0,2,0⟩, a NOP           (arrives t=70)
     t=25  gk2 sends D = ⟨0,0,3,0⟩ creating "d"      (arrives t=75)
   Pre-established oracle edges: A≺F and B≺F always (F is stuck behind the
   A/B conflict), plus — unless [coalesce] — D≺A, D≺B, D≺F, which make D
   decidable without the oracle. With [coalesce], D carries no pre-edges:
   the (D, A) pair is undecided when D reaches the head at t=75, mid-flight,
   so it must join the outstanding consult instead of starting its own. *)
let launch ?(nonblocking = true) ?(coalesce = false) () =
  let cfg = { base_cfg with Config.oracle_nonblocking = nonblocking } in
  let rt = Runtime.create cfg in
  let shard = Shard.spawn rt ~sid:0 ~epoch:0 in
  let a = stamp ~origin:0 [| 1; 0; 0; 0 |] in
  let b = stamp ~origin:1 [| 0; 1; 0; 0 |] in
  let n = stamp ~origin:2 [| 0; 0; 1; 0 |] in
  let n2 = stamp ~origin:2 [| 0; 0; 2; 0 |] in
  let d = stamp ~origin:2 [| 0; 0; 3; 0 |] in
  let f = stamp ~origin:3 [| 0; 0; 0; 1 |] in
  let ok = function Ok () -> () | Error `Cycle -> Alcotest.fail "pre-edge cycle" in
  ok (Oracle.assign rt.Runtime.oracle ~before:a ~after:f);
  ok (Oracle.assign rt.Runtime.oracle ~before:b ~after:f);
  if not coalesce then begin
    ok (Oracle.assign rt.Runtime.oracle ~before:d ~after:a);
    ok (Oracle.assign rt.Runtime.oracle ~before:d ~after:b);
    ok (Oracle.assign rt.Runtime.oracle ~before:d ~after:f)
  end;
  send_tx rt ~at:0.0 ~gk:0 ~seq:1 ~ts:a ~ops:[ Msg.S_create_vertex "a" ];
  send_tx rt ~at:0.0 ~gk:1 ~seq:1 ~ts:b ~ops:[ Msg.S_create_vertex "b" ];
  send_tx rt ~at:0.0 ~gk:2 ~seq:1 ~ts:n ~ops:[];
  send_tx rt ~at:0.0 ~gk:3 ~seq:1 ~ts:f ~ops:[ Msg.S_create_vertex "f" ];
  send_tx rt ~at:20.0 ~gk:2 ~seq:2 ~ts:n2 ~ops:[];
  send_tx rt ~at:25.0 ~gk:2 ~seq:3 ~ts:d ~ops:[ Msg.S_create_vertex "d" ];
  (rt, shard)

let depths shard = Array.to_list (Shard.queue_depths shard)
let has shard vid = Shard.vertex shard vid <> None

let test_nonconflicting_queue_drains () =
  (* the tentpole regression: while the A/B consult is in flight
     (t=50…150), gk2's queue — a NOP, another NOP, and a real transaction
     already ordered before everything — must drain completely. Under the
     historical whole-shard stall it stays frozen at depth 3. *)
  let rt, shard = launch () in
  Engine.run rt.Runtime.engine ~until:100.0;
  Alcotest.(check (list int)) "gk2 drained mid-consult" [ 1; 1; 0; 1 ]
    (depths shard);
  Alcotest.(check bool) "d applied mid-consult" true (has shard "d");
  Alcotest.(check bool) "a still held back" false (has shard "a");
  Alcotest.(check int) "one consult" 1
    rt.Runtime.counters.Runtime.shard_oracle_consults;
  Alcotest.(check int) "nothing coalesced" 0
    rt.Runtime.counters.Runtime.shard_oracle_batched;
  (* once the consult lands (t=150) the serialized order lets A through —
     as soon as gk2 shows a fresh head again (the event loop needs every
     queue non-empty), which is the liveness NOPs' job in a real cluster *)
  send_tx rt ~at:160.0 ~gk:2 ~seq:4 ~ts:(stamp ~origin:2 [| 0; 0; 4; 0 |])
    ~ops:[];
  Engine.run rt.Runtime.engine ~until:300.0;
  Alcotest.(check bool) "a applied after consult" true (has shard "a");
  Alcotest.(check (list int)) "a's queue advanced" [ 0; 1; 1; 1 ]
    (depths shard)

let test_blocking_mode_stalls_whole_shard () =
  (* the baseline arm: [oracle_nonblocking = false] restores the historical
     behavior — the same traffic leaves gk2 frozen until the consult
     returns. Pins the contrast the bench measures. *)
  let rt, shard = launch ~nonblocking:false () in
  Engine.run rt.Runtime.engine ~until:100.0;
  Alcotest.(check (list int)) "whole shard frozen" [ 1; 1; 3; 1 ]
    (depths shard);
  Alcotest.(check bool) "d not applied" false (has shard "d");
  Alcotest.(check int) "one consult" 1
    rt.Runtime.counters.Runtime.shard_oracle_consults

let test_midflight_conflict_coalesces () =
  (* without D's pre-edges, the (D, A) conflict surfaces at t=75 while the
     A/B consult is still out: D must join that batch — one round trip
     serializes A, B, and D together — instead of issuing its own *)
  let rt, shard = launch ~coalesce:true () in
  Engine.run rt.Runtime.engine ~until:100.0;
  Alcotest.(check int) "still one consult" 1
    rt.Runtime.counters.Runtime.shard_oracle_consults;
  Alcotest.(check int) "conflict joined the batch" 1
    rt.Runtime.counters.Runtime.shard_oracle_batched;
  (* D is now stalled (it is in the batch), but the NOPs ahead of it
     cleared; nothing new was applied *)
  Alcotest.(check (list int)) "nops cleared, d parked" [ 1; 1; 1; 1 ]
    (depths shard);
  Alcotest.(check bool) "d awaiting the batch" false (has shard "d");
  send_tx rt ~at:160.0 ~gk:2 ~seq:4 ~ts:(stamp ~origin:2 [| 0; 0; 4; 0 |])
    ~ops:[];
  Engine.run rt.Runtime.engine ~until:300.0;
  Alcotest.(check int) "no second round trip" 1
    rt.Runtime.counters.Runtime.shard_oracle_consults;
  (* the landed batch serialized A≺B≺D (join order); A executes as soon as
     gk2 shows a fresh head — D itself then waits for new gk0 traffic,
     which is the liveness NOPs' job, not a refinement stall *)
  Alcotest.(check bool) "a applied after the coalesced consult" true
    (has shard "a");
  Alcotest.(check (list int)) "gk0 drained" [ 0; 1; 2; 1 ] (depths shard)

let test_consult_honours_latency_degrade () =
  (* satellite bugfix: the consult round trip used to hard-code
     2 × net_base_latency, ignoring active latency-degrade factors. With a
     ×4 degrade installed (by a fault plan) before the conflict surfaces,
     the consult must take 400 µs, not 100: at t=300 the conflict is still
     unresolved, while the non-conflicting queue drained long ago. *)
  let rt, shard = launch () in
  let plan =
    Fault.scripted
      [ (30.0, Fault.Net_degrade 4.0); (500.0, Fault.Net_degrade 1.0) ]
  in
  ignore
    (Fault.install rt.Runtime.engine plan ~exec:(function
      | Fault.Net_degrade f -> Net.set_latency_factor rt.Runtime.net f
      | _ -> ()));
  Engine.run rt.Runtime.engine ~until:300.0;
  Alcotest.(check bool) "consult still in flight at t=300" false
    (has shard "a");
  Alcotest.(check (list int)) "non-conflicting queue drained anyway"
    [ 1; 1; 0; 1 ] (depths shard);
  (* the degraded round trip lands at t=450; a fresh gk2 head after the
     degrade lifts lets the serialized order execute *)
  send_tx rt ~at:510.0 ~gk:2 ~seq:4 ~ts:(stamp ~origin:2 [| 0; 0; 4; 0 |])
    ~ops:[];
  Engine.run rt.Runtime.engine ~until:600.0;
  Alcotest.(check bool) "resolved after the degraded round trip" true
    (has shard "a")

let suites =
  [
    ( "refinement",
      [
        Alcotest.test_case "non-conflicting queue drains mid-consult" `Quick
          test_nonconflicting_queue_drains;
        Alcotest.test_case "blocking mode stalls whole shard" `Quick
          test_blocking_mode_stalls_whole_shard;
        Alcotest.test_case "mid-flight conflict coalesces" `Quick
          test_midflight_conflict_coalesces;
        Alcotest.test_case "consult honours latency degrade" `Quick
          test_consult_honours_latency_degrade;
      ] );
  ]
