(* Tests for the overload-management subsystem (Weaver_flow + its wiring):
   admission/credit unit behavior, config-knob validation, the determinism
   guarantees (flow machinery enabled-but-idle is invisible; credits-on
   reruns bit-identically), shedding under open overload, credit-based
   backpressure under a degraded link, and the dead-endpoint drop
   counters. *)

open Weaver_core
module Flow = Weaver_flow.Flow
module Engine = Weaver_sim.Engine
module Net = Weaver_sim.Net
module Fault = Weaver_sim.Fault
module Slowlog = Weaver_obs.Slowlog

(* ------------------------------------------------------------------ *)
(* Pure units: admission decisions, credit accounting, priority classes *)

let test_admission_decisions () =
  let open Flow.Admission in
  let off = create ~limit:0 ~deadline_budget:0.0 ~op_cost:20.0 in
  Alcotest.(check bool) "disabled" false (enabled off);
  Alcotest.(check bool) "disabled admits" true
    (decide off ~now:0.0 ~busy_until:1e9 = Admit);
  let capped = create ~limit:2 ~deadline_budget:0.0 ~op_cost:20.0 in
  Alcotest.(check bool) "enabled" true (enabled capped);
  Alcotest.(check bool) "empty queue admits" true
    (decide capped ~now:0.0 ~busy_until:0.0 = Admit);
  Alcotest.(check bool) "one queued admits" true
    (decide capped ~now:0.0 ~busy_until:20.0 = Admit);
  Alcotest.(check bool) "at limit sheds" true
    (decide capped ~now:0.0 ~busy_until:40.0 = Shed_queue_full);
  Alcotest.(check bool) "past deadline is relative to now" true
    (decide capped ~now:100.0 ~busy_until:110.0 = Admit);
  let budget = create ~limit:0 ~deadline_budget:50.0 ~op_cost:20.0 in
  Alcotest.(check bool) "within budget admits" true
    (decide budget ~now:0.0 ~busy_until:50.0 = Admit);
  Alcotest.(check bool) "over budget sheds" true
    (decide budget ~now:0.0 ~busy_until:50.1 = Shed_deadline);
  Alcotest.(check int) "zero op cost, zero depth" 0
    (queue_depth (create ~limit:3 ~deadline_budget:0.0 ~op_cost:0.0)
       ~now:0.0 ~busy_until:1e6)

let test_credit_accounting () =
  let open Flow.Credits in
  let c = create ~peers:2 ~credits:2 in
  Alcotest.(check bool) "enabled" true (enabled c);
  Alcotest.(check int) "initial balance" 2 (available c 0);
  consume c 0;
  consume c 0;
  Alcotest.(check bool) "exhausted after max consumes" true (exhausted c 0);
  Alcotest.(check bool) "peers independent" false (exhausted c 1);
  refund c 0 5;
  Alcotest.(check int) "refund caps at max" 2 (available c 0);
  consume c 1;
  reset_peer c 1;
  Alcotest.(check int) "per-peer reset refills" 2 (available c 1);
  consume c 0;
  consume c 1;
  reset c;
  Alcotest.(check int) "global reset refills" 4 (available c 0 + available c 1);
  let off = create ~peers:2 ~credits:0 in
  Alcotest.(check bool) "zero credits disables" false (enabled off);
  consume off 0;
  Alcotest.(check bool) "disabled never exhausts" false (exhausted off 0)

let test_priority_classes () =
  let control k =
    Alcotest.(check bool) (k ^ " is control") true
      (Flow.priority_of_kind k = Flow.Control)
  in
  List.iter control
    [ "Announce"; "Shard_tx(nop)"; "Heartbeat"; "Commit_note"; "Credit";
      "Epoch_change"; "Epoch_ack"; "Watermark"; "Prog_gc" ];
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " is client traffic") true
        (Flow.priority_of_kind k = Flow.Client_req))
    [ "Tx_req"; "Prog_req"; "Migrate_req"; "Shard_tx" ];
  (* the classifier keys on Msg.kind's rendering: pin the two new ones *)
  Alcotest.(check string) "credit kind" "Credit"
    (Msg.kind (Msg.Credit { shard = 0; gk = 0; n = 1 }));
  Alcotest.(check string) "overloaded kind" "Overloaded"
    (Msg.kind (Msg.Overloaded { req_id = 1; reason = "queue" }))

(* ------------------------------------------------------------------ *)
(* Config validation: the new flow knobs plus regression coverage for the
   observability capacities and the dedup window *)

let test_config_validation_flow () =
  let bad field f =
    Alcotest.check_raises ("bad " ^ field)
      (Invalid_argument ("Config: bad " ^ field))
      (fun () -> Config.validate (f Config.default))
  in
  bad "admission_limit" (fun c -> { c with Config.admission_limit = -1 });
  bad "deadline_budget" (fun c -> { c with Config.deadline_budget = -0.5 });
  bad "shard_credits" (fun c -> { c with Config.shard_credits = -2 });
  bad "trace_capacity" (fun c -> { c with Config.trace_capacity = 0 });
  bad "timeline_capacity" (fun c -> { c with Config.timeline_capacity = -3 });
  bad "slow_log_capacity" (fun c -> { c with Config.slow_log_capacity = 0 });
  bad "dedup_window" (fun c -> { c with Config.dedup_window = -1 });
  (* flow knobs at their defaults (off) and enabled values both validate *)
  Config.validate Config.default;
  Config.validate
    {
      Config.default with
      Config.admission_limit = 64;
      Config.deadline_budget = 1_200.0;
      Config.shard_credits = 64;
    }

(* ------------------------------------------------------------------ *)
(* Determinism: under light load, enabling the admission gate must not
   change a single counter (the gate is pure reads of existing state);
   credits-on runs are deterministic across reruns *)

let mixed_workload cfg =
  let c = Cluster.create cfg in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
  let client = Cluster.client c in
  let rng = Weaver_util.Xrand.create ~seed:99 () in
  let vids =
    List.init 20 (fun i ->
        let tx = Client.Tx.begin_ client in
        let v = Client.Tx.create_vertex tx ~id:(Printf.sprintf "f%d" i) () in
        (match Client.commit client tx with Ok () -> () | Error e -> failwith e);
        v)
  in
  let vertices = Array.of_list vids in
  for _ = 1 to 10 do
    let tx = Client.Tx.begin_ client in
    let src = Weaver_util.Xrand.pick rng vertices in
    ignore (Client.Tx.create_edge tx ~src ~dst:(Weaver_util.Xrand.pick rng vertices));
    ignore (Client.commit client tx)
  done;
  for _ = 1 to 5 do
    ignore
      (Client.run_program client ~prog:"get_edges" ~params:Progval.Null
         ~starts:[ Weaver_util.Xrand.pick rng vertices ]
         ())
  done;
  Cluster.run_for c 20_000.0;
  c

let fingerprint c =
  let ctr = Cluster.counters c in
  let rt = Cluster.runtime c in
  ( ( ctr.Runtime.tx_committed,
      ctr.Runtime.tx_aborted,
      ctr.Runtime.progs_completed,
      ctr.Runtime.shed_queue_full + ctr.Runtime.shed_deadline
      + ctr.Runtime.shed_credit ),
    ( Net.messages_sent rt.Runtime.net,
      Net.messages_delivered rt.Runtime.net,
      ctr.Runtime.oracle_consults,
      ctr.Runtime.nop_msgs,
      ctr.Runtime.credit_msgs ) )

let test_idle_gate_is_invisible () =
  let base = { Config.default with Config.seed = 31 } in
  let off = mixed_workload base in
  (* admission enabled with lenient limits and credits off: every request
     admits, and the gate draws no randomness and sends no messages *)
  let on_ =
    mixed_workload
      {
        base with
        Config.admission_limit = 100_000;
        Config.deadline_budget = 1e9;
      }
  in
  Alcotest.(check bool) "committed some" true
    ((Cluster.counters off).Runtime.tx_committed > 0);
  Alcotest.(check bool) "bit-identical counters" true
    (fingerprint off = fingerprint on_);
  Alcotest.(check int) "nothing shed" 0
    (Cluster.counters on_).Runtime.shed_deadline

let test_credits_deterministic () =
  let cfg =
    {
      Config.default with
      Config.seed = 32;
      Config.shard_credits = 8;
      Config.admission_limit = 100_000;
    }
  in
  let a = mixed_workload cfg in
  let b = mixed_workload cfg in
  Alcotest.(check bool) "credits actually flowed" true
    ((Cluster.counters a).Runtime.credit_msgs > 0);
  Alcotest.(check bool) "rerun bit-identical" true (fingerprint a = fingerprint b)

(* ------------------------------------------------------------------ *)
(* Shedding under open overload: a burst far beyond the queue cap is
   rejected early with shed: errors, control traffic keeps flowing, and
   the slow log records the rejects *)

let flood c ~clients ~requests =
  let results = ref [] in
  let handles =
    Array.init clients (fun _ ->
        let cl = Cluster.client c in
        Client.set_retry_policy cl Client.no_retry_policy;
        cl)
  in
  for i = 0 to requests - 1 do
    let tx = Client.Tx.begin_ handles.(i mod clients) in
    ignore (Client.Tx.create_vertex tx ());
    Client.commit_async handles.(i mod clients) tx ~on_result:(fun r ->
        results := r :: !results)
  done;
  Cluster.run_for c 300_000.0;
  !results

let count_errors results prefix =
  List.length
    (List.filter
       (function
         | Error e ->
             String.length e >= String.length prefix
             && String.sub e 0 (String.length prefix) = prefix
         | Ok () -> false)
       results)

let test_shed_queue_full () =
  let cfg =
    {
      Config.default with
      Config.seed = 33;
      Config.n_gatekeepers = 1;
      Config.n_shards = 2;
      Config.admission_limit = 4;
      Config.slow_log_capacity = 200;
    }
  in
  let c = Cluster.create cfg in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
  let results = flood c ~clients:4 ~requests:100 in
  let ctr = Cluster.counters c in
  Alcotest.(check int) "every request resolved" 100 (List.length results);
  let ok = List.length (List.filter Result.is_ok results) in
  Alcotest.(check bool) "some admitted" true (ok > 0);
  Alcotest.(check bool) "queue-full sheds observed" true
    (count_errors results "shed:queue" > 0);
  Alcotest.(check int) "counter matches replies" ctr.Runtime.shed_queue_full
    (count_errors results "shed:queue");
  (* control traffic kept flowing: heartbeats were never shed, so the
     manager saw no failure and drove no recovery *)
  Alcotest.(check bool) "heartbeats flowed" true (ctr.Runtime.heartbeat_msgs > 0);
  Alcotest.(check bool) "nops flowed" true (ctr.Runtime.nop_msgs > 0);
  Alcotest.(check int) "no spurious recovery" 0 ctr.Runtime.recoveries;
  (* the slow log records rejects with the shed: prefix, like late: *)
  let shed_logged =
    List.exists
      (fun e ->
        String.length e.Slowlog.e_result >= 5
        && String.sub e.Slowlog.e_result 0 5 = "shed:")
      (Slowlog.entries (Cluster.slow_log c))
  in
  Alcotest.(check bool) "slowlog has shed: entries" true shed_logged

let test_shed_deadline () =
  let cfg =
    {
      Config.default with
      Config.seed = 34;
      Config.n_gatekeepers = 1;
      Config.n_shards = 2;
      Config.deadline_budget = 30.0;
    }
  in
  let c = Cluster.create cfg in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
  let results = flood c ~clients:8 ~requests:80 in
  let ctr = Cluster.counters c in
  Alcotest.(check bool) "deadline sheds observed" true
    (count_errors results "shed:deadline" > 0);
  Alcotest.(check int) "counter matches replies" ctr.Runtime.shed_deadline
    (count_errors results "shed:deadline");
  Alcotest.(check bool) "some admitted" true
    (List.exists Result.is_ok results)

let test_shed_is_retryable () =
  Alcotest.(check bool) "shed retryable" true
    (Client.retryable Client.default_policy "shed:queue");
  Alcotest.(check bool) "shed retryable (deadline)" true
    (Client.retryable Client.reliable_policy "shed:deadline");
  Alcotest.(check bool) "invalid not retryable" false
    (Client.retryable Client.reliable_policy "invalid: bad op")

(* ------------------------------------------------------------------ *)
(* Credit backpressure under a fault plan: a latency-degraded shard link
   delays refunds, admission rejects with shed:credit, and recovery
   restores the full balance and goodput *)

let test_credit_backpressure_under_degrade () =
  let cfg =
    {
      Config.default with
      Config.seed = 35;
      Config.n_gatekeepers = 1;
      Config.n_shards = 1;
      Config.shard_credits = 3;
    }
  in
  let c = Cluster.create cfg in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
  Cluster.run_for c 2_000.0;
  let degrade_at = Cluster.now c +. 1_000.0 in
  let restore_at = degrade_at +. 15_000.0 in
  let installed =
    Cluster.install_fault_plan c
      (Fault.scripted
         [
           ( degrade_at,
             Fault.Link_degrade
               {
                 src = Fault.Shard 0;
                 dst = Fault.Gatekeeper 0;
                 factor = 400.0;
               } );
           ( restore_at,
             Fault.Link_degrade
               { src = Fault.Shard 0; dst = Fault.Gatekeeper 0; factor = 1.0 }
           );
         ])
  in
  Alcotest.(check int) "plan installed" 2 installed;
  let client = Cluster.client c in
  Client.set_retry_policy client Client.no_retry_policy;
  let results = ref [] in
  for _ = 0 to 39 do
    let tx = Client.Tx.begin_ client in
    ignore (Client.Tx.create_vertex tx ());
    Client.commit_async client tx ~on_result:(fun r -> results := r :: !results);
    Cluster.run_for c 400.0
  done;
  let ctr = Cluster.counters c in
  Alcotest.(check bool) "credits drained, admission rejected" true
    (ctr.Runtime.shed_credit > 0);
  Alcotest.(check bool) "shed:credit surfaced to the client" true
    (count_errors !results "shed:credit" > 0);
  (* recovery: the restored link lets refunds drain back *)
  Cluster.run_for c 100_000.0;
  Alcotest.(check int) "balance restored" 3 (Cluster.gk_credits c ~gid:0 ~shard:0);
  let after = Client.commit client (let tx = Client.Tx.begin_ client in
                                    ignore (Client.Tx.create_vertex tx ());
                                    tx)
  in
  Alcotest.(check bool) "goodput restored" true (Result.is_ok after);
  Alcotest.(check int) "no further credit sheds" ctr.Runtime.shed_credit
    (Cluster.counters c).Runtime.shed_credit

(* ------------------------------------------------------------------ *)
(* Dead-endpoint drop accounting at the network layer *)

let test_net_dropped () =
  let engine = Engine.create ~seed:5 () in
  let net = Net.create engine ~latency:(Net.uniform_latency ~base:50.0 ~jitter:0.0) in
  Net.register net 1 (fun ~src:_ _ -> ());
  Net.register net 2 (fun ~src:_ _ -> ());
  Net.set_alive net 1 false;
  for _ = 1 to 3 do
    Net.send net ~src:0 ~dst:1 "dead"
  done;
  Net.send net ~src:0 ~dst:2 "alive";
  Engine.run engine;
  Alcotest.(check int) "dropped counted" 3 (Net.messages_dropped net);
  Alcotest.(check (list (pair int int))) "per-destination breakdown" [ (1, 3) ]
    (Net.drops_by_dst net);
  Alcotest.(check int) "live traffic delivered" 4 (Net.messages_sent net);
  Net.set_alive net 1 true;
  Net.send net ~src:0 ~dst:1 "revived";
  Engine.run engine;
  Alcotest.(check int) "revival stops the count" 3 (Net.messages_dropped net)

let suites =
  [
    ( "flow.units",
      [
        Alcotest.test_case "admission decisions" `Quick test_admission_decisions;
        Alcotest.test_case "credit accounting" `Quick test_credit_accounting;
        Alcotest.test_case "priority classes" `Quick test_priority_classes;
        Alcotest.test_case "config validation" `Quick test_config_validation_flow;
        Alcotest.test_case "shed errors retryable" `Quick test_shed_is_retryable;
      ] );
    ( "flow.cluster",
      [
        Alcotest.test_case "idle gate is invisible" `Quick test_idle_gate_is_invisible;
        Alcotest.test_case "credits deterministic" `Quick test_credits_deterministic;
        Alcotest.test_case "shed on queue cap" `Quick test_shed_queue_full;
        Alcotest.test_case "shed on deadline" `Quick test_shed_deadline;
        Alcotest.test_case "credit backpressure + recovery" `Quick
          test_credit_backpressure_under_degrade;
        Alcotest.test_case "net dropped at dead endpoints" `Quick test_net_dropped;
      ] );
  ]
