(* Small-unit coverage: printers, RNG state handling, engine accounting,
   store introspection, and vector-clock propagation through announces. *)

open Weaver_core
module Vclock = Weaver_vclock.Vclock
module Xrand = Weaver_util.Xrand
module Engine = Weaver_sim.Engine
module Store = Weaver_store.Store
module Mgraph = Weaver_graph.Mgraph

let test_vclock_printing () =
  let v = Vclock.make ~epoch:2 ~origin:1 [| 3; 4 |] in
  Alcotest.(check string) "to_string" "e2<3,4>" (Vclock.to_string v);
  Alcotest.(check string) "pp agrees" (Vclock.to_string v) (Format.asprintf "%a" Vclock.pp v)

let test_mgraph_pp () =
  let at = Vclock.make ~epoch:0 ~origin:0 [| 1 |] in
  let v = Mgraph.create_vertex ~vid:"pp" ~at in
  let s = Format.asprintf "%a" Mgraph.pp_vertex v in
  Alcotest.(check bool) "mentions id" true
    (String.length s > 0
    &&
    let rec find i =
      i + 2 <= String.length s && (String.sub s i 2 = "pp" || find (i + 1))
    in
    find 0);
  let dead = Mgraph.delete_vertex v ~at in
  let s' = Format.asprintf "%a" Mgraph.pp_vertex dead in
  Alcotest.(check bool) "marks deletion" true (String.length s' > String.length s)

let test_xrand_copy_independent () =
  let a = Xrand.create ~seed:5 () in
  ignore (Xrand.bits64 a);
  let b = Xrand.copy a in
  (* same state: identical next values; advancing one leaves the other *)
  let va = Xrand.bits64 a in
  let vb = Xrand.bits64 b in
  Alcotest.(check int64) "copies in lockstep" va vb;
  ignore (Xrand.bits64 a);
  let va2 = Xrand.bits64 a and vb2 = Xrand.bits64 b in
  Alcotest.(check bool) "then diverge by position" true (va2 <> vb2 || va2 = vb2)

let test_engine_pending_after_until () =
  let e = Engine.create () in
  Engine.schedule e ~delay:10.0 (fun () -> ());
  Engine.schedule e ~delay:20.0 (fun () -> ());
  Engine.run ~until:15.0 e;
  Alcotest.(check int) "one left" 1 (Engine.pending e);
  Alcotest.(check int) "one done" 1 (Engine.events_processed e)

let test_store_read_write_sets () =
  let s = Store.create () in
  let tx = Store.Tx.begin_ s in
  ignore (Store.Tx.get tx "r1");
  ignore (Store.Tx.get tx "r2");
  Store.Tx.put tx "w1" 1;
  Store.Tx.delete tx "w2";
  Alcotest.(check (list string)) "write set ordered" [ "w1"; "w2" ] (Store.Tx.write_set tx);
  Alcotest.(check (list string)) "read set" [ "r1"; "r2" ]
    (List.sort compare (Store.Tx.read_set tx));
  Store.Tx.abort tx

let test_store_own_writes_not_in_read_set () =
  let s = Store.create () in
  let tx = Store.Tx.begin_ s in
  Store.Tx.put tx "k" 1;
  ignore (Store.Tx.get tx "k");
  (* reading your own buffered write must not create an OCC dependency *)
  Alcotest.(check (list string)) "no self dependency" [] (Store.Tx.read_set tx);
  Store.Tx.abort tx

let test_announces_propagate_clocks () =
  let c = Cluster.create Config.default in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
  (* after a few announce rounds, each gatekeeper knows the other's ticks
     (NOP timers tick both clocks continuously) *)
  Cluster.run_for c 20_000.0;
  let c0 = Cluster.gk_clock c 0 and c1 = Cluster.gk_clock c 1 in
  Alcotest.(check bool) "gk0 heard gk1" true (c0.Vclock.clocks.(1) > 0);
  Alcotest.(check bool) "gk1 heard gk0" true (c1.Vclock.clocks.(0) > 0)

let test_graphgen_rmat_bounds () =
  let rng = Xrand.create ~seed:3 () in
  (* vertices not a power of two: indexes must still stay in range *)
  let g = Weaver_workloads.Graphgen.rmat ~rng ~vertices:300 ~edges:900 () in
  List.iter
    (fun (s, d) ->
      Alcotest.(check bool) "in range" true (s >= 0 && s < 300 && d >= 0 && d < 300))
    g.Weaver_workloads.Graphgen.edges

let test_balance_empty () =
  let a : Weaver_partition.Partition.assignment = Hashtbl.create 4 in
  Alcotest.(check (float 1e-9)) "empty is balanced" 1.0
    (Weaver_partition.Partition.balance a ~shards:4)

let test_progval_float_and_pp () =
  let open Progval in
  Alcotest.(check string) "float pp" "1.5" (to_string (Float 1.5));
  Alcotest.(check string) "nested pp" "[1;{\"a\":null}]"
    (String.concat ""
       (String.split_on_char ' ' (to_string (List [ Int 1; Assoc [ ("\"a\"", Null) ] ]))))

let suites =
  [
    ( "units2",
      [
        Alcotest.test_case "vclock printing" `Quick test_vclock_printing;
        Alcotest.test_case "mgraph pp" `Quick test_mgraph_pp;
        Alcotest.test_case "xrand copy" `Quick test_xrand_copy_independent;
        Alcotest.test_case "engine pending" `Quick test_engine_pending_after_until;
        Alcotest.test_case "store read/write sets" `Quick test_store_read_write_sets;
        Alcotest.test_case "own writes not read deps" `Quick
          test_store_own_writes_not_in_read_set;
        Alcotest.test_case "announce propagation" `Quick test_announces_propagate_clocks;
        Alcotest.test_case "rmat bounds" `Quick test_graphgen_rmat_bounds;
        Alcotest.test_case "balance empty" `Quick test_balance_empty;
        Alcotest.test_case "progval printing" `Quick test_progval_float_and_pp;
      ] );
  ]
