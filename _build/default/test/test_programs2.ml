(* Tests for the extended node programs (triangle count, k-hop collection,
   degree histogram) and transactional reads with results. *)

open Weaver_core
module Programs = Weaver_programs.Std_programs

let mk_cluster () =
  let c = Cluster.create Config.default in
  Programs.Std.register_all (Cluster.registry c);
  c

let ok = function Ok v -> v | Error e -> Alcotest.failf "%s" e

let build_triangle client =
  (* t1 -> t2, t1 -> t3, t2 -> t3, t3 -> t2, plus an open wedge t1 -> t4 *)
  let tx = Client.Tx.begin_ client in
  List.iter (fun v -> ignore (Client.Tx.create_vertex tx ~id:v ())) [ "t1"; "t2"; "t3"; "t4" ];
  ignore (Client.Tx.create_edge tx ~src:"t1" ~dst:"t2");
  ignore (Client.Tx.create_edge tx ~src:"t1" ~dst:"t3");
  ignore (Client.Tx.create_edge tx ~src:"t1" ~dst:"t4");
  ignore (Client.Tx.create_edge tx ~src:"t2" ~dst:"t3");
  ignore (Client.Tx.create_edge tx ~src:"t3" ~dst:"t2");
  ok (Client.commit client tx)

let test_triangle_count () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  build_triangle client;
  let n =
    Progval.to_int
      (ok (Client.run_program client ~prog:"triangle_count" ~params:Progval.Null
             ~starts:[ "t1" ] ()))
  in
  (* closed wedges through t1: t2->t3 and t3->t2 *)
  Alcotest.(check int) "two directed triangles" 2 n;
  let n4 =
    Progval.to_int
      (ok (Client.run_program client ~prog:"triangle_count" ~params:Progval.Null
             ~starts:[ "t4" ] ()))
  in
  Alcotest.(check int) "leaf has none" 0 n4

let test_khop_collect () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  build_triangle client;
  let collect depth =
    List.sort compare
      (List.map Progval.to_str
         (Progval.to_list
            (ok
               (Client.run_program client ~prog:"khop_collect"
                  ~params:(Progval.Assoc [ ("depth", Progval.Int depth) ])
                  ~starts:[ "t1" ] ()))))
  in
  Alcotest.(check (list string)) "0 hops" [ "t1" ] (collect 0);
  Alcotest.(check (list string)) "1 hop" [ "t1"; "t2"; "t3"; "t4" ] (collect 1)

let test_degree_dist () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  build_triangle client;
  match
    ok
      (Client.run_program client ~prog:"degree_dist" ~params:Progval.Null
         ~starts:[ "t1"; "t2"; "t3"; "t4" ] ())
  with
  | Progval.Assoc hist ->
      let count d = Progval.to_int (Option.value ~default:(Progval.Int 0) (List.assoc_opt d hist)) in
      Alcotest.(check int) "one deg-3 vertex" 1 (count "3");
      Alcotest.(check int) "two deg-1 vertices" 2 (count "1");
      Alcotest.(check int) "one deg-0 vertex" 1 (count "0")
  | v -> Alcotest.failf "unexpected %s" (Progval.to_string v)

let test_tx_read_results () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  build_triangle client;
  let tx = Client.Tx.begin_ client in
  Client.Tx.read_vertex tx "t1";
  Client.Tx.read_vertex tx "ghost";
  match ok (Client.commit_with_reads client tx) with
  | [ ("t1", s1); ("ghost", s2) ] ->
      Alcotest.(check int) "t1 degree" 3 (Progval.to_int (Progval.assoc "degree" s1));
      let out =
        List.sort compare (List.map Progval.to_str (Progval.to_list (Progval.assoc "out" s1)))
      in
      Alcotest.(check (list string)) "t1 out" [ "t2"; "t3"; "t4" ] out;
      Alcotest.(check bool) "missing is Null" true (s2 = Progval.Null)
  | reads -> Alcotest.failf "unexpected reads (%d)" (List.length reads)

let test_tx_read_sees_own_writes () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  let v = Client.Tx.create_vertex tx () in
  Client.Tx.set_vertex_prop tx ~vid:v ~key:"k" ~value:"1";
  Client.Tx.read_vertex tx v;
  match ok (Client.commit_with_reads client tx) with
  | [ (_, s) ] ->
      Alcotest.(check string) "own write visible" "1"
        (Progval.to_str (Progval.assoc "k" (Progval.assoc "props" s)))
  | reads -> Alcotest.failf "unexpected reads (%d)" (List.length reads)

let test_tx_read_atomic_with_write () =
  (* reads returned by a transaction reflect the state the transaction
     validated against: a read + conditional-style write pair *)
  let c = mk_cluster () in
  let client = Cluster.client c in
  build_triangle client;
  let tx = Client.Tx.begin_ client in
  Client.Tx.read_vertex tx "t4";
  ignore (Client.Tx.create_edge tx ~src:"t4" ~dst:"t1");
  (match ok (Client.commit_with_reads client tx) with
  | [ (_, s) ] ->
      (* the summary is the pre-write state read in the same transaction *)
      Alcotest.(check int) "read state pre-write" 0
        (Progval.to_int (Progval.assoc "degree" s))
  | _ -> Alcotest.fail "one read expected");
  match
    ok (Client.run_program client ~prog:"count_edges" ~params:Progval.Null ~starts:[ "t4" ] ())
  with
  | Progval.Int n -> Alcotest.(check int) "write applied" 1 n
  | v -> Alcotest.failf "unexpected %s" (Progval.to_string v)

let test_history_program () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  (* gc off would preserve everything; default gc is slow enough for this test *)
  build_triangle client;
  let tx = Client.Tx.begin_ client in
  Client.Tx.set_vertex_prop tx ~vid:"t1" ~key:"p" ~value:"1";
  ok (Client.commit client tx);
  let tx = Client.Tx.begin_ client in
  Client.Tx.set_vertex_prop tx ~vid:"t1" ~key:"p" ~value:"2";
  ok (Client.commit client tx);
  match
    ok (Client.run_program client ~prog:"history" ~params:Progval.Null ~starts:[ "t1" ] ())
  with
  | Progval.List [ h ] ->
      Alcotest.(check bool) "alive" true (Progval.to_bool (Progval.assoc "alive" h));
      Alcotest.(check int) "prop versions" 2 (Progval.to_int (Progval.assoc "prop_versions" h));
      Alcotest.(check int) "one superseded" 1
        (Progval.to_int (Progval.assoc "dead_prop_versions" h));
      Alcotest.(check int) "edge versions" 3 (Progval.to_int (Progval.assoc "edge_versions" h))
  | v -> Alcotest.failf "unexpected %s" (Progval.to_string v)

let test_match_prop () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  List.iter
    (fun (v, kind) ->
      ignore (Client.Tx.create_vertex tx ~id:v ());
      Client.Tx.set_vertex_prop tx ~vid:v ~key:"kind" ~value:kind)
    [ ("p1", "photo"); ("p2", "photo"); ("u1", "user") ];
  ok (Client.commit client tx);
  match
    ok
      (Client.run_program client ~prog:"match_prop"
         ~params:(Progval.Assoc [ ("key", Progval.Str "kind"); ("value", Progval.Str "photo") ])
         ~starts:[ "p1"; "p2"; "u1" ] ())
  with
  | Progval.List hits ->
      Alcotest.(check (list string)) "photos found" [ "p1"; "p2" ]
        (List.sort compare (List.map Progval.to_str hits))
  | v -> Alcotest.failf "unexpected %s" (Progval.to_string v)

let test_commit_with_retry () =
  (* two conflicting writers: with retry both eventually commit *)
  let c = mk_cluster () in
  let c1 = Cluster.client c and c2 = Cluster.client c in
  let setup = Client.Tx.begin_ c1 in
  ignore (Client.Tx.create_vertex setup ~id:"rt" ());
  ok (Client.commit c1 setup);
  let mk cl =
    let tx = Client.Tx.begin_ cl in
    Client.Tx.read_vertex tx "rt";
    Client.Tx.set_vertex_prop tx ~vid:"rt" ~key:"w" ~value:"x";
    tx
  in
  let r1 = ref None and r2 = ref None in
  (* interleave by starting both, then retrying synchronously *)
  Client.commit_async c1 (mk c1) ~on_result:(fun r -> r1 := Some r);
  Client.commit_async c2 (mk c2) ~on_result:(fun r -> r2 := Some r);
  Cluster.run_for c 100_000.0;
  let redo cl r = match !r with Some (Ok ()) -> Ok () | _ -> Client.commit_with_retry cl (mk cl) in
  Alcotest.(check bool) "first committed" true (redo c1 r1 = Ok ());
  Alcotest.(check bool) "second committed" true (redo c2 r2 = Ok ())

let prop_decode_never_crashes =
  QCheck.Test.make ~name:"codec rejects random bytes gracefully" ~count:300
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun junk ->
      match Weaver_graph.Codec.decode_vertex junk with
      | _ -> true (* astronomically unlikely to parse; fine if it does *)
      | exception Weaver_util.Wire.Reader.Corrupt _ -> true
      | exception _ -> false)

let suites =
  [
    ( "programs.extended",
      [
        Alcotest.test_case "triangle count" `Quick test_triangle_count;
        Alcotest.test_case "khop collect" `Quick test_khop_collect;
        Alcotest.test_case "degree dist" `Quick test_degree_dist;
      ] );
    ( "core.tx_reads",
      [
        Alcotest.test_case "read results" `Quick test_tx_read_results;
        Alcotest.test_case "read own writes" `Quick test_tx_read_sees_own_writes;
        Alcotest.test_case "read atomic with write" `Quick test_tx_read_atomic_with_write;
        Alcotest.test_case "commit with retry" `Quick test_commit_with_retry;
      ] );
    ( "programs.inspection",
      [
        Alcotest.test_case "history" `Quick test_history_program;
        Alcotest.test_case "match_prop" `Quick test_match_prop;
        QCheck_alcotest.to_alcotest prop_decode_never_crashes;
      ] );
  ]
