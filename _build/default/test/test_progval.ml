(* Tests for the universal program value type and the node-program
   registry / transaction op helpers. *)

open Weaver_core

let test_equal () =
  let open Progval in
  Alcotest.(check bool) "ints" true (equal (Int 3) (Int 3));
  Alcotest.(check bool) "mixed" false (equal (Int 3) (Float 3.0));
  Alcotest.(check bool) "lists" true
    (equal (List [ Int 1; Str "a" ]) (List [ Int 1; Str "a" ]));
  Alcotest.(check bool) "assoc order matters" false
    (equal (Assoc [ ("a", Int 1); ("b", Int 2) ]) (Assoc [ ("b", Int 2); ("a", Int 1) ]));
  Alcotest.(check bool) "null" true (equal Null Null)

let test_accessors () =
  let open Progval in
  Alcotest.(check int) "to_int" 5 (to_int (Int 5));
  Alcotest.(check bool) "to_bool" true (to_bool (Bool true));
  Alcotest.(check string) "to_str" "x" (to_str (Str "x"));
  Alcotest.(check (float 1e-9)) "int as float" 3.0 (to_float (Int 3));
  Alcotest.(check int) "assoc hit" 1 (to_int (assoc "k" (Assoc [ ("k", Int 1) ])));
  Alcotest.(check bool) "assoc miss is Null" true (assoc "z" (Assoc []) = Null);
  Alcotest.check_raises "shape mismatch" (Invalid_argument "Progval.to_int: \"s\"")
    (fun () -> ignore (to_int (Str "s")))

let test_key_distinct () =
  let open Progval in
  let vals =
    [ Null; Bool true; Int 1; Float 1.5; Str "a"; List [ Int 1 ]; Assoc [ ("a", Int 1) ] ]
  in
  let keys = List.map key vals in
  Alcotest.(check int) "all distinct" (List.length vals)
    (List.length (List.sort_uniq compare keys))

let test_registry () =
  let reg = Nodeprog.create_registry () in
  Weaver_programs.Std_programs.Std.register_all reg;
  Alcotest.(check bool) "has get_node" true (Nodeprog.find reg "get_node" <> None);
  Alcotest.(check bool) "misses unknown" true (Nodeprog.find reg "nope" = None);
  Alcotest.(check int) "fifteen programs" 15 (List.length (Nodeprog.names reg));
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Nodeprog.register: duplicate program get_node") (fun () ->
      Nodeprog.register reg (module Weaver_programs.Std_programs.Get_node))

let test_txop_classify () =
  let open Txop in
  Alcotest.(check (option string)) "create writes" (Some "v") (written_vertex (Create_vertex "v"));
  Alcotest.(check (option string)) "edge writes src" (Some "s")
    (written_vertex (Create_edge { eid = "e"; src = "s"; dst = "d" }));
  Alcotest.(check (option string)) "edge reads dst" (Some "d")
    (read_vertex (Create_edge { eid = "e"; src = "s"; dst = "d" }));
  Alcotest.(check (option string)) "read op" (Some "v") (read_vertex (Read_vertex "v"));
  Alcotest.(check (option string)) "read writes nothing" None (written_vertex (Read_vertex "v"))

let test_config_validation () =
  Alcotest.check_raises "bad gatekeepers" (Invalid_argument "Config: bad n_gatekeepers")
    (fun () -> Config.validate { Config.default with Config.n_gatekeepers = 0 });
  Alcotest.check_raises "bad tau" (Invalid_argument "Config: bad tau") (fun () ->
      Config.validate { Config.default with Config.tau = 0.0 });
  Alcotest.check_raises "timeout vs heartbeat" (Invalid_argument "Config: bad failure_timeout")
    (fun () ->
      Config.validate { Config.default with Config.failure_timeout = 1.0 });
  Config.validate Config.default

let test_stamp_min () =
  let open Weaver_vclock.Vclock in
  let a = make ~epoch:0 ~origin:0 [| 3; 7 |] in
  let b = make ~epoch:0 ~origin:1 [| 5; 2 |] in
  let m = Runtime.stamp_min a b in
  Alcotest.(check (array int)) "pointwise" [| 3; 2 |] m.clocks;
  (* lower epoch wins outright *)
  let old = make ~epoch:0 ~origin:0 [| 100; 100 |] in
  let nw = make ~epoch:1 ~origin:0 [| 0; 0 |] in
  Alcotest.(check int) "old epoch wins" 0 (Runtime.stamp_min old nw).epoch

let suites =
  [
    ( "core.progval",
      [
        Alcotest.test_case "equal" `Quick test_equal;
        Alcotest.test_case "accessors" `Quick test_accessors;
        Alcotest.test_case "keys distinct" `Quick test_key_distinct;
      ] );
    ( "core.misc",
      [
        Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "txop classify" `Quick test_txop_classify;
        Alcotest.test_case "config validation" `Quick test_config_validation;
        Alcotest.test_case "stamp_min" `Quick test_stamp_min;
      ] );
  ]
