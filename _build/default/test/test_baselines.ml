(* Tests for the comparison baselines: Titan-like 2PL+2PC, GraphLab-like
   sync/async engines, and the Blockchain.info cost model. *)

open Weaver_baselines
module Engine = Weaver_sim.Engine
module Xrand = Weaver_util.Xrand
module Graphgen = Weaver_workloads.Graphgen

let test_titan_driver_completes () =
  let engine = Engine.create ~seed:11 () in
  let t = Titan_like.create engine ~rtt:100.0 in
  let vertices = Array.init 100 (fun i -> "v" ^ string_of_int i) in
  let r = Titan_like.Driver.run t ~vertices ~clients:10 ~duration:500_000.0 () in
  Alcotest.(check bool) "ops completed" true (r.Titan_like.Driver.completed > 100);
  (* clients are closed-loop, so at the window cutoff at most one op per
     client can still hold locks *)
  Alcotest.(check bool) "only in-flight locks remain" true
    (Titan_like.locks_held t <= 10 * 3)

let test_titan_throughput_insensitive_to_mix () =
  (* the defining Titan behaviour per the paper: read-heavy and write-heavy
     mixes give nearly the same throughput because reads lock too *)
  let run frac =
    let engine = Engine.create ~seed:12 () in
    let t = Titan_like.create engine ~rtt:100.0 in
    let vertices = Array.init 200 (fun i -> "v" ^ string_of_int i) in
    (Titan_like.Driver.run t ~vertices ~clients:20 ~duration:1_000_000.0
       ~read_fraction:frac ())
      .Titan_like.Driver.throughput
  in
  let read_heavy = run 0.998 and mixed = run 0.75 in
  Alcotest.(check bool)
    (Printf.sprintf "flat throughput (%.0f vs %.0f)" read_heavy mixed)
    true
    (read_heavy /. mixed < 1.5 && mixed /. read_heavy < 1.5)

let test_titan_contention_serializes () =
  (* all clients hammering one vertex must be much slower than spread *)
  let run vertices =
    let engine = Engine.create ~seed:13 () in
    let t = Titan_like.create engine ~rtt:100.0 in
    (Titan_like.Driver.run t ~vertices ~clients:16 ~duration:500_000.0
       ~read_fraction:0.5 ~theta:0.0 ())
      .Titan_like.Driver.throughput
  in
  let hot = run [| "hot" |] in
  let spread = run (Array.init 256 (fun i -> "v" ^ string_of_int i)) in
  Alcotest.(check bool)
    (Printf.sprintf "contention hurts (%.0f < %.0f)" hot spread)
    true (hot < spread /. 1.5)

let small_graph () =
  let rng = Xrand.create ~seed:21 () in
  Graphgen.uniform ~rng ~vertices:500 ~edges:3_000 ()

let test_graphlab_bfs_levels () =
  let g = Graphlab_like.load (Graphgen.chain ~prefix:"v" ~vertices:5 ()) in
  Alcotest.(check (list int)) "chain levels" [ 1; 1; 1; 1; 1 ]
    (Graphlab_like.bfs_levels g ~src:"v0");
  let s = Graphlab_like.load (Graphgen.star ~prefix:"v" ~leaves:6 ()) in
  Alcotest.(check (list int)) "star levels" [ 1; 6 ] (Graphlab_like.bfs_levels s ~src:"v0")

let test_graphlab_sync_pays_barriers () =
  (* deep narrow graphs hurt the sync engine far more than shallow ones *)
  let costs = Graphlab_like.default_costs in
  let deep = Graphlab_like.load (Graphgen.chain ~prefix:"v" ~vertices:50 ()) in
  let lat_deep =
    Graphlab_like.reachability_latency deep ~mode:Graphlab_like.Sync ~costs ~src:"v0"
      ~dst:"v49"
  in
  let shallow = Graphlab_like.load (Graphgen.star ~prefix:"v" ~leaves:49 ()) in
  let lat_shallow =
    Graphlab_like.reachability_latency shallow ~mode:Graphlab_like.Sync ~costs ~src:"v0"
      ~dst:"v49"
  in
  Alcotest.(check bool)
    (Printf.sprintf "barriers dominate depth (%.0f > %.0f)" lat_deep lat_shallow)
    true
    (lat_deep > 3.0 *. lat_shallow)

let test_graphlab_async_beats_sync () =
  let costs = Graphlab_like.default_costs in
  let g = Graphlab_like.load (small_graph ()) in
  let sync =
    Graphlab_like.reachability_latency g ~mode:Graphlab_like.Sync ~costs ~src:"v0"
      ~dst:"v499"
  in
  let async =
    Graphlab_like.reachability_latency g ~mode:Graphlab_like.Async ~costs ~src:"v0"
      ~dst:"v499"
  in
  Alcotest.(check bool)
    (Printf.sprintf "async %.0f < sync %.0f" async sync)
    true (async < sync)

let test_blockchain_info_model () =
  let lat0 = Blockchain_info.block_query_latency ~n_tx:0 () in
  Alcotest.(check (float 1e-6)) "wan only" Blockchain_info.wan_latency lat0;
  let lat100 = Blockchain_info.block_query_latency ~n_tx:100 () in
  Alcotest.(check bool) "within measured band" true
    (lat100 >= Blockchain_info.wan_latency +. (100.0 *. Blockchain_info.per_tx_cost_low)
    && lat100 <= Blockchain_info.wan_latency +. (100.0 *. Blockchain_info.per_tx_cost_high));
  let rng = Xrand.create ~seed:31 () in
  let sampled = Blockchain_info.block_query_latency ~rng ~n_tx:100 () in
  Alcotest.(check bool) "sampled in band" true
    (sampled >= Blockchain_info.wan_latency +. (100.0 *. Blockchain_info.per_tx_cost_low)
    && sampled
       <= Blockchain_info.wan_latency +. (100.0 *. Blockchain_info.per_tx_cost_high))

let test_kineograph_epochs () =
  let engine = Engine.create ~seed:51 () in
  let kg = Kineograph_like.create engine ~epoch_length:1_000.0 in
  Kineograph_like.update kg ~key:"k" ~value:1;
  (* invisible until the epoch seals *)
  Alcotest.(check (option int)) "buffered invisible" None (Kineograph_like.query kg ~key:"k");
  Alcotest.(check int) "pending" 1 (Kineograph_like.pending_updates kg);
  Engine.run ~until:1_500.0 engine;
  Alcotest.(check (option int)) "visible after seal" (Some 1) (Kineograph_like.query kg ~key:"k");
  Alcotest.(check bool) "epochs sealed" true (Kineograph_like.epochs_sealed kg >= 1);
  (* a newer buffered update does not shadow the sealed value *)
  Kineograph_like.update kg ~key:"k" ~value:2;
  Alcotest.(check (option int)) "still old value" (Some 1) (Kineograph_like.query kg ~key:"k");
  Engine.run ~until:2_500.0 engine;
  Alcotest.(check (option int)) "new value after next seal" (Some 2)
    (Kineograph_like.query kg ~key:"k");
  match Kineograph_like.query_staleness kg ~key:"k" with
  | Some age -> Alcotest.(check bool) "staleness positive" true (age > 0.0)
  | None -> Alcotest.fail "staleness missing"

let suites =
  [
    ( "baselines.titan",
      [
        Alcotest.test_case "driver completes" `Quick test_titan_driver_completes;
        Alcotest.test_case "mix-insensitive throughput" `Quick
          test_titan_throughput_insensitive_to_mix;
        Alcotest.test_case "contention serializes" `Quick test_titan_contention_serializes;
      ] );
    ( "baselines.graphlab",
      [
        Alcotest.test_case "bfs levels" `Quick test_graphlab_bfs_levels;
        Alcotest.test_case "sync pays barriers" `Quick test_graphlab_sync_pays_barriers;
        Alcotest.test_case "async beats sync" `Quick test_graphlab_async_beats_sync;
      ] );
    ( "baselines.blockchain_info",
      [ Alcotest.test_case "cost model" `Quick test_blockchain_info_model ] );
    ( "baselines.kineograph",
      [ Alcotest.test_case "epoch semantics" `Quick test_kineograph_epochs ] );
  ]
