(* Tests for epoch-tagged vector clocks and the TrueTime model. *)

open Weaver_vclock

let vc epoch origin clocks = Vclock.make ~epoch ~origin clocks

let order_testable =
  Alcotest.testable
    (fun fmt -> function
      | Vclock.Before -> Format.pp_print_string fmt "Before"
      | Vclock.After -> Format.pp_print_string fmt "After"
      | Vclock.Concurrent -> Format.pp_print_string fmt "Concurrent"
      | Vclock.Equal -> Format.pp_print_string fmt "Equal")
    ( = )

let test_zero () =
  let z = Vclock.zero ~n:3 in
  Alcotest.(check int) "dim" 3 (Vclock.dim z);
  Alcotest.check order_testable "self equal" Vclock.Equal (Vclock.compare_hb z z)

let test_tick_orders () =
  let z = Vclock.zero ~n:3 in
  let a = Vclock.tick z ~origin:1 in
  Alcotest.check order_testable "zero before tick" Vclock.Before (Vclock.compare_hb z a);
  Alcotest.check order_testable "tick after zero" Vclock.After (Vclock.compare_hb a z);
  Alcotest.(check bool) "precedes" true (Vclock.precedes z a)

let test_paper_example () =
  (* Fig. 5: T1<1,1,0> ≺ T2<3,4,2>; T3<0,1,3> ≺ T4<3,1,5>; T2 ≈ T4 *)
  let t1 = vc 0 0 [| 1; 1; 0 |] in
  let t2 = vc 0 1 [| 3; 4; 2 |] in
  let t3 = vc 0 2 [| 0; 1; 3 |] in
  let t4 = vc 0 2 [| 3; 1; 5 |] in
  Alcotest.check order_testable "T1 < T2" Vclock.Before (Vclock.compare_hb t1 t2);
  Alcotest.check order_testable "T3 < T4" Vclock.Before (Vclock.compare_hb t3 t4);
  Alcotest.check order_testable "T2 ~ T4" Vclock.Concurrent (Vclock.compare_hb t2 t4);
  Alcotest.(check bool) "concurrent helper" true (Vclock.concurrent t2 t4)

let test_merge () =
  let a = vc 0 0 [| 3; 1; 0 |] and b = vc 0 1 [| 1; 4; 2 |] in
  let m = Vclock.merge a b in
  Alcotest.(check (array int)) "elementwise max" [| 3; 4; 2 |] m.Vclock.clocks;
  Alcotest.(check int) "keeps left origin" 0 m.Vclock.origin

let test_epoch_dominates () =
  let old_big = vc 0 0 [| 100; 100 |] in
  let new_small = vc 1 0 [| 0; 1 |] in
  Alcotest.check order_testable "old epoch before new" Vclock.Before
    (Vclock.compare_hb old_big new_small);
  Alcotest.check order_testable "new epoch after old" Vclock.After
    (Vclock.compare_hb new_small old_big)

let test_total_compare_extends_hb () =
  let a = vc 0 0 [| 1; 0 |] and b = vc 0 1 [| 1; 1 |] in
  Alcotest.(check bool) "before implies negative" true (Vclock.total_compare a b < 0);
  Alcotest.(check bool) "after implies positive" true (Vclock.total_compare b a > 0);
  Alcotest.(check int) "equal is zero" 0 (Vclock.total_compare a a)

let test_total_compare_concurrent_deterministic () =
  let a = vc 0 0 [| 2; 0 |] and b = vc 0 1 [| 0; 2 |] in
  Alcotest.check order_testable "concurrent" Vclock.Concurrent (Vclock.compare_hb a b);
  let c1 = Vclock.total_compare a b and c2 = Vclock.total_compare b a in
  Alcotest.(check bool) "antisymmetric" true (c1 = -c2 && c1 <> 0)

let test_key_unique () =
  let a = vc 0 0 [| 1; 2 |] and b = vc 0 0 [| 12; 0 |] in
  Alcotest.(check bool) "keys differ" true (Vclock.key a <> Vclock.key b);
  Alcotest.(check string) "key stable" (Vclock.key a) (Vclock.key a)

let test_equal_and_make_copy () =
  let arr = [| 1; 2; 3 |] in
  let a = Vclock.make ~epoch:0 ~origin:1 arr in
  arr.(0) <- 99;
  (* make must copy: later mutation of the source array is invisible *)
  Alcotest.(check (array int)) "copied" [| 1; 2; 3 |] a.Vclock.clocks

let test_truetime_after_and_wait () =
  let rng = Weaver_util.Xrand.create ~seed:3 () in
  let a = Vclock.Truetime.now ~rng ~real:1000.0 ~eps:10.0 in
  let b = Vclock.Truetime.now ~rng ~real:1030.0 ~eps:10.0 in
  Alcotest.(check bool) "clearly separated" true (Vclock.Truetime.after b a);
  let c = Vclock.Truetime.now ~rng ~real:1005.0 ~eps:10.0 in
  Alcotest.(check bool) "overlapping not after" false (Vclock.Truetime.after c a);
  Alcotest.(check bool) "commit wait bounded by 2eps" true
    (Vclock.Truetime.commit_wait a <= 20.0 +. 1e-9)

(* qcheck generators and properties *)

let gen_clock n =
  QCheck.Gen.(array_size (return n) (int_bound 20))

let arb_pair_same_dim =
  QCheck.make
    QCheck.Gen.(
      let* n = 2 -- 5 in
      let* a = gen_clock n in
      let* b = gen_clock n in
      let* oa = 0 -- (n - 1) in
      let* ob = 0 -- (n - 1) in
      return (Vclock.make ~epoch:0 ~origin:oa a, Vclock.make ~epoch:0 ~origin:ob b))

let prop_hb_antisymmetric =
  QCheck.Test.make ~name:"happens-before is antisymmetric" ~count:500 arb_pair_same_dim
    (fun (a, b) ->
      match (Vclock.compare_hb a b, Vclock.compare_hb b a) with
      | Vclock.Before, Vclock.After
      | Vclock.After, Vclock.Before
      | Vclock.Equal, Vclock.Equal
      | Vclock.Concurrent, Vclock.Concurrent -> true
      | _ -> false)

let prop_merge_upper_bound =
  QCheck.Test.make ~name:"merge dominates both operands" ~count:500 arb_pair_same_dim
    (fun (a, b) ->
      let m = Vclock.merge a b in
      let geq x =
        match Vclock.compare_hb m x with
        | Vclock.After | Vclock.Equal -> true
        | _ -> false
      in
      geq a && geq b)

let prop_tick_strictly_after =
  QCheck.Test.make ~name:"tick strictly advances" ~count:500 arb_pair_same_dim
    (fun (a, _) ->
      let o = a.Vclock.origin in
      Vclock.precedes a (Vclock.tick a ~origin:o))

let prop_total_compare_total_order =
  QCheck.Test.make ~name:"total_compare is antisymmetric and reflexive" ~count:500
    arb_pair_same_dim
    (fun (a, b) ->
      Vclock.total_compare a a = 0
      && Vclock.total_compare a b = -Vclock.total_compare b a)

let prop_key_injective_on_distinct =
  QCheck.Test.make ~name:"key equal iff clocks+epoch+origin equal" ~count:500
    arb_pair_same_dim
    (fun (a, b) ->
      let keys_eq = String.equal (Vclock.key a) (Vclock.key b) in
      let all_eq =
        Vclock.equal a b && a.Vclock.origin = b.Vclock.origin
      in
      keys_eq = all_eq)

let suites =
  [
    ( "vclock",
      [
        Alcotest.test_case "zero" `Quick test_zero;
        Alcotest.test_case "tick orders" `Quick test_tick_orders;
        Alcotest.test_case "paper fig5 example" `Quick test_paper_example;
        Alcotest.test_case "merge" `Quick test_merge;
        Alcotest.test_case "epoch dominates" `Quick test_epoch_dominates;
        Alcotest.test_case "total extends hb" `Quick test_total_compare_extends_hb;
        Alcotest.test_case "total deterministic on concurrent" `Quick
          test_total_compare_concurrent_deterministic;
        Alcotest.test_case "key uniqueness" `Quick test_key_unique;
        Alcotest.test_case "make copies" `Quick test_equal_and_make_copy;
        Alcotest.test_case "truetime" `Quick test_truetime_after_and_wait;
        QCheck_alcotest.to_alcotest prop_hb_antisymmetric;
        QCheck_alcotest.to_alcotest prop_merge_upper_bound;
        QCheck_alcotest.to_alcotest prop_tick_strictly_after;
        QCheck_alcotest.to_alcotest prop_total_compare_total_order;
        QCheck_alcotest.to_alcotest prop_key_injective_on_distinct;
      ] );
  ]
