(* Tests for the wire codec, the graph record codec, and full-cluster
   backup/restore. *)

open Weaver_core
module Wire = Weaver_util.Wire
module Codec = Weaver_graph.Codec
module Mgraph = Weaver_graph.Mgraph
module Vclock = Weaver_vclock.Vclock
module Programs = Weaver_programs.Std_programs

let test_wire_roundtrip () =
  let w = Wire.Writer.create () in
  Wire.Writer.varint w 0;
  Wire.Writer.varint w 127;
  Wire.Writer.varint w 128;
  Wire.Writer.varint w 1_000_000_007;
  Wire.Writer.string w "";
  Wire.Writer.string w "hello \x00 world";
  Wire.Writer.bool w true;
  Wire.Writer.list w (Wire.Writer.varint w) [ 1; 2; 3 ];
  Wire.Writer.option w (Wire.Writer.string w) None;
  Wire.Writer.option w (Wire.Writer.string w) (Some "x");
  let r = Wire.Reader.create (Wire.Writer.contents w) in
  Alcotest.(check int) "v0" 0 (Wire.Reader.varint r);
  Alcotest.(check int) "v127" 127 (Wire.Reader.varint r);
  Alcotest.(check int) "v128" 128 (Wire.Reader.varint r);
  Alcotest.(check int) "big" 1_000_000_007 (Wire.Reader.varint r);
  Alcotest.(check string) "empty" "" (Wire.Reader.string r);
  Alcotest.(check string) "binary" "hello \x00 world" (Wire.Reader.string r);
  Alcotest.(check bool) "bool" true (Wire.Reader.bool r);
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (Wire.Reader.list r (fun () -> Wire.Reader.varint r));
  Alcotest.(check (option string)) "none" None (Wire.Reader.option r (fun () -> Wire.Reader.string r));
  Alcotest.(check (option string)) "some" (Some "x") (Wire.Reader.option r (fun () -> Wire.Reader.string r));
  Alcotest.(check bool) "consumed" true (Wire.Reader.at_end r)

let test_wire_corrupt () =
  Alcotest.check_raises "truncated" (Wire.Reader.Corrupt "truncated") (fun () ->
      ignore (Wire.Reader.varint (Wire.Reader.create "")));
  Alcotest.check_raises "negative refused" (Invalid_argument "Wire.varint: negative")
    (fun () -> Wire.Writer.varint (Wire.Writer.create ()) (-1))

let stamp i j = Vclock.make ~epoch:1 ~origin:0 [| i; j |]

let test_vertex_roundtrip () =
  let before a b = Vclock.precedes a b in
  let v = Mgraph.create_vertex ~vid:"complex" ~at:(stamp 1 0) in
  let v = Mgraph.add_edge v ~eid:"e1" ~dst:"a" ~at:(stamp 2 0) in
  let v = Mgraph.add_edge v ~eid:"e2" ~dst:"b" ~at:(stamp 3 1) in
  let v = Mgraph.delete_edge v ~eid:"e1" ~at:(stamp 4 2) in
  let v = Mgraph.set_vertex_prop before v ~key:"k" ~value:"v1" ~at:(stamp 5 2) in
  let v = Mgraph.set_vertex_prop before v ~key:"k" ~value:"v2" ~at:(stamp 6 2) in
  let v = Mgraph.set_edge_prop before v ~eid:"e2" ~key:"w" ~value:"3.5" ~at:(stamp 7 2) in
  let v = Mgraph.delete_vertex v ~at:(stamp 8 3) in
  let v' = Codec.decode_vertex (Codec.encode_vertex v) in
  Alcotest.(check bool) "exact roundtrip" true (v = v')

let test_decode_rejects_garbage () =
  Alcotest.(check bool) "garbage raises" true
    (try
       ignore (Codec.decode_vertex "not a vertex");
       false
     with Wire.Reader.Corrupt _ -> true)

let prop_vertex_roundtrip =
  (* random multi-version vertices survive encode/decode exactly *)
  let gen =
    QCheck.Gen.(
      let* n_edges = 0 -- 10 in
      let* n_props = 0 -- 5 in
      let* seed = int_bound 10_000 in
      return (n_edges, n_props, seed))
  in
  QCheck.Test.make ~name:"codec roundtrip on random vertices" ~count:200
    (QCheck.make gen) (fun (n_edges, n_props, seed) ->
      let rng = Weaver_util.Xrand.create ~seed () in
      let next_stamp =
        let c = ref 0 in
        fun () ->
          incr c;
          Vclock.make ~epoch:(Weaver_util.Xrand.int rng 3) ~origin:0 [| !c; Weaver_util.Xrand.int rng 50 |]
      in
      let before a b = Vclock.precedes a b in
      let v = ref (Mgraph.create_vertex ~vid:("v" ^ string_of_int seed) ~at:(next_stamp ())) in
      for i = 1 to n_edges do
        v := Mgraph.add_edge !v ~eid:("e" ^ string_of_int i) ~dst:("d" ^ string_of_int i) ~at:(next_stamp ());
        if Weaver_util.Xrand.bool rng then
          v := Mgraph.delete_edge !v ~eid:("e" ^ string_of_int i) ~at:(next_stamp ())
      done;
      for i = 1 to n_props do
        v :=
          Mgraph.set_vertex_prop before !v ~key:("k" ^ string_of_int (i mod 3))
            ~value:(string_of_int i) ~at:(next_stamp ())
      done;
      let v = !v in
      Codec.decode_vertex (Codec.encode_vertex v) = v)

let test_cluster_backup_restore () =
  (* build state on one cluster, dump, restore into a fresh one, verify
     queries and historical state match *)
  let mk () =
    let c = Cluster.create Config.default in
    Programs.Std.register_all (Cluster.registry c);
    c
  in
  let c1 = mk () in
  let client1 = Cluster.client c1 in
  let tx = Client.Tx.begin_ client1 in
  List.iter (fun v -> ignore (Client.Tx.create_vertex tx ~id:v ())) [ "x"; "y"; "z" ];
  ignore (Client.Tx.create_edge tx ~src:"x" ~dst:"y");
  ignore (Client.Tx.create_edge tx ~src:"y" ~dst:"z");
  Client.Tx.set_vertex_prop tx ~vid:"x" ~key:"name" ~value:"ex";
  (match Client.commit client1 tx with Ok () -> () | Error e -> Alcotest.failf "%s" e);
  (* a deletion too, so the restored graph has multi-version state *)
  let tx = Client.Tx.begin_ client1 in
  Client.Tx.delete_vertex tx "z";
  (match Client.commit client1 tx with Ok () -> () | Error e -> Alcotest.failf "%s" e);
  let image = Backup.dump c1 in
  Alcotest.(check bool) "nonempty image" true (String.length image > 50);
  let c2 = mk () in
  Backup.restore c2 image;
  Cluster.run_for c2 10_000.0;
  let client2 = Cluster.client c2 in
  (match
     Client.run_program client2 ~prog:"get_node" ~params:Progval.Null ~starts:[ "x" ] ()
   with
  | Ok (Progval.List [ s ]) ->
      Alcotest.(check int) "degree" 1 (Progval.to_int (Progval.assoc "degree" s));
      Alcotest.(check string) "prop" "ex"
        (Progval.to_str (Progval.assoc "name" (Progval.assoc "props" s)))
  | Ok v -> Alcotest.failf "unexpected %s" (Progval.to_string v)
  | Error e -> Alcotest.failf "restored read: %s" e);
  (* deleted vertex stays deleted on the restored cluster *)
  (match
     Client.run_program client2 ~prog:"get_node" ~params:Progval.Null ~starts:[ "z" ] ()
   with
  | Ok (Progval.List []) -> ()
  | Ok v -> Alcotest.failf "z should be dead: %s" (Progval.to_string v)
  | Error e -> Alcotest.failf "%s" e);
  (* and the restored cluster accepts new writes on top *)
  let tx = Client.Tx.begin_ client2 in
  ignore (Client.Tx.create_edge tx ~src:"x" ~dst:"y");
  match Client.commit client2 tx with
  | Ok () -> ()
  | Error e -> Alcotest.failf "post-restore write: %s" e

let test_restore_dimension_mismatch () =
  let c1 = Cluster.create Config.default in
  let image = Backup.dump c1 in
  let c3 =
    Cluster.create { Config.default with Config.n_gatekeepers = 3 }
  in
  Alcotest.(check bool) "mismatch refused" true
    (try
       Backup.restore c3 image;
       false
     with Invalid_argument _ -> true)

let suites =
  [
    ( "backup",
      [
        Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
        Alcotest.test_case "wire corrupt" `Quick test_wire_corrupt;
        Alcotest.test_case "vertex roundtrip" `Quick test_vertex_roundtrip;
        Alcotest.test_case "garbage rejected" `Quick test_decode_rejects_garbage;
        QCheck_alcotest.to_alcotest prop_vertex_roundtrip;
        Alcotest.test_case "cluster backup/restore" `Quick test_cluster_backup_restore;
        Alcotest.test_case "dimension mismatch" `Quick test_restore_dimension_mismatch;
      ] );
  ]
