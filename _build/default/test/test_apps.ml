(* Tests for the three applications: the TAO-style social network,
   CoinGraph, and the RoboBrain knowledge graph. *)

open Weaver_core
open Weaver_apps
module Programs = Weaver_programs.Std_programs

let mk_cluster () =
  let c = Cluster.create Config.default in
  Programs.Std.register_all (Cluster.registry c);
  c

let ok what = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" what e

let test_social_photo_acl () =
  let cluster = mk_cluster () in
  let s = Socialnet.create cluster in
  let alice = ok "alice" (Socialnet.add_user s ~name:"alice") in
  let bob = ok "bob" (Socialnet.add_user s ~name:"bob") in
  let carol = ok "carol" (Socialnet.add_user s ~name:"carol") in
  ok "friend ab" (Socialnet.befriend s ~user:alice ~friend_:bob);
  ok "friend ac" (Socialnet.befriend s ~user:alice ~friend_:carol);
  Alcotest.(check (list string)) "friends" (List.sort compare [ bob; carol ])
    (List.sort compare (ok "friends" (Socialnet.friends s ~user:alice)));
  (* Fig. 2: photo visible to bob only *)
  let photo = ok "photo" (Socialnet.post_photo s ~owner:alice ~visible_to:[ bob ]) in
  Alcotest.(check bool) "bob sees" true (ok "acl" (Socialnet.can_see s ~viewer:bob ~photo));
  Alcotest.(check bool) "carol blocked" false
    (ok "acl" (Socialnet.can_see s ~viewer:carol ~photo));
  Alcotest.(check int) "alice degree" 3 (ok "deg" (Socialnet.feed_degree s ~user:alice))

let test_coingraph_ingest_and_query () =
  let cluster = mk_cluster () in
  let cg = Coingraph.create cluster in
  let _blk = ok "ingest" (Coingraph.ingest_block cg ~height:42 ~txs:5 ()) in
  Alcotest.(check int) "tx count" 5 (ok "count" (Coingraph.block_tx_count cg ~height:42));
  (* render carries block + tx entries *)
  match ok "query" (Coingraph.block_query cg ~height:42) with
  | Progval.List entries ->
      Alcotest.(check int) "entries" 6 (List.length entries)
  | v -> Alcotest.failf "unexpected %s" (Progval.to_string v)

let test_coingraph_preload_and_taint () =
  let cluster = mk_cluster () in
  let cg = Coingraph.create cluster in
  let blk = Coingraph.preload_block cg ~height:1_000 in
  Cluster.run_for cluster 5_000.0;
  let tainted = ok "taint" (Coingraph.taint cg ~from:blk ~depth:2) in
  (* block -> txs -> addresses: everything within 2 hops is tainted *)
  let n_tx = Weaver_workloads.Blockchain.txs_in_block 1_000 in
  Alcotest.(check bool)
    (Printf.sprintf "taint covers block+txs+addrs (%d)" (List.length tainted))
    true
    (List.length tainted >= 1 + n_tx)

let test_robobrain_merge () =
  let cluster = mk_cluster () in
  let rb = Robobrain.create cluster in
  let mug = ok "mug" (Robobrain.add_concept rb ~name:"mug" ()) in
  let cup = ok "cup" (Robobrain.add_concept rb ~name:"cup" ()) in
  let kitchen = ok "kitchen" (Robobrain.add_concept rb ~name:"kitchen" ()) in
  let liquid = ok "liquid" (Robobrain.add_concept rb ~name:"liquid" ()) in
  ok "r1" (Robobrain.relate rb ~src:mug ~label:"found_in" ~dst:kitchen);
  ok "r2" (Robobrain.relate rb ~src:cup ~label:"holds" ~dst:liquid);
  (* merge duplicate concept 'cup' into 'mug' *)
  ok "merge" (Robobrain.merge_concepts rb ~keep:mug ~absorb:cup);
  let rels = List.sort compare (ok "rels" (Robobrain.relations rb ~concept:mug)) in
  Alcotest.(check (list (pair string string)))
    "mug has both relations"
    [ ("found_in", kitchen); ("holds", liquid) ]
    rels;
  (* the duplicate is gone *)
  match Robobrain.relations rb ~concept:cup with
  | Ok [] -> () (* deleted vertex: empty *)
  | Ok l -> Alcotest.failf "cup still has %d relations" (List.length l)
  | Error _ -> ()

let test_robobrain_star_query () =
  let cluster = mk_cluster () in
  let rb = Robobrain.create cluster in
  let mug =
    ok "mug" (Robobrain.add_concept rb ~name:"mug" ~attrs:[ ("kind", "object") ] ())
  in
  let table =
    ok "table" (Robobrain.add_concept rb ~name:"table" ~attrs:[ ("kind", "object") ] ())
  in
  let kitchen =
    ok "kitchen"
      (Robobrain.add_concept rb ~name:"kitchen" ~attrs:[ ("kind", "place") ] ())
  in
  ok "r1" (Robobrain.relate rb ~src:mug ~label:"found_in" ~dst:kitchen);
  ok "r2" (Robobrain.relate rb ~src:table ~label:"near" ~dst:mug);
  let matches =
    ok "star"
      (Robobrain.concepts_related_to rb
         ~centers:[ mug; table; kitchen ]
         ~center_attr:("kind", "object")
         ~nbr_attr:("kind", "place"))
  in
  (* only mug (object) has a place neighbour *)
  Alcotest.(check (list (pair string string))) "matches" [ (mug, kitchen) ] matches

let suites =
  [
    ( "apps",
      [
        Alcotest.test_case "social photo ACL" `Quick test_social_photo_acl;
        Alcotest.test_case "coingraph ingest/query" `Quick test_coingraph_ingest_and_query;
        Alcotest.test_case "coingraph preload/taint" `Quick test_coingraph_preload_and_taint;
        Alcotest.test_case "robobrain merge" `Quick test_robobrain_merge;
        Alcotest.test_case "robobrain star query" `Quick test_robobrain_star_query;
      ] );
  ]
