(* Tests for dynamic clock-synchronization-period adaptation (§3.5). *)

open Weaver_core
open Weaver_workloads
module Programs = Weaver_programs.Std_programs

let mk_cluster cfg =
  let c = Cluster.create cfg in
  Programs.Std.register_all (Cluster.registry c);
  c

let test_quiescent_backs_off () =
  let cfg = { Config.default with Config.adaptive_tau = true; Config.tau = 1_000.0 } in
  let c = mk_cluster cfg in
  (* no traffic at all: τ should grow well past its starting point *)
  Cluster.run_for c 2_000_000.0;
  let tau = Cluster.gk_tau c 0 in
  Alcotest.(check bool) (Printf.sprintf "backed off (%.0f)" tau) true (tau > 10_000.0)

let test_busy_tightens () =
  let cfg = { Config.default with Config.adaptive_tau = true; Config.tau = 50_000.0 } in
  let c = mk_cluster cfg in
  let rng = Weaver_util.Xrand.create ~seed:61 () in
  let g = Graphgen.uniform ~rng ~prefix:"at" ~vertices:200 ~edges:1_000 () in
  Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  let vertices = Array.of_list (Graphgen.vertex_ids g) in
  (* heavy traffic: τ should shrink far below the (bad) starting 50 ms *)
  ignore (Tao.Driver.run c ~vertices ~clients:40 ~duration:1_000_000.0 ());
  let tau = Cluster.gk_tau c 0 in
  Alcotest.(check bool) (Printf.sprintf "tightened (%.0f)" tau) true (tau < 10_000.0)

let test_fixed_tau_stays_fixed () =
  let cfg = { Config.default with Config.adaptive_tau = false; Config.tau = 2_000.0 } in
  let c = mk_cluster cfg in
  Cluster.run_for c 500_000.0;
  Alcotest.(check (float 1e-9)) "unchanged" 2_000.0 (Cluster.gk_tau c 0)

let test_adaptive_still_correct () =
  (* adaptation must not break ordering: the usual end-to-end flow works *)
  let cfg = { Config.default with Config.adaptive_tau = true } in
  let c = mk_cluster cfg in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  let a = Client.Tx.create_vertex tx ~id:"aa" () in
  let b = Client.Tx.create_vertex tx ~id:"bb" () in
  ignore (Client.Tx.create_edge tx ~src:a ~dst:b);
  (match Client.commit client tx with Ok () -> () | Error e -> Alcotest.failf "%s" e);
  match
    Client.run_program client ~prog:"reachable"
      ~params:(Progval.Assoc [ ("target", Progval.Str b) ])
      ~starts:[ a ] ()
  with
  | Ok (Progval.Bool true) -> ()
  | Ok v -> Alcotest.failf "unexpected %s" (Progval.to_string v)
  | Error e -> Alcotest.failf "%s" e

let suites =
  [
    ( "adaptive_tau",
      [
        Alcotest.test_case "quiescent backs off" `Quick test_quiescent_backs_off;
        Alcotest.test_case "busy tightens" `Quick test_busy_tightens;
        Alcotest.test_case "fixed stays fixed" `Quick test_fixed_tau_stays_fixed;
        Alcotest.test_case "correctness preserved" `Quick test_adaptive_still_correct;
      ] );
  ]
