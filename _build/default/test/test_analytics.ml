(* Tests for the store journal, whole-graph analytics, the cluster report,
   and the vertex-history feature. *)

open Weaver_core
open Weaver_workloads
module Store = Weaver_store.Store
module Programs = Weaver_programs.Std_programs

let mk_cluster () =
  let c = Cluster.create Config.default in
  Programs.Std.register_all (Cluster.registry c);
  c

let ok = function Ok v -> v | Error e -> Alcotest.failf "%s" e

let test_journal_records_commits () =
  let s = Store.create () in
  let tx = Store.Tx.begin_ s in
  Store.Tx.put tx "a" 1;
  Store.Tx.put tx "b" 2;
  ignore (Store.Tx.commit tx);
  let tx = Store.Tx.begin_ s in
  Store.Tx.delete tx "a";
  ignore (Store.Tx.commit tx);
  Alcotest.(check int) "two entries" 2 (Store.journal_length s);
  Alcotest.(check (list (pair string (option int))))
    "first entry" [ ("a", Some 1); ("b", Some 2) ] (Store.journal_entry s 0);
  Alcotest.(check (list (pair string (option int))))
    "second entry" [ ("a", None) ] (Store.journal_entry s 1)

let test_journal_skips_aborts () =
  let s = Store.create () in
  let t1 = Store.Tx.begin_ s in
  ignore (Store.Tx.get t1 "k");
  Store.Tx.put t1 "k" 1;
  let t2 = Store.Tx.begin_ s in
  Store.Tx.put t2 "k" 2;
  ignore (Store.Tx.commit t2);
  (match Store.Tx.commit t1 with Error _ -> () | Ok () -> Alcotest.fail "t1 must abort");
  Alcotest.(check int) "only the commit journaled" 1 (Store.journal_length s)

let test_journal_replay_equivalence () =
  let s = Store.create () in
  for i = 0 to 20 do
    let tx = Store.Tx.begin_ s in
    let k = "k" ^ string_of_int (i mod 5) in
    if i mod 4 = 3 then Store.Tx.delete tx k else Store.Tx.put tx k i;
    ignore (Store.Tx.commit tx)
  done;
  let r = Store.replay s in
  Alcotest.(check int) "live counts equal" (Store.length s) (Store.length r);
  for i = 0 to 4 do
    let k = "k" ^ string_of_int i in
    Alcotest.(check (option int)) k (Store.get_now s k) (Store.get_now r k)
  done

let test_analytics_global_degree_dist () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let g = Graphgen.star ~prefix:"ad" ~leaves:6 () in
  Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  Alcotest.(check int) "vertex census" 7 (List.length (Analytics.all_vertices c));
  match ok (Analytics.run_all c client ~prog:"degree_dist" ~params:Progval.Null ~batch:3 ()) with
  | Progval.Assoc hist ->
      let count d =
        Progval.to_int (Option.value ~default:(Progval.Int 0) (List.assoc_opt d hist))
      in
      Alcotest.(check int) "hub" 1 (count "6");
      Alcotest.(check int) "leaves" 6 (count "0")
  | v -> Alcotest.failf "unexpected %s" (Progval.to_string v)

let test_analytics_global_edge_count () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let rng = Weaver_util.Xrand.create ~seed:91 () in
  let g = Graphgen.uniform ~rng ~prefix:"ae" ~vertices:50 ~edges:300 () in
  Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  match ok (Analytics.run_all c client ~prog:"count_edges" ~params:Progval.Null ~batch:7 ()) with
  | Progval.Int n -> Alcotest.(check int) "global edges" (List.length g.Graphgen.edges) n
  | v -> Alcotest.failf "unexpected %s" (Progval.to_string v)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_cluster_report () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"rep" ());
  ok (Client.commit client tx);
  let r = Cluster.report c in
  Alcotest.(check bool) "mentions commits" true (contains r "tx: committed 1");
  Alcotest.(check bool) "mentions store" true (contains r "store:");
  Alcotest.(check bool) "mentions oracle" true (contains r "oracle:")

let test_message_trace () =
  let c = mk_cluster () in
  Cluster.enable_trace c ~capacity:5_000;
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"tr" ());
  ok (Client.commit client tx);
  let entries = Cluster.trace c in
  Alcotest.(check bool) "bounded" true (List.length entries <= 5_000);
  Alcotest.(check bool) "captured a Tx_req" true
    (List.exists (fun (_, _, _, m) -> contains m "Tx_req") entries);
  Alcotest.(check bool) "captured NOPs" true
    (List.exists (fun (_, _, _, m) -> contains m "Shard_tx") entries);
  (* timestamps nondecreasing *)
  let times = List.map (fun (t, _, _, _) -> t) entries in
  let rec mono = function a :: (b :: _ as r) -> a <= b && mono r | _ -> true in
  Alcotest.(check bool) "trace ordered" true (mono times);
  Cluster.clear_trace c;
  Alcotest.(check int) "cleared" 0 (List.length (Cluster.trace c));
  Cluster.disable_trace c

let suites =
  [
    ( "journal",
      [
        Alcotest.test_case "records commits" `Quick test_journal_records_commits;
        Alcotest.test_case "skips aborts" `Quick test_journal_skips_aborts;
        Alcotest.test_case "replay equivalence" `Quick test_journal_replay_equivalence;
      ] );
    ( "analytics",
      [
        Alcotest.test_case "global degree dist" `Quick test_analytics_global_degree_dist;
        Alcotest.test_case "global edge count" `Quick test_analytics_global_edge_count;
        Alcotest.test_case "cluster report" `Quick test_cluster_report;
        Alcotest.test_case "message trace" `Quick test_message_trace;
      ] );
  ]
