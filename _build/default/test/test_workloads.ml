(* Tests for graph generators, the TAO mix, loading paths, and the
   synthetic blockchain. *)

open Weaver_workloads
open Weaver_core
module Xrand = Weaver_util.Xrand
module Programs = Weaver_programs.Std_programs

let mk_cluster ?(cfg = Config.default) () =
  let c = Cluster.create cfg in
  Programs.Std.register_all (Cluster.registry c);
  c

let test_uniform_gen () =
  let rng = Xrand.create ~seed:1 () in
  let g = Graphgen.uniform ~rng ~vertices:100 ~edges:400 () in
  Alcotest.(check int) "vertices" 100 g.Graphgen.n_vertices;
  Alcotest.(check bool) "edges nonempty" true (List.length g.Graphgen.edges > 300);
  List.iter
    (fun (s, d) ->
      Alcotest.(check bool) "in range" true (s >= 0 && s < 100 && d >= 0 && d < 100);
      Alcotest.(check bool) "no self loop" true (s <> d))
    g.Graphgen.edges;
  (* no duplicates *)
  let uniq = List.sort_uniq compare g.Graphgen.edges in
  Alcotest.(check int) "dedup" (List.length g.Graphgen.edges) (List.length uniq)

let test_rmat_skew () =
  let rng = Xrand.create ~seed:2 () in
  let g = Graphgen.rmat ~rng ~vertices:256 ~edges:2000 () in
  let deg = Array.make 256 0 in
  List.iter (fun (s, _) -> deg.(s) <- deg.(s) + 1) g.Graphgen.edges;
  let sorted = Array.copy deg in
  Array.sort (fun a b -> compare b a) sorted;
  let top10 = Array.fold_left ( + ) 0 (Array.sub sorted 0 26) in
  let total = Array.fold_left ( + ) 0 deg in
  Alcotest.(check bool) "rmat head-heavy" true
    (float_of_int top10 /. float_of_int total > 0.25)

let test_preferential () =
  let rng = Xrand.create ~seed:3 () in
  let g = Graphgen.preferential ~rng ~vertices:200 ~out_degree:3 () in
  Alcotest.(check bool) "enough edges" true (List.length g.Graphgen.edges > 400);
  let indeg = Array.make 200 0 in
  List.iter (fun (_, d) -> indeg.(d) <- indeg.(d) + 1) g.Graphgen.edges;
  let max_in = Array.fold_left max 0 indeg in
  Alcotest.(check bool) "hubs emerge" true (max_in > 8)

let test_chain_star () =
  let chain = Graphgen.chain ~vertices:5 () in
  Alcotest.(check int) "chain edges" 4 (List.length chain.Graphgen.edges);
  let star = Graphgen.star ~leaves:7 () in
  Alcotest.(check int) "star edges" 7 (List.length star.Graphgen.edges);
  Alcotest.(check bool) "star from hub" true
    (List.for_all (fun (s, _) -> s = 0) star.Graphgen.edges)

let test_adjacency () =
  let g = Graphgen.chain ~prefix:"c" ~vertices:3 () in
  let adj = Graphgen.adjacency g in
  Alcotest.(check (list string)) "c0 -> c1" [ "c1" ] (List.assoc "c0" adj);
  Alcotest.(check (list string)) "c2 -> ()" [] (List.assoc "c2" adj)

let test_tao_mix_fractions () =
  let rng = Xrand.create ~seed:4 () in
  let vertices = Array.init 100 (fun i -> "v" ^ string_of_int i) in
  let n = 100_000 in
  let ops = List.init n (fun _ -> Tao.gen_op ~rng ~vertices ()) in
  let counts = Tao.mix_counts ops in
  let frac name =
    float_of_int (Option.value ~default:0 (List.assoc_opt name counts))
    /. float_of_int n
  in
  (* Table 1 targets: reads 99.8% of which 59.4/11.7/28.9; writes 0.2% *)
  Alcotest.(check bool) "get_edges ~59.3%" true (abs_float (frac "get_edges" -. 0.593) < 0.01);
  Alcotest.(check bool) "count_edges ~11.7%" true
    (abs_float (frac "count_edges" -. 0.1168) < 0.01);
  Alcotest.(check bool) "get_node ~28.8%" true (abs_float (frac "get_node" -. 0.2884) < 0.01);
  let writes = frac "create_edge" +. frac "delete_edge" in
  Alcotest.(check bool) "writes ~0.2%" true (abs_float (writes -. 0.002) < 0.002)

let test_tao_read_fraction_override () =
  let rng = Xrand.create ~seed:5 () in
  let vertices = Array.init 50 (fun i -> "v" ^ string_of_int i) in
  let ops = List.init 20_000 (fun _ -> Tao.gen_op ~rng ~vertices ~read_fraction:0.75 ()) in
  let counts = Tao.mix_counts ops in
  let writes =
    Option.value ~default:0 (List.assoc_opt "create_edge" counts)
    + Option.value ~default:0 (List.assoc_opt "delete_edge" counts)
  in
  let frac = float_of_int writes /. 20_000.0 in
  Alcotest.(check bool) "25% writes" true (abs_float (frac -. 0.25) < 0.02)

let test_bulk_load_and_query () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let g = Graphgen.chain ~prefix:"bl" ~vertices:12 () in
  (match Loader.bulk_load c client ~batch:8 g with
  | Ok txs -> Alcotest.(check bool) "several txs" true (txs >= 3)
  | Error e -> Alcotest.failf "bulk load: %s" e);
  let r =
    Client.run_program client ~prog:"reachable"
      ~params:(Progval.Assoc [ ("target", Progval.Str "bl11") ])
      ~starts:[ "bl0" ] ()
  in
  Alcotest.(check bool) "chain reachable end to end" true
    (match r with Ok (Progval.Bool b) -> b | _ -> false)

let test_fast_install_and_query () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let rng = Xrand.create ~seed:7 () in
  let g = Graphgen.uniform ~rng ~prefix:"fi" ~vertices:50 ~edges:200 () in
  Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  (* the graph is resident and queryable *)
  let total_resident =
    List.init (Cluster.config c).Config.n_shards (fun s -> Cluster.shard_resident c s)
    |> List.fold_left ( + ) 0
  in
  Alcotest.(check int) "all resident" 50 total_resident;
  let count =
    Client.run_program client ~prog:"count_edges" ~params:Progval.Null
      ~starts:(Graphgen.vertex_ids g) ()
  in
  (match count with
  | Ok (Progval.Int n) ->
      Alcotest.(check int) "edge count matches" (List.length g.Graphgen.edges) n
  | _ -> Alcotest.fail "count failed");
  (* and writes on top of the preloaded graph work *)
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_edge tx ~src:"fi0" ~dst:"fi1");
  match Client.commit client tx with
  | Ok () -> ()
  | Error e -> Alcotest.failf "post-install write: %s" e

let test_blockchain_txs_curve () =
  Alcotest.(check int) "genesis" 1 (Blockchain.txs_in_block 0);
  Alcotest.(check int) "calibration point" 1795 (Blockchain.txs_in_block 350_000);
  Alcotest.(check bool) "monotone" true
    (Blockchain.txs_in_block 100_000 <= Blockchain.txs_in_block 200_000
    && Blockchain.txs_in_block 200_000 <= Blockchain.txs_in_block 300_000)

let test_blockchain_install_and_render () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let rng = Xrand.create ~seed:8 () in
  let blk = Blockchain.install_block c ~rng ~height:10_000 () in
  Cluster.run_for c 5_000.0;
  let expected_tx = Blockchain.txs_in_block 10_000 in
  match
    Client.run_program client ~prog:"block_render" ~params:Progval.Null ~starts:[ blk ] ()
  with
  | Ok (Progval.List entries) ->
      let txs =
        List.filter (fun e -> Progval.assoc_opt "tx" e <> None) entries
      in
      Alcotest.(check int) "all txs rendered" expected_tx (List.length txs);
      let blocks = List.filter (fun e -> Progval.assoc_opt "block" e <> None) entries in
      Alcotest.(check int) "one block entry" 1 (List.length blocks)
  | Ok v -> Alcotest.failf "unexpected %s" (Progval.to_string v)
  | Error e -> Alcotest.failf "render: %s" e

let test_tao_driver_smoke () =
  let c = mk_cluster () in
  let rng = Xrand.create ~seed:9 () in
  let g = Graphgen.uniform ~rng ~prefix:"td" ~vertices:60 ~edges:240 () in
  Loader.fast_install c g;
  let vertices = Array.of_list (Graphgen.vertex_ids g) in
  let r = Tao.Driver.run c ~vertices ~clients:8 ~duration:200_000.0 () in
  Alcotest.(check bool) "ops completed" true (r.Tao.Driver.completed > 50);
  Alcotest.(check bool) "throughput positive" true (r.Tao.Driver.throughput > 0.0);
  Alcotest.(check bool) "read latencies collected" true
    (Weaver_util.Stats.count r.Tao.Driver.read_latencies > 0)

let suites =
  [
    ( "workloads.gen",
      [
        Alcotest.test_case "uniform" `Quick test_uniform_gen;
        Alcotest.test_case "rmat skew" `Quick test_rmat_skew;
        Alcotest.test_case "preferential" `Quick test_preferential;
        Alcotest.test_case "chain/star" `Quick test_chain_star;
        Alcotest.test_case "adjacency" `Quick test_adjacency;
      ] );
    ( "workloads.tao",
      [
        Alcotest.test_case "table1 mix" `Quick test_tao_mix_fractions;
        Alcotest.test_case "read fraction override" `Quick test_tao_read_fraction_override;
        Alcotest.test_case "driver smoke" `Quick test_tao_driver_smoke;
      ] );
    ( "workloads.load",
      [
        Alcotest.test_case "bulk load" `Quick test_bulk_load_and_query;
        Alcotest.test_case "fast install" `Quick test_fast_install_and_query;
      ] );
    ( "workloads.blockchain",
      [
        Alcotest.test_case "tx curve" `Quick test_blockchain_txs_curve;
        Alcotest.test_case "install and render" `Quick test_blockchain_install_and_render;
      ] );
  ]
