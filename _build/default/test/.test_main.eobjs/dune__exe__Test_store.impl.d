test/test_store.ml: Alcotest Gen Hashtbl List QCheck QCheck_alcotest Store Weaver_store
