test/test_sim.ml: Alcotest Engine Gen Hashtbl List Net QCheck QCheck_alcotest Weaver_sim
