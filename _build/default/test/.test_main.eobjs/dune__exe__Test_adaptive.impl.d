test/test_adaptive.ml: Alcotest Array Client Cluster Config Graphgen Loader Printf Progval Tao Weaver_core Weaver_programs Weaver_util Weaver_workloads
