test/test_chaos.ml: Alcotest Array Client Cluster Config List Printf Progval Result Runtime Weaver_core Weaver_graph Weaver_programs Weaver_store Weaver_util
