test/test_serializability.ml: Alcotest Client Cluster Config List Printf Progval Weaver_core Weaver_graph Weaver_programs
