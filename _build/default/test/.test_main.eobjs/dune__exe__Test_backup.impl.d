test/test_backup.ml: Alcotest Backup Client Cluster Config List Progval QCheck QCheck_alcotest String Weaver_core Weaver_graph Weaver_programs Weaver_util Weaver_vclock
