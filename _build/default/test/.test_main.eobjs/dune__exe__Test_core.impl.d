test/test_core.ml: Alcotest Client Cluster Config List Printf Progval Runtime String Weaver_core Weaver_graph Weaver_programs Weaver_vclock
