test/test_oracle.ml: Alcotest Array Format Gen List Option Oracle QCheck QCheck_alcotest Weaver_oracle Weaver_vclock
