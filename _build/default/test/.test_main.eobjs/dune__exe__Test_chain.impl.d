test/test_chain.ml: Alcotest Array Chain Client Cluster Format Gen List Oracle Printf Progval QCheck QCheck_alcotest Weaver_core Weaver_oracle Weaver_programs Weaver_vclock
