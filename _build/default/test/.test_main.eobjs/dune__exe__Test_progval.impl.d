test/test_progval.ml: Alcotest Config List Nodeprog Progval Runtime Txop Weaver_core Weaver_programs Weaver_vclock
