test/test_util.ml: Alcotest Array Float Gen Heap Idgen List QCheck QCheck_alcotest Stats Weaver_util Xrand
