test/test_replica.ml: Alcotest Client Cluster Config List Progval Runtime Weaver_core Weaver_graph Weaver_programs Weaver_workloads
