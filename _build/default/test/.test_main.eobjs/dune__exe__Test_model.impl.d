test/test_model.ml: Array Client Cluster Config Hashtbl List Printf Progval QCheck QCheck_alcotest String Txop Weaver_core Weaver_programs Weaver_util
