test/test_partition.ml: Alcotest Array Fun Hashtbl List Partition Printf QCheck QCheck_alcotest Weaver_partition Weaver_util
