test/test_migration.ml: Alcotest Client Cluster Config Graphgen Hashtbl List Loader Printf Progval Rebalance Runtime String Weaver_core Weaver_graph Weaver_programs Weaver_workloads
