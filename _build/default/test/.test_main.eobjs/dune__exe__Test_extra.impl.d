test/test_extra.ml: Alcotest Array Client Cluster Config Graphgen Hashtbl List Loader Progval Result Runtime String Tao Weaver_core Weaver_partition Weaver_programs Weaver_util Weaver_workloads
