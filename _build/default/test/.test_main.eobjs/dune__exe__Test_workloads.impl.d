test/test_workloads.ml: Alcotest Array Blockchain Client Cluster Config Graphgen List Loader Option Progval Tao Weaver_core Weaver_programs Weaver_util Weaver_workloads
