test/test_cluster.ml: Alcotest Format List Membership Weaver_cluster
