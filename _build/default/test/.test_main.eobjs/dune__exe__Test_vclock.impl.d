test/test_vclock.ml: Alcotest Array Format QCheck QCheck_alcotest String Vclock Weaver_util Weaver_vclock
