test/test_programs2.ml: Alcotest Client Cluster Config Gen List Option Progval QCheck QCheck_alcotest Weaver_core Weaver_graph Weaver_programs Weaver_util
