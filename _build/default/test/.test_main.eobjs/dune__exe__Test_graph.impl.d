test/test_graph.ml: Alcotest Gen List Mgraph QCheck QCheck_alcotest Weaver_graph Weaver_vclock
