test/test_apps.ml: Alcotest Cluster Coingraph Config List Printf Progval Robobrain Socialnet Weaver_apps Weaver_core Weaver_programs Weaver_workloads
