test/test_analytics.ml: Alcotest Analytics Client Cluster Config Graphgen List Loader Option Progval String Weaver_core Weaver_programs Weaver_store Weaver_util Weaver_workloads
