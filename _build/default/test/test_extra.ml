(* Additional integration coverage: placement-aware loading, workload skew,
   multi-failure recovery, failure during traversals, and client timeout
   behaviour. *)

open Weaver_core
open Weaver_workloads
module Xrand = Weaver_util.Xrand
module Programs = Weaver_programs.Std_programs

let mk_cluster ?(cfg = Config.default) () =
  let c = Cluster.create cfg in
  Programs.Std.register_all (Cluster.registry c);
  c

let ok = function Ok v -> v | Error e -> Alcotest.failf "%s" e

let test_install_with_assignment () =
  let cfg = { Config.default with Config.n_shards = 4 } in
  let c = mk_cluster ~cfg () in
  let g = Graphgen.chain ~prefix:"pa" ~vertices:8 () in
  (* place everything on shard 3, against the hash default *)
  let assign : Weaver_partition.Partition.assignment = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace assign v 3) (Graphgen.vertex_ids g);
  Loader.fast_install_with_assignment c assign g;
  Cluster.run_for c 5_000.0;
  List.iter
    (fun v ->
      Alcotest.(check int) (v ^ " placed on 3") 3 (Cluster.shard_of_vertex c v))
    (Graphgen.vertex_ids g);
  Alcotest.(check int) "all resident on shard 3" 8 (Cluster.shard_resident c 3);
  (* traversal over the single shard still works *)
  let client = Cluster.client c in
  let r =
    ok
      (Client.run_program client ~prog:"reachable"
         ~params:(Progval.Assoc [ ("target", Progval.Str "pa7") ])
         ~starts:[ "pa0" ] ())
  in
  Alcotest.(check bool) "reachable" true (Progval.to_bool r)

let test_tao_zipf_skew () =
  let rng = Xrand.create ~seed:41 () in
  let vertices = Array.init 1000 (fun i -> "v" ^ string_of_int i) in
  let hot = ref 0 and n = 20_000 in
  for _ = 1 to n do
    match Tao.gen_op ~rng ~vertices ~theta:0.95 () with
    | Tao.Get_edges v | Tao.Count_edges v | Tao.Get_node v | Tao.Delete_edge v ->
        if int_of_string (String.sub v 1 (String.length v - 1)) < 100 then incr hot
    | Tao.Create_edge (v, _) ->
        if int_of_string (String.sub v 1 (String.length v - 1)) < 100 then incr hot
  done;
  Alcotest.(check bool) "skewed towards head" true
    (float_of_int !hot /. float_of_int n > 0.5)

let test_two_shard_failures () =
  let cfg = { Config.default with Config.n_shards = 3 } in
  let c = mk_cluster ~cfg () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  for i = 0 to 11 do
    ignore (Client.Tx.create_vertex tx ~id:("m" ^ string_of_int i) ())
  done;
  ok (Client.commit client tx);
  Cluster.run_for c 10_000.0;
  Cluster.kill_shard c 0;
  Cluster.kill_shard c 1;
  Cluster.run_for c 500_000.0;
  Alcotest.(check bool) "recovered both" true ((Cluster.counters c).Runtime.recoveries >= 2);
  (* every vertex is still readable after the double failure *)
  for i = 0 to 11 do
    match
      Client.run_program client ~prog:"get_node" ~params:Progval.Null
        ~starts:[ "m" ^ string_of_int i ] ()
    with
    | Ok (Progval.List [ _ ]) -> ()
    | Ok v -> Alcotest.failf "m%d: %s" i (Progval.to_string v)
    | Error e -> Alcotest.failf "m%d: %s" i e
  done

let test_shard_failure_during_traversal () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let g = Graphgen.chain ~prefix:"ft" ~vertices:30 () in
  ok (Result.map ignore (Loader.bulk_load c client g));
  (* kill a shard, then immediately issue a traversal: the client retries
     until the replacement serves it *)
  Cluster.kill_shard c 1;
  let result = ref None in
  Client.run_program_async client ~prog:"reachable"
    ~params:(Progval.Assoc [ ("target", Progval.Str "ft29") ])
    ~starts:[ "ft0" ]
    ~on_result:(fun r -> result := Some r)
    ();
  Cluster.run_for c 3_000_000.0;
  (match !result with
  | Some (Ok (Progval.Bool true)) -> ()
  | Some (Ok v) -> Alcotest.failf "wrong result %s" (Progval.to_string v)
  | Some (Error e) -> Alcotest.failf "traversal failed: %s" e
  | None -> Alcotest.fail "traversal never completed");
  Alcotest.(check bool) "epoch advanced" true (Cluster.epoch c >= 1)

let test_client_timeout_without_recovery () =
  (* failure detection far in the future: a killed gatekeeper means client
     requests to it genuinely time out *)
  let cfg =
    { Config.default with Config.n_gatekeepers = 1; Config.failure_timeout = 1e9 }
  in
  let c = mk_cluster ~cfg () in
  let client = Cluster.client c in
  Client.set_timeout client 100_000.0;
  Cluster.kill_gatekeeper c 0;
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ());
  match Client.commit client tx with
  | Error "timeout" -> ()
  | Error e -> Alcotest.failf "expected timeout, got %s" e
  | Ok () -> Alcotest.fail "commit to a dead gatekeeper succeeded"

let test_queue_depths_drain () =
  let c = mk_cluster () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"qd" ());
  ok (Client.commit client tx);
  Cluster.run_for c 50_000.0;
  (* NOPs keep flowing but queues must not grow unboundedly: the event
     loop drains them as soon as ordering is decidable *)
  for s = 0 to (Cluster.config c).Config.n_shards - 1 do
    Array.iter
      (fun d -> Alcotest.(check bool) "queue bounded" true (d < 64))
      (Cluster.shard_queue_depths c s)
  done

let test_historical_preload_snapshot () =
  (* the preloaded zero-stamp state is visible at any later snapshot *)
  let c = mk_cluster () in
  let g = Graphgen.star ~prefix:"hs" ~leaves:4 () in
  Loader.fast_install c g;
  Cluster.run_for c 10_000.0;
  let snap = Cluster.gk_clock c 0 in
  let client = Cluster.client c in
  match
    Client.run_program client ~prog:"count_edges" ~params:Progval.Null ~starts:[ "hs0" ]
      ~at:snap ()
  with
  | Ok (Progval.Int 4) -> ()
  | Ok v -> Alcotest.failf "unexpected %s" (Progval.to_string v)
  | Error e -> Alcotest.failf "%s" e

let suites =
  [
    ( "extra",
      [
        Alcotest.test_case "install with assignment" `Quick test_install_with_assignment;
        Alcotest.test_case "tao zipf skew" `Quick test_tao_zipf_skew;
        Alcotest.test_case "two shard failures" `Quick test_two_shard_failures;
        Alcotest.test_case "failure during traversal" `Quick
          test_shard_failure_during_traversal;
        Alcotest.test_case "client timeout" `Quick test_client_timeout_without_recovery;
        Alcotest.test_case "queues drain" `Quick test_queue_depths_drain;
        Alcotest.test_case "historical preload" `Quick test_historical_preload_snapshot;
      ] );
  ]
