(* Tests for cluster membership and failure detection. *)

open Weaver_cluster

let role = Alcotest.testable (fun fmt -> function
  | Membership.Gatekeeper -> Format.pp_print_string fmt "GK"
  | Membership.Shard -> Format.pp_print_string fmt "Shard") ( = )

let test_register_and_live () =
  let m = Membership.create () in
  Membership.register m ~id:0 ~role:Membership.Gatekeeper ~now:0.0;
  Membership.register m ~id:1 ~role:Membership.Gatekeeper ~now:0.0;
  Membership.register m ~id:10 ~role:Membership.Shard ~now:0.0;
  Alcotest.(check (list int)) "gks" [ 0; 1 ] (Membership.live m ~role:Membership.Gatekeeper);
  Alcotest.(check (list int)) "shards" [ 10 ] (Membership.live m ~role:Membership.Shard);
  Alcotest.(check bool) "alive" true (Membership.is_alive m ~id:0);
  Alcotest.(check bool) "unknown not alive" false (Membership.is_alive m ~id:99)

let test_failure_detection () =
  let m = Membership.create () in
  Membership.register m ~id:0 ~role:Membership.Gatekeeper ~now:0.0;
  Membership.register m ~id:1 ~role:Membership.Shard ~now:0.0;
  Membership.heartbeat m ~id:0 ~now:500.0;
  (* id 1 last heartbeat at 0, timeout 300 at t=600 → failed *)
  let failed = Membership.detect_failures m ~now:600.0 ~timeout:300.0 in
  Alcotest.(check (list (pair int role))) "shard failed" [ (1, Membership.Shard) ] failed;
  Alcotest.(check bool) "id1 dead" false (Membership.is_alive m ~id:1);
  Alcotest.(check bool) "id0 alive" true (Membership.is_alive m ~id:0);
  (* second call reports nothing new *)
  Alcotest.(check int) "no repeat" 0
    (List.length (Membership.detect_failures m ~now:700.0 ~timeout:300.0))

let test_heartbeat_after_failure_ignored () =
  let m = Membership.create () in
  Membership.register m ~id:5 ~role:Membership.Shard ~now:0.0;
  ignore (Membership.detect_failures m ~now:1000.0 ~timeout:100.0);
  Membership.heartbeat m ~id:5 ~now:1001.0;
  Alcotest.(check bool) "still dead" false (Membership.is_alive m ~id:5);
  (* re-registration revives *)
  Membership.register m ~id:5 ~role:Membership.Shard ~now:1002.0;
  Alcotest.(check bool) "revived" true (Membership.is_alive m ~id:5)

let test_epoch_bumps () =
  let m = Membership.create () in
  Alcotest.(check int) "initial" 0 (Membership.epoch m);
  Alcotest.(check int) "bumped" 1 (Membership.bump_epoch m);
  Alcotest.(check int) "bumped again" 2 (Membership.bump_epoch m);
  Alcotest.(check int) "persistent" 2 (Membership.epoch m)

let suites =
  [
    ( "cluster.membership",
      [
        Alcotest.test_case "register/live" `Quick test_register_and_live;
        Alcotest.test_case "failure detection" `Quick test_failure_detection;
        Alcotest.test_case "dead heartbeat ignored" `Quick test_heartbeat_after_failure_ignored;
        Alcotest.test_case "epochs" `Quick test_epoch_bumps;
      ] );
  ]
