(* Tests for the chain-replicated timeline oracle. *)

open Weaver_oracle
module Vclock = Weaver_vclock.Vclock

let vc origin clocks = Vclock.make ~epoch:0 ~origin clocks

let decision =
  Alcotest.testable
    (fun fmt -> function
      | Oracle.First_first -> Format.pp_print_string fmt "First_first"
      | Oracle.Second_first -> Format.pp_print_string fmt "Second_first")
    ( = )

let test_replicas_agree () =
  let c = Chain.create ~replicas:3 () in
  let a = vc 0 [| 1; 0 |] and b = vc 1 [| 0; 1 |] in
  let d = Chain.order c ~first:a ~second:b in
  Alcotest.check decision "head decision" Oracle.First_first d;
  for r = 0 to 2 do
    Alcotest.(check (option decision))
      (Printf.sprintf "replica %d agrees" r)
      (Some Oracle.First_first)
      (Chain.query c ~replica:r a b)
  done

let test_tail_read_default () =
  let c = Chain.create ~replicas:2 () in
  let a = vc 0 [| 1; 0 |] and b = vc 1 [| 0; 1 |] in
  ignore (Chain.order c ~first:b ~second:a);
  Alcotest.(check (option decision)) "tail read" (Some Oracle.Second_first)
    (Chain.query c a b)

let test_head_failure_promotes () =
  let c = Chain.create ~replicas:3 () in
  let a = vc 0 [| 1; 0 |] and b = vc 1 [| 0; 1 |] in
  ignore (Chain.order c ~first:a ~second:b);
  Chain.kill c 0;
  Alcotest.(check int) "two live" 2 (Chain.live_count c);
  (* the promoted head preserves the decision and keeps serving *)
  Alcotest.(check (option decision)) "decision survives" (Some Oracle.First_first)
    (Chain.query c ~replica:1 a b);
  let x = vc 0 [| 5; 0 |] and y = vc 1 [| 0; 5 |] in
  Alcotest.check decision "new decisions post-failure" Oracle.First_first
    (Chain.order c ~first:x ~second:y);
  Alcotest.(check (option decision)) "replicated to tail" (Some Oracle.First_first)
    (Chain.query c ~replica:2 x y)

let test_mid_chain_failure () =
  let c = Chain.create ~replicas:3 () in
  let a = vc 0 [| 1; 0 |] and b = vc 1 [| 0; 1 |] in
  Chain.kill c 1;
  ignore (Chain.order c ~first:a ~second:b);
  Alcotest.(check (option decision)) "head has it" (Some Oracle.First_first)
    (Chain.query c ~replica:0 a b);
  Alcotest.(check (option decision)) "tail has it" (Some Oracle.First_first)
    (Chain.query c ~replica:2 a b);
  Alcotest.check_raises "dead replica rejects reads"
    (Invalid_argument "Chain.query: replica is dead") (fun () ->
      ignore (Chain.query c ~replica:1 a b))

let test_last_replica_protected () =
  let c = Chain.create ~replicas:2 () in
  Chain.kill c 0;
  Alcotest.check_raises "cannot kill last"
    (Invalid_argument "Chain.kill: last live replica") (fun () -> Chain.kill c 1)

let test_serialize_replicated () =
  let c = Chain.create ~replicas:3 () in
  let events =
    List.init 4 (fun i ->
        let clocks = Array.make 4 0 in
        clocks.(i) <- 1;
        vc i clocks)
  in
  let sorted = Chain.serialize c events in
  Alcotest.(check int) "all events" 4 (List.length sorted);
  (* adjacent pairs are ordered identically on every replica *)
  let rec pairs = function
    | x :: (y :: _ as rest) -> (x, y) :: pairs rest
    | _ -> []
  in
  List.iter
    (fun (x, y) ->
      for r = 0 to 2 do
        Alcotest.(check (option decision))
          (Printf.sprintf "replica %d pair" r)
          (Some Oracle.First_first)
          (Chain.query c ~replica:r x y)
      done)
    (pairs sorted)

let test_gc_replicated () =
  let c = Chain.create ~replicas:2 () in
  let old1 = vc 0 [| 1; 0 |] and old2 = vc 1 [| 0; 1 |] in
  ignore (Chain.order c ~first:old1 ~second:old2);
  let removed = Chain.gc c ~watermark:(vc 0 [| 9; 9 |]) in
  Alcotest.(check int) "removed" 2 removed

let prop_replicas_never_disagree =
  QCheck.Test.make ~name:"replicas never disagree after random workloads" ~count:100
    QCheck.(list_of_size Gen.(0 -- 30) (pair (int_bound 5) (int_bound 5)))
    (fun pairs ->
      let c = Chain.create ~replicas:3 () in
      let events =
        Array.init 6 (fun i ->
            let clocks = Array.make 6 0 in
            clocks.(i) <- 1;
            vc i clocks)
      in
      List.iter
        (fun (i, j) ->
          if i <> j then ignore (Chain.order c ~first:events.(i) ~second:events.(j)))
        pairs;
      let ok = ref true in
      for i = 0 to 5 do
        for j = 0 to 5 do
          if i <> j then begin
            let answers =
              List.init 3 (fun r -> Chain.query c ~replica:r events.(i) events.(j))
            in
            match answers with
            | [ a; b; c' ] -> if not (a = b && b = c') then ok := false
            | _ -> ok := false
          end
        done
      done;
      !ok)

(* end-to-end: a whole deployment running on a chain-replicated oracle,
   surviving the head's failure mid-workload *)
let test_cluster_on_chain_oracle () =
  let cfg =
    { Weaver_core.Config.default with Weaver_core.Config.oracle_replicas = 3 }
  in
  let c = Weaver_core.Cluster.create cfg in
  Weaver_programs.Std_programs.Std.register_all (Weaver_core.Cluster.registry c);
  let open Weaver_core in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"oc" ());
  (match Client.commit client tx with Ok () -> () | Error e -> Alcotest.failf "%s" e);
  Alcotest.(check int) "three live" 3 (Cluster.oracle_live_replicas c);
  Cluster.kill_oracle_replica c 0;
  Alcotest.(check int) "two live" 2 (Cluster.oracle_live_replicas c);
  (* concurrent writers force reactive ordering through the promoted head *)
  let c1 = Cluster.client c and c2 = Cluster.client c in
  let r1 = ref None and r2 = ref None in
  let mk cl =
    let tx = Client.Tx.begin_ cl in
    Client.Tx.set_vertex_prop tx ~vid:"oc" ~key:"k" ~value:"v";
    tx
  in
  Client.commit_async c1 (mk c1) ~on_result:(fun r -> r1 := Some r);
  Client.commit_async c2 (mk c2) ~on_result:(fun r -> r2 := Some r);
  Cluster.run_for c 100_000.0;
  Alcotest.(check bool) "at least one commits" true
    (!r1 = Some (Ok ()) || !r2 = Some (Ok ()));
  match
    Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ "oc" ] ()
  with
  | Ok (Progval.List [ _ ]) -> ()
  | Ok v -> Alcotest.failf "unexpected %s" (Progval.to_string v)
  | Error e -> Alcotest.failf "%s" e

let suites =
  [
    ( "oracle.chain",
      [
        Alcotest.test_case "replicas agree" `Quick test_replicas_agree;
        Alcotest.test_case "tail read" `Quick test_tail_read_default;
        Alcotest.test_case "head failure" `Quick test_head_failure_promotes;
        Alcotest.test_case "mid-chain failure" `Quick test_mid_chain_failure;
        Alcotest.test_case "last replica protected" `Quick test_last_replica_protected;
        Alcotest.test_case "serialize replicated" `Quick test_serialize_replicated;
        Alcotest.test_case "gc replicated" `Quick test_gc_replicated;
        QCheck_alcotest.to_alcotest prop_replicas_never_disagree;
        Alcotest.test_case "cluster on chain oracle" `Quick test_cluster_on_chain_oracle;
      ] );
  ]
