bench/main.mli:
