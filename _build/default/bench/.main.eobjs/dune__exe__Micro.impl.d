bench/micro.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Printf Staged Test Time Toolkit Weaver_graph Weaver_oracle Weaver_store Weaver_util Weaver_vclock
