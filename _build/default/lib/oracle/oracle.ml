module Vclock = Weaver_vclock.Vclock

type decision = First_first | Second_first

type node = {
  vc : Vclock.t;
  succs : (string, unit) Hashtbl.t; (* explicit happens-before edges *)
}

type t = {
  events : (string, node) Hashtbl.t;
  edge_sources : (string, unit) Hashtbl.t;
      (* events with ≥1 explicit out-edge: the only useful targets of a
         vclock-implied hop, which keeps reachability searches linear in
         the number of *ordered* events rather than all events *)
  reach_memo : (string, bool) Hashtbl.t; (* positive reachability only *)
  mutable edges : int;
  mutable queries : int;
}

let create () =
  {
    events = Hashtbl.create 256;
    edge_sources = Hashtbl.create 64;
    reach_memo = Hashtbl.create 1024;
    edges = 0;
    queries = 0;
  }

let add_event t vc =
  let k = Vclock.key vc in
  if not (Hashtbl.mem t.events k) then
    Hashtbl.replace t.events k { vc; succs = Hashtbl.create 4 }

let event_count t = Hashtbl.length t.events
let edge_count t = t.edges
let queries_served t = t.queries

let node_exn t k = Hashtbl.find t.events k

(* Is there a happens-before chain from [a] to [b]? Chains mix explicit
   commitments with vector-clock-implied edges: from a visited node [x] we
   may hop to any registered event [y] with [x ≺ y] by vector clock. The
   search succeeds as soon as it reaches [b] itself or any node that
   vclock-precedes (or equals) [b]. Positive answers are memoised; they stay
   valid because the commitment graph only grows. *)
let reaches t a b =
  let ka = Vclock.key a and kb = Vclock.key b in
  let memo_key = ka ^ "|" ^ kb in
  match Hashtbl.find_opt t.reach_memo memo_key with
  | Some true -> true
  | _ ->
      let visited = Hashtbl.create 32 in
      let rec dfs k =
        if Hashtbl.mem visited k then false
        else begin
          Hashtbl.replace visited k ();
          match Hashtbl.find_opt t.events k with
          | None -> false
          | Some node ->
              let hits_target =
                String.equal k kb || Vclock.precedes node.vc b
              in
              if hits_target && not (String.equal k ka) then true
              else
                explicit_step node || implied_step node
        end
      and explicit_step node =
        Hashtbl.fold (fun k' () acc -> acc || dfs k') node.succs false
      and implied_step node =
        (* a vclock-implied hop is only useful onto an event that itself
           has explicit commitments: a hop to an edge-free event could only
           reach [b] by pure vclock order, which the target test on this
           node already covers via transitivity of ≺ *)
        Hashtbl.fold
          (fun k' () acc ->
            acc
            ||
            match Hashtbl.find_opt t.events k' with
            | Some n' ->
                (not (String.equal k' (Vclock.key node.vc)))
                && Vclock.precedes node.vc n'.vc
                && dfs k'
            | None -> false)
          t.edge_sources false
      in
      (* seed: target test must not fire on the start node itself *)
      let found =
        match Hashtbl.find_opt t.events ka with
        | None -> false
        | Some node -> explicit_step node || implied_step node
      in
      let found =
        found
        ||
        (* direct vclock order counts as reachability too *)
        match Vclock.compare_hb a b with Vclock.Before -> true | _ -> false
      in
      if found then Hashtbl.replace t.reach_memo memo_key true;
      found

let query t a b =
  t.queries <- t.queries + 1;
  add_event t a;
  add_event t b;
  match Vclock.compare_hb a b with
  | Vclock.Before -> Some First_first
  | Vclock.After -> Some Second_first
  | Vclock.Equal when String.equal (Vclock.key a) (Vclock.key b) -> Some First_first
  | Vclock.Equal | Vclock.Concurrent ->
      if reaches t a b then Some First_first
      else if reaches t b a then Some Second_first
      else None

let assign t ~before ~after =
  add_event t before;
  add_event t after;
  match query t before after with
  | Some First_first -> Ok () (* already holds *)
  | Some Second_first -> Error `Cycle
  | None ->
      let kb = Vclock.key before and ka = Vclock.key after in
      let n = node_exn t kb in
      if not (Hashtbl.mem n.succs ka) then begin
        Hashtbl.replace n.succs ka ();
        Hashtbl.replace t.edge_sources kb ();
        t.edges <- t.edges + 1
      end;
      Ok ()

(* atomic batch: tentatively add, rolling back every new edge on failure *)
let assign_all t pairs =
  let added = ref [] in
  let rollback () =
    List.iter
      (fun (kb, ka) ->
        match Hashtbl.find_opt t.events kb with
        | Some n when Hashtbl.mem n.succs ka ->
            Hashtbl.remove n.succs ka;
            t.edges <- t.edges - 1;
            if Hashtbl.length n.succs = 0 then Hashtbl.remove t.edge_sources kb
        | _ -> ())
      !added;
    (* conservatively drop memoised reachability that may rest on the
       rolled-back edges *)
    Hashtbl.reset t.reach_memo
  in
  let rec go = function
    | [] -> Ok ()
    | (before, after) :: rest -> (
        let kb = Vclock.key before and ka = Vclock.key after in
        let fresh =
          match Hashtbl.find_opt t.events kb with
          | Some n -> not (Hashtbl.mem n.succs ka)
          | None -> true
        in
        match assign t ~before ~after with
        | Ok () ->
            if fresh then added := (kb, ka) :: !added;
            go rest
        | Error `Cycle ->
            rollback ();
            Error `Cycle)
  in
  go pairs

let order t ~first ~second =
  match query t first second with
  | Some d -> d
  | None -> (
      match assign t ~before:first ~after:second with
      | Ok () -> First_first
      | Error `Cycle ->
          (* cannot happen: query found no order, so no reverse path exists *)
          assert false)

let serialize t events =
  let arr = Array.of_list events in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      ignore (order t ~first:arr.(i) ~second:arr.(j))
    done
  done;
  let cmp a b =
    if String.equal (Vclock.key a) (Vclock.key b) then 0
    else
      match query t a b with
      | Some First_first -> -1
      | Some Second_first -> 1
      | None -> assert false (* all pairs were just ordered *)
  in
  List.stable_sort cmp events

let gc t ~watermark =
  let doomed =
    Hashtbl.fold
      (fun k node acc ->
        if Vclock.precedes node.vc watermark then k :: acc else acc)
      t.events []
  in
  List.iter
    (fun k ->
      (match Hashtbl.find_opt t.events k with
      | Some node -> t.edges <- t.edges - Hashtbl.length node.succs
      | None -> ());
      Hashtbl.remove t.events k;
      Hashtbl.remove t.edge_sources k)
    doomed;
  (* drop dangling explicit edges and all memoised reachability *)
  Hashtbl.iter
    (fun src node ->
      List.iter
        (fun k ->
          if Hashtbl.mem node.succs k then begin
            Hashtbl.remove node.succs k;
            t.edges <- t.edges - 1
          end)
        doomed;
      if Hashtbl.length node.succs = 0 then Hashtbl.remove t.edge_sources src)
    t.events;
  Hashtbl.reset t.reach_memo;
  List.length doomed
