lib/oracle/chain.mli: Oracle Weaver_vclock
