lib/oracle/chain.ml: Array Option Oracle Weaver_vclock
