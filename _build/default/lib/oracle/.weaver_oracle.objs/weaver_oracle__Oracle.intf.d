lib/oracle/oracle.mli: Weaver_vclock
