lib/oracle/oracle.ml: Array Hashtbl List String Weaver_vclock
