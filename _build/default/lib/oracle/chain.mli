(** Chain replication of the timeline oracle (paper §3.4).

    The paper's timeline oracle is "a state machine that is chain
    replicated for fault tolerance. Updates to the event dependency graph
    ... occur at the head of the chain, while queries can execute on any
    copy of the graph", scaling reads to ~6M queries/s on a 12-server
    chain. This module reproduces that deployment shape: [replicas] copies
    of an {!Oracle.t}, updates applied at the head and propagated down the
    chain as a command log, reads served by any live replica (with
    freshness guaranteed for one's own writes by reading at the head when a
    session has in-flight updates — the classic chain-replication
    discipline where the tail serves linearizable reads; we expose both).

    Failures: killing a replica removes it from the chain; killing the head
    promotes its successor. Commands are re-propagated so surviving
    replicas converge. The whole chain shares one logical command history,
    so answers never contradict each other. *)

type t

val create : ?replicas:int -> unit -> t
(** A chain of [replicas] (default 3) oracle copies. *)

val replica_count : t -> int
val live_count : t -> int

val order : t -> first:Weaver_vclock.Vclock.t -> second:Weaver_vclock.Vclock.t -> Oracle.decision
(** Query-or-establish at the head, then propagate the decision down the
    chain (paper: updates occur at the head). *)

val query :
  t -> ?replica:int -> Weaver_vclock.Vclock.t -> Weaver_vclock.Vclock.t ->
  Oracle.decision option
(** Read at the given replica (default: the tail, which in chain
    replication serves linearizable reads). @raise Invalid_argument if the
    replica is dead or out of range. *)

val serialize : t -> Weaver_vclock.Vclock.t list -> Weaver_vclock.Vclock.t list
(** {!Oracle.serialize} at the head, propagated. *)

val gc : t -> watermark:Weaver_vclock.Vclock.t -> int
(** GC on every live replica; returns the head's removal count. *)

val kill : t -> int -> unit
(** Crash-stop replica [i]. Killing the head promotes the next live
    replica. At least one replica must survive. *)

val queries_served : t -> int
(** Total across live replicas. *)
