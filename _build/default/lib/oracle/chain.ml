module Vclock = Weaver_vclock.Vclock

(* Replicas replay the same command log, so they converge to identical
   dependency graphs: Oracle.order / serialize are deterministic given the
   prior history, and the head's history is the authoritative one. *)
type command =
  | C_order of Vclock.t * Vclock.t
  | C_serialize of Vclock.t list
  | C_gc of Vclock.t

type t = { oracles : Oracle.t array; mutable alive : bool array }

let create ?(replicas = 3) () =
  if replicas < 1 then invalid_arg "Chain.create: need at least one replica";
  { oracles = Array.init replicas (fun _ -> Oracle.create ()); alive = Array.make replicas true }

let replica_count t = Array.length t.oracles

let live_count t = Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 t.alive

let head_index t =
  let rec go i =
    if i >= Array.length t.oracles then invalid_arg "Chain: no live replica"
    else if t.alive.(i) then i
    else go (i + 1)
  in
  go 0

let tail_index t =
  let rec go i =
    if i < 0 then invalid_arg "Chain: no live replica"
    else if t.alive.(i) then i
    else go (i - 1)
  in
  go (Array.length t.oracles - 1)

(* apply a command to every live replica downstream of (and including) the
   head; the head's return value is the chain's answer *)
let apply t cmd =
  let head = head_index t in
  let result = ref None in
  Array.iteri
    (fun i oracle ->
      if i >= head && t.alive.(i) then begin
        let r =
          match cmd with
          | C_order (first, second) -> `Decision (Oracle.order oracle ~first ~second)
          | C_serialize events -> `Sorted (Oracle.serialize oracle events)
          | C_gc watermark -> `Removed (Oracle.gc oracle ~watermark)
        in
        if i = head then result := Some r
      end)
    t.oracles;
  Option.get !result

let order t ~first ~second =
  match apply t (C_order (first, second)) with
  | `Decision d -> d
  | _ -> assert false

let serialize t events =
  match apply t (C_serialize events) with `Sorted l -> l | _ -> assert false

let gc t ~watermark =
  match apply t (C_gc watermark) with `Removed n -> n | _ -> assert false

let query t ?replica a b =
  let i = match replica with Some i -> i | None -> tail_index t in
  if i < 0 || i >= Array.length t.oracles then invalid_arg "Chain.query: no such replica";
  if not t.alive.(i) then invalid_arg "Chain.query: replica is dead";
  Oracle.query t.oracles.(i) a b

let kill t i =
  if i < 0 || i >= Array.length t.oracles then invalid_arg "Chain.kill: no such replica";
  if live_count t <= 1 then invalid_arg "Chain.kill: last live replica";
  t.alive.(i) <- false

let queries_served t =
  let total = ref 0 in
  Array.iteri
    (fun i oracle -> if t.alive.(i) then total := !total + Oracle.queries_served oracle)
    t.oracles;
  !total
