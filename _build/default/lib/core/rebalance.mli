(** Dynamic graph re-partitioning (paper §4.6).

    "Weaver leverages [locality] by dynamically colocating a vertex with
    the majority of its neighbors, using streaming graph partitioning
    algorithms [58, 48], to reduce communication overhead during query
    processing."

    {!run} snapshots the current adjacency from the backing store, computes
    a locality-aware assignment with the restreaming LDG partitioner seeded
    by the {e current} placement, and migrates the worst-placed vertices
    through the ordinary migration path (each move is an ordered,
    OCC-validated operation — queries racing the rebalance stay correct).

    As in the paper's evaluation, the headline benches run with this
    disabled; the partitioning ablation exercises it. *)

type report = {
  examined : int;  (** vertices considered *)
  moved : int;  (** migrations performed *)
  edge_cut_before : float;
  edge_cut_after : float;  (** against the new directory *)
}

val run :
  Cluster.t -> Client.t -> ?max_moves:int -> ?rounds:int -> unit -> report
(** One rebalancing pass ([rounds] restreaming iterations, default 3;
    at most [max_moves] migrations, default 128). Drives the simulation
    while migrations are in flight. *)

val current_assignment : Cluster.t -> Weaver_partition.Partition.assignment
(** The live vertex → shard directory, for inspection. *)
