module Mgraph = Weaver_graph.Mgraph

type ctx = {
  vid : string;
  at : Weaver_vclock.Vclock.t;
  before : Mgraph.before;
  vertex : Mgraph.vertex;
}

let out_edges c = Mgraph.out_edges c.before c.vertex ~at:c.at
let props c = Mgraph.vertex_props c.before c.vertex ~at:c.at
let prop c key = List.assoc_opt key (props c)
let edge_props c e = Mgraph.edge_props c.before e ~at:c.at

let edge_has_prop c e ~key ?value () =
  Mgraph.edge_has_prop c.before e ~key ?value ~at:c.at ()

let degree c = Mgraph.degree c.before c.vertex ~at:c.at

module type PROGRAM = sig
  val name : string
  val empty : Progval.t

  val run :
    ctx ->
    params:Progval.t ->
    state:Progval.t option ->
    Progval.t option * (string * Progval.t) list * Progval.t

  val merge : Progval.t -> Progval.t -> Progval.t
end

type registry = (string, (module PROGRAM)) Hashtbl.t

let create_registry () = Hashtbl.create 16

let register reg (module P : PROGRAM) =
  if Hashtbl.mem reg P.name then
    invalid_arg ("Nodeprog.register: duplicate program " ^ P.name);
  Hashtbl.replace reg P.name (module P : PROGRAM)

let find reg name = Hashtbl.find_opt reg name

let names reg = Hashtbl.fold (fun k _ acc -> k :: acc) reg [] |> List.sort compare
