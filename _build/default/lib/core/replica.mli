(** Read-only shard replicas (paper §6.4).

    The paper notes that applications can gain "additional, arbitrary
    scalability ... by configuring read-only replicas of shard servers if
    weaker consistency is acceptable, similar to TAO". A replica holds a
    copy of its primary's partition, fed asynchronously: the primary
    streams every transaction it applies, in its own execution order, over
    a FIFO channel. Node programs flagged weak are routed here and execute
    {e without} the refinable-timestamp gating a primary performs — they
    read whatever state has arrived, so results can be stale (bounded by
    the replication lag), which is precisely the TAO-style consistency
    relaxation §5.4 warns about and §6.4 offers as an opt-in. *)

type t

val spawn : Runtime.t -> sid:int -> rid:int -> t
(** Replica [rid] of shard [sid]; registers at {!Runtime.replica_addr} and
    initializes from the backing store. *)

val retire : t -> unit
val vertex : t -> string -> Weaver_graph.Mgraph.vertex option
val resident_vertices : t -> int
val applied : t -> int
(** Updates received from the primary so far. *)

val reload : t -> unit
(** Re-read the partition from the backing store (bulk preloading). *)
