type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Assoc of (string * t) list

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | List x, List y -> List.equal equal x y
  | Assoc x, Assoc y ->
      List.equal (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | _ -> false

let rec pp fmt = function
  | Null -> Format.pp_print_string fmt "null"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "%S" s
  | List l ->
      Format.fprintf fmt "[@[%a@]]"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") pp)
        l
  | Assoc l ->
      let pp_pair f (k, v) = Format.fprintf f "%s:%a" k pp v in
      Format.fprintf fmt "{@[%a@]}"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";@ ") pp_pair)
        l

let to_string v = Format.asprintf "%a" pp v
let key = to_string

let to_bool = function Bool b -> b | v -> invalid_arg ("Progval.to_bool: " ^ to_string v)
let to_int = function Int i -> i | v -> invalid_arg ("Progval.to_int: " ^ to_string v)

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | v -> invalid_arg ("Progval.to_float: " ^ to_string v)

let to_str = function Str s -> s | v -> invalid_arg ("Progval.to_str: " ^ to_string v)
let to_list = function List l -> l | v -> invalid_arg ("Progval.to_list: " ^ to_string v)

let assoc_opt k = function
  | Assoc l -> List.assoc_opt k l
  | _ -> None

let assoc k v = match assoc_opt k v with Some x -> x | None -> Null
