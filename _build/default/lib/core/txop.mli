(** Operations inside a Weaver transaction (paper §2.2).

    Clients buffer these in a transaction block and submit the batch to a
    gatekeeper at commit (paper §4.2). Edge handles are chosen by the
    client library (cluster-unique strings), matching the paper's API where
    [create_edge] returns a handle usable later in the same transaction. *)

type t =
  | Create_vertex of string
  | Delete_vertex of string
  | Create_edge of { eid : string; src : string; dst : string }
  | Delete_edge of { eid : string; src : string }
  | Set_vertex_prop of { vid : string; key : string; value : string }
  | Del_vertex_prop of { vid : string; key : string }
  | Set_edge_prop of { src : string; eid : string; key : string; value : string }
  | Del_edge_prop of { src : string; eid : string; key : string }
  | Read_vertex of string
      (** Declares a read-set dependency on a vertex: the transaction
          commits only if the vertex is not concurrently modified. *)

val written_vertex : t -> string option
(** The vertex whose stored record this operation modifies, if any ([src]
    for edge operations, since out-edges live with their source). *)

val read_vertex : t -> string option
(** The vertex this operation only reads ([Read_vertex] and the [dst]
    existence check of [Create_edge]). *)

val pp : Format.formatter -> t -> unit
