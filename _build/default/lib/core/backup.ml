module Wire = Weaver_util.Wire
module Codec = Weaver_graph.Codec
module Store = Weaver_store.Store
module Vclock = Weaver_vclock.Vclock

let magic = "WVRBK1"

let dump cluster =
  let rt = Cluster.runtime cluster in
  let entries = Store.scan_prefix rt.Runtime.store ~prefix:"" in
  let w = Wire.Writer.create () in
  Wire.Writer.string w magic;
  Wire.Writer.varint w rt.Runtime.cfg.Config.n_gatekeepers;
  Wire.Writer.list w
    (fun (key, value) ->
      Wire.Writer.string w key;
      match (value : Runtime.stored) with
      | Runtime.Vrec v ->
          Wire.Writer.varint w 0;
          Wire.Writer.string w (Codec.encode_vertex v)
      | Runtime.Stamp ts ->
          Wire.Writer.varint w 1;
          Codec.encode_stamp w ts
      | Runtime.Dir shard ->
          Wire.Writer.varint w 2;
          Wire.Writer.varint w shard)
    entries;
  Wire.Writer.contents w

let restore cluster data =
  let rt = Cluster.runtime cluster in
  let r = Wire.Reader.create data in
  if not (String.equal (Wire.Reader.string r) magic) then
    raise (Wire.Reader.Corrupt "not a weaver backup");
  let dims = Wire.Reader.varint r in
  if dims <> rt.Runtime.cfg.Config.n_gatekeepers then
    invalid_arg
      (Printf.sprintf "Backup.restore: dump has %d gatekeepers, cluster has %d" dims
         rt.Runtime.cfg.Config.n_gatekeepers);
  let entries =
    Wire.Reader.list r (fun () ->
        let key = Wire.Reader.string r in
        let value =
          match Wire.Reader.varint r with
          | 0 -> Runtime.Vrec (Codec.decode_vertex (Wire.Reader.string r))
          | 1 -> Runtime.Stamp (Codec.decode_stamp r)
          | 2 -> Runtime.Dir (Wire.Reader.varint r)
          | n -> raise (Wire.Reader.Corrupt ("bad entry tag " ^ string_of_int n))
        in
        (key, value))
  in
  let stx = Store.Tx.begin_ rt.Runtime.store in
  List.iter (fun (key, value) -> Store.Tx.put stx key value) entries;
  (match Store.Tx.commit stx with
  | Ok () -> ()
  | Error _ -> invalid_arg "Backup.restore: store not idle");
  Cluster.reload_shards cluster
