type t =
  | Create_vertex of string
  | Delete_vertex of string
  | Create_edge of { eid : string; src : string; dst : string }
  | Delete_edge of { eid : string; src : string }
  | Set_vertex_prop of { vid : string; key : string; value : string }
  | Del_vertex_prop of { vid : string; key : string }
  | Set_edge_prop of { src : string; eid : string; key : string; value : string }
  | Del_edge_prop of { src : string; eid : string; key : string }
  | Read_vertex of string

let written_vertex = function
  | Create_vertex v | Delete_vertex v -> Some v
  | Create_edge { src; _ }
  | Delete_edge { src; _ }
  | Set_edge_prop { src; _ }
  | Del_edge_prop { src; _ } -> Some src
  | Set_vertex_prop { vid; _ } | Del_vertex_prop { vid; _ } -> Some vid
  | Read_vertex _ -> None

let read_vertex = function
  | Read_vertex v -> Some v
  | Create_edge { dst; _ } -> Some dst
  | _ -> None

let pp fmt = function
  | Create_vertex v -> Format.fprintf fmt "create_vertex(%s)" v
  | Delete_vertex v -> Format.fprintf fmt "delete_vertex(%s)" v
  | Create_edge { eid; src; dst } -> Format.fprintf fmt "create_edge(%s,%s->%s)" eid src dst
  | Delete_edge { eid; src } -> Format.fprintf fmt "delete_edge(%s@%s)" eid src
  | Set_vertex_prop { vid; key; value } -> Format.fprintf fmt "set_vprop(%s,%s=%s)" vid key value
  | Del_vertex_prop { vid; key } -> Format.fprintf fmt "del_vprop(%s,%s)" vid key
  | Set_edge_prop { src; eid; key; value } ->
      Format.fprintf fmt "set_eprop(%s@%s,%s=%s)" eid src key value
  | Del_edge_prop { src; eid; key } -> Format.fprintf fmt "del_eprop(%s@%s,%s)" eid src key
  | Read_vertex v -> Format.fprintf fmt "read_vertex(%s)" v
