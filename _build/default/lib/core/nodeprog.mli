(** Node programs — Weaver's stored procedures for graph analyses
    (paper §2.3).

    A node program runs vertex-by-vertex over a consistent snapshot of the
    graph defined by its refinable timestamp. At each vertex the program
    receives parameters from the previous hop (gather), may read the vertex
    through {!ctx}, updates its per-vertex [prog_state], and returns the
    next vertices to visit (scatter) plus a partial result. Partial results
    are merged at the coordinating gatekeeper; when no hops remain, the
    merged value is returned to the client. *)

type ctx = {
  vid : string;  (** vertex being visited *)
  at : Weaver_vclock.Vclock.t;  (** snapshot timestamp [Tprog] *)
  before : Weaver_graph.Mgraph.before;
      (** timestamp decision procedure (vclock + timeline oracle) *)
  vertex : Weaver_graph.Mgraph.vertex;  (** raw multi-version record *)
}

(** Snapshot accessors: the vertex as of [ctx.at]. *)

val out_edges : ctx -> Weaver_graph.Mgraph.edge list
val props : ctx -> (string * string) list
val prop : ctx -> string -> string option
val edge_props : ctx -> Weaver_graph.Mgraph.edge -> (string * string) list
val edge_has_prop : ctx -> Weaver_graph.Mgraph.edge -> key:string -> ?value:string -> unit -> bool
val degree : ctx -> int

module type PROGRAM = sig
  val name : string
  (** Registry key; must be unique per cluster. *)

  val empty : Progval.t
  (** Identity element of [merge]; also the result when a program visits no
      vertices (e.g. all start vertices were deleted at [Tprog]). *)

  val run :
    ctx ->
    params:Progval.t ->
    state:Progval.t option ->
    Progval.t option * (string * Progval.t) list * Progval.t
  (** [run ctx ~params ~state] returns [(state', hops, partial)]: the new
      per-vertex state (kept until the program terminates, §4.5), the next
      [(vertex, params)] hops, and a partial result to merge. *)

  val merge : Progval.t -> Progval.t -> Progval.t
  (** Associative and commutative merge of partial results. *)
end

type registry

val create_registry : unit -> registry
val register : registry -> (module PROGRAM) -> unit
(** @raise Invalid_argument on duplicate name. *)

val find : registry -> string -> (module PROGRAM) option
val names : registry -> string list
