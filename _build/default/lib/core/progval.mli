(** Universal values exchanged by node programs.

    Node-program parameters, per-vertex state, and results travel between
    shard servers "over the network"; representing them in one serializable
    variant keeps the program interface honest about that boundary (no
    closures ship between servers) while avoiding GADT plumbing in the
    engine. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Assoc of (string * t) list

val equal : t -> t -> bool

val key : t -> string
(** Canonical string form usable as a cache key. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Accessors} — raise [Invalid_argument] on shape mismatch, which in a
    node program indicates a bug in the program itself. *)

val to_bool : t -> bool
val to_int : t -> int
val to_float : t -> float
val to_str : t -> string
val to_list : t -> t list
val assoc : string -> t -> t
(** Field of an [Assoc]; [Null] if absent. *)

val assoc_opt : string -> t -> t option
