(** Offline backup and restore of a deployment's durable state.

    Weaver's only persistent state is the backing store (paper §4.3):
    vertex records, last-update stamps, and the vertex → shard directory.
    [dump] serializes all of it to a self-contained binary string using the
    {!Weaver_graph.Codec} format; [restore] loads a dump into a {e fresh}
    cluster (before any traffic) and makes the shards resident — disaster
    recovery, cluster cloning, and environment migration in one primitive.

    Timestamps inside a dump keep their epochs and clock values, so
    historical queries keep working on the restored deployment. *)

val dump : Cluster.t -> string
(** Serialize every live backing-store binding. *)

val restore : Cluster.t -> string -> unit
(** Load a dump into this cluster's backing store and reload every shard's
    partition. The cluster must have the same number of gatekeepers as the
    one that produced the dump (timestamps carry clock dimensions) and
    must not have served traffic yet.
    @raise Weaver_util.Wire.Reader.Corrupt on malformed input.
    @raise Invalid_argument on a dimension mismatch. *)
