lib/core/txop.mli: Format
