lib/core/cluster.mli: Client Config Nodeprog Runtime Weaver_graph
