lib/core/nodeprog.mli: Progval Weaver_graph Weaver_vclock
