lib/core/gatekeeper.ml: Array Config Float Hashtbl List Msg Nodeprog Option Progval Runtime String Txop Weaver_graph Weaver_partition Weaver_sim Weaver_store Weaver_vclock
