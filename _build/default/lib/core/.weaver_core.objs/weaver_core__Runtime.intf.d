lib/core/runtime.mli: Config Msg Nodeprog Weaver_graph Weaver_oracle Weaver_sim Weaver_store Weaver_vclock
