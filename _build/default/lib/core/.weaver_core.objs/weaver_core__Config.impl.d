lib/core/config.ml:
