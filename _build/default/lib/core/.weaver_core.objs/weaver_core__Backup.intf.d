lib/core/backup.mli: Cluster
