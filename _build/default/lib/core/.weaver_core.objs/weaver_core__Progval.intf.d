lib/core/progval.mli: Format
