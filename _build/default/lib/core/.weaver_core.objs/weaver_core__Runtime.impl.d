lib/core/runtime.ml: Array Config Hashtbl Msg Nodeprog String Weaver_graph Weaver_oracle Weaver_partition Weaver_sim Weaver_store Weaver_vclock
