lib/core/shard.ml: Array Config Float Hashtbl List Msg Nodeprog Option Progval Queue Runtime String Weaver_graph Weaver_oracle Weaver_sim Weaver_store Weaver_vclock
