lib/core/config.mli:
