lib/core/txop.ml: Format
