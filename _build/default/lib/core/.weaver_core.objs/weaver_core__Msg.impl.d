lib/core/msg.ml: Format List Progval Txop Weaver_vclock
