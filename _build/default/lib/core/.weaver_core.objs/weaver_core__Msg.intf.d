lib/core/msg.mli: Format Progval Txop Weaver_vclock
