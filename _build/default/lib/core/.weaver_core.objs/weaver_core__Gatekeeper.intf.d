lib/core/gatekeeper.mli: Runtime
