lib/core/backup.ml: Cluster Config List Printf Runtime String Weaver_graph Weaver_store Weaver_util Weaver_vclock
