lib/core/shard.mli: Runtime Weaver_graph
