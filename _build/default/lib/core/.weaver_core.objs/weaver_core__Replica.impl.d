lib/core/replica.ml: Config Float Hashtbl List Msg Nodeprog Progval Queue Runtime String Weaver_graph Weaver_sim Weaver_store Weaver_vclock
