lib/core/replica.mli: Runtime Weaver_graph
