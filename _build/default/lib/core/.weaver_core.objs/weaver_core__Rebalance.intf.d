lib/core/rebalance.mli: Client Cluster Weaver_partition
