lib/core/nodeprog.ml: Hashtbl List Progval Weaver_graph Weaver_vclock
