lib/core/client.ml: Config Hashtbl List Msg Option Printf Progval Result Runtime Txop Weaver_sim Weaver_util Weaver_vclock
