lib/core/rebalance.ml: Client Cluster Config Hashtbl List Runtime String Weaver_graph Weaver_partition Weaver_store
