lib/core/client.mli: Progval Runtime
