lib/core/progval.ml: Float Format List String
