lib/sim/net.ml: Engine Float Hashtbl Weaver_util
