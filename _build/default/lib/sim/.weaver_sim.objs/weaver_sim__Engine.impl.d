lib/sim/engine.ml: Float Weaver_util
