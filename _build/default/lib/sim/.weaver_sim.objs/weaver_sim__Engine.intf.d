lib/sim/engine.mli: Weaver_util
