lib/sim/net.mli: Engine Weaver_util
