(** Blockchain.info cost model — the commercial block explorer CoinGraph is
    compared against in Fig. 7 (paper §6.1).

    The paper measures Blockchain.info's MySQL-backed API at 5–8 ms of
    server time {e per Bitcoin transaction per block} (relational join
    cost), plus about 13 ms of WAN latency per request, and reports
    CoinGraph at 0.6–0.8 ms per transaction — an order of magnitude less
    marginal cost. This module embeds those measured constants so the
    Fig. 7 bench can print the baseline series next to CoinGraph's. *)

val wan_latency : float
(** 13,000 µs — the paper's quoted WAN overhead (0.013 s). *)

val per_tx_cost_low : float
(** 5,000 µs per transaction (lower bound of the measured 5–8 ms). *)

val per_tx_cost_high : float
(** 8,000 µs per transaction. *)

val block_query_latency : ?rng:Weaver_util.Xrand.t -> n_tx:int -> unit -> float
(** Latency of one block query in µs: WAN latency plus per-transaction join
    cost drawn uniformly from the measured 5–8 ms band (midpoint when no
    [rng] is given). *)
