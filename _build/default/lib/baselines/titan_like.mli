(** Titan-style concurrency control: distributed two-phase locking with a
    two-phase commit (paper §6.2, citing Titan's locking design [51]).

    The paper attributes Titan's flat ~2,000 tx/s to this mechanism: every
    transaction — read or write alike — pessimistically locks all objects
    it touches, then runs two-phase commit across the involved shards.
    This module reproduces the mechanism, not Titan's code: a lock table
    with FIFO waiters lives on the same discrete-event engine, every lock
    acquisition costs a network round trip, and conflicting transactions
    queue behind each other. Throughput is therefore bounded by fixed
    coordination cost and hot-vertex serialization, and is largely
    insensitive to the read/write mix — the Fig. 9 shape. *)

type t

val create : Weaver_sim.Engine.t -> rtt:float -> t
(** A lock service on the engine; [rtt] is the round-trip cost of one lock
    or 2PC message in µs. *)

val locks_held : t -> int

(** Closed-loop driver mirroring {!Weaver_workloads.Tao.Driver}. *)
module Driver : sig
  type result = {
    completed : int;
    duration : float;
    throughput : float;
    read_latencies : Weaver_util.Stats.t;
    write_latencies : Weaver_util.Stats.t;
  }

  val run :
    t ->
    vertices:string array ->
    clients:int ->
    duration:float ->
    ?read_fraction:float ->
    ?theta:float ->
    ?objects_per_op:int ->
    unit ->
    result
  (** Run the TAO mix where every operation locks its objects
      ([objects_per_op] = 2 by default: vertex + adjacency), executes, runs
      2PC, and unlocks. *)
end
