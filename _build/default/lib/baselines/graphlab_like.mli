(** GraphLab-style offline traversal engines (paper §6.3, Fig. 11).

    The paper compares Weaver's reachability node programs against
    GraphLab v2.2 in both execution modes and attributes the latency gap to
    the engines' concurrency control:

    - the {b synchronous} engine runs gather–apply–scatter in supersteps
      separated by global barriers — every level of a BFS pays a full
      cluster barrier even when the frontier is tiny;
    - the {b asynchronous} engine avoids barriers but serializes
      neighbouring vertex updates with distributed locking, paying a lock
      acquisition per frontier edge.

    This module reproduces those mechanisms over the generator graphs: a
    real BFS computes the per-level frontiers, and the engine model charges
    the corresponding barrier or locking costs on the simulated cluster.
    Both engines operate on a static graph — GraphLab cannot ingest
    updates during a computation, which is exactly the capability gap the
    paper highlights. *)

type graph

val load : Weaver_workloads.Graphgen.t -> graph
(** Freeze a generator graph into the engine's in-memory format. *)

type mode = Sync | Async

type cost_model = {
  machines : int;  (** worker machines *)
  vertex_cost : float;  (** µs to process one vertex visit *)
  barrier_cost : float;  (** µs per global barrier (sync engine) *)
  lock_cost : float;  (** µs per neighbour-lock acquisition (async engine) *)
  startup_cost : float;  (** µs to launch the computation *)
}

val default_costs : cost_model
(** Calibrated against the same per-vertex cost the Weaver simulation uses,
    with barrier and lock costs derived from its network latency. *)

val bfs_levels : graph -> src:string -> int list
(** Frontier sizes per BFS level from [src] (level 0 = 1). *)

val reachability_latency :
  graph -> mode:mode -> costs:cost_model -> src:string -> dst:string -> float
(** Virtual µs to answer one reachability query: the full BFS fixpoint
    from [src] (GraphLab's engines cannot stop early on "target found"),
    charged under the given engine model. *)
