module Engine = Weaver_sim.Engine
module Xrand = Weaver_util.Xrand
module Stats = Weaver_util.Stats

type lock = { mutable held : bool; waiters : (unit -> unit) Queue.t }

type t = {
  engine : Engine.t;
  rtt : float;
  locks : (string, lock) Hashtbl.t;
  mutable held_count : int;
}

let create engine ~rtt = { engine; rtt; locks = Hashtbl.create 1024; held_count = 0 }

let locks_held t = t.held_count

let lock_of t key =
  match Hashtbl.find_opt t.locks key with
  | Some l -> l
  | None ->
      let l = { held = false; waiters = Queue.create () } in
      Hashtbl.replace t.locks key l;
      l

(* Acquire after one round trip to the lock's owner shard; if contended,
   join the FIFO wait queue. *)
let acquire t key k =
  Engine.schedule t.engine ~delay:t.rtt (fun () ->
      let l = lock_of t key in
      if l.held then Queue.push k l.waiters
      else begin
        l.held <- true;
        t.held_count <- t.held_count + 1;
        k ()
      end)

let release t key =
  let l = lock_of t key in
  assert l.held;
  if Queue.is_empty l.waiters then begin
    l.held <- false;
    t.held_count <- t.held_count - 1
  end
  else begin
    (* hand over directly: lock stays held, next waiter runs *)
    let k = Queue.pop l.waiters in
    k ()
  end

(* Lock all objects in canonical order (global deadlock avoidance, as
   Titan's lock manager does), run the body, then 2PC and release. *)
let with_locks t keys body k =
  let keys = List.sort_uniq compare keys in
  let rec acquire_all = function
    | [] ->
        body (fun () ->
            (* 2PC: prepare + commit round trips, then piggybacked release *)
            Engine.schedule t.engine ~delay:(2.0 *. t.rtt) (fun () ->
                List.iter (release t) keys;
                k ()))
    | key :: rest -> acquire t key (fun () -> acquire_all rest)
  in
  acquire_all keys

module Driver = struct
  type result = {
    completed : int;
    duration : float;
    throughput : float;
    read_latencies : Stats.t;
    write_latencies : Stats.t;
  }

  let spawn_client t ~rng ~vertices ~read_fraction ~theta ~objects_per_op ~state =
    let completed, reads, writes, window_start = state in
    let exec_cost = 5.0 in
    let rec next () =
      let t0 = Engine.now t.engine in
      let op = Weaver_workloads.Tao.gen_op ~rng ~vertices ~read_fraction ~theta () in
      let is_read, objects =
        match op with
        | Weaver_workloads.Tao.Get_edges v
        | Weaver_workloads.Tao.Count_edges v
        | Weaver_workloads.Tao.Get_node v ->
            (true, List.init objects_per_op (fun i -> v ^ "#" ^ string_of_int i))
        | Weaver_workloads.Tao.Create_edge (s, d) ->
            (false, [ s ^ "#0"; s ^ "#1"; d ^ "#0" ])
        | Weaver_workloads.Tao.Delete_edge v ->
            (false, List.init objects_per_op (fun i -> v ^ "#" ^ string_of_int i))
      in
      with_locks t objects
        (fun k -> Engine.schedule t.engine ~delay:exec_cost k)
        (fun () ->
          if Engine.now t.engine >= !window_start then begin
            incr completed;
            let lat = Engine.now t.engine -. t0 in
            Stats.add (if is_read then reads else writes) lat
          end;
          next ())
    in
    next ()

  let run t ~vertices ~clients ~duration
      ?(read_fraction = Weaver_workloads.Tao.table1_read_fraction) ?(theta = 0.75)
      ?(objects_per_op = 2) () =
    assert (clients > 0 && duration > 0.0);
    let master = Engine.rng t.engine in
    let completed = ref 0 in
    let reads = Stats.create () and writes = Stats.create () in
    let window_start = ref (Engine.now t.engine) in
    let state = (completed, reads, writes, window_start) in
    for _ = 1 to clients do
      let rng = Xrand.split master in
      spawn_client t ~rng ~vertices ~read_fraction ~theta ~objects_per_op ~state
    done;
    Engine.run ~until:(Engine.now t.engine +. duration) t.engine;
    {
      completed = !completed;
      duration;
      throughput = float_of_int !completed /. (duration /. 1_000_000.0);
      read_latencies = reads;
      write_latencies = writes;
    }
end
