module Engine = Weaver_sim.Engine

type t = {
  engine : Engine.t;
  epoch_length : float;
  buffered : (string, int * float) Hashtbl.t; (* open epoch: value, update time *)
  sealed : (string, int * float) Hashtbl.t; (* last sealed snapshot *)
  mutable epochs : int;
}

let seal t =
  Hashtbl.iter (fun k v -> Hashtbl.replace t.sealed k v) t.buffered;
  Hashtbl.reset t.buffered;
  t.epochs <- t.epochs + 1

let create engine ~epoch_length =
  assert (epoch_length > 0.0);
  let t =
    {
      engine;
      epoch_length;
      buffered = Hashtbl.create 256;
      sealed = Hashtbl.create 256;
      epochs = 0;
    }
  in
  Engine.every engine ~period:epoch_length (fun () ->
      seal t;
      true);
  t

let update t ~key ~value =
  Hashtbl.replace t.buffered key (value, Engine.now t.engine)

let query t ~key =
  match Hashtbl.find_opt t.sealed key with Some (v, _) -> Some v | None -> None

let query_staleness t ~key =
  match Hashtbl.find_opt t.sealed key with
  | Some (_, at) -> Some (Engine.now t.engine -. at)
  | None -> None

let epochs_sealed t = t.epochs
let pending_updates t = Hashtbl.length t.buffered
