let wan_latency = 13_000.0
let per_tx_cost_low = 5_000.0
let per_tx_cost_high = 8_000.0

let block_query_latency ?rng ~n_tx () =
  let per_tx =
    match rng with
    | Some rng ->
        per_tx_cost_low
        +. Weaver_util.Xrand.float rng (per_tx_cost_high -. per_tx_cost_low)
    | None -> (per_tx_cost_low +. per_tx_cost_high) /. 2.0
  in
  wan_latency +. (float_of_int n_tx *. per_tx)
