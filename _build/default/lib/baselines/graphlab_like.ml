module Graphgen = Weaver_workloads.Graphgen

type graph = { adj : (string, string list) Hashtbl.t }

let load (g : Graphgen.t) =
  let adj = Hashtbl.create (g.Graphgen.n_vertices * 2) in
  List.iter (fun (vid, nbrs) -> Hashtbl.replace adj vid nbrs) (Graphgen.adjacency g);
  { adj }

type mode = Sync | Async

type cost_model = {
  machines : int;
  vertex_cost : float;
  barrier_cost : float;
  lock_cost : float;
  startup_cost : float;
}

let default_costs =
  {
    machines = 6;
    vertex_cost = 1.0;
    barrier_cost = 600.0; (* several RTTs of straggler wait per superstep *)
    lock_cost = 2.5; (* one neighbour lock per scattered edge *)
    startup_cost = 200.0;
  }

(* per-level (frontier size, edges scanned), stopping early when [until]
   is reached *)
let bfs_frontiers graph ~src ~until =
  let visited = Hashtbl.create 256 in
  Hashtbl.replace visited src ();
  let frontier = ref [ src ] in
  let levels = ref [] in
  let found = ref (Some src = until) in
  while !frontier <> [] && not !found do
    let next = ref [] in
    let edges = ref 0 in
    List.iter
      (fun v ->
        List.iter
          (fun n ->
            incr edges;
            if not (Hashtbl.mem visited n) then begin
              Hashtbl.replace visited n ();
              if until = Some n then found := true;
              next := n :: !next
            end)
          (Option.value ~default:[] (Hashtbl.find_opt graph.adj v)))
      !frontier;
    levels := (List.length !frontier, !edges) :: !levels;
    frontier := !next
  done;
  if !frontier <> [] then levels := (List.length !frontier, 0) :: !levels;
  List.rev !levels

let bfs_levels graph ~src =
  List.map fst (bfs_frontiers graph ~src ~until:None)

(* Gather-apply-scatter examines every edge of the frontier, so edge counts
   dominate the per-superstep work, exactly as in Weaver's traversal. *)
let reachability_latency graph ~mode ~costs ~src ~dst =
  (* both engines run the propagation to its fixpoint over the whole
     reachable component — GraphLab's engines cannot terminate a
     computation early on "target found", they iterate until no vertex
     signals; [dst] only names the query *)
  ignore dst;
  let levels = bfs_frontiers graph ~src ~until:None in
  let total_visits = List.fold_left (fun a (v, _) -> a + v) 0 levels in
  let total_edges = List.fold_left (fun a (_, e) -> a + e) 0 levels in
  let machines = float_of_int costs.machines in
  match mode with
  | Sync ->
      (* every BFS level is one superstep closed by a global barrier;
         per-level edge work parallelises across machines, but stragglers
         (skewed frontiers) inflate the critical path *)
      let straggler = 1.5 in
      List.fold_left
        (fun acc (frontier, edges) ->
          let work =
            ceil (float_of_int (frontier + edges) /. machines)
            *. costs.vertex_cost *. straggler
          in
          acc +. work +. costs.barrier_cost)
        costs.startup_cost levels
  | Async ->
      (* no barriers, but each visit locks its neighbourhood before
         applying; lock traffic does not parallelise away on hot vertices *)
      let work =
        float_of_int (total_visits + total_edges) *. costs.vertex_cost /. machines
      in
      let locks =
        float_of_int total_visits *. costs.lock_cost *. (1.0 /. machines +. 0.25)
      in
      costs.startup_cost +. work +. locks
