(** Kineograph-style epoch-snapshot processing (paper §7, Related Work).

    Kineograph "decouples updates from queries and executes queries on a
    stale snapshot ... new updates are delayed and buffered until the end
    of 10 second epochs". This baseline reproduces that freshness model:
    updates buffer in the current epoch and become visible only when the
    epoch closes, while queries always run against the last sealed
    snapshot. The interesting metric is {e staleness} — how old the data a
    query sees is — which the freshness bench compares against Weaver's
    refinable timestamps (updates visible within a commit round trip). *)

type t

val create : Weaver_sim.Engine.t -> epoch_length:float -> t
(** [epoch_length] in virtual µs; Kineograph's default is 10 s. Epoch
    sealing is driven by the engine clock. *)

val update : t -> key:string -> value:int -> unit
(** Buffer an update into the open epoch. *)

val query : t -> key:string -> int option
(** Read from the last sealed snapshot ([None] if the key has never been
    sealed). *)

val query_staleness : t -> key:string -> float option
(** Age (µs) of the value {!query} returns: now minus the buffered-update
    time of the visible version. *)

val epochs_sealed : t -> int
val pending_updates : t -> int
