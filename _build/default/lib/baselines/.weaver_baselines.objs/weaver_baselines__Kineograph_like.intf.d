lib/baselines/kineograph_like.mli: Weaver_sim
