lib/baselines/titan_like.ml: Hashtbl List Queue Weaver_sim Weaver_util Weaver_workloads
