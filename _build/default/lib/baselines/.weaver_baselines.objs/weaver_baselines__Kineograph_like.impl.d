lib/baselines/kineograph_like.ml: Hashtbl Weaver_sim
