lib/baselines/graphlab_like.ml: Hashtbl List Option Weaver_workloads
