lib/baselines/blockchain_info.ml: Weaver_util
