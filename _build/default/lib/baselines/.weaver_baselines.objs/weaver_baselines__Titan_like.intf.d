lib/baselines/titan_like.mli: Weaver_sim Weaver_util
