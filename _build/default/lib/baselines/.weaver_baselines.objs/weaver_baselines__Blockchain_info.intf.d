lib/baselines/blockchain_info.mli: Weaver_util
