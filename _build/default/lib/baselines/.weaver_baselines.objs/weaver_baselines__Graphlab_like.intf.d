lib/baselines/graphlab_like.mli: Weaver_workloads
