(** Standard node programs (paper §2.3, §5, §6).

    These cover every query the paper's evaluation runs — the TAO-style
    vertex-local reads ([get_node], [get_edges], [count_edges]), the
    traversal workloads ([reachable], BFS variants), the local clustering
    coefficient of Fig. 13, and the CoinGraph block-render program of
    Figs. 7–8 — plus the taint-tracking and pattern-matching analyses the
    applications section describes.

    Parameters and results are {!Weaver_core.Progval} values; see each
    program's documentation for its schema. Register the whole set with
    {!Std.register_all} or individually via
    {!Weaver_core.Cluster.register_program}. *)

module Get_node : Weaver_core.Nodeprog.PROGRAM
(** ["get_node"] — read one vertex: params ignored; result is a [List] of
    [Assoc {vid; degree; props}] (one entry per live start vertex). *)

module Get_edges : Weaver_core.Nodeprog.PROGRAM
(** ["get_edges"] — result: [List] of [Assoc {eid; src; dst; props}] for
    every out-edge of the start vertices visible at the snapshot. *)

module Count_edges : Weaver_core.Nodeprog.PROGRAM
(** ["count_edges"] — result: [Int], total visible out-degree. *)

module Reachable : Weaver_core.Nodeprog.PROGRAM
(** ["reachable"] — BFS reachability (paper Fig. 3). Params:
    [Assoc {target : Str; prop : Str (optional edge-property filter)}].
    Result: [Bool]. *)

module Nhop_count : Weaver_core.Nodeprog.PROGRAM
(** ["nhop_count"] — count vertices within [depth] hops. Params:
    [Assoc {depth : Int}]. Result: [Int]. *)

module Hop_distance : Weaver_core.Nodeprog.PROGRAM
(** ["hop_distance"] — BFS hop distance. Params: [Assoc {target : Str}].
    Result: [Int] distance, or [Null] if unreachable. *)

module Clustering : Weaver_core.Nodeprog.PROGRAM
(** ["clustering"] — local clustering coefficient of the single start
    vertex (Fig. 13's workload): scatters to every neighbour, which counts
    links back into the neighbourhood. Result:
    [Assoc {k : Int; links : Int}]; the coefficient is
    [links / (k·(k−1))] for directed graphs. *)

module Block_render : Weaver_core.Nodeprog.PROGRAM
(** ["block_render"] — CoinGraph's block query (Fig. 7): visit a block
    vertex and every Bitcoin transaction it contains. Result: [List] whose
    head summarises the block and remaining entries summarise the
    transactions. *)

module Taint : Weaver_core.Nodeprog.PROGRAM
(** ["taint"] — forward taint tracking up to [depth] hops (CoinGraph flow
    analysis, §5.2). Params: [Assoc {depth : Int}]. Result: [List] of
    tainted vertex ids. *)

module Star_match : Weaver_core.Nodeprog.PROGRAM
(** ["star_match"] — match a star pattern: a centre whose property
    [ckey=cval] with a neighbour whose [nkey=nval] (RoboBrain subgraph
    query, §5.3). Params: [Assoc {ckey; cval; nkey; nval : Str}]. Result:
    [List] of [Assoc {center; nbr}] matches. *)

module Triangle_count : Weaver_core.Nodeprog.PROGRAM
(** ["triangle_count"] — number of directed triangles [v → n → m] with both
    [n] and [m] in the start vertex's out-neighbourhood. Result: [Int]. *)

module Khop_collect : Weaver_core.Nodeprog.PROGRAM
(** ["khop_collect"] — ids of every vertex within [depth] hops. Params:
    [Assoc {depth : Int}]. Result: [List] of [Str]. *)

module Degree_dist : Weaver_core.Nodeprog.PROGRAM
(** ["degree_dist"] — out-degree histogram over the start vertices.
    Result: [Assoc] mapping degree (as string) to count. *)

module History : Weaver_core.Nodeprog.PROGRAM
(** ["history"] — version archaeology on the raw multi-version record of
    each start vertex: creation stamp, liveness, and how many property and
    edge versions (live and dead) it carries. With GC disabled this is a
    complete audit trail (§4.5). *)

module Match_prop : Weaver_core.Nodeprog.PROGRAM
(** ["match_prop"] — select start vertices whose property [key] equals
    [value] at the snapshot. Params: [Assoc {key; value : Str}]. Result:
    [List] of matching ids. Combined with
    {!Weaver_workloads.Analytics.run_all} it is a full property scan. *)

module Std : sig
  val all : (module Weaver_core.Nodeprog.PROGRAM) list

  val register_all : Weaver_core.Nodeprog.registry -> unit
  (** Register every program above. *)
end
