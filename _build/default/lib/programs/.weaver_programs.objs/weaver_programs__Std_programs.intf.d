lib/programs/std_programs.mli: Weaver_core
