lib/programs/std_programs.ml: List Nodeprog Progval String Weaver_core Weaver_graph Weaver_vclock
