(** Social-network backend in the style of Facebook TAO (paper §5.1).

    A thin, typed layer over Weaver transactions and node programs: users,
    friendships, posts with per-friend access control — the paper's Fig. 2
    example — plus the reads TAO serves. Every update is one strictly
    serializable transaction, which is precisely what rules out the
    access-control anomalies §5.4 describes. *)

type t

val create : Weaver_core.Cluster.t -> t

val add_user : t -> name:string -> (string, string) result
(** Create a user vertex; returns its id. *)

val befriend : t -> user:string -> friend_:string -> (unit, string) result
(** Directed "friend" edge. *)

val post_photo :
  t -> owner:string -> visible_to:string list -> (string, string) result
(** The paper's Fig. 2 transaction: create the photo vertex, the OWNS edge,
    and one VISIBLE edge per permitted friend — atomically. Returns the
    photo id. *)

val friends : t -> user:string -> (string list, string) result
(** Destinations of the user's "friend" edges. *)

val can_see : t -> viewer:string -> photo:string -> (bool, string) result
(** Access-control check: does a VISIBLE edge (photo → viewer) exist? *)

val feed_degree : t -> user:string -> (int, string) result
(** Out-degree of the user (TAO's count_edges). *)
