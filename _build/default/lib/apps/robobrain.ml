open Weaver_core

type t = { client : Client.t }

let create cluster = { client = Cluster.client cluster }

let add_concept t ~name ?(attrs = []) () =
  let tx = Client.Tx.begin_ t.client in
  let vid = Client.Tx.create_vertex tx () in
  Client.Tx.set_vertex_prop tx ~vid ~key:"concept" ~value:name;
  List.iter
    (fun (key, value) -> Client.Tx.set_vertex_prop tx ~vid ~key ~value)
    attrs;
  Result.map (fun () -> vid) (Client.commit t.client tx)

let relate t ~src ~label ~dst =
  let tx = Client.Tx.begin_ t.client in
  let eid = Client.Tx.create_edge tx ~src ~dst in
  Client.Tx.set_edge_prop tx ~src ~eid ~key:"label" ~value:label;
  Client.commit t.client tx

let edges_of t vid =
  Client.run_program t.client ~prog:"get_edges" ~params:Progval.Null ~starts:[ vid ] ()

let relations t ~concept =
  Result.map
    (fun edges ->
      List.map
        (fun e ->
          let label =
            match Progval.assoc_opt "label" (Progval.assoc "props" e) with
            | Some (Progval.Str l) -> l
            | _ -> ""
          in
          (label, Progval.to_str (Progval.assoc "dst" e)))
        (Progval.to_list edges))
    (edges_of t concept)

let merge_concepts t ~keep ~absorb =
  (* read the duplicate's relations, then retarget and retire atomically;
     the Read_vertex dependency aborts the merge if [absorb] changes
     concurrently, so no relation can be lost *)
  match relations t ~concept:absorb with
  | Error e -> Error e
  | Ok rels ->
      let tx = Client.Tx.begin_ t.client in
      Client.Tx.read_vertex tx absorb;
      List.iter
        (fun (label, dst) ->
          if dst <> keep then begin
            let eid = Client.Tx.create_edge tx ~src:keep ~dst in
            Client.Tx.set_edge_prop tx ~src:keep ~eid ~key:"label" ~value:label
          end)
        rels;
      Client.Tx.delete_vertex tx absorb;
      Client.commit t.client tx

let concepts_related_to t ~centers ~center_attr ~nbr_attr =
  let ckey, cval = center_attr and nkey, nval = nbr_attr in
  Result.map
    (fun r ->
      List.map
        (fun m ->
          ( Progval.to_str (Progval.assoc "center" m),
            Progval.to_str (Progval.assoc "nbr" m) ))
        (Progval.to_list r))
    (Client.run_program t.client ~prog:"star_match"
       ~params:
         (Progval.Assoc
            [
              ("ckey", Progval.Str ckey);
              ("cval", Progval.Str cval);
              ("nkey", Progval.Str nkey);
              ("nval", Progval.Str nval);
            ])
       ~starts:centers ())
