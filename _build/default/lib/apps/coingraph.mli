(** CoinGraph — the blockchain explorer built on Weaver (paper §5.2, §6.1).

    Stores the (synthetic, see DESIGN.md) blockchain as a directed graph:
    block vertices link to their transactions, transactions to their output
    addresses. Block queries are node programs that traverse block → tx
    edges — the workload of Figs. 7 and 8. Taint tracking follows output
    edges, the flow analysis §5.2 mentions. *)

type t

val create : Weaver_core.Cluster.t -> t

val ingest_block :
  t -> height:int -> ?txs:int -> unit -> (string, string) result
(** Online ingestion through a real transaction (new blocks arriving in
    real time). [txs] defaults to the calibrated
    {!Weaver_workloads.Blockchain.txs_in_block}. *)

val preload_block : t -> height:int -> string
(** Offline bulk install of one block (fast path, for benchmarks). *)

val block_query : t -> height:int -> (Weaver_core.Progval.t, string) result
(** The Fig. 7 block query: render block [height] and all its
    transactions via the ["block_render"] node program. *)

val block_tx_count : t -> height:int -> (int, string) result
(** Number of transactions the block query reports. *)

val taint : t -> from:string -> depth:int -> (string list, string) result
(** Forward taint/flow analysis from a transaction or address vertex. *)
