lib/apps/socialnet.mli: Weaver_core
