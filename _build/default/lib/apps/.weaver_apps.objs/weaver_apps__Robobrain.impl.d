lib/apps/robobrain.ml: Client Cluster List Progval Result Weaver_core
