lib/apps/coingraph.mli: Weaver_core
