lib/apps/socialnet.ml: Client Cluster List Progval Result Weaver_core
