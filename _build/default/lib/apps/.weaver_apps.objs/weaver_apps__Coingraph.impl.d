lib/apps/coingraph.ml: Client Cluster Config List Progval Result Weaver_core Weaver_util Weaver_workloads
