lib/apps/robobrain.mli: Weaver_core
