(** RoboBrain-style knowledge graph on Weaver (paper §5.3).

    Concepts are vertices with a ["concept"] label; relationships are
    labelled edges. Noisy incoming data is merged into existing concepts
    {e transactionally} — the merge below moves all of one concept's
    relations onto another and retires the duplicate in a single atomic
    transaction, so analysts never observe half-merged knowledge. Subgraph
    questions ("which X relates to a Y?") run as node programs. *)

type t

val create : Weaver_core.Cluster.t -> t

val add_concept :
  t -> name:string -> ?attrs:(string * string) list -> unit -> (string, string) result

val relate : t -> src:string -> label:string -> dst:string -> (unit, string) result

val merge_concepts : t -> keep:string -> absorb:string -> (unit, string) result
(** Atomically retarget: every out-relation of [absorb] is recreated on
    [keep], then [absorb] is deleted — one transaction (§5.3). *)

val relations : t -> concept:string -> ((string * string) list, string) result
(** [(label, dst)] pairs of a concept's visible out-edges. *)

val concepts_related_to :
  t ->
  centers:string list ->
  center_attr:string * string ->
  nbr_attr:string * string ->
  ((string * string) list, string) result
(** Star-pattern subgraph query over candidate centers: match centers with
    [center_attr] adjacent to a vertex with [nbr_attr]; returns
    [(center, neighbour)] pairs. *)
