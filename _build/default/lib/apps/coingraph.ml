open Weaver_core
module Blockchain = Weaver_workloads.Blockchain
module Xrand = Weaver_util.Xrand

type t = { cluster : Cluster.t; client : Client.t; rng : Xrand.t }

let create cluster =
  {
    cluster;
    client = Cluster.client cluster;
    rng = Xrand.create ~seed:(Cluster.config cluster).Config.seed ();
  }

let ingest_block t ~height ?txs () =
  let txs = match txs with Some n -> n | None -> Blockchain.txs_in_block height in
  Blockchain.add_block_tx t.client ~rng:t.rng ~height ~txs

let preload_block t ~height =
  Blockchain.install_block t.cluster ~rng:t.rng ~height ()

let block_query t ~height =
  Client.run_program t.client ~prog:"block_render" ~params:Progval.Null
    ~starts:[ Blockchain.block_vid height ] ()

let block_tx_count t ~height =
  Result.map
    (fun r ->
      List.length
        (List.filter
           (fun entry -> Progval.assoc_opt "tx" entry <> None)
           (Progval.to_list r)))
    (block_query t ~height)

let taint t ~from ~depth =
  Result.map
    (fun r -> List.map Progval.to_str (Progval.to_list r))
    (Client.run_program t.client ~prog:"taint"
       ~params:(Progval.Assoc [ ("depth", Progval.Int depth) ])
       ~starts:[ from ] ())
