open Weaver_core

type t = { client : Client.t }

let create cluster = { client = Cluster.client cluster }

let add_user t ~name =
  let tx = Client.Tx.begin_ t.client in
  let vid = Client.Tx.create_vertex tx () in
  Client.Tx.set_vertex_prop tx ~vid ~key:"name" ~value:name;
  Client.Tx.set_vertex_prop tx ~vid ~key:"type" ~value:"user";
  Result.map (fun () -> vid) (Client.commit t.client tx)

let befriend t ~user ~friend_ =
  let tx = Client.Tx.begin_ t.client in
  let eid = Client.Tx.create_edge tx ~src:user ~dst:friend_ in
  Client.Tx.set_edge_prop tx ~src:user ~eid ~key:"rel" ~value:"friend";
  Client.commit t.client tx

let post_photo t ~owner ~visible_to =
  let tx = Client.Tx.begin_ t.client in
  let photo = Client.Tx.create_vertex tx () in
  Client.Tx.set_vertex_prop tx ~vid:photo ~key:"type" ~value:"photo";
  let own = Client.Tx.create_edge tx ~src:owner ~dst:photo in
  Client.Tx.set_edge_prop tx ~src:owner ~eid:own ~key:"rel" ~value:"OWNS";
  List.iter
    (fun nbr ->
      let e = Client.Tx.create_edge tx ~src:photo ~dst:nbr in
      Client.Tx.set_edge_prop tx ~src:photo ~eid:e ~key:"rel" ~value:"VISIBLE")
    visible_to;
  Result.map (fun () -> photo) (Client.commit t.client tx)

let get_edges t vid =
  Client.run_program t.client ~prog:"get_edges" ~params:Progval.Null ~starts:[ vid ] ()

let friends t ~user =
  Result.map
    (fun edges ->
      List.filter_map
        (fun e ->
          let props = Progval.assoc "props" e in
          if Progval.assoc_opt "rel" props = Some (Progval.Str "friend") then
            Some (Progval.to_str (Progval.assoc "dst" e))
          else None)
        (Progval.to_list edges))
    (get_edges t user)

let can_see t ~viewer ~photo =
  Result.map
    (fun edges ->
      List.exists
        (fun e ->
          Progval.to_str (Progval.assoc "dst" e) = viewer
          && Progval.assoc_opt "rel" (Progval.assoc "props" e)
             = Some (Progval.Str "VISIBLE"))
        (Progval.to_list edges))
    (get_edges t photo)

let feed_degree t ~user =
  Result.map Progval.to_int
    (Client.run_program t.client ~prog:"count_edges" ~params:Progval.Null
       ~starts:[ user ] ())
