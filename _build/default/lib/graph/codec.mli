(** Binary serialization of multi-version graph records and timestamps —
    the durable on-disk format of the backing store's contents (used by
    {!Weaver_core} backups and disaster recovery).

    Encodings are self-contained (no external schema) and versioned with a
    one-byte tag so the format can evolve. Round-tripping is exact:
    [decode_vertex (encode_vertex v) = v]. *)

val encode_stamp : Weaver_util.Wire.Writer.t -> Weaver_vclock.Vclock.t -> unit
val decode_stamp : Weaver_util.Wire.Reader.t -> Weaver_vclock.Vclock.t

val encode_vertex : Mgraph.vertex -> string
(** Serialize a full multi-version vertex record: lifespan, property
    versions, and every edge version with its properties. *)

val decode_vertex : string -> Mgraph.vertex
(** @raise Weaver_util.Wire.Reader.Corrupt on malformed input. *)
