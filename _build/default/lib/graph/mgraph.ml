module Vclock = Weaver_vclock.Vclock

type stamp = Vclock.t
type before = stamp -> stamp -> bool
type lifespan = { created : stamp; deleted : stamp option }
type prop = { pkey : string; pval : string; p_life : lifespan }

type edge = {
  eid : string;
  dst : string;
  e_life : lifespan;
  e_props : prop list;
}

type vertex = {
  vid : string;
  v_life : lifespan;
  v_props : prop list;
  out : edge list;
}

let at_or_before (before : before) a b = Vclock.equal a b || before a b

let alive before life ~at =
  at_or_before before life.created at
  &&
  match life.deleted with
  | None -> true
  | Some d -> not (at_or_before before d at)

let span at = { created = at; deleted = None }

let create_vertex ~vid ~at =
  { vid; v_life = span at; v_props = []; out = [] }

let delete_vertex v ~at = { v with v_life = { v.v_life with deleted = Some at } }

let add_edge v ~eid ~dst ~at =
  { v with out = { eid; dst; e_life = span at; e_props = [] } :: v.out }

let kill_life life ~at =
  match life.deleted with None -> { life with deleted = Some at } | Some _ -> life

let delete_edge v ~eid ~at =
  let out =
    List.map
      (fun e ->
        if String.equal e.eid eid && e.e_life.deleted = None then
          { e with e_life = kill_life e.e_life ~at }
        else e)
      v.out
  in
  { v with out }

let close_prop before props ~key ~at =
  List.map
    (fun p ->
      if String.equal p.pkey key && alive before p.p_life ~at then
        { p with p_life = kill_life p.p_life ~at }
      else p)
    props

let set_vertex_prop before v ~key ~value ~at =
  let closed = close_prop before v.v_props ~key ~at in
  { v with v_props = { pkey = key; pval = value; p_life = span at } :: closed }

let del_vertex_prop before v ~key ~at =
  { v with v_props = close_prop before v.v_props ~key ~at }

let map_edge v ~eid f =
  { v with out = List.map (fun e -> if String.equal e.eid eid then f e else e) v.out }

let set_edge_prop before v ~eid ~key ~value ~at =
  map_edge v ~eid (fun e ->
      if e.e_life.deleted = None then
        let closed = close_prop before e.e_props ~key ~at in
        { e with e_props = { pkey = key; pval = value; p_life = span at } :: closed }
      else e)

let del_edge_prop before v ~eid ~key ~at =
  map_edge v ~eid (fun e -> { e with e_props = close_prop before e.e_props ~key ~at })

let vertex_alive before v ~at = alive before v.v_life ~at

let out_edges before v ~at = List.filter (fun e -> alive before e.e_life ~at) v.out

let props_at before props ~at =
  List.filter_map
    (fun p -> if alive before p.p_life ~at then Some (p.pkey, p.pval) else None)
    props

let vertex_props before v ~at = props_at before v.v_props ~at
let edge_props before e ~at = props_at before e.e_props ~at

let edge_has_prop before e ~key ?value ~at () =
  List.exists
    (fun p ->
      alive before p.p_life ~at
      && String.equal p.pkey key
      && match value with None -> true | Some v -> String.equal p.pval v)
    e.e_props

let degree before v ~at = List.length (out_edges before v ~at)

let dead_before before life ~watermark =
  match life.deleted with Some d -> before d watermark | None -> false

let compact before v ~watermark =
  if dead_before before v.v_life ~watermark then None
  else
    let keep_prop p = not (dead_before before p.p_life ~watermark) in
    let out =
      List.filter_map
        (fun e ->
          if dead_before before e.e_life ~watermark then None
          else Some { e with e_props = List.filter keep_prop e.e_props })
        v.out
    in
    Some { v with v_props = List.filter keep_prop v.v_props; out }

let pp_vertex fmt v =
  let dead = match v.v_life.deleted with Some _ -> " (deleted)" | None -> "" in
  Format.fprintf fmt "@[<v 2>vertex %s%s@ props:%d edge-versions:%d@]" v.vid dead
    (List.length v.v_props) (List.length v.out)
