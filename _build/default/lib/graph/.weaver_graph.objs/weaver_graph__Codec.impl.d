lib/graph/codec.ml: Array Mgraph Weaver_util Weaver_vclock
