lib/graph/codec.mli: Mgraph Weaver_util Weaver_vclock
