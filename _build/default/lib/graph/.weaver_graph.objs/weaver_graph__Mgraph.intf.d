lib/graph/mgraph.mli: Format Weaver_vclock
