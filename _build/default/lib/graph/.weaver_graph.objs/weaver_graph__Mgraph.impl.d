lib/graph/mgraph.ml: Format List String Weaver_vclock
