lib/util/xrand.mli:
