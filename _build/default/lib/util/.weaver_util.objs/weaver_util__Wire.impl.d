lib/util/wire.ml: Buffer Char List String
