lib/util/xrand.ml: Array Float Int64
