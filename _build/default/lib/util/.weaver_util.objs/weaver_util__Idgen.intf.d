lib/util/idgen.mli:
