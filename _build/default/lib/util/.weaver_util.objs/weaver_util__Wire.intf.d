lib/util/wire.mli:
