lib/util/stats.mli:
