lib/util/heap.mli:
