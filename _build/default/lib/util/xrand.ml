type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ?(seed = 0x57eaf3f5) () = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let int t n =
  assert (n > 0);
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 random bits mapped to [0,1) *)
  v /. 9007199254740992.0 *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

(* Zipf by inverse-CDF over the harmonic weights would be O(n) per sample;
   instead use the classic Gray/Jain approximation: precompute nothing and
   use the analytic inverse of the continuous approximation, then clamp.
   Accuracy is sufficient for workload skew purposes. *)
let zipf t ~n ~theta =
  assert (n > 0);
  if theta <= 0.0 then int t n
  else begin
    let alpha = 1.0 -. theta in
    let u = float t 1.0 in
    let u = if u <= 0.0 then 1e-12 else u in
    (* continuous zipf-like inverse: x = n^(u) biased towards 0 *)
    let x = Float.of_int n ** (u ** (1.0 /. alpha)) in
    let v = int_of_float x - 1 in
    if v < 0 then 0 else if v >= n then n - 1 else v
  end

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))
