(** Compact binary encoding primitives (varints, strings, lists).

    The backing store's durable format serializes vertex records and
    timestamps through these helpers. LEB128 variable-length integers keep
    small counters (clock components, degrees) at one byte. *)

module Writer : sig
  type t

  val create : unit -> t
  val varint : t -> int -> unit
  (** LEB128, non-negative integers only. @raise Invalid_argument on
      negatives. *)

  val string : t -> string -> unit
  (** Length-prefixed bytes. *)

  val bool : t -> bool -> unit

  val list : t -> ('a -> unit) -> 'a list -> unit
  (** Count-prefixed sequence; the callback writes each element (typically
      a closure over this writer). *)

  val option : t -> ('a -> unit) -> 'a option -> unit
  val contents : t -> string
end

module Reader : sig
  type t

  exception Corrupt of string
  (** Raised on truncated or malformed input. *)

  val create : string -> t
  val varint : t -> int
  val string : t -> string
  val bool : t -> bool
  val list : t -> (unit -> 'a) -> 'a list
  val option : t -> (unit -> 'a) -> 'a option

  val at_end : t -> bool
  (** All input consumed. *)
end
