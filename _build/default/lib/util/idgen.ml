type t = { mutable counter : int }

let create ?(start = 0) () = { counter = start - 1 }

let next t =
  t.counter <- t.counter + 1;
  t.counter

let next_str t ~prefix = Printf.sprintf "%s%d" prefix (next t)

let current t = t.counter
