(** Monotone unique identifier generation.

    Vertices, edges, transactions, and node programs all need cluster-unique
    handles. An [Idgen.t] hands out strictly increasing integers; the
    string helpers add a type prefix for readable debugging output. *)

type t

val create : ?start:int -> unit -> t
val next : t -> int
(** Strictly increasing across calls on the same [t]. *)

val next_str : t -> prefix:string -> string
(** E.g. [next_str g ~prefix:"v"] gives ["v42"]. *)

val current : t -> int
(** Last value handed out ([start - 1] if none yet). *)
