(** Polymorphic binary min-heap with an explicit comparison function.

    Used for the discrete-event queue of the simulator and the per-gatekeeper
    transaction queues at shard servers. All operations are the standard
    O(log n) sift variants. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** All elements in unspecified order (heap unchanged). *)

val iter : ('a -> unit) -> 'a t -> unit
