(** Collection and summarisation of measurement samples.

    Benchmarks collect per-operation latencies into a [t], then report
    means, percentiles, and the cumulative distributions plotted in the
    paper's Figs. 10 and 11. *)

type t
(** A growable bag of float samples. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val is_empty : t -> bool

val mean : t -> float
(** 0 on an empty bag. *)

val stddev : t -> float
val min_val : t -> float
val max_val : t -> float
val total : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]]; nearest-rank on the sorted
    samples. 0 on an empty bag. *)

val cdf : t -> points:int -> (float * float) list
(** [cdf t ~points] returns [(value, fraction <= value)] pairs sampled at
    [points] evenly spaced ranks — the series behind a CDF plot. *)

val summary : t -> string
(** One-line human-readable summary (n, mean, p50, p99, max). *)

(** Fixed-bucket histogram over a data range, used for coordination-message
    counting and distribution sanity checks. *)
module Histogram : sig
  type h

  val create : lo:float -> hi:float -> buckets:int -> h
  val add : h -> float -> unit
  val counts : h -> int array
  val bucket_of : h -> float -> int
  val total : h -> int
end
