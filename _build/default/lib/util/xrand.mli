(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through a seeded [Xrand.t] so that
    every simulation, test, and benchmark is reproducible bit-for-bit. The
    core generator is splitmix64, which is fast, has a 64-bit state, and
    passes BigCrush. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes a fresh generator. Identical seeds yield
    identical streams. Default seed is [0x57eaf3f5]. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]; the two
    streams are statistically independent. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed positive float with the given mean. *)

val zipf : t -> n:int -> theta:float -> int
(** Zipf-distributed value in [\[0, n)] with skew [theta] (0 = uniform,
    typical social-network skew 0.8–0.99). Uses the rejection-inversion
    method; O(1) per sample after O(1) setup per call pair. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
