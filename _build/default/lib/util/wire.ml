module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 256

  let varint b n =
    if n < 0 then invalid_arg "Wire.varint: negative";
    let rec go n =
      if n < 0x80 then Buffer.add_char b (Char.chr n)
      else begin
        Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
        go (n lsr 7)
      end
    in
    go n

  let string b s =
    varint b (String.length s);
    Buffer.add_string b s

  let bool b v = Buffer.add_char b (if v then '\001' else '\000')

  let list b f l =
    varint b (List.length l);
    List.iter f l

  let option b f = function
    | None -> bool b false
    | Some v ->
        bool b true;
        f v

  let contents = Buffer.contents
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  exception Corrupt of string

  let create data = { data; pos = 0 }

  let byte t =
    if t.pos >= String.length t.data then raise (Corrupt "truncated");
    let c = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    c

  let varint t =
    let rec go shift acc =
      if shift > 62 then raise (Corrupt "varint too long");
      let b = byte t in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let string t =
    let len = varint t in
    if t.pos + len > String.length t.data then raise (Corrupt "truncated string");
    let s = String.sub t.data t.pos len in
    t.pos <- t.pos + len;
    s

  let bool t =
    match byte t with
    | 0 -> false
    | 1 -> true
    | _ -> raise (Corrupt "bad bool")

  let list t f =
    let n = varint t in
    List.init n (fun _ -> f ())

  let option t f = if bool t then Some (f ()) else None

  let at_end t = t.pos = String.length t.data
end
