lib/partition/partition.mli: Hashtbl
