lib/partition/partition.ml: Array Char Hashtbl List String
