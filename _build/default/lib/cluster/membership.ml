type role = Gatekeeper | Shard

type server = { role : role; mutable last_heartbeat : float; mutable alive : bool }

type t = { servers : (int, server) Hashtbl.t; mutable epoch : int }

let create () = { servers = Hashtbl.create 16; epoch = 0 }

let register t ~id ~role ~now =
  Hashtbl.replace t.servers id { role; last_heartbeat = now; alive = true }

let heartbeat t ~id ~now =
  match Hashtbl.find_opt t.servers id with
  | Some s when s.alive -> s.last_heartbeat <- now
  | _ -> ()

let detect_failures t ~now ~timeout =
  Hashtbl.fold
    (fun id s acc ->
      if s.alive && now -. s.last_heartbeat > timeout then begin
        s.alive <- false;
        (id, s.role) :: acc
      end
      else acc)
    t.servers []

let is_alive t ~id =
  match Hashtbl.find_opt t.servers id with Some s -> s.alive | None -> false

let live t ~role =
  Hashtbl.fold
    (fun id s acc -> if s.alive && s.role = role then id :: acc else acc)
    t.servers []
  |> List.sort compare

let epoch t = t.epoch

let bump_epoch t =
  t.epoch <- t.epoch + 1;
  t.epoch
