lib/cluster/membership.ml: Hashtbl List
