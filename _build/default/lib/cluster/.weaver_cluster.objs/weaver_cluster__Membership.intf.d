lib/cluster/membership.mli:
