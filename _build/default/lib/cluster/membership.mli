(** Cluster membership, heartbeat-based failure detection, and epochs
    (paper §3.2 "Cluster Manager", §4.3).

    This is the pure state machine behind Weaver's cluster manager: servers
    register, send periodic heartbeats, and are declared failed when their
    last heartbeat is older than the timeout. Every failure triggers an
    {e epoch} bump; the manager actor in [weaver_core] drives the barrier
    protocol that moves all servers to the new epoch in unison and recovers
    the failed server's state from the backing store. *)

type role = Gatekeeper | Shard

type t

val create : unit -> t

val register : t -> id:int -> role:role -> now:float -> unit
(** Add (or re-add, after replacement) a server. Registration counts as a
    heartbeat. *)

val heartbeat : t -> id:int -> now:float -> unit
(** Record a heartbeat; ignored for unknown or failed servers (a failed
    server must re-register). *)

val detect_failures : t -> now:float -> timeout:float -> (int * role) list
(** Servers whose last heartbeat is older than [timeout] µs. They are
    marked failed and removed from the live set; each call returns only
    newly failed servers. *)

val is_alive : t -> id:int -> bool
val live : t -> role:role -> int list
(** Live server ids of the given role, ascending. *)

val epoch : t -> int

val bump_epoch : t -> int
(** Increment and return the new epoch (called by the manager when it
    initiates reconfiguration). *)
