lib/store/store.mli:
