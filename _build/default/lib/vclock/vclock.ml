type t = { epoch : int; origin : int; clocks : int array }
type order = Before | After | Concurrent | Equal

let zero ~n =
  assert (n > 0);
  { epoch = 0; origin = 0; clocks = Array.make n 0 }

let make ~epoch ~origin clocks =
  assert (origin >= 0 && origin < Array.length clocks);
  { epoch; origin; clocks = Array.copy clocks }

let dim t = Array.length t.clocks

let tick t ~origin =
  let clocks = Array.copy t.clocks in
  clocks.(origin) <- clocks.(origin) + 1;
  { epoch = t.epoch; origin; clocks }

let merge a b =
  assert (dim a = dim b);
  assert (a.epoch = b.epoch);
  let clocks = Array.mapi (fun i v -> max v b.clocks.(i)) a.clocks in
  { a with clocks }

let compare_hb a b =
  if a.epoch < b.epoch then Before
  else if a.epoch > b.epoch then After
  else begin
    assert (dim a = dim b);
    let le = ref true and ge = ref true in
    Array.iteri
      (fun i av ->
        let bv = b.clocks.(i) in
        if av < bv then ge := false;
        if av > bv then le := false)
      a.clocks;
    match (!le, !ge) with
    | true, true -> Equal
    | true, false -> Before
    | false, true -> After
    | false, false -> Concurrent
  end

let precedes a b = compare_hb a b = Before
let concurrent a b = compare_hb a b = Concurrent

let equal a b =
  a.epoch = b.epoch && dim a = dim b
  && Array.for_all2 Int.equal a.clocks b.clocks

let sum t = Array.fold_left ( + ) 0 t.clocks

let total_compare a b =
  let c = compare a.epoch b.epoch in
  if c <> 0 then c
  else
    let c = compare (sum a) (sum b) in
    if c <> 0 then c
    else
      let c = compare a.clocks b.clocks in
      if c <> 0 then c else compare a.origin b.origin

let key t =
  let b = Buffer.create 32 in
  Buffer.add_string b (string_of_int t.epoch);
  Buffer.add_char b '@';
  Buffer.add_string b (string_of_int t.origin);
  Array.iter
    (fun v ->
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int v))
    t.clocks;
  Buffer.contents b

let pp fmt t =
  Format.fprintf fmt "e%d<%s>" t.epoch
    (String.concat ","
       (Array.to_list (Array.map string_of_int t.clocks)))

let to_string t = Format.asprintf "%a" pp t

module Truetime = struct
  type tt = { earliest : float; latest : float }

  let now ~rng ~real ~eps =
    assert (eps >= 0.0);
    (* place the true instant uniformly inside the uncertainty interval *)
    let off = if eps > 0.0 then Weaver_util.Xrand.float rng eps else 0.0 in
    { earliest = real -. off; latest = real +. (eps -. off) }

  let after a b = a.earliest > b.latest
  let commit_wait tt = tt.latest -. tt.earliest
end
