lib/vclock/vclock.ml: Array Buffer Format Int String Weaver_util
