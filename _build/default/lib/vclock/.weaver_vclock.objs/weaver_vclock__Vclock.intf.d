lib/vclock/vclock.mli: Format Weaver_util
