(** Epoch-tagged vector clocks — the first, proactive stage of refinable
    timestamps (paper §3.3).

    Each gatekeeper [i] owns component [i] of the vector: it increments it on
    every client request and merges announcements from its peers every τ µs.
    A timestamp also carries the configuration {e epoch}, which the cluster
    manager bumps whenever a failed gatekeeper is replaced (§4.3); a
    timestamp from a later epoch always happens after every timestamp from an
    earlier epoch, which restores monotonicity across the replacement's
    clock reset.

    Comparison yields the classic happens-before partial order; concurrent
    pairs are exactly the ones the timeline oracle must refine. *)

type t = { epoch : int; origin : int; clocks : int array }
(** [origin] is the index of the gatekeeper that issued the timestamp; it
    identifies which component was the issuing tick and serves as the
    deterministic tie-break for {!total_compare}. The array is never
    mutated after construction. *)

type order = Before | After | Concurrent | Equal

val zero : n:int -> t
(** All-zero clock of dimension [n], epoch 0, origin 0. *)

val make : epoch:int -> origin:int -> int array -> t
(** Copies the array. Requires [0 <= origin < Array.length clocks]. *)

val dim : t -> int

val tick : t -> origin:int -> t
(** Increment component [origin] and stamp the result with that origin. *)

val merge : t -> t -> t
(** Element-wise max; keeps the left operand's epoch/origin. Requires equal
    dimensions and epochs. *)

val compare_hb : t -> t -> order
(** Happens-before comparison. Epochs dominate: a lower epoch is [Before] a
    higher one. Within an epoch, standard vector-clock comparison. *)

val precedes : t -> t -> bool
(** [precedes a b] iff [compare_hb a b = Before]. *)

val concurrent : t -> t -> bool
val equal : t -> t -> bool

val total_compare : t -> t -> int
(** Arbitrary but deterministic total order extending happens-before:
    epoch, then clock sum, then lexicographic clocks, then origin. Used
    only for deterministic data-structure ordering (e.g. queue priorities),
    never as a serialization decision for concurrent pairs. *)

val key : t -> string
(** Canonical string form, usable as a hashtable key. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Loosely synchronized real-time intervals à la Spanner TrueTime, used by
    the ablation bench for the §3.5 discussion: a TrueTime-based first stage
    must commit-wait out the error bound ε, costing 2·ε̄ latency. *)
module Truetime : sig
  type tt = { earliest : float; latest : float }

  val now : rng:Weaver_util.Xrand.t -> real:float -> eps:float -> tt
  (** An interval of width ≤ 2·[eps] guaranteed to contain [real]. *)

  val after : tt -> tt -> bool
  (** [after a b] iff [a] definitely happened after [b]. *)

  val commit_wait : tt -> float
  (** Time to wait after acquiring [tt] before it is safe to expose the
      commit ([latest - earliest]). *)
end
