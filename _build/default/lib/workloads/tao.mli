(** Facebook TAO-style social-network workload (paper §5.1, §6.2, Table 1).

    The operation mix follows Table 1: 99.8% reads split
    get_edges 59.4% / count_edges 11.7% / get_node 28.9%, and 0.2% writes
    split create_edge 80% / delete_edge 20%. The read fraction is a
    parameter so the 75%-read workload of Fig. 9b uses the same generator.
    Vertex selection is Zipf-skewed, as social traffic is. *)

type op =
  | Get_edges of string
  | Count_edges of string
  | Get_node of string
  | Create_edge of string * string
  | Delete_edge of string  (** delete one (driver-created) edge at a source vertex *)

val table1_read_fraction : float
(** 0.998, Table 1. *)

val gen_op :
  rng:Weaver_util.Xrand.t ->
  vertices:string array ->
  ?read_fraction:float ->
  ?theta:float ->
  unit ->
  op
(** One operation from the mix. [theta] is the Zipf skew over [vertices]
    (default 0.75). Defaults to the Table 1 read fraction. *)

val mix_counts : op list -> (string * int) list
(** Frequency table by op name, for reproducing Table 1. *)

(** Closed-loop benchmark driver: [clients] concurrent sessions that each
    keep exactly one operation in flight; reads run as node programs,
    writes as transactions (paper §6.2). *)
module Driver : sig
  type result = {
    completed : int;  (** operations finished inside the window *)
    aborted : int;  (** write transactions that lost OCC validation *)
    duration : float;  (** measurement window, µs *)
    throughput : float;  (** completed ops per second of virtual time *)
    read_latencies : Weaver_util.Stats.t;
    write_latencies : Weaver_util.Stats.t;
  }

  val run :
    Weaver_core.Cluster.t ->
    vertices:string array ->
    clients:int ->
    duration:float ->
    ?read_fraction:float ->
    ?theta:float ->
    ?warmup:float ->
    unit ->
    result
  (** Drive the cluster for [warmup + duration] virtual µs and report the
      measurement window. The generator's RNG derives from the cluster
      seed, so runs are reproducible. *)
end
