(** Synthetic graph generators standing in for the paper's datasets
    (LiveJournal, the small Twitter ego graph, and the Twitter 2009 crawl —
    none of which ship in this sealed environment; see DESIGN.md).

    All generators are deterministic in the supplied RNG and return an edge
    list over vertices named [<prefix><i>]. *)

type t = {
  prefix : string;
  n_vertices : int;
  edges : (int * int) list;  (** directed (src, dst) index pairs *)
}

val vid : t -> int -> string
(** Name of vertex [i]. *)

val vertex_ids : t -> string list

val adjacency : t -> (string * string list) list
(** Per-vertex out-neighbour lists (for the partitioners). *)

val uniform :
  rng:Weaver_util.Xrand.t -> ?prefix:string -> vertices:int -> edges:int -> unit -> t
(** Uniform random digraph (self-loops and duplicates filtered) — the shape
    of the paper's "small Twitter" benchmark graph. *)

val rmat :
  rng:Weaver_util.Xrand.t -> ?prefix:string -> vertices:int -> edges:int -> unit -> t
(** R-MAT (a=0.57, b=0.19, c=0.19, d=0.05): heavy-tailed degree
    distribution standing in for social-network crawls. [vertices] is
    rounded up to a power of two internally; isolated vertices keep their
    names. *)

val preferential :
  rng:Weaver_util.Xrand.t ->
  ?prefix:string ->
  vertices:int ->
  out_degree:int ->
  unit ->
  t
(** Preferential attachment: each new vertex links to [out_degree] earlier
    vertices biased by current in-degree — LiveJournal-like. *)

val chain : ?prefix:string -> vertices:int -> unit -> t
(** [v0 → v1 → …] — deterministic, for tests. *)

val star : ?prefix:string -> leaves:int -> unit -> t
(** Hub [v0] pointing at [leaves] leaves — deterministic, for tests. *)
