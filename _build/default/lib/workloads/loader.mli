(** Loading graphs into a Weaver cluster.

    Two paths:
    - {!bulk_load} drives everything through real client transactions with
      pipelining — the honest path, used by examples and correctness tests;
    - {!fast_install} writes the vertex records, directory entries, and
      shard tables directly at virtual time 0, standing in for the offline
      dataset import the paper performs before each experiment. Benchmarks
      use it so measurement windows contain only workload traffic. *)

val bulk_load :
  Weaver_core.Cluster.t ->
  Weaver_core.Client.t ->
  ?batch:int ->
  ?pipeline:int ->
  Graphgen.t ->
  (int, string) result
(** Create all vertices then all edges in batched transactions ([batch] ops
    per transaction, default 64; [pipeline] transactions in flight, default
    16). Returns the number of transactions committed, or the first
    error. *)

val fast_install : Weaver_core.Cluster.t -> Graphgen.t -> unit
(** Install the graph as of the zero timestamp: backing-store records,
    directory entries, last-update stamps, and resident shard copies
    (respecting shard capacity when demand paging is on). Must be called
    before any traffic. *)

val install_vertex :
  Weaver_core.Cluster.t ->
  vid:string ->
  ?shard:int ->
  ?props:(string * string) list ->
  edges:(string * (string * string) list) list ->
  unit ->
  unit
(** [fast_install] for one vertex: [edges] are [(dst, edge_props)]. Used by
    application-specific installers (e.g. the blockchain builder). [shard]
    overrides the hashed placement — the partitioning ablation installs
    LDG/restreamed assignments this way. *)

val fast_install_with_assignment :
  Weaver_core.Cluster.t -> Weaver_partition.Partition.assignment -> Graphgen.t -> unit
(** {!fast_install} with an explicit vertex → shard assignment (vertices
    missing from the assignment fall back to hashing). *)
