open Weaver_core
module Store = Weaver_store.Store
module Vclock = Weaver_vclock.Vclock
module Mgraph = Weaver_graph.Mgraph

(* run one pipelined phase of batched transactions to completion *)
let run_phase cluster client ~batch ~pipeline ops ~fill =
  let ops_queue = Queue.create () in
  List.iter (fun op -> Queue.push op ops_queue) ops;
  let committed = ref 0 and failed = ref None and inflight = ref 0 in
  let rec submit_next () =
    if Option.is_none !failed && not (Queue.is_empty ops_queue) then begin
      let tx = Client.Tx.begin_ client in
      let n = ref 0 in
      while !n < batch && not (Queue.is_empty ops_queue) do
        fill tx (Queue.pop ops_queue);
        incr n
      done;
      incr inflight;
      Client.commit_async client tx ~on_result:(fun r ->
          decr inflight;
          (match r with
          | Ok () -> incr committed
          | Error e -> if Option.is_none !failed then failed := Some e);
          submit_next ())
    end
  in
  for _ = 1 to pipeline do
    submit_next ()
  done;
  let budget = ref 1_000_000 in
  while !inflight > 0 && !budget > 0 do
    decr budget;
    Cluster.run_for cluster 1_000.0
  done;
  match !failed with
  | Some e -> Error e
  | None -> if !inflight = 0 then Ok !committed else Error "load stalled"

let bulk_load cluster client ?(batch = 64) ?(pipeline = 16) (g : Graphgen.t) =
  (* vertices first, then a pipeline barrier, then edges: an edge batch
     must never race ahead of the batch creating its endpoints *)
  let vertex_phase =
    run_phase cluster client ~batch ~pipeline
      (List.init g.Graphgen.n_vertices Fun.id)
      ~fill:(fun tx i -> ignore (Client.Tx.create_vertex tx ~id:(Graphgen.vid g i) ()))
  in
  match vertex_phase with
  | Error e -> Error e
  | Ok v_txs -> (
      let edge_phase =
        run_phase cluster client ~batch ~pipeline g.Graphgen.edges
          ~fill:(fun tx (s, d) ->
            ignore
              (Client.Tx.create_edge tx ~src:(Graphgen.vid g s) ~dst:(Graphgen.vid g d)))
      in
      match edge_phase with Error e -> Error e | Ok e_txs -> Ok (v_txs + e_txs))

let zero_stamp cluster =
  Vclock.zero ~n:(Cluster.config cluster).Config.n_gatekeepers

let install_record cluster ?shard vid (record : Mgraph.vertex) =
  let rt = Cluster.runtime cluster in
  let ts = zero_stamp cluster in
  let shard =
    match shard with
    | Some s -> s
    | None ->
        Weaver_partition.Partition.hash_vertex
          ~shards:(Cluster.config cluster).Config.n_shards vid
  in
  let stx = Store.Tx.begin_ rt.Runtime.store in
  Store.Tx.put stx (Runtime.vkey vid) (Runtime.Vrec record);
  Store.Tx.put stx (Runtime.dirkey vid) (Runtime.Dir shard);
  Store.Tx.put stx (Runtime.lukey vid) (Runtime.Stamp ts);
  match Store.Tx.commit stx with
  | Ok () -> ()
  | Error _ -> invalid_arg "fast_install: store conflict during preload"

let install_vertex cluster ~vid ?shard ?(props = []) ~edges () =
  let ts = zero_stamp cluster in
  let before a b = Vclock.precedes a b in
  let v = Mgraph.create_vertex ~vid ~at:ts in
  let v =
    List.fold_left
      (fun v (key, value) -> Mgraph.set_vertex_prop before v ~key ~value ~at:ts)
      v props
  in
  let _, v =
    List.fold_left
      (fun (i, v) (dst, eprops) ->
        let eid = Printf.sprintf "pre_%s_%d" vid i in
        let v = Mgraph.add_edge v ~eid ~dst ~at:ts in
        let v =
          List.fold_left
            (fun v (key, value) -> Mgraph.set_edge_prop before v ~eid ~key ~value ~at:ts)
            v eprops
        in
        (i + 1, v))
      (0, v) edges
  in
  install_record cluster ?shard vid v

let install_all cluster ?assignment (g : Graphgen.t) =
  let nbrs = Array.make g.Graphgen.n_vertices [] in
  List.iter (fun (s, d) -> nbrs.(s) <- Graphgen.vid g d :: nbrs.(s)) g.Graphgen.edges;
  for i = 0 to g.Graphgen.n_vertices - 1 do
    let vid = Graphgen.vid g i in
    let shard = Option.bind assignment (fun a -> Hashtbl.find_opt a vid) in
    install_vertex cluster ~vid ?shard
      ~edges:(List.map (fun d -> (d, [])) nbrs.(i))
      ()
  done;
  (* make the records resident in shard memory by simulating the initial
     recovery read every shard performs when it boots with data present *)
  Cluster.reload_shards cluster

let fast_install cluster g = install_all cluster g

let fast_install_with_assignment cluster assignment g =
  install_all cluster ~assignment g
