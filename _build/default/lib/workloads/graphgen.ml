module Xrand = Weaver_util.Xrand

type t = { prefix : string; n_vertices : int; edges : (int * int) list }

let vid t i = t.prefix ^ string_of_int i
let vertex_ids t = List.init t.n_vertices (vid t)

let adjacency t =
  let nbrs = Array.make t.n_vertices [] in
  List.iter (fun (s, d) -> nbrs.(s) <- vid t d :: nbrs.(s)) t.edges;
  List.init t.n_vertices (fun i -> (vid t i, nbrs.(i)))

let dedup_edges edges =
  let seen = Hashtbl.create (List.length edges) in
  List.filter
    (fun (s, d) ->
      if s = d || Hashtbl.mem seen (s, d) then false
      else begin
        Hashtbl.replace seen (s, d) ();
        true
      end)
    edges

let uniform ~rng ?(prefix = "v") ~vertices ~edges () =
  assert (vertices > 1 && edges >= 0);
  let raw =
    List.init edges (fun _ -> (Xrand.int rng vertices, Xrand.int rng vertices))
  in
  { prefix; n_vertices = vertices; edges = dedup_edges raw }

let rmat ~rng ?(prefix = "v") ~vertices ~edges () =
  assert (vertices > 1 && edges >= 0);
  let levels =
    let rec go l n = if n >= vertices then l else go (l + 1) (n * 2) in
    go 0 1
  in
  let gen_edge () =
    let s = ref 0 and d = ref 0 in
    for _ = 1 to levels do
      let p = Xrand.float rng 1.0 in
      (* quadrant probabilities a=0.57 b=0.19 c=0.19 d=0.05 *)
      let sbit, dbit =
        if p < 0.57 then (0, 0)
        else if p < 0.76 then (0, 1)
        else if p < 0.95 then (1, 0)
        else (1, 1)
      in
      s := (!s * 2) + sbit;
      d := (!d * 2) + dbit
    done;
    (!s mod vertices, !d mod vertices)
  in
  let raw = List.init edges (fun _ -> gen_edge ()) in
  { prefix; n_vertices = vertices; edges = dedup_edges raw }

let preferential ~rng ?(prefix = "v") ~vertices ~out_degree () =
  assert (vertices > out_degree && out_degree >= 1);
  (* endpoint multiset: uniform sampling from it biases towards
     high-degree vertices (Barabási–Albert) *)
  let target_arr = Array.make (vertices * (out_degree + 1) * 2) 0 in
  let n_arr = ref 0 in
  let push v =
    target_arr.(!n_arr) <- v;
    incr n_arr
  in
  let edges = ref [] in
  push 0;
  for v = 1 to vertices - 1 do
    let k = min v out_degree in
    let chosen = Hashtbl.create k in
    let attempts = ref 0 in
    while Hashtbl.length chosen < k && !attempts < 20 * k do
      incr attempts;
      let u = target_arr.(Xrand.int rng !n_arr) in
      if u <> v then Hashtbl.replace chosen u ()
    done;
    Hashtbl.iter
      (fun u () ->
        edges := (v, u) :: !edges;
        push u)
      chosen;
    push v
  done;
  { prefix; n_vertices = vertices; edges = dedup_edges !edges }

let chain ?(prefix = "v") ~vertices () =
  assert (vertices >= 1);
  {
    prefix;
    n_vertices = vertices;
    edges = List.init (max 0 (vertices - 1)) (fun i -> (i, i + 1));
  }

let star ?(prefix = "v") ~leaves () =
  assert (leaves >= 0);
  {
    prefix;
    n_vertices = leaves + 1;
    edges = List.init leaves (fun i -> (0, i + 1));
  }
