(** Synthetic Bitcoin blockchain for CoinGraph (paper §5.2, §6.1).

    The real blockchain (80M vertices / 1.2B edges in the paper) is not
    available here; this generator reproduces the structural properties the
    block-query experiments depend on: a block vertex linked by
    [type = "tx"] edges to its transaction vertices, each transaction
    linked to output-address vertices, and a per-block transaction count
    that grows with block height the way the real chain's did (calibrated
    so block 350,000 carries 1,795 transactions, the figure the paper
    quotes). *)

val txs_in_block : int -> int
(** Transactions in the synthetic block at the given height: a quadratic
    ramp hitting 1,795 at height 350,000, minimum 1. *)

val block_vid : int -> string
(** Vertex id of block [h]. *)

val install_block :
  Weaver_core.Cluster.t ->
  rng:Weaver_util.Xrand.t ->
  height:int ->
  ?outputs_per_tx:int ->
  unit ->
  string
(** Build block [height] offline — block vertex, its transactions, their
    output addresses — via the fast-install path, returning the block's
    vertex id. Each transaction gets [outputs_per_tx] (default 2) output
    edges. *)

val add_block_tx :
  Weaver_core.Client.t ->
  rng:Weaver_util.Xrand.t ->
  height:int ->
  txs:int ->
  (string, string) result
(** The online path (CoinGraph ingesting new blocks in real time, §5.2):
    create the same structure through a real Weaver transaction. Returns
    the block vertex id. *)
