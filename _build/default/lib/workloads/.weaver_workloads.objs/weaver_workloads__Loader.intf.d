lib/workloads/loader.mli: Graphgen Weaver_core Weaver_partition
