lib/workloads/tao.mli: Weaver_core Weaver_util
