lib/workloads/analytics.mli: Weaver_core
