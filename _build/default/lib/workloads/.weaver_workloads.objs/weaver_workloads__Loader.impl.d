lib/workloads/loader.ml: Array Client Cluster Config Fun Graphgen Hashtbl List Option Printf Queue Runtime Weaver_core Weaver_graph Weaver_partition Weaver_store Weaver_vclock
