lib/workloads/graphgen.mli: Weaver_util
