lib/workloads/analytics.ml: Client Cluster List Nodeprog Runtime String Weaver_core Weaver_graph Weaver_store
