lib/workloads/tao.ml: Array Client Cluster Hashtbl List Option Progval Queue Runtime Weaver_core Weaver_sim Weaver_util
