lib/workloads/blockchain.ml: Client Cluster List Loader Printf Weaver_core Weaver_util
