lib/workloads/graphgen.ml: Array Hashtbl List Weaver_util
