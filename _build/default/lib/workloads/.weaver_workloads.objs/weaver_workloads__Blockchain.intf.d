lib/workloads/blockchain.mli: Weaver_core Weaver_util
