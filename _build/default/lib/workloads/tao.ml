open Weaver_core
module Xrand = Weaver_util.Xrand
module Stats = Weaver_util.Stats
module Engine = Weaver_sim.Engine

type op =
  | Get_edges of string
  | Count_edges of string
  | Get_node of string
  | Create_edge of string * string
  | Delete_edge of string

let table1_read_fraction = 0.998

let gen_op ~rng ~vertices ?(read_fraction = table1_read_fraction) ?(theta = 0.75) () =
  let n = Array.length vertices in
  let pick () = vertices.(Xrand.zipf rng ~n ~theta) in
  if Xrand.float rng 1.0 < read_fraction then begin
    (* Table 1 read mix: get_edges 59.4 / count_edges 11.7 / get_node 28.9 *)
    let p = Xrand.float rng 1.0 in
    if p < 0.594 then Get_edges (pick ())
    else if p < 0.594 +. 0.117 then Count_edges (pick ())
    else Get_node (pick ())
  end
  else if (* Table 1 write mix: create_edge 80 / delete_edge 20 *)
          Xrand.float rng 1.0 < 0.8 then Create_edge (pick (), pick ())
  else Delete_edge (pick ())

let op_name = function
  | Get_edges _ -> "get_edges"
  | Count_edges _ -> "count_edges"
  | Get_node _ -> "get_node"
  | Create_edge _ -> "create_edge"
  | Delete_edge _ -> "delete_edge"

let mix_counts ops =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun op ->
      let name = op_name op in
      Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name)))
    ops;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

module Driver = struct
  type result = {
    completed : int;
    aborted : int;
    duration : float;
    throughput : float;
    read_latencies : Stats.t;
    write_latencies : Stats.t;
  }

  (* one closed-loop client: issue an op, and on completion immediately
     issue the next *)
  let spawn_client cluster ~rng ~vertices ~read_fraction ~theta ~state =
    let client = Cluster.client cluster in
    let my_edges : (string * string) Queue.t = Queue.create () in
    let completed, aborted, reads, writes, window_start = state in
    let engine_now () = Cluster.now cluster in
    let record_read t0 =
      if engine_now () >= !window_start then begin
        incr completed;
        Stats.add reads (engine_now () -. t0)
      end
    in
    let record_write t0 ok =
      if engine_now () >= !window_start then
        if ok then begin
          incr completed;
          Stats.add writes (engine_now () -. t0)
        end
        else incr aborted
    in
    let rec next () =
      let t0 = engine_now () in
      match gen_op ~rng ~vertices ~read_fraction ~theta () with
      | Get_edges v ->
          Client.run_program_async client ~prog:"get_edges" ~params:Progval.Null
            ~starts:[ v ]
            ~on_result:(fun _ ->
              record_read t0;
              next ())
            ()
      | Count_edges v ->
          Client.run_program_async client ~prog:"count_edges" ~params:Progval.Null
            ~starts:[ v ]
            ~on_result:(fun _ ->
              record_read t0;
              next ())
            ()
      | Get_node v ->
          Client.run_program_async client ~prog:"get_node" ~params:Progval.Null
            ~starts:[ v ]
            ~on_result:(fun _ ->
              record_read t0;
              next ())
            ()
      | Create_edge (src, dst) ->
          let tx = Client.Tx.begin_ client in
          let eid = Client.Tx.create_edge tx ~src ~dst in
          Client.commit_async client tx ~on_result:(fun r ->
              (match r with
              | Ok () -> Queue.push (src, eid) my_edges
              | Error _ -> ());
              record_write t0 (r = Ok ());
              next ())
      | Delete_edge fallback_src ->
          if Queue.is_empty my_edges then begin
            (* nothing of ours to delete yet: degrade to a create so the
               write fraction stays intact *)
            let tx = Client.Tx.begin_ client in
            let eid = Client.Tx.create_edge tx ~src:fallback_src ~dst:fallback_src in
            Client.commit_async client tx ~on_result:(fun r ->
                (match r with
                | Ok () -> Queue.push (fallback_src, eid) my_edges
                | Error _ -> ());
                record_write t0 (r = Ok ());
                next ())
          end
          else begin
            let src, eid = Queue.pop my_edges in
            let tx = Client.Tx.begin_ client in
            Client.Tx.delete_edge tx ~src ~eid;
            Client.commit_async client tx ~on_result:(fun r ->
                record_write t0 (r = Ok ());
                next ())
          end
    in
    next ()

  let run cluster ~vertices ~clients ~duration ?(read_fraction = table1_read_fraction)
      ?(theta = 0.75) ?(warmup = 0.0) () =
    assert (clients > 0 && duration > 0.0);
    let rt = Cluster.runtime cluster in
    let master = Engine.rng rt.Runtime.engine in
    let completed = ref 0 and aborted = ref 0 in
    let reads = Stats.create () and writes = Stats.create () in
    let window_start = ref (Cluster.now cluster +. warmup) in
    let state = (completed, aborted, reads, writes, window_start) in
    for _ = 1 to clients do
      let rng = Xrand.split master in
      spawn_client cluster ~rng ~vertices ~read_fraction ~theta ~state
    done;
    Cluster.run_for cluster (warmup +. duration);
    {
      completed = !completed;
      aborted = !aborted;
      duration;
      throughput = float_of_int !completed /. (duration /. 1_000_000.0);
      read_latencies = reads;
      write_latencies = writes;
    }
end
