open Weaver_core
module Xrand = Weaver_util.Xrand

let txs_in_block h =
  if h <= 0 then 1
  else begin
    let frac = float_of_int h /. 350_000.0 in
    max 1 (int_of_float (1795.0 *. frac *. frac))
  end

let block_vid h = Printf.sprintf "blk%d" h
let tx_vid h i = Printf.sprintf "btx%d_%d" h i
let addr_vid h i j = Printf.sprintf "addr%d_%d_%d" h i j

let install_block cluster ~rng ~height ?(outputs_per_tx = 2) () =
  let n_tx = txs_in_block height in
  let blk = block_vid height in
  (* transactions and their outputs *)
  for i = 0 to n_tx - 1 do
    let outputs =
      List.init outputs_per_tx (fun j ->
          let a = addr_vid height i j in
          Loader.install_vertex cluster ~vid:a
            ~props:[ ("type", "address") ]
            ~edges:[] ();
          (a, [ ("type", "output") ]))
    in
    Loader.install_vertex cluster ~vid:(tx_vid height i)
      ~props:
        [
          ("type", "transaction");
          ("value", string_of_int (1 + Xrand.int rng 1000));
        ]
      ~edges:outputs ()
  done;
  Loader.install_vertex cluster ~vid:blk
    ~props:[ ("type", "block"); ("height", string_of_int height) ]
    ~edges:(List.init n_tx (fun i -> (tx_vid height i, [ ("type", "tx") ])))
    ();
  Cluster.reload_shards cluster;
  blk

let add_block_tx client ~rng ~height ~txs =
  let blk = block_vid height in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:blk ());
  Client.Tx.set_vertex_prop tx ~vid:blk ~key:"type" ~value:"block";
  Client.Tx.set_vertex_prop tx ~vid:blk ~key:"height" ~value:(string_of_int height);
  for i = 0 to txs - 1 do
    let txv = tx_vid height i in
    ignore (Client.Tx.create_vertex tx ~id:txv ());
    Client.Tx.set_vertex_prop tx ~vid:txv ~key:"type" ~value:"transaction";
    Client.Tx.set_vertex_prop tx ~vid:txv ~key:"value"
      ~value:(string_of_int (1 + Xrand.int rng 1000));
    let e = Client.Tx.create_edge tx ~src:blk ~dst:txv in
    Client.Tx.set_edge_prop tx ~src:blk ~eid:e ~key:"type" ~value:"tx"
  done;
  match Client.commit client tx with Ok () -> Ok blk | Error e -> Error e
