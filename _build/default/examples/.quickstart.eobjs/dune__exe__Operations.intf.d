examples/operations.mli:
