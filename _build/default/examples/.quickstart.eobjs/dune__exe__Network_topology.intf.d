examples/network_topology.mli:
