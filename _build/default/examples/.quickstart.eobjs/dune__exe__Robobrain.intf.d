examples/robobrain.mli:
