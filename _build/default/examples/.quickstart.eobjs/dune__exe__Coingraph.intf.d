examples/coingraph.mli:
