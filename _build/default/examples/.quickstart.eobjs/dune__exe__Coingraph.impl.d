examples/coingraph.ml: Client Cluster Coingraph Config Format List Printf Progval Runtime Weaver_apps Weaver_core Weaver_programs
