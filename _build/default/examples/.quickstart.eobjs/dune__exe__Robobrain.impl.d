examples/robobrain.ml: Cluster Config List Printf Robobrain Weaver_apps Weaver_core Weaver_programs
