examples/global_analytics.mli:
