examples/quickstart.ml: Client Cluster Config Format Printf Progval Runtime Weaver_core Weaver_programs
