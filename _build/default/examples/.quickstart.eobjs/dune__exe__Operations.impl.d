examples/operations.ml: Backup Client Cluster Config List Printf Progval Runtime String Weaver_core Weaver_programs
