examples/network_topology.ml: Client Cluster Config Printf Progval Weaver_core Weaver_programs
