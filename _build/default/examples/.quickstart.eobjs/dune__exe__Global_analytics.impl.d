examples/global_analytics.ml: List Printf Weaver
