examples/quickstart.mli:
