examples/social_network.ml: Array Cluster Config Printf Socialnet String Weaver_apps Weaver_core Weaver_programs Weaver_util Weaver_workloads
