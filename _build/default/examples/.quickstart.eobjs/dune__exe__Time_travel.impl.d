examples/time_travel.ml: Client Cluster Config List Printf Progval Weaver_core Weaver_programs
