(* The paper's Fig. 1 motivation: a network controller stores the topology
   in a graph database. Without transactions, a path query racing a link
   migration can observe a path that never existed at any instant. With
   Weaver, the update (delete one link, add another) is atomic and the
   query runs on a consistent snapshot, so phantom paths are impossible.

     dune exec examples/network_topology.exe *)

open Weaver_core

let ok = function Ok v -> v | Error e -> failwith e

let () =
  let cluster = Cluster.create Config.default in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry cluster);
  let client = Cluster.client cluster in

  (* Fig. 1 topology: n1..n7; initially n1-n3-n5 wired, n5-n7 NOT present *)
  let tx = Client.Tx.begin_ client in
  let node i = "n" ^ string_of_int i in
  for i = 1 to 7 do
    ignore (Client.Tx.create_vertex tx ~id:(node i) ())
  done;
  let link tx a b = ignore (Client.Tx.create_edge tx ~src:(node a) ~dst:(node b)) in
  link tx 1 2;
  link tx 1 3;
  let e35 = Client.Tx.create_edge tx ~src:(node 3) ~dst:(node 5) in
  link tx 2 4;
  link tx 5 6;
  ok (Client.commit client tx);

  let reachable ?at target =
    Progval.to_bool
      (ok
         (Client.run_program client ~prog:"reachable"
            ~params:(Progval.Assoc [ ("target", Progval.Str target) ])
            ~starts:[ node 1 ] ?at ()))
  in
  Printf.printf "before churn: n1 -> n7 reachable? %b (correct: false)\n"
    (reachable (node 7));

  (* churn: link (n3,n5) fails and (n5,n7) comes up — ATOMICALLY.
     The dangerous interleaving in the paper: a traversal that crosses
     n3->n5 before the delete and n5->n7 after the add would report the
     phantom path n1-n3-n5-n7. *)
  let snapshot_before = Cluster.gk_clock cluster 0 in
  Cluster.run_for cluster 5_000.0;
  let tx = Client.Tx.begin_ client in
  Client.Tx.delete_edge tx ~src:(node 3) ~eid:e35;
  link tx 5 7;
  ok (Client.commit client tx);
  Cluster.run_for cluster 5_000.0;

  (* after the migration: n5 is unreachable from n1, so n7 still is not
     reachable — and no interleaving could ever have said otherwise *)
  Printf.printf "after churn:  n1 -> n7 reachable? %b (correct: false)\n"
    (reachable (node 7));
  Printf.printf "historical (pre-churn snapshot): n1 -> n5 reachable? %b\n"
    (reachable ~at:snapshot_before (node 5));
  Printf.printf "now:                             n1 -> n5 reachable? %b\n"
    (reachable (node 5));
  assert (not (reachable (node 7)));
  print_endline "no phantom path: the update was atomic, queries are snapshots"
