(* CoinGraph: a blockchain explorer on Weaver (paper §5.2). Ingests
   synthetic blocks online through transactions, renders them with node
   programs, and runs a taint analysis across transaction outputs.

     dune exec examples/coingraph.exe *)

open Weaver_core
open Weaver_apps

let ok = function Ok v -> v | Error e -> failwith e

let () =
  let cluster = Cluster.create { Config.default with Config.n_shards = 6 } in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry cluster);
  let cg = Coingraph.create cluster in

  (* blocks arrive online, one strictly serializable transaction each: a
     reader can never observe a half-ingested block (§5.4) *)
  List.iter
    (fun (height, txs) ->
      ignore (ok (Coingraph.ingest_block cg ~height ~txs ()));
      Printf.printf "ingested block %d with %d transactions\n" height txs)
    [ (800_000, 12); (800_001, 7); (800_002, 25) ];

  (* block explorer page: the Fig. 7 block query *)
  let n = ok (Coingraph.block_tx_count cg ~height:800_002) in
  Printf.printf "block 800002 renders %d transactions\n" n;

  (* taint tracking: follow coins out of one block's transactions *)
  let tainted = ok (Coingraph.taint cg ~from:"blk800000" ~depth:3) in
  Printf.printf "taint from block 800000 reaches %d vertices\n" (List.length tainted);

  (* historical consistency: the multi-version graph keeps serving old
     snapshots even as new blocks keep arriving *)
  let snap = Cluster.gk_clock cluster 0 in
  ignore (ok (Coingraph.ingest_block cg ~height:800_003 ~txs:9 ()));
  let client = Cluster.client cluster in
  (match
     Client.run_program client ~prog:"get_node" ~params:Progval.Null
       ~starts:[ "blk800003" ] ~at:snap ()
   with
  | Ok (Progval.List []) -> print_endline "snapshot before ingestion: block 800003 invisible (correct)"
  | Ok v -> Format.printf "unexpected: %a@." Progval.pp v
  | Error e -> failwith e);
  Printf.printf "total committed transactions: %d\n"
    (Cluster.counters cluster).Runtime.tx_committed
