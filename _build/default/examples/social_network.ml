(* Social network with transactional access control (paper §5.1, Fig. 2):
   posting a photo and setting its visibility is one atomic transaction,
   so no reader can ever observe the photo without its ACL.

     dune exec examples/social_network.exe *)

open Weaver_core
open Weaver_apps

let ok = function Ok v -> v | Error e -> failwith e

let () =
  let cluster = Cluster.create Config.default in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry cluster);
  let net = Socialnet.create cluster in

  let alice = ok (Socialnet.add_user net ~name:"alice") in
  let bob = ok (Socialnet.add_user net ~name:"bob") in
  let carol = ok (Socialnet.add_user net ~name:"carol") in
  ok (Socialnet.befriend net ~user:alice ~friend_:bob);
  ok (Socialnet.befriend net ~user:alice ~friend_:carol);
  Printf.printf "alice's friends: %s\n"
    (String.concat ", " (ok (Socialnet.friends net ~user:alice)));

  (* the Fig. 2 transaction: photo + ACL, atomically, visible to bob only *)
  let photo = ok (Socialnet.post_photo net ~owner:alice ~visible_to:[ bob ]) in
  Printf.printf "posted %s (visible to bob only)\n" photo;
  Printf.printf "bob can see it:   %b\n" (ok (Socialnet.can_see net ~viewer:bob ~photo));
  Printf.printf "carol can see it: %b\n" (ok (Socialnet.can_see net ~viewer:carol ~photo));

  (* a burst of TAO-mix traffic against a larger generated network *)
  let rng = Weaver_util.Xrand.create ~seed:5 () in
  let g =
    Weaver_workloads.Graphgen.preferential ~rng ~prefix:"user" ~vertices:2_000
      ~out_degree:5 ()
  in
  Weaver_workloads.Loader.fast_install cluster g;
  Cluster.run_for cluster 5_000.0;
  let vertices = Array.of_list (Weaver_workloads.Graphgen.vertex_ids g) in
  let r =
    Weaver_workloads.Tao.Driver.run cluster ~vertices ~clients:20 ~duration:200_000.0 ()
  in
  Printf.printf "TAO mix on 2k-user network: %.0f ops/s (reads p99 %.2f ms)\n"
    r.Weaver_workloads.Tao.Driver.throughput
    (Weaver_util.Stats.percentile r.Weaver_workloads.Tao.Driver.read_latencies 99.0
    /. 1000.0)
