(* Historical queries on the multi-version graph (paper §2.3, §4.5): with
   GC disabled, Weaver retains every version, so node programs can run at
   any past timestamp and see the graph exactly as it was.

     dune exec examples/time_travel.exe *)

open Weaver_core

let ok = function Ok v -> v | Error e -> failwith e

let degree_at client vid ?at () =
  match
    Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ vid ] ?at ()
  with
  | Ok (Progval.List [ s ]) -> Progval.to_int (Progval.assoc "degree" s)
  | Ok (Progval.List []) -> -1 (* not visible at that time *)
  | Ok v -> failwith (Progval.to_string v)
  | Error e -> failwith e

let () =
  (* gc_period = 0: keep the full version history *)
  let cluster = Cluster.create { Config.default with Config.gc_period = 0.0 } in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry cluster);
  let client = Cluster.client cluster in

  let tx = Client.Tx.begin_ client in
  let hub = Client.Tx.create_vertex tx ~id:"hub" () in
  ok (Client.commit client tx);

  (* grow the hub's neighbourhood, snapshotting the clock as we go *)
  let snapshots = ref [] in
  for i = 1 to 5 do
    snapshots := (i - 1, Cluster.gk_clock cluster 0) :: !snapshots;
    let tx = Client.Tx.begin_ client in
    let spoke = Client.Tx.create_vertex tx ~id:(Printf.sprintf "spoke%d" i) () in
    ignore (Client.Tx.create_edge tx ~src:hub ~dst:spoke);
    ok (Client.commit client tx);
    Cluster.run_for cluster 2_000.0
  done;

  Printf.printf "hub degree now: %d\n" (degree_at client hub ());
  (* replay history: each snapshot sees exactly the degree of its era *)
  List.iter
    (fun (expected, at) ->
      let d = degree_at client hub ~at () in
      Printf.printf "at snapshot taken before edge %d: degree = %d (expected %d)\n"
        (expected + 1) d expected;
      assert (d = expected))
    (List.rev !snapshots);

  (* even a deleted vertex's past is queryable *)
  let tx = Client.Tx.begin_ client in
  Client.Tx.delete_vertex tx "spoke1";
  ok (Client.commit client tx);
  let before_delete = List.assoc 4 (List.map (fun (a, b) -> (a, b)) !snapshots) in
  ignore before_delete;
  Printf.printf "spoke1 now: %s\n"
    (if degree_at client "spoke1" () = -1 then "deleted" else "alive");
  print_endline "time travel works: every snapshot is a consistent past state"
