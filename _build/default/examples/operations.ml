(* Operating a Weaver deployment: crash recovery, backup/restore into a
   new cluster, and read-only replicas with weak consistency (§4.3, §6.4).

     dune exec examples/operations.exe *)

open Weaver_core

let ok = function Ok v -> v | Error e -> failwith e

let mk cfg =
  let c = Cluster.create cfg in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
  c

let () =
  (* --- a deployment with one read replica per shard --- *)
  let c1 = mk { Config.default with Config.read_replicas = 1 } in
  let client = Cluster.client c1 in
  let tx = Client.Tx.begin_ client in
  List.iter (fun v -> ignore (Client.Tx.create_vertex tx ~id:v ())) [ "a"; "b"; "c" ];
  ignore (Client.Tx.create_edge tx ~src:"a" ~dst:"b");
  ignore (Client.Tx.create_edge tx ~src:"b" ~dst:"c");
  ok (Client.commit client tx);
  Cluster.run_for c1 50_000.0;

  (* weak reads are served by replicas: cheaper, possibly stale *)
  (match
     Client.run_program client ~prog:"count_edges" ~params:Progval.Null ~starts:[ "a" ]
       ~consistency:`Weak ()
   with
  | Ok (Progval.Int n) -> Printf.printf "weak read from replica: a has %d edge(s)\n" n
  | _ -> failwith "weak read failed");

  (* --- crash a shard; the manager detects, bumps the epoch, recovers --- *)
  let victim = Cluster.shard_of_vertex c1 "a" in
  Printf.printf "crashing shard %d...\n" victim;
  Cluster.kill_shard c1 victim;
  Cluster.run_for c1 400_000.0;
  Printf.printf "epoch after recovery: %d (recoveries: %d)\n" (Cluster.epoch c1)
    (Cluster.counters c1).Runtime.recoveries;
  (match
     Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ "a" ] ()
   with
  | Ok (Progval.List [ _ ]) -> print_endline "data survived the crash (backing store)"
  | _ -> failwith "recovery failed");

  (* --- backup the durable state and restore into a brand-new cluster --- *)
  let image = Backup.dump c1 in
  Printf.printf "backup image: %d bytes\n" (String.length image);
  let c2 = mk { Config.default with Config.read_replicas = 1 } in
  Backup.restore c2 image;
  Cluster.run_for c2 10_000.0;
  let client2 = Cluster.client c2 in
  match
    Client.run_program client2 ~prog:"reachable"
      ~params:(Progval.Assoc [ ("target", Progval.Str "c") ])
      ~starts:[ "a" ] ()
  with
  | Ok (Progval.Bool true) -> print_endline "restored cluster answers queries: a reaches c"
  | _ -> failwith "restore failed"
