(* Whole-graph analytics on a live cluster, via the umbrella [Weaver]
   module: degree distribution and global triangle counting over every
   vertex, while transactions keep committing — the capability offline
   engines (Pregel, GraphLab) lack (paper §1, §7).

     dune exec examples/global_analytics.exe *)

let ok = function Ok v -> v | Error e -> failwith e

let () =
  let cluster = Weaver.boot Weaver.Config.default in
  let client = Weaver.Cluster.client cluster in

  (* a scale-free graph of 1,000 users *)
  let rng = Weaver.Xrand.create ~seed:9 () in
  let g = Weaver.Graphgen.preferential ~rng ~prefix:"u" ~vertices:1_000 ~out_degree:4 () in
  Weaver.Loader.fast_install cluster g;
  Weaver.Cluster.run_for cluster 5_000.0;

  (* global degree histogram (top of the distribution) *)
  (match
     ok
       (Weaver.Analytics.run_all cluster client ~prog:"degree_dist"
          ~params:Weaver.Progval.Null ())
   with
  | Weaver.Progval.Assoc hist ->
      let sorted =
        List.sort
          (fun (a, _) (b, _) -> compare (int_of_string b) (int_of_string a))
          hist
      in
      print_endline "out-degree distribution (top 5 degrees):";
      List.iteri
        (fun i (deg, count) ->
          if i < 5 then
            Printf.printf "  degree %-4s %d vertices\n" deg
              (Weaver.Progval.to_int count))
        sorted
  | _ -> failwith "degree_dist failed");

  (* concurrent write while the next global scan runs: allowed, unlike in
     an offline engine *)
  let tx = Weaver.Client.Tx.begin_ client in
  ignore (Weaver.Client.Tx.create_edge tx ~src:"u1" ~dst:"u2");
  ok (Weaver.Client.commit client tx);

  (* global edge census, in weak mode if replicas existed *)
  (match
     ok
       (Weaver.Analytics.run_all cluster client ~prog:"count_edges"
          ~params:Weaver.Progval.Null ~batch:128 ())
   with
  | Weaver.Progval.Int n -> Printf.printf "global edge count: %d\n" n
  | _ -> failwith "count failed");

  (* version archaeology on the busiest vertex *)
  (match
     ok
       (Weaver.Client.run_program client ~prog:"history" ~params:Weaver.Progval.Null
          ~starts:[ "u0" ] ())
   with
  | Weaver.Progval.List [ h ] ->
      Printf.printf "u0 history: %d edge versions (%d dead), created at %s\n"
        (Weaver.Progval.to_int (Weaver.Progval.assoc "edge_versions" h))
        (Weaver.Progval.to_int (Weaver.Progval.assoc "dead_edge_versions" h))
        (Weaver.Progval.to_str (Weaver.Progval.assoc "created" h))
  | _ -> failwith "history failed");

  print_newline ();
  print_string (Weaver.Cluster.report cluster)
