(* Quickstart: boot a simulated Weaver deployment, run one transaction and
   a couple of node programs.

     dune exec examples/quickstart.exe *)

open Weaver_core

let () =
  (* 2 gatekeepers + 4 shards, all inside one deterministic simulation *)
  let cluster = Cluster.create Config.default in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry cluster);
  let client = Cluster.client cluster in

  (* one atomic transaction building a tiny graph (paper Fig. 2 style) *)
  let tx = Client.Tx.begin_ client in
  let alice = Client.Tx.create_vertex tx ~id:"alice" () in
  let bob = Client.Tx.create_vertex tx ~id:"bob" () in
  let carol = Client.Tx.create_vertex tx ~id:"carol" () in
  let e1 = Client.Tx.create_edge tx ~src:alice ~dst:bob in
  let _e2 = Client.Tx.create_edge tx ~src:bob ~dst:carol in
  Client.Tx.set_vertex_prop tx ~vid:alice ~key:"name" ~value:"Alice";
  Client.Tx.set_edge_prop tx ~src:alice ~eid:e1 ~key:"rel" ~value:"friend";
  (match Client.commit client tx with
  | Ok () -> print_endline "transaction committed"
  | Error e -> failwith ("commit failed: " ^ e));

  (* a vertex-local read (TAO-style get_node) *)
  (match
     Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ alice ] ()
   with
  | Ok result -> Format.printf "get_node(alice) = %a@." Progval.pp result
  | Error e -> failwith e);

  (* a traversal: is carol reachable from alice? *)
  (match
     Client.run_program client ~prog:"reachable"
       ~params:(Progval.Assoc [ ("target", Progval.Str carol) ])
       ~starts:[ alice ] ()
   with
  | Ok (Progval.Bool b) -> Printf.printf "alice can reach carol: %b\n" b
  | Ok v -> Format.printf "unexpected: %a@." Progval.pp v
  | Error e -> failwith e);

  Printf.printf "virtual time elapsed: %.0f us; %d transaction(s) committed\n"
    (Cluster.now cluster)
    (Cluster.counters cluster).Runtime.tx_committed
