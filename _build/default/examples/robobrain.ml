(* RoboBrain: a knowledge graph that merges noisy concepts transactionally
   (paper §5.3) and answers subgraph questions with node programs.

     dune exec examples/robobrain.exe *)

open Weaver_core
open Weaver_apps

let ok = function Ok v -> v | Error e -> failwith e

let () =
  let cluster = Cluster.create Config.default in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry cluster);
  let rb = Robobrain.create cluster in

  (* knowledge arrives from robots and the web; "mug" and "cup" are noisy
     duplicates of the same concept *)
  let mug = ok (Robobrain.add_concept rb ~name:"mug" ~attrs:[ ("kind", "object") ] ()) in
  let cup = ok (Robobrain.add_concept rb ~name:"cup" ~attrs:[ ("kind", "object") ] ()) in
  let kitchen =
    ok (Robobrain.add_concept rb ~name:"kitchen" ~attrs:[ ("kind", "place") ] ())
  in
  let coffee =
    ok (Robobrain.add_concept rb ~name:"coffee" ~attrs:[ ("kind", "substance") ] ())
  in
  ok (Robobrain.relate rb ~src:mug ~label:"found_in" ~dst:kitchen);
  ok (Robobrain.relate rb ~src:cup ~label:"holds" ~dst:coffee);

  (* an ML pipeline decides they are the same concept: the merge moves all
     relations and retires the duplicate in ONE transaction, so queries
     never see a half-merged brain *)
  ok (Robobrain.merge_concepts rb ~keep:mug ~absorb:cup);
  let rels = ok (Robobrain.relations rb ~concept:mug) in
  print_endline "after merge, 'mug' knows:";
  List.iter (fun (label, dst) -> Printf.printf "  mug -%s-> %s\n" label dst) rels;

  (* subgraph question: which objects are found in places? *)
  let matches =
    ok
      (Robobrain.concepts_related_to rb
         ~centers:[ mug; kitchen; coffee ]
         ~center_attr:("kind", "object")
         ~nbr_attr:("kind", "place"))
  in
  List.iter
    (fun (center, nbr) -> Printf.printf "subgraph match: %s is related to place %s\n" center nbr)
    matches
