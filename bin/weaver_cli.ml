(* weaver-cli: poke a simulated Weaver deployment from the command line.

   Subcommands:
     demo        build a small social graph and run sample queries
     tao         run the TAO-mix benchmark with chosen parameters
     coingraph   ingest and query synthetic blocks
     fault       demonstrate failure detection and recovery
     stats       mixed run with tracing on; per-phase latency breakdown
     trace       span tree of one traced transaction and node program
     contention  blocking vs non-blocking refinement under write skew
     overload    open-loop saturation quick-look, flow control off vs on
     snapshot    pinned historical analytics vs live writes, snapshots off vs on
     heat        per-shard hottest vertices and per-range heat map under zipf load
     health      watchdog alerts across a mid-run gatekeeper crash
     rebalance   live heat-driven rebalancing of a zipf hot spot, skew trajectory
     replication hot-range partial replication: installs, streams, routed reads *)

open Cmdliner
open Weaver_core
module Workloads = Weaver_workloads
module Metrics = Weaver_obs.Metrics
module Trace = Weaver_obs.Trace

let mk_cluster ?(tracing = false) ?(timeline = false) ?(timeline_period = 10_000.0)
    ?(heat = false) ~gatekeepers ~shards ~tau ~seed () =
  let cfg =
    {
      Config.default with
      Config.n_gatekeepers = gatekeepers;
      Config.n_shards = shards;
      Config.tau;
      Config.seed;
      Config.enable_tracing = tracing;
      Config.enable_timeline = timeline;
      Config.timeline_period = timeline_period;
      Config.enable_heat = heat;
    }
  in
  (* odd shard counts from the CLI: round the range-heat table up so it
     nests ([Config.validate] rejects non-multiples) *)
  let cfg = Config.align_heat_ranges cfg in
  let c = Cluster.create cfg in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
  c

(* common options *)
let gatekeepers =
  Arg.(value & opt int 2 & info [ "g"; "gatekeepers" ] ~docv:"N" ~doc:"Gatekeeper servers.")

let shards =
  Arg.(value & opt int 4 & info [ "s"; "shards" ] ~docv:"N" ~doc:"Shard servers.")

let tau =
  Arg.(
    value
    & opt float 1000.0
    & info [ "tau" ] ~docv:"US" ~doc:"Vector-clock announce period in virtual µs.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.")

let demo gatekeepers shards tau seed =
  let c = mk_cluster ~gatekeepers ~shards ~tau ~seed () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  let a = Client.Tx.create_vertex tx ~id:"a" () in
  let b = Client.Tx.create_vertex tx ~id:"b" () in
  let z = Client.Tx.create_vertex tx ~id:"z" () in
  ignore (Client.Tx.create_edge tx ~src:a ~dst:b);
  ignore (Client.Tx.create_edge tx ~src:b ~dst:z);
  (match Client.commit client tx with
  | Ok () -> print_endline "committed a -> b -> z"
  | Error e -> failwith e);
  (match
     Client.run_program client ~prog:"hop_distance"
       ~params:(Progval.Assoc [ ("target", Progval.Str z) ])
       ~starts:[ a ] ()
   with
  | Ok v -> Format.printf "hop_distance(a, z) = %a@." Progval.pp v
  | Error e -> failwith e);
  Printf.printf "virtual time: %.0f us\n" (Cluster.now c)

let tao gatekeepers shards tau seed clients duration_ms read_pct =
  let c = mk_cluster ~gatekeepers ~shards ~tau ~seed () in
  let rng = Weaver_util.Xrand.create ~seed () in
  let g =
    Workloads.Graphgen.preferential ~rng ~prefix:"u" ~vertices:4_000 ~out_degree:7 ()
  in
  Workloads.Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  let vertices = Array.of_list (Workloads.Graphgen.vertex_ids g) in
  let r =
    Workloads.Tao.Driver.run c ~vertices ~clients
      ~duration:(duration_ms *. 1000.0)
      ~read_fraction:(read_pct /. 100.0)
      ()
  in
  Printf.printf "completed %d ops in %.0f ms of virtual time\n" r.Workloads.Tao.Driver.completed
    (duration_ms);
  Printf.printf "throughput: %.0f ops/s\n" r.Workloads.Tao.Driver.throughput;
  Printf.printf "reads : %s\n" (Weaver_util.Stats.summary r.Workloads.Tao.Driver.read_latencies);
  Printf.printf "writes: %s\n" (Weaver_util.Stats.summary r.Workloads.Tao.Driver.write_latencies);
  let ctr = Cluster.counters c in
  Printf.printf "oracle consults: %d (cache hits %d); announces: %d\n"
    ctr.Runtime.oracle_consults ctr.Runtime.oracle_cache_hits ctr.Runtime.announce_msgs;
  print_newline ();
  print_string (Cluster.report c)

let coingraph gatekeepers shards tau seed height =
  let c = mk_cluster ~gatekeepers ~shards ~tau ~seed () in
  let cg = Weaver_apps.Coingraph.create c in
  ignore (Weaver_apps.Coingraph.preload_block cg ~height);
  Cluster.run_for c 5_000.0;
  let t0 = Cluster.now c in
  (match Weaver_apps.Coingraph.block_tx_count cg ~height with
  | Ok n ->
      Printf.printf "block %d: %d transactions rendered in %.2f virtual ms\n" height n
        ((Cluster.now c -. t0) /. 1000.0)
  | Error e -> failwith e)

let fault gatekeepers shards tau seed =
  let c = mk_cluster ~gatekeepers ~shards ~tau ~seed () in
  let client = Cluster.client c in
  let tx = Client.Tx.begin_ client in
  ignore (Client.Tx.create_vertex tx ~id:"survivor" ());
  (match Client.commit client tx with Ok () -> () | Error e -> failwith e);
  let victim = Cluster.shard_of_vertex c "survivor" in
  Printf.printf "killing shard %d (owns 'survivor')...\n" victim;
  Cluster.kill_shard c victim;
  Cluster.run_for c 400_000.0;
  Printf.printf "cluster epoch now %d; recoveries: %d\n" (Cluster.epoch c)
    (Cluster.counters c).Runtime.recoveries;
  let net = (Cluster.runtime c).Runtime.net in
  Printf.printf "messages dropped while the endpoint was dead: %d\n"
    (Weaver_sim.Net.messages_dropped net);
  List.iter
    (fun (dst, n) -> Printf.printf "  -> %-10s %d\n" (Cluster.actor_of_addr c dst) n)
    (Weaver_sim.Net.drops_by_dst net);
  match
    Client.run_program client ~prog:"get_node" ~params:Progval.Null ~starts:[ "survivor" ] ()
  with
  | Ok (Progval.List [ _ ]) -> print_endline "data recovered from backing store; query ok"
  | Ok v -> Format.printf "unexpected: %a@." Progval.pp v
  | Error e -> failwith e

let chaos gatekeepers shards seed clients duration json =
  (* TAO-mix under a rolling crash/restart fault plan, client reliability
     layer off then on — same seed, same plan (see EXPERIMENTS.md) *)
  let base =
    {
      Workloads.Chaosbench.default_opts with
      Workloads.Chaosbench.co_seed = seed;
      co_gatekeepers = gatekeepers;
      co_shards = shards;
      co_clients = clients;
      co_duration = duration *. 1_000.0;
    }
  in
  let off =
    Workloads.Chaosbench.run { base with Workloads.Chaosbench.co_reliable = false }
  in
  let on_ =
    Workloads.Chaosbench.run { base with Workloads.Chaosbench.co_reliable = true }
  in
  if json then
    Printf.printf "{\"experiment\": \"chaos\", \"seed\": %d, \"off\": %s, \"on\": %s}\n"
      seed
      (Workloads.Chaosbench.to_json off)
      (Workloads.Chaosbench.to_json on_)
  else begin
    let show tag (r : Workloads.Chaosbench.result) =
      Printf.printf
        "reliability %-4s availability %.3f (ok %d, err %d) | p99 %.1f ms | recovery %s | retries %d, late %d\n"
        tag r.Workloads.Chaosbench.r_availability r.Workloads.Chaosbench.r_total_ok
        r.Workloads.Chaosbench.r_total_err
        (r.Workloads.Chaosbench.r_p99 /. 1_000.0)
        (match r.Workloads.Chaosbench.r_recovery_time with
        | Some t -> Printf.sprintf "%.0f ms" (t /. 1_000.0)
        | None -> "never")
        r.Workloads.Chaosbench.r_retries r.Workloads.Chaosbench.r_late_replies
    in
    show "off" off;
    show "on" on_;
    Printf.printf "availability delta: +%.3f\n"
      (on_.Workloads.Chaosbench.r_availability
      -. off.Workloads.Chaosbench.r_availability)
  end

let sweep gatekeepers shards seed =
  (* Fig. 14 in miniature: announce vs oracle cost across tau *)
  Printf.printf "%-12s %18s %20s\n" "tau (us)" "announces/query" "oracle msgs/query";
  List.iter
    (fun tau ->
      let c = mk_cluster ~gatekeepers ~shards ~tau ~seed () in
      let rng = Weaver_util.Xrand.create ~seed () in
      let g = Workloads.Graphgen.uniform ~rng ~prefix:"s" ~vertices:500 ~edges:3_000 () in
      Workloads.Loader.fast_install c g;
      Cluster.run_for c 5_000.0;
      let vertices = Array.of_list (Workloads.Graphgen.vertex_ids g) in
      let r =
        Workloads.Tao.Driver.run c ~vertices ~clients:20 ~duration:200_000.0
          ~read_fraction:0.9 ()
      in
      let ops = max 1 r.Workloads.Tao.Driver.completed in
      let ctr = Cluster.counters c in
      Printf.printf "%-12.0f %18.3f %20.3f\n" tau
        (float_of_int ctr.Runtime.announce_msgs /. float_of_int ops)
        (float_of_int ctr.Runtime.oracle_consults /. float_of_int ops))
    [ 10.0; 100.0; 1_000.0; 10_000.0; 100_000.0 ]

let contention gatekeepers shards seed theta json =
  (* blocking vs non-blocking, coalesced refinement under zipf-skewed write
     contention — the quick-look version of `bench contention`; writers pin
     themselves to distinct gatekeepers so concurrent conflicting stamps
     genuinely reach the shard (same-key races are settled proactively by
     the gatekeepers' last-update checks) *)
  let run nonblocking =
    let cfg =
      {
        Config.default with
        Config.n_gatekeepers = gatekeepers;
        Config.n_shards = shards;
        Config.seed;
        Config.tau = 50_000.0;
        Config.nop_period = 400.0;
        Config.oracle_nonblocking = nonblocking;
      }
    in
    let c = Cluster.create cfg in
    let n_keys = 16 in
    let setup = Cluster.client c in
    let tx = Client.Tx.begin_ setup in
    for i = 0 to n_keys - 1 do
      ignore (Client.Tx.create_vertex tx ~id:(Printf.sprintf "k%d" i) ())
    done;
    (match Client.commit setup tx with Ok () -> () | Error e -> failwith e);
    let writers = 3 * gatekeepers and per_writer = 20 in
    let done_writers = ref 0 in
    for i = 0 to writers - 1 do
      let client = Cluster.client c in
      Client.set_gatekeeper client (Some (i mod gatekeepers));
      let rng = Weaver_util.Xrand.create ~seed:(seed + (1_000 * (i + 1))) () in
      let committed = ref 0 and attempt = ref 0 in
      let rec next () =
        if !committed < per_writer then begin
          incr attempt;
          let k = Weaver_util.Xrand.zipf rng ~n:n_keys ~theta in
          let tx = Client.Tx.begin_ client in
          Client.Tx.set_vertex_prop tx ~vid:(Printf.sprintf "k%d" k) ~key:"n"
            ~value:(string_of_int !attempt);
          Client.commit_async client tx ~on_result:(fun r ->
              (match r with Ok () -> incr committed | Error _ -> ());
              next ())
        end
        else incr done_writers
      in
      next ()
    done;
    let budget = ref 4_000 in
    while !done_writers < writers && !budget > 0 do
      decr budget;
      Cluster.run_for c 1_000.0
    done;
    Cluster.run_for c 50_000.0;
    let ctr = Cluster.counters c in
    let wait =
      match
        List.assoc_opt "shard.queue_wait" (Metrics.reservoirs (Cluster.metrics c))
      with
      | Some s ->
          ( Weaver_util.Stats.percentile s 50.0,
            Weaver_util.Stats.percentile s 99.0 )
      | None -> (0.0, 0.0)
    in
    (ctr.Runtime.tx_committed, ctr.Runtime.shard_oracle_consults,
     ctr.Runtime.shard_oracle_batched, wait)
  in
  let bc, bco, bb, (bp50, bp99) = run false in
  let nc, nco, nb, (np50, np99) = run true in
  if json then
    Printf.printf
      "{\"experiment\": \"contention\", \"seed\": %d, \"theta\": %.2f,\n\
      \ \"blocking\": {\"committed\": %d, \"consults\": %d, \"batched\": %d, \
       \"p50_apply_us\": %.1f, \"p99_apply_us\": %.1f},\n\
      \ \"nonblocking\": {\"committed\": %d, \"consults\": %d, \"batched\": %d, \
       \"p50_apply_us\": %.1f, \"p99_apply_us\": %.1f}}\n"
      seed theta bc bco bb bp50 bp99 nc nco nb np50 np99
  else begin
    Printf.printf "%-12s %10s %9s %8s %12s %13s %13s\n" "arm" "committed"
      "consults" "batched" "consults/tx" "p50 apply us" "p99 apply us";
    let row tag committed consults batched p50 p99 =
      Printf.printf "%-12s %10d %9d %8d %12.3f %13.1f %13.1f\n" tag committed
        consults batched
        (float_of_int consults /. float_of_int (max 1 committed))
        p50 p99
    in
    row "blocking" bc bco bb bp50 bp99;
    row "nonblocking" nc nco nb np50 np99
  end

let overload gatekeepers shards seed mult duration_ms json =
  (* one point of the `bench overload` sweep: the same offered load pushed
     through both arms, so the goodput/p99/shed deltas isolate what the
     flow-control subsystem (admission + deadline shedding + credits) buys *)
  let sat =
    Workloads.Overloadbench.saturation_rate ~gatekeepers
      ~gk_op_cost:Config.default.Config.gk_op_cost
  in
  let base =
    {
      Workloads.Overloadbench.default_opts with
      Workloads.Overloadbench.ov_seed = seed;
      ov_gatekeepers = gatekeepers;
      ov_shards = shards;
      ov_rate = sat *. mult;
      ov_duration = duration_ms *. 1_000.0;
    }
  in
  let off =
    Workloads.Overloadbench.run { base with Workloads.Overloadbench.ov_flow = false }
  in
  let on_ =
    Workloads.Overloadbench.run { base with Workloads.Overloadbench.ov_flow = true }
  in
  if json then
    Printf.printf
      "{\"experiment\": \"overload\", \"seed\": %d, \"load_multiplier\": %.2f, \
       \"off\": %s, \"on\": %s}\n"
      seed mult
      (Workloads.Overloadbench.to_json off)
      (Workloads.Overloadbench.to_json on_)
  else begin
    Printf.printf "offered %.0f req/s (%.2fx of ~%.0f req/s saturation)\n"
      base.Workloads.Overloadbench.ov_rate mult sat;
    let show tag (r : Workloads.Overloadbench.result) =
      Printf.printf
        "flow %-4s goodput %6.0f req/s | ok %d shed %d timeout %d | p50 %.1f ms p99 %.1f ms | shed %.1f%%\n"
        tag r.Workloads.Overloadbench.v_goodput r.Workloads.Overloadbench.v_ok
        r.Workloads.Overloadbench.v_shed r.Workloads.Overloadbench.v_timeout
        (r.Workloads.Overloadbench.v_p50 /. 1_000.0)
        (r.Workloads.Overloadbench.v_p99 /. 1_000.0)
        (100.0 *. r.Workloads.Overloadbench.v_shed_rate)
    in
    show "off" off;
    show "on" on_;
    Printf.printf
      "shed reasons (on): queue %d, deadline %d, credit %d | credit msgs %d\n"
      on_.Workloads.Overloadbench.v_shed_queue
      on_.Workloads.Overloadbench.v_shed_deadline
      on_.Workloads.Overloadbench.v_shed_credit
      on_.Workloads.Overloadbench.v_credit_msgs
  end

let snapshot gatekeepers shards seed duration_ms json =
  (* `bench snapshot` in miniature: historical multi-start reads at a
     captured cut race a live write mix, versioned snapshot store off vs
     on. Capacity-limited shards make the off arm pay demand paging and
     the ordering gate; a "snapshot-gced" reply re-captures the cut. *)
  let run snap =
    let cfg =
      {
        Config.default with
        Config.n_gatekeepers = gatekeepers;
        Config.n_shards = shards;
        Config.seed;
        Config.snapshot_reads = snap;
        Config.gc_period = 5_000.0;
        Config.shard_capacity = Some 60;
      }
    in
    let c = Cluster.create cfg in
    Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
    let n_vertices = 300 in
    let vid i = Printf.sprintf "s%03d" i in
    let setup = Cluster.client c in
    let i = ref 0 in
    while !i < n_vertices do
      let tx = Client.Tx.begin_ setup in
      for k = !i to min (n_vertices - 1) (!i + 49) do
        ignore (Client.Tx.create_vertex tx ~id:(vid k) ())
      done;
      i := !i + 50;
      match Client.commit setup tx with Ok () -> () | Error e -> failwith e
    done;
    Cluster.run_for c 30_000.0;
    let at = ref (Cluster.gk_clock c 0) in
    let starts = List.init 48 (fun k -> vid (k * 7 mod n_vertices)) in
    let stop = ref false in
    let writes = ref 0 in
    for w = 0 to 1 do
      let client = Cluster.client c in
      Client.set_gatekeeper client (Some (w mod gatekeepers));
      let rng = Weaver_util.Xrand.create ~seed:(seed + (1_000 * (w + 1))) () in
      let n = ref 0 in
      let rec next () =
        if not !stop then begin
          incr n;
          let tx = Client.Tx.begin_ client in
          Client.Tx.set_vertex_prop tx
            ~vid:(vid (Weaver_util.Xrand.int rng n_vertices))
            ~key:"n" ~value:(string_of_int !n);
          Client.commit_async client tx ~on_result:(fun r ->
              (match r with Ok () -> incr writes | Error _ -> ());
              next ())
        end
      in
      next ()
    done;
    let lat = Weaver_util.Stats.create () in
    let reads = ref 0 and gced = ref 0 in
    let analyst = Cluster.client c in
    Client.set_retry_policy analyst Client.no_retry_policy;
    let rec read_next () =
      if not !stop then begin
        let t0 = Cluster.now c in
        Client.run_program_async analyst ~prog:"get_node" ~params:Progval.Null
          ~starts ~at:!at
          ~on_result:(fun r ->
            (match r with
            | Ok _ ->
                incr reads;
                Weaver_util.Stats.add lat (Cluster.now c -. t0)
            | Error "snapshot-gced" ->
                incr gced;
                at := Cluster.gk_clock c 0
            | Error e -> failwith ("analytics: " ^ e));
            read_next ())
          ()
      end
    in
    read_next ();
    Cluster.run_for c (duration_ms *. 1_000.0);
    stop := true;
    Cluster.run_for c 30_000.0;
    let ctr = Cluster.counters c in
    ( !writes,
      !reads,
      !gced,
      Weaver_util.Stats.percentile lat 50.0,
      Weaver_util.Stats.percentile lat 99.0,
      ctr.Runtime.snap_published,
      ctr.Runtime.snap_pinned_reads,
      ctr.Runtime.snap_gc_deferred )
  in
  let off = run false and on_ = run true in
  if json then begin
    let arm (w, r, g, p50, p99, pub, pin, def) =
      Printf.sprintf
        "{\"writes\": %d, \"reads\": %d, \"cut_recaptures\": %d, \
         \"p50_read_us\": %.1f, \"p99_read_us\": %.1f, \"snapshots_published\": \
         %d, \"pinned_reads\": %d, \"gc_deferred\": %d}"
        w r g p50 p99 pub pin def
    in
    Printf.printf
      "{\"experiment\": \"snapshot\", \"seed\": %d, \"off\": %s, \"on\": %s}\n"
      seed (arm off) (arm on_)
  end
  else begin
    Printf.printf "%-4s %8s %7s %6s %12s %12s %10s %8s %9s\n" "arm" "writes"
      "reads" "gced" "p50 us" "p99 us" "published" "pinned" "deferred";
    let row tag (w, r, g, p50, p99, pub, pin, def) =
      Printf.printf "%-4s %8d %7d %6d %12.1f %12.1f %10d %8d %9d\n" tag w r g
        p50 p99 pub pin def
    in
    row "off" off;
    row "on" on_
  end

(* Rebalance: the live heat-driven balancer closing the sense→plan→act
   loop on a hot spot. The TAO mix is aimed (zipf within the set) at a hot
   set of vertices that all start on shard 0; the planner senses the skew,
   migrates the hot vertices off through the OCC migrate path, and the
   skew ratio recovers — sampled across the run so the trajectory is
   visible. Note the zipf approximation is very head-heavy: high theta
   concentrates most load on ONE vertex, which no placement can balance
   (the planner correctly refuses to relocate such a hot spot wholesale). *)
let rebalance_live gatekeepers shards tau seed clients duration_ms theta json =
  let cfg =
    Config.align_heat_ranges
      {
        Config.default with
        Config.n_gatekeepers = gatekeepers;
        Config.n_shards = shards;
        Config.tau;
        Config.seed;
        Config.enable_heat = true;
        Config.enable_rebalance = true;
        Config.rebalance_period = 10_000.0;
      }
  in
  let c = Cluster.create cfg in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
  let rng = Weaver_util.Xrand.create ~seed () in
  let g = Workloads.Graphgen.uniform ~rng ~prefix:"r" ~vertices:512 ~edges:2_048 () in
  Workloads.Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  (* the hot set: 32 shard-0 residents; all direct traffic goes there
     (neighbor visits still spread reads cluster-wide) *)
  let hot =
    List.filter (fun v -> Cluster.shard_of_vertex c v = 0)
      (Workloads.Graphgen.vertex_ids g)
  in
  let vertices = Array.of_list (List.filteri (fun i _ -> i < 32) hot) in
  let h = Option.get (Cluster.heat c) in
  let slices = 8 in
  let slice = duration_ms *. 1000.0 /. float_of_int slices in
  let samples =
    List.init slices (fun _ ->
        ignore
          (Workloads.Tao.Driver.run c ~vertices ~clients ~duration:slice
             ~read_fraction:0.9 ~theta ~warmup:0.0 ());
        (Cluster.now c /. 1000.0, Weaver_obs.Heat.skew h ~now:(Cluster.now c)))
  in
  let ctr = Cluster.counters c in
  let moves = Balancer.move_log (Option.get (Cluster.balancer c)) in
  let peak = List.fold_left (fun a (_, s) -> Float.max a s) 0.0 samples in
  let final = snd (List.nth samples (slices - 1)) in
  if json then begin
    let sample_rows =
      String.concat ", "
        (List.map (fun (t, s) -> Printf.sprintf "{\"t_ms\": %.1f, \"skew\": %.3f}" t s) samples)
    in
    let move_rows =
      String.concat ", "
        (List.map
           (fun m ->
             Printf.sprintf
               "{\"t_ms\": %.1f, \"vid\": \"%s\", \"from\": %d, \"to\": %d}"
               (m.Balancer.mv_time /. 1000.0)
               m.Balancer.mv_vid m.Balancer.mv_from m.Balancer.mv_to)
           moves)
    in
    Printf.printf
      "{\"experiment\": \"rebalance\", \"seed\": %d, \"shards\": %d, \"theta\": \
       %.2f, \"peak_skew\": %.3f, \"final_skew\": %.3f, \"rounds\": %d, \
       \"moves_committed\": %d, \"moves_skipped\": %d, \"samples\": [%s], \
       \"move_log\": [%s]}\n"
      seed shards theta peak final ctr.Runtime.rebal_rounds ctr.Runtime.rebal_moves
      ctr.Runtime.rebal_skipped sample_rows move_rows
  end
  else begin
    Printf.printf
      "live rebalancing of a 32-vertex hot set on shard 0 (zipf theta=%.2f, %d shards)\n\n"
      theta shards;
    Printf.printf "%10s %8s\n" "t (ms)" "skew";
    List.iter (fun (t, s) -> Printf.printf "%10.1f %8.3f\n" t s) samples;
    Printf.printf "\npeak skew %.3f -> final %.3f (1.0 = balanced)\n" peak final;
    Printf.printf "planner: %d rounds, %d moves committed, %d skipped\n"
      ctr.Runtime.rebal_rounds ctr.Runtime.rebal_moves ctr.Runtime.rebal_skipped;
    List.iteri
      (fun i m ->
        if i < 12 then
          Printf.printf "  %7.1f ms  %-12s shard %d -> %d\n"
            (m.Balancer.mv_time /. 1000.0)
            m.Balancer.mv_vid m.Balancer.mv_from m.Balancer.mv_to)
      moves;
    if List.length moves > 12 then
      Printf.printf "  ... %d more moves\n" (List.length moves - 12)
  end

(* Replication: the hot-range partial-replication pipeline end to end —
   controller installs, owners seed and stream, gatekeepers route covered
   weak reads to followers. Zipf readers concentrate load on a few ranges
   so the quick-look shows the planner picking them up and the routed
   fraction climbing. *)
let replication_live gatekeepers shards seed clients duration_ms theta factor json =
  let cfg =
    Config.align_heat_ranges
      {
        Config.default with
        Config.n_gatekeepers = gatekeepers;
        Config.n_shards = shards;
        Config.seed;
        Config.enable_heat = true;
        Config.enable_replication = factor > 0;
        Config.replication_factor = factor;
        Config.gc_period = 2_000.0;
        Config.vertex_read_cost = 40.0;
      }
  in
  let c = Cluster.create cfg in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
  let rng = Weaver_util.Xrand.create ~seed () in
  let g = Workloads.Graphgen.uniform ~rng ~prefix:"p" ~vertices:64 ~edges:128 () in
  Workloads.Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  let vertices = Array.of_list (Workloads.Graphgen.vertex_ids g) in
  let duration = duration_ms *. 1000.0 in
  let r =
    Workloads.Readscale.run c ~vertices ~readers:clients
      ~writers:(max 1 (clients / 6))
      ~duration ~theta ~warmup:(0.2 *. duration) ()
  in
  let ctr = Cluster.counters c in
  let table_rows =
    if factor = 0 then []
    else
      (* gatekeeper 0's copy: it carries the follower watermarks heard in
         [Repl_cover] advertisements, which the controller's own table
         does not *)
      let t = Cluster.gk_repl_table c 0 in
      List.map
        (fun range ->
          let followers = Weaver_repl.Repl.Table.followers t ~range in
          ( range,
            Option.value ~default:(-1) (Weaver_repl.Repl.Table.owner t ~range),
            List.map fst followers,
            List.length (List.filter (fun (_, wm) -> wm <> None) followers) ))
        (Weaver_repl.Repl.Table.ranges t)
  in
  (* both counters span the whole run (warmup included), unlike goodput *)
  let routed_frac =
    float_of_int ctr.Runtime.repl_routed
    /. float_of_int (max 1 ctr.Runtime.progs_completed)
  in
  if json then begin
    let rows =
      String.concat ", "
        (List.map
           (fun (range, owner, fs, covering) ->
             Printf.sprintf
               "{\"range\": %d, \"owner\": %d, \"followers\": [%s], \
                \"advertising\": %d}"
               range owner
               (String.concat ", " (List.map string_of_int fs))
               covering)
           table_rows)
    in
    Printf.printf
      "{\"experiment\": \"replication\", \"seed\": %d, \"shards\": %d, \
       \"factor\": %d, \"theta\": %.2f, \"read_goodput_per_s\": %.0f, \
       \"write_throughput_per_s\": %.0f, \"read_p50_us\": %.1f, \
       \"read_p99_us\": %.1f, \"read_errors\": %d, \"rounds\": %d, \
       \"installs\": %d, \"updates\": %d, \"resyncs\": %d, \"routed\": %d, \
       \"routed_fraction\": %.3f, \"table\": [%s]}\n"
      seed shards factor theta r.Workloads.Readscale.read_goodput
      r.Workloads.Readscale.write_throughput
      (Weaver_util.Stats.percentile r.Workloads.Readscale.read_latencies 50.0)
      (Weaver_util.Stats.percentile r.Workloads.Readscale.read_latencies 99.0)
      r.Workloads.Readscale.reads_err ctr.Runtime.repl_rounds
      ctr.Runtime.repl_installs ctr.Runtime.repl_updates ctr.Runtime.repl_resyncs
      ctr.Runtime.repl_routed routed_frac rows
  end
  else begin
    Printf.printf
      "hot-range replication (factor %d) under %d zipf readers (theta=%.2f, %d shards)\n\n"
      factor clients theta shards;
    Printf.printf "read goodput  %8.0f /s   (p50 %.0f us, p99 %.0f us, %d errors)\n"
      r.Workloads.Readscale.read_goodput
      (Weaver_util.Stats.percentile r.Workloads.Readscale.read_latencies 50.0)
      (Weaver_util.Stats.percentile r.Workloads.Readscale.read_latencies 99.0)
      r.Workloads.Readscale.reads_err;
    Printf.printf "write rate    %8.0f /s\n\n" r.Workloads.Readscale.write_throughput;
    Printf.printf
      "controller: %d rounds, %d installs; owners streamed %d updates (%d resyncs)\n"
      ctr.Runtime.repl_rounds ctr.Runtime.repl_installs ctr.Runtime.repl_updates
      ctr.Runtime.repl_resyncs;
    Printf.printf "gatekeepers routed %d reads to followers (%.1f%% of reads)\n"
      ctr.Runtime.repl_routed (100.0 *. routed_frac);
    if table_rows <> [] then begin
      Printf.printf "\n%8s %6s %-16s %s\n" "range" "owner" "followers" "advertising";
      List.iter
        (fun (range, owner, fs, covering) ->
          Printf.printf "%8d %6d %-16s %d/%d\n" range owner
            (String.concat "," (List.map string_of_int fs))
            covering (List.length fs))
        table_rows
    end
  end

let backup_demo gatekeepers shards tau seed =
  let c = mk_cluster ~gatekeepers ~shards ~tau ~seed () in
  let client = Cluster.client c in
  let rng = Weaver_util.Xrand.create ~seed () in
  let g = Workloads.Graphgen.uniform ~rng ~prefix:"b" ~vertices:200 ~edges:800 () in
  Workloads.Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  ignore client;
  let image = Backup.dump c in
  Printf.printf "dumped %d vertices into a %d-byte image\n" 200 (String.length image);
  let c2 = mk_cluster ~gatekeepers ~shards ~tau ~seed:(seed + 1) () in
  Backup.restore c2 image;
  Cluster.run_for c2 5_000.0;
  let client2 = Cluster.client c2 in
  match
    Client.run_program client2 ~prog:"count_edges" ~params:Progval.Null
      ~starts:(Workloads.Graphgen.vertex_ids g) ()
  with
  | Ok (Progval.Int n) -> Printf.printf "restored cluster reports %d edges\n" n
  | _ -> failwith "restore verification failed"

(* Shared by [stats] and [trace]: a mixed transaction / node-program run
   against a small preloaded graph, with request tracing on. Returns the
   trace ids of the issued requests (transactions first). *)
let run_mixed c ~txs ~progs =
  let client = Cluster.client c in
  let rng = Weaver_util.Xrand.create ~seed:7 () in
  let g = Workloads.Graphgen.uniform ~rng ~prefix:"m" ~vertices:300 ~edges:1_200 () in
  Workloads.Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  let vertices = Array.of_list (Workloads.Graphgen.vertex_ids g) in
  let tx_traces = ref [] in
  for i = 1 to txs do
    let tx = Client.Tx.begin_ client in
    let src = Weaver_util.Xrand.pick rng vertices in
    let dst = Weaver_util.Xrand.pick rng vertices in
    ignore (Client.Tx.create_edge tx ~src ~dst);
    Client.Tx.set_vertex_prop tx ~vid:src ~key:"touched" ~value:(string_of_int i);
    ignore (Client.commit client tx);
    tx_traces := Client.last_request_id client :: !tx_traces
  done;
  let prog_traces = ref [] in
  for _ = 1 to progs do
    let start = Weaver_util.Xrand.pick rng vertices in
    ignore
      (Client.run_program client ~prog:"get_edges" ~params:Progval.Null
         ~starts:[ start ] ());
    prog_traces := Client.last_request_id client :: !prog_traces
  done;
  Cluster.run_for c 10_000.0;
  (List.rev !tx_traces, List.rev !prog_traces)

let stats gatekeepers shards tau seed txs progs json =
  let c = mk_cluster ~tracing:true ~gatekeepers ~shards ~tau ~seed () in
  let tx_traces, prog_traces = run_mixed c ~txs ~progs in
  let m = Cluster.metrics c in
  (* per-request message counts come from the real trace ledgers *)
  let tr = Option.get (Cluster.request_tracer c) in
  List.iter
    (fun id ->
      let n = Trace.message_count tr id in
      if n > 0 then Metrics.observe m "req.messages" (float_of_int n))
    (tx_traces @ prog_traces);
  if json then print_endline (Metrics.to_json m)
  else begin
    Printf.printf "mixed run: %d transactions, %d node programs (%d gks, %d shards)\n\n"
      txs progs gatekeepers shards;
    print_string (Metrics.render m);
    print_newline ();
    let phase ?(unit = "us") name label =
      match List.assoc_opt name (Metrics.reservoirs m) with
      | None -> Printf.printf "%-16s (no samples)\n" label
      | Some s ->
          Printf.printf "%-16s p50 %8.1f %s   p99 %8.1f %s   (n=%d)\n" label
            (Weaver_util.Stats.percentile s 50.0)
            unit
            (Weaver_util.Stats.percentile s 99.0)
            unit
            (Weaver_util.Stats.count s)
    in
    print_endline "per-phase latency breakdown:";
    phase "gk.admission_wait" "admission";
    phase "gk.store_rtt" "store";
    phase "shard.queue_wait" "shard-queue";
    phase "shard.oracle_wait" "oracle";
    phase ~unit:"  " "req.messages" "msgs/request";
    let net = (Cluster.runtime c).Runtime.net in
    Printf.printf "\nmessages dropped at dead endpoints: %d\n"
      (Weaver_sim.Net.messages_dropped net);
    List.iter
      (fun (dst, n) ->
        Printf.printf "  -> %-10s %d\n" (Cluster.actor_of_addr c dst) n)
      (Weaver_sim.Net.drops_by_dst net)
  end

(* Timeline: sustained TAO-mix load with registry sampling on; windowed
   rates and utilization, or the full series as JSON/CSV. *)
let timeline_cmd_impl gatekeepers shards tau seed clients duration_ms period_ms json csv =
  let c =
    mk_cluster ~timeline:true
      ~timeline_period:(period_ms *. 1000.0)
      ~gatekeepers ~shards ~tau ~seed ()
  in
  let rng = Weaver_util.Xrand.create ~seed () in
  let g = Workloads.Graphgen.uniform ~rng ~prefix:"t" ~vertices:800 ~edges:3_200 () in
  Workloads.Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  let vertices = Array.of_list (Workloads.Graphgen.vertex_ids g) in
  ignore
    (Workloads.Tao.Driver.run c ~vertices ~clients ~duration:(duration_ms *. 1000.0)
       ~read_fraction:0.95 ());
  let tl = Option.get (Cluster.timeline c) in
  if json then print_string (Weaver_obs.Export.timeline_json tl)
  else if csv then print_string (Weaver_obs.Export.timeline_csv tl)
  else begin
    let rate name = Weaver_obs.Timeline.rates tl name in
    let txs = rate "tx.committed"
    and progs = rate "prog.completed"
    and msgs = rate "net.sent"
    and pages = rate "paging.page_ins"
    and gk_busy = rate "util.gk0.busy_us"
    and sh_busy = rate "util.shard0.busy_us" in
    let at series t =
      match List.assoc_opt t series with Some v -> v | None -> 0.0
    in
    Printf.printf "%d samples every %.0f ms over %.0f ms of virtual time\n\n"
      (Weaver_obs.Timeline.length tl) period_ms duration_ms;
    Printf.printf "%10s %10s %10s %10s %10s %8s %8s\n" "time(ms)" "tx/s" "prog/s"
      "msg/s" "pages/s" "gk0busy" "sh0busy";
    List.iter
      (fun (t, tx_rate) ->
        Printf.printf "%10.1f %10.0f %10.0f %10.0f %10.0f %7.1f%% %7.1f%%\n"
          (t /. 1000.0) tx_rate (at progs t) (at msgs t) (at pages t)
          (at gk_busy t /. 10_000.0)
          (at sh_busy t /. 10_000.0))
      txs
  end

(* Export: traced mixed run serialized as Chrome trace-event JSON for
   Perfetto / chrome://tracing. *)
let export_cmd_impl gatekeepers shards tau seed txs progs out =
  let c = mk_cluster ~tracing:true ~gatekeepers ~shards ~tau ~seed () in
  let tx_traces, prog_traces = run_mixed c ~txs ~progs in
  let tr = Option.get (Cluster.request_tracer c) in
  let doc =
    Weaver_obs.Export.chrome_trace tr
      ~traces:(tx_traces @ prog_traces)
      ~actor_of_addr:(Cluster.actor_of_addr c) ()
  in
  match out with
  | "-" -> print_string doc
  | path ->
      let oc = open_out path in
      output_string oc doc;
      close_out oc;
      Printf.printf "wrote %s (%d traces, %d bytes)\n" path
        (List.length tx_traces + List.length prog_traces)
        (String.length doc)

(* Slow: traced mixed run; the top-K slowest requests with per-phase
   breakdowns. *)
let slow_cmd_impl gatekeepers shards tau seed txs progs json =
  let c = mk_cluster ~tracing:true ~gatekeepers ~shards ~tau ~seed () in
  ignore (run_mixed c ~txs ~progs);
  let log = Cluster.slow_log c in
  if json then print_endline (Weaver_obs.Slowlog.to_json log)
  else print_string (Weaver_obs.Slowlog.render log)

let trace_cmd_impl gatekeepers shards tau seed =
  let c = mk_cluster ~tracing:true ~gatekeepers ~shards ~tau ~seed () in
  let tx_traces, prog_traces = run_mixed c ~txs:3 ~progs:1 in
  let tr = Option.get (Cluster.request_tracer c) in
  (match List.rev tx_traces with
  | last :: _ ->
      print_endline "=== transaction ===";
      print_string (Trace.render tr last)
  | [] -> ());
  match prog_traces with
  | p :: _ ->
      print_endline "=== node program ===";
      print_string (Trace.render tr p)
  | [] -> ()

(* Heat: zipf-skewed TAO-mix load with heat attribution on; per-shard
   hottest vertices, the per-range heat map, and the cluster skew ratio. *)
let heat_cmd_impl gatekeepers shards tau seed clients duration_ms theta json csv =
  let c = mk_cluster ~heat:true ~gatekeepers ~shards ~tau ~seed () in
  let rng = Weaver_util.Xrand.create ~seed () in
  let g = Workloads.Graphgen.uniform ~rng ~prefix:"h" ~vertices:512 ~edges:2_048 () in
  Workloads.Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  let vertices = Array.of_list (Workloads.Graphgen.vertex_ids g) in
  ignore
    (Workloads.Tao.Driver.run c ~vertices ~clients ~duration:(duration_ms *. 1000.0)
       ~read_fraction:0.9 ~theta ());
  let h = Option.get (Cluster.heat c) in
  let now = Cluster.now c in
  if json then print_endline (Weaver_obs.Export.heat_json h ~now)
  else if csv then print_string (Weaver_obs.Export.heat_csv h ~now)
  else begin
    let module Heat = Weaver_obs.Heat in
    Printf.printf "heat after %.0f ms of TAO-mix at zipf theta=%.2f (skew %.2f)\n\n"
      duration_ms theta (Heat.skew h ~now);
    for s = 0 to Heat.shards h - 1 do
      let reads, writes, cross = Heat.totals h ~shard:s in
      Printf.printf "shard %d: %d reads, %d writes, %d cross-shard touches\n" s reads
        writes cross;
      List.iteri
        (fun i (vid, n, err) ->
          if i < 5 then Printf.printf "  %d. %-12s ~%d touches (err <= %d)\n" (i + 1) vid n err)
        (Heat.top h ~shard:s)
    done;
    (* the hottest ranges cluster-wide, by decayed read+write load *)
    let ranges =
      List.init (Heat.ranges h) (fun r ->
          ( r,
            Heat.range_load h ~range:r ~kind:Heat.Read ~now
            +. Heat.range_load h ~range:r ~kind:Heat.Write ~now ))
      |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
    in
    Printf.printf "\nhottest ranges (decayed load, half-life %.0f ms):\n"
      (Heat.half_life h /. 1000.0);
    List.iteri
      (fun i (r, l) ->
        if i < 8 then
          Printf.printf "  range %2d (home shard %d): %8.1f\n" r (Heat.home_shard h r) l)
      ranges
  end

(* Health: watchdog checks across a mid-run gatekeeper crash. The failure
   detector is suppressed (huge timeout) so the stalled GC watermark stays
   visible to the watchdog instead of being healed by a replacement. *)
let health_cmd_impl gatekeepers shards seed duration_ms json =
  let cfg =
    {
      Config.default with
      Config.n_gatekeepers = gatekeepers;
      Config.n_shards = shards;
      Config.seed;
      Config.enable_health = true;
      Config.health_period = 5_000.0;
      Config.failure_timeout = 1.0e9;
    }
  in
  let c = Cluster.create cfg in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
  let rng = Weaver_util.Xrand.create ~seed () in
  let g = Workloads.Graphgen.uniform ~rng ~prefix:"w" ~vertices:400 ~edges:1_600 () in
  Workloads.Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  let crash_at = Cluster.now c +. (duration_ms *. 1000.0 /. 3.0) in
  ignore
    (Cluster.install_fault_plan c
       [ { Weaver_sim.Fault.at = crash_at; action = Weaver_sim.Fault.Crash (Weaver_sim.Fault.Gatekeeper 0) } ]);
  let vertices = Array.of_list (Workloads.Graphgen.vertex_ids g) in
  ignore
    (Workloads.Tao.Driver.run c ~vertices ~clients:12
       ~duration:(duration_ms *. 1000.0) ~read_fraction:0.9 ());
  let h = Option.get (Cluster.health c) in
  if json then print_endline (Weaver_obs.Health.to_json h)
  else begin
    Printf.printf "gatekeeper 0 crashed at %.0f ms (failure detector suppressed)\n\n"
      (crash_at /. 1000.0);
    print_string (Weaver_obs.Health.render h)
  end

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Tiny end-to-end demo")
    Term.(const demo $ gatekeepers $ shards $ tau $ seed)

let tao_cmd =
  let clients =
    Arg.(value & opt int 30 & info [ "c"; "clients" ] ~docv:"N" ~doc:"Concurrent clients.")
  in
  let duration =
    Arg.(value & opt float 300.0 & info [ "d"; "duration" ] ~docv:"MS" ~doc:"Virtual ms.")
  in
  let read_pct =
    Arg.(value & opt float 99.8 & info [ "r"; "reads" ] ~docv:"PCT" ~doc:"Read percentage.")
  in
  Cmd.v (Cmd.info "tao" ~doc:"TAO-mix benchmark")
    Term.(const tao $ gatekeepers $ shards $ tau $ seed $ clients $ duration $ read_pct)

let coingraph_cmd =
  let height =
    Arg.(value & opt int 200_000 & info [ "height" ] ~docv:"H" ~doc:"Block height.")
  in
  Cmd.v (Cmd.info "coingraph" ~doc:"Blockchain explorer demo")
    Term.(const coingraph $ gatekeepers $ shards $ tau $ seed $ height)

let fault_cmd =
  Cmd.v (Cmd.info "fault" ~doc:"Failure detection and recovery demo")
    Term.(const fault $ gatekeepers $ shards $ tau $ seed)

let chaos_cmd =
  let clients =
    Arg.(value & opt int 8 & info [ "c"; "clients" ] ~docv:"N" ~doc:"Concurrent clients.")
  in
  let duration =
    Arg.(value & opt float 400.0 & info [ "d"; "duration" ] ~docv:"MS" ~doc:"Virtual ms.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit both runs as JSON.") in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Availability under a rolling crash/restart fault plan, client reliability \
          off vs on")
    Term.(const chaos $ gatekeepers $ shards $ seed $ clients $ duration $ json)

let sweep_cmd =
  Cmd.v (Cmd.info "sweep" ~doc:"Announce-period sweep (Fig. 14 in miniature)")
    Term.(const sweep $ gatekeepers $ shards $ seed)

let contention_cmd =
  let theta =
    Arg.(value & opt float 0.6 & info [ "theta" ] ~docv:"T" ~doc:"Zipf key skew.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit both arms as JSON.") in
  Cmd.v
    (Cmd.info "contention"
       ~doc:
         "Blocking vs non-blocking, coalesced timestamp refinement under skewed           write contention")
    Term.(const contention $ gatekeepers $ shards $ seed $ theta $ json)

let overload_cmd =
  let mult =
    Arg.(
      value & opt float 2.0
      & info [ "m"; "mult" ] ~docv:"X" ~doc:"Offered load as a multiple of saturation.")
  in
  let duration =
    Arg.(
      value & opt float 200.0
      & info [ "d"; "duration" ] ~docv:"MS" ~doc:"Issuance window, virtual ms.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit both arms as JSON.") in
  Cmd.v
    (Cmd.info "overload"
       ~doc:
         "Open-loop saturation quick-look: goodput, tail latency, and shed rate \
          with flow control (admission + deadline shedding + credits) off vs on")
    Term.(const overload $ gatekeepers $ shards $ seed $ mult $ duration $ json)

let snapshot_cmd =
  let duration =
    Arg.(
      value & opt float 150.0
      & info [ "d"; "duration" ] ~docv:"MS" ~doc:"Race window, virtual ms.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit both arms as JSON.") in
  Cmd.v
    (Cmd.info "snapshot"
       ~doc:
         "Historical analytics vs live writes quick-look: versioned snapshot \
          store (pinned lock-free reads) off vs on")
    Term.(const snapshot $ gatekeepers $ shards $ seed $ duration $ json)

let heat_cmd =
  let clients =
    Arg.(value & opt int 16 & info [ "c"; "clients" ] ~docv:"N" ~doc:"Concurrent clients.")
  in
  let duration =
    Arg.(value & opt float 150.0 & info [ "d"; "duration" ] ~docv:"MS" ~doc:"Virtual ms.")
  in
  let theta =
    Arg.(value & opt float 0.9 & info [ "theta" ] ~docv:"T" ~doc:"Zipf vertex skew.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the heat snapshot as JSON.") in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit the per-range heat map as CSV.") in
  Cmd.v
    (Cmd.info "heat"
       ~doc:
         "Per-shard hottest vertices (Space-Saving sketch) and per-range decayed \
          heat map under zipf-skewed TAO-mix load")
    Term.(
      const heat_cmd_impl $ gatekeepers $ shards $ tau $ seed $ clients $ duration
      $ theta $ json $ csv)

let health_cmd =
  let duration =
    Arg.(value & opt float 400.0 & info [ "d"; "duration" ] ~docv:"MS" ~doc:"Virtual ms.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the alert log as JSON.") in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Cluster health watchdog quick-look: alerts fired across a mid-run \
          gatekeeper crash (watermark stall, queue trend, shed/skew/late rates)")
    Term.(const health_cmd_impl $ gatekeepers $ shards $ seed $ duration $ json)

let rebalance_cmd =
  let clients =
    Arg.(value & opt int 16 & info [ "c"; "clients" ] ~docv:"N" ~doc:"Concurrent clients.")
  in
  let duration =
    Arg.(value & opt float 300.0 & info [ "d"; "duration" ] ~docv:"MS" ~doc:"Virtual ms.")
  in
  let theta =
    Arg.(
      value & opt float 0.2
      & info [ "theta" ] ~docv:"T" ~doc:"Zipf skew within the hot set.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit trajectory and move log as JSON.") in
  Cmd.v
    (Cmd.info "rebalance"
       ~doc:
         "Live heat-driven rebalancing quick-look (par. 4.6): a hot spot \
          pinned on one shard, the planner's migrations, and the skew \
          trajectory")
    Term.(
      const rebalance_live $ gatekeepers $ shards $ tau $ seed $ clients $ duration
      $ theta $ json)

let replication_cmd =
  let clients =
    Arg.(value & opt int 32 & info [ "c"; "clients" ] ~docv:"N" ~doc:"Concurrent readers.")
  in
  let duration =
    Arg.(value & opt float 200.0 & info [ "d"; "duration" ] ~docv:"MS" ~doc:"Virtual ms.")
  in
  let theta =
    Arg.(
      value & opt float 0.9
      & info [ "theta" ] ~docv:"T" ~doc:"Zipf skew of the readers.")
  in
  let factor =
    Arg.(
      value & opt int 2
      & info [ "f"; "factor" ] ~docv:"N" ~doc:"Replication factor (0 disables).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit results and the routing table as JSON.") in
  Cmd.v
    (Cmd.info "replication"
       ~doc:
         "Hot-range partial replication quick-look: controller installs, \
          owner update streams, and the fraction of weak reads served by \
          follower copies")
    Term.(
      const replication_live $ gatekeepers $ shards $ seed $ clients $ duration
      $ theta $ factor $ json)

let backup_cmd =
  Cmd.v (Cmd.info "backup" ~doc:"Backup/restore demo")
    Term.(const backup_demo $ gatekeepers $ shards $ tau $ seed)

let stats_cmd =
  let txs =
    Arg.(value & opt int 40 & info [ "txs" ] ~docv:"N" ~doc:"Transactions to issue.")
  in
  let progs =
    Arg.(value & opt int 10 & info [ "progs" ] ~docv:"N" ~doc:"Node programs to issue.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the registry as JSON.") in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Mixed run with tracing on; metrics registry and per-phase latency breakdown")
    Term.(const stats $ gatekeepers $ shards $ tau $ seed $ txs $ progs $ json)

let trace_cmd =
  Cmd.v
    (Cmd.info "trace" ~doc:"Span tree of one traced transaction and node program")
    Term.(const trace_cmd_impl $ gatekeepers $ shards $ tau $ seed)

let timeline_cmd =
  let clients =
    Arg.(value & opt int 20 & info [ "c"; "clients" ] ~docv:"N" ~doc:"Concurrent clients.")
  in
  let duration =
    Arg.(value & opt float 200.0 & info [ "d"; "duration" ] ~docv:"MS" ~doc:"Virtual ms.")
  in
  let period =
    Arg.(value & opt float 10.0 & info [ "p"; "period" ] ~docv:"MS" ~doc:"Sample period, virtual ms.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the full series as JSON.") in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit the full series as CSV.") in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Sampled time series (throughput, messages, utilization) under TAO-mix load")
    Term.(
      const timeline_cmd_impl $ gatekeepers $ shards $ tau $ seed $ clients $ duration
      $ period $ json $ csv)

let export_cmd =
  let txs =
    Arg.(value & opt int 20 & info [ "txs" ] ~docv:"N" ~doc:"Transactions to issue.")
  in
  let progs =
    Arg.(value & opt int 5 & info [ "progs" ] ~docv:"N" ~doc:"Node programs to issue.")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file ('-' for stdout).")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Chrome trace-event JSON of a traced mixed run (open in Perfetto)")
    Term.(const export_cmd_impl $ gatekeepers $ shards $ tau $ seed $ txs $ progs $ out)

let slow_cmd =
  let txs =
    Arg.(value & opt int 40 & info [ "txs" ] ~docv:"N" ~doc:"Transactions to issue.")
  in
  let progs =
    Arg.(value & opt int 10 & info [ "progs" ] ~docv:"N" ~doc:"Node programs to issue.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the log as JSON.") in
  Cmd.v
    (Cmd.info "slow"
       ~doc:"Top-K slowest requests of a traced mixed run, with per-phase breakdowns")
    Term.(const slow_cmd_impl $ gatekeepers $ shards $ tau $ seed $ txs $ progs $ json)

let () =
  let info =
    Cmd.info "weaver-cli" ~version:"1.0.0"
      ~doc:"Drive a simulated Weaver graph database deployment"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            demo_cmd;
            tao_cmd;
            coingraph_cmd;
            fault_cmd;
            chaos_cmd;
            sweep_cmd;
            contention_cmd;
            overload_cmd;
            snapshot_cmd;
            heat_cmd;
            health_cmd;
            rebalance_cmd;
            replication_cmd;
            backup_cmd;
            stats_cmd;
            trace_cmd;
            timeline_cmd;
            export_cmd;
            slow_cmd;
          ]))
