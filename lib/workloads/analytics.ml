open Weaver_core
module Store = Weaver_store.Store
module Mgraph = Weaver_graph.Mgraph

let all_vertices cluster =
  let rt = Cluster.runtime cluster in
  Store.scan_prefix rt.Runtime.store ~prefix:"v/"
  |> List.filter_map (fun (key, value) ->
         match value with
         | Runtime.Vrec v when v.Mgraph.v_life.Mgraph.deleted = None ->
             Some (String.sub key 2 (String.length key - 2))
         | _ -> None)
  |> List.sort compare

let rec chunks n = function
  | [] -> []
  | l ->
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> take (k - 1) (x :: acc) rest
      in
      let chunk, rest = take n [] l in
      chunk :: chunks n rest

let run_all cluster client ~prog ~params ?(batch = 256) ?consistency ?at () =
  match Nodeprog.find (Cluster.registry cluster) prog with
  | None -> Error ("unknown program: " ^ prog)
  | Some (module P : Nodeprog.PROGRAM) ->
      let vertices = all_vertices cluster in
      let rec go acc = function
        | [] -> Ok acc
        | chunk :: rest -> (
            match
              Client.run_program client ~prog ~params ~starts:chunk ?consistency
                ?at ()
            with
            | Ok partial -> go (P.merge acc partial) rest
            | Error e -> Error e)
      in
      go P.empty (chunks batch vertices)
