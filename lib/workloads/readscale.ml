(* Read-scale workload: Zipf-skewed closed-loop weak readers versus
   uniform closed-loop property writers. The reader skew concentrates load
   on a few key ranges — exactly what the replication controller looks for
   — while the writers keep the owners' follower streams carrying real
   updates instead of bare watermark heartbeats. *)

open Weaver_core
module Xrand = Weaver_util.Xrand
module Stats = Weaver_util.Stats

type result = {
  reads_ok : int;
  reads_err : int;
  writes_ok : int;
  writes_err : int;
  duration : float;
  read_goodput : float;
  write_throughput : float;
  read_latencies : Stats.t;
  write_latencies : Stats.t;
}

let spawn_reader cluster ~rng ~vertices ~theta ~state =
  let client = Cluster.client cluster in
  let reads_ok, reads_err, _, _, read_lat, _, window_start = state in
  let n = Array.length vertices in
  let rec next () =
    let t0 = Cluster.now cluster in
    let v = vertices.(Xrand.zipf rng ~n ~theta) in
    Client.run_program_async client ~prog:"get_node" ~params:Progval.Null
      ~starts:[ v ] ~consistency:`Weak
      ~on_result:(fun r ->
        (if Cluster.now cluster >= !window_start then
           match r with
           | Ok _ ->
               incr reads_ok;
               Stats.add read_lat (Cluster.now cluster -. t0)
           | Error _ -> incr reads_err);
        next ())
      ()
  in
  next ()

let spawn_writer cluster ~rng ~vertices ~state =
  let client = Cluster.client cluster in
  let _, _, writes_ok, writes_err, _, write_lat, window_start = state in
  let n = Array.length vertices in
  let k = ref 0 in
  let rec next () =
    let t0 = Cluster.now cluster in
    let v = vertices.(Xrand.int rng n) in
    incr k;
    let tx = Client.Tx.begin_ client in
    Client.Tx.set_vertex_prop tx ~vid:v ~key:"w" ~value:(string_of_int !k);
    Client.commit_async client tx ~on_result:(fun r ->
        (if Cluster.now cluster >= !window_start then
           match r with
           | Ok () ->
               incr writes_ok;
               Stats.add write_lat (Cluster.now cluster -. t0)
           | Error _ -> incr writes_err);
        next ())
  in
  next ()

let run cluster ~vertices ~readers ~writers ~duration ?(theta = 0.9)
    ?(warmup = 0.0) () =
  assert (readers > 0 && duration > 0.0);
  let rt = Cluster.runtime cluster in
  let master = Weaver_sim.Engine.rng rt.Runtime.engine in
  let reads_ok = ref 0 and reads_err = ref 0 in
  let writes_ok = ref 0 and writes_err = ref 0 in
  let read_lat = Stats.create () and write_lat = Stats.create () in
  let window_start = ref (Cluster.now cluster +. warmup) in
  let state =
    (reads_ok, reads_err, writes_ok, writes_err, read_lat, write_lat, window_start)
  in
  for _ = 1 to readers do
    let rng = Xrand.split master in
    spawn_reader cluster ~rng ~vertices ~theta ~state
  done;
  for _ = 1 to writers do
    let rng = Xrand.split master in
    spawn_writer cluster ~rng ~vertices ~state
  done;
  Cluster.run_for cluster (warmup +. duration);
  {
    reads_ok = !reads_ok;
    reads_err = !reads_err;
    writes_ok = !writes_ok;
    writes_err = !writes_err;
    duration;
    read_goodput = float_of_int !reads_ok /. (duration /. 1_000_000.0);
    write_throughput = float_of_int !writes_ok /. (duration /. 1_000_000.0);
    read_latencies = read_lat;
    write_latencies = write_lat;
  }
