open Weaver_core
module Xrand = Weaver_util.Xrand
module Stats = Weaver_util.Stats

type opts = {
  ov_seed : int;
  ov_gatekeepers : int;
  ov_shards : int;
  ov_clients : int;
  ov_rate : float;
  ov_duration : float;
  ov_drain : float;
  ov_timeout : float;
  ov_read_fraction : float;
  ov_flow : bool;
  ov_admission_limit : int;
  ov_deadline_budget : float;
  ov_shard_credits : int;
}

let default_opts =
  {
    ov_seed = 42;
    ov_gatekeepers = 2;
    ov_shards = 4;
    ov_clients = 8;
    ov_rate = 50_000.0;
    ov_duration = 200_000.0;
    ov_drain = 150_000.0;
    ov_timeout = 40_000.0;
    ov_read_fraction = 0.5;
    ov_flow = false;
    ov_admission_limit = 64;
    ov_deadline_budget = 1_200.0;
    ov_shard_credits = 64;
  }

(* gatekeepers admit serially at [gk_op_cost] µs per request, so the knee
   of the goodput curve sits at one request per gk_op_cost per gatekeeper *)
let saturation_rate ~gatekeepers ~gk_op_cost =
  if gk_op_cost <= 0.0 then infinity
  else float_of_int gatekeepers /. gk_op_cost *. 1e6

type result = {
  v_flow : bool;
  v_seed : int;
  v_rate : float;
  v_offered : int;
  v_ok : int;
  v_timeout : int;
  v_shed : int;
  v_other_err : int;
  v_goodput : float; (* completed-ok requests per second of offered window *)
  v_p50 : float; (* over ok completions only *)
  v_p99 : float;
  v_shed_rate : float;
  v_shed_queue : int;
  v_shed_deadline : int;
  v_shed_credit : int;
  v_credit_msgs : int;
  v_nop_msgs : int;
  v_heartbeats : int;
  v_retries : int;
  v_fingerprint : int * int * int * int * int * int;
}

let is_shed e = String.length e >= 5 && String.equal (String.sub e 0 5) "shed:"

(* Open-loop driver: requests are issued at the offered rate regardless of
   completions (unlike the closed-loop chaos/contention drivers, which
   self-throttle and so can never push the cluster past saturation). The
   issuance RNG is a private stream, identical across both arms. *)
let run opts =
  let cfg =
    {
      Config.default with
      Config.n_gatekeepers = opts.ov_gatekeepers;
      Config.n_shards = opts.ov_shards;
      Config.seed = opts.ov_seed;
      Config.admission_limit = (if opts.ov_flow then opts.ov_admission_limit else 0);
      Config.deadline_budget = (if opts.ov_flow then opts.ov_deadline_budget else 0.0);
      Config.shard_credits = (if opts.ov_flow then opts.ov_shard_credits else 0);
    }
  in
  Config.validate cfg;
  let c = Cluster.create cfg in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
  let graph_rng = Xrand.create ~seed:opts.ov_seed () in
  let g = Graphgen.uniform ~rng:graph_rng ~prefix:"o" ~vertices:300 ~edges:900 () in
  Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  let vertices = Array.of_list (Graphgen.vertex_ids g) in
  let rng = Xrand.create ~seed:(opts.ov_seed + 1) () in
  let pick () = vertices.(Xrand.int rng (Array.length vertices)) in
  let clients =
    Array.init (max 1 opts.ov_clients) (fun _ ->
        let client = Cluster.client c in
        Client.set_timeout client opts.ov_timeout;
        Client.set_retry_policy client Client.no_retry_policy;
        client)
  in
  let ok = ref 0
  and timeouts = ref 0
  and shed = ref 0
  and other = ref 0 in
  let latencies = Stats.create () in
  let record ~t0 r =
    match r with
    | Ok () ->
        incr ok;
        Stats.add latencies (Cluster.now c -. t0)
    | Error "timeout" -> incr timeouts
    | Error e when is_shed e -> incr shed
    | Error _ -> incr other
  in
  let total = int_of_float (Float.round (opts.ov_rate *. opts.ov_duration /. 1e6)) in
  let total = max 1 total in
  let interval = opts.ov_duration /. float_of_int total in
  let issued = ref 0 in
  let engine = (Cluster.runtime c).Runtime.engine in
  Weaver_sim.Engine.every engine ~period:interval (fun () ->
      if !issued >= total then false
      else begin
        incr issued;
        let client = clients.(!issued mod Array.length clients) in
        let t0 = Cluster.now c in
        if Xrand.float rng 1.0 < opts.ov_read_fraction then
          Client.run_program_async client ~prog:"get_node" ~params:Progval.Null
            ~starts:[ pick () ]
            ~on_result:(fun r -> record ~t0 (Result.map ignore r))
            ()
        else begin
          let tx = Client.Tx.begin_ client in
          ignore (Client.Tx.create_edge tx ~src:(pick ()) ~dst:(pick ()));
          Client.commit_async client tx ~on_result:(record ~t0)
        end;
        true
      end);
  Cluster.run_for c (opts.ov_duration +. opts.ov_drain);
  let cnt = Cluster.counters c in
  let rt = Cluster.runtime c in
  let offered = !issued in
  let goodput = float_of_int !ok /. (opts.ov_duration /. 1e6) in
  let shed_rate =
    if offered = 0 then 0.0 else float_of_int !shed /. float_of_int offered
  in
  {
    v_flow = opts.ov_flow;
    v_seed = opts.ov_seed;
    v_rate = opts.ov_rate;
    v_offered = offered;
    v_ok = !ok;
    v_timeout = !timeouts;
    v_shed = !shed;
    v_other_err = !other;
    v_goodput = goodput;
    v_p50 = Stats.percentile latencies 50.0;
    v_p99 = Stats.percentile latencies 99.0;
    v_shed_rate = shed_rate;
    v_shed_queue = cnt.Runtime.shed_queue_full;
    v_shed_deadline = cnt.Runtime.shed_deadline;
    v_shed_credit = cnt.Runtime.shed_credit;
    v_credit_msgs = cnt.Runtime.credit_msgs;
    v_nop_msgs = cnt.Runtime.nop_msgs;
    v_heartbeats = cnt.Runtime.heartbeat_msgs;
    v_retries = cnt.Runtime.client_retries;
    v_fingerprint =
      ( !ok,
        !timeouts,
        !shed,
        cnt.Runtime.tx_committed,
        Weaver_sim.Net.messages_sent rt.Runtime.net,
        cnt.Runtime.nop_msgs );
  }

(* canonical-order JSON, hand-rolled like the other workload reporters:
   byte determinism of the rendering is part of the contract *)
let to_json r =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"flow\": %b, \"seed\": %d, \"rate_rps\": %.0f" r.v_flow r.v_seed r.v_rate;
  add ", \"offered\": %d, \"ok\": %d, \"timeout\": %d, \"shed\": %d, \"other_err\": %d"
    r.v_offered r.v_ok r.v_timeout r.v_shed r.v_other_err;
  add ", \"goodput_rps\": %.0f, \"p50_us\": %.1f, \"p99_us\": %.1f" r.v_goodput
    r.v_p50 r.v_p99;
  add ", \"shed_rate\": %.4f" r.v_shed_rate;
  add ", \"shed_queue\": %d, \"shed_deadline\": %d, \"shed_credit\": %d"
    r.v_shed_queue r.v_shed_deadline r.v_shed_credit;
  add ", \"credit_msgs\": %d, \"nop_msgs\": %d, \"heartbeats\": %d, \"retries\": %d"
    r.v_credit_msgs r.v_nop_msgs r.v_heartbeats r.v_retries;
  add "}";
  Buffer.contents b
