(** Chaos benchmark: a TAO-style read/write mix driven through a rolling
    crash/restart fault plan, measuring windowed availability, tail
    latency, and time-to-recover — with the client reliability layer
    (retries, backoff, failure-aware routing, duplicate suppression)
    either on or off, so the two runs quantify what the layer buys.

    The cluster-manager failure detector is disabled (by an effectively
    infinite [failure_timeout]): the fault plan's restarts revive servers
    in place, so the availability difference between the two runs is
    attributable to the client policy alone, not to replacement servers.

    Everything is deterministic in [co_seed]: the same options produce a
    bit-identical {!to_json} string. *)

type opts = {
  co_seed : int;
  co_gatekeepers : int;
  co_shards : int;
  co_clients : int;  (** closed-loop client sessions *)
  co_duration : float;  (** measured run, virtual µs *)
  co_window : float;  (** availability window, virtual µs *)
  co_timeout : float;  (** client reply timeout, virtual µs *)
  co_reliable : bool;
      (** [true] → {!Weaver_core.Client.reliable_policy}; [false] → the
          pre-reliability single-attempt client *)
  co_read_fraction : float;
}

val default_opts : opts
(** seed 42, 3 gatekeepers, 4 shards, 12 clients, 1 s duration, 50 ms
    windows, 60 ms timeout, 80% reads, reliability on. *)

type window = {
  w_start : float;  (** window start, µs from measurement start *)
  w_ok : int;
  w_err : int;
}

type result = {
  r_reliable : bool;
  r_seed : int;
  r_windows : window list;  (** oldest first *)
  r_total_ok : int;
  r_total_err : int;
  r_availability : float;  (** total_ok / (total_ok + total_err) *)
  r_p50 : float;  (** latency of successful requests, µs (incl. retries) *)
  r_p99 : float;
  r_recovery_time : float option;
      (** µs from the plan's last restart to the start of the first
          subsequent window with ≥95% availability; [None] if the run
          never recovered (or ended first) *)
  r_retries : int;
  r_dedup_hits : int;
  r_late_replies : int;
  r_fault_events : int;
}

val plan_of : opts -> base:float -> Weaver_sim.Fault.plan
(** The fault schedule the benchmark installs, anchored at virtual time
    [base]: an early cluster-wide latency spike (slow-but-alive servers
    exercise timeout/duplicate-suppression paths), then rolling
    crash/restarts over the gatekeepers and a shard (exposed for tests
    and documentation). *)

val run : opts -> result

val to_json : result -> string
(** Canonical JSON rendering (stable field order, fixed float precision) —
    byte-identical across runs with equal options. *)
