open Weaver_core
module Xrand = Weaver_util.Xrand
module Stats = Weaver_util.Stats
module Fault = Weaver_sim.Fault

type opts = {
  co_seed : int;
  co_gatekeepers : int;
  co_shards : int;
  co_clients : int;
  co_duration : float;
  co_window : float;
  co_timeout : float;
  co_reliable : bool;
  co_read_fraction : float;
}

let default_opts =
  {
    co_seed = 42;
    co_gatekeepers = 3;
    co_shards = 4;
    co_clients = 12;
    co_duration = 1_000_000.0;
    co_window = 50_000.0;
    co_timeout = 60_000.0;
    co_reliable = true;
    co_read_fraction = 0.8;
  }

type window = { w_start : float; w_ok : int; w_err : int }

type result = {
  r_reliable : bool;
  r_seed : int;
  r_windows : window list;
  r_total_ok : int;
  r_total_err : int;
  r_availability : float;
  r_p50 : float;
  r_p99 : float;
  r_recovery_time : float option;
  r_retries : int;
  r_dedup_hits : int;
  r_late_replies : int;
  r_fault_events : int;
}

(* An early cluster-wide latency spike (slow servers: requests time out
   client-side but still commit, exercising duplicate suppression), then
   rolling single-failures: one gatekeeper, then another, then a shard —
   never two down at once, and gatekeeper 0 never crashes so the cluster
   always has a live coordinator. Timings leave a tail after the last
   restart to measure recovery. *)
let plan_of opts ~base =
  let spike =
    Fault.scripted
      [
        (base +. (opts.co_duration /. 25.0), Fault.Net_degrade 60.0);
        (base +. (opts.co_duration /. 9.0), Fault.Net_degrade 1.0);
      ]
  in
  let targets =
    List.init (max 0 (opts.co_gatekeepers - 1)) (fun i -> Fault.Gatekeeper (i + 1))
    @ [ Fault.Shard 0 ]
  in
  let gap = opts.co_duration /. 4.0 in
  spike
  @ Fault.rolling_crashes ~targets
      ~start:(base +. (opts.co_duration /. 5.0))
      ~gap
      ~downtime:(gap /. 2.0)

let last_restart plan =
  List.fold_left
    (fun acc (e : Fault.event) ->
      match e.Fault.action with Fault.Restart _ -> Float.max acc e.Fault.at | _ -> acc)
    0.0 plan

(* one closed-loop client: reads are get_node programs, writes create an
   edge between two zipf-picked vertices — a compressed TAO mix *)
let spawn_client c ~rng ~vertices ~opts ~record =
  let client = Cluster.client c in
  Client.set_timeout client opts.co_timeout;
  Client.set_retry_policy client
    (if opts.co_reliable then Client.reliable_policy else Client.no_retry_policy);
  let n = Array.length vertices in
  let pick () = vertices.(Xrand.zipf rng ~n ~theta:0.75) in
  let rec next () =
    let t0 = Cluster.now c in
    if Xrand.float rng 1.0 < opts.co_read_fraction then
      Client.run_program_async client ~prog:"get_node" ~params:Progval.Null
        ~starts:[ pick () ]
        ~on_result:(fun r ->
          record ~t0 ~ok:(Result.is_ok r);
          next ())
        ()
    else begin
      let tx = Client.Tx.begin_ client in
      ignore (Client.Tx.create_edge tx ~src:(pick ()) ~dst:(pick ()));
      Client.commit_async client tx ~on_result:(fun r ->
          record ~t0 ~ok:(Result.is_ok r);
          next ())
    end
  in
  next ()

let run opts =
  let cfg =
    {
      Config.default with
      Config.n_gatekeepers = opts.co_gatekeepers;
      Config.n_shards = opts.co_shards;
      Config.seed = opts.co_seed;
      (* disable the failure detector: restarts come from the fault plan,
         so the measured difference is the client policy, not replacement
         servers (see .mli) *)
      Config.failure_timeout = 1e12;
    }
  in
  Config.validate cfg;
  let c = Cluster.create cfg in
  Weaver_programs.Std_programs.Std.register_all (Cluster.registry c);
  let graph_rng = Xrand.create ~seed:opts.co_seed () in
  let g =
    Graphgen.uniform ~rng:graph_rng ~prefix:"c" ~vertices:400 ~edges:1_600 ()
  in
  Loader.fast_install c g;
  Cluster.run_for c 5_000.0;
  let base = Cluster.now c in
  let plan = plan_of opts ~base in
  ignore (Cluster.install_fault_plan c plan);
  let n_windows = int_of_float (ceil (opts.co_duration /. opts.co_window)) in
  let ok = Array.make n_windows 0 and err = Array.make n_windows 0 in
  let latencies = Stats.create () in
  let record ~t0 ~ok:is_ok =
    let now = Cluster.now c in
    let idx = int_of_float ((now -. base) /. opts.co_window) in
    if idx >= 0 && idx < n_windows then
      if is_ok then begin
        ok.(idx) <- ok.(idx) + 1;
        Stats.add latencies (now -. t0)
      end
      else err.(idx) <- err.(idx) + 1
  in
  let vertices = Array.of_list (Graphgen.vertex_ids g) in
  let master = Xrand.create ~seed:(opts.co_seed + 1) () in
  for _ = 1 to opts.co_clients do
    let rng = Xrand.split master in
    spawn_client c ~rng ~vertices ~opts ~record
  done;
  Cluster.run_for c opts.co_duration;
  let windows =
    List.init n_windows (fun i ->
        { w_start = float_of_int i *. opts.co_window; w_ok = ok.(i); w_err = err.(i) })
  in
  let total_ok = Array.fold_left ( + ) 0 ok
  and total_err = Array.fold_left ( + ) 0 err in
  let availability =
    if total_ok + total_err = 0 then 0.0
    else float_of_int total_ok /. float_of_int (total_ok + total_err)
  in
  let restart_rel = last_restart plan -. base in
  let recovery_time =
    List.fold_left
      (fun acc w ->
        match acc with
        | Some _ -> acc
        | None ->
            let total = w.w_ok + w.w_err in
            if
              w.w_start >= restart_rel && total > 0
              && float_of_int w.w_ok /. float_of_int total >= 0.95
            then Some (w.w_start -. restart_rel)
            else None)
      None windows
  in
  let cnt = Cluster.counters c in
  {
    r_reliable = opts.co_reliable;
    r_seed = opts.co_seed;
    r_windows = windows;
    r_total_ok = total_ok;
    r_total_err = total_err;
    r_availability = availability;
    r_p50 = Stats.percentile latencies 50.0;
    r_p99 = Stats.percentile latencies 99.0;
    r_recovery_time = recovery_time;
    r_retries = cnt.Runtime.client_retries;
    r_dedup_hits = cnt.Runtime.dedup_hits;
    r_late_replies = cnt.Runtime.late_replies;
    r_fault_events = cnt.Runtime.fault_events;
  }

(* hand-rolled, canonical-order JSON: determinism of the rendered bytes is
   part of the contract (the chaos experiment diffs two runs' strings) *)
let to_json r =
  let b = Buffer.create 1_024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"reliable\": %b, \"seed\": %d" r.r_reliable r.r_seed;
  add ", \"total_ok\": %d, \"total_err\": %d" r.r_total_ok r.r_total_err;
  add ", \"availability\": %.4f" r.r_availability;
  add ", \"p50_us\": %.1f, \"p99_us\": %.1f" r.r_p50 r.r_p99;
  (match r.r_recovery_time with
  | Some t -> add ", \"recovery_us\": %.0f" t
  | None -> add ", \"recovery_us\": null");
  add ", \"retries\": %d, \"dedup_hits\": %d" r.r_retries r.r_dedup_hits;
  add ", \"late_replies\": %d, \"fault_events\": %d" r.r_late_replies r.r_fault_events;
  add ", \"windows\": [";
  List.iteri
    (fun i w ->
      if i > 0 then add ", ";
      add "{\"start_us\": %.0f, \"ok\": %d, \"err\": %d}" w.w_start w.w_ok w.w_err)
    r.r_windows;
  add "]}";
  Buffer.contents b
