(** Overload benchmark: an {e open-loop} read/write mix issued at a fixed
    offered rate — unlike the closed-loop chaos/contention drivers, which
    self-throttle and therefore can never push the cluster past its knee —
    measuring goodput, tail latency, and shed rate with the flow-control
    subsystem ({!Weaver_flow.Flow}: deadline-based admission, queue caps,
    credit-based gatekeeper→shard backpressure) either on or off.

    Clients run single-attempt ([no_retry_policy]) so each issued request
    is classified exactly once: ok, timeout, shed, or other. Everything is
    deterministic in [ov_seed]: the same options produce a bit-identical
    {!to_json} string, and the issuance RNG is a private stream shared by
    both arms so the offered workloads are identical. *)

type opts = {
  ov_seed : int;
  ov_gatekeepers : int;
  ov_shards : int;
  ov_clients : int;  (** request handles rotated round-robin *)
  ov_rate : float;  (** offered load, requests per (virtual) second *)
  ov_duration : float;  (** issuance window, virtual µs *)
  ov_drain : float;  (** extra run time after issuance stops, µs *)
  ov_timeout : float;  (** client reply timeout, virtual µs *)
  ov_read_fraction : float;
  ov_flow : bool;  (** [true] → enable the three flow knobs below *)
  ov_admission_limit : int;
  ov_deadline_budget : float;
  ov_shard_credits : int;
}

val default_opts : opts
(** seed 42, 2 gatekeepers, 4 shards, 8 client handles, 50k req/s offered
    over 200 ms, 150 ms drain, 40 ms timeout, 50% reads, flow off
    (limit 64 / budget 1.2 ms / 64 credits when enabled). *)

val saturation_rate : gatekeepers:int -> gk_op_cost:float -> float
(** The admission-capacity knee in requests per second: gatekeepers admit
    serially at [gk_op_cost] µs per request, so capacity is one request
    per [gk_op_cost] per gatekeeper. *)

type result = {
  v_flow : bool;
  v_seed : int;
  v_rate : float;
  v_offered : int;  (** requests actually issued *)
  v_ok : int;
  v_timeout : int;
  v_shed : int;  (** rejected with a ["shed:"] error *)
  v_other_err : int;
  v_goodput : float;  (** ok completions per second of the offered window *)
  v_p50 : float;  (** latency of ok requests only, µs *)
  v_p99 : float;
  v_shed_rate : float;  (** shed / offered *)
  v_shed_queue : int;  (** gatekeeper counters, by shed reason *)
  v_shed_deadline : int;
  v_shed_credit : int;
  v_credit_msgs : int;
  v_nop_msgs : int;  (** control traffic — must match across arms *)
  v_heartbeats : int;
  v_retries : int;
  v_fingerprint : int * int * int * int * int * int;
      (** (ok, timeout, shed, tx_committed, net sends, nop msgs) — equal
          across reruns with equal options *)
}

val run : opts -> result

val to_json : result -> string
(** Canonical JSON rendering (stable field order, fixed float precision) —
    byte-identical across runs with equal options. *)
