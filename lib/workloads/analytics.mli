(** Whole-graph analytics on a live cluster.

    The offline systems the paper compares against (Pregel, GraphLab, …)
    run computations over every vertex. Weaver expresses the same analyses
    as node programs; this module drives one over the {e entire} graph in
    batches of start vertices, merging the partial results with the
    program's own [merge] — while transactions keep committing underneath,
    which the offline systems cannot do. *)

val all_vertices : Weaver_core.Cluster.t -> string list
(** Ids of every vertex with a live durable record, from the backing
    store. *)

val run_all :
  Weaver_core.Cluster.t ->
  Weaver_core.Client.t ->
  prog:string ->
  params:Weaver_core.Progval.t ->
  ?batch:int ->
  ?consistency:[ `Strong | `Weak ] ->
  ?at:Weaver_vclock.Vclock.t ->
  unit ->
  (Weaver_core.Progval.t, string) result
(** Run [prog] with every live vertex as a start, [batch] (default 256)
    starts per node-program invocation, merging partial results. Each batch
    is itself a consistent snapshot; batches may see different snapshots
    (the price of an online full-graph scan — Kineograph-style systems have
    the same property) — unless [at] pins every batch to one historical
    timestamp, which makes the whole scan one consistent cut (and, with
    [Config.snapshot_reads], lock-free against concurrent writers). *)
