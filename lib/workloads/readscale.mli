(** Read-scale workload for partial replication (ROADMAP item 3): a pool of
    closed-loop weak readers picking vertices Zipf-skewed (the hot ranges
    the replication controller should detect) races a pool of closed-loop
    property writers picking vertices uniformly (keeping every owner's
    update stream busy). Read goodput — completed weak reads per second of
    virtual time — is the metric replication factor is supposed to move;
    write throughput is the one it must not. *)

type result = {
  reads_ok : int;  (** weak reads completed inside the window *)
  reads_err : int;  (** weak reads that exhausted retries (timeouts) *)
  writes_ok : int;
  writes_err : int;
  duration : float;  (** measurement window, µs *)
  read_goodput : float;  (** completed weak reads per second *)
  write_throughput : float;  (** committed writes per second *)
  read_latencies : Weaver_util.Stats.t;
  write_latencies : Weaver_util.Stats.t;
}

val run :
  Weaver_core.Cluster.t ->
  vertices:string array ->
  readers:int ->
  writers:int ->
  duration:float ->
  ?theta:float ->
  ?warmup:float ->
  unit ->
  result
(** Drive the cluster for [warmup + duration] virtual µs; only operations
    completing after the warmup are counted. [theta] is the Zipf skew of
    the readers (default 0.9). Deterministic in the cluster's seed. *)
