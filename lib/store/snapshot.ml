(* Refcounted immutable snapshot registry — the wharf-style versioned-graph
   core. Publishers push frozen values (newest first); readers acquire an
   entry, hold it across an arbitrarily long computation, and release it
   when done. Retention keeps the newest [retain] entries plus every entry
   still pinned, so a publisher can keep rolling the window forward while a
   slow reader finishes against an old version. Pure data structure: no
   clocks, no scheduling, caller-supplied keys. *)

type 'a entry = {
  sn_key : string;
  sn_value : 'a;
  mutable sn_refs : int;
}

type 'a t = {
  mutable entries : 'a entry list; (* newest first *)
  retain : int;
  mutable published : int;
  mutable acquired : int;
  mutable released : int;
}

let create ?(retain = 4) () =
  if retain < 1 then invalid_arg "Snapshot.create: retain < 1";
  { entries = []; retain; published = 0; acquired = 0; released = 0 }

(* Keep the newest [retain] entries unconditionally, older ones only while
   pinned. Entries never resurrect: once pruned, an equal key would be a
   fresh publication. *)
let prune t =
  t.entries <-
    List.filteri (fun i e -> i < t.retain || e.sn_refs > 0) t.entries

let publish t ~key value =
  let e = { sn_key = key; sn_value = value; sn_refs = 0 } in
  t.entries <- e :: t.entries;
  t.published <- t.published + 1;
  prune t;
  e

let latest t = match t.entries with [] -> None | e :: _ -> Some e

let find t pred = List.find_opt (fun e -> pred e.sn_value) t.entries

let key e = e.sn_key
let value e = e.sn_value
let refs e = e.sn_refs

let acquire t e =
  e.sn_refs <- e.sn_refs + 1;
  t.acquired <- t.acquired + 1

let release t e =
  if e.sn_refs <= 0 then invalid_arg "Snapshot.release: not acquired";
  e.sn_refs <- e.sn_refs - 1;
  t.released <- t.released + 1;
  if e.sn_refs = 0 then prune t

let pinned t = List.filter (fun e -> e.sn_refs > 0) t.entries
let count t = List.length t.entries
let published t = t.published
let acquires t = t.acquired
let releases t = t.released

let clear t = t.entries <- []
