(** Transactional key-value backing store — the HyperDex Warp stand-in.

    Weaver relies on its backing store for exactly three things (paper §3.2,
    §4.2, §4.3): durable storage of the graph, a vertex → shard directory,
    and atomic multi-key ACID transactions that commit only if none of the
    data read was concurrently modified. This module provides those
    semantics with optimistic concurrency control: a transaction records the
    version of every key it reads; at commit, every recorded version must
    still be current, otherwise the transaction aborts ([`Conflict]) and the
    caller retries — the same abort-and-retry discipline Warp's acyclic
    transactions give the paper's gatekeepers.

    Values are polymorphic; the store never copies them. "Durability" in
    the simulation means the store survives shard-server crashes (shards are
    rebuilt from it), which is the property the paper's recovery protocol
    needs. *)

type 'v t

val create : unit -> 'v t

val length : 'v t -> int
(** Number of live (non-deleted) keys. *)

val version : 'v t -> string -> int
(** Current version of a key; 0 if never written. Deletions bump the
    version too. *)

val get_now : 'v t -> string -> 'v option
(** Non-transactional point read of the latest value. Used for recovery
    reads, where transactional isolation is unnecessary (the writer is
    gone). *)

val scan_prefix : 'v t -> prefix:string -> (string * 'v) list
(** All live bindings whose key starts with [prefix], sorted by key. The
    order is part of the contract: it feeds shard crash-recovery reload
    (which keeps the first [shard_capacity] records) and snapshot
    publication, both of which must be bit-identical across runs and
    OCaml hash-table layouts. *)

val commits : 'v t -> int
val aborts : 'v t -> int

(** {1 Write-ahead journal}

    Every committed transaction appends its write set to an in-order
    journal before the cells mutate — the durability boundary a disk-backed
    deployment would fsync. {!replay} rebuilds an equivalent store from the
    journal alone, which the tests use to validate crash-consistency. *)

val journal_length : 'v t -> int
(** Committed transactions recorded. *)

val journal_entry : 'v t -> int -> (string * 'v option) list
(** Write set of the [i]-th committed transaction ([None] = deletion), in
    application order. @raise Invalid_argument when out of range. *)

val replay : 'v t -> 'v t
(** A fresh store holding the journal's effects replayed in order; its own
    journal is the same sequence. *)

(** Transactions. A ['v tx] buffers writes and records read versions; no
    global state changes until {!commit}. *)
module Tx : sig
  type 'v tx

  val begin_ : 'v t -> 'v tx

  val get : 'v tx -> string -> 'v option
  (** Read-your-writes: sees this transaction's own buffered writes first,
      then the store. Records the read version for commit-time
      validation. *)

  val put : 'v tx -> string -> 'v -> unit
  val delete : 'v tx -> string -> unit

  val commit : 'v tx -> (unit, [ `Conflict of string ]) result
  (** Atomically apply all buffered writes iff every key read still has the
      version observed. [`Conflict k] names the first stale key. A
      transaction handle must not be reused after commit or abort. *)

  val abort : 'v tx -> unit
  (** Discard the transaction. *)

  val read_set : 'v tx -> string list
  val write_set : 'v tx -> string list
end
