(** Refcounted immutable snapshot registry (wharf-style versioned graph).

    A publisher freezes a value — for Weaver, one shard's partition of the
    multi-version graph at a vclock watermark boundary — and pushes it
    here; readers acquire an entry, run an arbitrarily long computation
    against it without ever blocking the publisher, and release it when
    done. The registry retains the newest [retain] publications plus every
    older entry that is still pinned, so long-running analytics keep their
    version alive while the window rolls forward underneath them.

    Pure data structure: caller-supplied string keys, no clocks, no
    scheduling, deterministic. Shards key entries by {!Weaver_vclock}
    timestamp and use the pinned set to clamp the multi-version GC
    watermark (a pinned snapshot is never compacted out from under a
    running node program). *)

type 'a entry
(** One published snapshot: an immutable value plus a reference count. *)

type 'a t

val create : ?retain:int -> unit -> 'a t
(** A fresh registry keeping the newest [retain] (default 4) unpinned
    entries. @raise Invalid_argument when [retain < 1]. *)

val publish : 'a t -> key:string -> 'a -> 'a entry
(** Push a new newest entry and prune unpinned entries beyond the
    retention window. The caller must not mutate [value] afterwards. *)

val latest : 'a t -> 'a entry option
(** The most recent publication still retained. *)

val find : 'a t -> ('a -> bool) -> 'a entry option
(** The newest retained entry whose value satisfies the predicate. *)

val key : 'a entry -> string
val value : 'a entry -> 'a

val refs : 'a entry -> int
(** Current pin count (tests/introspection). *)

val acquire : 'a t -> 'a entry -> unit
(** Pin: the entry survives retention pruning until released. *)

val release : 'a t -> 'a entry -> unit
(** Unpin; a retired entry whose last pin drops is pruned immediately.
    @raise Invalid_argument when the entry is not acquired. *)

val pinned : 'a t -> 'a entry list
(** Entries currently pinned, newest first. *)

val count : 'a t -> int
(** Entries currently retained (pinned or within the window). *)

val published : 'a t -> int
(** Total publications over the registry's lifetime. *)

val acquires : 'a t -> int
val releases : 'a t -> int
(** Lifetime pin/unpin totals (tests/introspection). *)

val clear : 'a t -> unit
(** Drop every entry and pin — a crash or epoch barrier losing the
    in-memory snapshots (they are rebuilt from the durable store). *)
