type 'v cell = { mutable value : 'v option; mutable ver : int }

type 'v t = {
  cells : (string, 'v cell) Hashtbl.t;
  mutable live : int;
  mutable commits : int;
  mutable aborts : int;
  mutable journal : (string * 'v option) list list; (* newest first *)
  mutable journal_len : int;
}

let create () =
  {
    cells = Hashtbl.create 1024;
    live = 0;
    commits = 0;
    aborts = 0;
    journal = [];
    journal_len = 0;
  }

let length t = t.live

let version t k =
  match Hashtbl.find_opt t.cells k with Some c -> c.ver | None -> 0

let get_now t k =
  match Hashtbl.find_opt t.cells k with Some c -> c.value | None -> None

let scan_prefix t ~prefix =
  Hashtbl.fold
    (fun k c acc ->
      match c.value with
      | Some v when String.starts_with ~prefix k -> (k, v) :: acc
      | _ -> acc)
    t.cells []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let commits t = t.commits
let aborts t = t.aborts

module Tx = struct
  type 'v op = Put of 'v | Delete

  type 'v tx = {
    store : 'v t;
    reads : (string, int) Hashtbl.t; (* key -> version observed *)
    writes : (string, 'v op) Hashtbl.t;
    mutable order : string list; (* write keys, newest first, for determinism *)
    mutable finished : bool;
  }

  let begin_ store =
    {
      store;
      reads = Hashtbl.create 8;
      writes = Hashtbl.create 8;
      order = [];
      finished = false;
    }

  let check_open tx = if tx.finished then invalid_arg "Store.Tx: finished handle"

  let get tx k =
    check_open tx;
    match Hashtbl.find_opt tx.writes k with
    | Some (Put v) -> Some v
    | Some Delete -> None
    | None ->
        if not (Hashtbl.mem tx.reads k) then
          Hashtbl.replace tx.reads k (version tx.store k);
        get_now tx.store k

  let record_write tx k op =
    check_open tx;
    if not (Hashtbl.mem tx.writes k) then tx.order <- k :: tx.order;
    Hashtbl.replace tx.writes k op

  let put tx k v = record_write tx k (Put v)
  let delete tx k = record_write tx k Delete

  let apply store k op =
    let cell =
      match Hashtbl.find_opt store.cells k with
      | Some c -> c
      | None ->
          let c = { value = None; ver = 0 } in
          Hashtbl.replace store.cells k c;
          c
    in
    let was_live = cell.value <> None in
    (match op with
    | Put v -> cell.value <- Some v
    | Delete -> cell.value <- None);
    let is_live = cell.value <> None in
    if was_live && not is_live then store.live <- store.live - 1;
    if (not was_live) && is_live then store.live <- store.live + 1;
    cell.ver <- cell.ver + 1

  let commit tx =
    check_open tx;
    tx.finished <- true;
    let stale =
      Hashtbl.fold
        (fun k ver acc ->
          match acc with
          | Some _ -> acc
          | None -> if version tx.store k <> ver then Some k else None)
        tx.reads None
    in
    match stale with
    | Some k ->
        tx.store.aborts <- tx.store.aborts + 1;
        Error (`Conflict k)
    | None ->
        let ordered = List.rev tx.order in
        (* journal first: the write set is durable before cells mutate *)
        let entry =
          List.map
            (fun k ->
              match Hashtbl.find tx.writes k with
              | Put v -> (k, Some v)
              | Delete -> (k, None))
            ordered
        in
        tx.store.journal <- entry :: tx.store.journal;
        tx.store.journal_len <- tx.store.journal_len + 1;
        List.iter
          (fun k -> apply tx.store k (Hashtbl.find tx.writes k))
          ordered;
        tx.store.commits <- tx.store.commits + 1;
        Ok ()

  let abort tx =
    check_open tx;
    tx.finished <- true;
    tx.store.aborts <- tx.store.aborts + 1

  let read_set tx = Hashtbl.fold (fun k _ acc -> k :: acc) tx.reads []
  let write_set tx = List.rev tx.order
end

let journal_length t = t.journal_len

let journal_entry t i =
  if i < 0 || i >= t.journal_len then invalid_arg "Store.journal_entry: out of range";
  List.nth t.journal (t.journal_len - 1 - i)

let replay t =
  let fresh = create () in
  List.iter
    (fun entry ->
      let tx = Tx.begin_ fresh in
      List.iter
        (fun (k, v) -> match v with Some v -> Tx.put tx k v | None -> Tx.delete tx k)
        entry;
      match Tx.commit tx with Ok () -> () | Error _ -> assert false)
    (List.rev t.journal);
  fresh
