module Vclock = Weaver_vclock.Vclock

type decision = First_first | Second_first

type node = {
  vc : Vclock.t;
  succs : (string, unit) Hashtbl.t; (* explicit happens-before edges *)
}

type t = {
  events : (string, node) Hashtbl.t;
  edge_sources : (string, unit) Hashtbl.t;
      (* events with ≥1 explicit out-edge: the only useful targets of a
         vclock-implied hop, which keeps reachability searches linear in
         the number of *ordered* events rather than all events *)
  reach_memo : (string, bool) Hashtbl.t; (* positive reachability only *)
  neg_memo : (string, int) Hashtbl.t;
      (* negative reachability, stamped with the generation it was computed
         in: adding an edge (or collapsing the graph in gc) can turn "not
         reachable" into "reachable", so an entry is only trusted while its
         generation matches [gen] — the mirror image of [reach_memo], whose
         positives survive edge additions but not removals *)
  mutable gen : int; (* bumped by every edge add, rollback, and gc *)
  mutable edges : int;
  mutable queries : int;
}

let create () =
  {
    events = Hashtbl.create 256;
    edge_sources = Hashtbl.create 64;
    reach_memo = Hashtbl.create 1024;
    neg_memo = Hashtbl.create 1024;
    gen = 0;
    edges = 0;
    queries = 0;
  }

let add_event t vc =
  let k = Vclock.key vc in
  if not (Hashtbl.mem t.events k) then
    Hashtbl.replace t.events k { vc; succs = Hashtbl.create 4 }

let event_count t = Hashtbl.length t.events
let edge_count t = t.edges
let queries_served t = t.queries

let node_exn t k = Hashtbl.find t.events k

(* Is there a happens-before chain from [a] to [b]? Chains mix explicit
   commitments with vector-clock-implied edges: from a visited node [x] we
   may hop to any registered event [y] with [x ≺ y] by vector clock. The
   search succeeds as soon as it reaches [b] itself or any node that
   vclock-precedes (or equals) [b]. Positive answers are memoised; they stay
   valid because the commitment graph only grows. *)
let reaches t a b =
  let ka = Vclock.key a and kb = Vclock.key b in
  let memo_key = ka ^ "|" ^ kb in
  match Hashtbl.find_opt t.reach_memo memo_key with
  | Some true -> true
  | _ when (match Hashtbl.find_opt t.neg_memo memo_key with
            | Some g -> g = t.gen
            | None -> false) ->
      false
  | _ ->
      let visited = Hashtbl.create 32 in
      let rec dfs k =
        if Hashtbl.mem visited k then false
        else begin
          Hashtbl.replace visited k ();
          match Hashtbl.find_opt t.events k with
          | None -> false
          | Some node ->
              let hits_target =
                String.equal k kb || Vclock.precedes node.vc b
              in
              if hits_target && not (String.equal k ka) then true
              else
                explicit_step node || implied_step node
        end
      and explicit_step node =
        Hashtbl.fold (fun k' () acc -> acc || dfs k') node.succs false
      and implied_step node =
        (* a vclock-implied hop is only useful onto an event that itself
           has explicit commitments: a hop to an edge-free event could only
           reach [b] by pure vclock order, which the target test on this
           node already covers via transitivity of ≺ *)
        Hashtbl.fold
          (fun k' () acc ->
            acc
            ||
            match Hashtbl.find_opt t.events k' with
            | Some n' ->
                (not (String.equal k' (Vclock.key node.vc)))
                && Vclock.precedes node.vc n'.vc
                && dfs k'
            | None -> false)
          t.edge_sources false
      in
      (* seed: target test must not fire on the start node itself *)
      let found =
        match Hashtbl.find_opt t.events ka with
        | None -> false
        | Some node -> explicit_step node || implied_step node
      in
      let found =
        found
        ||
        (* direct vclock order counts as reachability too *)
        match Vclock.compare_hb a b with Vclock.Before -> true | _ -> false
      in
      if found then Hashtbl.replace t.reach_memo memo_key true
      else Hashtbl.replace t.neg_memo memo_key t.gen;
      found

let query t a b =
  t.queries <- t.queries + 1;
  add_event t a;
  add_event t b;
  match Vclock.compare_hb a b with
  | Vclock.Before -> Some First_first
  | Vclock.After -> Some Second_first
  | Vclock.Equal ->
      (* identical epoch and clocks: no causal chain can ever separate the
         two, so commit nothing and break the tie by origin — the same
         tie-break [Vclock.total_compare] uses, so every server resolves
         the pair identically without an explicit edge *)
      if a.Vclock.origin <= b.Vclock.origin then Some First_first
      else Some Second_first
  | Vclock.Concurrent ->
      if reaches t a b then Some First_first
      else if reaches t b a then Some Second_first
      else None

let assign t ~before ~after =
  add_event t before;
  add_event t after;
  match query t before after with
  | Some First_first -> Ok () (* already holds *)
  | Some Second_first -> Error `Cycle
  | None ->
      let kb = Vclock.key before and ka = Vclock.key after in
      let n = node_exn t kb in
      if not (Hashtbl.mem n.succs ka) then begin
        Hashtbl.replace n.succs ka ();
        Hashtbl.replace t.edge_sources kb ();
        t.edges <- t.edges + 1;
        (* a new edge can only create reachability, so cached negatives
           from earlier generations must no longer be trusted *)
        t.gen <- t.gen + 1
      end;
      Ok ()

(* atomic batch: tentatively add, rolling back every new edge on failure *)
let assign_all t pairs =
  let added = ref [] in
  let rollback () =
    List.iter
      (fun (kb, ka) ->
        match Hashtbl.find_opt t.events kb with
        | Some n when Hashtbl.mem n.succs ka ->
            Hashtbl.remove n.succs ka;
            t.edges <- t.edges - 1;
            if Hashtbl.length n.succs = 0 then Hashtbl.remove t.edge_sources kb
        | _ -> ())
      !added;
    (* conservatively drop memoised reachability that may rest on the
       rolled-back edges *)
    Hashtbl.reset t.reach_memo
  in
  let rec go = function
    | [] -> Ok ()
    | (before, after) :: rest -> (
        let kb = Vclock.key before and ka = Vclock.key after in
        let fresh =
          match Hashtbl.find_opt t.events kb with
          | Some n -> not (Hashtbl.mem n.succs ka)
          | None -> true
        in
        match assign t ~before ~after with
        | Ok () ->
            if fresh then added := (kb, ka) :: !added;
            go rest
        | Error `Cycle ->
            rollback ();
            Error `Cycle)
  in
  go pairs

let order t ~first ~second =
  match query t first second with
  | Some d -> d
  | None -> (
      match assign t ~before:first ~after:second with
      | Ok () -> First_first
      | Error `Cycle ->
          (* cannot happen: query found no order, so no reverse path exists *)
          assert false)

(* Total-order a batch of concurrent events. The old implementation forced
   an [order] call — and hence potentially an edge commitment — on every one
   of the n·(n-2)/2 pairs. Committing that much is wasted work: a consistent
   total order only needs the *adjacent* pairs of the final sequence pinned;
   everything else follows by transitivity. So: read the already-decided
   relation (vector clocks + committed chains, no new edges), topologically
   sort with arrival order as the deterministic tie-break, then commit just
   the ≤ n-1 adjacent pairs that are still unordered. *)
let serialize t events =
  let arr = Array.of_list events in
  let n = Array.length arr in
  if n <= 1 then events
  else begin
    let before = Array.make_matrix n n false in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        match query t arr.(i) arr.(j) with
        | Some First_first -> before.(i).(j) <- true
        | Some Second_first -> before.(j).(i) <- true
        | None -> ()
      done
    done;
    (* Kahn's algorithm, always emitting the lowest-index ready event: the
       result extends every decided constraint and falls back to arrival
       order, so it is deterministic given the same batch and oracle state.
       No cycle is possible — [query] answers through the full transitive
       closure of the commitment graph, so any path between two batch
       members (even via events outside the batch) already shows up in
       [before]. *)
    let indeg = Array.make n 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if before.(i).(j) then indeg.(j) <- indeg.(j) + 1
      done
    done;
    let placed = Array.make n false in
    let out = Array.make n 0 in
    for slot = 0 to n - 1 do
      let pick = ref (-1) in
      for i = n - 1 downto 0 do
        if (not placed.(i)) && indeg.(i) = 0 then pick := i
      done;
      assert (!pick >= 0);
      placed.(!pick) <- true;
      out.(slot) <- !pick;
      for j = 0 to n - 1 do
        if before.(!pick).(j) then indeg.(j) <- indeg.(j) - 1
      done
    done;
    (* pin the chain: only adjacent pairs not already decided cost an edge *)
    for slot = 0 to n - 2 do
      let i = out.(slot) and j = out.(slot + 1) in
      if not before.(i).(j) then
        match assign t ~before:arr.(i) ~after:arr.(j) with
        | Ok () -> ()
        | Error `Cycle -> assert false (* contradicts the topo order *)
    done;
    Array.to_list (Array.map (fun i -> arr.(i)) out)
  end

let gc t ~watermark =
  (* membership set, not a list: each surviving node filters its successor
     edges with O(1) probes instead of rescanning the doomed list, taking a
     collection round from O(events × doomed) to O(events + edges) *)
  let doomed = Hashtbl.create 256 in
  Hashtbl.iter
    (fun k node ->
      if Vclock.precedes node.vc watermark then Hashtbl.replace doomed k ())
    t.events;
  Hashtbl.iter
    (fun k () ->
      (match Hashtbl.find_opt t.events k with
      | Some node -> t.edges <- t.edges - Hashtbl.length node.succs
      | None -> ());
      Hashtbl.remove t.events k;
      Hashtbl.remove t.edge_sources k)
    doomed;
  (* drop dangling explicit edges; collect first — a hashtable must not be
     mutated while folding over it *)
  let emptied = ref [] in
  Hashtbl.iter
    (fun src node ->
      let dead =
        Hashtbl.fold
          (fun k () acc -> if Hashtbl.mem doomed k then k :: acc else acc)
          node.succs []
      in
      List.iter
        (fun k ->
          Hashtbl.remove node.succs k;
          t.edges <- t.edges - 1)
        dead;
      if Hashtbl.length node.succs = 0 then emptied := src :: !emptied)
    t.events;
  List.iter (fun src -> Hashtbl.remove t.edge_sources src) !emptied;
  (* edge removal invalidates positives; the graph collapse also shifts what
     the implied-hop search can see, so distrust cached negatives too *)
  Hashtbl.reset t.reach_memo;
  Hashtbl.reset t.neg_memo;
  t.gen <- t.gen + 1;
  Hashtbl.length doomed
