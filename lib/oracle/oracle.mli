(** Timeline oracle — the reactive, fine-grained stage of refinable
    timestamps (paper §3.4), modelled on Kronos (Escriva et al., EuroSys'14).

    The oracle maintains a dependency graph over outstanding transactions,
    entirely separate from the property graph stored by Weaver. Vertices are
    events identified by their vector timestamps; a directed edge is a
    happens-before commitment. The oracle guarantees:

    - {b acyclicity}: an assignment that would create a cycle is refused;
    - {b irrevocability}: once [a ≺ b] is decided, every later query gives
      an answer consistent with it;
    - {b transitivity}: if [a ≺ b] and [b ≺ c] are known, a query on
      [(a, c)] answers [a ≺ c];
    - {b vclock inference}: dependencies implied by the vector clocks
      themselves are honoured — if [a ≺ b] was decided and [b ≼ c] holds by
      vector-clock comparison, then [a ≺ c] (paper §4.1's
      [⟨0,1⟩ ≺ ⟨1,0⟩ ⟹ ⟨0,1⟩ ≺ ⟨2,0⟩] example). *)

type t

type decision = First_first | Second_first
(** Answer to an ordering request on an (a, b) pair. *)

val create : unit -> t

val add_event : t -> Weaver_vclock.Vclock.t -> unit
(** Register an event. Idempotent; ordering requests register their
    arguments implicitly, so calling this is optional. *)

val event_count : t -> int
val edge_count : t -> int

val query : t -> Weaver_vclock.Vclock.t -> Weaver_vclock.Vclock.t -> decision option
(** Pre-established order between two events, if any: by vector clock, by
    explicit commitment, or by any transitive chain mixing the two. [None]
    means the pair is still unordered. Two timestamps with identical epoch
    and clocks ([Vclock.Equal]) can never be separated by a causal chain, so
    they are ordered by origin — the {!Weaver_vclock.Vclock.total_compare}
    tie-break — without committing an edge. *)

val assign : t -> before:Weaver_vclock.Vclock.t -> after:Weaver_vclock.Vclock.t ->
  (unit, [ `Cycle ]) result
(** Commit [before ≺ after]. Refused with [`Cycle] if the opposite order is
    already implied. Idempotent when the order already holds. *)

val assign_all :
  t ->
  (Weaver_vclock.Vclock.t * Weaver_vclock.Vclock.t) list ->
  (unit, [ `Cycle ]) result
(** Atomically commit a set of [(before, after)] happens-before pairs
    (Kronos's "atomically assign a happens-before relationship between
    sets of events"): either every pair is committed or none is — if any
    pair would close a cycle (including cycles created by earlier pairs in
    the same batch), the whole batch is refused and the graph is left
    untouched. *)

val order : t -> first:Weaver_vclock.Vclock.t -> second:Weaver_vclock.Vclock.t -> decision
(** Query-or-establish, the oracle's main entry point (paper §3.4): returns
    the existing order if one exists, otherwise commits the {e arrival}
    preference [first ≺ second] and returns [First_first]. *)

val serialize : t -> Weaver_vclock.Vclock.t list -> Weaver_vclock.Vclock.t list
(** Put a set of (typically mutually concurrent) events into a total order
    consistent with every existing commitment. List position breaks
    remaining ties (arrival order). Only the adjacent pairs of the result
    that are not already decided commit new edges (≤ n-1 of them); every
    other pair is ordered transitively through that chain, so later queries
    on any pair of the batch answer consistently. Used by shard servers on
    concurrent queue heads (paper Fig. 6). *)

val gc : t -> watermark:Weaver_vclock.Vclock.t -> int
(** Drop every event strictly happens-before the watermark (paper §4.5);
    returns how many were removed. Decisions among the survivors are
    preserved. *)

val queries_served : t -> int
(** Ordering requests answered ({!query}, {!order}, and pairwise work done
    by {!serialize}); the reactive-cost metric of Fig. 14. *)
