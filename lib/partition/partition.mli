(** Graph partitioning across shard servers (paper §4.6).

    Weaver places each vertex (with its out-edges) on one shard. The default
    placement is hashed; the streaming partitioners below implement the
    locality-aware schemes the paper cites — LDG (Stanton & Kliot, KDD'12)
    and restreaming refinement (Nishimura & Ugander, KDD'13) — which
    colocate vertices with the majority of their neighbours to cut
    cross-shard traffic during traversals.

    As in the paper's evaluation, the headline benches use hash placement;
    the smarter partitioners are exercised by the partitioning ablation. *)

type assignment = (string, int) Hashtbl.t
(** vertex id → shard index. *)

val hash_vertex : shards:int -> string -> int
(** Stateless hashed placement (FNV-1a over the id). *)

val ldg :
  shards:int ->
  ?slack:float ->
  (string * string list) list ->
  assignment
(** Linear deterministic greedy streaming partitioner. Vertices arrive in
    list order with their neighbour lists; each goes to the shard holding
    most of its already-placed neighbours, weighted by a capacity penalty
    [max 0 (1 - load/capacity)] where capacity is
    [(1 + slack) · |V| / shards] (default slack 0.1). The clamp keeps an
    over-capacity shard at score 0 — unattractive, but never ranked below
    an empty shard holding none of the neighbours. *)

val restream :
  shards:int ->
  rounds:int ->
  ?slack:float ->
  (string * string list) list ->
  assignment
(** Restreaming refinement: run LDG [rounds] times, each pass scoring
    against the {e previous} pass's full assignment rather than only the
    prefix seen so far. [rounds = 1] equals {!ldg}. *)

val edge_cut : assignment -> (string * string list) list -> float
(** Fraction of edges whose endpoints land on different shards, in [0,1]. *)

val balance : assignment -> shards:int -> float
(** Max shard load divided by the ideal (even) load; 1.0 is perfect.
    @raise Invalid_argument if any entry names a shard outside
    [0 .. shards-1] — a corrupt directory must not read as balanced. *)
