type assignment = (string, int) Hashtbl.t

let fnv1a s =
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

let hash_vertex ~shards id =
  assert (shards > 0);
  fnv1a id mod shards

(* One streaming pass. [placed] answers "where is this neighbour?" — for
   plain LDG that is the assignment built so far; for restreaming it falls
   back to the previous round's placement. *)
let stream_pass ~shards ~slack ~prev vertices =
  let n = List.length vertices in
  let capacity = (1.0 +. slack) *. float_of_int n /. float_of_int shards in
  let assign : assignment = Hashtbl.create (max 16 n) in
  let loads = Array.make shards 0 in
  let lookup v =
    match Hashtbl.find_opt assign v with
    | Some s -> Some s
    | None -> ( match prev with Some p -> Hashtbl.find_opt p v | None -> None)
  in
  List.iter
    (fun (vid, nbrs) ->
      let scores = Array.make shards 0.0 in
      List.iter
        (fun nbr ->
          match lookup nbr with
          | Some s -> scores.(s) <- scores.(s) +. 1.0
          | None -> ())
        nbrs;
      let best = ref 0 and best_score = ref neg_infinity in
      for s = 0 to shards - 1 do
        (* clamped at 0: an over-capacity shard is merely unattractive,
           never *repulsive* — a negative penalty would rank a shard
           holding all of a vertex's neighbours below an empty stranger *)
        let penalty = Float.max 0.0 (1.0 -. (float_of_int loads.(s) /. capacity)) in
        let score = scores.(s) *. penalty in
        (* tie-break towards the lighter shard for balance *)
        if
          score > !best_score
          || (score = !best_score && loads.(s) < loads.(!best))
        then begin
          best := s;
          best_score := score
        end
      done;
      Hashtbl.replace assign vid !best;
      loads.(!best) <- loads.(!best) + 1)
    vertices;
  assign

let ldg ~shards ?(slack = 0.1) vertices =
  assert (shards > 0);
  stream_pass ~shards ~slack ~prev:None vertices

let restream ~shards ~rounds ?(slack = 0.1) vertices =
  assert (shards > 0 && rounds >= 1);
  let rec go prev k =
    let a = stream_pass ~shards ~slack ~prev vertices in
    if k <= 1 then a else go (Some a) (k - 1)
  in
  go None rounds

let edge_cut assign vertices =
  let cut = ref 0 and total = ref 0 in
  List.iter
    (fun (vid, nbrs) ->
      match Hashtbl.find_opt assign vid with
      | None -> ()
      | Some s ->
          List.iter
            (fun nbr ->
              match Hashtbl.find_opt assign nbr with
              | Some s' ->
                  incr total;
                  if s <> s' then incr cut
              | None -> ())
            nbrs)
    vertices;
  if !total = 0 then 0.0 else float_of_int !cut /. float_of_int !total

let balance assign ~shards =
  let loads = Array.make shards 0 in
  Hashtbl.iter
    (fun _ s ->
      if s < 0 || s >= shards then
        invalid_arg
          (Printf.sprintf "Partition.balance: shard %d out of range (shards = %d)" s
             shards);
      loads.(s) <- loads.(s) + 1)
    assign;
  let total = Array.fold_left ( + ) 0 loads in
  if total = 0 then 1.0
  else
    let ideal = float_of_int total /. float_of_int shards in
    float_of_int (Array.fold_left max 0 loads) /. ideal
