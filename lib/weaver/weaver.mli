(** Umbrella module for the Weaver reproduction: re-exports every public
    component under one roof and provides {!boot}, the one-liner that
    creates a cluster with the standard node programs registered.

    {[
      let cluster = Weaver.boot Weaver.Config.default in
      let client = Weaver.Cluster.client cluster in
      ...
    ]} *)

module Config = Weaver_core.Config
module Cluster = Weaver_core.Cluster
module Client = Weaver_core.Client
module Progval = Weaver_core.Progval
module Nodeprog = Weaver_core.Nodeprog
module Backup = Weaver_core.Backup
module Rebalance = Weaver_core.Rebalance
module Balancer = Weaver_core.Balancer
module Programs = Weaver_programs.Std_programs
module Graphgen = Weaver_workloads.Graphgen
module Loader = Weaver_workloads.Loader
module Tao = Weaver_workloads.Tao
module Blockchain = Weaver_workloads.Blockchain
module Analytics = Weaver_workloads.Analytics
module Socialnet = Weaver_apps.Socialnet
module Coingraph = Weaver_apps.Coingraph
module Robobrain = Weaver_apps.Robobrain
module Vclock = Weaver_vclock.Vclock
module Oracle = Weaver_oracle.Oracle
module Oracle_chain = Weaver_oracle.Chain
module Store = Weaver_store.Store
module Mgraph = Weaver_graph.Mgraph
module Codec = Weaver_graph.Codec
module Partition = Weaver_partition.Partition
module Engine = Weaver_sim.Engine
module Net = Weaver_sim.Net
module Metrics = Weaver_obs.Metrics
module Trace = Weaver_obs.Trace
module Xrand = Weaver_util.Xrand
module Stats = Weaver_util.Stats

val boot : Config.t -> Cluster.t
(** {!Cluster.create} plus {!Programs.Std.register_all}. *)
