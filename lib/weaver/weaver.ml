(* Umbrella module: one [open Weaver] (or [Weaver.X] access) for the whole
   public API, the entry point downstream users should reach for. *)

(* deployment and client *)
module Config = Weaver_core.Config
module Cluster = Weaver_core.Cluster
module Client = Weaver_core.Client
module Progval = Weaver_core.Progval
module Nodeprog = Weaver_core.Nodeprog
module Backup = Weaver_core.Backup
module Rebalance = Weaver_core.Rebalance
module Balancer = Weaver_core.Balancer
module Replicator = Weaver_core.Replicator

(* standard node programs *)
module Programs = Weaver_programs.Std_programs

(* workloads, loading, analytics *)
module Graphgen = Weaver_workloads.Graphgen
module Loader = Weaver_workloads.Loader
module Tao = Weaver_workloads.Tao
module Blockchain = Weaver_workloads.Blockchain
module Analytics = Weaver_workloads.Analytics

(* applications *)
module Socialnet = Weaver_apps.Socialnet
module Coingraph = Weaver_apps.Coingraph
module Robobrain = Weaver_apps.Robobrain

(* substrates, for advanced use *)
module Vclock = Weaver_vclock.Vclock
module Oracle = Weaver_oracle.Oracle
module Oracle_chain = Weaver_oracle.Chain
module Store = Weaver_store.Store
module Snapshot = Weaver_store.Snapshot
module Mgraph = Weaver_graph.Mgraph
module Codec = Weaver_graph.Codec
module Partition = Weaver_partition.Partition
module Engine = Weaver_sim.Engine
module Net = Weaver_sim.Net
module Flow = Weaver_flow.Flow
module Repl = Weaver_repl.Repl
module Metrics = Weaver_obs.Metrics
module Trace = Weaver_obs.Trace
module Heat = Weaver_obs.Heat
module Health = Weaver_obs.Health
module Xrand = Weaver_util.Xrand
module Stats = Weaver_util.Stats

(** Boot a deployment with the standard programs registered — the
    one-liner most applications want. *)
let boot config =
  let cluster = Cluster.create config in
  Programs.Std.register_all (Cluster.registry cluster);
  cluster
