(** Load-heat attribution: which vertex handles and key ranges are hot,
    per shard — the sensor the elastic-sharding and hot-partition
    replication planners start from.

    Two deterministic, O(1)-per-touch instruments: a Space-Saving top-K
    heavy-hitter sketch per shard (fixed memory; estimates never
    undercount and overcount by at most the recorded error bound), and
    per-key-range exponentially-decayed load accumulators with reads,
    writes, and cross-shard transaction touches tracked separately.
    Ranges are FNV-1a hash buckets of the vertex handle — the same hash
    placement uses. [create] requires [ranges] to be a multiple of the
    shard count, so every range nests inside exactly one home shard for
    unmigrated vertices; migrated load is tracked where it actually lands
    (see {!range_owner}).

    Recording never schedules events, consumes randomness, or sends
    messages: a run with heat enabled is bit-identical to one without
    (test-enforced). *)

(** The Space-Saving sketch on its own, for tests and other consumers. *)
module Sketch : sig
  type t

  val create : k:int -> t
  (** [k] counters of fixed memory. *)

  val capacity : t -> int

  val size : t -> int
  (** Distinct keys currently tracked ([<= k]). *)

  val touch : ?by:int -> t -> string -> unit

  val estimate : t -> string -> (int * int) option
  (** [(estimated count, error bound)] if currently tracked. The true
      count lies in [[estimate - error, estimate]]. *)

  val top : t -> (string * int * int) list
  (** [(key, estimated count, error bound)], hottest first; count ties
      break on the key, so the order is a pure function of the stream. *)
end

type kind = Read | Write | Cross

val kind_name : kind -> string
(** ["reads"], ["writes"], ["cross"] — the instrument-name suffixes. *)

type t

val create : shards:int -> k:int -> ranges:int -> half_life:float -> t
(** [k] sketch counters per shard; [ranges] hash buckets; [half_life] of
    the decayed accumulators in virtual µs.
    @raise Invalid_argument unless [ranges] is a positive multiple of
    [shards] — otherwise {!home_shard} would disagree with hashed
    placement and mis-attribute every range. *)

val shards : t -> int
val ranges : t -> int
val half_life : t -> float
val sketch : t -> shard:int -> Sketch.t

val range_of : t -> string -> int
(** Hash bucket of a vertex handle. *)

val home_shard : t -> int -> int
(** [range mod shards]: the range's owner under pure hashed placement —
    exact for unmigrated vertices, because {!create} enforces
    [ranges mod shards = 0]. *)

val range_owner : t -> range:int -> now:float -> int
(** The shard observed to serve most of the range's recent (decayed)
    read+write load — the live attribution, which follows migrations
    because touches are recorded at the shard that actually served them.
    Falls back to {!home_shard} while the range is cold; ties break toward
    the lower shard index (deterministic). *)

val touch : t -> shard:int -> kind:kind -> now:float -> string -> unit
(** Record one touch of a vertex handle on [shard] at virtual time [now].
    [Read]/[Write] feed the shard's sketch and the range/shard
    accumulators; [Cross] feeds only the accumulators (it re-counts a
    write already recorded at the owning shard). *)

val top : t -> shard:int -> (string * int * int) list
(** The shard's sketch table, hottest first. *)

val totals : t -> shard:int -> int * int * int
(** Cumulative [(reads, writes, cross)] touch counts — what the
    [heat.shardN.*] registry gauges report. *)

val total : t -> shard:int -> kind:kind -> int

val range_load : t -> range:int -> kind:kind -> now:float -> float
(** Decayed load of one range for one kind, as of [now]. *)

val shard_load : t -> shard:int -> now:float -> float
(** Decayed read+write load of one shard, as of [now]. *)

val skew : t -> now:float -> float
(** Max/mean decayed read+write load across shards: 1.0 is balanced,
    [shards] is one shard carrying everything, 0.0 is idle. *)
