(* Cluster health watchdog: a periodic evaluation of derived signals over
   instruments that already exist in the metrics registry — no new probes
   on any hot path. Each check receives the registry snapshot
   ([Metrics.int_values]) plus the cluster's current GC watermark key, and
   compares against its own previous observations:

   - watermark   the watermark key unchanged for N consecutive checks
                 (GC cannot advance: a dead/partitioned gatekeeper, or
                 a wedged oldest-active transaction);
   - queue       total shard queue depth growing monotonically across the
                 trend window (arrival rate has outrun drain rate);
   - shed        queue/deadline sheds as a fraction of requests resolved
                 this window (admission control actively dropping load);
   - credit      credit-starvation sheds as a fraction of requests
                 resolved this window (a shard column drained);
   - skew        max/mean per-shard busy-time delta this window (one
                 shard carrying the cluster);
   - late        late replies as a fraction of commits this window
                 (servers answering after clients gave up).

   Alerts are edge-triggered: one alert when a signal crosses into Warn
   or escalates to Crit, one Info when it recovers — not one per check —
   and land in a bounded ring (slowlog-style) plus per-severity totals
   that surface as registry gauges and in [Cluster.report].

   Evaluation is pure bookkeeping over the passed snapshot: no events,
   no RNG, no messages. With the gate off nothing is even sampled, so
   counter fingerprints are bit-identical to baseline (test-enforced). *)

type severity = Info | Warn | Crit

let severity_name = function Info -> "info" | Warn -> "warn" | Crit -> "crit"
let severity_rank = function Info -> 0 | Warn -> 1 | Crit -> 2

type alert = {
  a_time : float;
  a_severity : severity;
  a_signal : string;
  a_detail : string;
}

type config = {
  stall_checks : int;  (* watermark frozen for N checks -> Warn, 2N -> Crit *)
  queue_trend_checks : int;  (* queue total rising across N checks -> Warn *)
  queue_floor : int;  (* ignore queue trends below this absolute depth *)
  shed_warn : float;  (* shed fraction of window resolutions -> Warn, 2x -> Crit *)
  skew_warn : float;  (* max/mean busy delta -> Warn, 2x -> Crit *)
  late_warn : float;  (* late replies / commits -> Warn *)
  capacity : int;  (* alert ring size *)
}

let default_config =
  {
    stall_checks = 5;
    queue_trend_checks = 4;
    queue_floor = 8;
    shed_warn = 0.05;
    skew_warn = 3.0;
    late_warn = 0.05;
    capacity = 128;
  }

type t = {
  cfg : config;
  ring : alert Queue.t;
  active : (string, severity) Hashtbl.t;  (* currently-firing signals *)
  mutable checks : int;
  mutable n_info : int;
  mutable n_warn : int;
  mutable n_crit : int;
  mutable prev_values : (string, int) Hashtbl.t;
  mutable prev_watermark : string option;
  mutable stall_count : int;
  mutable queue_history : int list;  (* newest first, bounded *)
}

let create ?(config = default_config) () =
  if config.capacity <= 0 then invalid_arg "Health.create: capacity must be positive";
  if config.stall_checks <= 0 then invalid_arg "Health.create: stall_checks must be positive";
  if config.queue_trend_checks <= 0 then
    invalid_arg "Health.create: queue_trend_checks must be positive";
  {
    cfg = config;
    ring = Queue.create ();
    active = Hashtbl.create 8;
    checks = 0;
    n_info = 0;
    n_warn = 0;
    n_crit = 0;
    prev_values = Hashtbl.create 64;
    prev_watermark = None;
    stall_count = 0;
    queue_history = [];
  }

let checks t = t.checks
let alert_counts t = (t.n_info, t.n_warn, t.n_crit)
let alerts t = List.rev (Queue.fold (fun acc a -> a :: acc) [] t.ring)

let push t a =
  (match a.a_severity with
  | Info -> t.n_info <- t.n_info + 1
  | Warn -> t.n_warn <- t.n_warn + 1
  | Crit -> t.n_crit <- t.n_crit + 1);
  Queue.push a t.ring;
  if Queue.length t.ring > t.cfg.capacity then ignore (Queue.pop t.ring)

(* edge-triggering: alert on entering Warn/Crit or escalating; Info once on
   recovery; de-escalation (Crit -> Warn) just lowers the armed level *)
let resolve t ~now ~signal ~desired ~detail =
  let current = Hashtbl.find_opt t.active signal in
  match (current, desired) with
  | None, None -> ()
  | None, Some sev ->
      Hashtbl.replace t.active signal sev;
      push t { a_time = now; a_severity = sev; a_signal = signal; a_detail = detail }
  | Some _, None ->
      Hashtbl.remove t.active signal;
      push t
        { a_time = now; a_severity = Info; a_signal = signal; a_detail = "recovered" }
  | Some cur, Some sev ->
      if severity_rank sev > severity_rank cur then
        push t { a_time = now; a_severity = sev; a_signal = signal; a_detail = detail };
      Hashtbl.replace t.active signal sev

let has_suffix ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

let has_prefix ~prefix s =
  let ls = String.length s and lx = String.length prefix in
  ls >= lx && String.sub s 0 lx = prefix

let observe t ~now ~watermark ~values =
  t.checks <- t.checks + 1;
  let v name = match List.assoc_opt name values with Some x -> x | None -> 0 in
  let prev name =
    match Hashtbl.find_opt t.prev_values name with Some x -> x | None -> 0
  in
  let delta name = v name - prev name in
  (* --- watermark stall ------------------------------------------------ *)
  (match watermark with
  | None -> t.stall_count <- 0 (* no watermark gossip yet: no signal *)
  | Some wm ->
      if t.prev_watermark = Some wm then t.stall_count <- t.stall_count + 1
      else t.stall_count <- 0);
  t.prev_watermark <- watermark;
  let wm_desired =
    if t.stall_count >= 2 * t.cfg.stall_checks then Some Crit
    else if t.stall_count >= t.cfg.stall_checks then Some Warn
    else None
  in
  resolve t ~now ~signal:"watermark" ~desired:wm_desired
    ~detail:(Printf.sprintf "no advance for %d checks" t.stall_count);
  (* --- queue-depth growth trend --------------------------------------- *)
  let queue_total =
    List.fold_left
      (fun acc (name, x) ->
        if has_suffix ~suffix:".queue_depth" name then acc + x else acc)
      0 values
  in
  t.queue_history <-
    (let h = queue_total :: t.queue_history in
     List.filteri (fun i _ -> i <= t.cfg.queue_trend_checks) h);
  let rising =
    List.length t.queue_history > t.cfg.queue_trend_checks
    && (let rec strictly_desc = function
          (* newest first: rising in time = strictly descending here *)
          | a :: (b :: _ as rest) -> a > b && strictly_desc rest
          | _ -> true
        in
        strictly_desc t.queue_history)
  in
  let q_desired =
    if rising && queue_total >= 4 * t.cfg.queue_floor then Some Crit
    else if rising && queue_total >= t.cfg.queue_floor then Some Warn
    else None
  in
  resolve t ~now ~signal:"queue" ~desired:q_desired
    ~detail:
      (Printf.sprintf "depth %d rising for %d checks" queue_total
         t.cfg.queue_trend_checks);
  (* --- shed and credit-starvation rates (flow) ------------------------ *)
  let shed_qd = delta "flow.shed_queue_full" + delta "flow.shed_deadline" in
  let shed_credit = delta "flow.shed_credit" in
  let resolved =
    delta "tx.committed" + delta "tx.aborted" + delta "tx.invalid"
    + delta "prog.completed" + shed_qd + shed_credit
  in
  let fraction n = float_of_int n /. float_of_int (max 1 resolved) in
  let rate_desired frac =
    if frac >= 2.0 *. t.cfg.shed_warn then Some Crit
    else if frac >= t.cfg.shed_warn then Some Warn
    else None
  in
  resolve t ~now ~signal:"shed"
    ~desired:(rate_desired (fraction shed_qd))
    ~detail:(Printf.sprintf "%d of %d requests shed this window" shed_qd resolved);
  resolve t ~now ~signal:"credit"
    ~desired:(rate_desired (fraction shed_credit))
    ~detail:
      (Printf.sprintf "%d of %d requests credit-starved this window" shed_credit
         resolved);
  (* --- per-shard load skew (busy-time deltas this window) ------------- *)
  let busy =
    List.filter_map
      (fun (name, x) ->
        if has_prefix ~prefix:"util.shard" name && has_suffix ~suffix:".busy_us" name
        then Some (x - prev name)
        else None)
      values
  in
  let n_shards = List.length busy in
  let skew_desired, skew_ratio =
    if n_shards < 2 then (None, 0.0)
    else begin
      let sum = List.fold_left ( + ) 0 busy in
      let max_d = List.fold_left max 0 busy in
      let mean = float_of_int sum /. float_of_int n_shards in
      if mean <= 0.0 then (None, 0.0)
      else begin
        let ratio = float_of_int max_d /. mean in
        ( (if ratio >= 2.0 *. t.cfg.skew_warn then Some Crit
           else if ratio >= t.cfg.skew_warn then Some Warn
           else None),
          ratio )
      end
    end
  in
  resolve t ~now ~signal:"skew" ~desired:skew_desired
    ~detail:(Printf.sprintf "max/mean shard load %.2f this window" skew_ratio);
  (* --- late-reply rate ------------------------------------------------ *)
  let late = delta "client.late_replies" in
  let late_frac = float_of_int late /. float_of_int (max 1 (delta "tx.committed")) in
  resolve t ~now ~signal:"late"
    ~desired:
      (if late > 0 && late_frac >= 2.0 *. t.cfg.late_warn then Some Crit
       else if late > 0 && late_frac >= t.cfg.late_warn then Some Warn
       else None)
    ~detail:(Printf.sprintf "%d late replies this window" late);
  (* snapshot for next window's deltas *)
  let next = Hashtbl.create (List.length values) in
  List.iter (fun (name, x) -> Hashtbl.replace next name x) values;
  t.prev_values <- next

let render t =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "health: %d checks, alerts %d info / %d warn / %d crit\n" t.checks
       t.n_info t.n_warn t.n_crit);
  List.iteri
    (fun i a ->
      Buffer.add_string b
        (Printf.sprintf "%2d. @%-10.0f %-5s %-10s %s\n" (i + 1) a.a_time
           (severity_name a.a_severity) a.a_signal a.a_detail))
    (alerts t);
  Buffer.contents b

let to_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "{\"checks\": %d, \"info\": %d, \"warn\": %d, \"crit\": %d, \"alerts\": ["
       t.checks t.n_info t.n_warn t.n_crit);
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"t_us\": %.1f, \"severity\": \"%s\", \"signal\": \"%s\", \"detail\": \"%s\"}"
           a.a_time (severity_name a.a_severity)
           (Metrics.json_escape a.a_signal)
           (Metrics.json_escape a.a_detail)))
    (alerts t);
  Buffer.add_string b "]}";
  Buffer.contents b
