(** Metrics registry: a uniform, named view over every measurement a
    deployment produces (paper §6 reports all of its figures from exactly
    these kinds of series).

    Three instrument kinds:
    - {e counters}: monotonically increasing integers owned by the registry
      ([counter] + [incr]);
    - {e gauges}: read-through thunks over state owned elsewhere — how the
      legacy [Runtime.counters] record fields and network totals surface
      here without rewriting their increment sites;
    - {e reservoirs}: latency/size samples backed by {!Weaver_util.Stats},
      supporting percentiles.

    All instruments live in one flat namespace, conventionally
    ["actor.measure"] (e.g. ["gk.admission_wait"], ["shard.queue_wait"]).
    Recording never schedules events or sends messages, so instrumented and
    uninstrumented runs execute identically. *)

type t

type counter

val create : unit -> t

val counter : t -> string -> counter
(** Find-or-create the named counter. *)

val incr : ?by:int -> counter -> unit

val counter_value : counter -> int

val gauge : t -> string -> (unit -> int) -> unit
(** Register a read-through gauge. Replaces a previous {e gauge} of the
    same name (actor respawn after a fault re-registers over the dead
    incarnation's); raises [Invalid_argument] if the name is already a
    counter or reservoir — silent cross-kind shadowing would corrupt
    every fingerprint that reads the instrument. *)

val reservoir : t -> string -> Weaver_util.Stats.t
(** Find-or-create the named sample reservoir. *)

val observe : t -> string -> float -> unit
(** [observe t name v] adds one sample to reservoir [name]. *)

val int_values : t -> (string * int) list
(** Current value of every counter and gauge, sorted by name. *)

val reservoirs : t -> (string * Weaver_util.Stats.t) list
(** Every non-empty reservoir, sorted by name. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal (quotes,
    backslashes, control characters) — shared by every hand-rolled JSON
    emitter in the observability layer. *)

val render : t -> string
(** Human-readable table: counters/gauges first, then reservoirs with
    n/mean/p50/p99/max. *)

val to_json : t -> string
(** The same data as one JSON object:
    [{"counters": {...}, "reservoirs": {name: {n, mean, p50, p90, p99, max}}}]. *)
