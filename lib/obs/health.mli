(** Cluster health watchdog: periodic evaluation of derived signals over
    instruments that already exist in the metrics registry — watermark
    stall, queue-depth growth trend, shed and credit-starvation rates,
    per-shard load skew, late-reply rate — emitting edge-triggered,
    severity-tagged alerts into a bounded ring.

    The watchdog holds no timer of its own: the cluster calls
    {!observe} from a periodic engine event (gated by
    [Config.enable_health]) with the current registry snapshot and
    watermark key. Evaluation reads only the passed snapshot — no
    events, no RNG, no messages — so enabling it never perturbs the
    counters determinism tests fingerprint. *)

type severity = Info | Warn | Crit

val severity_name : severity -> string
(** ["info"], ["warn"], ["crit"]. *)

type alert = {
  a_time : float;  (** virtual time of the check that fired it (µs) *)
  a_severity : severity;
  a_signal : string;  (** ["watermark"], ["queue"], ["shed"], ["credit"], ["skew"], ["late"] *)
  a_detail : string;
}

type config = {
  stall_checks : int;
      (** watermark key unchanged for this many consecutive checks
          escalates to Warn; twice as many to Crit *)
  queue_trend_checks : int;
      (** total queue depth strictly rising across this many checks
          (and above [queue_floor]) escalates to Warn; 4x the floor to
          Crit *)
  queue_floor : int;  (** ignore queue trends below this absolute depth *)
  shed_warn : float;
      (** shed (and, separately, credit-starved) fraction of requests
          resolved this window that escalates to Warn; 2x to Crit *)
  skew_warn : float;
      (** max/mean per-shard busy-time delta that escalates to Warn;
          2x to Crit *)
  late_warn : float;
      (** late replies as a fraction of window commits that escalates
          to Warn; 2x to Crit *)
  capacity : int;  (** alert ring size; oldest alerts fall off *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t

val observe :
  t -> now:float -> watermark:string option -> values:(string * int) list -> unit
(** Run one check at virtual time [now]. [watermark] is the cluster's
    minimum GC watermark rendered as a comparable key ([None] before any
    gossip — treated as "no data", never as a stall). [values] is the
    full registry snapshot ([Metrics.int_values]): gauges are read by
    name ([*.queue_depth], [util.shardN.busy_us]) and counters by
    window-over-window delta. *)

val checks : t -> int
(** Checks run so far. *)

val alerts : t -> alert list
(** Ring contents, oldest first. *)

val alert_counts : t -> int * int * int
(** Cumulative [(info, warn, crit)] alert counts — includes alerts that
    have fallen off the ring. *)

val render : t -> string
(** Human-readable summary + alert log. *)

val to_json : t -> string
(** Canonical JSON: checks, severity counts, and the alert ring. *)
