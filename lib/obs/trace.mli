(** Causal request tracing in virtual time.

    Every client-originated request (transaction, node program, migration)
    carries a trace id — its globally unique request id — through the
    message envelopes it spawns. Instrumented actors record {e spans}
    (named intervals of virtual time: gatekeeper admission wait, store
    round trips, shard queue wait, program execution) against that id, and
    a network tracer records each {e message} sent on its behalf. Together
    they reconstruct the request's life as a span tree plus a message
    ledger — the per-request latency breakdown and message counts that the
    paper's Figs. 9–13 aggregate.

    The collector retains the most recent [capacity] traces (older ones are
    evicted whole). It never schedules events: tracing cannot perturb the
    simulation. *)

type span = {
  sp_trace : int;
  sp_name : string;  (** e.g. ["gk.admission"], ["store.round_trip"] *)
  sp_actor : string;  (** e.g. ["gk0"], ["shard2"] *)
  sp_start : float;  (** virtual µs *)
  mutable sp_stop : float;  (** virtual µs; [nan] while still open *)
  mutable sp_meta : (string * string) list;
}

type t

val create : capacity:int -> t
(** Retain at most [capacity] traces. Raises [Invalid_argument] if
    [capacity <= 0]. *)

val span :
  t ->
  trace:int ->
  name:string ->
  actor:string ->
  start:float ->
  stop:float ->
  ?meta:(string * string) list ->
  unit ->
  unit
(** Record a completed span. Spans with [trace = 0] are discarded (0 marks
    untraced internal traffic such as NOPs). *)

val begin_span : t -> trace:int -> name:string -> actor:string -> start:float -> span
(** Open a span; complete it with {!finish}. The span is already attached
    to the trace, so a crash leaves it visible with [sp_stop = nan]. *)

val finish : span -> stop:float -> unit
val add_meta : span -> string -> string -> unit

val message : t -> trace:int -> time:float -> src:int -> dst:int -> kind:string -> unit
(** Record one network message attributed to [trace]. *)

val spans : t -> int -> span list
(** All spans of a trace, sorted by start time (ties: wider span first). *)

val messages : t -> int -> (float * int * int * string) list
(** [(time, src, dst, kind)] message events of a trace, oldest first. *)

val message_count : t -> int -> int

val trace_ids : t -> int list
(** Retained trace ids, oldest first. *)

(** {1 Span-tree assembly}

    Spans nest by interval containment: a span's parent is the innermost
    other span that fully contains it. Actors on different servers overlap
    rather than nest, so a typical transaction yields a forest such as
    [gk.admission; gk.tx [store.round_trip; store.round_trip];
    shard.queue ...]. *)

type tree = { node : span; children : tree list }

val assemble : t -> int -> tree list
(** The span forest of a trace, roots sorted by start time. *)

val render : t -> int -> string
(** Indented text rendering of the span forest plus the message ledger. *)

val to_json : t -> int -> string
(** [{"trace": id, "spans": [...], "messages": [...]}] with nested
    children mirroring {!assemble}. *)
