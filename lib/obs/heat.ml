(* Load-heat attribution: which vertices and key ranges are hot, per shard.

   Two instruments, both deterministic and O(1) per touch:

   - a Space-Saving top-K heavy-hitter sketch per shard (Metwally et al.,
     "Efficient computation of frequent and top-k elements in data
     streams"): K counters in fixed memory; a touch of a tracked key
     increments its counter, a touch of an untracked key evicts the
     current minimum and inherits its count as the new key's error bound.
     Estimated counts never undercount (estimate >= true count) and
     overcount by at most the recorded error, so ranking by estimate
     recovers the true hottest keys under skew. Ties on eviction and in
     [top] ordering break on the key string, never on hash-table order,
     so two runs that issue the same touches report the same table.

   - per-key-range exponentially-decayed load accumulators, with reads,
     writes, and cross-shard transaction touches tracked separately (the
     three signals a split/merge or replication planner needs). A range is
     an FNV-1a hash bucket of the vertex handle — the same hash
     [Partition.hash_vertex] uses for placement, so when [ranges] is a
     multiple of the shard count every range nests inside one home shard
     ([range mod shards]) for unmigrated vertices. Decay is computed
     lazily from the timestamp of the last touch (half-life in virtual
     µs), so idle ranges cost nothing.

   Recording is pure bookkeeping: no events scheduled, no RNG, no
   messages — a run with heat enabled is bit-identical to one without
   (pinned by the counter-invisibility test in test/test_heat.ml). *)

module Sketch = struct
  type t = {
    k : int;
    slots : (string, int) Hashtbl.t;  (* tracked key -> slot index *)
    mutable size : int;
    keys : string array;
    counts : int array;
    errs : int array;
  }

  let create ~k =
    if k <= 0 then invalid_arg "Heat.Sketch.create: k must be positive";
    {
      k;
      slots = Hashtbl.create (4 * k);
      size = 0;
      keys = Array.make k "";
      counts = Array.make k 0;
      errs = Array.make k 0;
    }

  let capacity t = t.k
  let size t = t.size

  let touch ?(by = 1) t key =
    match Hashtbl.find_opt t.slots key with
    | Some i -> t.counts.(i) <- t.counts.(i) + by
    | None ->
        if t.size < t.k then begin
          let i = t.size in
          t.size <- t.size + 1;
          t.keys.(i) <- key;
          t.counts.(i) <- by;
          t.errs.(i) <- 0;
          Hashtbl.replace t.slots key i
        end
        else begin
          (* evict the minimum count; ties break towards the
             lexicographically larger key so the victim never depends on
             slot order *)
          let m = ref 0 in
          for i = 1 to t.k - 1 do
            if
              t.counts.(i) < t.counts.(!m)
              || (t.counts.(i) = t.counts.(!m)
                 && String.compare t.keys.(i) t.keys.(!m) > 0)
            then m := i
          done;
          let i = !m in
          Hashtbl.remove t.slots t.keys.(i);
          Hashtbl.replace t.slots key i;
          t.errs.(i) <- t.counts.(i);
          t.counts.(i) <- t.counts.(i) + by;
          t.keys.(i) <- key
        end

  let estimate t key =
    match Hashtbl.find_opt t.slots key with
    | Some i -> Some (t.counts.(i), t.errs.(i))
    | None -> None

  (* (key, estimated count, error bound), hottest first; count ties break
     on the key so the order is a pure function of the touch stream *)
  let top t =
    List.init t.size (fun i -> (t.keys.(i), t.counts.(i), t.errs.(i)))
    |> List.sort (fun (ka, ca, _) (kb, cb, _) ->
           if ca <> cb then compare cb ca else String.compare ka kb)
end

type kind = Read | Write | Cross

let kind_name = function Read -> "reads" | Write -> "writes" | Cross -> "cross"

(* an exponentially-decayed accumulator; the stored value is exact as of
   [c_at] and decays analytically when read *)
type cell = { mutable c_v : float; mutable c_at : float }

type t = {
  n_shards : int;
  n_ranges : int;
  half_life : float;
  sketches : Sketch.t array;  (* per shard: read+write vertex touches *)
  range_cells : cell array array;  (* [kind].[range] *)
  shard_cells : cell array array;  (* [kind].[shard] *)
  owner_cells : cell array array;  (* [shard].[range]: decayed r+w observed there *)
  totals : int array array;  (* [kind].[shard], cumulative (registry gauges) *)
}

let kind_index = function Read -> 0 | Write -> 1 | Cross -> 2

let create ~shards ~k ~ranges ~half_life =
  if shards <= 0 then invalid_arg "Heat.create: shards must be positive";
  if ranges <= 0 then invalid_arg "Heat.create: ranges must be positive";
  (* without nesting, [home_shard] (range mod shards) disagrees with the
     FNV-1a hashed placement and every range-heat row is mis-attributed *)
  if ranges mod shards <> 0 then
    invalid_arg "Heat.create: ranges must be a multiple of shards";
  if half_life <= 0.0 then invalid_arg "Heat.create: half_life must be positive";
  let cells n = Array.init 3 (fun _ -> Array.init n (fun _ -> { c_v = 0.0; c_at = 0.0 })) in
  {
    n_shards = shards;
    n_ranges = ranges;
    half_life;
    sketches = Array.init shards (fun _ -> Sketch.create ~k);
    range_cells = cells ranges;
    shard_cells = cells shards;
    owner_cells =
      Array.init shards (fun _ ->
          Array.init ranges (fun _ -> { c_v = 0.0; c_at = 0.0 }));
    totals = Array.make_matrix 3 shards 0;
  }

let shards t = t.n_shards
let ranges t = t.n_ranges
let half_life t = t.half_life
let sketch t ~shard = t.sketches.(shard)

(* FNV-1a, identical to [Weaver_partition.Partition.hash_vertex]'s hash
   (duplicated to keep the obs layer dependency-free) *)
let fnv1a s =
  let h = ref 0x3bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

let range_of t vid = fnv1a vid mod t.n_ranges

(* the home shard of a range under pure hashed placement — exact because
   [create] enforces [ranges mod shards = 0], so
   [(h mod ranges) mod shards = h mod shards] *)
let home_shard t range = range mod t.n_shards

let decayed t c ~now =
  if now <= c.c_at then c.c_v else c.c_v *. (0.5 ** ((now -. c.c_at) /. t.half_life))

let bump t c ~now =
  c.c_v <- decayed t c ~now +. 1.0;
  c.c_at <- now

let touch t ~shard ~kind ~now vid =
  let ki = kind_index kind in
  let range = range_of t vid in
  t.totals.(ki).(shard) <- t.totals.(ki).(shard) + 1;
  (match kind with
  | Read | Write ->
      Sketch.touch t.sketches.(shard) vid;
      (* read/write touches arrive tagged with the shard that actually
         served them (routed via the live directory), so this per-
         (shard, range) cell tracks where a range's load REALLY lands —
         after migrations, not just under hashed placement *)
      bump t t.owner_cells.(shard).(range) ~now
  | Cross -> ());
  bump t t.range_cells.(ki).(range) ~now;
  bump t t.shard_cells.(ki).(shard) ~now

let top t ~shard = Sketch.top t.sketches.(shard)

let totals t ~shard = (t.totals.(0).(shard), t.totals.(1).(shard), t.totals.(2).(shard))

let total t ~shard ~kind = t.totals.(kind_index kind).(shard)

let range_load t ~range ~kind ~now = decayed t t.range_cells.(kind_index kind).(range) ~now

(* the shard observed to serve most of a range's recent read+write load;
   falls back to the hashed home while the range is cold. Ties break
   toward the lower shard index so the answer is a pure function of the
   touch stream. *)
let range_owner t ~range ~now =
  let best = ref (-1) and best_l = ref 0.0 in
  for s = 0 to t.n_shards - 1 do
    let l = decayed t t.owner_cells.(s).(range) ~now in
    if l > !best_l then begin
      best := s;
      best_l := l
    end
  done;
  if !best < 0 then home_shard t range else !best

let shard_load t ~shard ~now =
  decayed t t.shard_cells.(0).(shard) ~now +. decayed t t.shard_cells.(1).(shard) ~now

(* max/mean decayed read+write load across shards; 1.0 is perfectly
   balanced, [n_shards] is one shard carrying everything, 0.0 means idle *)
let skew t ~now =
  let max_l = ref 0.0 and sum = ref 0.0 in
  for s = 0 to t.n_shards - 1 do
    let l = shard_load t ~shard:s ~now in
    if l > !max_l then max_l := l;
    sum := !sum +. l
  done;
  let mean = !sum /. float_of_int t.n_shards in
  if mean <= 0.0 then 0.0 else !max_l /. mean
