(** Offline-analysis serializers for the observability layer.

    {!chrome_trace} turns span trees and message ledgers into Chrome
    trace-event JSON loadable in Perfetto or [chrome://tracing]: one pid
    per actor, spans as ["X"] complete events (tid = trace id), and each
    network message as an ["s"]/["f"] flow-event pair so the UI draws
    message arrows between actors. {!timeline_csv}/{!timeline_json}
    flatten a {!Timeline} for spreadsheets and plotting scripts. *)

val chrome_trace :
  Trace.t -> traces:int list -> ?actor_of_addr:(int -> string) -> unit -> string
(** Export the given trace ids as one Chrome trace-event document.
    [actor_of_addr] names the process of each message endpoint (defaults
    to ["addr<N>"]); span processes use the span's recorded actor. *)

val timeline_csv : Timeline.t -> string
(** [time_us,<instrument>,...] header plus one row per sample; cells are
    empty where a sample lacks the instrument. *)

val timeline_json : Timeline.t -> string
(** [{"times_us": [...], "series": {name: [...]}}] — columnar, [null]
    where a sample lacks the instrument. *)
