(** Offline-analysis serializers for the observability layer.

    {!chrome_trace} turns span trees and message ledgers into Chrome
    trace-event JSON loadable in Perfetto or [chrome://tracing]: one pid
    per actor, spans as ["X"] complete events (tid = trace id), and each
    network message as an ["s"]/["f"] flow-event pair so the UI draws
    message arrows between actors. {!timeline_csv}/{!timeline_json}
    flatten a {!Timeline} for spreadsheets and plotting scripts. *)

val chrome_trace :
  Trace.t -> traces:int list -> ?actor_of_addr:(int -> string) -> unit -> string
(** Export the given trace ids as one Chrome trace-event document.
    [actor_of_addr] names the process of each message endpoint (defaults
    to ["addr<N>"]); span processes use the span's recorded actor. *)

val csv_cell : string -> string
(** RFC 4180 quoting: wraps the cell in double quotes (doubling embedded
    quotes) iff it contains a comma, quote, or newline; benign dotted
    instrument names pass through unchanged. *)

val timeline_csv : Timeline.t -> string
(** [time_us,<instrument>,...] header plus one row per sample; cells are
    empty where a sample lacks the instrument. Header names are
    {!csv_cell}-quoted (heat instruments can embed vertex handles). *)

val counter_tracks : Timeline.t -> names:string list -> string
(** The selected timeline series as a Chrome trace-event document of
    ["C"] (counter) events — Perfetto renders each name as a stepped
    value-over-time track. Unknown names are ignored. *)

val heat_json : Heat.t -> now:float -> string
(** One heat snapshot as of virtual time [now]: per-shard cumulative
    read/write/cross totals + decayed load + top-K table, per-range
    decayed read/write/cross heat with both the hashed home and the
    observed owner ({!Heat.range_owner} — follows migrations), and the
    cluster skew ratio. *)

val heat_csv : Heat.t -> now:float -> string
(** The per-range heat map as
    [range,home_shard,owner_shard,reads,writes,cross] rows, decayed as of
    [now]; [owner_shard] is the observed (migration-aware) attribution. *)

val timeline_json : Timeline.t -> string
(** [{"times_us": [...], "series": {name: [...]}}] — columnar, [null]
    where a sample lacks the instrument. *)
