(* Top-K slowest requests, for post-hoc triage without trawling the whole
   trace collector. Entries arrive from the client layer when a reply (or
   timeout) resolves a request; the log keeps them sorted by duration and
   drops the fastest once full. Recording never schedules events. *)

type entry = {
  e_trace : int;
  e_kind : string;  (* "tx" | "prog" | "migrate" *)
  e_start : float;
  e_stop : float;
  e_result : string;  (* "ok" or the error string *)
  e_phases : (string * float) list;  (* span name -> summed duration, µs *)
}

type t = {
  capacity : int;
  mutable entries : entry list;  (* slowest first, length <= capacity *)
  mutable recorded : int;
}

let duration e = e.e_stop -. e.e_start

let create ~capacity =
  if capacity <= 0 then invalid_arg "Slowlog.create: capacity must be positive";
  { capacity; entries = []; recorded = 0 }

let rec insert e = function
  | [] -> [ e ]
  | e' :: _ as rest when duration e >= duration e' -> e :: rest
  | e' :: rest -> e' :: insert e rest

let record t e =
  t.recorded <- t.recorded + 1;
  let merged = insert e t.entries in
  t.entries <-
    (if List.length merged > t.capacity then List.filteri (fun i _ -> i < t.capacity) merged
     else merged)

let entries t = t.entries
let recorded t = t.recorded

(* the duration a new request must exceed to enter a full log *)
let threshold t =
  if List.length t.entries < t.capacity then 0.0
  else match List.rev t.entries with e :: _ -> duration e | [] -> 0.0

let render t =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "slow-request log: %d retained of %d recorded\n"
       (List.length t.entries) t.recorded);
  List.iteri
    (fun i e ->
      Buffer.add_string b
        (Printf.sprintf "%2d. trace %-12d %-8s %9.1f us  @%.0f  [%s]\n" (i + 1)
           e.e_trace e.e_kind (duration e) e.e_start e.e_result);
      List.iter
        (fun (name, d) ->
          Buffer.add_string b (Printf.sprintf "      %-22s %9.1f us\n" name d))
        e.e_phases)
    t.entries;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "{\"recorded\": %d, \"entries\": [" t.recorded);
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"trace\": %d, \"kind\": \"%s\", \"start_us\": %.1f, \"duration_us\": %.1f, \
            \"result\": \"%s\", \"phases\": {"
           e.e_trace (json_escape e.e_kind) e.e_start (duration e)
           (json_escape e.e_result));
      List.iteri
        (fun j (name, d) ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b (Printf.sprintf "\"%s\": %.1f" (json_escape name) d))
        e.e_phases;
      Buffer.add_string b "}}")
    t.entries;
  Buffer.add_string b "]}";
  Buffer.contents b
