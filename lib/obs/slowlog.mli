(** Slow-request log: the top-K slowest client requests with per-phase
    latency breakdowns, for post-hoc triage ("where did the p99 go?")
    without holding every trace.

    The client layer records an entry when a reply or timeout resolves a
    request. When tracing is enabled the entry carries the request's
    per-phase durations (summed per span name); without tracing the phases
    are empty but durations are still ranked. Recording never schedules
    events, so the log cannot perturb the simulation. *)

type entry = {
  e_trace : int;  (** request/trace id *)
  e_kind : string;  (** ["tx"], ["prog"], or ["migrate"] *)
  e_start : float;  (** virtual µs the request was issued *)
  e_stop : float;  (** virtual µs the reply (or timeout) arrived *)
  e_result : string;  (** ["ok"] or the error string *)
  e_phases : (string * float) list;
      (** span name → total duration in µs, descending *)
}

type t

val duration : entry -> float

val create : capacity:int -> t
(** Keep the [capacity] slowest entries. Raises [Invalid_argument] if
    [capacity <= 0]. *)

val record : t -> entry -> unit

val entries : t -> entry list
(** Retained entries, slowest first. *)

val recorded : t -> int
(** Total entries ever offered (including ones since displaced). *)

val threshold : t -> float
(** Duration a request must exceed to enter the log (0 while not full). *)

val render : t -> string
(** Human-readable ranking with per-phase breakdowns. *)

val to_json : t -> string
(** [{"recorded": n, "entries": [{trace, kind, start_us, duration_us,
    result, phases: {...}}]}]. *)
