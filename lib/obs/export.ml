(* Serializers for offline analysis: span trees + message ledgers as
   Chrome trace-event JSON (loadable in Perfetto / chrome://tracing), and
   timelines as CSV or JSON.

   Chrome trace-event mapping:
   - one pid per actor ("gk0", "shard2", "store", ...), named with an "M"
     process_name metadata event;
   - every span is an "X" (complete) event: ts = virtual start µs,
     dur = span length, tid = the request's trace id, args = span meta;
   - every ledger message is a flow-event pair: "s" (start) at the sender,
     "f" (finish) at the receiver, sharing one flow id, so Perfetto draws
     an arrow per network message. *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let chrome_trace tr ~traces ?(actor_of_addr = fun a -> "addr" ^ string_of_int a) () =
  let spans = List.concat_map (fun id -> Trace.spans tr id) traces in
  let messages =
    List.concat_map
      (fun id -> List.map (fun m -> (id, m)) (Trace.messages tr id))
      traces
  in
  (* stable pid plan: every actor that appears, sorted by name *)
  let actor_tbl = Hashtbl.create 16 in
  List.iter (fun sp -> Hashtbl.replace actor_tbl sp.Trace.sp_actor ()) spans;
  List.iter
    (fun (_, (_, src, dst, _)) ->
      Hashtbl.replace actor_tbl (actor_of_addr src) ();
      Hashtbl.replace actor_tbl (actor_of_addr dst) ())
    messages;
  let actors =
    List.sort String.compare (Hashtbl.fold (fun a () acc -> a :: acc) actor_tbl [])
  in
  let pids = Hashtbl.create 16 in
  List.iteri (fun i a -> Hashtbl.replace pids a (i + 1)) actors;
  let pid a = try Hashtbl.find pids a with Not_found -> 0 in
  let b = Buffer.create 4096 in
  let first = ref true in
  let event s =
    if !first then first := false else Buffer.add_string b ",\n  ";
    Buffer.add_string b s
  in
  Buffer.add_string b "{\"traceEvents\": [\n  ";
  List.iter
    (fun a ->
      event
        (Printf.sprintf
           "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": %d, \"args\": {\"name\": \"%s\"}}"
           (pid a) (json_escape a)))
    actors;
  List.iter
    (fun sp ->
      let stop = sp.Trace.sp_stop in
      let dur =
        if Float.is_nan stop then 0.0 else Float.max 0.0 (stop -. sp.Trace.sp_start)
      in
      let args =
        String.concat ", "
          (List.map
             (fun (k, v) ->
               Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v))
             (("trace", string_of_int sp.Trace.sp_trace) :: sp.Trace.sp_meta))
      in
      event
        (Printf.sprintf
           "{\"ph\": \"X\", \"name\": \"%s\", \"cat\": \"span\", \"pid\": %d, \"tid\": %d, \
            \"ts\": %.3f, \"dur\": %.3f, \"args\": {%s}}"
           (json_escape sp.Trace.sp_name)
           (pid sp.Trace.sp_actor) sp.Trace.sp_trace sp.Trace.sp_start dur args))
    spans;
  List.iteri
    (fun flow_id (trace, (time, src, dst, kind)) ->
      let common =
        Printf.sprintf
          "\"name\": \"%s\", \"cat\": \"msg\", \"id\": %d, \"tid\": %d, \"ts\": %.3f"
          (json_escape kind) (flow_id + 1) trace time
      in
      event
        (Printf.sprintf "{\"ph\": \"s\", %s, \"pid\": %d}" common
           (pid (actor_of_addr src)));
      (* the ledger records send time only; stamping the finish at the same
         instant still draws the src→dst arrow *)
      event
        (Printf.sprintf "{\"ph\": \"f\", \"bp\": \"e\", %s, \"pid\": %d}" common
           (pid (actor_of_addr dst))))
    messages;
  Buffer.add_string b "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents b

let timeline_csv tl =
  let names = Timeline.names tl in
  let b = Buffer.create 4096 in
  Buffer.add_string b (String.concat "," ("time_us" :: names));
  Buffer.add_char b '\n';
  List.iter
    (fun s ->
      Buffer.add_string b (Printf.sprintf "%.1f" s.Timeline.s_time);
      List.iter
        (fun name ->
          Buffer.add_char b ',';
          match
            Array.find_opt (fun (k, _) -> String.equal k name) s.Timeline.s_values
          with
          | Some (_, v) -> Buffer.add_string b (string_of_int v)
          | None -> ())
        names;
      Buffer.add_char b '\n')
    (Timeline.samples tl);
  Buffer.contents b

let timeline_json tl =
  let names = Timeline.names tl in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"times_us\": [";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "%.1f" s.Timeline.s_time))
    (Timeline.samples tl);
  Buffer.add_string b "], \"series\": {";
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": [" (json_escape name));
      List.iteri
        (fun j s ->
          if j > 0 then Buffer.add_string b ", ";
          match
            Array.find_opt (fun (k, _) -> String.equal k name) s.Timeline.s_values
          with
          | Some (_, v) -> Buffer.add_string b (string_of_int v)
          | None -> Buffer.add_string b "null")
        (Timeline.samples tl);
      Buffer.add_string b "]")
    names;
  Buffer.add_string b "}}\n";
  Buffer.contents b
