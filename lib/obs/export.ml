(* Serializers for offline analysis: span trees + message ledgers as
   Chrome trace-event JSON (loadable in Perfetto / chrome://tracing), and
   timelines as CSV or JSON.

   Chrome trace-event mapping:
   - one pid per actor ("gk0", "shard2", "store", ...), named with an "M"
     process_name metadata event;
   - every span is an "X" (complete) event: ts = virtual start µs,
     dur = span length, tid = the request's trace id, args = span meta;
   - every ledger message is a flow-event pair: "s" (start) at the sender,
     "f" (finish) at the receiver, sharing one flow id, so Perfetto draws
     an arrow per network message. *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let chrome_trace tr ~traces ?(actor_of_addr = fun a -> "addr" ^ string_of_int a) () =
  let spans = List.concat_map (fun id -> Trace.spans tr id) traces in
  let messages =
    List.concat_map
      (fun id -> List.map (fun m -> (id, m)) (Trace.messages tr id))
      traces
  in
  (* stable pid plan: every actor that appears, sorted by name *)
  let actor_tbl = Hashtbl.create 16 in
  List.iter (fun sp -> Hashtbl.replace actor_tbl sp.Trace.sp_actor ()) spans;
  List.iter
    (fun (_, (_, src, dst, _)) ->
      Hashtbl.replace actor_tbl (actor_of_addr src) ();
      Hashtbl.replace actor_tbl (actor_of_addr dst) ())
    messages;
  let actors =
    List.sort String.compare (Hashtbl.fold (fun a () acc -> a :: acc) actor_tbl [])
  in
  let pids = Hashtbl.create 16 in
  List.iteri (fun i a -> Hashtbl.replace pids a (i + 1)) actors;
  let pid a = try Hashtbl.find pids a with Not_found -> 0 in
  let b = Buffer.create 4096 in
  let first = ref true in
  let event s =
    if !first then first := false else Buffer.add_string b ",\n  ";
    Buffer.add_string b s
  in
  Buffer.add_string b "{\"traceEvents\": [\n  ";
  List.iter
    (fun a ->
      event
        (Printf.sprintf
           "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": %d, \"args\": {\"name\": \"%s\"}}"
           (pid a) (json_escape a)))
    actors;
  List.iter
    (fun sp ->
      let stop = sp.Trace.sp_stop in
      let dur =
        if Float.is_nan stop then 0.0 else Float.max 0.0 (stop -. sp.Trace.sp_start)
      in
      let args =
        String.concat ", "
          (List.map
             (fun (k, v) ->
               Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v))
             (("trace", string_of_int sp.Trace.sp_trace) :: sp.Trace.sp_meta))
      in
      event
        (Printf.sprintf
           "{\"ph\": \"X\", \"name\": \"%s\", \"cat\": \"span\", \"pid\": %d, \"tid\": %d, \
            \"ts\": %.3f, \"dur\": %.3f, \"args\": {%s}}"
           (json_escape sp.Trace.sp_name)
           (pid sp.Trace.sp_actor) sp.Trace.sp_trace sp.Trace.sp_start dur args))
    spans;
  List.iteri
    (fun flow_id (trace, (time, src, dst, kind)) ->
      let common =
        Printf.sprintf
          "\"name\": \"%s\", \"cat\": \"msg\", \"id\": %d, \"tid\": %d, \"ts\": %.3f"
          (json_escape kind) (flow_id + 1) trace time
      in
      event
        (Printf.sprintf "{\"ph\": \"s\", %s, \"pid\": %d}" common
           (pid (actor_of_addr src)));
      (* the ledger records send time only; stamping the finish at the same
         instant still draws the src→dst arrow *)
      event
        (Printf.sprintf "{\"ph\": \"f\", \"bp\": \"e\", %s, \"pid\": %d}" common
           (pid (actor_of_addr dst))))
    messages;
  Buffer.add_string b "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents b

(* RFC 4180 quoting: instrument names are normally dotted identifiers, but
   heat introduces names derived from vertex handles, which may embed
   commas, quotes or newlines *)
let csv_cell s =
  let hostile = function ',' | '"' | '\n' | '\r' -> true | _ -> false in
  if String.exists hostile s then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let timeline_csv tl =
  let names = Timeline.names tl in
  let b = Buffer.create 4096 in
  Buffer.add_string b (String.concat "," ("time_us" :: List.map csv_cell names));
  Buffer.add_char b '\n';
  List.iter
    (fun s ->
      Buffer.add_string b (Printf.sprintf "%.1f" s.Timeline.s_time);
      List.iter
        (fun name ->
          Buffer.add_char b ',';
          match
            Array.find_opt (fun (k, _) -> String.equal k name) s.Timeline.s_values
          with
          | Some (_, v) -> Buffer.add_string b (string_of_int v)
          | None -> ())
        names;
      Buffer.add_char b '\n')
    (Timeline.samples tl);
  Buffer.contents b

(* Perfetto counter tracks: one "C" event per (sample, instrument) pair,
   so the UI draws each instrument as a stepped value-over-time track.
   Works on any timeline series; pass heat.* names for heat maps. *)
let counter_tracks tl ~names =
  let known = Timeline.names tl in
  let names = List.filter (fun n -> List.mem n known) names in
  let b = Buffer.create 4096 in
  let first = ref true in
  let event s =
    if !first then first := false else Buffer.add_string b ",\n  ";
    Buffer.add_string b s
  in
  Buffer.add_string b "{\"traceEvents\": [\n  ";
  event "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, \"args\": {\"name\": \"counters\"}}";
  List.iter
    (fun s ->
      List.iter
        (fun name ->
          match
            Array.find_opt (fun (k, _) -> String.equal k name) s.Timeline.s_values
          with
          | Some (_, v) ->
              event
                (Printf.sprintf
                   "{\"ph\": \"C\", \"name\": \"%s\", \"pid\": 1, \"ts\": %.3f, \
                    \"args\": {\"value\": %d}}"
                   (json_escape name) s.Timeline.s_time v)
          | None -> ())
        names)
    (Timeline.samples tl);
  Buffer.add_string b "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents b

let heat_json h ~now =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"shards\": %d, \"ranges\": %d, \"half_life_us\": %.1f, \"skew\": %.4f, \
        \"per_shard\": ["
       (Heat.shards h) (Heat.ranges h) (Heat.half_life h) (Heat.skew h ~now));
  for s = 0 to Heat.shards h - 1 do
    if s > 0 then Buffer.add_string b ", ";
    let reads, writes, cross = Heat.totals h ~shard:s in
    Buffer.add_string b
      (Printf.sprintf
         "{\"shard\": %d, \"reads\": %d, \"writes\": %d, \"cross\": %d, \
          \"load\": %.4f, \"top\": ["
         s reads writes cross
         (Heat.shard_load h ~shard:s ~now));
    List.iteri
      (fun i (vid, count, err) ->
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_string b
          (Printf.sprintf "{\"vid\": \"%s\", \"count\": %d, \"err\": %d}"
             (json_escape vid) count err))
      (Heat.top h ~shard:s);
    Buffer.add_string b "]}"
  done;
  Buffer.add_string b "], \"range_heat\": [";
  for r = 0 to Heat.ranges h - 1 do
    if r > 0 then Buffer.add_string b ", ";
    Buffer.add_string b
      (Printf.sprintf
         "{\"range\": %d, \"home\": %d, \"owner\": %d, \"reads\": %.4f, \
          \"writes\": %.4f, \"cross\": %.4f}"
         r (Heat.home_shard h r)
         (Heat.range_owner h ~range:r ~now)
         (Heat.range_load h ~range:r ~kind:Heat.Read ~now)
         (Heat.range_load h ~range:r ~kind:Heat.Write ~now)
         (Heat.range_load h ~range:r ~kind:Heat.Cross ~now))
  done;
  Buffer.add_string b "]}";
  Buffer.contents b

let heat_csv h ~now =
  let b = Buffer.create 2048 in
  Buffer.add_string b "range,home_shard,owner_shard,reads,writes,cross\n";
  for r = 0 to Heat.ranges h - 1 do
    Buffer.add_string b
      (Printf.sprintf "%d,%d,%d,%.4f,%.4f,%.4f\n" r (Heat.home_shard h r)
         (Heat.range_owner h ~range:r ~now)
         (Heat.range_load h ~range:r ~kind:Heat.Read ~now)
         (Heat.range_load h ~range:r ~kind:Heat.Write ~now)
         (Heat.range_load h ~range:r ~kind:Heat.Cross ~now))
  done;
  Buffer.contents b

let timeline_json tl =
  let names = Timeline.names tl in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"times_us\": [";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "%.1f" s.Timeline.s_time))
    (Timeline.samples tl);
  Buffer.add_string b "], \"series\": {";
  List.iteri
    (fun i name ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "\"%s\": [" (json_escape name));
      List.iteri
        (fun j s ->
          if j > 0 then Buffer.add_string b ", ";
          match
            Array.find_opt (fun (k, _) -> String.equal k name) s.Timeline.s_values
          with
          | Some (_, v) -> Buffer.add_string b (string_of_int v)
          | None -> Buffer.add_string b "null")
        (Timeline.samples tl);
      Buffer.add_string b "]")
    names;
  Buffer.add_string b "}}\n";
  Buffer.contents b
