type span = {
  sp_trace : int;
  sp_name : string;
  sp_actor : string;
  sp_start : float;
  mutable sp_stop : float;
  mutable sp_meta : (string * string) list;
}

type record = {
  mutable r_spans : span list; (* newest first *)
  mutable r_msgs : (float * int * int * string) list; (* newest first *)
  mutable r_msg_count : int;
}

type t = {
  capacity : int;
  traces : (int, record) Hashtbl.t;
  order : int Queue.t; (* arrival order, for whole-trace eviction *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; traces = Hashtbl.create 256; order = Queue.create () }

let record_of t trace =
  match Hashtbl.find_opt t.traces trace with
  | Some r -> r
  | None ->
      while Hashtbl.length t.traces >= t.capacity && not (Queue.is_empty t.order) do
        Hashtbl.remove t.traces (Queue.pop t.order)
      done;
      let r = { r_spans = []; r_msgs = []; r_msg_count = 0 } in
      Hashtbl.replace t.traces trace r;
      Queue.push trace t.order;
      r

let begin_span t ~trace ~name ~actor ~start =
  let sp =
    { sp_trace = trace; sp_name = name; sp_actor = actor; sp_start = start;
      sp_stop = Float.nan; sp_meta = [] }
  in
  if trace <> 0 then begin
    let r = record_of t trace in
    r.r_spans <- sp :: r.r_spans
  end;
  sp

let finish sp ~stop = sp.sp_stop <- stop
let add_meta sp k v = sp.sp_meta <- (k, v) :: sp.sp_meta

let span t ~trace ~name ~actor ~start ~stop ?(meta = []) () =
  if trace <> 0 then begin
    let sp = begin_span t ~trace ~name ~actor ~start in
    sp.sp_stop <- stop;
    sp.sp_meta <- meta
  end

let message t ~trace ~time ~src ~dst ~kind =
  if trace <> 0 then begin
    let r = record_of t trace in
    r.r_msgs <- (time, src, dst, kind) :: r.r_msgs;
    r.r_msg_count <- r.r_msg_count + 1
  end

let stop_or_start sp = if Float.is_nan sp.sp_stop then sp.sp_start else sp.sp_stop

let spans t trace =
  match Hashtbl.find_opt t.traces trace with
  | None -> []
  | Some r ->
      List.sort
        (fun a b ->
          let c = Float.compare a.sp_start b.sp_start in
          if c <> 0 then c else Float.compare (stop_or_start b) (stop_or_start a))
        r.r_spans

let messages t trace =
  match Hashtbl.find_opt t.traces trace with
  | None -> []
  | Some r -> List.rev r.r_msgs

let message_count t trace =
  match Hashtbl.find_opt t.traces trace with None -> 0 | Some r -> r.r_msg_count

let trace_ids t = Queue.fold (fun acc id -> id :: acc) [] t.order |> List.rev

type tree = { node : span; children : tree list }

(* Nest by interval containment. Spans arrive sorted by (start asc, width
   desc), so a linear pass with an ancestor stack suffices: pop ancestors
   that end before this span starts (or cannot contain it), then attach. *)
let assemble t trace =
  let sorted = spans t trace in
  let contains outer inner =
    outer.sp_start <= inner.sp_start
    && (not (Float.is_nan outer.sp_stop))
    && stop_or_start inner <= outer.sp_stop
  in
  (* mutable forest built with refs: each frame is (span, children ref) *)
  let roots : (span * tree list ref) list ref = ref [] in
  let stack : (span * tree list ref) list ref = ref [] in
  let rec close_into (sp, kids) =
    let node = { node = sp; children = List.rev !kids } in
    match !stack with
    | (_, parent_kids) :: _ -> parent_kids := node :: !parent_kids
    | [] -> ()
  and pop_until sp =
    match !stack with
    | (top, kids) :: rest when not (contains top sp) ->
        stack := rest;
        close_into (top, kids);
        pop_until sp
    | _ -> ()
  in
  List.iter
    (fun sp ->
      pop_until sp;
      let frame = (sp, ref []) in
      (match !stack with
      | [] -> roots := frame :: !roots
      | _ -> ());
      stack := frame :: !stack)
    sorted;
  (* flush the stack bottom-up *)
  let rec flush () =
    match !stack with
    | (top, kids) :: rest ->
        stack := rest;
        close_into (top, kids);
        flush ()
    | [] -> ()
  in
  flush ();
  (* roots hold frames whose children refs are now final *)
  List.rev_map
    (fun (sp, kids) -> { node = sp; children = List.rev !kids })
    !roots

let render t trace =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "trace %d" trace;
  let rec go depth { node = sp; children } =
    let indent = String.make (2 * depth) ' ' in
    let dur =
      if Float.is_nan sp.sp_stop then "open"
      else Printf.sprintf "%.1f us" (sp.sp_stop -. sp.sp_start)
    in
    let meta =
      match sp.sp_meta with
      | [] -> ""
      | m -> " {" ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) m) ^ "}"
    in
    line "%s%-24s %-8s [%.1f .. %s] %s%s" indent sp.sp_name sp.sp_actor sp.sp_start
      (if Float.is_nan sp.sp_stop then "?" else Printf.sprintf "%.1f" sp.sp_stop)
      dur meta;
    List.iter (go (depth + 1)) children
  in
  List.iter (go 1) (assemble t trace);
  let msgs = messages t trace in
  line "  messages: %d" (List.length msgs);
  List.iter
    (fun (time, src, dst, kind) -> line "    %10.1f  %3d -> %3d  %s" time src dst kind)
    msgs;
  Buffer.contents b

let to_json t trace =
  let b = Buffer.create 1024 in
  let rec span_json { node = sp; children } =
    let meta =
      String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" k v)
           (List.rev sp.sp_meta))
    in
    Printf.sprintf
      "{\"name\":\"%s\",\"actor\":\"%s\",\"start\":%.3f,\"stop\":%s,\"meta\":{%s},\"children\":[%s]}"
      sp.sp_name sp.sp_actor sp.sp_start
      (if Float.is_nan sp.sp_stop then "null" else Printf.sprintf "%.3f" sp.sp_stop)
      meta
      (String.concat "," (List.map span_json children))
  in
  Buffer.add_string b (Printf.sprintf "{\"trace\":%d,\"spans\":[" trace);
  Buffer.add_string b (String.concat "," (List.map span_json (assemble t trace)));
  Buffer.add_string b "],\"messages\":[";
  Buffer.add_string b
    (String.concat ","
       (List.map
          (fun (time, src, dst, kind) ->
            Printf.sprintf "{\"time\":%.3f,\"src\":%d,\"dst\":%d,\"kind\":\"%s\"}" time src
              dst kind)
          (messages t trace)));
  Buffer.add_string b "]}";
  Buffer.contents b
