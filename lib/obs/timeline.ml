(* Ring-buffered time series over the metrics registry.

   A timeline does not know about the simulation engine: the runtime calls
   [record] from a periodic engine event, passing the current virtual time
   and a snapshot of every counter/gauge. Recording only copies integers —
   it never schedules events, touches RNG state, or reorders anything, so
   a run with sampling enabled is bit-identical to one without (pinned by
   the determinism test in test/test_timeline.ml). *)

type sample = { s_time : float; s_values : (string * int) array }

type t = {
  capacity : int;
  ring : sample option array;
  mutable head : int;  (* next write slot *)
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Timeline.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; head = 0; len = 0 }

let record t ~now values =
  t.ring.(t.head) <- Some { s_time = now; s_values = Array.of_list values };
  t.head <- (t.head + 1) mod t.capacity;
  if t.len < t.capacity then t.len <- t.len + 1

let length t = t.len

(* oldest first *)
let samples t =
  let first = (t.head - t.len + t.capacity) mod t.capacity in
  List.init t.len (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some s -> s
      | None -> assert false)

let names t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun s -> Array.iter (fun (n, _) -> Hashtbl.replace tbl n ()) s.s_values)
    (samples t);
  List.sort String.compare (Hashtbl.fold (fun n () acc -> n :: acc) tbl [])

let value_of s name =
  (* snapshots come from Metrics.int_values, sorted by name; a linear scan
     is fine at the sample counts timelines hold *)
  let n = Array.length s.s_values in
  let rec go i =
    if i >= n then None
    else
      let k, v = s.s_values.(i) in
      if String.equal k name then Some v else go (i + 1)
  in
  go 0

let series t name =
  List.filter_map
    (fun s -> Option.map (fun v -> (s.s_time, v)) (value_of s name))
    (samples t)

(* windowed per-second rate between consecutive samples; virtual time is
   in µs, hence the 1e6. The series is one shorter than [series]. *)
let rates t name =
  let rec go = function
    | (t0, v0) :: ((t1, v1) :: _ as rest) when t1 > t0 ->
        (t1, float_of_int (v1 - v0) /. (t1 -. t0) *. 1_000_000.0) :: go rest
    | _ :: rest -> go rest
    | [] -> []
  in
  go (series t name)
