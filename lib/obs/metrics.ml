module Stats = Weaver_util.Stats

type counter = { mutable c : int }

type instrument =
  | Counter of counter
  | Gauge of (unit -> int)
  | Reservoir of Stats.t

type t = { tbl : (string, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is not a counter")
  | None ->
      let c = { c = 0 } in
      Hashtbl.replace t.tbl name (Counter c);
      c

let incr ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

(* re-registering a gauge over a gauge is deliberate (actor respawn after a
   fault re-registers its utilization gauges over the dead incarnation's),
   but silently shadowing a counter or reservoir would corrupt every
   fingerprint that reads it — that is always a bug, so raise *)
let gauge t name f =
  match Hashtbl.find_opt t.tbl name with
  | None | Some (Gauge _) -> Hashtbl.replace t.tbl name (Gauge f)
  | Some (Counter _) ->
      invalid_arg ("Metrics.gauge: " ^ name ^ " is already a counter")
  | Some (Reservoir _) ->
      invalid_arg ("Metrics.gauge: " ^ name ^ " is already a reservoir")

let reservoir t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Reservoir s) -> s
  | Some _ -> invalid_arg ("Metrics.reservoir: " ^ name ^ " is not a reservoir")
  | None ->
      let s = Stats.create () in
      Hashtbl.replace t.tbl name (Reservoir s);
      s

let observe t name v = Stats.add (reservoir t name) v

let sorted_bindings t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let int_values t =
  List.filter_map
    (fun (name, inst) ->
      match inst with
      | Counter c -> Some (name, c.c)
      | Gauge f -> Some (name, f ())
      | Reservoir _ -> None)
    (sorted_bindings t)

let reservoirs t =
  List.filter_map
    (fun (name, inst) ->
      match inst with
      | Reservoir s when not (Stats.is_empty s) -> Some (name, s)
      | _ -> None)
    (sorted_bindings t)

let render t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  (match int_values t with
  | [] -> ()
  | ints ->
      line "%-34s %12s" "counter" "value";
      List.iter (fun (name, v) -> line "%-34s %12d" name v) ints);
  (match reservoirs t with
  | [] -> ()
  | rs ->
      line "%-34s %8s %10s %10s %10s %10s" "reservoir" "n" "mean" "p50" "p99" "max";
      List.iter
        (fun (name, s) ->
          line "%-34s %8d %10.1f %10.1f %10.1f %10.1f" name (Stats.count s)
            (Stats.mean s)
            (Stats.percentile s 50.0)
            (Stats.percentile s 99.0)
            (Stats.max_val s))
        rs);
  Buffer.contents b

(* hand-rolled JSON: names are dotted identifiers, values numbers, so no
   escaping beyond the basics is needed *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape name) v))
    (int_values t);
  Buffer.add_string b "},\"reservoirs\":{";
  List.iteri
    (fun i (name, s) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\"%s\":{\"n\":%d,\"mean\":%.3f,\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f,\"max\":%.3f}"
           (json_escape name) (Stats.count s) (Stats.mean s)
           (Stats.percentile s 50.0)
           (Stats.percentile s 90.0)
           (Stats.percentile s 99.0)
           (Stats.max_val s)))
    (reservoirs t);
  Buffer.add_string b "}}";
  Buffer.contents b
