(** Ring-buffered time series over the metrics registry — the simulation's
    time dimension (every figure in the paper's §6 is a series, not a
    point).

    The runtime samples the registry on a periodic engine event and feeds
    each snapshot here. Recording only copies integers: it never schedules
    events or consumes randomness, so enabling a timeline cannot perturb
    simulation outcomes. Once [capacity] samples are held, the oldest are
    overwritten. *)

type sample = {
  s_time : float;  (** virtual µs of the snapshot *)
  s_values : (string * int) array;  (** counter/gauge values, sorted by name *)
}

type t

val create : capacity:int -> t
(** Retain at most [capacity] samples. Raises [Invalid_argument] if
    [capacity <= 0]. *)

val record : t -> now:float -> (string * int) list -> unit
(** Append one snapshot (as produced by {!Metrics.int_values}). *)

val length : t -> int
val samples : t -> sample list  (** Oldest first. *)

val names : t -> string list
(** Every instrument name appearing in any retained sample, sorted. *)

val series : t -> string -> (float * int) list
(** [(time, value)] points of one instrument, oldest first; samples that
    lack the instrument (e.g. a gauge registered mid-run) are skipped. *)

val rates : t -> string -> (float * float) list
(** Windowed per-second rates between consecutive samples, stamped at the
    window's end — tx/s, msgs/s, page-ins/s for monotone counters, signed
    deltas for gauges that can fall. One point shorter than {!series}. *)
