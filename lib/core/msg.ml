module Vclock = Weaver_vclock.Vclock

type shard_op =
  | S_create_vertex of string
  | S_delete_vertex of string
  | S_add_edge of { src : string; eid : string; dst : string }
  | S_del_edge of { src : string; eid : string }
  | S_set_vprop of { vid : string; key : string; value : string }
  | S_del_vprop of { vid : string; key : string }
  | S_set_eprop of { src : string; eid : string; key : string; value : string }
  | S_del_eprop of { src : string; eid : string; key : string }
  | S_migrate_in of string
  | S_migrate_out of string

type t =
  | Tx_req of { client : int; tx_id : int; ops : Txop.t list }
  | Tx_reply of {
      tx_id : int;
      result : (unit, string) result;
      reads : (string * Progval.t) list;
    }
  | Prog_req of {
      client : int;
      prog_id : int;
      prog : string;
      params : Progval.t;
      starts : string list;
      at : Weaver_vclock.Vclock.t option;
      weak : bool;
    }
  | Prog_reply of { prog_id : int; result : (Progval.t, string) result }
  | Announce of { gk : int; clock : Vclock.t }
  | Shard_tx of {
      gk : int;
      seq : int;
      ts : Vclock.t;
      ops : shard_op list;
      trace : int; (* originating request's trace id; 0 = untraced (NOPs) *)
    }
  | Prog_batch of {
      coord : int;
      prog_id : int;
      ts : Vclock.t;
      prog : string;
      historical : bool;
      items : (string * Progval.t) list;
      sent_at : float;
    }
  | Prog_partial of {
      prog_id : int;
      sent : int;
      acc : Progval.t;
      visited : string list;
      error : string option;
    }
  | Prog_gc of { prog_id : int }
  | Migrate_req of { client : int; tx_id : int; vid : string; to_shard : int }
  | Commit_note of {
      gk : int;
      client : int;
      tx_id : int;
      written : string list;
      reads : (string * Progval.t) list;
    }
  | Heartbeat of { server : int }
  | Epoch_change of { epoch : int }
  | Epoch_ack of { server : int; epoch : int }
  | Watermark of { gk : int; ts : Vclock.t }
  | Overloaded of { req_id : int; reason : string }
  | Credit of { shard : int; gk : int; n : int }
  | Repl_install of { range : int; owner : int; followers : int list }
  | Repl_update of { range : int; owner : int; ts : Vclock.t; ops : shard_op list }
  | Repl_seed of {
      range : int;
      owner : int;
      ts : Vclock.t;
      vertices : (string * Weaver_graph.Mgraph.vertex) list;
    }
  | Repl_cover of { range : int; follower : int; ts : Vclock.t }
  | Batch of t list

let rec pp fmt = function
  | Tx_req { client; tx_id; ops } ->
      Format.fprintf fmt "Tx_req(c%d,#%d,%d ops)" client tx_id (List.length ops)
  | Tx_reply { tx_id; result; reads } ->
      Format.fprintf fmt "Tx_reply(#%d,%s,%d reads)" tx_id
        (match result with Ok () -> "ok" | Error e -> e)
        (List.length reads)
  | Prog_req { prog_id; prog; starts; _ } ->
      Format.fprintf fmt "Prog_req(#%d,%s,%d starts)" prog_id prog (List.length starts)
  | Prog_reply { prog_id; result } ->
      Format.fprintf fmt "Prog_reply(#%d,%s)" prog_id
        (match result with Ok _ -> "ok" | Error e -> e)
  | Announce { gk; clock } -> Format.fprintf fmt "Announce(gk%d,%a)" gk Vclock.pp clock
  | Shard_tx { gk; seq; ts; ops; trace = _ } ->
      Format.fprintf fmt "Shard_tx(gk%d,seq%d,%a,%d ops)" gk seq Vclock.pp ts
        (List.length ops)
  | Prog_batch { prog_id; prog; items; ts; _ } ->
      Format.fprintf fmt "Prog_batch(#%d,%s,%a,%d items)" prog_id prog Vclock.pp ts
        (List.length items)
  | Prog_partial { prog_id; sent; error; _ } ->
      Format.fprintf fmt "Prog_partial(#%d,sent %d%s)" prog_id sent
        (match error with None -> "" | Some e -> "," ^ e)
  | Prog_gc { prog_id } -> Format.fprintf fmt "Prog_gc(#%d)" prog_id
  | Migrate_req { vid; to_shard; _ } -> Format.fprintf fmt "Migrate_req(%s->s%d)" vid to_shard
  | Commit_note { gk; client; tx_id; written; _ } ->
      Format.fprintf fmt "Commit_note(gk%d,c%d,#%d,%d written)" gk client tx_id
        (List.length written)
  | Heartbeat { server } -> Format.fprintf fmt "Heartbeat(%d)" server
  | Epoch_change { epoch } -> Format.fprintf fmt "Epoch_change(%d)" epoch
  | Epoch_ack { server; epoch } -> Format.fprintf fmt "Epoch_ack(%d,e%d)" server epoch
  | Watermark { gk; ts } -> Format.fprintf fmt "Watermark(gk%d,%a)" gk Vclock.pp ts
  | Overloaded { req_id; reason } ->
      Format.fprintf fmt "Overloaded(#%d,%s)" req_id reason
  | Credit { shard; gk; n } -> Format.fprintf fmt "Credit(s%d->gk%d,%d)" shard gk n
  | Repl_install { range; owner; followers } ->
      Format.fprintf fmt "Repl_install(r%d,s%d,%d followers)" range owner
        (List.length followers)
  | Repl_update { range; owner; ts; ops } ->
      Format.fprintf fmt "Repl_update(r%d,s%d,%a,%d ops)" range owner Vclock.pp ts
        (List.length ops)
  | Repl_seed { range; owner; ts; vertices } ->
      Format.fprintf fmt "Repl_seed(r%d,s%d,%a,%d vertices)" range owner Vclock.pp ts
        (List.length vertices)
  | Repl_cover { range; follower; ts } ->
      Format.fprintf fmt "Repl_cover(r%d,s%d,%a)" range follower Vclock.pp ts
  | Batch items ->
      Format.fprintf fmt "Batch(%d:@[%a@])" (List.length items)
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",@ ") pp)
        items

(* The trace id a message travels on behalf of: client-originated requests
   use their globally unique request id; derived traffic inherits it
   (Shard_tx carries it explicitly, program fan-out reuses [prog_id]).
   [None] for control-plane traffic that belongs to no single request. *)
let trace_of = function
  | Tx_req { tx_id; _ } | Tx_reply { tx_id; _ } -> Some tx_id
  | Prog_req { prog_id; _ }
  | Prog_reply { prog_id; _ }
  | Prog_batch { prog_id; _ }
  | Prog_partial { prog_id; _ }
  | Prog_gc { prog_id } -> Some prog_id
  | Migrate_req { tx_id; _ } -> Some tx_id
  | Commit_note { tx_id; _ } -> Some tx_id
  | Shard_tx { trace; _ } -> if trace = 0 then None else Some trace
  | Overloaded { req_id; _ } -> Some req_id
  | Announce _ | Heartbeat _ | Epoch_change _ | Epoch_ack _ | Watermark _ | Credit _
  | Repl_install _ | Repl_update _ | Repl_seed _ | Repl_cover _ | Batch _ ->
      None

let kind = function
  | Tx_req _ -> "Tx_req"
  | Tx_reply _ -> "Tx_reply"
  | Prog_req _ -> "Prog_req"
  | Prog_reply _ -> "Prog_reply"
  | Announce _ -> "Announce"
  | Shard_tx { ops = []; _ } -> "Shard_tx(nop)"
  | Shard_tx _ -> "Shard_tx"
  | Prog_batch _ -> "Prog_batch"
  | Prog_partial _ -> "Prog_partial"
  | Prog_gc _ -> "Prog_gc"
  | Migrate_req _ -> "Migrate_req"
  | Commit_note _ -> "Commit_note"
  | Heartbeat _ -> "Heartbeat"
  | Epoch_change _ -> "Epoch_change"
  | Epoch_ack _ -> "Epoch_ack"
  | Watermark _ -> "Watermark"
  | Overloaded _ -> "Overloaded"
  | Credit _ -> "Credit"
  | Repl_install _ -> "Repl_install"
  | Repl_update _ -> "Repl_update"
  | Repl_seed _ -> "Repl_seed"
  | Repl_cover _ -> "Repl_cover"
  | Batch _ -> "Batch"
