type t = {
  n_gatekeepers : int;
  n_shards : int;
  tau : float;
  nop_period : float;
  net_base_latency : float;
  net_jitter : float;
  store_op_cost : float;
  gk_op_cost : float;
  vertex_read_cost : float;
  vertex_write_cost : float;
  heartbeat_period : float;
  failure_timeout : float;
  gc_period : float;
  enable_memoization : bool;
  dedup_window : int;
  shard_capacity : int option;
  page_in_cost : float;
  read_replicas : int;
  adaptive_tau : bool;
  oracle_replicas : int;
  oracle_nonblocking : bool;
  enable_tracing : bool;
  trace_capacity : int;
  enable_timeline : bool;
  timeline_period : float;
  timeline_capacity : int;
  slow_log_capacity : int;
  admission_limit : int;
  deadline_budget : float;
  shard_credits : int;
  snapshot_reads : bool;
  snapshot_retain : int;
  enable_heat : bool;
  heat_topk : int;
  heat_ranges : int;
  heat_half_life : float;
  enable_health : bool;
  health_period : float;
  enable_rebalance : bool;
  rebalance_period : float;
  rebalance_max_moves : int;
  rebalance_hysteresis : float;
  net_batching : bool;
  enable_replication : bool;
  replication_factor : int;
  repl_candidate_topk : int;
  seed : int;
}

let default =
  {
    n_gatekeepers = 2;
    n_shards = 4;
    tau = 1_000.0;
    nop_period = 100.0;
    net_base_latency = 50.0;
    net_jitter = 20.0;
    store_op_cost = 30.0;
    gk_op_cost = 20.0;
    vertex_read_cost = 1.0;
    vertex_write_cost = 2.0;
    heartbeat_period = 20_000.0;
    failure_timeout = 100_000.0;
    gc_period = 50_000.0;
    enable_memoization = false;
    dedup_window = 512;
    shard_capacity = None;
    page_in_cost = 150.0;
    read_replicas = 0;
    adaptive_tau = false;
    oracle_replicas = 1;
    oracle_nonblocking = true;
    enable_tracing = false;
    trace_capacity = 1024;
    enable_timeline = false;
    timeline_period = 10_000.0;
    timeline_capacity = 4096;
    slow_log_capacity = 32;
    admission_limit = 0;
    deadline_budget = 0.0;
    shard_credits = 0;
    snapshot_reads = false;
    snapshot_retain = 4;
    enable_heat = false;
    heat_topk = 8;
    heat_ranges = 64;
    heat_half_life = 50_000.0;
    enable_health = false;
    health_period = 10_000.0;
    enable_rebalance = false;
    rebalance_period = 25_000.0;
    rebalance_max_moves = 8;
    rebalance_hysteresis = 1.5;
    net_batching = false;
    enable_replication = false;
    replication_factor = 1;
    repl_candidate_topk = 4;
    seed = 42;
  }

(* smallest positive multiple of [n_shards] at or above [heat_ranges]:
   builders that vary the shard count call this instead of hand-picking a
   nesting range count *)
let align_heat_ranges t =
  let r = max t.heat_ranges 1 in
  { t with heat_ranges = (r + t.n_shards - 1) / t.n_shards * t.n_shards }

let validate t =
  let req name ok = if not ok then invalid_arg ("Config: bad " ^ name) in
  req "n_gatekeepers" (t.n_gatekeepers >= 1);
  req "n_shards" (t.n_shards >= 1);
  req "tau" (t.tau > 0.0);
  req "nop_period" (t.nop_period > 0.0);
  req "net_base_latency" (t.net_base_latency >= 0.0);
  req "net_jitter" (t.net_jitter >= 0.0);
  req "store_op_cost" (t.store_op_cost >= 0.0);
  req "gk_op_cost" (t.gk_op_cost >= 0.0);
  req "vertex_read_cost" (t.vertex_read_cost >= 0.0);
  req "vertex_write_cost" (t.vertex_write_cost >= 0.0);
  req "heartbeat_period" (t.heartbeat_period > 0.0);
  req "failure_timeout" (t.failure_timeout > t.heartbeat_period);
  req "gc_period" (t.gc_period >= 0.0);
  req "dedup_window" (t.dedup_window >= 0);
  req "shard_capacity" (match t.shard_capacity with Some n -> n > 0 | None -> true);
  req "page_in_cost" (t.page_in_cost >= 0.0);
  req "read_replicas" (t.read_replicas >= 0);
  req "oracle_replicas" (t.oracle_replicas >= 1);
  req "trace_capacity" (t.trace_capacity >= 1);
  req "timeline_period" (t.timeline_period > 0.0);
  req "timeline_capacity" (t.timeline_capacity >= 1);
  req "slow_log_capacity" (t.slow_log_capacity >= 1);
  req "admission_limit" (t.admission_limit >= 0);
  req "deadline_budget" (t.deadline_budget >= 0.0);
  req "shard_credits" (t.shard_credits >= 0);
  req "snapshot_retain" (t.snapshot_retain >= 1);
  (* snapshots are published at watermark boundaries, which only exist
     while the GC gossip timer runs *)
  req "snapshot_reads" ((not t.snapshot_reads) || t.gc_period > 0.0);
  req "heat_topk" (t.heat_topk >= 1);
  req "heat_ranges" (t.heat_ranges >= 1);
  (* range heat attributes each range to [range mod n_shards]; without
     nesting, that home shard is simply wrong (see Heat.home_shard) *)
  req "heat_ranges (must be a multiple of n_shards)"
    ((not t.enable_heat) || t.heat_ranges mod t.n_shards = 0);
  req "heat_half_life" (t.heat_half_life > 0.0);
  req "health_period" (t.health_period > 0.0);
  req "rebalance_period" (t.rebalance_period > 0.0);
  req "rebalance_max_moves" (t.rebalance_max_moves >= 1);
  (* a band below 1.0 would mark shards at or below the mean as overloaded
     and the planner would thrash moves between balanced shards *)
  req "rebalance_hysteresis" (t.rebalance_hysteresis >= 1.0);
  (* the planner is sense -> plan -> act: without the heat sensor there is
     nothing to plan from *)
  req "enable_rebalance (requires enable_heat)"
    ((not t.enable_rebalance) || t.enable_heat);
  req "replication_factor" (t.replication_factor >= 0);
  req "repl_candidate_topk" (t.repl_candidate_topk >= 1);
  (* candidate ranges come straight from the heat sketches *)
  req "enable_replication (requires enable_heat)"
    ((not t.enable_replication) || t.enable_heat);
  (* followers advertise coverage at watermark boundaries, which only
     exist while the GC gossip timer runs *)
  req "enable_replication (requires gc_period > 0)"
    ((not t.enable_replication) || t.gc_period > 0.0)
