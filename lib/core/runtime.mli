(** Shared infrastructure of one simulated Weaver deployment: the event
    engine, the message network, the backing store, the timeline oracle,
    the program registry, and the cluster-wide counters that the benchmarks
    report. Gatekeeper and shard actors all hold a reference to one
    [Runtime.t]. *)

module Vclock = Weaver_vclock.Vclock

type stored =
  | Vrec of Weaver_graph.Mgraph.vertex  (** durable vertex record *)
  | Stamp of Vclock.t  (** last-update timestamp of a vertex (§4.2) *)
  | Dir of int  (** vertex → shard directory entry (§3.2) *)

type counters = {
  mutable tx_committed : int;
  mutable tx_aborted : int;  (** backing-store conflicts (client may retry) *)
  mutable tx_invalid : int;  (** semantic validation failures *)
  mutable progs_completed : int;
  mutable announce_msgs : int;  (** proactive coordination cost (Fig. 14) *)
  mutable nop_msgs : int;
  mutable shard_tx_msgs : int;
  mutable prog_batch_msgs : int;
  mutable oracle_consults : int;
      (** ordering requests that actually reached the timeline oracle —
          the reactive coordination cost (Fig. 14) *)
  mutable oracle_cache_hits : int;  (** answered from a server-local cache *)
  mutable shard_oracle_consults : int;
      (** oracle round trips issued by shard event loops on concurrent
          conflicting queue heads — the denominator of the batching factor *)
  mutable shard_oracle_batched : int;
      (** conflict sets that joined an already-in-flight consult instead of
          issuing their own round trip (coalesced refinement); the batching
          factor is [1 + batched/consults] *)
  mutable vertices_read : int;  (** node-program vertex visits (Fig. 8) *)
  mutable page_ins : int;
  mutable evictions : int;
  mutable recoveries : int;
  mutable memo_hits : int;
  mutable memo_invalidations : int;  (** local write-set invalidations *)
  mutable memo_remote_invalidations : int;
      (** memo entries dropped because a *peer* gatekeeper's commit note
          reported an overlapping write set *)
  mutable migrations : int;  (** vertex relocations (§4.6) *)
  mutable dedup_hits : int;
      (** retried, already-committed transactions answered from the
          duplicate-suppression window instead of re-executing *)
  mutable dedup_dropped : int;
      (** duplicate submissions dropped because the original attempt was
          still in flight on the same gatekeeper *)
  mutable late_replies : int;
      (** replies that arrived after the client-side timeout had already
          resolved the request (server success and client-visible success
          diverge here) *)
  mutable client_retries : int;  (** retry attempts issued by clients *)
  mutable fault_events : int;  (** fault-plan actions executed *)
  mutable heartbeat_msgs : int;  (** heartbeats sent to the manager *)
  mutable credit_msgs : int;  (** flow-control credit returns (shard→gk) *)
  mutable shed_queue_full : int;
      (** requests shed at admission: queue bound ([Config.admission_limit]) *)
  mutable shed_deadline : int;
      (** requests shed at admission: projected wait past the deadline
          budget ([Config.deadline_budget]) *)
  mutable shed_credit : int;
      (** requests shed at admission: a target shard's flow-control
          credits exhausted ([Config.shard_credits]) *)
  mutable snap_published : int;
      (** immutable graph snapshots published by shards at watermark
          boundaries ([Config.snapshot_reads]) *)
  mutable snap_pinned_reads : int;
      (** historical node-program batches executed against a pinned
          snapshot instead of per-vertex version resolution *)
  mutable snap_gc_deferred : int;
      (** compaction rounds whose watermark was clamped because a pinned
          snapshot was older than the gossiped watermark *)
  mutable rebal_rounds : int;
      (** live-rebalance planner rounds executed ([Config.enable_rebalance]) *)
  mutable rebal_moves : int;
      (** planner-issued vertex migrations that completed [Ok] *)
  mutable rebal_skipped : int;
      (** planner candidates passed over: stale sketch entries (vertex no
          longer on the overloaded shard), dead source/target shards, or
          moves that failed and were left for a later round *)
  mutable batch_msgs : int;
      (** [Msg.Batch] envelopes shipped ([Config.net_batching]); a buffer
          holding a single message flushes unwrapped and is not counted *)
  mutable batch_coalesced : int;
      (** control messages that rode inside a [Msg.Batch] envelope instead
          of paying their own wire message *)
  mutable repl_rounds : int;
      (** replication-controller planner rounds ([Config.enable_replication]) *)
  mutable repl_installs : int;
      (** hot ranges the controller placed follower copies for *)
  mutable repl_updates : int;
      (** owner→follower streamed update messages carrying applied ops *)
  mutable repl_resyncs : int;
      (** full range seeds shipped to followers (first sync after install,
          and recovery from an interrupted stream after credit exhaustion) *)
  mutable repl_routed : int;
      (** node-program batches the gatekeepers routed to a covering
          follower instead of the owning shard *)
}

type t = {
  cfg : Config.t;
  engine : Weaver_sim.Engine.t;
  net : Msg.t Weaver_sim.Net.t;
  store : stored Weaver_store.Store.t;
  oracle : Weaver_oracle.Oracle.t;
      (** the direct instance; when [oracle_chain] is set, go through the
          [oracle_*] facade functions instead *)
  oracle_chain : Weaver_oracle.Chain.t option;
      (** chain replication of the oracle (§3.4) when
          [Config.oracle_replicas > 1] *)
  registry : Nodeprog.registry;
  counters : counters;
  metrics : Weaver_obs.Metrics.t;
      (** uniform registry over every measurement: the legacy [counters]
          fields (as read-through gauges), network/store totals, and the
          per-phase latency reservoirs actors feed via {!observe} *)
  tracer : Weaver_obs.Trace.t option;
      (** per-request span/message collector; [Some] iff
          [Config.enable_tracing] *)
  timeline : Weaver_obs.Timeline.t option;
      (** ring-buffered registry samples taken every
          [Config.timeline_period] µs; [Some] iff [Config.enable_timeline].
          Sampling only reads state, so outcomes are unaffected *)
  slowlog : Weaver_obs.Slowlog.t;
      (** top-K slowest client requests, always on; entries gain per-phase
          breakdowns when tracing is enabled *)
  heat : Weaver_obs.Heat.t option;
      (** per-shard heavy-hitter sketches + per-range decayed load
          accumulators; [Some] iff [Config.enable_heat]. Touch recording
          is pure bookkeeping, so outcomes are unaffected *)
  batches : (int * int, Msg.t list ref) Hashtbl.t;
      (** [Config.net_batching] per-(src, dst) coalescing buffers; always
          empty between engine ticks and when batching is off. Send
          through {!send} — never append to these directly *)
  mutable next_client : int;  (** bump via {!fresh_client_addr} only *)
}

(** Ordering-service facade: chain when configured, single instance
    otherwise. *)

val oracle_order :
  t -> first:Vclock.t -> second:Vclock.t -> Weaver_oracle.Oracle.decision

val oracle_query :
  t -> Vclock.t -> Vclock.t -> Weaver_oracle.Oracle.decision option

val oracle_serialize : t -> Vclock.t list -> Vclock.t list
val oracle_gc : t -> watermark:Vclock.t -> int
val oracle_queries_served : t -> int

val create : Config.t -> t

(** {1 Messaging}

    Actors send and register through these wrappers rather than
    {!Weaver_sim.Net} directly. With [Config.net_batching] off they are
    exact pass-throughs; with it on, small control messages ([Msg.Credit],
    [Msg.Heartbeat], [Msg.Commit_note], NOP [Msg.Shard_tx],
    [Msg.Announce]) coalesce into one [Msg.Batch] per (src, dst) pair per
    engine tick, and batches are unpacked back into individual handler
    calls at delivery — handlers never observe [Msg.Batch]. *)

val send : t -> src:int -> dst:int -> Msg.t -> unit
val register : t -> int -> (src:int -> Msg.t -> unit) -> unit

(** {1 Observability} *)

val observe : t -> string -> float -> unit
(** Add one sample to the named metrics reservoir (e.g.
    ["gk.admission_wait"]). Always on — recording never perturbs the
    simulation. *)

val trace_span :
  t ->
  trace:int ->
  name:string ->
  actor:string ->
  start:float ->
  stop:float ->
  ?meta:(string * string) list ->
  unit ->
  unit
(** Record a completed span against a request trace. No-op when tracing is
    disabled or [trace = 0]. *)

val obs_net_hook :
  t -> (time:float -> src:int -> dst:int -> Msg.t -> unit) option
(** The network tracer feeding the trace collector (installed by
    {!create}); exposed so debugging tracers can compose with it instead
    of replacing it. *)

(** {1 Address plan} — gatekeepers first, then shards, the manager, and
    finally dynamically allocated clients. *)

val slow_record :
  t -> trace:int -> kind:string -> start:float -> stop:float -> result:string -> unit
(** Record one resolved client request into the slow-request log, pulling
    the per-phase breakdown from the tracer when available. Called by the
    client layer on reply or timeout. *)

val heat_read : t -> shard:int -> string -> unit
(** Record one node-program vertex visit on [shard] into the heat layer;
    no-op when [Config.enable_heat] is off. O(1) pure bookkeeping. *)

val heat_write : t -> shard:int -> string -> unit
(** Record one applied write touching a vertex on [shard]. *)

val heat_cross : t -> string -> unit
(** Record one cross-shard transaction touch of a vertex, attributed to
    its owning shard; called by the gatekeeper when a commit fans out to
    more than one shard. *)

val gk_addr : t -> int -> int
val shard_addr : t -> int -> int

val replica_addr : t -> shard:int -> replica:int -> int
(** Address of read-only replica [replica] of [shard] (§6.4). *)

val manager_addr : t -> int
val fresh_client_addr : t -> int
val is_gk_addr : t -> int -> bool

val actor_of_addr : t -> int -> string
(** Human name of the actor at an address ("gk0", "shard2",
    "replica1.0", "manager", "client3"), matching the actor names spans
    carry — the pid naming used by the Perfetto export. *)

(** {1 Vertex placement} *)

val shard_of_vertex : t -> string -> int
(** Shard index owning a vertex: the directory entry if present, hashed
    placement otherwise (the mapping every server can compute for
    yet-unknown vertices). *)

(** {1 Store keys} *)

val vkey : string -> string
(** Key of a vertex record. *)

val lukey : string -> string
(** Key of a last-update stamp. *)

val dirkey : string -> string
(** Key of a directory entry. *)

(** {1 Ordering decisions}

    [before cache t a b ~prefer_first_on_tie] decides whether [a] happened
    strictly before [b]: vector clocks first; then the server-local cache
    of oracle decisions; then the timeline oracle itself, establishing
    [a ≺ b] when unordered iff [prefer_first_on_tie] (otherwise [b ≺ a]).
    Counts cache hits and oracle consultations. *)

type decision_cache

val create_cache : unit -> decision_cache

val before :
  decision_cache -> t -> Vclock.t -> Vclock.t -> prefer_first_on_tie:bool -> bool

val before_established :
  decision_cache -> t -> Vclock.t -> Vclock.t -> bool option
(** Like {!before} but never establishes a new order: [None] when the pair
    is still unordered. *)

val stamp_min : Vclock.t -> Vclock.t -> Vclock.t
(** Pointwise lower bound of two timestamps (min epoch wins outright):
    anything strictly before the result is strictly before both inputs.
    Used to build GC watermarks (§4.5). *)

val before_cached : decision_cache -> t -> Vclock.t -> Vclock.t -> bool option
(** Cache-and-vclock-only variant of {!before_established}: never contacts
    the oracle. Used where waiting is always safe (e.g. gating a node
    program on a NOP queue head) so that effect-free traffic generates no
    reactive-coordination cost. *)
