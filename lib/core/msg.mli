(** Wire protocol between clients, gatekeepers, shard servers, and the
    cluster manager. Every message in the deployment travels through the
    simulated FIFO network as one of these constructors. *)

type shard_op =
  | S_create_vertex of string
  | S_delete_vertex of string
  | S_add_edge of { src : string; eid : string; dst : string }
  | S_del_edge of { src : string; eid : string }
  | S_set_vprop of { vid : string; key : string; value : string }
  | S_del_vprop of { vid : string; key : string }
  | S_set_eprop of { src : string; eid : string; key : string; value : string }
  | S_del_eprop of { src : string; eid : string; key : string }
  | S_migrate_in of string
  | S_migrate_out of string
(** Post-validation write effects forwarded from a gatekeeper to the shard
    that owns the touched vertex (paper §4.2). [S_migrate_in]/[S_migrate_out]
    move a vertex between shards (dynamic colocation, §4.6): the new owner
    pulls the record from the backing store when the op is applied, the old
    owner drops its copy. *)

type t =
  | Tx_req of { client : int; tx_id : int; ops : Txop.t list }
      (** client → gatekeeper: commit this buffered transaction *)
  | Tx_reply of {
      tx_id : int;
      result : (unit, string) result;
      reads : (string * Progval.t) list;
    }
      (** gatekeeper → client: sent after the backing-store commit (§4.4);
          [reads] carries one summary per [Read_vertex] operation, taken
          inside the same atomic store transaction *)
  | Prog_req of {
      client : int;
      prog_id : int;
      prog : string;
      params : Progval.t;
      starts : string list;
      at : Weaver_vclock.Vclock.t option;
      weak : bool;
    }
      (** client → gatekeeper: run a node program; [weak] requests routing
          to read-only shard replicas (stale reads allowed, §6.4) *)
  | Prog_reply of { prog_id : int; result : (Progval.t, string) result }
  | Announce of { gk : int; clock : Weaver_vclock.Vclock.t }
      (** gatekeeper → gatekeeper: τ-periodic vector-clock exchange (§3.3) *)
  | Shard_tx of {
      gk : int;
      seq : int;
      ts : Weaver_vclock.Vclock.t;
      ops : shard_op list;
      trace : int;
    }
      (** gatekeeper → shard: committed transaction ([ops = []] is a NOP
          keeping the queue head fresh, §4.2); [seq] implements the FIFO
          channel check; [trace] carries the originating request's trace
          id through the envelope (0 = untraced, e.g. NOPs) *)
  | Prog_batch of {
      coord : int;  (** gatekeeper address coordinating the program *)
      prog_id : int;
      ts : Weaver_vclock.Vclock.t;
      prog : string;
      historical : bool;
      items : (string * Progval.t) list;  (** (vertex, params) to visit *)
      sent_at : float;  (** send time, for the [shard.prog_hop] span *)
    }
      (** gatekeeper → shard (start) or shard → shard (hop propagation);
          [historical] marks a query pinned to a past snapshot: reads
          prefer ordering concurrent version stamps *after* the snapshot
          instead of before it (both are serializable; this matches the
          intuition that a time-travel query excludes later writes) *)
  | Prog_partial of {
      prog_id : int;
      sent : int;  (** further [Prog_batch] messages this batch spawned *)
      acc : Progval.t;
      visited : string list;
      error : string option;
          (** [Some reason] fails the whole program run (e.g.
              ["snapshot-gced"]: the requested historical timestamp fell
              below the shard's compaction floor with no pinned snapshot
              covering it); the gatekeeper replies [Error reason] and GCs
              the run *)
    }
      (** shard → coordinating gatekeeper: batch finished; drives
          termination detection by message counting *)
  | Prog_gc of { prog_id : int }
      (** gatekeeper → shards: program done, drop its per-vertex state
          (§4.5) *)
  | Migrate_req of { client : int; tx_id : int; vid : string; to_shard : int }
      (** client → gatekeeper: relocate a vertex (§4.6); acknowledged with
          a [Tx_reply] *)
  | Commit_note of {
      gk : int;
      client : int;
      tx_id : int;
      written : string list;
      reads : (string * Progval.t) list;
    }
      (** gatekeeper → peer gatekeepers, after a commit: invalidate memo
          entries that read any vertex in [written], and remember
          [(client, tx_id)] in the duplicate-suppression window so a retry
          of the same transaction routed to a peer replies [Ok] (with the
          original's [reads]) instead of re-executing *)
  | Heartbeat of { server : int }  (** any server → cluster manager *)
  | Epoch_change of { epoch : int }
      (** manager → all servers: move to a new configuration epoch (§4.3) *)
  | Epoch_ack of { server : int; epoch : int }
  | Watermark of { gk : int; ts : Weaver_vclock.Vclock.t }
      (** gatekeeper → shards and manager: oldest timestamp still in use,
          for multi-version GC (§4.5) *)
  | Overloaded of { req_id : int; reason : string }
      (** gatekeeper → client: the request was shed at admission (overload
          management, {!Weaver_flow.Flow}). [reason] is ["queue"] (the
          admission bound), ["deadline"] (projected wait exceeds the
          deadline budget), or ["credit"] (a target shard's flow-control
          credits are exhausted). Clients surface it as
          [Error "shed:<reason>"], which retry policies treat as a backoff
          signal *)
  | Credit of { shard : int; gk : int; n : int }
      (** shard → gatekeeper, control-plane: [n] forwarded transactions
          were applied; return their flow-control credits. Also reused
          follower-shard → owner-shard under partial replication
          ([Config.enable_replication]): [shard] is then the follower id
          returning a replication-stream credit *)
  | Repl_install of { range : int; owner : int; followers : int list }
      (** replication controller → owner shard, follower shards, and all
          gatekeepers: replicate hot range [range] (owned by [owner]) onto
          [followers]. The owner starts streaming; followers await their
          first [Repl_seed] before advertising coverage *)
  | Repl_update of {
      range : int;
      owner : int;
      ts : Weaver_vclock.Vclock.t;
      ops : shard_op list;
    }
      (** owner shard → follower shard, over the ordinary FIFO channel:
          [ops <> []] streams one applied transaction's writes to the range
          with its commit stamp; [ops = []] is a watermark heartbeat — the
          owner has applied everything at or below [ts], and FIFO order
          guarantees the follower received those updates first *)
  | Repl_seed of {
      range : int;
      owner : int;
      ts : Weaver_vclock.Vclock.t;
      vertices : (string * Weaver_graph.Mgraph.vertex) list;
    }
      (** owner shard → follower shard: full (re)seed of the range at
          watermark [ts] — the owner's multi-version records verbatim
          (immutable, so sharing is safe). Sent at the first watermark
          after install and whenever the stream was interrupted (credit
          exhaustion); subsequent [Repl_update]s apply cleanly on top
          because FIFO order puts them after the seed *)
  | Repl_cover of { range : int; follower : int; ts : Weaver_vclock.Vclock.t }
      (** follower shard → all gatekeepers: this follower's copy of
          [range] now covers every stamp componentwise at or below [ts]
          ({!Weaver_repl.Repl.covers}) *)
  | Batch of t list
      (** [Config.net_batching] coalescing envelope: small control
          messages buffered for one (src, dst) pair within one engine
          tick, in send order. Unpacked into individual handler calls at
          delivery ({!Runtime.register}), so endpoint handlers never
          receive this constructor *)

val pp : Format.formatter -> t -> unit
(** One-line rendering for traces and test failures. *)

val trace_of : t -> int option
(** The trace (request) id this message travels on behalf of: the client
    request id for request/reply pairs, [prog_id] for program fan-out,
    the [trace] field for [Shard_tx]. [None] for control-plane traffic
    (announces, NOPs, heartbeats, epoch barriers, watermarks). *)

val kind : t -> string
(** Constructor name, for message ledgers and per-kind counting. *)
