module Vclock = Weaver_vclock.Vclock
module Engine = Weaver_sim.Engine
module Net = Weaver_sim.Net
module Store = Weaver_store.Store
module Mgraph = Weaver_graph.Mgraph
module Flow = Weaver_flow.Flow
module Heat = Weaver_obs.Heat
module Repl = Weaver_repl.Repl

type prog_run = {
  pr_client : int;
  pr_prog : string;
  pr_params : Progval.t;
  pr_starts : string list;
  pr_ts : Vclock.t;
  pr_memo_key : string option; (* None: historical run or memoization off *)
  pr_historical : bool; (* [at] was set: pinned to a past snapshot *)
  pr_started : float; (* virtual time the run was admitted, for tracing *)
  mutable pr_outstanding : int;
  mutable pr_acc : Progval.t;
  mutable pr_visited : string list;
}

type memo_entry = { m_result : Progval.t; m_reads : string list }

type t = {
  rt : Runtime.t;
  gid : int;
  addr : int;
  mutable clock : Vclock.t;
  mutable epoch : int;
  seqs : int array; (* next FIFO sequence number per shard *)
  cache : Runtime.decision_cache;
  active : (int, prog_run) Hashtbl.t;
  memo : (string, memo_entry) Hashtbl.t;
  (* duplicate suppression: committed (client, tx_id) pairs — local commits
     and peers' commit notes — with the reads their Tx_reply carried, so a
     retry of an already-committed transaction is answered instead of
     re-executed. FIFO-bounded by [Config.dedup_window]. *)
  dedup : (int * int, (string * Progval.t) list) Hashtbl.t;
  dedup_q : (int * int) Queue.t;
  in_progress : (int * int, unit) Hashtbl.t;
  mutable busy_until : float;
  mutable busy_us : float; (* total service time charged — utilization *)
  (* overload management: the admission gate and the per-shard credit
     ledger. Both are inert (pure reads, no sheds) with the default
     all-zero Config knobs, keeping the baseline arm bit-identical. *)
  adm : Flow.Admission.t;
  credits : Flow.Credits.t;
  mutable next_replica : int; (* round-robin over read replicas (§6.4) *)
  (* partial replication of hot ranges ([Config.enable_replication]): the
     controller-installed range → owner/followers table with the coverage
     watermarks the followers advertise. Empty (and never consulted) when
     the subsystem is off. *)
  repl : Repl.Table.t;
  mutable repl_rr : int; (* round-robin over covering followers *)
  mutable cur_tau : float; (* current announce period (adaptive, §3.5) *)
  mutable requests_seen : int; (* client requests since the last window *)
  mutable retired : bool;
}

let gid t = t.gid
let epoch t = t.epoch
let clock t = t.clock

let tick t =
  t.clock <- Vclock.tick t.clock ~origin:t.gid;
  t.clock

let alive t = (not t.retired) && Net.is_alive t.rt.Runtime.net t.addr

let send t ~dst msg = Runtime.send t.rt ~src:t.addr ~dst msg

let cfg t = t.rt.Runtime.cfg
let counters t = t.rt.Runtime.counters
let actor t = "gk" ^ string_of_int t.gid
let now t = Engine.now t.rt.Runtime.engine

(* ------------------------------------------------------------------ *)
(* Transactions (§4.2): validate and execute on the backing store, then
   forward committed write effects to the owning shards. *)

let get_vrec stx vid =
  match Store.Tx.get stx (Runtime.vkey vid) with
  | Some (Runtime.Vrec v) -> Some v
  | _ -> None

let vertex_live_latest (v : Mgraph.vertex) = v.Mgraph.v_life.Mgraph.deleted = None

let edge_live_latest (v : Mgraph.vertex) eid =
  Array.exists
    (fun (e : Mgraph.edge) ->
      String.equal e.Mgraph.eid eid && e.Mgraph.e_life.Mgraph.deleted = None)
    v.Mgraph.out

(* Run the buffered operations against the backing store inside one OCC
   transaction. Returns the shard-bound effects on success. *)
let exec_on_store t ts (ops : Txop.t list) =
  let rt = t.rt in
  let stx = Store.Tx.begin_ rt.Runtime.store in
  let before a b = Runtime.before t.cache rt a b ~prefer_first_on_tie:true in
  let shard_ops : (string * Msg.shard_op) list ref = ref [] in
  let written : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let reads : (string * Progval.t) list ref = ref [] in
  (* summary of a vertex as of this transaction's snapshot: the data a
     Read_vertex hands back to the client *)
  let summarize vid = function
    | None -> Progval.Null
    | Some (v : Mgraph.vertex) ->
        if not (vertex_live_latest v) then Progval.Null
        else
          let live_edges =
            List.filter
              (fun (e : Mgraph.edge) -> e.Mgraph.e_life.Mgraph.deleted = None)
              (Array.to_list v.Mgraph.out)
          in
          let props =
            List.filter_map
              (fun (p : Mgraph.prop) ->
                if p.Mgraph.p_life.Mgraph.deleted = None then
                  Some (p.Mgraph.pkey, Progval.Str p.Mgraph.pval)
                else None)
              (Array.to_list v.Mgraph.v_props)
          in
          Progval.Assoc
            [
              ("vid", Progval.Str vid);
              ("degree", Progval.Int (List.length live_edges));
              ("out", Progval.List (List.map (fun (e : Mgraph.edge) -> Progval.Str e.Mgraph.dst) live_edges));
              ("props", Progval.Assoc props);
            ]
  in
  (* effects carry the vertex id; the owning shard is resolved only after
     the commit, so transactions racing a migration follow the directory
     entry their serialization point sees (§4.6) *)
  let emit vid op =
    Hashtbl.replace written vid ();
    shard_ops := (vid, op) :: !shard_ops
  in
  let put_vrec vid v = Store.Tx.put stx (Runtime.vkey vid) (Runtime.Vrec v) in
  let invalid what = Error (`Invalid what) in
  let rec go = function
    | [] -> Ok ()
    | op :: rest -> (
        let step =
          match (op : Txop.t) with
          | Create_vertex vid -> (
              match get_vrec stx vid with
              | Some v when vertex_live_latest v -> invalid ("vertex exists: " ^ vid)
              | _ ->
                  let v = Mgraph.create_vertex ~vid ~at:ts in
                  put_vrec vid v;
                  let shard =
                    Weaver_partition.Partition.hash_vertex
                      ~shards:(cfg t).Config.n_shards vid
                  in
                  Store.Tx.put stx (Runtime.dirkey vid) (Runtime.Dir shard);
                  emit vid (Msg.S_create_vertex vid);
                  Ok ())
          | Delete_vertex vid -> (
              match get_vrec stx vid with
              | Some v when vertex_live_latest v ->
                  put_vrec vid (Mgraph.delete_vertex v ~at:ts);
                  emit vid (Msg.S_delete_vertex vid);
                  Ok ()
              | _ -> invalid ("no such vertex: " ^ vid))
          | Create_edge { eid; src; dst } -> (
              match (get_vrec stx src, get_vrec stx dst) with
              | Some sv, Some dv when vertex_live_latest sv && vertex_live_latest dv ->
                  put_vrec src (Mgraph.add_edge sv ~eid ~dst ~at:ts);
                  emit src (Msg.S_add_edge { src; eid; dst });
                  Ok ()
              | _ -> invalid ("create_edge endpoints missing: " ^ src ^ "->" ^ dst))
          | Delete_edge { eid; src } -> (
              match get_vrec stx src with
              | Some sv when vertex_live_latest sv && edge_live_latest sv eid ->
                  put_vrec src (Mgraph.delete_edge sv ~eid ~at:ts);
                  emit src (Msg.S_del_edge { src; eid });
                  Ok ()
              | _ -> invalid ("no such edge: " ^ eid))
          | Set_vertex_prop { vid; key; value } -> (
              match get_vrec stx vid with
              | Some v when vertex_live_latest v ->
                  put_vrec vid (Mgraph.set_vertex_prop before v ~key ~value ~at:ts);
                  emit vid (Msg.S_set_vprop { vid; key; value });
                  Ok ()
              | _ -> invalid ("no such vertex: " ^ vid))
          | Del_vertex_prop { vid; key } -> (
              match get_vrec stx vid with
              | Some v when vertex_live_latest v ->
                  put_vrec vid (Mgraph.del_vertex_prop before v ~key ~at:ts);
                  emit vid (Msg.S_del_vprop { vid; key });
                  Ok ()
              | _ -> invalid ("no such vertex: " ^ vid))
          | Set_edge_prop { src; eid; key; value } -> (
              match get_vrec stx src with
              | Some v when vertex_live_latest v && edge_live_latest v eid ->
                  put_vrec src (Mgraph.set_edge_prop before v ~eid ~key ~value ~at:ts);
                  emit src (Msg.S_set_eprop { src; eid; key; value });
                  Ok ()
              | _ -> invalid ("no such edge: " ^ eid))
          | Del_edge_prop { src; eid; key } -> (
              match get_vrec stx src with
              | Some v when vertex_live_latest v && edge_live_latest v eid ->
                  put_vrec src (Mgraph.del_edge_prop before v ~eid ~key ~at:ts);
                  emit src (Msg.S_del_eprop { src; eid; key });
                  Ok ()
              | _ -> invalid ("no such edge: " ^ eid))
          | Read_vertex vid ->
              reads := (vid, summarize vid (get_vrec stx vid)) :: !reads;
              Ok ()
        in
        match step with Ok () -> go rest | Error _ as e -> e)
  in
  match go ops with
  | Error (`Invalid what) ->
      Store.Tx.abort stx;
      Error (`Invalid what)
  | Ok () ->
      (* last-update timestamp checks (§4.2): the new stamp must follow the
         stamp of the latest committed write on every written vertex;
         otherwise abort and let the client retry with a fresher stamp. *)
      let lu_ok =
        Hashtbl.fold
          (fun vid () acc ->
            acc
            &&
            match Store.Tx.get stx (Runtime.lukey vid) with
            | Some (Runtime.Stamp lu) ->
                Runtime.before t.cache t.rt lu ts ~prefer_first_on_tie:true
            | _ -> true)
          written true
      in
      if not lu_ok then begin
        Store.Tx.abort stx;
        Error `Stale_timestamp
      end
      else begin
        Hashtbl.iter
          (fun vid () -> Store.Tx.put stx (Runtime.lukey vid) (Runtime.Stamp ts))
          written;
        (* hand the open transaction back: the commit happens after the
           store round trip, during which other gatekeepers' transactions
           may invalidate our read set (real OCC interleaving) *)
        Ok (stx, !shard_ops, written, List.rev !reads)
      end

let invalidate_memo_where t ~touched ~count =
  if (cfg t).Config.enable_memoization then begin
    let doomed =
      Hashtbl.fold
        (fun key entry acc ->
          if List.exists touched entry.m_reads then key :: acc else acc)
        t.memo []
    in
    List.iter
      (fun k ->
        Hashtbl.remove t.memo k;
        count ())
      doomed
  end

let invalidate_memo t written =
  invalidate_memo_where t
    ~touched:(fun vid -> Hashtbl.mem written vid)
    ~count:(fun () ->
      (counters t).Runtime.memo_invalidations <-
        (counters t).Runtime.memo_invalidations + 1)

(* a peer gatekeeper committed a write: its commit note closes the
   cross-gatekeeper staleness hole — without it, a memo entry filled on
   this gatekeeper would keep serving strong reads that miss the write *)
let invalidate_memo_remote t written =
  invalidate_memo_where t
    ~touched:(fun vid -> List.mem vid written)
    ~count:(fun () ->
      (counters t).Runtime.memo_remote_invalidations <-
        (counters t).Runtime.memo_remote_invalidations + 1)

let record_dedup t ~client ~tx_id ~reads =
  let window = (cfg t).Config.dedup_window in
  if window > 0 then begin
    let key = (client, tx_id) in
    if not (Hashtbl.mem t.dedup key) then begin
      Hashtbl.replace t.dedup key reads;
      Queue.push key t.dedup_q;
      while Queue.length t.dedup_q > window do
        Hashtbl.remove t.dedup (Queue.pop t.dedup_q)
      done
    end
  end

(* tell the peer gatekeepers about a commit: written-vertex set for memo
   invalidation, (client, tx_id, reads) for duplicate suppression *)
let broadcast_commit_note t ~client ~tx_id ~written ~reads =
  let n_g = (cfg t).Config.n_gatekeepers in
  if n_g > 1 then
    for g = 0 to n_g - 1 do
      if g <> t.gid then
        send t ~dst:(Runtime.gk_addr t.rt g)
          (Msg.Commit_note { gk = t.gid; client; tx_id; written; reads })
    done

(* A revival after a network partition (fault-plan [Restart]) may have
   missed peers' commit notes, so the memo table can hold entries no note
   will ever invalidate: drop it wholesale. The dedup window stays — its
   entries record durable commits, which remain true. *)
let on_revive t = Hashtbl.reset t.memo

(* a duplicate of an already-committed transaction: answer with the
   original outcome instead of re-executing (the retried create_vertex
   would otherwise come back "invalid: vertex exists") *)
let reply_from_dedup t ~client ~tx_id ~name reads =
  (counters t).Runtime.dedup_hits <- (counters t).Runtime.dedup_hits + 1;
  Runtime.trace_span t.rt ~trace:tx_id ~name ~actor:(actor t) ~start:(now t)
    ~stop:(now t) ~meta:[ ("dedup", "hit") ] ();
  send t ~dst:client (Msg.Tx_reply { tx_id; result = Ok (); reads })

let handle_tx_req t ~client ~tx_id ops =
  let ts = tick t in
  let epoch_at_start = t.epoch in
  let t0 = now t in
  let key = (client, tx_id) in
  (* one store round trip to read and buffer, one to validate and commit;
     the gatekeeper keeps serving other requests meanwhile, and other
     transactions may commit between the two phases (OCC) *)
  let phase_cost =
    (cfg t).Config.store_op_cost *. float_of_int (1 + List.length ops)
  in
  let reply ?(reads = []) result =
    Hashtbl.remove t.in_progress key;
    let fin = now t in
    Runtime.observe t.rt "gk.tx_service" (fin -. t0);
    Runtime.trace_span t.rt ~trace:tx_id ~name:"gk.tx" ~actor:(actor t) ~start:t0
      ~stop:fin
      ~meta:[ ("result", match result with Ok () -> "ok" | Error e -> e) ]
      ();
    send t ~dst:client (Msg.Tx_reply { tx_id; result; reads })
  in
  let store_span ~phase ~start =
    let stop = now t in
    Runtime.observe t.rt "gk.store_rtt" (stop -. start);
    Runtime.trace_span t.rt ~trace:tx_id ~name:"store.round_trip" ~actor:"store"
      ~start ~stop ~meta:[ ("phase", phase) ] ()
  in
  let abort_counted () =
    (counters t).Runtime.tx_aborted <- (counters t).Runtime.tx_aborted + 1;
    reply (Error "conflict")
  in
  match Hashtbl.find_opt t.dedup key with
  | Some reads -> reply_from_dedup t ~client ~tx_id ~name:"gk.tx" reads
  | None when Hashtbl.mem t.in_progress key ->
      (* the original attempt is still mid-flight on this gatekeeper; its
         reply (or this client's timeout) resolves the request — executing
         the duplicate too would double-apply *)
      (counters t).Runtime.dedup_dropped <- (counters t).Runtime.dedup_dropped + 1
  | None ->
  Hashtbl.replace t.in_progress key ();
  Engine.schedule t.rt.Runtime.engine ~delay:phase_cost (fun () ->
      store_span ~phase:"read" ~start:t0;
      if not (alive t) then Hashtbl.remove t.in_progress key
      else if t.epoch <> epoch_at_start then reply (Error "epoch-change")
        else begin
          match exec_on_store t ts ops with
          | Ok (stx, shard_ops, written, reads) ->
              let p2_start = now t in
              Engine.schedule t.rt.Runtime.engine ~delay:phase_cost (fun () ->
                  store_span ~phase:"commit" ~start:p2_start;
                  if not (alive t) then begin
                    Hashtbl.remove t.in_progress key;
                    Store.Tx.abort stx
                  end
                  else if t.epoch <> epoch_at_start then begin
                    Store.Tx.abort stx;
                    reply (Error "epoch-change")
                  end
                  else begin
                    match Store.Tx.commit stx with
                    | Error (`Conflict _) -> abort_counted ()
                    | Ok () ->
                        (counters t).Runtime.tx_committed <-
                          (counters t).Runtime.tx_committed + 1;
                        (* group effects by owning shard (directory read
                           post-commit); forward over FIFO channels *)
                        let by_shard = Hashtbl.create 4 in
                        List.iter
                          (fun (vid, op) ->
                            let shard = Runtime.shard_of_vertex t.rt vid in
                            let l =
                              try Hashtbl.find by_shard shard with Not_found -> []
                            in
                            Hashtbl.replace by_shard shard (op :: l))
                          (List.rev shard_ops);
                        (* a commit that fans out to more than one shard is
                           a cross-shard transaction: record a cross touch
                           per affected vertex so the heat map can separate
                           skew that partitioning could fix from load that
                           replication must absorb *)
                        if Hashtbl.length by_shard > 1 then
                          List.iter
                            (fun (vid, _) -> Runtime.heat_cross t.rt vid)
                            shard_ops;
                        Hashtbl.iter
                          (fun shard rev_ops ->
                            let ops = List.rev rev_ops in
                            t.seqs.(shard) <- t.seqs.(shard) + 1;
                            (counters t).Runtime.shard_tx_msgs <-
                              (counters t).Runtime.shard_tx_msgs + 1;
                            (* spend a flow-control credit; the shard
                               refunds it when it applies the tx *)
                            Flow.Credits.consume t.credits shard;
                            send t
                              ~dst:(Runtime.shard_addr t.rt shard)
                              (Msg.Shard_tx
                                 { gk = t.gid; seq = t.seqs.(shard); ts; ops; trace = tx_id }))
                          by_shard;
                        invalidate_memo t written;
                        record_dedup t ~client ~tx_id ~reads;
                        let written_l =
                          Hashtbl.fold (fun vid () acc -> vid :: acc) written []
                        in
                        broadcast_commit_note t ~client ~tx_id ~written:written_l
                          ~reads;
                        reply ~reads (Ok ())
                  end)
          | Error `Stale_timestamp -> abort_counted ()
          | Error (`Invalid what) ->
              (counters t).Runtime.tx_invalid <- (counters t).Runtime.tx_invalid + 1;
              reply (Error ("invalid: " ^ what))
        end)

(* Relocate a vertex to another shard (dynamic colocation, §4.6): a store
   transaction moves the directory entry (OCC against concurrent writers),
   then timestamp-ordered migrate ops tell the old owner to drop its copy
   and the new owner to adopt from the backing store. *)
let handle_migrate_req t ~client ~tx_id ~vid ~to_shard =
  let ts = tick t in
  (* like the tx path: remember the epoch the timestamp and the FIFO
     sequence numbers belong to. An epoch change while the store round
     trip is in flight zeroes [t.seqs]; completing the migration with the
     stale stamp would then desynchronize the per-gatekeeper FIFO at both
     shards, so bail out instead and let the client retry *)
  let epoch_at_start = t.epoch in
  let t0 = now t in
  let key = (client, tx_id) in
  let reply result =
    Hashtbl.remove t.in_progress key;
    let fin = now t in
    Runtime.observe t.rt "gk.tx_service" (fin -. t0);
    Runtime.trace_span t.rt ~trace:tx_id ~name:"gk.migrate" ~actor:(actor t)
      ~start:t0 ~stop:fin
      ~meta:[ ("vid", vid); ("result", match result with Ok () -> "ok" | Error e -> e) ]
      ();
    send t ~dst:client (Msg.Tx_reply { tx_id; result; reads = [] })
  in
  match Hashtbl.find_opt t.dedup key with
  | Some _ -> reply_from_dedup t ~client ~tx_id ~name:"gk.migrate" []
  | None when Hashtbl.mem t.in_progress key ->
      (counters t).Runtime.dedup_dropped <- (counters t).Runtime.dedup_dropped + 1
  | None ->
  if to_shard < 0 || to_shard >= (cfg t).Config.n_shards then
    reply (Error "invalid: no such shard")
  else begin
    Hashtbl.replace t.in_progress key ();
    let cost = (cfg t).Config.store_op_cost *. 3.0 in
    Engine.schedule t.rt.Runtime.engine ~delay:cost (fun () ->
        Runtime.observe t.rt "gk.store_rtt" (now t -. t0);
        Runtime.trace_span t.rt ~trace:tx_id ~name:"store.round_trip" ~actor:"store"
          ~start:t0 ~stop:(now t) ~meta:[ ("phase", "migrate") ] ();
        if not (alive t) then Hashtbl.remove t.in_progress key
        else if t.epoch <> epoch_at_start then reply (Error "epoch-change")
          else begin
          let from_shard = Runtime.shard_of_vertex t.rt vid in
          let stx = Store.Tx.begin_ t.rt.Runtime.store in
          match get_vrec stx vid with
          | Some v when vertex_live_latest v ->
              if from_shard = to_shard then begin
                Store.Tx.abort stx;
                (* a no-op is still a committed outcome: without the dedup
                   entry (and the note telling peer gatekeepers), a retry
                   whose first reply was lost would re-execute and could
                   observe a different [from_shard] after a racing move *)
                record_dedup t ~client ~tx_id ~reads:[];
                broadcast_commit_note t ~client ~tx_id ~written:[] ~reads:[];
                reply (Ok ())
              end
              else begin
                Store.Tx.put stx (Runtime.dirkey vid) (Runtime.Dir to_shard);
                (match Store.Tx.get stx (Runtime.lukey vid) with
                | Some (Runtime.Stamp _) | None | Some _ ->
                    Store.Tx.put stx (Runtime.lukey vid) (Runtime.Stamp ts));
                match Store.Tx.commit stx with
                | Error (`Conflict _) ->
                    (counters t).Runtime.tx_aborted <- (counters t).Runtime.tx_aborted + 1;
                    reply (Error "conflict")
                | Ok () ->
                    t.seqs.(from_shard) <- t.seqs.(from_shard) + 1;
                    Flow.Credits.consume t.credits from_shard;
                    send t
                      ~dst:(Runtime.shard_addr t.rt from_shard)
                      (Msg.Shard_tx
                         {
                           gk = t.gid;
                           seq = t.seqs.(from_shard);
                           ts;
                           ops = [ Msg.S_migrate_out vid ];
                           trace = tx_id;
                         });
                    t.seqs.(to_shard) <- t.seqs.(to_shard) + 1;
                    Flow.Credits.consume t.credits to_shard;
                    send t
                      ~dst:(Runtime.shard_addr t.rt to_shard)
                      (Msg.Shard_tx
                         {
                           gk = t.gid;
                           seq = t.seqs.(to_shard);
                           ts;
                           ops = [ Msg.S_migrate_in vid ];
                           trace = tx_id;
                         });
                    (counters t).Runtime.shard_tx_msgs <-
                      (counters t).Runtime.shard_tx_msgs + 2;
                    (counters t).Runtime.migrations <- (counters t).Runtime.migrations + 1;
                    record_dedup t ~client ~tx_id ~reads:[];
                    broadcast_commit_note t ~client ~tx_id ~written:[] ~reads:[];
                    reply (Ok ())
              end
          | _ ->
              Store.Tx.abort stx;
              reply (Error ("invalid: no such vertex: " ^ vid))
        end)
  end

(* ------------------------------------------------------------------ *)
(* Node programs (§4.1): stamp, fan out to the shards owning the start
   vertices, count outstanding batches for termination detection. *)

(* The memo key must cover everything the result depends on. [weak] runs
   may observe stale replica state, so they can never share entries with
   strong runs. Historical runs ([at] set) are pinned to an arbitrary past
   snapshot: a memo entry computed against the latest state must not
   answer them — nor may their snapshot-bound result poison the cache for
   current reads — so they bypass memoization entirely (each [at] stamp
   is essentially unique; caching per stamp would never hit anyway). *)
let memo_key prog params starts ~weak =
  (if weak then "weak!" else "strong!")
  ^ prog ^ "?" ^ Progval.key params ^ "@" ^ String.concat "," starts

let handle_prog_req t ~client ~prog_id ~prog ~params ~starts ~at ~weak =
  match Nodeprog.find t.rt.Runtime.registry prog with
  | None ->
      send t ~dst:client
        (Msg.Prog_reply { prog_id; result = Error ("unknown program: " ^ prog) })
  | Some (module P : Nodeprog.PROGRAM) -> (
      let historical = Option.is_some at in
      let memoizable = (cfg t).Config.enable_memoization && not historical in
      let mkey =
        if memoizable then Some (memo_key prog params starts ~weak) else None
      in
      match
        match mkey with Some k -> Hashtbl.find_opt t.memo k | None -> None
      with
      | Some entry ->
          (counters t).Runtime.memo_hits <- (counters t).Runtime.memo_hits + 1;
          (counters t).Runtime.progs_completed <-
            (counters t).Runtime.progs_completed + 1;
          Runtime.trace_span t.rt ~trace:prog_id ~name:"gk.prog" ~actor:(actor t)
            ~start:(now t) ~stop:(now t) ~meta:[ ("memo", "hit") ] ();
          send t ~dst:client (Msg.Prog_reply { prog_id; result = Ok entry.m_result })
      | None ->
          let n_replicas = (cfg t).Config.read_replicas in
          let snapshot_routed = historical && (cfg t).Config.snapshot_reads in
          (* Partial replication (ROADMAP item 3, [Weaver_repl]): when the
             cluster has installed follower copies of hot ranges, read-only
             work can be served by them instead of the owner. A follower is
             safe for any stamp its replication watermark covers, so:
             historical runs go to any live copy covering their pinned
             stamp, and weak runs are re-stamped at the componentwise
             minimum of the chosen followers' watermarks — a stamp every
             one of them covers by construction. Fresh strong reads never
             route here: a stamp minted now is never covered by a watermark
             gossiped earlier, so they keep the legacy owner path. *)
          let repl_heat =
            if (cfg t).Config.enable_replication && Repl.Table.size t.repl > 0
            then t.rt.Runtime.heat
            else None
          in
          let alive_shard s =
            Net.is_alive t.rt.Runtime.net (Runtime.shard_addr t.rt s)
          in
          let rotate l =
            t.repl_rr <- t.repl_rr + 1;
            List.nth l (t.repl_rr mod List.length l)
          in
          (* weak plan: one live, coverage-advertising follower per start
             range — or None (any uncovered start falls back wholesale:
             mixing re-stamped and fresh-stamped batches in one run would
             not be one consistent cut) *)
          let weak_choices =
            match repl_heat with
            | Some h when weak && not historical ->
                let choices = Hashtbl.create 4 in
                let ok =
                  List.for_all
                    (fun vid ->
                      let range = Heat.range_of h vid in
                      Hashtbl.mem choices range
                      ||
                      let live =
                        List.filter_map
                          (fun (f, wm) ->
                            match wm with
                            | Some wm
                              when wm.Vclock.epoch = t.epoch && alive_shard f
                              ->
                                Some (f, wm)
                            | _ -> None)
                          (Repl.Table.followers t.repl ~range)
                      in
                      match live with
                      | [] -> false
                      | _ ->
                          Hashtbl.replace choices range (rotate live);
                          true)
                    starts
                in
                if ok && Hashtbl.length choices > 0 then Some choices else None
            | _ -> None
          in
          let ts =
            match at with
            | Some ts -> ts
            | None -> (
                match weak_choices with
                | Some choices -> (
                    match
                      Hashtbl.fold
                        (fun _ (_, wm) acc ->
                          match acc with
                          | None -> Some wm
                          | Some m -> Some (Runtime.stamp_min m wm))
                        choices None
                    with
                    | Some ts -> ts
                    | None -> tick t)
                | None -> tick t)
          in
          let run =
            {
              pr_client = client;
              pr_prog = prog;
              pr_params = params;
              pr_starts = starts;
              pr_ts = ts;
              pr_memo_key = mkey;
              pr_historical = historical;
              pr_started = now t;
              pr_outstanding = 0;
              pr_acc = P.empty;
              pr_visited = [];
            }
          in
          Hashtbl.replace t.active prog_id run;
          let batch items =
            Msg.Prog_batch
              {
                coord = t.addr;
                prog_id;
                ts;
                prog;
                historical;
                items;
                sent_at = now t;
              }
          in
          (match (weak_choices, repl_heat) with
          | Some choices, Some h ->
              (* replication-routed weak run: every start range has a
                 chosen follower; the whole run reads the re-stamped cut *)
              let by_dst = Hashtbl.create 4 in
              let routed = Hashtbl.create 4 in
              List.iter
                (fun vid ->
                  let owner = Runtime.shard_of_vertex t.rt vid in
                  let dst, is_follower =
                    match Hashtbl.find_opt choices (Heat.range_of h vid) with
                    | Some (f, _) -> (f, f <> owner)
                    | None -> (owner, false)
                  in
                  let l = try Hashtbl.find by_dst dst with Not_found -> [] in
                  Hashtbl.replace by_dst dst ((vid, params) :: l);
                  if is_follower then Hashtbl.replace routed dst ())
                starts;
              Hashtbl.iter
                (fun shard items ->
                  run.pr_outstanding <- run.pr_outstanding + 1;
                  (counters t).Runtime.prog_batch_msgs <-
                    (counters t).Runtime.prog_batch_msgs + 1;
                  if Hashtbl.mem routed shard then
                    (counters t).Runtime.repl_routed <-
                      (counters t).Runtime.repl_routed + 1;
                  send t ~dst:(Runtime.shard_addr t.rt shard) (batch items))
                by_dst
          | None, Some h when historical && not snapshot_routed ->
              (* pinned stamp: rotate each start over the live copies that
                 cover it — owner plus covering followers. With the owner
                 crashed, covered reads keep flowing to the survivors. *)
              let by_dst = Hashtbl.create 4 in
              let routed = Hashtbl.create 4 in
              List.iter
                (fun vid ->
                  let owner = Runtime.shard_of_vertex t.rt vid in
                  let range = Heat.range_of h vid in
                  let covering =
                    List.filter
                      (fun f -> f <> owner && alive_shard f)
                      (Repl.Table.covering t.repl ~range ~at:ts)
                  in
                  let cands =
                    if alive_shard owner then owner :: covering else covering
                  in
                  let dst, is_follower =
                    match cands with
                    | [] -> (owner, false)
                    | [ only ] -> (only, only <> owner)
                    | _ ->
                        let f = rotate cands in
                        (f, f <> owner)
                  in
                  let l = try Hashtbl.find by_dst dst with Not_found -> [] in
                  Hashtbl.replace by_dst dst ((vid, params) :: l);
                  if is_follower then Hashtbl.replace routed dst ())
                starts;
              Hashtbl.iter
                (fun shard items ->
                  run.pr_outstanding <- run.pr_outstanding + 1;
                  (counters t).Runtime.prog_batch_msgs <-
                    (counters t).Runtime.prog_batch_msgs + 1;
                  if Hashtbl.mem routed shard then
                    (counters t).Runtime.repl_routed <-
                      (counters t).Runtime.repl_routed + 1;
                  send t ~dst:(Runtime.shard_addr t.rt shard) (batch items))
                by_dst
          | _ ->
              let by_shard = Hashtbl.create 4 in
              List.iter
                (fun vid ->
                  let shard = Runtime.shard_of_vertex t.rt vid in
                  let l = try Hashtbl.find by_shard shard with Not_found -> [] in
                  Hashtbl.replace by_shard shard ((vid, params) :: l))
                starts;
              (* weak reads rotate across the primary and its read replicas,
                 so every replica adds read capacity (§6.4) — except
                 historical reads when snapshot serving is on: only
                 primaries publish and pin snapshots, so route those to the
                 primary where they run lock-free instead of against a
                 replica's unversioned-floor state *)
              let slot =
                if weak && n_replicas > 0 && not snapshot_routed then begin
                  (* skip rotation slots with a crashed replica on any
                     target shard: a read routed to a dead endpoint burns
                     the client's whole timeout before it retries. The
                     primary slot is always eligible, and with every
                     replica alive the rotation is unchanged. *)
                  let eligible slot =
                    slot >= n_replicas
                    || Hashtbl.fold
                         (fun shard _ acc ->
                           acc
                           && Net.is_alive t.rt.Runtime.net
                                (Runtime.replica_addr t.rt ~shard ~replica:slot))
                         by_shard true
                  in
                  let rec advance tries =
                    t.next_replica <- (t.next_replica + 1) mod (n_replicas + 1);
                    if eligible t.next_replica || tries = 0 then t.next_replica
                    else advance (tries - 1)
                  in
                  advance n_replicas
                end
                else n_replicas (* the primary *)
              in
              Hashtbl.iter
                (fun shard items ->
                  run.pr_outstanding <- run.pr_outstanding + 1;
                  (counters t).Runtime.prog_batch_msgs <-
                    (counters t).Runtime.prog_batch_msgs + 1;
                  let dst =
                    if slot < n_replicas then
                      Runtime.replica_addr t.rt ~shard ~replica:slot
                    else Runtime.shard_addr t.rt shard
                  in
                  send t ~dst (batch items))
                by_shard);
          if run.pr_outstanding = 0 then begin
            (* no live start vertices: answer immediately *)
            Hashtbl.remove t.active prog_id;
            (counters t).Runtime.progs_completed <-
              (counters t).Runtime.progs_completed + 1;
            send t ~dst:client (Msg.Prog_reply { prog_id; result = Ok P.empty })
          end)

let handle_prog_partial t ~prog_id ~sent ~acc ~visited ~error =
  match Hashtbl.find_opt t.active prog_id with
  | None -> () (* stale partial from a pre-epoch run *)
  | Some run -> (
      match error with
      | Some reason ->
          (* a shard failed the whole run (e.g. "snapshot-gced": the
             requested historical timestamp fell below its compaction
             floor). Fail fast and retryably; partials from other shards
             arriving after the removal are dropped as stale. *)
          Hashtbl.remove t.active prog_id;
          Runtime.trace_span t.rt ~trace:prog_id ~name:"gk.prog" ~actor:(actor t)
            ~start:run.pr_started ~stop:(now t)
            ~meta:[ ("prog", run.pr_prog); ("error", reason) ]
            ();
          send t ~dst:run.pr_client
            (Msg.Prog_reply { prog_id; result = Error reason });
          for s = 0 to (cfg t).Config.n_shards - 1 do
            send t ~dst:(Runtime.shard_addr t.rt s) (Msg.Prog_gc { prog_id });
            for r = 0 to (cfg t).Config.read_replicas - 1 do
              send t
                ~dst:(Runtime.replica_addr t.rt ~shard:s ~replica:r)
                (Msg.Prog_gc { prog_id })
            done
          done
      | None -> (
      match Nodeprog.find t.rt.Runtime.registry run.pr_prog with
      | None -> ()
      | Some (module P : Nodeprog.PROGRAM) ->
          run.pr_outstanding <- run.pr_outstanding + sent - 1;
          run.pr_acc <- P.merge run.pr_acc acc;
          run.pr_visited <- List.rev_append visited run.pr_visited;
          if run.pr_outstanding = 0 then begin
            Hashtbl.remove t.active prog_id;
            (counters t).Runtime.progs_completed <-
              (counters t).Runtime.progs_completed + 1;
            Runtime.observe t.rt "gk.prog_service" (now t -. run.pr_started);
            Runtime.trace_span t.rt ~trace:prog_id ~name:"gk.prog" ~actor:(actor t)
              ~start:run.pr_started ~stop:(now t)
              ~meta:[ ("prog", run.pr_prog) ]
              ();
            send t ~dst:run.pr_client
              (Msg.Prog_reply { prog_id; result = Ok run.pr_acc });
            (* release per-vertex program state on every shard (§4.5) *)
            for s = 0 to (cfg t).Config.n_shards - 1 do
              send t ~dst:(Runtime.shard_addr t.rt s) (Msg.Prog_gc { prog_id });
              for r = 0 to (cfg t).Config.read_replicas - 1 do
                send t
                  ~dst:(Runtime.replica_addr t.rt ~shard:s ~replica:r)
                  (Msg.Prog_gc { prog_id })
              done
            done;
            (* only non-historical runs ever carry a memo key (see
               [memo_key]): a snapshot-bound result must not serve, or be
               served to, current reads *)
            match run.pr_memo_key with
            | Some k ->
                Hashtbl.replace t.memo k
                  { m_result = run.pr_acc; m_reads = run.pr_visited }
            | None -> ()
          end))

(* ------------------------------------------------------------------ *)
(* Epochs and failure handling (§4.3). *)

(* The memo table deliberately survives the barrier: entries were computed
   from committed (durable) state, local invalidation covers this
   gatekeeper's writes, and peers' commit notes — valid across epochs —
   cover theirs. Only a revival that was partitioned from those notes has
   to flush ([on_revive]). In-flight transactions clear their own
   [in_progress] entries through their reply paths (every exit replies or
   removes explicitly), so no sweep is needed here either. *)
let handle_epoch_change t new_epoch =
  if new_epoch > t.epoch then begin
    t.epoch <- new_epoch;
    t.clock <-
      Vclock.make ~epoch:new_epoch ~origin:t.gid
        (Array.make (cfg t).Config.n_gatekeepers 0);
    Array.fill t.seqs 0 (Array.length t.seqs) 0;
    (* the barrier cleared every shard queue: outstanding Shard_txs (and
       the refunds they owed) are gone, so refill the credit ledger *)
    Flow.Credits.reset t.credits;
    (* replication watermarks are pre-barrier stamps: they can never cover
       a post-barrier read, and the followers re-advertise once their
       owners reseed them in the new epoch *)
    Repl.Table.clear_wms t.repl;
    (* in-flight programs are lost; clients re-submit (§4.3) *)
    Hashtbl.iter
      (fun prog_id run ->
        send t ~dst:run.pr_client
          (Msg.Prog_reply { prog_id; result = Error "epoch-change" }))
      t.active;
    Hashtbl.reset t.active;
    send t ~dst:(Runtime.manager_addr t.rt)
      (Msg.Epoch_ack { server = t.addr; epoch = new_epoch })
  end

(* ------------------------------------------------------------------ *)

let oldest_active_stamp t =
  (* With snapshot serving on, historical runs do NOT hold the watermark
     back: their reads come from pinned immutable snapshots (or fail with
     the retryable "snapshot-gced" when none covers them — by then the
     shard has published a snapshot that does, so the retry pins it).
     This is the point of the subsystem: a long-running analytics query at
     an old timestamp no longer stalls multi-version GC cluster-wide.
     Without snapshots they keep today's behavior and clamp the gossip. *)
  let snap = (cfg t).Config.snapshot_reads in
  Hashtbl.fold
    (fun _ run acc ->
      if snap && run.pr_historical then acc
      else
        match acc with
        | None -> Some run.pr_ts
        | Some m -> Some (Runtime.stamp_min m run.pr_ts))
    t.active None
  |> Option.value ~default:t.clock

(* Client requests occupy the gatekeeper for [gk_op_cost] µs each
   (timestamping and dispatch are serialized on its CPU); control-plane
   traffic (announces, partials, epochs) is handled by separate threads in
   the real system and is not charged. This serial admission is what makes
   gatekeepers the bottleneck for vertex-local reads (Fig. 12). *)
let admit t ~trace work =
  t.requests_seen <- t.requests_seen + 1;
  let arrived = Engine.now t.rt.Runtime.engine in
  let start = Float.max arrived t.busy_until in
  t.busy_until <- start +. (cfg t).Config.gk_op_cost;
  t.busy_us <- t.busy_us +. (cfg t).Config.gk_op_cost;
  Engine.schedule_at t.rt.Runtime.engine ~time:t.busy_until (fun () ->
      if not t.retired then begin
        let served = Engine.now t.rt.Runtime.engine in
        (* wait in the serial admission queue plus the admission service
           itself — the gatekeeper-bottleneck phase of Fig. 12 *)
        Runtime.observe t.rt "gk.admission_wait" (served -. arrived);
        Runtime.trace_span t.rt ~trace ~name:"gk.admission" ~actor:(actor t)
          ~start:arrived ~stop:served ();
        work ()
      end)

(* ------------------------------------------------------------------ *)
(* Overload management (Weaver_flow): decide, per client request and
   BEFORE the serial admission queue, whether to shed it. Shedding early
   answers the client in one network round trip while the request has
   consumed nothing but this check — the alternative is a downstream
   timeout after the request held a queue slot, store round trips, and
   shard FIFO space. Only the three client request kinds pass through
   here: everything else is control traffic (Flow.priority_of_kind =
   Control) and is never shed, so refinement (announces, NOPs), failure
   detection (heartbeats), and commit propagation keep flowing at any
   offered load. *)

let shed t ~client ~req_id ~reason =
  let c = counters t in
  (match reason with
  | "queue" -> c.Runtime.shed_queue_full <- c.Runtime.shed_queue_full + 1
  | "deadline" -> c.Runtime.shed_deadline <- c.Runtime.shed_deadline + 1
  | _ -> c.Runtime.shed_credit <- c.Runtime.shed_credit + 1);
  Runtime.trace_span t.rt ~trace:req_id ~name:"gk.shed" ~actor:(actor t)
    ~start:(now t) ~stop:(now t) ~meta:[ ("reason", reason) ] ();
  send t ~dst:client (Msg.Overloaded { req_id; reason })

(* [target_shards] is a thunk: resolving write targets reads the store
   directory, which is pointless (and avoidable work) unless credits are
   actually configured *)
let flow_gate t ~target_shards =
  match Flow.Admission.decide t.adm ~now:(now t) ~busy_until:t.busy_until with
  | Flow.Admission.Shed_queue_full -> Some "queue"
  | Flow.Admission.Shed_deadline -> Some "deadline"
  | Flow.Admission.Admit ->
      if
        Flow.Credits.enabled t.credits
        && List.exists (Flow.Credits.exhausted t.credits) (target_shards ())
      then Some "credit"
      else None

(* the shards a transaction's writes will fan out to if it commits — the
   columns whose credits must not already be exhausted *)
let tx_target_shards t ops () =
  List.filter_map Txop.written_vertex ops
  |> List.map (Runtime.shard_of_vertex t.rt)
  |> List.sort_uniq compare

let migrate_target_shards t ~vid ~to_shard () =
  let from_shard = Runtime.shard_of_vertex t.rt vid in
  if to_shard >= 0 && to_shard < (cfg t).Config.n_shards then
    List.sort_uniq compare [ from_shard; to_shard ]
  else [ from_shard ]

(* a retry of a known (committed or in-flight) transaction bypasses the
   gate: it is answered from the dedup window or dropped, both cheap, and
   shedding it would make duplicate suppression racy under load *)
let known_duplicate t ~client ~tx_id =
  Hashtbl.mem t.dedup (client, tx_id) || Hashtbl.mem t.in_progress (client, tx_id)

let handle t ~src:_ msg =
  if not t.retired then
    match (msg : Msg.t) with
    | Msg.Tx_req { client; tx_id; ops } -> (
        let verdict =
          if known_duplicate t ~client ~tx_id then None
          else flow_gate t ~target_shards:(tx_target_shards t ops)
        in
        match verdict with
        | Some reason -> shed t ~client ~req_id:tx_id ~reason
        | None -> admit t ~trace:tx_id (fun () -> handle_tx_req t ~client ~tx_id ops))
    | Msg.Prog_req { client; prog_id; prog; params; starts; at; weak } -> (
        (* read-only: no shard credits at stake, admission limits only *)
        match flow_gate t ~target_shards:(fun () -> []) with
        | Some reason -> shed t ~client ~req_id:prog_id ~reason
        | None ->
            admit t ~trace:prog_id (fun () ->
                handle_prog_req t ~client ~prog_id ~prog ~params ~starts ~at ~weak))
    | Msg.Migrate_req { client; tx_id; vid; to_shard } -> (
        let verdict =
          if known_duplicate t ~client ~tx_id then None
          else flow_gate t ~target_shards:(migrate_target_shards t ~vid ~to_shard)
        in
        match verdict with
        | Some reason -> shed t ~client ~req_id:tx_id ~reason
        | None ->
            admit t ~trace:tx_id (fun () ->
                handle_migrate_req t ~client ~tx_id ~vid ~to_shard))
    | Msg.Credit { shard; gk = _; n } ->
        (* control-plane, like announces: a shard applied [n] of our
           forwarded transactions; their flow-control credits return *)
        Flow.Credits.refund t.credits shard n
    | Msg.Announce { gk = _; clock } ->
        if clock.Vclock.epoch = t.epoch then t.clock <- Vclock.merge t.clock clock
    | Msg.Commit_note { gk = _; client; tx_id; written; reads } ->
        (* control-plane, like announces: handled off the admission queue.
           Valid across epochs — the note reports a durable store commit *)
        record_dedup t ~client ~tx_id ~reads;
        invalidate_memo_remote t written
    | Msg.Prog_partial { prog_id; sent; acc; visited; error } ->
        handle_prog_partial t ~prog_id ~sent ~acc ~visited ~error
    | Msg.Epoch_change { epoch } -> handle_epoch_change t epoch
    | Msg.Repl_install { range; owner; followers } ->
        (* control-plane: the controller re-broadcasts its whole plan every
           round to heal restarts, so only the first install may register —
           re-installing would forget the followers' advertised watermarks
           and stall routing until their next heartbeat *)
        if not (Repl.Table.is_replicated t.repl ~range) then
          Repl.Table.install t.repl ~range ~owner ~followers
    | Msg.Repl_cover { range; follower; ts } ->
        (* a follower advertises coverage through [ts]; stamps from an
           older epoch can never cover post-barrier reads, so drop them *)
        if ts.Vclock.epoch = t.epoch then
          Repl.Table.set_wm t.repl ~range ~follower ts
    | _ -> ()

let start_timers t =
  let rt = t.rt in
  let engine = rt.Runtime.engine in
  let n_g = (cfg t).Config.n_gatekeepers in
  (* τ-periodic vector clock announcements (§3.3); with adaptive_tau the
     period tracks the request rate (§3.5): a gatekeeper seeing r requests
     per window aims for about one announce round per few requests, within
     [10 µs, 100 ms] — quiescent systems barely announce, busy ones often *)
  let rec announce_round () =
    if not t.retired then begin
      if alive t then
        for g = 0 to n_g - 1 do
          if g <> t.gid then begin
            (counters t).Runtime.announce_msgs <-
              (counters t).Runtime.announce_msgs + 1;
            send t ~dst:(Runtime.gk_addr rt g)
              (Msg.Announce { gk = t.gid; clock = t.clock })
          end
        done;
      if (cfg t).Config.adaptive_tau then begin
        let seen = t.requests_seen in
        t.requests_seen <- 0;
        let target =
          if seen = 0 then t.cur_tau *. 2.0 (* quiescent: back off *)
          else t.cur_tau *. (4.0 /. float_of_int seen)
        in
        (* smooth and clamp *)
        t.cur_tau <- Float.max 10.0 (Float.min 100_000.0 ((t.cur_tau +. target) /. 2.0))
      end;
      Engine.schedule engine ~delay:t.cur_tau announce_round
    end
  in
  Engine.schedule engine ~delay:t.cur_tau announce_round;
  (* NOP transactions keep every shard queue non-empty (§4.2) *)
  Engine.every engine ~period:(cfg t).Config.nop_period (fun () ->
      if t.retired then false
      else begin
        if alive t then begin
          let ts = tick t in
          for s = 0 to (cfg t).Config.n_shards - 1 do
            t.seqs.(s) <- t.seqs.(s) + 1;
            (counters t).Runtime.nop_msgs <- (counters t).Runtime.nop_msgs + 1;
            send t ~dst:(Runtime.shard_addr rt s)
              (Msg.Shard_tx { gk = t.gid; seq = t.seqs.(s); ts; ops = []; trace = 0 })
          done
        end;
        true
      end);
  (* heartbeats to the cluster manager *)
  Engine.every engine ~period:(cfg t).Config.heartbeat_period (fun () ->
      if t.retired then false
      else begin
        if alive t then begin
          (counters t).Runtime.heartbeat_msgs <-
            (counters t).Runtime.heartbeat_msgs + 1;
          send t ~dst:(Runtime.manager_addr rt) (Msg.Heartbeat { server = t.addr })
        end;
        true
      end);
  (* GC watermark gossip (§4.5) *)
  if (cfg t).Config.gc_period > 0.0 then
    Engine.every engine ~period:(cfg t).Config.gc_period (fun () ->
        if t.retired then false
        else begin
          if alive t then begin
            let wm = oldest_active_stamp t in
            for s = 0 to (cfg t).Config.n_shards - 1 do
              send t ~dst:(Runtime.shard_addr rt s) (Msg.Watermark { gk = t.gid; ts = wm })
            done;
            send t ~dst:(Runtime.manager_addr rt) (Msg.Watermark { gk = t.gid; ts = wm })
          end;
          true
        end)

let spawn rt ~gid ~epoch =
  let t =
    {
      rt;
      gid;
      addr = Runtime.gk_addr rt gid;
      clock = Vclock.make ~epoch ~origin:gid (Array.make rt.Runtime.cfg.Config.n_gatekeepers 0);
      epoch;
      seqs = Array.make rt.Runtime.cfg.Config.n_shards 0;
      cache = Runtime.create_cache ();
      active = Hashtbl.create 16;
      memo = Hashtbl.create 64;
      dedup = Hashtbl.create 256;
      dedup_q = Queue.create ();
      in_progress = Hashtbl.create 16;
      busy_until = 0.0;
      busy_us = 0.0;
      adm =
        Flow.Admission.create ~limit:rt.Runtime.cfg.Config.admission_limit
          ~deadline_budget:rt.Runtime.cfg.Config.deadline_budget
          ~op_cost:rt.Runtime.cfg.Config.gk_op_cost;
      credits =
        Flow.Credits.create ~peers:rt.Runtime.cfg.Config.n_shards
          ~credits:rt.Runtime.cfg.Config.shard_credits;
      next_replica = 0;
      repl = Repl.Table.create ();
      repl_rr = 0;
      cur_tau = rt.Runtime.cfg.Config.tau;
      requests_seen = 0;
      retired = false;
    }
  in
  Runtime.register rt t.addr (fun ~src msg -> handle t ~src msg);
  (* per-actor utilization gauge: busy time accumulated so far, as µs. A
     replacement spawned at the same address after a crash re-registers
     the name and restarts from zero *)
  Weaver_obs.Metrics.gauge rt.Runtime.metrics
    (Printf.sprintf "util.gk%d.busy_us" gid)
    (fun () -> int_of_float t.busy_us);
  start_timers t;
  t

let retire t = t.retired <- true

let current_tau t = t.cur_tau

let credits_available t shard = Flow.Credits.available t.credits shard

(* a shard restarted in place and dropped its queues: the credits our
   in-flight Shard_txs carried will never be refunded — refill the column
   or admission towards that shard wedges shut permanently *)
let on_shard_restart t shard = Flow.Credits.reset_peer t.credits shard

let repl_table t = t.repl
