module Vclock = Weaver_vclock.Vclock
module Engine = Weaver_sim.Engine
module Net = Weaver_sim.Net
module Store = Weaver_store.Store
module Mgraph = Weaver_graph.Mgraph

type t = {
  rt : Runtime.t;
  sid : int;
  rid : int;
  addr : int;
  graph : (string, Mgraph.vertex) Hashtbl.t;
  cache : Runtime.decision_cache;
  prog_state : (int, (string, Progval.t) Hashtbl.t) Hashtbl.t;
  mutable busy_until : float;
  mutable busy_us : float; (* total service time charged — utilization *)
  mutable applied : int;
  mutable retired : bool;
}

let vertex t vid = Hashtbl.find_opt t.graph vid
let resident_vertices t = Hashtbl.length t.graph
let applied t = t.applied

let cfg t = t.rt.Runtime.cfg
let counters t = t.rt.Runtime.counters
let send t ~dst msg = Runtime.send t.rt ~src:t.addr ~dst msg

let before t a b = Runtime.before t.cache t.rt a b ~prefer_first_on_tie:true

(* The primary streams transactions in its own execution order over one
   FIFO channel, so plain in-order application converges to the primary's
   multi-version state. *)
let apply_op t ts (op : Msg.shard_op) =
  let bf = before t in
  let update vid f =
    match Hashtbl.find_opt t.graph vid with
    | Some v -> Hashtbl.replace t.graph vid (f v)
    | None -> ()
  in
  match op with
  | Msg.S_create_vertex vid -> Hashtbl.replace t.graph vid (Mgraph.create_vertex ~vid ~at:ts)
  | Msg.S_delete_vertex vid -> update vid (fun v -> Mgraph.delete_vertex v ~at:ts)
  | Msg.S_add_edge { src; eid; dst } -> update src (fun v -> Mgraph.add_edge v ~eid ~dst ~at:ts)
  | Msg.S_del_edge { src; eid } -> update src (fun v -> Mgraph.delete_edge v ~eid ~at:ts)
  | Msg.S_set_vprop { vid; key; value } ->
      update vid (fun v -> Mgraph.set_vertex_prop bf v ~key ~value ~at:ts)
  | Msg.S_del_vprop { vid; key } -> update vid (fun v -> Mgraph.del_vertex_prop bf v ~key ~at:ts)
  | Msg.S_set_eprop { src; eid; key; value } ->
      update src (fun v -> Mgraph.set_edge_prop bf v ~eid ~key ~value ~at:ts)
  | Msg.S_del_eprop { src; eid; key } ->
      update src (fun v -> Mgraph.del_edge_prop bf v ~eid ~key ~at:ts)
  | Msg.S_migrate_in vid -> (
      match Store.get_now t.rt.Runtime.store (Runtime.vkey vid) with
      | Some (Runtime.Vrec v) -> Hashtbl.replace t.graph vid v
      | _ -> ())
  | Msg.S_migrate_out vid -> Hashtbl.remove t.graph vid

let prog_states t prog_id =
  match Hashtbl.find_opt t.prog_state prog_id with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 32 in
      Hashtbl.replace t.prog_state prog_id tbl;
      tbl

(* Weak-consistency execution: no refinable-timestamp gating — run on the
   replica's current state immediately. Hops route to the same replica
   index of the owning shard so a whole traversal stays on replicas. *)
let execute_batch t ~coord ~prog_id ~ts ~prog ~historical ~items =
  match Nodeprog.find t.rt.Runtime.registry prog with
  | None ->
      send t ~dst:coord
        (Msg.Prog_partial
           { prog_id; sent = 0; acc = Progval.Null; visited = []; error = None })
  | Some (module P : Nodeprog.PROGRAM) ->
      let states = prog_states t prog_id in
      let bf = before t in
      let work = Queue.create () in
      List.iter (fun item -> Queue.push item work) items;
      let remote : (int, (string * Progval.t) list) Hashtbl.t = Hashtbl.create 4 in
      let acc = ref P.empty in
      let visited = ref [] in
      let cost_units = ref 0.0 in
      while not (Queue.is_empty work) do
        let vid, params = Queue.pop work in
        match Hashtbl.find_opt t.graph vid with
        | None -> ()
        | Some vertex ->
            if Mgraph.vertex_alive bf vertex ~at:ts then begin
              visited := vid :: !visited;
              (counters t).Runtime.vertices_read <- (counters t).Runtime.vertices_read + 1;
              (* a replica-served read is load on this shard's partition all
                 the same: without this touch the heat map only sees the
                 owner's share of the reads, and under replica rotation a
                 genuinely hot vertex looks (1 + replicas)× cooler than it
                 is — starving the replication planner of its best
                 candidates *)
              Runtime.heat_read t.rt ~shard:t.sid vid;
              let ctx = { Nodeprog.vid; at = ts; before = bf; vertex } in
              let state = Hashtbl.find_opt states vid in
              cost_units := !cost_units +. (if state = None then 1.0 else 0.1);
              let state', hops, partial = P.run ctx ~params ~state in
              (match state' with
              | Some s -> Hashtbl.replace states vid s
              | None -> Hashtbl.remove states vid);
              acc := P.merge !acc partial;
              List.iter
                (fun (hvid, hparams) ->
                  let hshard = Runtime.shard_of_vertex t.rt hvid in
                  if hshard = t.sid then Queue.push (hvid, hparams) work
                  else
                    let l = try Hashtbl.find remote hshard with Not_found -> [] in
                    Hashtbl.replace remote hshard ((hvid, hparams) :: l))
                hops
            end
      done;
      let cost = (cfg t).Config.vertex_read_cost *. !cost_units in
      let start = Float.max (Engine.now t.rt.Runtime.engine) t.busy_until in
      t.busy_until <- start +. cost;
      t.busy_us <- t.busy_us +. cost;
      let acc = !acc and visited = !visited in
      ignore historical;
      Engine.schedule_at t.rt.Runtime.engine ~time:t.busy_until (fun () ->
          if not t.retired then begin
            let sent = Hashtbl.length remote in
            Hashtbl.iter
              (fun hshard items ->
                (counters t).Runtime.prog_batch_msgs <-
                  (counters t).Runtime.prog_batch_msgs + 1;
                send t
                  ~dst:(Runtime.replica_addr t.rt ~shard:hshard ~replica:t.rid)
                  (Msg.Prog_batch
                     {
                       coord;
                       prog_id;
                       ts;
                       prog;
                       historical;
                       items;
                       sent_at = Engine.now t.rt.Runtime.engine;
                     }))
              remote;
            send t ~dst:coord
              (Msg.Prog_partial { prog_id; sent; acc; visited; error = None })
          end)

let handle t ~src:_ msg =
  if not t.retired then
    match (msg : Msg.t) with
    | Msg.Shard_tx { ts; ops; _ } ->
        if ops <> [] then begin
          t.applied <- t.applied + 1;
          List.iter (apply_op t ts) ops
        end
    | Msg.Prog_batch { coord; prog_id; ts; prog; historical; items; sent_at } ->
        Runtime.observe t.rt "shard.prog_hop_wait"
          (Engine.now t.rt.Runtime.engine -. sent_at);
        Runtime.trace_span t.rt ~trace:prog_id ~name:"shard.prog_hop"
          ~actor:(Printf.sprintf "replica%d.%d" t.sid t.rid)
          ~start:sent_at
          ~stop:(Engine.now t.rt.Runtime.engine)
          ();
        execute_batch t ~coord ~prog_id ~ts ~prog ~historical ~items
    | Msg.Prog_gc { prog_id } -> Hashtbl.remove t.prog_state prog_id
    | _ -> ()

let reload_from_store t =
  Hashtbl.reset t.graph;
  List.iter
    (fun (key, value) ->
      match value with
      | Runtime.Vrec v ->
          let vid = String.sub key 2 (String.length key - 2) in
          if Runtime.shard_of_vertex t.rt vid = t.sid then Hashtbl.replace t.graph vid v
      | _ -> ())
    (Store.scan_prefix t.rt.Runtime.store ~prefix:"v/")

let spawn rt ~sid ~rid =
  let t =
    {
      rt;
      sid;
      rid;
      addr = Runtime.replica_addr rt ~shard:sid ~replica:rid;
      graph = Hashtbl.create 1024;
      cache = Runtime.create_cache ();
      prog_state = Hashtbl.create 16;
      busy_until = 0.0;
      busy_us = 0.0;
      applied = 0;
      retired = false;
    }
  in
  Runtime.register rt t.addr (fun ~src msg -> handle t ~src msg);
  Weaver_obs.Metrics.gauge rt.Runtime.metrics
    (Printf.sprintf "util.replica%d.%d.busy_us" sid rid)
    (fun () -> int_of_float t.busy_us);
  reload_from_store t;
  t

let retire t = t.retired <- true
let reload = reload_from_store
