module Store = Weaver_store.Store
module Mgraph = Weaver_graph.Mgraph
module Partition = Weaver_partition.Partition

type report = {
  examined : int;
  moved : int;
  edge_cut_before : float;
  edge_cut_after : float;
}

(* live adjacency from the durable records: vertex → live out-neighbours *)
let live_adjacency cluster =
  let rt = Cluster.runtime cluster in
  Store.scan_prefix rt.Runtime.store ~prefix:"v/"
  |> List.filter_map (fun (key, value) ->
         match value with
         | Runtime.Vrec v when v.Mgraph.v_life.Mgraph.deleted = None ->
             let vid = String.sub key 2 (String.length key - 2) in
             let nbrs =
               List.filter_map
                 (fun (e : Mgraph.edge) ->
                   if e.Mgraph.e_life.Mgraph.deleted = None then Some e.Mgraph.dst
                   else None)
                 (Array.to_list v.Mgraph.out)
             in
             Some (vid, nbrs)
         | _ -> None)

let current_assignment cluster =
  let assign : Partition.assignment = Hashtbl.create 1024 in
  List.iter
    (fun (vid, _) -> Hashtbl.replace assign vid (Cluster.shard_of_vertex cluster vid))
    (live_adjacency cluster);
  assign

let run cluster client ?(max_moves = 128) ?(rounds = 3) () =
  let adjacency = live_adjacency cluster in
  let shards = (Cluster.config cluster).Config.n_shards in
  let before = current_assignment cluster in
  let edge_cut_before = Partition.edge_cut before adjacency in
  (* restream against the current placement so only genuinely misplaced
     vertices move *)
  let target =
    let rec go prev k =
      if k = 0 then prev
      else
        let pass = Hashtbl.copy prev in
        (* one LDG pass scoring against [prev] *)
        let fresh = Partition.restream ~shards ~rounds:1 adjacency in
        Hashtbl.iter (fun v s -> Hashtbl.replace pass v s) fresh;
        go pass (k - 1)
    in
    go before rounds
  in
  let moves = ref 0 and examined = ref 0 in
  List.iter
    (fun (vid, _) ->
      incr examined;
      if !moves < max_moves then
        match (Hashtbl.find_opt before vid, Hashtbl.find_opt target vid) with
        | Some cur, Some want when cur <> want -> (
            match Client.migrate client ~vid ~to_shard:want with
            | Ok () -> incr moves
            | Error _ -> () (* racing writer: skip this round *))
        | _ -> ())
    adjacency;
  Cluster.run_for cluster 10_000.0;
  let after = current_assignment cluster in
  {
    examined = !examined;
    moved = !moves;
    edge_cut_before;
    edge_cut_after = Partition.edge_cut after adjacency;
  }
