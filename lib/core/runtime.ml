module Vclock = Weaver_vclock.Vclock
module Engine = Weaver_sim.Engine
module Net = Weaver_sim.Net
module Store = Weaver_store.Store
module Oracle = Weaver_oracle.Oracle
module Chain = Weaver_oracle.Chain
module Mgraph = Weaver_graph.Mgraph
module Partition = Weaver_partition.Partition
module Metrics = Weaver_obs.Metrics
module Trace = Weaver_obs.Trace
module Timeline = Weaver_obs.Timeline
module Slowlog = Weaver_obs.Slowlog
module Heat = Weaver_obs.Heat

type stored = Vrec of Mgraph.vertex | Stamp of Vclock.t | Dir of int

type counters = {
  mutable tx_committed : int;
  mutable tx_aborted : int;
  mutable tx_invalid : int;
  mutable progs_completed : int;
  mutable announce_msgs : int;
  mutable nop_msgs : int;
  mutable shard_tx_msgs : int;
  mutable prog_batch_msgs : int;
  mutable oracle_consults : int;
  mutable oracle_cache_hits : int;
  mutable shard_oracle_consults : int;
  mutable shard_oracle_batched : int;
  mutable vertices_read : int;
  mutable page_ins : int;
  mutable evictions : int;
  mutable recoveries : int;
  mutable memo_hits : int;
  mutable memo_invalidations : int;
  mutable memo_remote_invalidations : int;
  mutable migrations : int;
  mutable dedup_hits : int;
  mutable dedup_dropped : int;
  mutable late_replies : int;
  mutable client_retries : int;
  mutable fault_events : int;
  mutable heartbeat_msgs : int;
  mutable credit_msgs : int;
  mutable shed_queue_full : int;
  mutable shed_deadline : int;
  mutable shed_credit : int;
  mutable snap_published : int;
  mutable snap_pinned_reads : int;
  mutable snap_gc_deferred : int;
  mutable rebal_rounds : int;
  mutable rebal_moves : int;
  mutable rebal_skipped : int;
  mutable batch_msgs : int;
  mutable batch_coalesced : int;
  mutable repl_rounds : int;
  mutable repl_installs : int;
  mutable repl_updates : int;
  mutable repl_resyncs : int;
  mutable repl_routed : int;
}

type t = {
  cfg : Config.t;
  engine : Engine.t;
  net : Msg.t Net.t;
  store : stored Store.t;
  oracle : Oracle.t;  (* direct instance when [oracle_chain] is [None] *)
  oracle_chain : Chain.t option;  (* chain replication (§3.4) when > 1 *)
  registry : Nodeprog.registry;
  counters : counters;
  metrics : Metrics.t;
  tracer : Trace.t option;  (* Some iff [Config.enable_tracing] *)
  timeline : Timeline.t option;  (* Some iff [Config.enable_timeline] *)
  slowlog : Slowlog.t;  (* always on; phases only when tracing is on *)
  heat : Heat.t option;  (* Some iff [Config.enable_heat] *)
  batches : (int * int, Msg.t list ref) Hashtbl.t;
      (* [Config.net_batching] coalescing buffers, keyed by (src, dst);
         each holds the batchable messages buffered this tick in reverse
         send order. Empty (and unused) when batching is off. *)
  mutable next_client : int;
}

(* the ordering service facade: a chain when configured, else the single
   instance; answers and commitments are identical either way *)
let oracle_order t ~first ~second =
  match t.oracle_chain with
  | Some chain -> Chain.order chain ~first ~second
  | None -> Oracle.order t.oracle ~first ~second

let oracle_query t a b =
  match t.oracle_chain with
  | Some chain -> Chain.query chain a b
  | None -> Oracle.query t.oracle a b

let oracle_serialize t events =
  match t.oracle_chain with
  | Some chain -> Chain.serialize chain events
  | None -> Oracle.serialize t.oracle events

let oracle_gc t ~watermark =
  match t.oracle_chain with
  | Some chain -> Chain.gc chain ~watermark
  | None -> Oracle.gc t.oracle ~watermark

let oracle_queries_served t =
  match t.oracle_chain with
  | Some chain -> Chain.queries_served chain
  | None -> Oracle.queries_served t.oracle

(* Every legacy [counters] field surfaces in the metrics registry as a
   read-through gauge, so the registry is the one uniform interface over
   all measurements without rewriting the existing increment sites. *)
let register_counter_gauges metrics (c : counters) =
  let g name f = Metrics.gauge metrics name f in
  g "tx.committed" (fun () -> c.tx_committed);
  g "tx.aborted" (fun () -> c.tx_aborted);
  g "tx.invalid" (fun () -> c.tx_invalid);
  g "prog.completed" (fun () -> c.progs_completed);
  g "msg.announce" (fun () -> c.announce_msgs);
  g "msg.nop" (fun () -> c.nop_msgs);
  g "msg.shard_tx" (fun () -> c.shard_tx_msgs);
  g "msg.prog_batch" (fun () -> c.prog_batch_msgs);
  g "oracle.consults" (fun () -> c.oracle_consults);
  g "oracle.cache_hits" (fun () -> c.oracle_cache_hits);
  g "shard.oracle_consults" (fun () -> c.shard_oracle_consults);
  g "shard.oracle_batched" (fun () -> c.shard_oracle_batched);
  g "prog.vertices_read" (fun () -> c.vertices_read);
  g "paging.page_ins" (fun () -> c.page_ins);
  g "paging.evictions" (fun () -> c.evictions);
  g "cluster.recoveries" (fun () -> c.recoveries);
  g "memo.hits" (fun () -> c.memo_hits);
  g "memo.invalidations" (fun () -> c.memo_invalidations);
  g "memo.remote_invalidations" (fun () -> c.memo_remote_invalidations);
  g "cluster.migrations" (fun () -> c.migrations);
  g "tx.dedup_hits" (fun () -> c.dedup_hits);
  g "tx.dedup_dropped" (fun () -> c.dedup_dropped);
  g "client.late_replies" (fun () -> c.late_replies);
  g "client.retries" (fun () -> c.client_retries);
  g "fault.events" (fun () -> c.fault_events);
  g "msg.heartbeat" (fun () -> c.heartbeat_msgs);
  g "flow.credit_msgs" (fun () -> c.credit_msgs);
  g "flow.shed_queue_full" (fun () -> c.shed_queue_full);
  g "flow.shed_deadline" (fun () -> c.shed_deadline);
  g "flow.shed_credit" (fun () -> c.shed_credit);
  g "snap.published" (fun () -> c.snap_published);
  g "snap.pinned_reads" (fun () -> c.snap_pinned_reads);
  g "snap.gc_deferred" (fun () -> c.snap_gc_deferred);
  g "rebal.rounds" (fun () -> c.rebal_rounds);
  g "rebal.moves" (fun () -> c.rebal_moves);
  g "rebal.skipped" (fun () -> c.rebal_skipped);
  g "msg.batch" (fun () -> c.batch_msgs);
  g "msg.batch_coalesced" (fun () -> c.batch_coalesced);
  g "repl.rounds" (fun () -> c.repl_rounds);
  g "repl.installs" (fun () -> c.repl_installs);
  g "repl.updates" (fun () -> c.repl_updates);
  g "repl.resyncs" (fun () -> c.repl_resyncs);
  g "repl.routed" (fun () -> c.repl_routed)

(* the network tracer that feeds the causal trace collector: attribute
   every wire message to its request's trace id *)
let obs_net_hook t =
  match t.tracer with
  | None -> None
  | Some tr ->
      Some
        (fun ~time ~src ~dst msg ->
          match Msg.trace_of msg with
          | Some trace -> Trace.message tr ~trace ~time ~src ~dst ~kind:(Msg.kind msg)
          | None -> ())

let create cfg =
  Config.validate cfg;
  let engine = Engine.create ~seed:cfg.Config.seed () in
  let latency =
    Net.uniform_latency ~base:cfg.Config.net_base_latency ~jitter:cfg.Config.net_jitter
  in
  let metrics = Metrics.create () in
  let t =
    {
      cfg;
      engine;
      net = Net.create engine ~latency;
      store = Store.create ();
      oracle = Oracle.create ();
      oracle_chain =
        (if cfg.Config.oracle_replicas > 1 then
           Some (Chain.create ~replicas:cfg.Config.oracle_replicas ())
         else None);
      registry = Nodeprog.create_registry ();
      counters =
        {
          tx_committed = 0;
          tx_aborted = 0;
          tx_invalid = 0;
          progs_completed = 0;
          announce_msgs = 0;
          nop_msgs = 0;
          shard_tx_msgs = 0;
          prog_batch_msgs = 0;
          oracle_consults = 0;
          oracle_cache_hits = 0;
          shard_oracle_consults = 0;
          shard_oracle_batched = 0;
          vertices_read = 0;
          page_ins = 0;
          evictions = 0;
          recoveries = 0;
          memo_hits = 0;
          memo_invalidations = 0;
          memo_remote_invalidations = 0;
          migrations = 0;
          dedup_hits = 0;
          dedup_dropped = 0;
          late_replies = 0;
          client_retries = 0;
          fault_events = 0;
          heartbeat_msgs = 0;
          credit_msgs = 0;
          shed_queue_full = 0;
          shed_deadline = 0;
          shed_credit = 0;
          snap_published = 0;
          snap_pinned_reads = 0;
          snap_gc_deferred = 0;
          rebal_rounds = 0;
          rebal_moves = 0;
          rebal_skipped = 0;
          batch_msgs = 0;
          batch_coalesced = 0;
          repl_rounds = 0;
          repl_installs = 0;
          repl_updates = 0;
          repl_resyncs = 0;
          repl_routed = 0;
        };
      metrics;
      tracer =
        (if cfg.Config.enable_tracing then
           Some (Trace.create ~capacity:cfg.Config.trace_capacity)
         else None);
      timeline =
        (if cfg.Config.enable_timeline then
           Some (Timeline.create ~capacity:cfg.Config.timeline_capacity)
         else None);
      batches = Hashtbl.create 64;
      slowlog = Slowlog.create ~capacity:cfg.Config.slow_log_capacity;
      heat =
        (if cfg.Config.enable_heat then
           Some
             (Heat.create ~shards:cfg.Config.n_shards ~k:cfg.Config.heat_topk
                ~ranges:cfg.Config.heat_ranges
                ~half_life:cfg.Config.heat_half_life)
         else None);
      next_client = 0;
    }
  in
  register_counter_gauges metrics t.counters;
  (* per-shard cumulative touch totals; only present when heat is on, so
     a heat-off registry snapshot stays bit-identical to the pre-heat one *)
  (match t.heat with
  | Some h ->
      for s = 0 to cfg.Config.n_shards - 1 do
        List.iter
          (fun kind ->
            Metrics.gauge metrics
              (Printf.sprintf "heat.shard%d.%s" s (Heat.kind_name kind))
              (fun () -> Heat.total h ~shard:s ~kind))
          [ Heat.Read; Heat.Write; Heat.Cross ]
      done
  | None -> ());
  Metrics.gauge metrics "net.sent" (fun () -> Net.messages_sent t.net);
  Metrics.gauge metrics "net.delivered" (fun () -> Net.messages_delivered t.net);
  Metrics.gauge metrics "net.suppressed" (fun () -> Net.messages_suppressed t.net);
  Metrics.gauge metrics "net.dropped" (fun () -> Net.messages_dropped t.net);
  Metrics.gauge metrics "store.keys" (fun () -> Store.length t.store);
  Metrics.gauge metrics "store.commits" (fun () -> Store.commits t.store);
  Metrics.gauge metrics "store.aborts" (fun () -> Store.aborts t.store);
  Metrics.gauge metrics "net.in_flight" (fun () -> Net.in_flight t.net);
  Metrics.gauge metrics "net.in_flight_hwm" (fun () -> Net.in_flight_high_water t.net);
  Metrics.gauge metrics "net.channel_hwm" (fun () -> Net.channel_high_water t.net);
  Metrics.gauge metrics "engine.pending" (fun () -> Engine.pending engine);
  Metrics.gauge metrics "engine.pending_hwm" (fun () -> Engine.max_pending engine);
  Metrics.gauge metrics "engine.events" (fun () -> Engine.events_processed engine);
  Net.set_tracer t.net (obs_net_hook t);
  (* the timeline sampler: a periodic event that snapshots the registry.
     It only reads state — no sends, no RNG, no state mutation outside the
     ring buffer — so the simulation with sampling on is bit-identical to
     one without (see the determinism test) *)
  (match t.timeline with
  | Some tl ->
      Engine.every engine ~period:cfg.Config.timeline_period (fun () ->
          Timeline.record tl ~now:(Engine.now engine) (Metrics.int_values metrics);
          true)
  | None -> ());
  t

(* ------------------------------------------------------------------ *)
(* Control-plane message batching ([Config.net_batching]).

   Small fixed-size control messages — credit returns, heartbeats, commit
   notes, NOP Shard_tx ticks, clock announces — dominate message *count*
   while carrying almost no payload. With batching on, the first batchable
   send to a (src, dst) pair this tick opens a buffer and schedules a
   zero-delay flush; every batchable send to that pair until the flush
   fires appends to the buffer, and the flush ships one [Msg.Batch] in
   send order. [register] unpacks batches back into individual handler
   calls, so endpoints are batching-agnostic and the handler-visible
   message order within a channel is the send order either way.

   With batching off, [send] is an exact pass-through to [Net.send]:
   no buffer is touched, no flush event exists, and delivery times and
   counter fingerprints are bit-identical to a build without the
   feature. *)

let batchable (msg : Msg.t) =
  match msg with
  | Msg.Credit _ | Msg.Heartbeat _ | Msg.Commit_note _ | Msg.Announce _ -> true
  | Msg.Shard_tx { ops = []; _ } -> true
  | _ -> false

let flush_batch t ~src ~dst =
  match Hashtbl.find_opt t.batches (src, dst) with
  | None -> ()
  | Some buf ->
      Hashtbl.remove t.batches (src, dst);
      (match List.rev !buf with
      | [] -> ()
      | [ msg ] -> Net.send t.net ~src ~dst msg
      | items ->
          t.counters.batch_msgs <- t.counters.batch_msgs + 1;
          t.counters.batch_coalesced <- t.counters.batch_coalesced + List.length items;
          Net.send t.net ~src ~dst (Msg.Batch items))

let send t ~src ~dst msg =
  if t.cfg.Config.net_batching && batchable msg then begin
    match Hashtbl.find_opt t.batches (src, dst) with
    | Some buf -> buf := msg :: !buf
    | None ->
        Hashtbl.replace t.batches (src, dst) (ref [ msg ]);
        Engine.schedule t.engine ~delay:0.0 (fun () -> flush_batch t ~src ~dst)
  end
  else Net.send t.net ~src ~dst msg

let register t addr handler =
  Net.register t.net addr (fun ~src msg ->
      match (msg : Msg.t) with
      | Msg.Batch items -> List.iter (fun m -> handler ~src m) items
      | m -> handler ~src m)

let observe t name v = Metrics.observe t.metrics name v

(* record a completed span against a trace; a no-op when tracing is off or
   the traffic is untraced (trace = 0) *)
let trace_span t ~trace ~name ~actor ~start ~stop ?meta () =
  match t.tracer with
  | Some tr when trace <> 0 -> Trace.span tr ~trace ~name ~actor ~start ~stop ?meta ()
  | _ -> ()

let gk_addr _t i = i
let shard_addr t j = t.cfg.Config.n_gatekeepers + j

let replica_addr t ~shard ~replica =
  t.cfg.Config.n_gatekeepers + t.cfg.Config.n_shards
  + (shard * t.cfg.Config.read_replicas)
  + replica

let manager_addr t =
  t.cfg.Config.n_gatekeepers + t.cfg.Config.n_shards
  + (t.cfg.Config.n_shards * t.cfg.Config.read_replicas)

let fresh_client_addr t =
  t.next_client <- t.next_client + 1;
  manager_addr t + t.next_client

let is_gk_addr t a = a >= 0 && a < t.cfg.Config.n_gatekeepers

(* invert the address plan; names match the actors' own span names
   ("gk0", "shard2") so exported flow events land on the same Perfetto
   processes as the spans those actors record *)
let actor_of_addr t a =
  let n_gk = t.cfg.Config.n_gatekeepers in
  let n_sh = t.cfg.Config.n_shards in
  let n_rep = t.cfg.Config.read_replicas in
  if a < 0 then "addr" ^ string_of_int a
  else if a < n_gk then "gk" ^ string_of_int a
  else if a < n_gk + n_sh then "shard" ^ string_of_int (a - n_gk)
  else if a < n_gk + n_sh + (n_sh * n_rep) then begin
    let r = a - n_gk - n_sh in
    Printf.sprintf "replica%d.%d" (r / n_rep) (r mod n_rep)
  end
  else if a = manager_addr t then "manager"
  else "client" ^ string_of_int (a - manager_addr t)

(* record a resolved client request into the slow-request log; when tracing
   is on the entry carries the per-phase breakdown (durations summed per
   span name, descending). Pure bookkeeping: never schedules events. *)
let slow_record t ~trace ~kind ~start ~stop ~result =
  let phases =
    match t.tracer with
    | Some tr when trace <> 0 ->
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun sp ->
            let d =
              if Float.is_nan sp.Trace.sp_stop then 0.0
              else sp.Trace.sp_stop -. sp.Trace.sp_start
            in
            let prev =
              match Hashtbl.find_opt tbl sp.Trace.sp_name with
              | Some p -> p
              | None -> 0.0
            in
            Hashtbl.replace tbl sp.Trace.sp_name (prev +. d))
          (Trace.spans tr trace);
        Hashtbl.fold (fun name d acc -> (name, d) :: acc) tbl []
        |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
    | _ -> []
  in
  Slowlog.record t.slowlog
    {
      Slowlog.e_trace = trace;
      e_kind = kind;
      e_start = start;
      e_stop = stop;
      e_result = result;
      e_phases = phases;
    }

let vkey vid = "v/" ^ vid
let lukey vid = "lu/" ^ vid
let dirkey vid = "dir/" ^ vid

let shard_of_vertex t vid =
  match Store.get_now t.store (dirkey vid) with
  | Some (Dir s) -> s
  | _ -> Partition.hash_vertex ~shards:t.cfg.Config.n_shards vid

(* heat touch recording: O(1) pure bookkeeping against the sketch and
   decay cells — never schedules events, consumes RNG, or sends messages —
   and a no-op when [Config.enable_heat] is off *)
let heat_read t ~shard vid =
  match t.heat with
  | Some h -> Heat.touch h ~shard ~kind:Heat.Read ~now:(Engine.now t.engine) vid
  | None -> ()

let heat_write t ~shard vid =
  match t.heat with
  | Some h -> Heat.touch h ~shard ~kind:Heat.Write ~now:(Engine.now t.engine) vid
  | None -> ()

(* a cross-shard transaction touch, attributed to the vertex's owning
   shard; recorded at the gatekeeper when a commit fans out to more than
   one shard *)
let heat_cross t vid =
  match t.heat with
  | Some h ->
      Heat.touch h ~shard:(shard_of_vertex t vid) ~kind:Heat.Cross
        ~now:(Engine.now t.engine) vid
  | None -> ()

(* Keyed directly on the stamp pair with structural hashing/equality:
   building a "e@o,c1,c2|e@o,c1,c2" string per lookup used to dominate the
   ordering hot path. Structural equality distinguishes exactly what the
   string keys did (epoch, origin, clock vector, both sides). *)
type decision_cache = (Vclock.t * Vclock.t, bool) Hashtbl.t

let create_cache () : decision_cache = Hashtbl.create 256

let cache_put cache a b first_before =
  Hashtbl.replace cache (a, b) first_before;
  Hashtbl.replace cache (b, a) (not first_before)

(* Decide a ≺ b. Vector clocks answer most pairs for free (the proactive
   stage); concurrent pairs go to the server-local cache of irreversible
   oracle decisions and, on a miss, to the timeline oracle itself (the
   reactive stage, counted as a consult). *)
let before cache t a b ~prefer_first_on_tie =
  match Vclock.compare_hb a b with
  | Vclock.Before -> true
  | Vclock.After -> false
  | Vclock.Equal when a.Vclock.origin = b.Vclock.origin -> false
  | Vclock.Equal | Vclock.Concurrent -> (
      match Hashtbl.find_opt cache (a, b) with
      | Some d ->
          t.counters.oracle_cache_hits <- t.counters.oracle_cache_hits + 1;
          d
      | None ->
          t.counters.oracle_consults <- t.counters.oracle_consults + 1;
          let first, second = if prefer_first_on_tie then (a, b) else (b, a) in
          let d =
            match oracle_order t ~first ~second with
            | Oracle.First_first -> prefer_first_on_tie
            | Oracle.Second_first -> not prefer_first_on_tie
          in
          cache_put cache a b d;
          d)

let before_established cache t a b =
  match Vclock.compare_hb a b with
  | Vclock.Before -> Some true
  | Vclock.After -> Some false
  | Vclock.Equal when a.Vclock.origin = b.Vclock.origin -> Some false
  | Vclock.Equal | Vclock.Concurrent -> (
      match Hashtbl.find_opt cache (a, b) with
      | Some d ->
          t.counters.oracle_cache_hits <- t.counters.oracle_cache_hits + 1;
          Some d
      | None -> (
          t.counters.oracle_consults <- t.counters.oracle_consults + 1;
          match oracle_query t a b with
          | Some Oracle.First_first ->
              cache_put cache a b true;
              Some true
          | Some Oracle.Second_first ->
              cache_put cache a b false;
              Some false
          | None -> None))

let stamp_min a b =
  let open Vclock in
  if a.epoch <> b.epoch then if a.epoch < b.epoch then a else b
  else begin
    let n = Array.length a.clocks in
    let clocks = Array.init n (fun i -> min a.clocks.(i) b.clocks.(i)) in
    make ~epoch:a.epoch ~origin:a.origin clocks
  end

let before_cached cache t a b =
  match Vclock.compare_hb a b with
  | Vclock.Before -> Some true
  | Vclock.After -> Some false
  | Vclock.Equal when a.Vclock.origin = b.Vclock.origin -> Some false
  | Vclock.Equal | Vclock.Concurrent -> (
      match Hashtbl.find_opt cache (a, b) with
      | Some d ->
          t.counters.oracle_cache_hits <- t.counters.oracle_cache_hits + 1;
          Some d
      | None -> None)
