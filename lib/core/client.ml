module Engine = Weaver_sim.Engine
module Net = Weaver_sim.Net
module Vclock = Weaver_vclock.Vclock
module Idgen = Weaver_util.Idgen

(* One retry policy governs all three request paths (transactions, node
   programs, migrations): attempts, exponential backoff with deterministic
   jitter, an optional per-request deadline, and failure-aware gatekeeper
   selection. *)
type retry_policy = {
  rp_attempts : int;
  rp_backoff : float;
  rp_backoff_cap : float;
  rp_deadline : float option;
  rp_retry_conflicts : bool;
  rp_route_around : bool;
}

let default_policy =
  {
    rp_attempts = 4;
    rp_backoff = 0.0;
    rp_backoff_cap = 0.0;
    rp_deadline = None;
    rp_retry_conflicts = false;
    rp_route_around = true;
  }

let reliable_policy =
  {
    rp_attempts = 8;
    rp_backoff = 2_000.0;
    rp_backoff_cap = 100_000.0;
    rp_deadline = None;
    rp_retry_conflicts = true;
    rp_route_around = true;
  }

let no_retry_policy =
  {
    rp_attempts = 1;
    rp_backoff = 0.0;
    rp_backoff_cap = 0.0;
    rp_deadline = None;
    rp_retry_conflicts = false;
    rp_route_around = false;
  }

(* an [Msg.Overloaded] rejection, surfaced as Error "shed:<reason>" *)
let is_shed e = String.length e >= 5 && String.equal (String.sub e 0 5) "shed:"

(* timeouts and epoch changes are transient by construction; a shed request
   was rejected before consuming anything, so retrying (after backing off —
   see [backoff_delay]) is always safe; conflicts only when the policy opts
   in (a conflicted transaction did not commit, but callers like
   read-modify-write loops need to re-read first) *)
let retryable policy = function
  | "timeout" | "epoch-change" -> true
  | "snapshot-gced" ->
      (* the requested historical timestamp was compacted away on some
         shard; the caller picks a fresher [at] and the retry succeeds *)
      true
  | "conflict" -> policy.rp_retry_conflicts
  | e -> is_shed e (* else "invalid: ...", "unknown program: ...", stalls *)

(* Retrying a shed request immediately would re-arrive at a gatekeeper
   still saturated (the admission queue drains at gk_op_cost per request):
   overload backoff needs a real floor even under policies configured with
   no backoff at all. 2 ms is two full admission queues at the default
   limit. *)
let overload_backoff_floor = 2_000.0

(* Exponential backoff with deterministic jitter: the spread comes from
   hashing (request id, attempt), not from the engine RNG — consuming
   engine randomness here would perturb every other random stream and
   break bit-reproducibility of runs that differ only in retry timing.
   [error] selects the overload floor for "shed:..." rejections. *)
let backoff_delay ?(error = "") policy ~id ~attempt =
  let base =
    if is_shed error then Float.max policy.rp_backoff overload_backoff_floor
    else policy.rp_backoff
  in
  if base <= 0.0 then 0.0
  else begin
    let d = base *. (2.0 ** float_of_int (attempt - 1)) in
    let cap =
      if policy.rp_backoff_cap > 0.0 then policy.rp_backoff_cap
      else if is_shed error then overload_backoff_floor *. 64.0
      else 0.0
    in
    let d = if cap > 0.0 then Float.min d cap else d in
    let h = Hashtbl.hash (id, attempt) land 0xffff in
    d *. (0.5 +. (float_of_int h /. 131072.0))
  end

(* replies that lost the race with the client-side timeout, kept (bounded)
   so the late reply can still be attributed when it eventually arrives *)
let timed_out_capacity = 512

type t = {
  rt : Runtime.t;
  addr : int;
  ids : Idgen.t;
  mutable next_req : int;
  mutable rr : int;
  mutable timeout : float;
  mutable policy : retry_policy;
  mutable pinned : int option; (* tests: force every request to one gk *)
  (* per-server suspicion expiry, indexed by fixed server address
     (gatekeepers, shards, replicas, manager). Only gatekeeper entries
     steer [next_gk]; the rest exist so suspicion bookkeeping stays
     address-safe when a timeout is attributed to a non-gatekeeper hop
     (e.g. a read routed through a crashed replica). *)
  suspect_until : float array;
  (* pending_tx values carry the attempt number that registered them, so a
     timeout event from a superseded attempt cannot fail a newer one
     registered under the same (reused) transaction id *)
  pending_tx : (int, int * (((string * Progval.t) list, string) result -> unit)) Hashtbl.t;
  pending_prog : (int, (Progval.t, string) result -> unit) Hashtbl.t;
  timed_out : (int, float * string) Hashtbl.t; (* id -> (issued, kind) *)
  timed_out_q : int Queue.t;
}

let counters t = t.rt.Runtime.counters

let note_timed_out t ~id ~issued ~kind =
  Hashtbl.replace t.timed_out id (issued, kind);
  Queue.push id t.timed_out_q;
  while Queue.length t.timed_out_q > timed_out_capacity do
    Hashtbl.remove t.timed_out (Queue.pop t.timed_out_q)
  done

(* A reply with no pending entry raced the timeout and lost: the server
   completed the request but the client already reported failure. Count the
   divergence and log it — silently dropping it is how server-side
   tx_committed and client-visible success quietly drift apart. *)
let note_late t ~id ~result =
  (counters t).Runtime.late_replies <- (counters t).Runtime.late_replies + 1;
  match Hashtbl.find_opt t.timed_out id with
  | Some (issued, kind) ->
      Hashtbl.remove t.timed_out id;
      Runtime.slow_record t.rt ~trace:id ~kind ~start:issued
        ~stop:(Engine.now t.rt.Runtime.engine)
        ~result:("late:" ^ result)
  | None -> ()

(* any fixed server (gatekeeper, shard, replica) that answered is not a
   black hole: clear its entry. Client-to-client messages don't exist, but
   the bounds check keeps this total over every [src] the net can carry. *)
let clear_suspicion t src =
  if src >= 0 && src < Array.length t.suspect_until then
    t.suspect_until.(src) <- 0.0

let handle t ~src msg =
  match (msg : Msg.t) with
  | Msg.Tx_reply { tx_id; result; reads } -> (
      clear_suspicion t src;
      match Hashtbl.find_opt t.pending_tx tx_id with
      | Some (_, cb) ->
          Hashtbl.remove t.pending_tx tx_id;
          Hashtbl.remove t.timed_out tx_id;
          cb (Result.map (fun () -> reads) result)
      | None ->
          note_late t ~id:tx_id
            ~result:(match result with Ok () -> "ok" | Error e -> e))
  | Msg.Prog_reply { prog_id; result } -> (
      clear_suspicion t src;
      match Hashtbl.find_opt t.pending_prog prog_id with
      | Some cb ->
          Hashtbl.remove t.pending_prog prog_id;
          Hashtbl.remove t.timed_out prog_id;
          cb result
      | None ->
          note_late t ~id:prog_id
            ~result:(match result with Ok _ -> "ok" | Error e -> e))
  | Msg.Overloaded { req_id; reason } -> (
      (* shed at admission (overload management): resolve whichever pending
         table holds the request. Deliberately NOT [clear_suspicion]: an
         Overloaded reply proves the gatekeeper is alive but says nothing
         good about sending it more traffic right now. *)
      let err = "shed:" ^ reason in
      match Hashtbl.find_opt t.pending_tx req_id with
      | Some (_, cb) ->
          Hashtbl.remove t.pending_tx req_id;
          Hashtbl.remove t.timed_out req_id;
          cb (Error err)
      | None -> (
          match Hashtbl.find_opt t.pending_prog req_id with
          | Some cb ->
              Hashtbl.remove t.pending_prog req_id;
              Hashtbl.remove t.timed_out req_id;
              cb (Error err)
          | None -> note_late t ~id:req_id ~result:err))
  | _ -> ()

let create rt =
  let t =
    {
      rt;
      addr = Runtime.fresh_client_addr rt;
      ids = Idgen.create ();
      next_req = 0;
      rr = 0;
      timeout = 3_000_000.0;
      policy = default_policy;
      pinned = None;
      suspect_until = Array.make (Runtime.manager_addr rt + 1) 0.0;
      pending_tx = Hashtbl.create 16;
      pending_prog = Hashtbl.create 16;
      timed_out = Hashtbl.create 16;
      timed_out_q = Queue.create ();
    }
  in
  Runtime.register rt t.addr (fun ~src msg -> handle t ~src msg);
  t

let addr t = t.addr
let set_timeout t d = t.timeout <- d
let set_retry_policy t p = t.policy <- p
let retry_policy t = t.policy
let set_gatekeeper t g = t.pinned <- g

(* Failure-aware gatekeeper selection: round-robin, but skip gatekeepers
   under suspicion (a recent timeout). When every gatekeeper is suspected
   the plain round-robin choice stands — a black hole is still better than
   not sending, and the probe is what eventually clears the suspicion. *)
let next_gk t ~route =
  match t.pinned with
  | Some g -> g
  | None ->
      let n = t.rt.Runtime.cfg.Config.n_gatekeepers in
      let now = Engine.now t.rt.Runtime.engine in
      let rec pick tries =
        let g = t.rr mod n in
        t.rr <- t.rr + 1;
        if (not route) || tries >= n || t.suspect_until.(g) <= now then g
        else pick (tries + 1)
      in
      pick 0

let suspect t g =
  if g >= 0 && g < Array.length t.suspect_until then begin
    let until = Engine.now t.rt.Runtime.engine +. (2.0 *. t.timeout) in
    if until > t.suspect_until.(g) then t.suspect_until.(g) <- until
  end

let fresh_req t =
  t.next_req <- t.next_req + 1;
  (t.addr * 1_000_000) + t.next_req

(* request ids double as trace ids; expose the newest so callers can look
   up the request's span tree after the reply *)
let last_request_id t = (t.addr * 1_000_000) + t.next_req

module Tx = struct
  type tx = { client : t; mutable ops : Txop.t list (* newest first *) }

  let begin_ client = { client; ops = [] }
  let add tx op = tx.ops <- op :: tx.ops

  let create_vertex tx ?id () =
    let vid =
      match id with
      | Some id -> id
      | None -> Printf.sprintf "v%d_%d" tx.client.addr (Idgen.next tx.client.ids)
    in
    add tx (Txop.Create_vertex vid);
    vid

  let delete_vertex tx vid = add tx (Txop.Delete_vertex vid)

  let create_edge tx ~src ~dst =
    let eid = Printf.sprintf "e%d_%d" tx.client.addr (Idgen.next tx.client.ids) in
    add tx (Txop.Create_edge { eid; src; dst });
    eid

  let delete_edge tx ~src ~eid = add tx (Txop.Delete_edge { eid; src })

  let set_vertex_prop tx ~vid ~key ~value = add tx (Txop.Set_vertex_prop { vid; key; value })
  let del_vertex_prop tx ~vid ~key = add tx (Txop.Del_vertex_prop { vid; key })

  let set_edge_prop tx ~src ~eid ~key ~value =
    add tx (Txop.Set_edge_prop { src; eid; key; value })

  let del_edge_prop tx ~src ~eid ~key = add tx (Txop.Del_edge_prop { src; eid; key })
  let read_vertex tx vid = add tx (Txop.Read_vertex vid)
  let op_count tx = List.length tx.ops
end

let within_deadline policy ~engine ~first_issued =
  match policy.rp_deadline with
  | None -> true
  | Some d -> Engine.now engine -. first_issued < d

(* The transaction/migration submission loop. Every attempt reuses the SAME
   transaction id: the gatekeepers' duplicate-suppression window keys on
   (client, tx_id), so a retry of a timed-out-but-committed attempt is
   answered Ok instead of double-applied — and a late original reply simply
   resolves the current attempt (same pending-table key). Each resolved
   attempt (reply or timeout) lands in the slow-request log. *)
let submit_tx t ~kind ~policy ~mk_msg ~on_result =
  let engine = t.rt.Runtime.engine in
  let tx_id = fresh_req t in
  let first_issued = Engine.now engine in
  let rec attempt n =
    let issued = Engine.now engine in
    let gk = next_gk t ~route:policy.rp_route_around in
    let finish r =
      Runtime.slow_record t.rt ~trace:tx_id ~kind ~start:issued
        ~stop:(Engine.now engine)
        ~result:(match r with Ok _ -> "ok" | Error e -> e);
      match r with
      | Error e
        when retryable policy e
             && n < policy.rp_attempts
             && within_deadline policy ~engine ~first_issued ->
          (counters t).Runtime.client_retries <-
            (counters t).Runtime.client_retries + 1;
          Engine.schedule engine
            ~delay:(backoff_delay ~error:e policy ~id:tx_id ~attempt:n)
            (fun () -> attempt (n + 1))
      | r -> on_result r
    in
    Hashtbl.replace t.pending_tx tx_id (n, finish);
    Runtime.send t.rt ~src:t.addr ~dst:(Runtime.gk_addr t.rt gk) (mk_msg tx_id);
    Engine.schedule engine ~delay:t.timeout (fun () ->
        match Hashtbl.find_opt t.pending_tx tx_id with
        | Some (n', cb) when n' = n ->
            Hashtbl.remove t.pending_tx tx_id;
            suspect t gk;
            note_timed_out t ~id:tx_id ~issued ~kind;
            cb (Error "timeout")
        | _ -> () (* resolved, or superseded by a newer attempt *))
  in
  attempt 1

let commit_with_reads_policy t ~policy (tx : Tx.tx) ~on_result =
  let ops = List.rev tx.Tx.ops in
  submit_tx t ~kind:"tx" ~policy
    ~mk_msg:(fun tx_id -> Msg.Tx_req { client = t.addr; tx_id; ops })
    ~on_result

let commit_with_reads_async t tx ~on_result =
  commit_with_reads_policy t ~policy:t.policy tx ~on_result

let commit_async t tx ~on_result =
  commit_with_reads_async t tx ~on_result:(fun r -> on_result (Result.map ignore r))

let run_program_async t ~prog ~params ~starts ?at ?(consistency = `Strong) ~on_result () =
  let engine = t.rt.Runtime.engine in
  let policy = t.policy in
  let first_issued = Engine.now engine in
  let rec attempt n =
    (* unlike transactions, each attempt is a fresh request id: programs
       are read-only, so there is nothing to deduplicate, and distinct ids
       keep every attempt's trace/slowlog entry separate *)
    let prog_id = fresh_req t in
    let issued = Engine.now engine in
    let gk = next_gk t ~route:policy.rp_route_around in
    let finish r =
      Runtime.slow_record t.rt ~trace:prog_id ~kind:"prog" ~start:issued
        ~stop:(Engine.now engine)
        ~result:(match r with Ok _ -> "ok" | Error e -> e);
      match r with
      | Error e
        when retryable policy e
             && n < policy.rp_attempts
             && within_deadline policy ~engine ~first_issued ->
          (counters t).Runtime.client_retries <-
            (counters t).Runtime.client_retries + 1;
          Engine.schedule engine
            ~delay:(backoff_delay ~error:e policy ~id:prog_id ~attempt:n)
            (fun () -> attempt (n + 1))
      | r -> on_result r
    in
    Hashtbl.replace t.pending_prog prog_id finish;
    Runtime.send t.rt ~src:t.addr ~dst:(Runtime.gk_addr t.rt gk)
      (Msg.Prog_req
         { client = t.addr; prog_id; prog; params; starts; at; weak = consistency = `Weak });
    Engine.schedule engine ~delay:t.timeout (fun () ->
        match Hashtbl.find_opt t.pending_prog prog_id with
        | Some cb ->
            Hashtbl.remove t.pending_prog prog_id;
            suspect t gk;
            note_timed_out t ~id:prog_id ~issued ~kind:"prog";
            cb (Error "timeout")
        | None -> ())
  in
  attempt 1

let migrate_async t ~vid ~to_shard ~on_result =
  submit_tx t ~kind:"migrate" ~policy:t.policy
    ~mk_msg:(fun tx_id -> Msg.Migrate_req { client = t.addr; tx_id; vid; to_shard })
    ~on_result:(fun r -> on_result (Result.map ignore r))

(* Drive the simulation in bounded slices until the callback fires. The
   engine never idles (periodic server timers), so run in windows. *)
let sync_wait rt result =
  let budget = ref 120_000 in
  while Option.is_none !result && !budget > 0 do
    decr budget;
    let target = Engine.now rt.Runtime.engine +. 1_000.0 in
    Engine.run ~until:target rt.Runtime.engine
  done;
  match !result with Some r -> r | None -> Error "simulation stalled"

let commit t tx =
  let result = ref None in
  commit_async t tx ~on_result:(fun r -> result := Some r);
  sync_wait t.rt result

let commit_with_retry ?(attempts = 5) t tx =
  (* the session policy, widened to cover OCC conflicts too (a fresh
     submission gets a fresh, higher timestamp) and to honour [attempts] *)
  let policy =
    { t.policy with rp_attempts = max attempts t.policy.rp_attempts; rp_retry_conflicts = true }
  in
  let result = ref None in
  commit_with_reads_policy t ~policy tx ~on_result:(fun r ->
      result := Some (Result.map ignore r));
  sync_wait t.rt result

let commit_with_reads t tx =
  let result = ref None in
  commit_with_reads_async t tx ~on_result:(fun r -> result := Some r);
  sync_wait t.rt result

let migrate t ~vid ~to_shard =
  let result = ref None in
  migrate_async t ~vid ~to_shard ~on_result:(fun r -> result := Some r);
  sync_wait t.rt result

let run_program t ~prog ~params ~starts ?at ?consistency () =
  let result = ref None in
  run_program_async t ~prog ~params ~starts ?at ?consistency
    ~on_result:(fun r -> result := Some r)
    ();
  sync_wait t.rt result
