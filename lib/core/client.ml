module Engine = Weaver_sim.Engine
module Net = Weaver_sim.Net
module Vclock = Weaver_vclock.Vclock
module Idgen = Weaver_util.Idgen

type t = {
  rt : Runtime.t;
  addr : int;
  ids : Idgen.t;
  mutable next_req : int;
  mutable rr : int;
  mutable timeout : float;
  pending_tx : (int, ((string * Progval.t) list, string) result -> unit) Hashtbl.t;
  pending_prog : (int, (Progval.t, string) result -> unit) Hashtbl.t;
}

let handle t ~src:_ msg =
  match (msg : Msg.t) with
  | Msg.Tx_reply { tx_id; result; reads } -> (
      match Hashtbl.find_opt t.pending_tx tx_id with
      | Some cb ->
          Hashtbl.remove t.pending_tx tx_id;
          cb (Result.map (fun () -> reads) result)
      | None -> ())
  | Msg.Prog_reply { prog_id; result } -> (
      match Hashtbl.find_opt t.pending_prog prog_id with
      | Some cb ->
          Hashtbl.remove t.pending_prog prog_id;
          cb result
      | None -> ())
  | _ -> ()

let create rt =
  let t =
    {
      rt;
      addr = Runtime.fresh_client_addr rt;
      ids = Idgen.create ();
      next_req = 0;
      rr = 0;
      timeout = 3_000_000.0;
      pending_tx = Hashtbl.create 16;
      pending_prog = Hashtbl.create 16;
    }
  in
  Net.register rt.Runtime.net t.addr (fun ~src msg -> handle t ~src msg);
  t

let addr t = t.addr
let set_timeout t d = t.timeout <- d

let next_gk t =
  let g = t.rr mod t.rt.Runtime.cfg.Config.n_gatekeepers in
  t.rr <- t.rr + 1;
  Runtime.gk_addr t.rt g

let fresh_req t =
  t.next_req <- t.next_req + 1;
  (t.addr * 1_000_000) + t.next_req

(* request ids double as trace ids; expose the newest so callers can look
   up the request's span tree after the reply *)
let last_request_id t = (t.addr * 1_000_000) + t.next_req

module Tx = struct
  type tx = { client : t; mutable ops : Txop.t list (* newest first *) }

  let begin_ client = { client; ops = [] }
  let add tx op = tx.ops <- op :: tx.ops

  let create_vertex tx ?id () =
    let vid =
      match id with
      | Some id -> id
      | None -> Printf.sprintf "v%d_%d" tx.client.addr (Idgen.next tx.client.ids)
    in
    add tx (Txop.Create_vertex vid);
    vid

  let delete_vertex tx vid = add tx (Txop.Delete_vertex vid)

  let create_edge tx ~src ~dst =
    let eid = Printf.sprintf "e%d_%d" tx.client.addr (Idgen.next tx.client.ids) in
    add tx (Txop.Create_edge { eid; src; dst });
    eid

  let delete_edge tx ~src ~eid = add tx (Txop.Delete_edge { eid; src })

  let set_vertex_prop tx ~vid ~key ~value = add tx (Txop.Set_vertex_prop { vid; key; value })
  let del_vertex_prop tx ~vid ~key = add tx (Txop.Del_vertex_prop { vid; key })

  let set_edge_prop tx ~src ~eid ~key ~value =
    add tx (Txop.Set_edge_prop { src; eid; key; value })

  let del_edge_prop tx ~src ~eid ~key = add tx (Txop.Del_edge_prop { src; eid; key })
  let read_vertex tx vid = add tx (Txop.Read_vertex vid)
  let op_count tx = List.length tx.ops
end

(* every resolved request (reply or timeout) lands in the slow-request
   log; recording is pure bookkeeping and cannot affect the simulation *)
let watch_slow t ~trace ~kind ~issued on_result r =
  Runtime.slow_record t.rt ~trace ~kind ~start:issued
    ~stop:(Engine.now t.rt.Runtime.engine)
    ~result:(match r with Ok _ -> "ok" | Error e -> e);
  on_result r

let commit_with_reads_async t (tx : Tx.tx) ~on_result =
  let tx_id = fresh_req t in
  let issued = Engine.now t.rt.Runtime.engine in
  let on_result = watch_slow t ~trace:tx_id ~kind:"tx" ~issued on_result in
  Hashtbl.replace t.pending_tx tx_id on_result;
  Net.send t.rt.Runtime.net ~src:t.addr ~dst:(next_gk t)
    (Msg.Tx_req { client = t.addr; tx_id; ops = List.rev tx.Tx.ops });
  Engine.schedule t.rt.Runtime.engine ~delay:t.timeout (fun () ->
      match Hashtbl.find_opt t.pending_tx tx_id with
      | Some cb ->
          Hashtbl.remove t.pending_tx tx_id;
          cb (Error "timeout")
      | None -> ())

let commit_async t tx ~on_result =
  commit_with_reads_async t tx ~on_result:(fun r -> on_result (Result.map ignore r))

let run_program_async t ~prog ~params ~starts ?at ?(consistency = `Strong) ~on_result () =
  let rec attempt tries =
    let prog_id = fresh_req t in
    let issued = Engine.now t.rt.Runtime.engine in
    (* each retry is its own request id, so each attempt (including the
       timed-out ones being retried) is ranked separately *)
    let finish =
      watch_slow t ~trace:prog_id ~kind:"prog" ~issued (fun r ->
          match r with
          | Error ("timeout" | "epoch-change") when tries < 3 -> attempt (tries + 1)
          | r -> on_result r)
    in
    Hashtbl.replace t.pending_prog prog_id finish;
    Net.send t.rt.Runtime.net ~src:t.addr ~dst:(next_gk t)
      (Msg.Prog_req
         { client = t.addr; prog_id; prog; params; starts; at; weak = consistency = `Weak });
    Engine.schedule t.rt.Runtime.engine ~delay:t.timeout (fun () ->
        match Hashtbl.find_opt t.pending_prog prog_id with
        | Some cb ->
            Hashtbl.remove t.pending_prog prog_id;
            cb (Error "timeout")
        | None -> ())
  in
  attempt 0

let migrate_async t ~vid ~to_shard ~on_result =
  let tx_id = fresh_req t in
  let issued = Engine.now t.rt.Runtime.engine in
  Hashtbl.replace t.pending_tx tx_id
    (watch_slow t ~trace:tx_id ~kind:"migrate" ~issued (fun r ->
         on_result (Result.map ignore r)));
  Net.send t.rt.Runtime.net ~src:t.addr ~dst:(next_gk t)
    (Msg.Migrate_req { client = t.addr; tx_id; vid; to_shard });
  Engine.schedule t.rt.Runtime.engine ~delay:t.timeout (fun () ->
      match Hashtbl.find_opt t.pending_tx tx_id with
      | Some cb ->
          Hashtbl.remove t.pending_tx tx_id;
          cb (Error "timeout")
      | None -> ())

(* Drive the simulation in bounded slices until the callback fires. The
   engine never idles (periodic server timers), so run in windows. *)
let sync_wait rt result =
  let budget = ref 120_000 in
  while Option.is_none !result && !budget > 0 do
    decr budget;
    let target = Engine.now rt.Runtime.engine +. 1_000.0 in
    Engine.run ~until:target rt.Runtime.engine
  done;
  match !result with Some r -> r | None -> Error "simulation stalled"

let commit t tx =
  let result = ref None in
  commit_async t tx ~on_result:(fun r -> result := Some r);
  sync_wait t.rt result

let rec commit_with_retry ?(attempts = 5) t tx =
  match commit t tx with
  | Error "conflict" when attempts > 1 -> commit_with_retry ~attempts:(attempts - 1) t tx
  | r -> r

let commit_with_reads t tx =
  let result = ref None in
  commit_with_reads_async t tx ~on_result:(fun r -> result := Some r);
  sync_wait t.rt result

let migrate t ~vid ~to_shard =
  let result = ref None in
  migrate_async t ~vid ~to_shard ~on_result:(fun r -> result := Some r);
  sync_wait t.rt result

let run_program t ~prog ~params ~starts ?at ?consistency () =
  let result = ref None in
  run_program_async t ~prog ~params ~starts ?at ?consistency
    ~on_result:(fun r -> result := Some r)
    ();
  sync_wait t.rt result
