(** Hot-range replication controller (ROADMAP item 3): a periodic
    cluster-owned planner that installs follower copies of the hottest
    key ranges for read scale-out.

    Each round it re-broadcasts its standing plan (healing restarted
    shards and gatekeepers — [Repl_install] is idempotent everywhere),
    then nominates new ranges from the per-shard Space-Saving sketches:
    a range qualifies when it is not yet replicated, its owner is live,
    and its decayed read+write load exceeds the mean per-range load.
    Followers are the [Config.replication_factor] least-loaded live
    shards other than the owner. Owners then stream applied updates and
    watermark heartbeats to the followers ({!Shard}), and gatekeepers
    route covered reads to them ({!Gatekeeper}).

    Owned by {!Cluster} behind the default-off
    [Config.enable_replication]; rounds run every [Config.gc_period] µs
    (the cadence of the watermark gossip the stream piggybacks on).
    Progress lands in the [repl.rounds] / [repl.installs] /
    [repl.updates] / [repl.resyncs] / [repl.routed] counters. *)

type t

val create : Runtime.t -> t
(** @raise Invalid_argument unless the runtime has heat enabled. *)

val run_round : t -> unit
(** Execute one plan round now. {!Cluster} drives this from a periodic
    engine event; tests may call it directly. *)

val table : t -> Weaver_repl.Repl.Table.t
(** The controller's view of what is replicated where (tests and
    introspection). *)
