(** A complete simulated Weaver deployment (paper Fig. 4): gatekeepers,
    shard servers, the timeline oracle, the backing store, and the cluster
    manager, wired over a FIFO network inside one discrete-event engine.

    Typical use:
    {[
      let cluster = Cluster.create config in
      Weaver_programs.Std.register_all (Cluster.registry cluster);
      let client = Cluster.client cluster in
      let tx = Client.Tx.begin_ client in
      let v = Client.Tx.create_vertex tx () in
      ...
      match Client.commit client tx with ...
    ]} *)

type t

val create : Config.t -> t
(** Boot the deployment; servers and their periodic timers start
    immediately at virtual time 0. *)

val config : t -> Config.t
val runtime : t -> Runtime.t
val registry : t -> Nodeprog.registry
val counters : t -> Runtime.counters

val client : t -> Client.t
(** A new client session. *)

val register_program : t -> (module Nodeprog.PROGRAM) -> unit

val now : t -> float
(** Current virtual time, µs. *)

val run_for : t -> float -> unit
(** Advance the simulation by the given virtual duration. *)

val oracle_queries : t -> int
(** Total ordering requests served by the timeline oracle. *)

val epoch : t -> int
(** Current configuration epoch at the cluster manager. *)

(** {1 Failure injection (§4.3)} *)

val kill_gatekeeper : t -> int -> unit
(** Crash-stop a gatekeeper. The manager detects the failure by heartbeat
    timeout, spawns a replacement at the same address, and drives the
    epoch barrier. *)

val kill_shard : t -> int -> unit

val apply_fault : t -> Weaver_sim.Fault.action -> unit
(** Interpret one fault action against this deployment, immediately.
    Crashes are crash-stop at the network layer (and chain kills for
    oracle replicas); restarts revive the same instance in place —
    gatekeepers drop their memo table ({!Gatekeeper.on_revive}), shards
    resynchronize their FIFO channels and reload from the store
    ({!Shard.resync}), replicas reload, and oracle-replica restarts are
    documented no-ops (the chain has no state-transfer rejoin).
    [Net_degrade]/[Link_degrade] scale simulated latencies. *)

val install_fault_plan : t -> Weaver_sim.Fault.plan -> int
(** Schedule every event of a declarative fault plan on the engine
    (executed via {!apply_fault} at each event's virtual time); returns
    the number of events installed. Plans are data, so the same seed and
    plan replay bit-identically. *)

(** {1 Introspection for tests and tools} *)

val shard_vertex : t -> shard:int -> string -> Weaver_graph.Mgraph.vertex option
val stored_vertex : t -> string -> Weaver_graph.Mgraph.vertex option
val shard_of_vertex : t -> string -> int
val gk_clock : t -> int -> Runtime.Vclock.t
val shard_resident : t -> int -> int

val shard_resident_ids : t -> int -> string list
(** Sorted vids resident in shard memory (crash-recovery determinism
    tests). *)

val shard_snapshots : t -> int -> int
(** Snapshots currently retained by shard [i] ([Config.snapshot_reads]). *)

val shard_snapshots_pinned : t -> int -> int
(** Snapshots of shard [i] pinned by in-flight node programs. *)

val shard_gc_floor : t -> int -> Runtime.Vclock.t option
(** Shard [i]'s compaction floor: versions strictly below it are gone
    from its in-memory copy. *)

val reload_shards : t -> unit
(** Have every shard re-read its partition from the backing store. Used by
    offline bulk loaders after installing records directly. *)

val shard_queue_depths : t -> int -> int array
(** Pending transactions per gatekeeper queue at shard [i] (tests). *)

val replica_vertex :
  t -> shard:int -> replica:int -> string -> Weaver_graph.Mgraph.vertex option
(** In-memory record at a read-only replica (tests). *)

val replica_applied : t -> shard:int -> replica:int -> int
(** Replication-stream transactions applied by a replica (tests). *)

val gk_tau : t -> int -> float
(** Gatekeeper [i]'s current announce period (§3.5 adaptive τ). *)

val gk_credits : t -> gid:int -> shard:int -> int
(** Flow-control credits gatekeeper [gid] currently holds towards [shard]
    ([Config.shard_credits] when flow control is off); for tests. *)

val gk_repl_table : t -> int -> Weaver_repl.Repl.Table.t
(** Gatekeeper [i]'s hot-range routing table, with the follower
    watermarks it has heard advertised (tests and quick-looks). *)

val report : t -> string
(** Multi-line operational summary: virtual time, epoch, and every
    {!Runtime.counters} field — the text a metrics endpoint would serve. *)

(** {1 Observability} *)

val metrics : t -> Weaver_obs.Metrics.t
(** The metrics registry: legacy counters as gauges plus the per-phase
    latency reservoirs fed by the actors. *)

val request_tracer : t -> Weaver_obs.Trace.t option
(** The causal request tracer; [Some] iff [Config.enable_tracing]. *)

val timeline : t -> Weaver_obs.Timeline.t option
(** Ring-buffered registry samples; [Some] iff [Config.enable_timeline]. *)

val slow_log : t -> Weaver_obs.Slowlog.t
(** The always-on slow-request log (top [Config.slow_log_capacity]
    slowest client requests; per-phase breakdowns when tracing is on). *)

val heat : t -> Weaver_obs.Heat.t option
(** Per-shard heavy-hitter sketches and per-range decayed load
    accumulators; [Some] iff [Config.enable_heat]. *)

val health : t -> Weaver_obs.Health.t option
(** The cluster health watchdog (checks every [Config.health_period] µs);
    [Some] iff [Config.enable_health]. *)

val balancer : t -> Balancer.t option
(** The live rebalancing planner (rounds every [Config.rebalance_period]
    µs); [Some] iff [Config.enable_rebalance]. *)

val replicator : t -> Replicator.t option
(** The hot-range replication controller (rounds every [Config.gc_period]
    µs); [Some] iff [Config.enable_replication]. *)

val actor_of_addr : t -> int -> string
(** Name of the actor at a network address ("gk0", "shard2", ...) — the
    pid naming used by {!Weaver_obs.Export.chrome_trace}. *)

(** {1 Message tracing}

    A debugging aid: capture the last N messages crossing the simulated
    network, with virtual timestamps and rendered payloads. Composes with
    the request tracer (both see every send). *)

val enable_trace : t -> capacity:int -> unit
val disable_trace : t -> unit

val trace : t -> (float * int * int * string) list
(** [(time, src, dst, message)] entries, oldest first. *)

val clear_trace : t -> unit

val kill_oracle_replica : t -> int -> unit
(** Crash one replica of the chain-replicated timeline oracle (requires
    [Config.oracle_replicas > 1]; the last live replica is protected).
    Killing the head promotes its successor (§3.4). *)

val oracle_live_replicas : t -> int
(** Live replicas of the oracle chain (1 when unreplicated). *)
