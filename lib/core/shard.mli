(** Shard server — holds one in-memory partition of the multi-version graph
    and obeys the refinable-timestamp order (paper §3.2, §4.1–§4.2).

    The shard keeps one FIFO queue of incoming transactions per gatekeeper,
    prioritized by timestamp, and its event loop executes the globally
    earliest transaction whenever every queue is non-empty (NOPs guarantee
    liveness). Mutually concurrent queue heads are serialized by the
    timeline oracle, whose irrevocable decisions are cached locally. Node
    programs are delayed until every preceding or concurrent transaction
    has executed, then run against the snapshot at their timestamp,
    propagating hops to peer shards. *)

type t

val spawn : Runtime.t -> sid:int -> epoch:int -> t
(** Create shard [sid], register its handler at {!Runtime.shard_addr}, and
    start its heartbeat timer. A replacement spawned after a failure
    (with the current [epoch]) restores its partition from the backing
    store. *)

val retire : t -> unit

val sid : t -> int
val epoch : t -> int

val vertex : t -> string -> Weaver_graph.Mgraph.vertex option
(** In-memory record of a vertex on this shard (tests/introspection). *)

val resident_vertices : t -> int

val resident_ids : t -> string list
(** Sorted vids of the vertices resident in shard memory
    (tests/introspection — crash-recovery determinism checks). *)

val queue_depths : t -> int array
(** Pending transactions per gatekeeper queue (tests). *)

(** {1 Versioned snapshots} ([Config.snapshot_reads])

    At each watermark boundary the shard publishes a refcounted immutable
    snapshot of its partition, rebuilt from the durable store (which keeps
    the full version history). Historical node programs whose timestamp
    precedes a published snapshot pin it and run lock-free against it —
    skipping the refinable-timestamp gate, demand paging, and the LRU.
    Pinned snapshots clamp the compaction watermark. *)

val snapshots_retained : t -> int
(** Snapshots currently held (pinned or within the retention window). *)

val snapshots_pinned : t -> int
(** Snapshots pinned by in-flight node programs. *)

val gc_floor : t -> Weaver_vclock.Vclock.t option
(** Effective watermark of the last compaction: versions strictly below it
    are gone from the in-memory copy, so unpinned historical reads below
    it are answered with a retryable ["snapshot-gced"] error. *)

val reload : t -> unit
(** Re-read this shard's partition from the backing store (recovery path;
    also used by bulk preloading). *)

val resync : t -> unit
(** Crash-restart resynchronization within the current epoch: drop queued
    transactions and parked programs, re-baseline every per-gatekeeper
    FIFO channel, and {!reload} from the backing store. Used by fault-plan
    restarts that revive a shard in place before the failure detector
    replaces it; must be called before the network endpoint is marked
    alive again. *)

(** {1 Partial replication} ([Config.enable_replication])

    Hot-range replication state ({!Weaver_repl.Repl}). As an {e owner},
    the shard streams ops landing in its replicated ranges to followers
    and advances them with watermark heartbeats (or wholesale seeds, when
    the stream was interrupted). As a {e follower}, it keeps
    timestamp-consistent copies of other owners' hot ranges and serves
    node-program reads whose stamp its replication watermark covers. *)

val repl_owned_ranges : t -> int list
(** Ranges this shard owns and replicates out (sorted; tests/CLI). *)

val repl_followed_ranges : t -> int list
(** Ranges this shard follows copies of (sorted; tests/CLI). *)

val on_peer_restart : t -> peer:int -> unit
(** A peer shard crash-restarted, losing any follower copies it held: mark
    it dirty in every replicated range it follows (reseeded at the next
    watermark) and refill its stream-credit column. Called by the cluster
    fault layer alongside the gatekeepers' [on_shard_restart]. *)
