module Engine = Weaver_sim.Engine
module Net = Weaver_sim.Net
module Store = Weaver_store.Store
module Oracle = Weaver_oracle.Oracle
module Membership = Weaver_cluster.Membership
module Vclock = Weaver_vclock.Vclock
module Metrics = Weaver_obs.Metrics
module Heat = Weaver_obs.Heat
module Health = Weaver_obs.Health

type manager = {
  m_rt : Runtime.t;
  m_addr : int;
  membership : Membership.t;
  m_wm : (int, Vclock.t) Hashtbl.t; (* gatekeeper → latest watermark *)
  mutable acks : int;
}

type t = {
  rt : Runtime.t;
  mutable gks : Gatekeeper.t array;
  mutable shards : Shard.t array;
  mutable replicas : Replica.t array array; (* [shard].[replica] *)
  mgr : manager;
  trace_ring : (float * int * int * string) Queue.t;
  health : Health.t option;  (* Some iff [Config.enable_health] *)
  mutable balancer : Balancer.t option;  (* Some iff [Config.enable_rebalance] *)
  mutable replicator : Replicator.t option;  (* Some iff [Config.enable_replication] *)
}

let config t = t.rt.Runtime.cfg
let runtime t = t.rt
let registry t = t.rt.Runtime.registry
let counters t = t.rt.Runtime.counters
let client t = Client.create t.rt
let register_program t p = Nodeprog.register t.rt.Runtime.registry p
let now t = Engine.now t.rt.Runtime.engine

let run_for t dur =
  let engine = t.rt.Runtime.engine in
  Engine.run ~until:(Engine.now engine +. dur) engine

let oracle_queries t = Runtime.oracle_queries_served t.rt
let epoch t = Membership.epoch t.mgr.membership
let metrics t = t.rt.Runtime.metrics
let request_tracer t = t.rt.Runtime.tracer
let timeline t = t.rt.Runtime.timeline
let slow_log t = t.rt.Runtime.slowlog
let heat t = t.rt.Runtime.heat
let health t = t.health
let balancer t = t.balancer
let replicator t = t.replicator
let actor_of_addr t a = Runtime.actor_of_addr t.rt a

(* ------------------------------------------------------------------ *)
(* Cluster manager (§3.2, §4.3): failure detection by heartbeat timeout,
   replacement spawning, epoch barrier, and oracle GC. *)

let recover cluster failures =
  let mgr = cluster.mgr in
  let rt = cluster.rt in
  let new_epoch = Membership.bump_epoch mgr.membership in
  let old_epoch = new_epoch - 1 in
  List.iter
    (fun (id, role) ->
      rt.Runtime.counters.Runtime.recoveries <-
        rt.Runtime.counters.Runtime.recoveries + 1;
      match (role : Membership.role) with
      | Membership.Gatekeeper ->
          let gid = id in
          Gatekeeper.retire cluster.gks.(gid);
          (* replacement registers a fresh handler at the same address and
             re-registers with the manager *)
          cluster.gks.(gid) <- Gatekeeper.spawn rt ~gid ~epoch:old_epoch;
          Membership.register mgr.membership ~id ~role
            ~now:(Engine.now rt.Runtime.engine)
      | Membership.Shard ->
          let sid = id - rt.Runtime.cfg.Config.n_gatekeepers in
          Shard.retire cluster.shards.(sid);
          cluster.shards.(sid) <- Shard.spawn rt ~sid ~epoch:old_epoch;
          Membership.register mgr.membership ~id ~role
            ~now:(Engine.now rt.Runtime.engine))
    failures;
  (* the barrier: move every server to the new epoch in unison (§4.3) *)
  mgr.acks <- 0;
  for g = 0 to rt.Runtime.cfg.Config.n_gatekeepers - 1 do
    Runtime.send rt ~src:mgr.m_addr ~dst:(Runtime.gk_addr rt g)
      (Msg.Epoch_change { epoch = new_epoch })
  done;
  for s = 0 to rt.Runtime.cfg.Config.n_shards - 1 do
    Runtime.send rt ~src:mgr.m_addr ~dst:(Runtime.shard_addr rt s)
      (Msg.Epoch_change { epoch = new_epoch })
  done

let manager_handle cluster ~src:_ msg =
  let mgr = cluster.mgr in
  match (msg : Msg.t) with
  | Msg.Heartbeat { server } ->
      Membership.heartbeat mgr.membership ~id:server
        ~now:(Engine.now cluster.rt.Runtime.engine)
  | Msg.Epoch_ack { server = _; epoch = _ } -> mgr.acks <- mgr.acks + 1
  | Msg.Watermark { gk; ts } ->
      Hashtbl.replace mgr.m_wm gk ts;
      if Hashtbl.length mgr.m_wm = cluster.rt.Runtime.cfg.Config.n_gatekeepers then begin
        let wm =
          Hashtbl.fold
            (fun _ ts acc ->
              match acc with
              | None -> Some ts
              | Some m -> Some (Runtime.stamp_min m ts))
            mgr.m_wm None
          |> Option.get
        in
        ignore (Runtime.oracle_gc cluster.rt ~watermark:wm)
      end
  | _ -> ()

let start_manager cluster =
  let rt = cluster.rt in
  let mgr = cluster.mgr in
  Runtime.register rt mgr.m_addr (fun ~src msg ->
      manager_handle cluster ~src msg);
  let cfgv = rt.Runtime.cfg in
  Engine.every rt.Runtime.engine ~period:cfgv.Config.heartbeat_period (fun () ->
      let failures =
        Membership.detect_failures mgr.membership
          ~now:(Engine.now rt.Runtime.engine)
          ~timeout:cfgv.Config.failure_timeout
      in
      if failures <> [] then recover cluster failures;
      true)

(* ------------------------------------------------------------------ *)

let create cfg =
  Config.validate cfg;
  let rt = Runtime.create cfg in
  let mgr =
    {
      m_rt = rt;
      m_addr = Runtime.manager_addr rt;
      membership = Membership.create ();
      m_wm = Hashtbl.create 8;
      acks = 0;
    }
  in
  let cluster =
    {
      rt;
      gks = [||];
      shards = [||];
      replicas = [||];
      mgr;
      trace_ring = Queue.create ();
      health =
        (if cfg.Config.enable_health then begin
           (* a healthy watermark only advances every gc_period, so the
              stall threshold must span at least two gossip rounds or the
              watchdog alerts on the normal cadence *)
           let stall_checks =
             max Health.default_config.Health.stall_checks
               (1
               + int_of_float
                   (ceil (2.0 *. cfg.Config.gc_period /. cfg.Config.health_period)))
           in
           Some
             (Health.create
                ~config:{ Health.default_config with Health.stall_checks }
                ())
         end
         else None);
      balancer = None;
      replicator = None;
    }
  in
  cluster.gks <-
    Array.init cfg.Config.n_gatekeepers (fun gid -> Gatekeeper.spawn rt ~gid ~epoch:0);
  cluster.shards <-
    Array.init cfg.Config.n_shards (fun sid -> Shard.spawn rt ~sid ~epoch:0);
  cluster.replicas <-
    Array.init cfg.Config.n_shards (fun sid ->
        Array.init cfg.Config.read_replicas (fun rid -> Replica.spawn rt ~sid ~rid));
  Array.iter
    (fun gk ->
      Membership.register mgr.membership ~id:(Runtime.gk_addr rt (Gatekeeper.gid gk))
        ~role:Membership.Gatekeeper ~now:0.0)
    cluster.gks;
  Array.iter
    (fun sh ->
      Membership.register mgr.membership ~id:(Runtime.shard_addr rt (Shard.sid sh))
        ~role:Membership.Shard ~now:0.0)
    cluster.shards;
  start_manager cluster;
  (* the live rebalancer: created only when enabled, AFTER the server
     actors, so the planner's private client takes the first dynamic
     address only in runs that opted in — baseline address plans (and so
     fingerprints) are untouched. Rounds that plan nothing only read heat
     and directory state, which is why a balanced cluster with the knob on
     stays bit-identical to one with it off (test-enforced). *)
  (if cfg.Config.enable_rebalance then begin
     let b = Balancer.create rt in
     cluster.balancer <- Some b;
     Engine.every rt.Runtime.engine ~period:cfg.Config.rebalance_period (fun () ->
         Balancer.run_round b;
         true)
   end);
  (* the hot-range replication controller: like the balancer, created only
     when enabled so default-off runs schedule no extra events and keep
     their fingerprints. Rounds share the watermark cadence — the stream
     the installs start rides the same gossip *)
  (if cfg.Config.enable_replication then begin
     let r = Replicator.create rt in
     cluster.replicator <- Some r;
     Engine.every rt.Runtime.engine ~period:cfg.Config.gc_period (fun () ->
         Replicator.run_round r;
         true)
   end);
  (* the health watchdog: a periodic check over the registry snapshot and
     the manager's watermark table. Like the timeline sampler it only
     reads state — no sends, no RNG — so enabling it leaves the counter
     fingerprint bit-identical (pinned by a determinism test) *)
  (match cluster.health with
  | Some h ->
      let metrics = rt.Runtime.metrics in
      Metrics.gauge metrics "health.checks" (fun () -> Health.checks h);
      Metrics.gauge metrics "health.info" (fun () ->
          let i, _, _ = Health.alert_counts h in
          i);
      Metrics.gauge metrics "health.warn" (fun () ->
          let _, w, _ = Health.alert_counts h in
          w);
      Metrics.gauge metrics "health.crit" (fun () ->
          let _, _, c = Health.alert_counts h in
          c);
      Engine.every rt.Runtime.engine ~period:cfg.Config.health_period (fun () ->
          let watermark =
            if Hashtbl.length mgr.m_wm = 0 then None
            else
              Hashtbl.fold
                (fun _ ts acc ->
                  match acc with
                  | None -> Some ts
                  | Some m -> Some (Runtime.stamp_min m ts))
                mgr.m_wm None
              |> Option.map Vclock.key
          in
          Health.observe h
            ~now:(Engine.now rt.Runtime.engine)
            ~watermark
            ~values:(Metrics.int_values metrics);
          true)
  | None -> ());
  cluster

let kill_gatekeeper t gid = Net.set_alive t.rt.Runtime.net (Runtime.gk_addr t.rt gid) false
let kill_shard t sid = Net.set_alive t.rt.Runtime.net (Runtime.shard_addr t.rt sid) false

let shard_vertex t ~shard vid = Shard.vertex t.shards.(shard) vid

let stored_vertex t vid =
  match Store.get_now t.rt.Runtime.store (Runtime.vkey vid) with
  | Some (Runtime.Vrec v) -> Some v
  | _ -> None

let shard_of_vertex t vid = Runtime.shard_of_vertex t.rt vid
let gk_clock t gid = Gatekeeper.clock t.gks.(gid)
let shard_resident t sid = Shard.resident_vertices t.shards.(sid)
let shard_resident_ids t sid = Shard.resident_ids t.shards.(sid)
let shard_snapshots t sid = Shard.snapshots_retained t.shards.(sid)
let shard_snapshots_pinned t sid = Shard.snapshots_pinned t.shards.(sid)
let shard_gc_floor t sid = Shard.gc_floor t.shards.(sid)

let reload_shards t =
  Array.iter Shard.reload t.shards;
  Array.iter (Array.iter Replica.reload) t.replicas

let replica_vertex t ~shard ~replica vid = Replica.vertex t.replicas.(shard).(replica) vid
let replica_applied t ~shard ~replica = Replica.applied t.replicas.(shard).(replica)

let shard_queue_depths t sid = Shard.queue_depths t.shards.(sid)

let gk_tau t gid = Gatekeeper.current_tau t.gks.(gid)

let gk_credits t ~gid ~shard = Gatekeeper.credits_available t.gks.(gid) shard
let gk_repl_table t gid = Gatekeeper.repl_table t.gks.(gid)

(* per-cluster ring buffer of recent messages, enabled on demand; composes
   with the observability hook so enabling the debug ring never silences
   request tracing (the network has a single tracer slot) *)
let enable_trace t ~capacity =
  let obs = Runtime.obs_net_hook t.rt in
  Net.set_tracer t.rt.Runtime.net
    (Some
       (fun ~time ~src ~dst msg ->
         (match obs with Some f -> f ~time ~src ~dst msg | None -> ());
         if Queue.length t.trace_ring >= capacity then ignore (Queue.pop t.trace_ring);
         Queue.push (time, src, dst, Format.asprintf "%a" Msg.pp msg) t.trace_ring))

let disable_trace t = Net.set_tracer t.rt.Runtime.net (Runtime.obs_net_hook t.rt)

let trace t = Queue.fold (fun acc entry -> entry :: acc) [] t.trace_ring |> List.rev

let clear_trace t = Queue.clear t.trace_ring

let report t =
  let c = t.rt.Runtime.counters in
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "weaver cluster report @ %.0f us (epoch %d)" (now t) (epoch t);
  line "  gatekeepers %d | shards %d | replicas/shard %d"
    t.rt.Runtime.cfg.Config.n_gatekeepers t.rt.Runtime.cfg.Config.n_shards
    t.rt.Runtime.cfg.Config.read_replicas;
  line "  tx: committed %d, conflict-aborted %d, invalid %d" c.Runtime.tx_committed
    c.Runtime.tx_aborted c.Runtime.tx_invalid;
  line "  node programs completed %d (vertices read %d)" c.Runtime.progs_completed
    c.Runtime.vertices_read;
  line "  coordination: announces %d, nops %d, shard txs %d, prog batches %d"
    c.Runtime.announce_msgs c.Runtime.nop_msgs c.Runtime.shard_tx_msgs
    c.Runtime.prog_batch_msgs;
  line "  oracle: consults %d, cache hits %d, events %d, edges %d"
    c.Runtime.oracle_consults c.Runtime.oracle_cache_hits
    (Oracle.event_count t.rt.Runtime.oracle)
    (Oracle.edge_count t.rt.Runtime.oracle);
  line "  store: keys %d, commits %d, aborts %d, journal %d"
    (Store.length t.rt.Runtime.store)
    (Store.commits t.rt.Runtime.store)
    (Store.aborts t.rt.Runtime.store)
    (Store.journal_length t.rt.Runtime.store);
  line "  memory: page-ins %d, evictions %d | memo hits %d, invalidations %d (+%d remote)"
    c.Runtime.page_ins c.Runtime.evictions c.Runtime.memo_hits
    c.Runtime.memo_invalidations c.Runtime.memo_remote_invalidations;
  line "  cluster: recoveries %d, migrations %d, fault events %d" c.Runtime.recoveries
    c.Runtime.migrations c.Runtime.fault_events;
  line "  reliability: client retries %d, dedup hits %d, dedup dropped %d, late replies %d"
    c.Runtime.client_retries c.Runtime.dedup_hits c.Runtime.dedup_dropped
    c.Runtime.late_replies;
  line "  overload: shed %d (queue %d, deadline %d, credit %d) | credit msgs %d"
    (c.Runtime.shed_queue_full + c.Runtime.shed_deadline + c.Runtime.shed_credit)
    c.Runtime.shed_queue_full c.Runtime.shed_deadline c.Runtime.shed_credit
    c.Runtime.credit_msgs;
  line "  snapshots: published %d, pinned reads %d, gc deferred %d"
    c.Runtime.snap_published c.Runtime.snap_pinned_reads c.Runtime.snap_gc_deferred;
  (match t.balancer with
  | Some b ->
      line "  rebalance: rounds %d, moves %d, skipped %d, in flight %d"
        c.Runtime.rebal_rounds c.Runtime.rebal_moves c.Runtime.rebal_skipped
        (Balancer.pending_moves b)
  | None -> ());
  (match t.replicator with
  | Some r ->
      line "  replication: rounds %d, ranges %d, installs %d, updates %d, resyncs %d, routed %d"
        c.Runtime.repl_rounds
        (Weaver_repl.Repl.Table.size (Replicator.table r))
        c.Runtime.repl_installs c.Runtime.repl_updates c.Runtime.repl_resyncs
        c.Runtime.repl_routed
  | None -> ());
  line "  net: dropped at dead endpoints %d"
    (Net.messages_dropped t.rt.Runtime.net);
  (match t.rt.Runtime.heat with
  | Some h ->
      let hottest s =
        match Heat.top h ~shard:s with
        | (vid, n, _) :: _ -> Printf.sprintf "s%d:%s(%d)" s vid n
        | [] -> Printf.sprintf "s%d:-" s
      in
      line "  heat: skew %.2f | hottest %s"
        (Heat.skew h ~now:(now t))
        (String.concat " "
           (List.init (Heat.shards h) hottest))
  | None -> ());
  (match t.health with
  | Some h ->
      let i, w, cr = Health.alert_counts h in
      let last =
        match List.rev (Health.alerts h) with
        | a :: _ ->
            Printf.sprintf " | last: %s %s (%s)"
              (Health.severity_name a.Health.a_severity)
              a.Health.a_signal a.Health.a_detail
        | [] -> ""
      in
      line "  health: %d checks, alerts %d info / %d warn / %d crit%s"
        (Health.checks h) i w cr last
  | None -> ());
  Buffer.contents b

let kill_oracle_replica t i =
  match t.rt.Runtime.oracle_chain with
  | Some chain -> Weaver_oracle.Chain.kill chain i
  | None -> invalid_arg "kill_oracle_replica: oracle is not replicated"

let oracle_live_replicas t =
  match t.rt.Runtime.oracle_chain with
  | Some chain -> Weaver_oracle.Chain.live_count chain
  | None -> 1

(* ------------------------------------------------------------------ *)
(* Fault plans (Weaver_sim.Fault): interpret declarative actions against
   this deployment. Crashes are network-level (crash-stop: the endpoint
   neither receives nor sends); restarts revive the SAME instance in
   place, modelling a fast process restart that beats the failure
   detector — if the detector fires first, the replacement/epoch-barrier
   path takes over and the restart finds the endpoint already live. *)

module Fault = Weaver_sim.Fault

let fault_addr t = function
  | Fault.Gatekeeper g -> Runtime.gk_addr t.rt g
  | Fault.Shard s -> Runtime.shard_addr t.rt s
  | Fault.Replica { shard; replica } -> Runtime.replica_addr t.rt ~shard ~replica
  | Fault.Oracle_replica _ ->
      (* the oracle chain is not a network actor; no address *)
      invalid_arg "fault_addr: oracle replicas have no network address"

let apply_fault t action =
  let rt = t.rt in
  let net = rt.Runtime.net in
  rt.Runtime.counters.Runtime.fault_events <-
    rt.Runtime.counters.Runtime.fault_events + 1;
  match (action : Fault.action) with
  | Fault.Crash (Fault.Oracle_replica i) -> (
      (* protected configurations (unreplicated oracle, last live replica)
         make this a no-op rather than abort the whole plan *)
      try kill_oracle_replica t i with Invalid_argument _ -> ())
  | Fault.Restart (Fault.Oracle_replica _) ->
      (* the chain has no revive: a killed replica missed the sequence of
         apply commands, so bringing it back would serve stale decisions.
         Documented no-op; real recovery is a state-transfer rejoin. *)
      ()
  | Fault.Crash target -> Net.set_alive net (fault_addr t target) false
  | Fault.Restart (Fault.Gatekeeper g as target) ->
      Gatekeeper.on_revive t.gks.(g);
      Net.set_alive net (fault_addr t target) true
  | Fault.Restart (Fault.Shard s as target) ->
      (* resync BEFORE reviving the endpoint: it re-baselines the FIFO
         sequence channels, which must happen before any message arrives *)
      Shard.resync t.shards.(s);
      (* the dropped queues held Shard_txs whose flow-control credits will
         never be refunded: refill that column at every gatekeeper *)
      Array.iter (fun gk -> Gatekeeper.on_shard_restart gk s) t.gks;
      (* the restart also dropped any follower copies the shard held:
         owners streaming to it must mark it dirty and reseed at the next
         watermark instead of resuming a broken stream *)
      Array.iteri
        (fun sid sh -> if sid <> s then Shard.on_peer_restart sh ~peer:s)
        t.shards;
      Net.set_alive net (fault_addr t target) true
  | Fault.Restart (Fault.Replica { shard; replica } as target) ->
      Replica.reload t.replicas.(shard).(replica);
      Net.set_alive net (fault_addr t target) true
  | Fault.Net_degrade f -> Net.set_latency_factor net f
  | Fault.Link_degrade { src; dst; factor } ->
      Net.set_link_factor net ~src:(fault_addr t src) ~dst:(fault_addr t dst) factor

let install_fault_plan t plan =
  Fault.install t.rt.Runtime.engine plan ~exec:(apply_fault t)
