(** Deployment configuration for a simulated Weaver cluster. *)

type t = {
  n_gatekeepers : int;  (** timeline-coordinator gatekeeper servers (≥1) *)
  n_shards : int;  (** shard servers holding graph partitions (≥1) *)
  tau : float;
      (** vector-clock announce period in µs (paper §3.3); the proactive
          half of the refinable-timestamp tradeoff, swept in Fig. 14 *)
  nop_period : float;
      (** period of NOP transactions from gatekeepers to shards, bounding
          node-program delay (§4.2); the paper uses 10 µs — the simulation
          default is 100 µs to keep event counts manageable *)
  net_base_latency : float;  (** one-way message latency, µs *)
  net_jitter : float;  (** uniform extra latency, µs *)
  store_op_cost : float;
      (** backing-store cost per key accessed in a transaction, µs *)
  gk_op_cost : float;
      (** gatekeeper CPU time to admit one client request (timestamping,
          dispatch), µs; gatekeepers serve requests serially, so this is
          what makes them the bottleneck for vertex-local reads and lets
          throughput scale with added gatekeepers (Fig. 12) *)
  vertex_read_cost : float;
      (** shard-side cost to read one vertex in a node program, µs *)
  vertex_write_cost : float;  (** shard-side cost to apply one write, µs *)
  heartbeat_period : float;  (** µs between server heartbeats *)
  failure_timeout : float;  (** µs without heartbeat before declared dead *)
  gc_period : float;  (** µs between GC watermark rounds; 0 disables GC *)
  enable_memoization : bool;
      (** node-program result caching with write invalidation (§4.6);
          disabled in the headline benches, as in the paper *)
  dedup_window : int;
      (** committed [(client, tx_id)] pairs each gatekeeper remembers
          (FIFO-bounded) so a client retry of an already-committed
          transaction replies [Ok] instead of double-applying; peers learn
          commits via [Msg.Commit_note]. 0 disables duplicate
          suppression *)
  shard_capacity : int option;
      (** max vertices resident in shard memory; [Some n] enables demand
          paging from the backing store (§6.1), [None] = unbounded *)
  page_in_cost : float;  (** µs to demand-page one vertex from the store *)
  read_replicas : int;
      (** read-only replicas per shard (paper §6.4, "similar to TAO"):
          primaries stream applied transactions to them asynchronously and
          clients may direct node programs at them with weak consistency —
          reads can be stale, in exchange for extra read capacity *)
  adaptive_tau : bool;
      (** dynamic clock-synchronization period (§3.5): each gatekeeper
          adjusts its announce period to the observed request rate —
          quiescent systems announce rarely, busy ones often — seeking the
          Fig. 14 sweet spot automatically; [tau] is the starting value *)
  oracle_replicas : int;
      (** chain-replication factor of the timeline oracle (§3.4: "chain
          replicated for fault tolerance"); 1 = a single instance *)
  oracle_nonblocking : bool;
      (** non-blocking, coalesced refinement on the shard ordering hot path
          (§3.4, §4.3): an in-flight oracle consult stalls only the
          gatekeeper queues whose heads are in the undecided conflict set —
          other queues keep draining and NOP heads keep clearing — and
          conflicting pairs discovered while a consult is outstanding join
          its batch instead of issuing another round trip. [false] restores
          the historical whole-shard stall (one consult at a time, shard
          event loop frozen for the full round trip); kept as the baseline
          arm of the contention bench *)
  enable_tracing : bool;
      (** per-request causal tracing: thread trace ids through message
          envelopes and record span trees (admission wait, store round
          trips, shard queue wait) plus per-request message ledgers in the
          {!Weaver_obs.Trace} collector. Off by default: tracing records
          state but never schedules events, yet retaining span data costs
          memory, so benches opt in explicitly *)
  trace_capacity : int;
      (** traces retained by the collector before whole-trace eviction *)
  enable_timeline : bool;
      (** periodic sampling of every registry counter/gauge into
          ring-buffered {!Weaver_obs.Timeline} series. The sampler is a
          plain periodic engine event that only reads state — it never
          consumes randomness or reorders other events, so enabling it
          leaves commit/abort/message counts bit-identical (pinned by a
          determinism test). Off by default: retaining samples costs
          memory and sampling costs (real) time *)
  timeline_period : float;  (** µs between timeline samples *)
  timeline_capacity : int;
      (** samples retained before the ring overwrites the oldest *)
  slow_log_capacity : int;
      (** slowest client requests retained in the always-on slow-request
          log (with per-phase breakdowns when tracing is enabled) *)
  admission_limit : int;
      (** overload management ({!Weaver_flow.Flow}): max client requests
          waiting in a gatekeeper's serial admission queue before new ones
          are shed with an [Overloaded] reply. 0 (the default) disables the
          bound — today's unbounded behavior, kept as the bench baseline
          arm. Control traffic (NOPs, heartbeats, announces, commit notes)
          is never queued there and never shed *)
  deadline_budget : float;
      (** µs of projected admission-queue wait a client request may face
          before being shed up front — rejecting early beats letting the
          request time out downstream after consuming resources. 0.0
          disables deadline-based shedding *)
  shard_credits : int;
      (** credit-based gatekeeper→shard flow control: each gatekeeper holds
          this many send credits per shard, spends one per forwarded
          [Shard_tx], and gets them back as the shard applies them
          ([Msg.Credit]). A slow or latency-degraded shard drains its
          column and admission sheds writes bound for it instead of
          growing the FIFO without bound. NOPs ride for free (control
          class). 0 disables flow control *)
  snapshot_reads : bool;
      (** versioned snapshot store for lock-free analytics
          ({!Weaver_store.Snapshot}): at each GC watermark boundary a shard
          publishes a refcounted immutable snapshot of its partition,
          rebuilt from the durable store (which keeps full version
          history). A historical node program whose [at] timestamp
          precedes a published snapshot pins that snapshot and runs
          against it — skipping the per-gatekeeper queue gate, per-vertex
          OCC/paging and the LRU entirely, so whole-graph analytics never
          block writers and writers never evict the snapshot's reads.
          Pinned snapshots clamp the shard's compaction watermark (they
          are never compacted out from under a running program). Off by
          default; requires [gc_period > 0] *)
  snapshot_retain : int;
      (** published snapshots each shard retains beyond the pinned set
          (≥ 1); older unpinned snapshots are pruned as the watermark
          window rolls forward *)
  enable_heat : bool;
      (** load-heat attribution ({!Weaver_obs.Heat}): per-shard
          Space-Saving top-K heavy-hitter sketches over vertex touches
          plus per-key-range exponentially-decayed read/write/cross-shard
          load accumulators, recorded from the shard apply/program paths
          and the gatekeeper fan-out. Recording is O(1) pure bookkeeping —
          no events, no RNG, no messages — so enabling it leaves the
          registry counter fingerprint bit-identical (pinned by a
          determinism test). Off by default: touch recording costs (real)
          time on every operation *)
  heat_topk : int;  (** sketch counters per shard (fixed memory, ≥ 1) *)
  heat_ranges : int;
      (** key-range heat buckets (FNV-1a hash of the vertex handle); MUST
          be a multiple of [n_shards] when [enable_heat] is set
          (validated), so every range nests inside exactly one home shard
          under hashed placement — see {!align_heat_ranges} *)
  heat_half_life : float;
      (** half-life of the decayed range/shard load accumulators, in
          virtual µs *)
  enable_health : bool;
      (** cluster health watchdog ({!Weaver_obs.Health}): a periodic
          check over instruments that already exist — watermark stall,
          queue-depth growth, shed/credit-starvation rates, shard load
          skew, late replies — emitting edge-triggered severity-tagged
          alerts into a bounded ring shown by [Cluster.report]. The check
          only reads the registry snapshot, so it is fingerprint-invisible
          like the timeline sampler *)
  health_period : float;  (** µs between health checks *)
  enable_rebalance : bool;
      (** heat-driven live rebalancing ({!Balancer}): a periodic
          cluster-owned planner reads the {!Weaver_obs.Heat} shard loads
          and top-K sketches, picks hot vertices on shards loaded beyond
          the hysteresis band, and executes a bounded batch of moves per
          round through the ordinary OCC migrate path — no stop-the-world,
          failed moves simply retried by later rounds. Requires
          [enable_heat]. Off by default: when off, no planner client is
          created and no periodic event runs, so baseline runs are
          bit-identical *)
  rebalance_period : float;  (** µs between planner rounds *)
  rebalance_max_moves : int;
      (** max vertex migrations issued per planner round (bounds the
          background migration traffic a round may inject) *)
  rebalance_hysteresis : float;
      (** overload threshold as a multiple of the mean decayed shard load
          (≥ 1.0): a shard is overloaded only above [hysteresis × mean],
          and a candidate vertex moves only if its range heat exceeds the
          [(hysteresis − 1) × mean] band — the gap is what prevents move
          thrash on a merely-noisy balanced cluster *)
  net_batching : bool;
      (** coalesce small control-plane messages ([Msg.Credit],
          [Msg.Heartbeat], [Msg.Commit_note], NOP [Msg.Shard_tx],
          [Msg.Announce]) into one [Msg.Batch] per (src, dst) pair per
          engine tick: the first buffered message schedules a zero-delay
          flush, everything buffered for that pair until the flush fires
          rides the same wire message. Batches are unpacked back into
          individual handler calls in buffered order at delivery, so
          handlers never see [Msg.Batch]. Off by default: when off, sends
          bypass the buffers entirely and counter fingerprints are
          bit-identical to a build without the feature *)
  enable_replication : bool;
      (** timestamp-consistent partial replication of hot vertex ranges
          ({!Weaver_repl.Repl}, {!Replicator}): a periodic cluster-owned
          controller reads the {!Weaver_obs.Heat} top-K sketches, picks hot
          ranges, and installs follower copies on the least-loaded live
          shards. Owners stream applied updates to followers over ordinary
          [Net] channels and stamp them with their gossiped GC watermarks;
          gatekeepers then route reads at stamp [t] to any live follower
          whose replication watermark covers [t] (owner otherwise), while
          all writes stay on the owner. Requires [enable_heat] and
          [gc_period > 0]. Off by default: no controller is created and no
          messages are added, so baseline runs are bit-identical *)
  replication_factor : int;
      (** follower copies installed per replicated hot range (≥ 0; 0 keeps
          the controller idle — useful to pin knob-neutrality) *)
  repl_candidate_topk : int;
      (** hot-vertex sketch entries per shard the controller considers as
          replication candidates each round (≥ 1) *)
  seed : int;  (** master RNG seed; runs are deterministic per seed *)
}

val default : t
(** 2 gatekeepers, 4 shards, τ = 1000 µs, NOPs every 10 µs, datacenter-like
    latencies, GC every 50 ms, no memoization, no paging. *)

val align_heat_ranges : t -> t
(** Round [heat_ranges] up to the smallest positive multiple of
    [n_shards], preserving everything else — what config builders that
    vary the shard count should call before {!validate}. *)

val validate : t -> unit
(** @raise Invalid_argument on nonsensical settings. *)
