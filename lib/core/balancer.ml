(* Heat-driven live rebalancing (paper §4.6, ROADMAP item 1): the planner
   that closes the sense→plan→act loop over the PR-7 heat sensor.

   Each round (every [Config.rebalance_period] µs) the planner:

   - SENSES: reads the decayed per-shard loads from [Obs.Heat] and
     computes their mean. A shard is overloaded only above
     [hysteresis × mean]; a candidate vertex only qualifies if its key
     range's decayed read+write heat exceeds [(hysteresis − 1) ×] the
     average per-range load. The gap between "balanced" and "actionable"
     is what keeps a
     merely-noisy cluster from thrashing moves back and forth — like
     [Obs.Health], the planner is edge-triggered: it acts on the overload
     transition and stays quiet inside the band.

   - PLANS: candidates come from the overloaded shards' Space-Saving
     top-K sketches (hottest first, deterministic tie-breaks), verified
     against the live directory ([Runtime.shard_of_vertex]) so stale
     sketch entries for already-moved vertices are skipped, and assigned
     to the least-loaded LIVE shard (ties toward the lower index). Dead
     sources and dead destinations are skipped outright. Two further
     anti-thrash rules: a vertex moved within the last heat half-life is
     off-limits (its old shard's decayed load hasn't faded yet, so any
     judgement about it is stale), and a move is issued only if the
     destination would still be lighter than the source afterwards —
     relocating a hot spot wholesale is not an improvement. At most
     [rebalance_max_moves] moves are issued per round, and the projected
     range load is shifted between the in-round load estimates so one
     round spreads its moves rather than dog-piling one destination.
     Every input is deterministic simulation state, so the move log is a
     pure function of the run — reruns are bit-identical.

   - ACTS: moves execute through the ordinary OCC migrate path
     ([Client.migrate_async] → gatekeeper [handle_migrate_req]): a store
     transaction flips the directory entry, timestamp-ordered migrate ops
     drain the old owner and fill the new one, concurrent writers abort
     the move (not the other way around), and the dedup window makes
     retries safe. No stop-the-world anywhere. While any move is still in
     flight the next round only observes — it never plans — so a vertex
     can never have two outstanding migrations.

   Failures are tolerated, not fought: a move that times out or loses its
   OCC race counts as [rebal.skipped] and the shard simply stays hot until
   a later round retries the then-current hottest candidates. *)

module Engine = Weaver_sim.Engine
module Net = Weaver_sim.Net
module Heat = Weaver_obs.Heat

type move = { mv_time : float; mv_vid : string; mv_from : int; mv_to : int }

type t = {
  rt : Runtime.t;
  client : Client.t;  (* the planner's own session; created only when enabled *)
  heat : Heat.t;
  pending : (string, unit) Hashtbl.t;  (* vids with an in-flight migrate *)
  last_moved : (string, float) Hashtbl.t;  (* per-vid cooldown stamps *)
  mutable move_log : move list;  (* newest first; [move_log] reverses *)
}

let create rt =
  let heat =
    match rt.Runtime.heat with
    | Some h -> h
    | None -> invalid_arg "Balancer.create: requires Config.enable_heat"
  in
  {
    rt;
    client = Client.create rt;
    heat;
    pending = Hashtbl.create 32;
    last_moved = Hashtbl.create 32;
    move_log = [];
  }

let counters t = t.rt.Runtime.counters
let move_log t = List.rev t.move_log
let pending_moves t = Hashtbl.length t.pending

let skip t = (counters t).Runtime.rebal_skipped <- (counters t).Runtime.rebal_skipped + 1

let issue t ~vid ~from_shard ~to_shard =
  Hashtbl.replace t.pending vid ();
  Hashtbl.replace t.last_moved vid (Engine.now t.rt.Runtime.engine);
  t.move_log <-
    {
      mv_time = Engine.now t.rt.Runtime.engine;
      mv_vid = vid;
      mv_from = from_shard;
      mv_to = to_shard;
    }
    :: t.move_log;
  Client.migrate_async t.client ~vid ~to_shard ~on_result:(fun r ->
      Hashtbl.remove t.pending vid;
      match r with
      | Ok () -> (counters t).Runtime.rebal_moves <- (counters t).Runtime.rebal_moves + 1
      | Error _ -> skip t)

let run_round t =
  let c = counters t in
  c.Runtime.rebal_rounds <- c.Runtime.rebal_rounds + 1;
  (* in-flight moves: observe only, plan nothing — no double-migrate, and
     the next plan sees the post-move heat rather than a half-applied one *)
  if Hashtbl.length t.pending = 0 then begin
    let cfg = t.rt.Runtime.cfg in
    let n = cfg.Config.n_shards in
    let now = Engine.now t.rt.Runtime.engine in
    let loads = Array.init n (fun s -> Heat.shard_load t.heat ~shard:s ~now) in
    let mean = Array.fold_left ( +. ) 0.0 loads /. float_of_int n in
    if mean > 0.0 then begin
      let hyst = cfg.Config.rebalance_hysteresis in
      (* candidate ranges must be hot at *range* scale: above
         [(hyst − 1) ×] the average per-range load. A broad hot spot
         spreads over many ranges, each only modestly warm, so a
         shard-scale band would never let any single range qualify. *)
      let band =
        (hyst -. 1.0) *. mean *. float_of_int n /. float_of_int (Heat.ranges t.heat)
      in
      let alive s = Net.is_alive t.rt.Runtime.net (Runtime.shard_addr t.rt s) in
      let overloaded =
        List.filter (fun s -> loads.(s) > hyst *. mean) (List.init n Fun.id)
        |> List.sort (fun a b ->
               if loads.(a) <> loads.(b) then Float.compare loads.(b) loads.(a)
               else compare a b)
      in
      let budget = ref cfg.Config.rebalance_max_moves in
      (* one move per key range per round: the load estimate moves at
         range granularity, so a second vertex of the same range has no
         heat left to justify it this round *)
      let claimed = Hashtbl.create 8 in
      List.iter
        (fun src ->
          if !budget > 0 then begin
            if not (alive src) then skip t
            else
              List.iter
                (fun (vid, _count, _err) ->
                  (* cooldown: the decayed load a vertex left behind at its
                     old shard takes a half-life to fade, so re-judging a
                     recently moved vertex before then acts on stale heat
                     and ping-pongs it between shards *)
                  let cooling =
                    match Hashtbl.find_opt t.last_moved vid with
                    | Some t0 -> now -. t0 < cfg.Config.heat_half_life
                    | None -> false
                  in
                  if !budget > 0 && (not (Hashtbl.mem t.pending vid)) && not cooling
                  then begin
                    if Runtime.shard_of_vertex t.rt vid <> src then
                      (* stale sketch entry: the vertex already moved *)
                      skip t
                    else begin
                      let range = Heat.range_of t.heat vid in
                      let rl =
                        Heat.range_load t.heat ~range ~kind:Heat.Read ~now
                        +. Heat.range_load t.heat ~range ~kind:Heat.Write ~now
                      in
                      if rl > band && not (Hashtbl.mem claimed range) then begin
                        let dst = ref (-1) in
                        for s = 0 to n - 1 do
                          if s <> src && alive s && (!dst < 0 || loads.(s) < loads.(!dst))
                          then dst := s
                        done;
                        if !dst < 0 then skip t (* no live destination *)
                        else if loads.(!dst) +. rl >= loads.(src) then
                          (* moving would just relocate the hot spot: not
                             an improvement, leave it for decay to settle *)
                          ()
                        else begin
                          decr budget;
                          Hashtbl.replace claimed range ();
                          loads.(src) <- loads.(src) -. rl;
                          loads.(!dst) <- loads.(!dst) +. rl;
                          issue t ~vid ~from_shard:src ~to_shard:!dst
                        end
                      end
                    end
                  end)
                (Heat.top t.heat ~shard:src)
          end)
        overloaded
    end
  end
