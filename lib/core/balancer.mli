(** Heat-driven live rebalancing (paper §4.6): a periodic cluster-owned
    planner that closes the sense→plan→act loop over {!Weaver_obs.Heat}.

    Each round it reads the decayed per-shard loads, finds shards loaded
    beyond [Config.rebalance_hysteresis × mean], picks their hottest
    vertices from the Space-Saving sketches (verified against the live
    directory), and issues at most [Config.rebalance_max_moves]
    migrations to the least-loaded live shards — through the ordinary OCC
    migrate path, so there is no stop-the-world and concurrent writers
    win races against the mover. Failed or timed-out moves count as
    [rebal.skipped] and are simply retried by a later round's plan.

    Like {!Weaver_obs.Health}, the planner is edge-triggered: inside the
    hysteresis band it does nothing, and while issued moves are still in
    flight a round only observes (a vertex never has two outstanding
    migrations). Anti-thrash: a vertex is not reconsidered within one
    heat half-life of its last move (the load it left behind decays over
    exactly that horizon), and a move only happens when the destination
    stays lighter than the source afterwards. Every planning input is deterministic simulation state,
    so {!move_log} is bit-identical across reruns of the same seed.

    Owned by {!Cluster} behind the default-off [Config.enable_rebalance];
    rounds run every [Config.rebalance_period] µs. Progress lands in the
    [rebal.rounds] / [rebal.moves] / [rebal.skipped] counters. *)

type t

type move = {
  mv_time : float;  (** virtual time the move was issued *)
  mv_vid : string;
  mv_from : int;
  mv_to : int;
}

val create : Runtime.t -> t
(** Creates the planner and its private client session (so enabling the
    balancer never perturbs the address plan of user clients created
    before it).
    @raise Invalid_argument unless the runtime has heat enabled. *)

val run_round : t -> unit
(** Execute one sense→plan→act round now. {!Cluster} drives this from a
    periodic engine event; tests may call it directly. *)

val move_log : t -> move list
(** Every move ever issued, oldest first — the deterministic audit log
    (issued ≠ succeeded; see [rebal.moves] vs [rebal.skipped]). *)

val pending_moves : t -> int
(** Issued migrations whose outcome has not yet arrived. *)
