(** Client sessions — the public face of the database (paper §2.2, §2.3).

    A client buffers graph updates inside a transaction block and submits
    them as a batch to a gatekeeper ({!Tx}), and invokes node programs over
    start vertices ({!run_program}). Both come in asynchronous
    (callback-based, for closed-loop benchmark drivers) and synchronous
    (engine-driving, for examples and tests) flavours.

    Synchronous calls advance the simulation until the reply arrives, so
    they must not be nested inside another actor's handler. *)

type t

val create : Runtime.t -> t
(** New client with its own network address, connecting to gatekeepers
    round-robin. *)

val addr : t -> int

val last_request_id : t -> int
(** Id of this client's most recently issued request (transaction, node
    program, or migration). Request ids double as trace ids, so this is
    the key to the request's spans in {!Weaver_obs.Trace} (0 before the
    first request). *)

(** Transaction blocks (paper Fig. 2). *)
module Tx : sig
  type tx

  val begin_ : t -> tx

  val create_vertex : tx -> ?id:string -> unit -> string
  (** Buffer a vertex creation; returns its handle (auto-generated unless
      [id] is given). *)

  val delete_vertex : tx -> string -> unit

  val create_edge : tx -> src:string -> dst:string -> string
  (** Buffer an edge creation; returns the edge handle. *)

  val delete_edge : tx -> src:string -> eid:string -> unit
  val set_vertex_prop : tx -> vid:string -> key:string -> value:string -> unit
  val del_vertex_prop : tx -> vid:string -> key:string -> unit
  val set_edge_prop : tx -> src:string -> eid:string -> key:string -> value:string -> unit
  val del_edge_prop : tx -> src:string -> eid:string -> key:string -> unit

  val read_vertex : tx -> string -> unit
  (** Declare an optimistic read dependency: commit fails if the vertex is
      concurrently modified. *)

  val op_count : tx -> int
end

val commit_async : t -> Tx.tx -> on_result:((unit, string) result -> unit) -> unit
(** Submit the batch to a gatekeeper. The callback fires exactly once, with
    [Error "timeout"] if no reply arrives within the client timeout (e.g.
    the gatekeeper crashed). *)

val commit : t -> Tx.tx -> (unit, string) result
(** Synchronous {!commit_async}: drives the simulation until the reply. *)

val run_program_async :
  t ->
  prog:string ->
  params:Progval.t ->
  starts:string list ->
  ?at:Runtime.Vclock.t ->
  ?consistency:[ `Strong | `Weak ] ->
  on_result:((Progval.t, string) result -> unit) ->
  unit ->
  unit
(** Invoke a registered node program. [?at] targets a past snapshot
    (historical query on the multi-version graph); omit it for "now".
    [?consistency] defaults to [`Strong] (strictly serializable, on the
    primaries); [`Weak] routes to read-only shard replicas when the
    deployment has them (§6.4) — lower load on primaries, but reads may
    miss recently committed writes. Retries transparently on gatekeeper
    failure (programs are read-only). *)

val run_program :
  t ->
  prog:string ->
  params:Progval.t ->
  starts:string list ->
  ?at:Runtime.Vclock.t ->
  ?consistency:[ `Strong | `Weak ] ->
  unit ->
  (Progval.t, string) result
(** Synchronous {!run_program_async}. *)

val set_timeout : t -> float -> unit
(** Reply timeout in virtual µs (default 3 s). *)

val commit_with_reads_async :
  t ->
  Tx.tx ->
  on_result:(((string * Progval.t) list, string) result -> unit) ->
  unit
(** Like {!commit_async}, additionally returning one [(vid, summary)] pair
    per {!Tx.read_vertex} operation, read inside the same atomic store
    transaction. A summary is [Assoc {vid; degree; out; props}], or [Null]
    if the vertex does not exist. *)

val commit_with_reads :
  t -> Tx.tx -> ((string * Progval.t) list, string) result
(** Synchronous {!commit_with_reads_async}. *)

val migrate_async :
  t -> vid:string -> to_shard:int -> on_result:((unit, string) result -> unit) -> unit
(** Relocate a vertex to another shard (dynamic colocation, §4.6). The
    move is serialized like a transaction: the directory entry changes
    atomically, and subsequent operations — including ones racing the
    move — route to the new owner. *)

val migrate : t -> vid:string -> to_shard:int -> (unit, string) result
(** Synchronous {!migrate_async}. *)

val commit_with_retry : ?attempts:int -> t -> Tx.tx -> (unit, string) result
(** {!commit} that resubmits on OCC [conflict] aborts (the retry loop §4.2
    prescribes — a fresh submission gets a fresh, higher timestamp). At
    most [attempts] tries (default 5); other errors are returned as-is. *)
