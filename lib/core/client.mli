(** Client sessions — the public face of the database (paper §2.2, §2.3).

    A client buffers graph updates inside a transaction block and submits
    them as a batch to a gatekeeper ({!Tx}), and invokes node programs over
    start vertices ({!run_program}). Both come in asynchronous
    (callback-based, for closed-loop benchmark drivers) and synchronous
    (engine-driving, for examples and tests) flavours.

    Synchronous calls advance the simulation until the reply arrives, so
    they must not be nested inside another actor's handler. *)

type t

(** Unified retry policy for all three request paths — transactions, node
    programs, and migrations. A request is attempted up to [rp_attempts]
    times; retryable failures ([timeout], [epoch-change], and [conflict]
    when [rp_retry_conflicts] is set) are resubmitted after an exponential
    backoff ([rp_backoff] µs base, doubling per attempt, capped at
    [rp_backoff_cap]) with deterministic jitter derived from the request
    id — no engine randomness is consumed, so retry timing never perturbs
    other random streams. [rp_deadline] bounds the total time across
    attempts. [rp_route_around] enables failure-aware gatekeeper selection:
    round-robin that skips gatekeepers whose last request timed out
    (suspicion expires after twice the client timeout, or on any reply).

    Transactions and migrations reuse one transaction id across attempts,
    so the gatekeepers' duplicate-suppression window answers a retry of a
    timed-out-but-committed submission with [Ok] instead of re-executing
    it. *)
type retry_policy = {
  rp_attempts : int;
  rp_backoff : float;
  rp_backoff_cap : float;
  rp_deadline : float option;
  rp_retry_conflicts : bool;
  rp_route_around : bool;
}

val default_policy : retry_policy
(** 4 attempts, no backoff, no deadline, no conflict retry, routing on —
    the historical behaviour of the node-program path, now applied
    uniformly. *)

val reliable_policy : retry_policy
(** 8 attempts, 2 ms exponential backoff capped at 100 ms, conflict retry
    and routing on — for clients that must ride out failures. *)

val no_retry_policy : retry_policy
(** Single attempt, no routing — the pre-reliability client, for tests
    that assert on raw failure behaviour. *)

val retryable : retry_policy -> string -> bool
(** Whether the policy resubmits after the given error string. [timeout]
    and [epoch-change] always; [conflict] iff [rp_retry_conflicts];
    overload rejections ([shed:queue] / [shed:deadline] / [shed:credit],
    from [Msg.Overloaded]) always — they were refused before consuming
    anything, and the retry backs off by at least a 2 ms floor (doubling,
    deterministically jittered) even under zero-backoff policies, which is
    what makes shedding an effective backpressure signal rather than a
    retry storm. *)

val create : Runtime.t -> t
(** New client with its own network address, connecting to gatekeepers
    round-robin under {!default_policy}. *)

val set_retry_policy : t -> retry_policy -> unit
val retry_policy : t -> retry_policy

val set_gatekeeper : t -> int option -> unit
(** Pin every subsequent request to one gatekeeper (bypassing round-robin
    and routing), or [None] to unpin. Tests use this to target a specific
    gatekeeper's memo table. *)

val addr : t -> int

val last_request_id : t -> int
(** Id of this client's most recently issued request (transaction, node
    program, or migration). Request ids double as trace ids, so this is
    the key to the request's spans in {!Weaver_obs.Trace} (0 before the
    first request). *)

(** Transaction blocks (paper Fig. 2). *)
module Tx : sig
  type tx

  val begin_ : t -> tx

  val create_vertex : tx -> ?id:string -> unit -> string
  (** Buffer a vertex creation; returns its handle (auto-generated unless
      [id] is given). *)

  val delete_vertex : tx -> string -> unit

  val create_edge : tx -> src:string -> dst:string -> string
  (** Buffer an edge creation; returns the edge handle. *)

  val delete_edge : tx -> src:string -> eid:string -> unit
  val set_vertex_prop : tx -> vid:string -> key:string -> value:string -> unit
  val del_vertex_prop : tx -> vid:string -> key:string -> unit
  val set_edge_prop : tx -> src:string -> eid:string -> key:string -> value:string -> unit
  val del_edge_prop : tx -> src:string -> eid:string -> key:string -> unit

  val read_vertex : tx -> string -> unit
  (** Declare an optimistic read dependency: commit fails if the vertex is
      concurrently modified. *)

  val op_count : tx -> int
end

val commit_async : t -> Tx.tx -> on_result:((unit, string) result -> unit) -> unit
(** Submit the batch to a gatekeeper under the session's retry policy. The
    callback fires exactly once, with the last attempt's error (e.g.
    [Error "timeout"]) once retries are exhausted. *)

val commit : t -> Tx.tx -> (unit, string) result
(** Synchronous {!commit_async}: drives the simulation until the reply. *)

val run_program_async :
  t ->
  prog:string ->
  params:Progval.t ->
  starts:string list ->
  ?at:Runtime.Vclock.t ->
  ?consistency:[ `Strong | `Weak ] ->
  on_result:((Progval.t, string) result -> unit) ->
  unit ->
  unit
(** Invoke a registered node program. [?at] targets a past snapshot
    (historical query on the multi-version graph); omit it for "now".
    [?consistency] defaults to [`Strong] (strictly serializable, on the
    primaries); [`Weak] routes to read-only shard replicas when the
    deployment has them (§6.4) — lower load on primaries, but reads may
    miss recently committed writes. Retries transparently on gatekeeper
    failure (programs are read-only). *)

val run_program :
  t ->
  prog:string ->
  params:Progval.t ->
  starts:string list ->
  ?at:Runtime.Vclock.t ->
  ?consistency:[ `Strong | `Weak ] ->
  unit ->
  (Progval.t, string) result
(** Synchronous {!run_program_async}. *)

val set_timeout : t -> float -> unit
(** Reply timeout in virtual µs (default 3 s). *)

val commit_with_reads_async :
  t ->
  Tx.tx ->
  on_result:(((string * Progval.t) list, string) result -> unit) ->
  unit
(** Like {!commit_async}, additionally returning one [(vid, summary)] pair
    per {!Tx.read_vertex} operation, read inside the same atomic store
    transaction. A summary is [Assoc {vid; degree; out; props}], or [Null]
    if the vertex does not exist. *)

val commit_with_reads :
  t -> Tx.tx -> ((string * Progval.t) list, string) result
(** Synchronous {!commit_with_reads_async}. *)

val migrate_async :
  t -> vid:string -> to_shard:int -> on_result:((unit, string) result -> unit) -> unit
(** Relocate a vertex to another shard (dynamic colocation, §4.6). The
    move is serialized like a transaction: the directory entry changes
    atomically, and subsequent operations — including ones racing the
    move — route to the new owner. *)

val migrate : t -> vid:string -> to_shard:int -> (unit, string) result
(** Synchronous {!migrate_async}. *)

val commit_with_retry : ?attempts:int -> t -> Tx.tx -> (unit, string) result
(** {!commit} under the session policy widened to also resubmit on OCC
    [conflict] aborts (the retry loop §4.2 prescribes — a fresh submission
    gets a fresh, higher timestamp) and to allow at least [attempts] tries
    (default 5); other errors are returned as-is. *)
