module Vclock = Weaver_vclock.Vclock
module Engine = Weaver_sim.Engine
module Net = Weaver_sim.Net
module Store = Weaver_store.Store
module Snapshot = Weaver_store.Snapshot
module Oracle = Weaver_oracle.Oracle
module Mgraph = Weaver_graph.Mgraph
module Intern = Weaver_util.Intern
module Flow = Weaver_flow.Flow
module Heat = Weaver_obs.Heat
module Repl = Weaver_repl.Repl

type queued_tx = {
  q_seq : int;
  q_ts : Vclock.t;
  q_ops : Msg.shard_op list;
  q_trace : int; (* originating request's trace id (0 for NOPs) *)
  q_enq : float; (* when it entered this queue, for queue-wait metrics *)
}

(* An immutable copy of this shard's partition as of [sg_ts], rebuilt from
   the durable store at a watermark boundary. The store keeps the full
   version history (only in-memory copies are ever compacted) and vertex
   records are functional, so sharing them here is safe and the snapshot
   answers any read at [at ≺ sg_ts] exactly. *)
type snap_graph = {
  sg_ts : Vclock.t;
  sg_graph : (int, Mgraph.vertex) Hashtbl.t;
      (* keyed by this shard's interned vertex handles *)
}

type parked_prog = {
  p_coord : int;
  p_id : int;
  p_ts : Vclock.t;
  p_prog : string;
  p_historical : bool;
  p_items : (string * Progval.t) list;
  p_since : float;  (* when this batch was parked *)
  p_snap : snap_graph Snapshot.entry option;
      (* pinned snapshot this batch reads from; None = live graph *)
}

(* Partial replication ([Config.enable_replication], ROADMAP item 3).
   Owner side: per-range follower lists plus the set of followers whose
   stream is interrupted (install just happened, or a credit column ran
   dry) and who therefore need a wholesale reseed at the next watermark
   boundary. Follower side: per-range owner and the monotone replication
   watermark this copy is known to cover ([None] until the first seed). *)
type repl_out = {
  ro_followers : int list;
  ro_dirty : (int, unit) Hashtbl.t;
}

type repl_in = {
  rin_owner : int;
  mutable rin_wm : Vclock.t option;
  mutable rin_floor : Vclock.t option;
      (* the cut of the last seed: the owner's records were compacted up
         to it, so reads strictly below must miss (and chase the owner,
         whose snapshot store may still cover them) instead of silently
         reading post-compaction state *)
}

type t = {
  rt : Runtime.t;
  sid : int;
  addr : int;
  names : Intern.t;
      (* hash-consed vertex-id handles: every shard-internal table below is
         keyed by a dense int handle, so the hot path (apply_op, node-program
         visits, eviction) compares and hashes machine integers instead of
         re-hashing vid strings. Interning is append-only and survives epoch
         changes — a handle, once issued, stays valid for the shard's life. *)
  graph : (int, Mgraph.vertex) Hashtbl.t;
  lru : int Queue.t; (* approximate recency for demand paging *)
  lru_count : (int, int) Hashtbl.t;
      (* occurrences of each vertex in [lru]; lets eviction skip stale
         duplicate entries in O(1) instead of scanning the whole queue *)
  queues : queued_tx Queue.t array; (* one FIFO per gatekeeper *)
  last_seq : int array;
  seq_epoch : int array; (* epoch in which last_seq was recorded *)
  cache : Runtime.decision_cache;
  last_applied : Vclock.t option array; (* newest executed stamp per gk *)
  prog_state : (int, (int, Progval.t) Hashtbl.t) Hashtbl.t;
  mutable parked : parked_prog list;
  mutable oracle_inflight : bool;
      (* a serialize round trip to the timeline oracle is outstanding *)
  oracle_batch : (Vclock.t, unit) Hashtbl.t;
      (* stamps (by key) covered by the in-flight consult: queue heads in
         here are stalled; everything else keeps draining. Conflicts found
         while the consult is out join this set instead of issuing another
         round trip (coalescing). *)
  mutable oracle_batch_list : Vclock.t list; (* batch in reverse join order *)
  mutable oracle_gen : int;
      (* invalidates the scheduled completion callback across epoch changes
         and crash-restarts *)
  mutable busy_until : float;
  mutable busy_us : float; (* total service time charged — utilization *)
  mutable epoch : int;
  wm : Vclock.t option array; (* latest watermark per gatekeeper *)
  snaps : snap_graph Snapshot.t; (* published partition snapshots *)
  pins : (int, snap_graph Snapshot.entry) Hashtbl.t; (* prog_id -> pin *)
  mutable gc_floor : Vclock.t option;
      (* effective watermark of the last compaction: versions strictly
         below it are gone from the in-memory copies, so a historical read
         below it (with no pinned snapshot) must fail retryably instead of
         silently reading post-compaction state *)
  repl_out : (int, repl_out) Hashtbl.t;  (* ranges owned here, replicated out *)
  repl_in : (int, repl_in) Hashtbl.t;  (* ranges followed here *)
  repl_graph : (string, Mgraph.vertex) Hashtbl.t;
      (* follower copies of other owners' hot ranges, keyed by the vid
         string and kept strictly apart from [graph]: these records are
         never owned, never paged, never compacted here *)
  repl_credits : Flow.Credits.t;
      (* owner→follower stream credits (one column per peer shard, sized
         by [Config.shard_credits]): a slow follower drains its column and
         the stream is interrupted (dirty + reseed) instead of growing the
         follower's queue without bound *)
  mutable retired : bool;
}

let sid t = t.sid
let epoch t = t.epoch
let vertex t vid =
  match Intern.find t.names vid with
  | Some h -> Hashtbl.find_opt t.graph h
  | None -> None

let resident_vertices t = Hashtbl.length t.graph

let resident_ids t =
  Hashtbl.fold (fun h _ acc -> Intern.name t.names h :: acc) t.graph []
  |> List.sort String.compare

let queue_depths t = Array.map Queue.length t.queues
let snapshots_retained t = Snapshot.count t.snaps
let snapshots_pinned t = List.length (Snapshot.pinned t.snaps)
let gc_floor t = t.gc_floor

let cfg t = t.rt.Runtime.cfg
let counters t = t.rt.Runtime.counters
let send t ~dst msg = Runtime.send t.rt ~src:t.addr ~dst msg
let actor t = "shard" ^ string_of_int t.sid
let now t = Engine.now t.rt.Runtime.engine

(* the decision procedure for version stamps: vector clocks, then cached or
   fresh oracle decisions; ties prefer the first argument (transactions
   before node programs, earlier writers before later ones) *)
let before t a b = Runtime.before t.cache t.rt a b ~prefer_first_on_tie:true

(* ------------------------------------------------------------------ *)
(* Partial replication plumbing shared by the owner and follower roles. *)

(* the heat range a vertex falls in; replication candidates and follower
   copies are keyed by these ranges, so owner and controller must agree *)
let repl_range t vid =
  match t.rt.Runtime.heat with Some h -> Heat.range_of h vid | None -> -1

let repl_followed_ranges t =
  List.sort compare (Hashtbl.fold (fun r _ acc -> r :: acc) t.repl_in [])

let repl_owned_ranges t =
  List.sort compare (Hashtbl.fold (fun r _ acc -> r :: acc) t.repl_out [])

(* follower-side lookup: serve a vertex from a followed range copy iff the
   range's replication watermark covers the read stamp — then the copy has
   every version the read could see, and the answer is bit-identical to
   the owner's at the same cut *)
let repl_lookup t vid at =
  if Hashtbl.length t.repl_in = 0 then None
  else
    match Hashtbl.find_opt t.repl_in (repl_range t vid) with
    | Some { rin_wm = Some wm; rin_floor = Some floor; _ }
      when Repl.covers ~wm at && not (Vclock.precedes at floor) ->
        Hashtbl.find_opt t.repl_graph vid
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Demand paging (§6.1): vertices are fetched from the backing store on a
   miss and evicted in approximate LRU order when over capacity. *)

let touch t h =
  if (cfg t).Config.shard_capacity <> None then begin
    Queue.push h t.lru;
    let n = Option.value ~default:0 (Hashtbl.find_opt t.lru_count h) in
    Hashtbl.replace t.lru_count h (n + 1)
  end

(* Pop recency entries until under capacity. A popped entry is a genuine
   LRU victim only when it is the vertex's *last* occurrence in the queue
   (no fresher touch behind it) — tracked by the per-vertex occurrence
   count, making each pop O(1) amortized instead of a full queue scan. *)
let evict_to_capacity t ~keep =
  match (cfg t).Config.shard_capacity with
  | None -> ()
  | Some cap ->
      while Hashtbl.length t.graph > cap && not (Queue.is_empty t.lru) do
        let victim = Queue.pop t.lru in
        let remaining =
          match Hashtbl.find_opt t.lru_count victim with
          | Some n when n > 1 ->
              Hashtbl.replace t.lru_count victim (n - 1);
              n - 1
          | _ ->
              Hashtbl.remove t.lru_count victim;
              0
        in
        if remaining = 0 && victim <> keep && Hashtbl.mem t.graph victim
        then begin
          Hashtbl.remove t.graph victim;
          (counters t).Runtime.evictions <- (counters t).Runtime.evictions + 1
        end
      done

(* Look up a vertex by its interned handle [h] (of the vid string [vid]),
   demand-paging from the backing store when it is not resident. Returns
   the record and the paging cost incurred. *)
let lookup_vertex t h vid =
  match Hashtbl.find_opt t.graph h with
  | Some v ->
      touch t h;
      (Some v, 0.0)
  | None -> (
      match (cfg t).Config.shard_capacity with
      | None -> (None, 0.0)
      | Some _ -> (
          match Store.get_now t.rt.Runtime.store (Runtime.vkey vid) with
          | Some (Runtime.Vrec v) ->
              Hashtbl.replace t.graph h v;
              touch t h;
              evict_to_capacity t ~keep:h;
              (counters t).Runtime.page_ins <- (counters t).Runtime.page_ins + 1;
              (Some v, (cfg t).Config.page_in_cost)
          | _ -> (None, 0.0)))

(* ------------------------------------------------------------------ *)
(* Transaction application: mark the in-memory multi-version graph with the
   transaction's timestamp (§4.2). *)

(* the vertex a shard op lands on: edge ops are stored on (and charged
   to) their source vertex *)
let op_vertex (op : Msg.shard_op) =
  match op with
  | Msg.S_create_vertex vid | Msg.S_delete_vertex vid
  | Msg.S_set_vprop { vid; _ }
  | Msg.S_del_vprop { vid; _ }
  | Msg.S_migrate_in vid | Msg.S_migrate_out vid ->
      vid
  | Msg.S_add_edge { src; _ }
  | Msg.S_del_edge { src; _ }
  | Msg.S_set_eprop { src; _ }
  | Msg.S_del_eprop { src; _ } ->
      src

let apply_op t ts (op : Msg.shard_op) =
  (* every op lands on exactly [op_vertex op] (edge ops live on their
     source), so one intern covers all the table work below *)
  let vid = op_vertex op in
  Runtime.heat_write t.rt ~shard:t.sid vid;
  let h = Intern.id t.names vid in
  let bf = before t in
  let update f =
    match lookup_vertex t h vid with
    | Some v, _ -> Hashtbl.replace t.graph h (f v)
    | None, _ -> ()
  in
  match op with
  | Msg.S_create_vertex _ ->
      Hashtbl.replace t.graph h (Mgraph.create_vertex ~vid ~at:ts);
      touch t h;
      evict_to_capacity t ~keep:h
  | Msg.S_delete_vertex _ -> update (fun v -> Mgraph.delete_vertex v ~at:ts)
  | Msg.S_add_edge { eid; dst; _ } ->
      update (fun v -> Mgraph.add_edge v ~eid ~dst ~at:ts)
  | Msg.S_del_edge { eid; _ } -> update (fun v -> Mgraph.delete_edge v ~eid ~at:ts)
  | Msg.S_set_vprop { key; value; _ } ->
      update (fun v -> Mgraph.set_vertex_prop bf v ~key ~value ~at:ts)
  | Msg.S_del_vprop { key; _ } ->
      update (fun v -> Mgraph.del_vertex_prop bf v ~key ~at:ts)
  | Msg.S_set_eprop { eid; key; value; _ } ->
      update (fun v -> Mgraph.set_edge_prop bf v ~eid ~key ~value ~at:ts)
  | Msg.S_del_eprop { eid; key; _ } ->
      update (fun v -> Mgraph.del_edge_prop bf v ~eid ~key ~at:ts)
  | Msg.S_migrate_in _ -> (
      (* adopt: pull the current durable record (it includes every write
         committed before this op's store transaction, §4.6) *)
      match Store.get_now t.rt.Runtime.store (Runtime.vkey vid) with
      | Some (Runtime.Vrec v) ->
          Hashtbl.replace t.graph h v;
          touch t h;
          evict_to_capacity t ~keep:h
      | _ -> ())
  | Msg.S_migrate_out _ -> Hashtbl.remove t.graph h

let apply_tx t ~gk (qt : queued_tx) =
  if qt.q_ops <> [] then begin
    (* time between arrival on the FIFO queue and execution — the
       timestamp-ordering wait the paper's Fig. 9 latency includes *)
    Runtime.observe t.rt "shard.queue_wait" (now t -. qt.q_enq);
    Runtime.trace_span t.rt ~trace:qt.q_trace ~name:"shard.queue" ~actor:(actor t)
      ~start:qt.q_enq ~stop:(now t)
      ~meta:[ ("ops", string_of_int (List.length qt.q_ops)) ]
      ()
  end;
  List.iter (apply_op t qt.q_ts) qt.q_ops;
  t.busy_until <-
    Float.max t.busy_until (Engine.now t.rt.Runtime.engine)
    +. ((cfg t).Config.vertex_write_cost *. float_of_int (List.length qt.q_ops));
  t.busy_us <-
    t.busy_us +. ((cfg t).Config.vertex_write_cost *. float_of_int (List.length qt.q_ops));
  (* stream the applied transaction to read-only replicas, in this
     primary's execution order (asynchronous fan-out, §6.4) *)
  if qt.q_ops <> [] then begin
    for r = 0 to (cfg t).Config.read_replicas - 1 do
      send t
        ~dst:(Runtime.replica_addr t.rt ~shard:t.sid ~replica:r)
        (Msg.Shard_tx
           { gk = 0; seq = qt.q_seq; ts = qt.q_ts; ops = qt.q_ops; trace = qt.q_trace })
    done;
    (* partial replication: stream the ops that land in replicated hot
       ranges to their followers, in this owner's execution order (FIFO
       channels make in-order application converge, like the §6.4 replica
       stream). A follower whose credit column ran dry is marked dirty and
       skipped — it gets a wholesale reseed at the next watermark instead
       of an unbounded queue. *)
    if Hashtbl.length t.repl_out > 0 then begin
      let by_range = Hashtbl.create 4 in
      List.iter
        (fun op ->
          let r = repl_range t (op_vertex op) in
          if Hashtbl.mem t.repl_out r then
            Hashtbl.replace by_range r
              (op :: Option.value ~default:[] (Hashtbl.find_opt by_range r)))
        qt.q_ops;
      Hashtbl.iter
        (fun r rev_ops ->
          let out = Hashtbl.find t.repl_out r in
          let ops = List.rev rev_ops in
          List.iter
            (fun f ->
              if not (Hashtbl.mem out.ro_dirty f) then
                if Flow.Credits.exhausted t.repl_credits f then
                  Hashtbl.replace out.ro_dirty f ()
                else begin
                  Flow.Credits.consume t.repl_credits f;
                  (counters t).Runtime.repl_updates <-
                    (counters t).Runtime.repl_updates + 1;
                  send t
                    ~dst:(Runtime.shard_addr t.rt f)
                    (Msg.Repl_update { range = r; owner = t.sid; ts = qt.q_ts; ops })
                end)
            out.ro_followers)
        by_range
    end;
    (* flow control: return the credit this transaction spent at its
       gatekeeper. NOPs never carried one (control class). *)
    if (cfg t).Config.shard_credits > 0 then begin
      (counters t).Runtime.credit_msgs <- (counters t).Runtime.credit_msgs + 1;
      send t ~dst:(Runtime.gk_addr t.rt gk) (Msg.Credit { shard = t.sid; gk; n = 1 })
    end
  end

(* Apply one streamed op to a follower copy. Mirrors the owner's
   [apply_op] onto [repl_graph]: same multi-version updates, but no heat
   write attribution (the owner already recorded the touch when it applied
   the transaction), no paging, no LRU. Ops for vertices the copy does not
   hold are dropped — a later read of such a vertex misses the copy and is
   forwarded to the owner, so incompleteness is never incorrectness. *)
let repl_apply_op t ts (op : Msg.shard_op) =
  let bf = before t in
  let update vid f =
    match Hashtbl.find_opt t.repl_graph vid with
    | Some v -> Hashtbl.replace t.repl_graph vid (f v)
    | None -> ()
  in
  match op with
  | Msg.S_create_vertex vid ->
      Hashtbl.replace t.repl_graph vid (Mgraph.create_vertex ~vid ~at:ts)
  | Msg.S_delete_vertex vid -> update vid (fun v -> Mgraph.delete_vertex v ~at:ts)
  | Msg.S_add_edge { src; eid; dst } ->
      update src (fun v -> Mgraph.add_edge v ~eid ~dst ~at:ts)
  | Msg.S_del_edge { src; eid } -> update src (fun v -> Mgraph.delete_edge v ~eid ~at:ts)
  | Msg.S_set_vprop { vid; key; value } ->
      update vid (fun v -> Mgraph.set_vertex_prop bf v ~key ~value ~at:ts)
  | Msg.S_del_vprop { vid; key } ->
      update vid (fun v -> Mgraph.del_vertex_prop bf v ~key ~at:ts)
  | Msg.S_set_eprop { src; eid; key; value } ->
      update src (fun v -> Mgraph.set_edge_prop bf v ~eid ~key ~value ~at:ts)
  | Msg.S_del_eprop { src; eid; key } ->
      update src (fun v -> Mgraph.del_edge_prop bf v ~eid ~key ~at:ts)
  | Msg.S_migrate_in vid -> (
      (* the vertex moved onto the owner: adopt the durable record, like
         the owner itself does *)
      match Store.get_now t.rt.Runtime.store (Runtime.vkey vid) with
      | Some (Runtime.Vrec v) -> Hashtbl.replace t.repl_graph vid v
      | _ -> ())
  | Msg.S_migrate_out vid -> Hashtbl.remove t.repl_graph vid

let advertise_cover t range ts =
  for g = 0 to (cfg t).Config.n_gatekeepers - 1 do
    send t ~dst:(Runtime.gk_addr t.rt g) (Msg.Repl_cover { range; follower = t.sid; ts })
  done

(* ------------------------------------------------------------------ *)
(* Node program execution (§4.1). *)

let prog_states t prog_id =
  match Hashtbl.find_opt t.prog_state prog_id with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 64 in
      Hashtbl.replace t.prog_state prog_id tbl;
      tbl

(* Run a batch of (vertex, params) visits locally; hops to vertices on this
   shard are processed in the same batch, hops elsewhere are grouped into
   per-shard messages. Results are delivered after the modelled CPU cost. *)
let execute_prog_batch t (p : parked_prog) =
  (* historical read below the compaction floor with no pinned snapshot:
     the versions it needs are gone from the in-memory copy, and reading
     post-compaction state would silently violate the query's timestamp.
     Fail the whole run retryably instead. *)
  let own_gced =
    p.p_historical
    && (match p.p_snap with None -> true | Some _ -> false)
    && match t.gc_floor with
       | Some floor -> Vclock.precedes p.p_ts floor
       | None -> false
  in
  (* ...but a follower batch whose items all live in other shards'
     partitions never reads the compacted copy: followed-range lookups
     carry their own seed floor ([repl_lookup]) and true misses are
     forwarded to their owners. Only batches that would read *this*
     partition fail wholesale; a hop that lands here aborts below. *)
  let gced =
    own_gced
    && (Hashtbl.length t.repl_in = 0
       || List.exists
            (fun (vid, _) -> Runtime.shard_of_vertex t.rt vid = t.sid)
            p.p_items)
  in
  if gced then
    send t ~dst:p.p_coord
      (Msg.Prog_partial
         {
           prog_id = p.p_id;
           sent = 0;
           acc = Progval.Null;
           visited = [];
           error = Some "snapshot-gced";
         })
  else
  match Nodeprog.find t.rt.Runtime.registry p.p_prog with
  | None ->
      (* unknown program: report an empty batch so termination detection
         still converges (the coordinator validated the name already) *)
      send t ~dst:p.p_coord
        (Msg.Prog_partial
           { prog_id = p.p_id; sent = 0; acc = Progval.Null; visited = []; error = None })
  | Some (module P : Nodeprog.PROGRAM) ->
      (* time this batch spent parked behind the refinable-timestamp gate *)
      Runtime.observe t.rt "shard.prog_gate_wait" (now t -. p.p_since);
      Runtime.trace_span t.rt ~trace:p.p_id ~name:"shard.prog_gate" ~actor:(actor t)
        ~start:p.p_since ~stop:(now t) ();
      let exec_start = now t in
      let states = prog_states t p.p_id in
      (* a pinned batch reads the immutable snapshot: no demand paging, no
         LRU touches, no evictions — analytics never pollute the writers'
         hot set and writers never page the analytics' reads out *)
      let pinned =
        match p.p_snap with Some e -> Some (Snapshot.value e) | None -> None
      in
      (match pinned with
      | Some _ ->
          (counters t).Runtime.snap_pinned_reads <-
            (counters t).Runtime.snap_pinned_reads + 1
      | None -> ());
      (* historical queries pin the snapshot: a version stamp concurrent
         with the snapshot is ordered after it (unless already committed
         before), so time travel excludes later writes *)
      let bf =
        if p.p_historical then fun a b ->
          Runtime.before t.cache t.rt a b ~prefer_first_on_tie:(not (Vclock.equal b p.p_ts))
        else before t
      in
      let work = Queue.create () in
      List.iter (fun item -> Queue.push item work) p.p_items;
      let remote : (int, (string * Progval.t) list) Hashtbl.t = Hashtbl.create 4 in
      let acc = ref P.empty in
      let visited = ref [] in
      let read_cost_units = ref 0.0 in
      let page_cost = ref 0.0 in
      let forward_item hshard item =
        let l = try Hashtbl.find remote hshard with Not_found -> [] in
        Hashtbl.replace remote hshard (item :: l)
      in
      let aborted = ref false in
      while (not !aborted) && not (Queue.is_empty work) do
        let vid, params = Queue.pop work in
        if own_gced && Runtime.shard_of_vertex t.rt vid = t.sid then
          (* a hop landed on this shard's own compacted partition *)
          aborted := true
        else begin
        let h = Intern.id t.names vid in
        let vrec, pc =
          match pinned with
          | Some sg -> (Hashtbl.find_opt sg.sg_graph h, 0.0)
          | None -> lookup_vertex t h vid
        in
        (* not owned here: a followed hot-range copy whose replication
           watermark covers the read stamp serves it in place of the
           owner — this is where follower capacity becomes read capacity *)
        let vrec =
          match vrec with Some _ -> vrec | None -> repl_lookup t vid p.p_ts
        in
        page_cost := !page_cost +. pc;
        match vrec with
        | None ->
            (* not resident: if the directory says another shard owns it
               (it migrated, §4.6), chase the vertex there *)
            let owner = Runtime.shard_of_vertex t.rt vid in
            if owner <> t.sid then forward_item owner (vid, params)
        | Some vertex ->
            if Mgraph.vertex_alive bf vertex ~at:p.p_ts then begin
              visited := vid :: !visited;
              (counters t).Runtime.vertices_read <-
                (counters t).Runtime.vertices_read + 1;
              Runtime.heat_read t.rt ~shard:t.sid vid;
              let ctx = { Nodeprog.vid; at = p.p_ts; before = bf; vertex } in
              let state = Hashtbl.find_opt states h in
              (* a repeat visit only touches the per-program state, not the
                 full vertex record: charge a tenth of a read *)
              read_cost_units :=
                !read_cost_units +. (if state = None then 1.0 else 0.1);
              let state', hops, partial = P.run ctx ~params ~state in
              (match state' with
              | Some s -> Hashtbl.replace states h s
              | None -> Hashtbl.remove states h);
              acc := P.merge !acc partial;
              List.iter
                (fun (hvid, hparams) ->
                  let hshard = Runtime.shard_of_vertex t.rt hvid in
                  if hshard = t.sid then Queue.push (hvid, hparams) work
                  else forward_item hshard (hvid, hparams))
                hops
            end
        end
      done;
      if !aborted then
        send t ~dst:p.p_coord
          (Msg.Prog_partial
             {
               prog_id = p.p_id;
               sent = 0;
               acc = Progval.Null;
               visited = [];
               error = Some "snapshot-gced";
             })
      else begin
      let cost = ((cfg t).Config.vertex_read_cost *. !read_cost_units) +. !page_cost in
      let start = Float.max (Engine.now t.rt.Runtime.engine) t.busy_until in
      t.busy_until <- start +. cost;
      t.busy_us <- t.busy_us +. cost;
      let acc = !acc and visited = !visited in
      Engine.schedule_at t.rt.Runtime.engine ~time:t.busy_until (fun () ->
          if not t.retired then begin
            Runtime.trace_span t.rt ~trace:p.p_id ~name:"shard.prog_exec"
              ~actor:(actor t) ~start:exec_start ~stop:(now t)
              ~meta:[ ("visited", string_of_int (List.length visited)) ]
              ();
            let sent = Hashtbl.length remote in
            Hashtbl.iter
              (fun hshard items ->
                (counters t).Runtime.prog_batch_msgs <-
                  (counters t).Runtime.prog_batch_msgs + 1;
                send t
                  ~dst:(Runtime.shard_addr t.rt hshard)
                  (Msg.Prog_batch
                     {
                       coord = p.p_coord;
                       prog_id = p.p_id;
                       ts = p.p_ts;
                       prog = p.p_prog;
                       historical = p.p_historical;
                       items;
                       sent_at = now t;
                     }))
              remote;
            send t ~dst:p.p_coord
              (Msg.Prog_partial
                 { prog_id = p.p_id; sent; acc; visited; error = None })
          end)
      end

(* A node program may run once, for every gatekeeper, the next transaction
   is known to come after it — i.e. all preceding and concurrent
   transactions have executed (§4.1). The queue head decides when one is
   pending; when the queue is drained, the last applied stamp does (FIFO
   channels and monotone per-gatekeeper stamps guarantee nothing earlier
   can still arrive).

   Crucially, waiting is always safe, so gating never *establishes* new
   oracle orders: a queue clears only when the program precedes the
   reference stamp by vector clock or by an already-committed chain. That
   pins the program before every future stamp of that gatekeeper (later
   stamps dominate the cleared one), while concurrent transactions the
   program actually overlaps with get ordered transaction-first by the
   visibility decisions at read time (§4.4) — the genuinely reactive
   cost. Effect-free NOP heads are checked against the local cache only;
   real transaction heads may additionally consult pre-established oracle
   state. *)
let prog_runnable t (p : parked_prog) =
  match p.p_snap with
  | Some _ ->
      (* pinned batches skip the gate entirely: they read an immutable
         snapshot the queues can never mutate, and the durable store the
         snapshot was built from was already ahead of every gatekeeper
         queue when it was published (gatekeepers commit to the store
         before sending the Shard_tx), so no queued or future transaction
         can be visible at [p_ts ≺ sg_ts] *)
      true
  | None ->
  (* patience before falling back to the oracle: roughly two announce
     rounds (vector clocks will have resolved the pair by then if they
     ever will), capped so enormous tau still makes progress reactively *)
  let patience =
    Float.min (2.0 *. ((cfg t).Config.tau +. (cfg t).Config.nop_period)) 10_000.0
  in
  let overdue = Engine.now t.rt.Runtime.engine -. p.p_since > patience in
  let clears_stamp ~is_nop ts =
    let decision =
      if is_nop then Runtime.before_cached t.cache t.rt p.p_ts ts
      else Runtime.before_established t.cache t.rt p.p_ts ts
    in
    match decision with
    | Some d -> d
    | None ->
        (* unordered: normally wait for clock propagation; past the
           patience window, refine reactively — a NOP head may be ordered
           after the program (it carries no effects), while a real
           transaction is ordered before it (par. 4.4), which blocks until
           that transaction is applied *)
        overdue
        && Runtime.before t.cache t.rt p.p_ts ts ~prefer_first_on_tie:is_nop
  in
  let clears gk q =
    match Queue.peek_opt q with
    | Some head -> clears_stamp ~is_nop:(head.q_ops = []) head.q_ts
    | None -> (
        match t.last_applied.(gk) with
        | Some last -> clears_stamp ~is_nop:true last
        | None -> false)
  in
  let ok = ref true in
  Array.iteri (fun gk q -> if not (clears gk q) then ok := false) t.queues;
  !ok

let try_run_parked t =
  let runnable, still = List.partition (prog_runnable t) t.parked in
  t.parked <- still;
  List.iter (execute_prog_batch t) runnable

(* ------------------------------------------------------------------ *)
(* The event loop over gatekeeper queues (§4.2, Fig. 6).

   Refinement is non-blocking (when [Config.oracle_nonblocking]): an
   in-flight oracle consult stalls only the queue heads whose stamps are in
   the consult's batch — every other queue keeps draining and NOP heads
   keep clearing while the round trip is out. Conflicting pairs discovered
   mid-flight join the outstanding batch (one serialize call answers all of
   them) instead of issuing their own round trip. *)

(* Add a stamp to the in-flight conflict batch; true iff it was new. *)
let join_batch t ts =
  if Hashtbl.mem t.oracle_batch ts then false
  else begin
    Hashtbl.replace t.oracle_batch ts ();
    t.oracle_batch_list <- ts :: t.oracle_batch_list;
    true
  end

let rec oracle_done t gen () =
  if (not t.retired) && t.oracle_inflight && t.oracle_gen = gen then begin
    (* serialize the whole coalesced batch in join order: one round trip
       decides every conflict discovered while it was out *)
    ignore (Runtime.oracle_serialize t.rt (List.rev t.oracle_batch_list));
    t.oracle_inflight <- false;
    Hashtbl.reset t.oracle_batch;
    t.oracle_batch_list <- [];
    try_advance t
  end

(* Route a set of conflicting stamps to the oracle: start a consult if none
   is out, otherwise fold them into the in-flight batch. The simulated round
   trip honours the network's active latency-degrade factor, like any other
   message to the oracle's address would. *)
and begin_or_join_consult t stamps =
  let fresh =
    List.fold_left (fun n ts -> if join_batch t ts then n + 1 else n) 0 stamps
  in
  let c = counters t in
  if not t.oracle_inflight then begin
    t.oracle_inflight <- true;
    c.Runtime.oracle_consults <- c.Runtime.oracle_consults + 1;
    c.Runtime.shard_oracle_consults <- c.Runtime.shard_oracle_consults + 1;
    let oracle_delay =
      2.0 *. (cfg t).Config.net_base_latency
      *. Net.latency_factor t.rt.Runtime.net
    in
    Runtime.observe t.rt "shard.oracle_wait" oracle_delay;
    Engine.schedule t.rt.Runtime.engine ~delay:oracle_delay
      (oracle_done t t.oracle_gen)
  end
  else if fresh > 0 then
    c.Runtime.shard_oracle_batched <- c.Runtime.shard_oracle_batched + 1

and try_advance t =
  if
    (not t.retired)
    && ((cfg t).Config.oracle_nonblocking || not t.oracle_inflight)
  then begin
    let continue = ref true in
    while !continue do
      continue := false;
      if Array.for_all (fun q -> not (Queue.is_empty q)) t.queues then begin
        let heads =
          Array.to_list (Array.mapi (fun g q -> (g, Queue.peek q)) t.queues)
        in
        (* a head covered by the in-flight consult must wait for its
           answer; only those heads are stalled *)
        let stalled (h : queued_tx) =
          t.oracle_inflight && Hashtbl.mem t.oracle_batch h.q_ts
        in
        (* [le h h'] — may this head execute no later than that one? A NOP
           carries no effects, so a pair involving one needs no globally
           consistent answer: break the tie deterministically without the
           oracle. Two concurrent *real* transactions sharing this shard
           are exactly the pairs the paper orders reactively (§3.4). *)
        let conflicts = ref [] in
        let le (h : queued_tx) (h' : queued_tx) =
          match Runtime.before_cached t.cache t.rt h.q_ts h'.q_ts with
          | Some d -> d
          | None ->
              if h.q_ops = [] || h'.q_ops = [] then
                Vclock.total_compare h.q_ts h'.q_ts < 0
              else begin
                match Runtime.before_established t.cache t.rt h.q_ts h'.q_ts with
                | Some d -> d
                | None ->
                    conflicts := (h.q_ts, h'.q_ts) :: !conflicts;
                    false
              end
        in
        (* popping a non-stalled head requires it ≤ every other head,
           including batch members, by already-established decisions — an
           order [serialize] is bound to respect, so executing it during
           the flight commutes with the consult's outcome *)
        let minimal =
          List.find_opt
            (fun (g, h) ->
              (not (stalled h))
              && List.for_all (fun (g', h') -> g = g' || le h h') heads)
            heads
        in
        match minimal with
        | Some (g, _) ->
            let qt = Queue.pop t.queues.(g) in
            t.last_applied.(g) <- Some qt.q_ts;
            apply_tx t ~gk:g qt;
            continue := true
        | None ->
            let nonblocking = (cfg t).Config.oracle_nonblocking in
            if !conflicts <> [] then begin
              (* concurrent conflicting transactions: have the timeline
                 oracle serialize them (decisions are cached). Non-blocking
                 mode ships every real head still undecided against some
                 other real head — the same information a blocking consult
                 carries, so one round trip decides just as many pairs —
                 while heads with a fully established order keep draining.
                 Blocking mode keeps the historical behavior of shipping
                 every real head and freezing the whole shard. *)
              let stamps =
                if nonblocking then begin
                  (* the closure spans every queued real transaction, not
                     just the heads: conflicts that would surface a few
                     pops from now ride the same round trip instead of
                     paying their own consult once they reach the front *)
                  let reals =
                    Array.to_list t.queues
                    |> List.concat_map (fun q ->
                           Queue.fold
                             (fun acc (qt : queued_tx) ->
                               if qt.q_ops = [] then acc else qt.q_ts :: acc)
                             [] q
                           |> List.rev)
                  in
                  let arr = Array.of_list reals in
                  let n = Array.length arr in
                  let undecided = Array.make n false in
                  for i = 0 to n - 1 do
                    for j = i + 1 to n - 1 do
                      if
                        Runtime.before_established t.cache t.rt arr.(i) arr.(j)
                        = None
                      then begin
                        undecided.(i) <- true;
                        undecided.(j) <- true
                      end
                    done
                  done;
                  List.filteri (fun i _ -> undecided.(i)) reals
                end
                else
                  List.filter_map
                    (fun (_, h) -> if h.q_ops = [] then None else Some h.q_ts)
                    heads
              in
              begin_or_join_consult t stamps
            end;
            if nonblocking || !conflicts = [] then begin
              (* no executable minimum: pop the deterministically smallest
                 NOP so effect-free traffic never backs up behind a stall *)
              let nops = List.filter (fun (_, h) -> h.q_ops = []) heads in
              let cmp (_, a) (_, b) = Vclock.total_compare a.q_ts b.q_ts in
              match List.sort cmp nops with
              | (g, _) :: _ ->
                  let qt = Queue.pop t.queues.(g) in
                  t.last_applied.(g) <- Some qt.q_ts;
                  apply_tx t ~gk:g qt;
                  continue := true
              | [] ->
                  (* every head is real and at least one is stalled or in
                     conflict: legal only while a consult is in flight,
                     whose completion re-enters this loop *)
                  assert (t.oracle_inflight)
            end
      end
    done;
    try_run_parked t
  end

(* ------------------------------------------------------------------ *)
(* Recovery (§4.3): restore this shard's partition from the backing store. *)

let reload_from_store t =
  Hashtbl.reset t.graph;
  Queue.clear t.lru;
  Hashtbl.reset t.lru_count;
  let records = Store.scan_prefix t.rt.Runtime.store ~prefix:"v/" in
  let cap = (cfg t).Config.shard_capacity in
  List.iter
    (fun (key, value) ->
      match value with
      | Runtime.Vrec v ->
          let vid = String.sub key 2 (String.length key - 2) in
          if Runtime.shard_of_vertex t.rt vid = t.sid then begin
            let under_cap =
              match cap with None -> true | Some c -> Hashtbl.length t.graph < c
            in
            if under_cap then begin
              let h = Intern.id t.names vid in
              Hashtbl.replace t.graph h v;
              touch t h
            end
          end
      | _ -> ())
    records

let handle_epoch_change t new_epoch =
  if new_epoch > t.epoch then begin
    t.epoch <- new_epoch;
    Array.iter Queue.clear t.queues;
    Array.fill t.last_seq 0 (Array.length t.last_seq) 0;
    Array.fill t.seq_epoch 0 (Array.length t.seq_epoch) (-1);
    Array.fill t.last_applied 0 (Array.length t.last_applied) None;
    t.parked <- [];
    t.oracle_inflight <- false;
    Hashtbl.reset t.oracle_batch;
    t.oracle_batch_list <- [];
    t.oracle_gen <- t.oracle_gen + 1;
    (* in-memory snapshots and pins die with the epoch; the reload below
       restores the full version history, so the compaction floor resets *)
    Snapshot.clear t.snaps;
    Hashtbl.reset t.pins;
    t.gc_floor <- None;
    (* replication across the barrier: old-epoch watermarks can never
       cover new-epoch reads, and in-flight stream traffic died with the
       queues — stop advertising and reseed every follower *)
    Hashtbl.iter (fun _ rin -> rin.rin_wm <- None) t.repl_in;
    Hashtbl.iter
      (fun _ out ->
        List.iter (fun f -> Hashtbl.replace out.ro_dirty f ()) out.ro_followers)
      t.repl_out;
    Flow.Credits.reset t.repl_credits;
    reload_from_store t;
    send t ~dst:(Runtime.manager_addr t.rt)
      (Msg.Epoch_ack { server = t.addr; epoch = new_epoch })
  end

(* ------------------------------------------------------------------ *)
(* Multi-version GC (§4.5): compact below the pointwise-min watermark. *)

let handle_watermark t gk ts =
  t.wm.(gk) <- Some ts;
  if Array.for_all Option.is_some t.wm then begin
    let wm =
      Array.fold_left
        (fun acc o ->
          match (acc, o) with
          | None, Some w -> Some w
          | Some a, Some w -> Some (Runtime.stamp_min a w)
          | _, None -> acc)
        None t.wm
      |> Option.get
    in
    (* publish an immutable snapshot of the partition at this watermark
       boundary, rebuilt from the durable store: the store keeps the full
       version history, and every transaction stamped before [wm] was
       committed to it before the watermark was gossiped, so the snapshot
       answers any read at [at ≺ wm] exactly *)
    if (cfg t).Config.snapshot_reads then begin
      let key = Vclock.key wm in
      let fresh =
        match Snapshot.latest t.snaps with
        | Some e -> not (String.equal (Snapshot.key e) key)
        | None -> true
      in
      if fresh then begin
        let sg_graph = Hashtbl.create 1024 in
        List.iter
          (fun (k, value) ->
            match value with
            | Runtime.Vrec v ->
                let vid = String.sub k 2 (String.length k - 2) in
                if Runtime.shard_of_vertex t.rt vid = t.sid then
                  Hashtbl.replace sg_graph (Intern.id t.names vid) v
            | _ -> ())
          (Store.scan_prefix t.rt.Runtime.store ~prefix:"v/");
        ignore (Snapshot.publish t.snaps ~key { sg_ts = wm; sg_graph });
        (counters t).Runtime.snap_published <-
          (counters t).Runtime.snap_published + 1
      end
    end;
    (* pinned snapshots extend the watermark: while an analytics run holds
       a snapshot at [sg_ts], compaction must not advance past it, or a
       retry of the same query (after a crash dropped the pin) would find
       its versions gone *)
    let wm =
      let eff =
        List.fold_left
          (fun acc e -> Runtime.stamp_min acc (Snapshot.value e).sg_ts)
          wm (Snapshot.pinned t.snaps)
      in
      if not (Vclock.equal eff wm) then
        (counters t).Runtime.snap_gc_deferred <-
          (counters t).Runtime.snap_gc_deferred + 1;
      eff
    in
    (* retain the effective floor (monotone within an epoch); epoch
       barriers reset it because the reload restores the full history *)
    t.gc_floor <-
      (match t.gc_floor with
      | Some f when f.Vclock.epoch = wm.Vclock.epoch -> Some (Vclock.merge f wm)
      | _ -> Some wm);
    (* vclock-only comparison: a version strictly below the watermark by
       vector clock alone is unreachable by any current or future read *)
    let vb a b = Vclock.precedes a b in
    let doomed = ref [] in
    Hashtbl.iter
      (fun h v ->
        match Mgraph.compact vb v ~watermark:wm with
        | Some v' -> Hashtbl.replace t.graph h v'
        | None -> doomed := h :: !doomed)
      t.graph;
    List.iter (Hashtbl.remove t.graph) !doomed;
    (* partial replication, owner side: advance followers at the watermark
       boundary. Only once every transaction at or below [wm] has actually
       been applied here (watermark gossip shares the gatekeeper FIFO with
       Shard_tx, so covered transactions have *arrived*, but one may still
       be queued behind an oracle consult — per-gatekeeper stamps are
       monotone, so checking the heads suffices). Clean followers get a
       watermark heartbeat: FIFO order guarantees they received every
       streamed update below it first. Dirty followers get a wholesale
       reseed of the owner's records at this cut — immutable, so sharing
       is safe — after which the stream is clean again. *)
    if Hashtbl.length t.repl_out > 0 then begin
      let applied_through_wm =
        Array.for_all
          (fun q ->
            match Queue.peek_opt q with
            | None -> true
            | Some (head : queued_tx) -> not (Repl.covers ~wm head.q_ts))
          t.queues
      in
      if applied_through_wm then
        List.iter
          (fun range ->
            let out = Hashtbl.find t.repl_out range in
            let seed = lazy (
              Hashtbl.fold
                (fun h v acc ->
                  let vid = Intern.name t.names h in
                  if repl_range t vid = range then (vid, v) :: acc else acc)
                t.graph [])
            in
            List.iter
              (fun f ->
                if Hashtbl.mem out.ro_dirty f then begin
                  Hashtbl.remove out.ro_dirty f;
                  Flow.Credits.reset_peer t.repl_credits f;
                  (counters t).Runtime.repl_resyncs <-
                    (counters t).Runtime.repl_resyncs + 1;
                  send t
                    ~dst:(Runtime.shard_addr t.rt f)
                    (Msg.Repl_seed
                       { range; owner = t.sid; ts = wm; vertices = Lazy.force seed })
                end
                else
                  send t
                    ~dst:(Runtime.shard_addr t.rt f)
                    (Msg.Repl_update { range; owner = t.sid; ts = wm; ops = [] }))
              out.ro_followers)
          (repl_owned_ranges t)
    end
  end

(* ------------------------------------------------------------------ *)

let handle t ~src:_ msg =
  if not t.retired then
    match (msg : Msg.t) with
    | Msg.Shard_tx { gk; seq; ts; ops; trace } ->
        if ts.Vclock.epoch = t.epoch then begin
          (* FIFO channel check (§4.2): sequence numbers must be contiguous
             within an epoch *)
          if t.seq_epoch.(gk) <> t.epoch then begin
            t.seq_epoch.(gk) <- t.epoch;
            t.last_seq.(gk) <- seq
          end
          else begin
            assert (seq = t.last_seq.(gk) + 1);
            t.last_seq.(gk) <- seq
          end;
          Queue.push
            { q_seq = seq; q_ts = ts; q_ops = ops; q_trace = trace; q_enq = now t }
            t.queues.(gk);
          try_advance t
        end
        (* other epochs: stale or not-yet-adopted traffic; the store reload
           at the epoch barrier covers the effects (§4.3) *)
    | Msg.Prog_batch { coord; prog_id; ts; prog; historical; items; sent_at } ->
        (* the network/fan-out leg of a node program, from the sender's
           dispatch to arrival here — the phase client-tx slow-log entries
           already had and program entries were missing *)
        Runtime.observe t.rt "shard.prog_hop_wait" (now t -. sent_at);
        Runtime.trace_span t.rt ~trace:prog_id ~name:"shard.prog_hop"
          ~actor:(actor t) ~start:sent_at ~stop:(now t) ();
        let snap =
          if historical && (cfg t).Config.snapshot_reads then
            match Hashtbl.find_opt t.pins prog_id with
            | Some e -> Some e (* later batch of an already-pinned run *)
            | None -> (
                match
                  Snapshot.find t.snaps (fun sg -> Vclock.precedes ts sg.sg_ts)
                with
                | Some e ->
                    Snapshot.acquire t.snaps e;
                    Hashtbl.replace t.pins prog_id e;
                    Some e
                | None -> None)
          else None
        in
        t.parked <-
          {
            p_coord = coord;
            p_id = prog_id;
            p_ts = ts;
            p_prog = prog;
            p_historical = historical;
            p_items = items;
            p_since = Engine.now t.rt.Runtime.engine;
            p_snap = snap;
          }
          :: t.parked;
        try_run_parked t
    | Msg.Prog_gc { prog_id } ->
        Hashtbl.remove t.prog_state prog_id;
        (match Hashtbl.find_opt t.pins prog_id with
        | Some e ->
            Snapshot.release t.snaps e;
            Hashtbl.remove t.pins prog_id
        | None -> ())
    | Msg.Watermark { gk; ts } -> handle_watermark t gk ts
    | Msg.Epoch_change { epoch } -> handle_epoch_change t epoch
    | Msg.Repl_install { range; owner; followers } ->
        (* idempotent: the controller re-broadcasts its plan every round so
           a crash-restarted owner (whose streaming state died with it)
           re-learns its ranges and reseeds; an already-known range is
           left untouched *)
        if owner = t.sid && not (Hashtbl.mem t.repl_out range) then begin
          let dirty = Hashtbl.create 4 in
          List.iter (fun f -> Hashtbl.replace dirty f ()) followers;
          Hashtbl.replace t.repl_out range { ro_followers = followers; ro_dirty = dirty }
        end;
        if List.mem t.sid followers && not (Hashtbl.mem t.repl_in range) then
          Hashtbl.replace t.repl_in range
            { rin_owner = owner; rin_wm = None; rin_floor = None }
    | Msg.Repl_update { range; owner; ts; ops } -> (
        match Hashtbl.find_opt t.repl_in range with
        | Some rin when rin.rin_wm <> None ->
            if ops = [] then begin
              (* watermark heartbeat: everything at or below [ts] has been
                 streamed (FIFO), so this copy now covers it *)
              rin.rin_wm <- Some ts;
              advertise_cover t range ts
            end
            else begin
              List.iter (repl_apply_op t ts) ops;
              (* return the stream credit this update spent at the owner *)
              if (cfg t).Config.shard_credits > 0 then begin
                (counters t).Runtime.credit_msgs <-
                  (counters t).Runtime.credit_msgs + 1;
                send t
                  ~dst:(Runtime.shard_addr t.rt owner)
                  (Msg.Credit { shard = t.sid; gk = owner; n = 1 })
              end
            end
        | _ -> () (* not following, or awaiting the first seed *))
    | Msg.Repl_seed { range; owner; ts; vertices } ->
        (* a seed is self-sufficient: it may arrive before the controller's
           (re-)install broadcast after a restart, so create the follower
           entry on the fly rather than dropping the sync *)
        let rin =
          match Hashtbl.find_opt t.repl_in range with
          | Some rin -> rin
          | None ->
              let rin = { rin_owner = owner; rin_wm = None; rin_floor = None } in
              Hashtbl.replace t.repl_in range rin;
              rin
        in
        (* wholesale (re)sync: drop the stale copy of this range and adopt
           the owner's records at the [ts] cut verbatim *)
        let stale =
          Hashtbl.fold
            (fun vid _ acc -> if repl_range t vid = range then vid :: acc else acc)
            t.repl_graph []
        in
        List.iter (Hashtbl.remove t.repl_graph) stale;
        List.iter (fun (vid, v) -> Hashtbl.replace t.repl_graph vid v) vertices;
        rin.rin_wm <- Some ts;
        rin.rin_floor <- Some ts;
        advertise_cover t range ts
    | Msg.Credit { shard; gk = _; n } ->
        (* a follower returning replication-stream credits *)
        Flow.Credits.refund t.repl_credits shard n
    | _ -> ()

let start_timers t =
  Engine.every t.rt.Runtime.engine ~period:(cfg t).Config.heartbeat_period (fun () ->
      if t.retired then false
      else begin
        if Net.is_alive t.rt.Runtime.net t.addr then begin
          (counters t).Runtime.heartbeat_msgs <-
            (counters t).Runtime.heartbeat_msgs + 1;
          send t ~dst:(Runtime.manager_addr t.rt) (Msg.Heartbeat { server = t.addr })
        end;
        true
      end)

let spawn rt ~sid ~epoch =
  let n_g = rt.Runtime.cfg.Config.n_gatekeepers in
  let t =
    {
      rt;
      sid;
      addr = Runtime.shard_addr rt sid;
      names = Intern.create ~capacity:4096 ();
      graph = Hashtbl.create 4096;
      lru = Queue.create ();
      lru_count = Hashtbl.create 4096;
      queues = Array.init n_g (fun _ -> Queue.create ());
      last_seq = Array.make n_g 0;
      seq_epoch = Array.make n_g (-1); (* sentinel: re-baseline per channel *)
      cache = Runtime.create_cache ();
      last_applied = Array.make n_g None;
      prog_state = Hashtbl.create 32;
      parked = [];
      oracle_inflight = false;
      oracle_batch = Hashtbl.create 8;
      oracle_batch_list = [];
      oracle_gen = 0;
      busy_until = 0.0;
      busy_us = 0.0;
      epoch;
      wm = Array.make n_g None;
      snaps = Snapshot.create ~retain:rt.Runtime.cfg.Config.snapshot_retain ();
      pins = Hashtbl.create 8;
      gc_floor = None;
      repl_out = Hashtbl.create 8;
      repl_in = Hashtbl.create 8;
      repl_graph = Hashtbl.create 256;
      repl_credits =
        Flow.Credits.create ~peers:rt.Runtime.cfg.Config.n_shards
          ~credits:rt.Runtime.cfg.Config.shard_credits;
      retired = false;
    }
  in
  Runtime.register rt t.addr (fun ~src msg -> handle t ~src msg);
  (* utilization gauges (see the gatekeeper note on respawn semantics):
     busy time and the aggregate depth of the per-gatekeeper FIFO queues *)
  Weaver_obs.Metrics.gauge rt.Runtime.metrics
    (Printf.sprintf "util.shard%d.busy_us" sid)
    (fun () -> int_of_float t.busy_us);
  Weaver_obs.Metrics.gauge rt.Runtime.metrics
    (Printf.sprintf "util.shard%d.queue_depth" sid)
    (fun () -> Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queues);
  start_timers t;
  if epoch > 0 then reload_from_store t;
  t

let retire t = t.retired <- true

let reload = reload_from_store

(* A peer shard crash-restarted: any follower copies it held died with it,
   so if it follows one of our replicated ranges, mark it dirty for a
   wholesale reseed at the next watermark and refill its credit column
   (stream credits it carried can never be refunded). *)
let on_peer_restart t ~peer =
  Hashtbl.iter
    (fun _ out ->
      if List.mem peer out.ro_followers then begin
        Hashtbl.replace out.ro_dirty peer ();
        Flow.Credits.reset_peer t.repl_credits peer
      end)
    t.repl_out

(* Crash-restart within the current epoch (fault-plan [Restart] firing
   before the manager's failure detector noticed): queued work and FIFO
   bookkeeping from before the crash are meaningless — messages were lost
   while dead — so drop them, let the next Shard_tx per gatekeeper
   re-baseline its channel (the [seq_epoch] sentinel), and restore the
   partition from the backing store, which holds every committed effect
   including those whose Shard_tx never arrived. Must run before the
   endpoint is revived, or an in-order-but-gapped sequence number trips
   the FIFO assertion. Effects committed within one network delay of the
   restart can be both reloaded and replayed by a still-in-flight
   Shard_tx; the durable store stays authoritative and the next epoch
   barrier reconciles the in-memory copy. *)
let resync t =
  Array.iter Queue.clear t.queues;
  Array.fill t.last_seq 0 (Array.length t.last_seq) 0;
  Array.fill t.seq_epoch 0 (Array.length t.seq_epoch) (-1);
  Array.fill t.last_applied 0 (Array.length t.last_applied) None;
  t.parked <- [];
  t.oracle_inflight <- false;
  Hashtbl.reset t.oracle_batch;
  t.oracle_batch_list <- [];
  t.oracle_gen <- t.oracle_gen + 1;
  Snapshot.clear t.snaps;
  Hashtbl.reset t.pins;
  t.gc_floor <- None;
  (* replication state died with the crash: as a follower, the copies and
     watermarks are stale-but-safe at the gatekeepers (routed reads miss
     here and chase the owner) until the controller's next re-broadcast
     reinstalls us; as an owner, the re-broadcast re-marks every follower
     dirty and the next watermark reseeds them *)
  Hashtbl.reset t.repl_out;
  Hashtbl.reset t.repl_in;
  Hashtbl.reset t.repl_graph;
  Flow.Credits.reset t.repl_credits;
  reload_from_store t
