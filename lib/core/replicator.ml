(* Hot-range replication controller (ROADMAP item 3): the cluster-owned
   planner that turns the heat sensor's hottest vertices into follower
   copies for read scale-out.

   Each round (every [Config.gc_period] µs, the watermark cadence the
   stream itself runs at) the controller:

   - RE-BROADCASTS the standing plan. [Repl_install] is idempotent at
     every receiver (owners, followers, gatekeepers all skip ranges they
     already track), so repeating it each round is pure healing: a shard
     that crash-restarted and lost its replication state re-learns its
     roles and its owners reseed it at the next watermark.

   - PLANS new installs: for each shard, the top
     [Config.repl_candidate_topk] entries of its Space-Saving sketch
     nominate their key ranges. A range qualifies if it is not yet
     replicated, its owner is live, and its decayed read+write load
     exceeds the mean per-range load (the same kind of band the balancer
     uses — replicating a merely-average range adds streaming cost with
     no read relief). Followers are the [Config.replication_factor]
     least-loaded live shards other than the owner, ties toward the lower
     index. Every input is deterministic simulation state, so the install
     sequence is a pure function of the run.

   - ACTS by broadcasting [Repl_install] to the owner (which starts
     streaming at the next watermark), the followers (which await their
     seed), and every gatekeeper (which starts routing covered reads once
     the followers advertise coverage).

   Installs are permanent for the life of the epoch: the stream piggybacks
   on watermark gossip the cluster pays for anyway, so a range that cools
   down costs only its (tiny) heartbeat share. *)

module Engine = Weaver_sim.Engine
module Net = Weaver_sim.Net
module Heat = Weaver_obs.Heat
module Repl = Weaver_repl.Repl

type t = { rt : Runtime.t; heat : Heat.t; table : Repl.Table.t }

let create rt =
  let heat =
    match rt.Runtime.heat with
    | Some h -> h
    | None -> invalid_arg "Replicator.create: requires Config.enable_heat"
  in
  { rt; heat; table = Repl.Table.create () }

let counters t = t.rt.Runtime.counters
let table t = t.table

let broadcast t ~range ~owner ~followers =
  let rt = t.rt in
  let src = Runtime.manager_addr rt in
  let msg = Msg.Repl_install { range; owner; followers } in
  Runtime.send rt ~src ~dst:(Runtime.shard_addr rt owner) msg;
  List.iter
    (fun f -> Runtime.send rt ~src ~dst:(Runtime.shard_addr rt f) msg)
    followers;
  for g = 0 to rt.Runtime.cfg.Config.n_gatekeepers - 1 do
    Runtime.send rt ~src ~dst:(Runtime.gk_addr rt g) msg
  done

let run_round t =
  let c = counters t in
  c.Runtime.repl_rounds <- c.Runtime.repl_rounds + 1;
  let cfg = t.rt.Runtime.cfg in
  (* heal first: restarted shards and gatekeepers re-learn the plan *)
  List.iter
    (fun range ->
      match Repl.Table.owner t.table ~range with
      | Some owner ->
          broadcast t ~range ~owner
            ~followers:(List.map fst (Repl.Table.followers t.table ~range))
      | None -> ())
    (Repl.Table.ranges t.table);
  let factor = cfg.Config.replication_factor in
  if factor > 0 then begin
    let n = cfg.Config.n_shards in
    let now = Engine.now t.rt.Runtime.engine in
    let loads = Array.init n (fun s -> Heat.shard_load t.heat ~shard:s ~now) in
    let total = Array.fold_left ( +. ) 0.0 loads in
    (* a candidate range must be hotter than the average range, or
       replicating it is all streaming cost and no read relief *)
    let band = total /. float_of_int (Heat.ranges t.heat) in
    if total > 0.0 then begin
      let alive s = Net.is_alive t.rt.Runtime.net (Runtime.shard_addr t.rt s) in
      for src = 0 to n - 1 do
        let considered = ref 0 in
        List.iter
          (fun (vid, _count, _err) ->
            if !considered < cfg.Config.repl_candidate_topk then begin
              incr considered;
              let range = Heat.range_of t.heat vid in
              let owner = Runtime.shard_of_vertex t.rt vid in
              if (not (Repl.Table.is_replicated t.table ~range)) && alive owner
              then begin
                let rl =
                  Heat.range_load t.heat ~range ~kind:Heat.Read ~now
                  +. Heat.range_load t.heat ~range ~kind:Heat.Write ~now
                in
                if rl > band then begin
                  let followers =
                    List.init n Fun.id
                    |> List.filter (fun s -> s <> owner && alive s)
                    |> List.sort (fun a b ->
                           if loads.(a) <> loads.(b) then
                             Float.compare loads.(a) loads.(b)
                           else compare a b)
                    |> List.filteri (fun i _ -> i < factor)
                  in
                  if followers <> [] then begin
                    Repl.Table.install t.table ~range ~owner ~followers;
                    c.Runtime.repl_installs <- c.Runtime.repl_installs + 1;
                    broadcast t ~range ~owner ~followers
                  end
                end
              end
            end)
          (Heat.top t.heat ~shard:src)
      done
    end
  end
