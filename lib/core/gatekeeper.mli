(** Gatekeeper server — the proactive half of the timeline coordinator
    (paper §3.3, §4.2).

    A gatekeeper owns one component of the cluster vector clock. It assigns
    a refinable timestamp to every client request, executes read-write
    transactions against the backing store (validating them and checking
    per-vertex last-update stamps), forwards committed effects to shard
    servers over FIFO channels, coordinates node-program execution and
    termination detection, announces its clock to peers every τ µs, keeps
    shard queues fresh with NOP transactions, and gossips GC watermarks. *)

type t

val spawn : Runtime.t -> gid:int -> epoch:int -> t
(** Create a gatekeeper with index [gid], register its network handler at
    {!Runtime.gk_addr}, and start its periodic announce / NOP / heartbeat /
    watermark timers. [epoch] is the configuration epoch it starts in
    (0 at deployment; the current epoch for a replacement, §4.3). *)

val retire : t -> unit
(** Permanently stop this instance's timers and message processing; used
    when a replacement takes over its address. *)

val gid : t -> int
val epoch : t -> int
val clock : t -> Runtime.Vclock.t
(** Current vector clock (for tests and introspection). *)

val current_tau : t -> float
(** The announce period currently in effect (equals the configured τ
    unless [adaptive_tau] is on, §3.5). *)

val on_revive : t -> unit
(** Called when a crashed (network-dead) gatekeeper is revived in place by
    a fault plan, *without* having been replaced: drops the memo table,
    whose entries may have missed peers' [Commit_note] invalidations while
    the instance was unreachable. The duplicate-suppression window is
    kept — it records durable commits. *)

val credits_available : t -> int -> int
(** Flow-control credits currently available towards the given shard
    ([Config.shard_credits] when the mechanism is disabled); for tests
    and introspection. *)

val on_shard_restart : t -> int -> unit
(** Called when a shard is restarted in place by a fault plan: its queues
    (holding our un-applied [Shard_tx]s) were dropped, so the credits they
    carried can never come back — refill that shard's credit column. *)

val repl_table : t -> Weaver_repl.Repl.Table.t
(** The replication routing table this gatekeeper maintains from
    [Repl_install] / [Repl_cover] messages (tests and introspection). *)
