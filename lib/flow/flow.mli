(** Overload management: admission control, credit-based backpressure, and
    traffic priority classes.

    The paper's scaling experiments (Figs. 12–13) stop at the saturation
    knee: gatekeepers serve client requests serially, so offered load past
    capacity accumulates in queues until latency diverges. This module
    supplies the pure decision logic that keeps the pipeline overload-safe:

    - {!Admission}: bounded gatekeeper admission with deadline-based load
      shedding — a request whose projected queue wait already exceeds its
      deadline budget is rejected up front instead of timing out downstream.
    - {!Credits}: credit-based flow control for the gatekeeper→shard path —
      a slow or latency-degraded shard drains its credit column and
      propagates backpressure to admission instead of growing an unbounded
      FIFO.
    - {!priority}: two traffic classes; control traffic (NOPs, announces,
      heartbeats, epoch barriers, commit notes, credits) is exempt from
      shedding so refinement and failure detection never starve.

    Everything here is deterministic bookkeeping over values the callers
    already have (virtual time, busy-until horizons): no randomness is
    consumed and no events are scheduled, so runs with the limits set
    non-binding are bit-identical to runs without the subsystem. *)

(** {1 Priority classes} *)

type priority =
  | Control  (** exempt from shedding: coordination and liveness traffic *)
  | Client_req  (** sheddable: client requests and their derived traffic *)

val priority_of_kind : string -> priority
(** Classify a message by its [Msg.kind] string. Control covers
    ["Announce"], ["Shard_tx(nop)"], ["Heartbeat"], ["Commit_note"],
    ["Credit"], ["Epoch_change"], ["Epoch_ack"], ["Watermark"],
    ["Prog_gc"], and the partial-replication plane (["Repl_install"],
    ["Repl_update"], ["Repl_seed"], ["Repl_cover"] — shedding a
    replication stream would silently desync follower copies); everything
    else — including unknown kinds — is [Client_req], so new message types
    are sheddable until explicitly exempted. *)

(** {1 Bounded admission with deadline-based shedding} *)

module Admission : sig
  type t

  type decision =
    | Admit
    | Shed_queue_full  (** the serial admission queue is at its bound *)
    | Shed_deadline  (** projected queue wait exceeds the deadline budget *)

  val create : limit:int -> deadline_budget:float -> op_cost:float -> t
  (** [limit] bounds the number of requests waiting in the gatekeeper's
      serial admission queue (0 = unbounded); [deadline_budget] is the
      maximum tolerable projected queue wait in µs (0 = no budget);
      [op_cost] is the per-request admission service time used to convert
      the busy horizon into a queue depth. *)

  val enabled : t -> bool
  (** Whether any limit is set ([limit > 0] or [deadline_budget > 0]). *)

  val queue_depth : t -> now:float -> busy_until:float -> int
  (** Requests currently ahead in the serial queue, inferred from the
      busy-until horizon: [ceil ((busy_until - now) / op_cost)]. *)

  val decide : t -> now:float -> busy_until:float -> decision
  (** The admission decision for a request arriving at [now] against a
      gatekeeper busy until [busy_until]. Pure — never mutates state. *)
end

(** {1 Credit-based gatekeeper→shard flow control} *)

module Credits : sig
  type t

  val create : peers:int -> credits:int -> t
  (** A ledger of [credits] send credits towards each of [peers] shards;
      [credits = 0] disables the mechanism entirely. *)

  val enabled : t -> bool

  val available : t -> int -> int
  (** Credits currently available towards the given peer (the configured
      maximum when disabled). *)

  val exhausted : t -> int -> bool
  (** [true] iff the mechanism is enabled and the peer's column is at (or
      below) zero — the admission-side backpressure signal. *)

  val consume : t -> int -> unit
  (** Spend one credit towards the peer (no-op when disabled). May drive
      the column negative: consumption happens at send time, after the
      admission check, and a single transaction may fan out to a peer more
      than once. *)

  val refund : t -> int -> int -> unit
  (** [refund t peer n] returns [n] credits (the peer applied [n]
      transactions), clamped at the configured maximum. *)

  val reset_peer : t -> int -> unit
  (** Refill one peer's column to the maximum — used when the peer
      restarts and its queues (with our outstanding transactions) are
      dropped, so the credits they carried can never be refunded. *)

  val reset : t -> unit
  (** Refill every column (epoch barrier: all shard queues were cleared). *)
end
