type priority = Control | Client_req

(* Keyed on [Msg.kind] strings rather than the constructors themselves so
   this library stays below Weaver_core in the dependency order (the
   gatekeeper depends on us, not the other way around). Unknown kinds
   default to Client_req: new traffic is sheddable until explicitly
   exempted, which fails safe for liveness-critical control traffic. *)
let priority_of_kind = function
  | "Announce" | "Shard_tx(nop)" | "Heartbeat" | "Commit_note" | "Credit"
  | "Epoch_change" | "Epoch_ack" | "Watermark" | "Prog_gc"
  | "Repl_install" | "Repl_update" | "Repl_seed" | "Repl_cover" ->
      Control
  | _ -> Client_req

module Admission = struct
  type t = { limit : int; deadline_budget : float; op_cost : float }

  type decision = Admit | Shed_queue_full | Shed_deadline

  let create ~limit ~deadline_budget ~op_cost =
    { limit = max 0 limit; deadline_budget = Float.max 0.0 deadline_budget; op_cost }

  let enabled t = t.limit > 0 || t.deadline_budget > 0.0

  let projected_wait ~now ~busy_until = Float.max 0.0 (busy_until -. now)

  let queue_depth t ~now ~busy_until =
    if t.op_cost <= 0.0 then 0
    else int_of_float (Float.ceil (projected_wait ~now ~busy_until /. t.op_cost))

  let decide t ~now ~busy_until =
    let wait = projected_wait ~now ~busy_until in
    if t.limit > 0 && queue_depth t ~now ~busy_until >= t.limit then Shed_queue_full
    else if t.deadline_budget > 0.0 && wait > t.deadline_budget then Shed_deadline
    else Admit
end

module Credits = struct
  type t = { max_credits : int; balance : int array }

  let create ~peers ~credits =
    let credits = max 0 credits in
    { max_credits = credits; balance = Array.make (max 1 peers) credits }

  let enabled t = t.max_credits > 0

  let available t peer = if enabled t then t.balance.(peer) else t.max_credits

  let exhausted t peer = enabled t && t.balance.(peer) <= 0

  let consume t peer = if enabled t then t.balance.(peer) <- t.balance.(peer) - 1

  let refund t peer n =
    if enabled t then t.balance.(peer) <- min t.max_credits (t.balance.(peer) + n)

  let reset_peer t peer = if enabled t then t.balance.(peer) <- t.max_credits

  let reset t =
    if enabled t then Array.fill t.balance 0 (Array.length t.balance) t.max_credits
end
