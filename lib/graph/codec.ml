module Wire = Weaver_util.Wire
module Vclock = Weaver_vclock.Vclock

let format_version = 1

let encode_stamp w (ts : Vclock.t) =
  Wire.Writer.varint w ts.Vclock.epoch;
  Wire.Writer.varint w ts.Vclock.origin;
  Wire.Writer.list w (Wire.Writer.varint w) (Array.to_list ts.Vclock.clocks)

let decode_stamp r =
  let epoch = Wire.Reader.varint r in
  let origin = Wire.Reader.varint r in
  let clocks = Array.of_list (Wire.Reader.list r (fun () -> Wire.Reader.varint r)) in
  Vclock.make ~epoch ~origin clocks

let encode_life w (l : Mgraph.lifespan) =
  encode_stamp w l.Mgraph.created;
  Wire.Writer.option w (encode_stamp w) l.Mgraph.deleted

let decode_life r =
  let created = decode_stamp r in
  let deleted = Wire.Reader.option r (fun () -> decode_stamp r) in
  { Mgraph.created; deleted }

let encode_prop w (p : Mgraph.prop) =
  Wire.Writer.string w p.Mgraph.pkey;
  Wire.Writer.string w p.Mgraph.pval;
  encode_life w p.Mgraph.p_life

let decode_prop r =
  let pkey = Wire.Reader.string r in
  let pval = Wire.Reader.string r in
  let p_life = decode_life r in
  { Mgraph.pkey; pval; p_life }

let encode_edge w (e : Mgraph.edge) =
  Wire.Writer.string w e.Mgraph.eid;
  Wire.Writer.string w e.Mgraph.dst;
  encode_life w e.Mgraph.e_life;
  Wire.Writer.list w (encode_prop w) (Array.to_list e.Mgraph.e_props)

let decode_edge r =
  let eid = Wire.Reader.string r in
  let dst = Wire.Reader.string r in
  let e_life = decode_life r in
  let e_props = Array.of_list (Wire.Reader.list r (fun () -> decode_prop r)) in
  { Mgraph.eid; dst; e_life; e_props }

let encode_vertex (v : Mgraph.vertex) =
  let w = Wire.Writer.create () in
  Wire.Writer.varint w format_version;
  Wire.Writer.string w v.Mgraph.vid;
  encode_life w v.Mgraph.v_life;
  Wire.Writer.list w (encode_prop w) (Array.to_list v.Mgraph.v_props);
  Wire.Writer.list w (encode_edge w) (Array.to_list v.Mgraph.out);
  Wire.Writer.contents w

let decode_vertex data =
  let r = Wire.Reader.create data in
  let version = Wire.Reader.varint r in
  if version <> format_version then
    raise (Wire.Reader.Corrupt ("unsupported format version " ^ string_of_int version));
  let vid = Wire.Reader.string r in
  let v_life = decode_life r in
  let v_props = Array.of_list (Wire.Reader.list r (fun () -> decode_prop r)) in
  let out = Array.of_list (Wire.Reader.list r (fun () -> decode_edge r)) in
  if not (Wire.Reader.at_end r) then raise (Wire.Reader.Corrupt "trailing bytes");
  { Mgraph.vid; v_life; v_props; out }
