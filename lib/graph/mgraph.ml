module Vclock = Weaver_vclock.Vclock

type stamp = Vclock.t
type before = stamp -> stamp -> bool
type lifespan = { created : stamp; deleted : stamp option }
type prop = { pkey : string; pval : string; p_life : lifespan }

type edge = {
  eid : string;
  dst : string;
  e_life : lifespan;
  e_props : prop array;
}

type vertex = {
  vid : string;
  v_life : lifespan;
  v_props : prop array;
  out : edge array;
}

(* Version sets are flat immutable arrays, newest first — the same order
   the old cons-list representation exposed, so visible-version iteration
   order (and everything downstream of it) is unchanged. Updates copy the
   array; reads walk a contiguous block with no per-cell indirection,
   which is what the hot path (out_edges under many versions) does. *)
let acons x a =
  let n = Array.length a in
  let a' = Array.make (n + 1) x in
  Array.blit a 0 a' 1 n;
  a'

let afilter keep a =
  let n = Array.length a in
  let kept = ref 0 in
  let mask = Array.make n false in
  for i = 0 to n - 1 do
    if keep a.(i) then begin
      mask.(i) <- true;
      incr kept
    end
  done;
  if !kept = n then a
  else begin
    let a' = Array.make !kept a.(0) in
    let j = ref 0 in
    for i = 0 to n - 1 do
      if mask.(i) then begin
        a'.(!j) <- a.(i);
        incr j
      end
    done;
    a'
  end

let at_or_before (before : before) a b = Vclock.equal a b || before a b

let alive before life ~at =
  at_or_before before life.created at
  &&
  match life.deleted with
  | None -> true
  | Some d -> not (at_or_before before d at)

let span at = { created = at; deleted = None }

let create_vertex ~vid ~at =
  { vid; v_life = span at; v_props = [||]; out = [||] }

let delete_vertex v ~at = { v with v_life = { v.v_life with deleted = Some at } }

let add_edge v ~eid ~dst ~at =
  { v with out = acons { eid; dst; e_life = span at; e_props = [||] } v.out }

let kill_life life ~at =
  match life.deleted with None -> { life with deleted = Some at } | Some _ -> life

let delete_edge v ~eid ~at =
  let out =
    Array.map
      (fun e ->
        if String.equal e.eid eid && e.e_life.deleted = None then
          { e with e_life = kill_life e.e_life ~at }
        else e)
      v.out
  in
  { v with out }

let close_prop before props ~key ~at =
  Array.map
    (fun p ->
      if String.equal p.pkey key && alive before p.p_life ~at then
        { p with p_life = kill_life p.p_life ~at }
      else p)
    props

let set_vertex_prop before v ~key ~value ~at =
  let closed = close_prop before v.v_props ~key ~at in
  { v with v_props = acons { pkey = key; pval = value; p_life = span at } closed }

let del_vertex_prop before v ~key ~at =
  { v with v_props = close_prop before v.v_props ~key ~at }

let map_edge v ~eid f =
  { v with out = Array.map (fun e -> if String.equal e.eid eid then f e else e) v.out }

let set_edge_prop before v ~eid ~key ~value ~at =
  map_edge v ~eid (fun e ->
      if e.e_life.deleted = None then
        let closed = close_prop before e.e_props ~key ~at in
        { e with e_props = acons { pkey = key; pval = value; p_life = span at } closed }
      else e)

let del_edge_prop before v ~eid ~key ~at =
  map_edge v ~eid (fun e -> { e with e_props = close_prop before e.e_props ~key ~at })

let vertex_alive before v ~at = alive before v.v_life ~at

let out_edges before v ~at =
  Array.fold_right
    (fun e acc -> if alive before e.e_life ~at then e :: acc else acc)
    v.out []

let props_at before props ~at =
  Array.fold_right
    (fun p acc -> if alive before p.p_life ~at then (p.pkey, p.pval) :: acc else acc)
    props []

let vertex_props before v ~at = props_at before v.v_props ~at
let edge_props before e ~at = props_at before e.e_props ~at

let edge_has_prop before e ~key ?value ~at () =
  Array.exists
    (fun p ->
      alive before p.p_life ~at
      && String.equal p.pkey key
      && match value with None -> true | Some v -> String.equal p.pval v)
    e.e_props

let degree before v ~at =
  let n = ref 0 in
  Array.iter (fun e -> if alive before e.e_life ~at then incr n) v.out;
  !n

let dead_before before life ~watermark =
  match life.deleted with Some d -> before d watermark | None -> false

let compact before v ~watermark =
  if dead_before before v.v_life ~watermark then None
  else
    let keep_prop p = not (dead_before before p.p_life ~watermark) in
    let out =
      afilter (fun e -> not (dead_before before e.e_life ~watermark)) v.out
      |> Array.map (fun e -> { e with e_props = afilter keep_prop e.e_props })
    in
    Some { v with v_props = afilter keep_prop v.v_props; out }

let pp_vertex fmt v =
  let dead = match v.v_life.deleted with Some _ -> " (deleted)" | None -> "" in
  Format.fprintf fmt "@[<v 2>vertex %s%s@ props:%d edge-versions:%d@]" v.vid dead
    (Array.length v.v_props) (Array.length v.out)
