(** Multi-version property graph elements (paper §2.1, §4.2).

    Weaver never overwrites graph data in place: every write marks the
    affected vertex, edge, or property with the refinable timestamp of the
    writing transaction. A deletion stores the deleting timestamp next to
    the object instead of removing it. Node programs then read the version
    of the graph {e as of} their own timestamp, so long-running analyses see
    a consistent snapshot while writes proceed (§2.3), and historical
    queries can target any past timestamp.

    Vertex values here are {b immutable}: every update returns a new vertex
    record. Shard servers keep a [vertex_id → vertex] table of latest
    values, and the backing store persists the same records, so crash
    recovery is plain re-read. Sharing between store and shard is safe
    because nothing mutates.

    Timestamp comparisons are delegated to a [before] decision procedure
    supplied by the caller: vector-clock comparison where it decides, the
    timeline oracle where the stamps are concurrent. *)

type stamp = Weaver_vclock.Vclock.t

type before = stamp -> stamp -> bool
(** [before a b]: did [a] happen strictly before [b]? Must be a strict
    partial order that is total on every pair it is actually asked about. *)

type lifespan = { created : stamp; deleted : stamp option }

type prop = { pkey : string; pval : string; p_life : lifespan }

type edge = {
  eid : string;  (** cluster-unique edge handle *)
  dst : string;  (** destination vertex id *)
  e_life : lifespan;
  e_props : prop array;  (** all versions, newest first *)
}

type vertex = {
  vid : string;
  v_life : lifespan;
  v_props : prop array;  (** all versions, newest first *)
  out : edge array;  (** all edge versions rooted here, newest first *)
}
(** Version sets are flat immutable arrays (newest first), not lists:
    reads walk a contiguous block, and updates — which are pure, like
    before — copy the array. Treat the arrays as read-only; mutating one
    in place would corrupt every shard table, store version, and snapshot
    sharing the record. *)

val alive : before -> lifespan -> at:stamp -> bool
(** Is an object with this lifespan visible at time [at]? True iff the
    creation is at or before [at] and no deletion is at or before [at].
    A stamp equal to [at] counts as visible (a transaction sees its own
    writes; a program at the commit stamp sees the commit). *)

(** {1 Construction and update}

    All update functions are pure; [~at] is the writing transaction's
    refinable timestamp. They do not validate against double-creation or
    missing targets — the backing-store transaction has already done that
    (paper §4.2). *)

val create_vertex : vid:string -> at:stamp -> vertex
val delete_vertex : vertex -> at:stamp -> vertex

val add_edge : vertex -> eid:string -> dst:string -> at:stamp -> vertex
val delete_edge : vertex -> eid:string -> at:stamp -> vertex
(** Marks every live version of [eid] deleted at [at]. *)

val set_vertex_prop : before -> vertex -> key:string -> value:string -> at:stamp -> vertex
(** Closes any prior live version of [key] (visible at [at]) and prepends a
    new version. *)

val del_vertex_prop : before -> vertex -> key:string -> at:stamp -> vertex

val set_edge_prop : before -> vertex -> eid:string -> key:string -> value:string -> at:stamp -> vertex
val del_edge_prop : before -> vertex -> eid:string -> key:string -> at:stamp -> vertex

(** {1 Snapshot reads} *)

val vertex_alive : before -> vertex -> at:stamp -> bool

val out_edges : before -> vertex -> at:stamp -> edge list
(** Edge versions visible at [at]. *)

val vertex_props : before -> vertex -> at:stamp -> (string * string) list
(** Visible key/value pairs (at most one version per key if writers used
    {!set_vertex_prop}). *)

val edge_props : before -> edge -> at:stamp -> (string * string) list

val edge_has_prop : before -> edge -> key:string -> ?value:string -> at:stamp -> unit -> bool
(** Does the edge carry a visible property [key] (with [value], if given)?
    The predicate used by node programs like the BFS of paper Fig. 3. *)

val degree : before -> vertex -> at:stamp -> int

(** {1 Garbage collection (paper §4.5)} *)

val compact : before -> vertex -> watermark:stamp -> vertex option
(** Drop every version whose deletion stamp is strictly before the
    watermark (no ongoing or future operation can see it). Returns [None]
    if the vertex itself is gone. Pass the timestamp of the oldest
    operation still in progress. *)

val pp_vertex : Format.formatter -> vertex -> unit
