(** Simulated message-passing network with per-channel FIFO delivery.

    Weaver's correctness argument (§4.2 of the paper) relies on FIFO
    channels between each gatekeeper–shard pair; this module provides that
    guarantee for every (src, dst) pair: even when per-message latency
    jitters, a message is never delivered before an earlier message on the
    same channel.

    A network instance carries one message type ['m]; each protocol in the
    repository instantiates its own network. Endpoints are small integer
    addresses registered with a handler. Endpoints can be marked dead
    (crash-stop): messages to a dead endpoint are silently dropped, as are
    messages sent by it. *)

type 'm t

type addr = int
(** Endpoint address. *)

type latency = Weaver_util.Xrand.t -> src:addr -> dst:addr -> float
(** Latency model: virtual µs for one message on the given channel. *)

val uniform_latency : base:float -> jitter:float -> latency
(** [base + U(0, jitter)] µs, independent of the channel. *)

val local_latency : latency
(** Datacenter-like default: 50 µs base + 20 µs jitter. *)

val create : Engine.t -> latency:latency -> 'm t
(** New network on the given engine. *)

val register : 'm t -> addr -> (src:addr -> 'm -> unit) -> unit
(** Install the delivery handler for [addr]; replaces any previous one and
    (re)marks the endpoint alive. *)

val send : 'm t -> src:addr -> dst:addr -> 'm -> unit
(** Enqueue a message. Delivered via [dst]'s handler after the modelled
    latency, in FIFO order per (src, dst). Dropped if either endpoint is
    dead, or if [dst] was never registered. *)

val set_alive : 'm t -> addr -> bool -> unit
(** Crash or revive an endpoint. Messages already in flight towards a
    crashed endpoint are dropped at delivery time. *)

val is_alive : 'm t -> addr -> bool

val messages_sent : 'm t -> int
(** Messages that actually entered the network: sends from live (or
    unregistered) endpoints, including ones later dropped at a dead
    destination. Sends attempted by dead endpoints are excluded — see
    {!messages_suppressed}. *)

val messages_delivered : 'm t -> int

val messages_suppressed : 'm t -> int
(** Sends attempted by a dead endpoint, suppressed before the wire (and
    before the tracer). Counted separately so failure injection does not
    inflate message-overhead measurements. *)

val messages_dropped : 'm t -> int
(** Messages whose delivery event found the destination dead or never
    registered — genuine loss at the receiving end, as opposed to latency.
    Disjoint from {!messages_suppressed} (which never reach the wire);
    [sent = delivered + dropped + in_flight] always holds. *)

val drops_by_dst : 'm t -> (addr * int) list
(** Per-destination breakdown of {!messages_dropped}, sorted by address —
    which endpoint was black-holing traffic during a chaos run. *)

(** {1 Queue-depth instrumentation}

    Messages in flight — sent but not yet delivered (or dropped at a dead
    destination). A message leaves the count when its delivery event
    fires, alive or not. *)

val in_flight : 'm t -> int
(** Messages currently on the wire, over all channels. *)

val in_flight_high_water : 'm t -> int
(** Most messages ever simultaneously in flight since creation. *)

val channel_in_flight : 'm t -> src:addr -> dst:addr -> int
(** In-flight count of one (src, dst) channel. *)

val channel_high_water : 'm t -> int
(** Deepest any single channel ever got — the congestion hot-spot gauge
    (a queue building on one gatekeeper→shard channel shows here while
    the global count stays modest). *)

val channels_tracked : 'm t -> int
(** Number of (src, dst) channels currently holding in-flight state. A
    channel's record (FIFO mailbox + delivery floor) is dropped as soon as
    its in-flight count drains to 0, so this must return to 0 on an idle
    network — the regression guard against the old behaviour of keeping a
    FIFO-floor entry per channel ever used. *)

val set_tracer : 'm t -> (time:float -> src:addr -> dst:addr -> 'm -> unit) option -> unit
(** Install (or remove) a callback invoked on every non-suppressed {!send}
    with the current virtual time — the hook behind message tracing. *)

(** {1 Latency degradation}

    Fault-injection hooks: multiply modelled latencies globally or per
    directed link (latency spikes, degraded links). Factors scale a value
    the latency model already drew, so they never consume randomness —
    with all factors at 1.0 delivery times are bit-identical to a network
    without the feature. Messages already in flight keep their original
    delivery time; per-channel FIFO order is preserved regardless. *)

val set_latency_factor : 'm t -> float -> unit
(** Global latency multiplier (clamped to ≥ 0; default 1.0). *)

val latency_factor : 'm t -> float

val set_link_factor : 'm t -> src:addr -> dst:addr -> float -> unit
(** Multiplier for one directed (src, dst) link, composed with the global
    factor. Setting 1.0 removes the entry. *)

val link_factor : 'm t -> src:addr -> dst:addr -> float
(** Current per-link multiplier (1.0 when unset). *)

val clear_link_factors : 'm t -> unit
(** Drop every per-link multiplier. *)
