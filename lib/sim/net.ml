type addr = int
type latency = Weaver_util.Xrand.t -> src:addr -> dst:addr -> float

type 'm endpoint = {
  mutable handler : src:addr -> 'm -> unit;
  mutable alive : bool;
}

(* Per-(src,dst) mailbox. Messages queue here in send order and one
   preallocated [c_deliver] closure is scheduled per message, so the
   engine heap carries no per-message closure or record. Delivery events
   on one channel fire in send order (their times are non-decreasing by
   the FIFO floor and their engine sequence numbers increase), so popping
   the queue head at each firing delivers exactly the right message.

   The channel record is removed when its in-flight count drains to 0 —
   this is also what bounds the FIFO-floor state: the old implementation
   kept a [last_delivery] entry per (src,dst) pair forever. Dropping the
   floor at drain time is safe because the clock has then reached the
   floor, so any later send's arrival time already respects it. *)
type 'm channel = {
  c_src : addr;
  c_dst : addr;
  c_msgs : 'm Queue.t;
  mutable c_floor : float; (* last scheduled delivery time *)
  mutable c_load : int; (* in flight on this channel *)
  mutable c_deliver : unit -> unit;
}

type 'm t = {
  engine : Engine.t;
  latency : latency;
  rng : Weaver_util.Xrand.t;
  endpoints : (addr, 'm endpoint) Hashtbl.t;
  channels : (addr * addr, 'm channel) Hashtbl.t;
  mutable sent : int;
  mutable delivered : int;
  mutable suppressed : int; (* sends attempted by dead endpoints *)
  (* messages whose delivery event found the destination dead (or never
     registered): genuine loss, as opposed to latency. Kept per destination
     so chaos runs can see which endpoint was black-holing traffic. *)
  mutable dropped : int;
  drops_by_dst : (addr, int) Hashtbl.t;
  (* queue-depth instrumentation: messages on the wire, globally and per
     (src,dst) channel, with high-water marks. Decremented when the
     delivery event fires, whether or not the destination is still alive. *)
  mutable in_flight : int;
  mutable in_flight_hwm : int;
  mutable channel_hwm : int;
  mutable tracer : (time:float -> src:addr -> dst:addr -> 'm -> unit) option;
  (* fault-injection latency degradation: a global multiplier plus optional
     per-directed-link multipliers, applied on top of the latency model.
     Factors scale a value the model already drew, so changing them never
     consumes extra randomness — runs with factors pinned at 1.0 are
     bit-identical to runs on a network without the feature. *)
  mutable latency_factor : float;
  link_factors : (addr * addr, float) Hashtbl.t;
}

let uniform_latency ~base ~jitter rng ~src:_ ~dst:_ =
  base +. if jitter > 0.0 then Weaver_util.Xrand.float rng jitter else 0.0

let local_latency : latency = fun rng -> uniform_latency ~base:50.0 ~jitter:20.0 rng

let create engine ~latency =
  {
    engine;
    latency;
    rng = Weaver_util.Xrand.split (Engine.rng engine);
    endpoints = Hashtbl.create 64;
    channels = Hashtbl.create 256;
    sent = 0;
    delivered = 0;
    suppressed = 0;
    dropped = 0;
    drops_by_dst = Hashtbl.create 16;
    in_flight = 0;
    in_flight_hwm = 0;
    channel_hwm = 0;
    tracer = None;
    latency_factor = 1.0;
    link_factors = Hashtbl.create 16;
  }

let register t addr handler =
  match Hashtbl.find_opt t.endpoints addr with
  | Some ep ->
      ep.handler <- handler;
      ep.alive <- true
  | None -> Hashtbl.replace t.endpoints addr { handler; alive = true }

let set_alive t addr alive =
  match Hashtbl.find_opt t.endpoints addr with
  | Some ep -> ep.alive <- alive
  | None -> ()

let is_alive t addr =
  match Hashtbl.find_opt t.endpoints addr with
  | Some ep -> ep.alive
  | None -> false

let set_tracer t tracer = t.tracer <- tracer

let set_latency_factor t f = t.latency_factor <- Float.max 0.0 f
let latency_factor t = t.latency_factor

let set_link_factor t ~src ~dst f =
  if f = 1.0 then Hashtbl.remove t.link_factors (src, dst)
  else Hashtbl.replace t.link_factors (src, dst) (Float.max 0.0 f)

let link_factor t ~src ~dst =
  match Hashtbl.find_opt t.link_factors (src, dst) with Some f -> f | None -> 1.0

let clear_link_factors t = Hashtbl.reset t.link_factors

(* one delivery event fired: hand the channel's head message to the
   destination (or count the drop), retiring the channel when drained *)
let deliver_one t ch =
  let msg = Queue.pop ch.c_msgs in
  t.in_flight <- t.in_flight - 1;
  ch.c_load <- ch.c_load - 1;
  if ch.c_load = 0 then Hashtbl.remove t.channels (ch.c_src, ch.c_dst);
  match Hashtbl.find_opt t.endpoints ch.c_dst with
  | Some ep when ep.alive ->
      t.delivered <- t.delivered + 1;
      ep.handler ~src:ch.c_src msg
  | _ ->
      t.dropped <- t.dropped + 1;
      let n =
        match Hashtbl.find_opt t.drops_by_dst ch.c_dst with Some n -> n | None -> 0
      in
      Hashtbl.replace t.drops_by_dst ch.c_dst (n + 1)

let channel t key src dst =
  match Hashtbl.find_opt t.channels key with
  | Some ch -> ch
  | None ->
      let ch =
        {
          c_src = src;
          c_dst = dst;
          c_msgs = Queue.create ();
          c_floor = neg_infinity;
          c_load = 0;
          c_deliver = ignore;
        }
      in
      ch.c_deliver <- (fun () -> deliver_one t ch);
      Hashtbl.replace t.channels key ch;
      ch

let send t ~src ~dst msg =
  let src_alive =
    match Hashtbl.find_opt t.endpoints src with
    | Some ep -> ep.alive
    | None -> true (* unregistered senders (e.g. external clients) are fine *)
  in
  (* a dead endpoint's send never reaches the wire: it must not count
     towards message overhead nor reach the tracer, or the experiments'
     messages-per-request numbers inflate under failure injection *)
  if not src_alive then t.suppressed <- t.suppressed + 1
  else begin
    t.sent <- t.sent + 1;
    (match t.tracer with
    | Some f -> f ~time:(Engine.now t.engine) ~src ~dst msg
    | None -> ());
    let lat =
      t.latency t.rng ~src ~dst *. t.latency_factor *. link_factor t ~src ~dst
    in
    let arrival = Engine.now t.engine +. Float.max 0.0 lat in
    let ch = channel t (src, dst) src dst in
    (* FIFO per channel: never deliver before the previous message *)
    let floor_time = Float.max arrival ch.c_floor in
    ch.c_floor <- floor_time;
    ch.c_load <- ch.c_load + 1;
    Queue.push msg ch.c_msgs;
    t.in_flight <- t.in_flight + 1;
    if t.in_flight > t.in_flight_hwm then t.in_flight_hwm <- t.in_flight;
    if ch.c_load > t.channel_hwm then t.channel_hwm <- ch.c_load;
    Engine.schedule_at t.engine ~time:floor_time ch.c_deliver
  end

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_suppressed t = t.suppressed
let messages_dropped t = t.dropped

let drops_by_dst t =
  Hashtbl.fold (fun dst n acc -> (dst, n) :: acc) t.drops_by_dst []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
let in_flight t = t.in_flight
let in_flight_high_water t = t.in_flight_hwm

let channel_in_flight t ~src ~dst =
  match Hashtbl.find_opt t.channels (src, dst) with
  | Some ch -> ch.c_load
  | None -> 0

let channel_high_water t = t.channel_hwm
let channels_tracked t = Hashtbl.length t.channels
