(** Deterministic discrete-event simulation engine.

    The whole Weaver deployment — gatekeepers, shards, the timeline oracle,
    the backing store, the cluster manager, and clients — runs as callbacks
    scheduled on one of these engines. Virtual time is a [float] in
    microseconds. Events scheduled for the same instant fire in scheduling
    order (a global sequence number breaks ties), which together with the
    seeded RNG makes every run reproducible. *)

type t

val create : ?seed:int -> unit -> t
(** Fresh engine at time 0 with an empty event queue. *)

val now : t -> float
(** Current virtual time in microseconds. *)

val rng : t -> Weaver_util.Xrand.t
(** The engine's master RNG; derive sub-streams with {!Weaver_util.Xrand.split}. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run the callback [delay] µs from now. Negative delays are clamped to 0. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Run the callback at absolute virtual [time] (clamped to [now] if past). *)

val every : t -> period:float -> (unit -> bool) -> unit
(** [every t ~period f] calls [f] each [period] µs for as long as [f]
    returns [true]. The first call happens one period from now.
    @raise Invalid_argument if [period <= 0] (a non-positive period would
    spin a zero-delay event loop forever). *)

val step : t -> bool
(** Execute the single earliest pending event. [false] if the queue was
    empty. *)

val run : ?until:float -> t -> unit
(** Execute events until the queue drains, or until virtual time would
    exceed [until] (remaining events stay queued and [now] advances to
    [until]). *)

val pending : t -> int
(** Number of queued events. *)

val max_pending : t -> int
(** High-water mark of the event queue since creation — how deep the
    simulation's backlog ever got (a utilization gauge). *)

val events_processed : t -> int
(** Total events executed since creation. *)
