(* The event queue is an inline binary min-heap over three parallel
   arrays rather than a heap of {time; seq; action} records: [times] is a
   flat float array (unboxed), so scheduling an event allocates nothing
   beyond the caller's closure, and the (time, seq) comparison is two
   machine compares instead of a polymorphic [compare] through a closure.
   Events at equal time fire in scheduling order via the sequence number,
   exactly as the record-based queue did. *)

type t = {
  mutable clock : float;
  mutable seq : int;
  mutable processed : int;
  mutable max_pending : int;
  mutable times : float array;
  mutable seqs : int array;
  mutable actions : (unit -> unit) array;
  mutable size : int;
  rng : Weaver_util.Xrand.t;
}

let noop () = ()

let create ?(seed = 1) () =
  {
    clock = 0.0;
    seq = 0;
    processed = 0;
    max_pending = 0;
    times = [||];
    seqs = [||];
    actions = [||];
    size = 0;
    rng = Weaver_util.Xrand.create ~seed ();
  }

let now t = t.clock
let rng t = t.rng

(* strict (time, seq) lexicographic order; seqs are unique so this is total *)
let[@inline] less t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let[@inline] swap t i j =
  let tm = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- tm;
  let sq = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- sq;
  let ac = t.actions.(i) in
  t.actions.(i) <- t.actions.(j);
  t.actions.(j) <- ac

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t l !smallest then smallest := l;
  if r < t.size && less t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let cap = Array.length t.seqs in
  if t.size = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let nt = Array.make ncap 0.0
    and ns = Array.make ncap 0
    and na = Array.make ncap noop in
    Array.blit t.times 0 nt 0 t.size;
    Array.blit t.seqs 0 ns 0 t.size;
    Array.blit t.actions 0 na 0 t.size;
    t.times <- nt;
    t.seqs <- ns;
    t.actions <- na
  end

let schedule_at t ~time action =
  let time = Float.max time t.clock in
  t.seq <- t.seq + 1;
  grow t;
  let i = t.size in
  t.times.(i) <- time;
  t.seqs.(i) <- t.seq;
  t.actions.(i) <- action;
  t.size <- i + 1;
  sift_up t i;
  if t.size > t.max_pending then t.max_pending <- t.size

let schedule t ~delay action =
  let delay = Float.max 0.0 delay in
  schedule_at t ~time:(t.clock +. delay) action

let every t ~period f =
  (* an [assert] here would vanish under -noassert and a non-positive
     period would then spin a zero-delay event loop forever *)
  if not (period > 0.0) then invalid_arg "Engine.every: period must be > 0";
  let rec tick () = if f () then schedule t ~delay:period tick in
  schedule t ~delay:period tick

let step t =
  if t.size = 0 then false
  else begin
    let action = t.actions.(0) in
    t.clock <- t.times.(0);
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      t.times.(0) <- t.times.(n);
      t.seqs.(0) <- t.seqs.(n);
      t.actions.(0) <- t.actions.(n)
    end;
    (* executed (and moved-from) closures must not stay reachable *)
    t.actions.(n) <- noop;
    if n > 1 then sift_down t 0;
    t.processed <- t.processed + 1;
    action ();
    true
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
      let continue = ref true in
      while !continue do
        if t.size > 0 && t.times.(0) <= limit then ignore (step t)
        else begin
          t.clock <- Float.max t.clock limit;
          continue := false
        end
      done

let pending t = t.size
let max_pending t = t.max_pending
let events_processed t = t.processed
