module Heap = Weaver_util.Heap

type event = { time : float; seq : int; action : unit -> unit }

type t = {
  mutable clock : float;
  mutable seq : int;
  mutable processed : int;
  mutable max_pending : int;
  queue : event Heap.t;
  rng : Weaver_util.Xrand.t;
}

let cmp_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create ?(seed = 1) () =
  {
    clock = 0.0;
    seq = 0;
    processed = 0;
    max_pending = 0;
    queue = Heap.create ~cmp:cmp_event;
    rng = Weaver_util.Xrand.create ~seed ();
  }

let now t = t.clock
let rng t = t.rng

let schedule_at t ~time action =
  let time = Float.max time t.clock in
  t.seq <- t.seq + 1;
  Heap.push t.queue { time; seq = t.seq; action };
  if Heap.length t.queue > t.max_pending then t.max_pending <- Heap.length t.queue

let schedule t ~delay action =
  let delay = Float.max 0.0 delay in
  schedule_at t ~time:(t.clock +. delay) action

let every t ~period f =
  assert (period > 0.0);
  let rec tick () = if f () then schedule t ~delay:period tick in
  schedule t ~delay:period tick

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      t.processed <- t.processed + 1;
      ev.action ();
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
      let continue = ref true in
      while !continue do
        match Heap.peek t.queue with
        | Some ev when ev.time <= limit -> ignore (step t)
        | _ ->
            t.clock <- Float.max t.clock limit;
            continue := false
      done

let pending t = Heap.length t.queue
let max_pending t = t.max_pending
let events_processed t = t.processed
