(** Declarative, seeded-deterministic fault plans (paper §4.3 evaluated
    under failure).

    A plan is pure data: a time-ordered list of actions against logical
    targets (gatekeepers, shards, read replicas, oracle replicas) plus
    network degradations. {!install} turns the plan into ordinary engine
    events, so a run with a fault plan is exactly as reproducible as one
    without — same seed, same schedule, same interleaving.

    This module deliberately knows nothing about the Weaver deployment: the
    interpreter ([exec]) is supplied by the cluster layer
    ({!Weaver_core.Cluster.install_fault_plan}), keeping [weaver_sim] free
    of upward dependencies. *)

type target =
  | Gatekeeper of int
  | Shard of int
  | Replica of { shard : int; replica : int }
      (** read-only replica [replica] of [shard] (§6.4) *)
  | Oracle_replica of int  (** one replica of the oracle chain (§3.4) *)

type action =
  | Crash of target
      (** crash-stop: the target stops sending and receiving. The cluster
          manager may detect it by heartbeat timeout and drive recovery
          (§4.3) before any scheduled [Restart]. *)
  | Restart of target
      (** revive a crashed target in place, resynchronizing its volatile
          state from the backing store. If the manager already replaced the
          target this is a no-op; restarting an oracle replica is
          unsupported (chain state cannot be resynced) and is ignored. *)
  | Net_degrade of float
      (** multiply every message latency by the factor (1.0 restores) *)
  | Link_degrade of { src : target; dst : target; factor : float }
      (** degrade one directed server-to-server link (1.0 restores) *)

type event = { at : float  (** virtual µs *); action : action }
type plan = event list

val scripted : (float * action) list -> plan
(** Plan from explicit (time, action) pairs; sorted by time (stable). *)

val rolling_crashes :
  targets:target list -> start:float -> gap:float -> downtime:float -> plan
(** Crash each target in turn: target [i] crashes at [start + i*gap] and
    restarts [downtime] later. With [gap > downtime] at most one target is
    down at a time — the rolling-outage schedule of the chaos bench. *)

val random_plan :
  rng:Weaver_util.Xrand.t ->
  targets:target list ->
  start:float ->
  until:float ->
  mean_gap:float ->
  downtime:float ->
  plan
(** Randomized crash/restart schedule: exponentially distributed gaps with
    the given mean, uniformly chosen targets, each down for [downtime].
    Deterministic for a given [rng] state (seeded upstream). *)

val install : Engine.t -> plan -> exec:(action -> unit) -> int
(** Schedule every event on the engine (absolute times; past times clamp
    to now), invoking [exec] per action. Returns the number of events
    scheduled. *)

val target_name : target -> string
(** Short name for logs and JSON: "gk0", "shard2", "replica1.0",
    "oracle1". *)

val action_name : action -> string
(** Action label: "crash", "restart", "net_degrade", "link_degrade". *)

val pp_action : Format.formatter -> action -> unit
(** One-line rendering, e.g. [crash gk0] or [net_degrade x4.0]. *)
