module Xrand = Weaver_util.Xrand

type target =
  | Gatekeeper of int
  | Shard of int
  | Replica of { shard : int; replica : int }
  | Oracle_replica of int

type action =
  | Crash of target
  | Restart of target
  | Net_degrade of float
  | Link_degrade of { src : target; dst : target; factor : float }

type event = { at : float; action : action }
type plan = event list

let target_name = function
  | Gatekeeper g -> "gk" ^ string_of_int g
  | Shard s -> "shard" ^ string_of_int s
  | Replica { shard; replica } -> Printf.sprintf "replica%d.%d" shard replica
  | Oracle_replica i -> "oracle" ^ string_of_int i

let action_name = function
  | Crash _ -> "crash"
  | Restart _ -> "restart"
  | Net_degrade _ -> "net_degrade"
  | Link_degrade _ -> "link_degrade"

let pp_action fmt = function
  | Crash tgt -> Format.fprintf fmt "crash %s" (target_name tgt)
  | Restart tgt -> Format.fprintf fmt "restart %s" (target_name tgt)
  | Net_degrade f -> Format.fprintf fmt "net_degrade x%.1f" f
  | Link_degrade { src; dst; factor } ->
      Format.fprintf fmt "link_degrade %s->%s x%.1f" (target_name src)
        (target_name dst) factor

let by_time = List.stable_sort (fun a b -> Float.compare a.at b.at)

let scripted events = by_time (List.map (fun (at, action) -> { at; action }) events)

let rolling_crashes ~targets ~start ~gap ~downtime =
  List.concat
    (List.mapi
       (fun i tgt ->
         let at = start +. (float_of_int i *. gap) in
         [ { at; action = Crash tgt }; { at = at +. downtime; action = Restart tgt } ])
       targets)
  |> by_time

let random_plan ~rng ~targets ~start ~until ~mean_gap ~downtime =
  let targets = Array.of_list targets in
  if Array.length targets = 0 then []
  else begin
    let events = ref [] in
    let t = ref (start +. Xrand.exponential rng ~mean:mean_gap) in
    while !t < until do
      let tgt = Xrand.pick rng targets in
      events :=
        { at = !t +. downtime; action = Restart tgt }
        :: { at = !t; action = Crash tgt }
        :: !events;
      t := !t +. downtime +. Xrand.exponential rng ~mean:mean_gap
    done;
    by_time (List.rev !events)
  end

let install engine plan ~exec =
  List.iter
    (fun { at; action } -> Engine.schedule_at engine ~time:at (fun () -> exec action))
    plan;
  List.length plan
